lib/core/damping.ml: Float Hashtbl
