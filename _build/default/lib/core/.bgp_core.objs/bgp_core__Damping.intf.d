lib/core/damping.mli:
