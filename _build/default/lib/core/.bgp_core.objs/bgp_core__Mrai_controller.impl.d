lib/core/mrai_controller.ml: Array List Printf String
