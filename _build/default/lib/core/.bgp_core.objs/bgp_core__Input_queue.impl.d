lib/core/input_queue.ml: Hashtbl Option Printf Queue
