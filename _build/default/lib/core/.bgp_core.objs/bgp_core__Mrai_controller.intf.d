lib/core/mrai_controller.mli:
