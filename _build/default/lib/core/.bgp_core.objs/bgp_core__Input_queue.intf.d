lib/core/input_queue.mli:
