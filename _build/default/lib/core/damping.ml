type config = {
  withdraw_penalty : float;
  update_penalty : float;
  half_life : float;
  cut_threshold : float;
  reuse_threshold : float;
  max_suppress : float;
}

let rfc_config =
  {
    withdraw_penalty = 1.0;
    update_penalty = 0.5;
    half_life = 900.0;
    cut_threshold = 3.0;
    reuse_threshold = 0.75;
    max_suppress = 3600.0;
  }

let sim_config = { rfc_config with half_life = 30.0; max_suppress = 120.0 }

type record = {
  mutable penalty : float;  (* value at [updated] *)
  mutable updated : float;
  mutable suppressed : bool;
  mutable suppressed_at : float;
}

type t = {
  config : config;
  records : (int * int, record) Hashtbl.t;
  mutable suppressions : int;
}

let create config =
  if config.reuse_threshold >= config.cut_threshold then
    invalid_arg "Damping.create: reuse threshold must be below the cut threshold";
  { config; records = Hashtbl.create 256; suppressions = 0 }

let decayed config penalty ~dt = penalty *. (2.0 ** (-.dt /. config.half_life))

(* Bring a record's penalty forward to [now] and refresh its suppression
   state (including the max-suppress cap). *)
let refresh t record ~now =
  let dt = now -. record.updated in
  if dt > 0.0 then begin
    record.penalty <- decayed t.config record.penalty ~dt;
    record.updated <- now
  end;
  if record.suppressed then
    if
      record.penalty < t.config.reuse_threshold
      || now -. record.suppressed_at >= t.config.max_suppress
    then record.suppressed <- false

let find t ~peer ~dest = Hashtbl.find_opt t.records (peer, dest)

let record_flap t ~peer ~dest ~now ~kind =
  let record =
    match find t ~peer ~dest with
    | Some r -> r
    | None ->
      let r = { penalty = 0.0; updated = now; suppressed = false; suppressed_at = 0.0 } in
      Hashtbl.replace t.records (peer, dest) r;
      r
  in
  refresh t record ~now;
  let add =
    match kind with
    | `Withdraw -> t.config.withdraw_penalty
    | `Update -> t.config.update_penalty
  in
  record.penalty <- record.penalty +. add;
  if (not record.suppressed) && record.penalty > t.config.cut_threshold then begin
    record.suppressed <- true;
    record.suppressed_at <- now;
    t.suppressions <- t.suppressions + 1
  end

let penalty t ~peer ~dest ~now =
  match find t ~peer ~dest with
  | None -> 0.0
  | Some record ->
    refresh t record ~now;
    record.penalty

let is_suppressed t ~peer ~dest ~now =
  match find t ~peer ~dest with
  | None -> false
  | Some record ->
    refresh t record ~now;
    record.suppressed

let reuse_time t ~peer ~dest ~now =
  match find t ~peer ~dest with
  | None -> None
  | Some record ->
    refresh t record ~now;
    if not record.suppressed then None
    else begin
      (* penalty * 2^(-dt/h) = reuse  =>  dt = h * log2 (penalty / reuse) *)
      let dt =
        t.config.half_life
        *. (Float.log (record.penalty /. t.config.reuse_threshold) /. Float.log 2.0)
      in
      let capped =
        Float.min (now +. dt) (record.suppressed_at +. t.config.max_suppress)
      in
      Some (Float.max now capped)
    end

let suppressions t = t.suppressions
