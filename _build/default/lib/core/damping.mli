(** Route flap damping (RFC 2439), the other classic mechanism for taming
    BGP churn.  Not part of the paper's proposal, but the natural
    comparison point: damping suppresses individual flapping routes, the
    paper's schemes pace and batch *all* updates under overload.  The
    `damping` ablation shows why damping does not help large-scale
    failures (path exploration looks like flapping, so valid routes get
    suppressed and convergence stretches).

    Penalty model: each flap adds a fixed penalty that decays
    exponentially ([2^(-dt / half_life)]).  A route whose penalty exceeds
    [cut_threshold] is suppressed until it decays below
    [reuse_threshold]. *)

type config = {
  withdraw_penalty : float;  (** added when the route is withdrawn *)
  update_penalty : float;  (** added when it is re-advertised / changed *)
  half_life : float;  (** seconds *)
  cut_threshold : float;
  reuse_threshold : float;
  max_suppress : float;  (** upper bound on suppression time, seconds *)
}

val rfc_config : config
(** RFC 2439 / Cisco-like defaults (normalised to 1.0 per withdrawal):
    withdraw 1.0, update 0.5, half-life 900 s, cut 3.0, reuse 0.75,
    max suppress 3600 s. *)

val sim_config : config
(** The same shape scaled to this paper's timescales (half-life 30 s, max
    suppress 120 s) so damping actually engages within a simulation. *)

type t

val create : config -> t

val record_flap : t -> peer:int -> dest:int -> now:float -> kind:[ `Withdraw | `Update ] -> unit

val penalty : t -> peer:int -> dest:int -> now:float -> float
(** Current (decayed) penalty; 0 if never flapped. *)

val is_suppressed : t -> peer:int -> dest:int -> now:float -> bool

val reuse_time : t -> peer:int -> dest:int -> now:float -> float option
(** Absolute time at which a currently-suppressed route decays below the
    reuse threshold (capped by [max_suppress]); [None] if not
    suppressed. *)

val suppressions : t -> int
(** How many flap records crossed into suppression (metric). *)
