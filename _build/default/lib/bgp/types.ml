type router_id = int
type as_id = int
type dest = as_id
type path = as_id list

let path_length = List.length
let path_contains path asn = List.mem asn path
let pp_path ppf path = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") int) path

type update =
  | Advertise of { dest : dest; path : path }
  | Withdraw of dest

let update_dest = function Advertise { dest; _ } -> dest | Withdraw dest -> dest
let is_withdrawal = function Withdraw _ -> true | Advertise _ -> false

let pp_update ppf = function
  | Advertise { dest; path } -> Fmt.pf ppf "advertise(d%d via %a)" dest pp_path path
  | Withdraw dest -> Fmt.pf ppf "withdraw(d%d)" dest

type session_kind = Ebgp | Ibgp

let pp_session_kind ppf = function
  | Ebgp -> Fmt.string ppf "eBGP"
  | Ibgp -> Fmt.string ppf "iBGP"

type relationship = Customer | Peer_link | Provider

let pp_relationship ppf = function
  | Customer -> Fmt.string ppf "customer"
  | Peer_link -> Fmt.string ppf "peer"
  | Provider -> Fmt.string ppf "provider"

let preference_of_relationship = function
  | None -> 0
  | Some Customer -> 0
  | Some Peer_link -> 1
  | Some Provider -> 2
