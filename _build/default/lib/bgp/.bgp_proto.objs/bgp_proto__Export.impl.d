lib/bgp/export.ml: Config Rib Types
