lib/bgp/session.mli: Bgp_engine Format Types
