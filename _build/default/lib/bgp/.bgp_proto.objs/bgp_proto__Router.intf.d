lib/bgp/router.mli: Bgp_engine Config Rib Types
