lib/bgp/export.mli: Config Rib Types
