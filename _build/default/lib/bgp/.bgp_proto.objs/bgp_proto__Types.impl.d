lib/bgp/types.ml: Fmt List
