lib/bgp/session.ml: Bgp_engine Float Fmt Types
