lib/bgp/rib.mli: Types
