lib/bgp/config.mli: Bgp_core Bgp_engine
