lib/bgp/rib.ml: Hashtbl Int List Types
