lib/bgp/config.ml: Bgp_core Bgp_engine List
