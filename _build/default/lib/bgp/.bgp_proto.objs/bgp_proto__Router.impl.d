lib/bgp/router.ml: Bgp_core Bgp_engine Config Export Float Hashtbl Int List Option Rib Types
