lib/bgp/types.mli: Format
