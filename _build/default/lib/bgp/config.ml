type mrai_mode = Per_peer | Per_dest
type mrai_bypass = No_bypass | Cancel_on_improvement | Flap_threshold of int

type t = {
  mrai_scheme : Bgp_core.Mrai_controller.scheme;
  mrai_mode : mrai_mode;
  ibgp_mrai : float;
  queue_discipline : Bgp_core.Input_queue.discipline;
  processing_delay : Bgp_engine.Dist.t;
  mrai_jitter : bool;
  mrai_on_withdrawals : bool;
  sender_side_loop_check : bool;
  load_window : float;
  mrai_bypass : mrai_bypass;
  dynamic_restart_timers : bool;
  damping : Bgp_core.Damping.config option;
  prefixes_per_as : int;
}

let paper_processing_delay = Bgp_engine.Dist.Uniform { lo = 0.001; hi = 0.030 }

let default =
  {
    mrai_scheme = Static 30.0;
    mrai_mode = Per_peer;
    ibgp_mrai = 0.0;
    queue_discipline = Fifo;
    processing_delay = paper_processing_delay;
    mrai_jitter = true;
    mrai_on_withdrawals = false;
    sender_side_loop_check = true;
    load_window = 0.5;
    mrai_bypass = No_bypass;
    dynamic_restart_timers = false;
    damping = None;
    prefixes_per_as = 1;
  }

let origin_as t ~dest = dest / t.prefixes_per_as

let dests_of_as t ~asn =
  List.init t.prefixes_per_as (fun k -> (asn * t.prefixes_per_as) + k)

let with_mrai scheme t = { t with mrai_scheme = scheme }
let with_discipline discipline t = { t with queue_discipline = discipline }
