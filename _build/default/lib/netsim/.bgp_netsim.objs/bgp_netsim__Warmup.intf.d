lib/netsim/warmup.mli: Bgp_proto Network
