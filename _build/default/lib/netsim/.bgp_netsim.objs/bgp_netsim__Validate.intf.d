lib/netsim/validate.mli: Bgp_topology Format Network
