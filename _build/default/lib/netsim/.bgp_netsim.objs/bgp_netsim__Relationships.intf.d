lib/netsim/relationships.mli: Bgp_proto Bgp_topology
