lib/netsim/warmup.ml: Array Bgp_engine Bgp_proto Bgp_topology List Network Option
