lib/netsim/relationships.ml: Array Bgp_proto Bgp_topology Hashtbl List Option
