lib/netsim/validate.ml: Array Bgp_proto Bgp_topology Buffer Fmt Format List Network Printf Queue Relationships
