lib/netsim/network.mli: Bgp_engine Bgp_proto Bgp_topology Relationships Trace
