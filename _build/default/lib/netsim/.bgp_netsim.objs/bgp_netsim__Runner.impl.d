lib/netsim/runner.ml: Bgp_engine Bgp_proto Bgp_topology Float Network Relationships Validate Warmup
