lib/netsim/network.ml: Array Bgp_engine Bgp_proto Bgp_topology Float Int List Relationships Stdlib Trace
