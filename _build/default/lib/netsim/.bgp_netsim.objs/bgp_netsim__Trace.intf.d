lib/netsim/trace.mli: Bgp_proto Format
