lib/netsim/runner.mli: Bgp_engine Bgp_topology Network Validate
