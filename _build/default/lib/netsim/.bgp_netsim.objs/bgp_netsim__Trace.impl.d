lib/netsim/trace.ml: Array Bgp_proto Fmt Hashtbl Int List Option Stdlib
