(** Post-convergence invariant checks.

    At quiescence (no queued messages, no pending MRAI work) a policy-free
    shortest-AS-path BGP network must satisfy:

    - no surviving router routes through a failed router (forwarding chains
      follow live next hops and terminate at an originator);
    - no forwarding loops;
    - if the survivor graph is connected, every survivor has a route to
      every surviving AS, and in single-router-per-AS topologies its AS-path
      length equals the BFS distance in the survivor graph;
    - routers in fully-failed ASes are unreachable: nobody retains a route
      to a dead AS. *)

type issue = { router : int; dest : int; problem : string }

val pp_issue : Format.formatter -> issue -> unit

val check : Network.t -> failure:Bgp_topology.Failure.t -> issue list
(** Empty list = all invariants hold. *)

val check_exn : Network.t -> failure:Bgp_topology.Failure.t -> unit
(** @raise Failure with a readable report if any invariant fails. *)
