module Types = Bgp_proto.Types
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph

type t = {
  (* (a, b) -> what AS b is to AS a *)
  table : (int * int, Types.relationship) Hashtbl.t;
  as_of_router : int array;
}

let as_adjacency topo =
  let adj = Hashtbl.create 256 in
  Graph.fold_edges
    (fun u v () ->
      let a = topo.Topology.as_of_router.(u) and b = topo.Topology.as_of_router.(v) in
      if a <> b then begin
        let add x y =
          let current = Option.value ~default:[] (Hashtbl.find_opt adj x) in
          if not (List.mem y current) then Hashtbl.replace adj x (y :: current)
        in
        add a b;
        add b a
      end)
    topo.Topology.graph ();
  adj

let infer ?(provider_ratio = 2.0) topo =
  let adj = as_adjacency topo in
  let degree a = List.length (Option.value ~default:[] (Hashtbl.find_opt adj a)) in
  let table = Hashtbl.create 256 in
  Hashtbl.iter
    (fun a neighbours ->
      List.iter
        (fun b ->
          if a < b then begin
            let da = float_of_int (degree a) and db = float_of_int (degree b) in
            if da >= provider_ratio *. db then begin
              (* a provides transit to b *)
              Hashtbl.replace table (b, a) Types.Provider;
              Hashtbl.replace table (a, b) Types.Customer
            end
            else if db >= provider_ratio *. da then begin
              Hashtbl.replace table (a, b) Types.Provider;
              Hashtbl.replace table (b, a) Types.Customer
            end
            else begin
              Hashtbl.replace table (a, b) Types.Peer_link;
              Hashtbl.replace table (b, a) Types.Peer_link
            end
          end)
        neighbours)
    adj;
  { table; as_of_router = topo.Topology.as_of_router }

let relation t ~from ~toward =
  let a = t.as_of_router.(from) and b = t.as_of_router.(toward) in
  if a = b then None else Hashtbl.find_opt t.table (a, b)

(* Walk the AS path from the selecting router outward; each hop is
   labelled by what the next AS is to the current one.  Valley-free =
   Provider* Peer_link? Customer*. *)
let valley_free t ~self path =
  let rec walk current ~seen_flat_or_down = function
    | [] -> true
    | next :: rest -> (
      match Hashtbl.find_opt t.table (current, next) with
      | None -> false (* not adjacent at AS level: not a valid path at all *)
      | Some Types.Provider -> (not seen_flat_or_down) && walk next ~seen_flat_or_down rest
      | Some Types.Peer_link ->
        (not seen_flat_or_down) && walk next ~seen_flat_or_down:true rest
      | Some Types.Customer -> walk next ~seen_flat_or_down:true rest)
  in
  walk t.as_of_router.(self) ~seen_flat_or_down:false path
