module Types = Bgp_proto.Types

type event =
  | Update_sent of { time : float; src : int; dst : int; update : Types.update }
  | Update_delivered of { time : float; src : int; dst : int; update : Types.update }
  | Router_failed of { time : float; router : int }
  | Session_down of { time : float; router : int; peer : int }

let time_of = function
  | Update_sent { time; _ }
  | Update_delivered { time; _ }
  | Router_failed { time; _ }
  | Session_down { time; _ } ->
    time

let pp_event ppf = function
  | Update_sent { time; src; dst; update } ->
    Fmt.pf ppf "%10.4f  %3d -> %3d  send %a" time src dst Types.pp_update update
  | Update_delivered { time; src; dst; update } ->
    Fmt.pf ppf "%10.4f  %3d -> %3d  recv %a" time src dst Types.pp_update update
  | Router_failed { time; router } -> Fmt.pf ppf "%10.4f  router %d FAILED" time router
  | Session_down { time; router; peer } ->
    Fmt.pf ppf "%10.4f  router %d: session to %d down" time router peer

type t = {
  capacity : int;
  mutable data : event array;
  mutable next : int;  (* next write position *)
  mutable size : int;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; data = [||]; next = 0; size = 0; dropped = 0 }

let record t event =
  if Array.length t.data = 0 then t.data <- Array.make t.capacity event;
  if t.size = t.capacity then t.dropped <- t.dropped + 1 else t.size <- t.size + 1;
  t.data.(t.next) <- event;
  t.next <- (t.next + 1) mod t.capacity

let length t = t.size
let dropped t = t.dropped

let to_list t =
  let start = (t.next - t.size + t.capacity) mod t.capacity in
  List.init t.size (fun i -> t.data.((start + i) mod t.capacity))

let count t ~pred = List.length (List.filter pred (to_list t))

let sends_by_router t =
  let table = Hashtbl.create 64 in
  List.iter
    (function
      | Update_sent { src; _ } ->
        Hashtbl.replace table src (1 + Option.value ~default:0 (Hashtbl.find_opt table src))
      | Update_delivered _ | Router_failed _ | Session_down _ -> ())
    (to_list t);
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold (fun r c acc -> (r, c) :: acc) table [])

let between t ~lo ~hi =
  List.filter
    (fun e ->
      let time = time_of e in
      time >= lo && time < hi)
    (to_list t)

let dump ?(limit = 50) ppf t =
  let events = to_list t in
  let skip = Stdlib.max 0 (List.length events - limit) in
  if skip > 0 then Fmt.pf ppf "... (%d earlier events)@." skip;
  List.iteri (fun i e -> if i >= skip then Fmt.pf ppf "%a@." pp_event e) events

let clear t =
  t.size <- 0;
  t.next <- 0;
  t.dropped <- 0
