(** Analytic warm-up: compute BGP's steady state directly and install it,
    skipping the cold-start convergence simulation.

    Policy-free shortest-AS-path BGP with deterministic tie-breaks has a
    unique stable state, computable per destination by a Dijkstra-style
    label-settling pass over the session graph (eBGP edges strictly grow
    the AS-path length; iBGP edges strictly worsen the eBGP-beats-iBGP
    tie-break, so ranks are monotone along edges).  The export rule is the
    same pure function ({!Bgp_proto.Export}) the live router uses, so the
    installed state is exactly what a simulated warm-up converges to —
    asserted by the `warmup-equivalence` integration test. *)

val install : Network.t -> unit
(** Install the steady state into every router of a freshly built (not yet
    started) network: Adj-RIB-In, Loc-RIB and Adj-RIB-Out for every
    destination.  Do not also call {!Network.start_all}. *)

val best_paths : Network.t -> dest:int -> Bgp_proto.Types.path option array
(** The computed steady-state selection per router for one destination
    (exposed for tests). *)
