(** Event tracing: a bounded ring buffer of typed simulation events for
    debugging and post-hoc analysis (who sent what when, where sessions
    dropped).  Attach one through {!Network.config}; recording is O(1) and
    allocation-light, so traces can stay on for full experiments. *)

type event =
  | Update_sent of { time : float; src : int; dst : int; update : Bgp_proto.Types.update }
  | Update_delivered of {
      time : float;
      src : int;
      dst : int;
      update : Bgp_proto.Types.update;
    }
  | Router_failed of { time : float; router : int }
  | Session_down of { time : float; router : int; peer : int }
      (** [router] noticed its session to [peer] drop *)

val time_of : event -> float
val pp_event : Format.formatter -> event -> unit

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer; default capacity 100_000 events.  When full, the oldest
    events are overwritten (and counted in [dropped]). *)

val record : t -> event -> unit
val length : t -> int
val dropped : t -> int

val to_list : t -> event list
(** Oldest first. *)

val count : t -> pred:(event -> bool) -> int

val sends_by_router : t -> (int * int) list
(** [(router, updates sent)] sorted by count, busiest first. *)

val between : t -> lo:float -> hi:float -> event list
(** Events with [lo <= time < hi], oldest first. *)

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Print the most recent [limit] (default 50) events. *)

val clear : t -> unit
