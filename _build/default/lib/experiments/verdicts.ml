type verdict = { claim : string; holds : bool; detail : string }

let pp_verdict ppf v =
  Fmt.pf ppf "[%s] %s (%s)" (if v.holds then "PASS" else "FAIL") v.claim v.detail

let all_hold = List.for_all (fun v -> v.holds)

let series fig label = Figure.series_points fig label

(* y values at the smallest / largest x of a series. *)
let at_min s = Shape.first_y s
let at_max s = Shape.last_y s

let v claim holds detail = { claim; holds; detail }

let ratio_claim claim a b ~at ~cmp ~threshold =
  let ya, yb = at a, at b in
  let r = ya /. yb in
  v claim (cmp r threshold) (Printf.sprintf "ratio %.2f vs threshold %.2f" r threshold)

let check_fig1 fig =
  let low = series fig "MRAI=0.5" and high = series fig "MRAI=2.25" in
  [
    ratio_claim "MRAI=0.5 is much worse than MRAI=2.25 for the largest failures" low high
      ~at:at_max ~cmp:( >= ) ~threshold:2.0;
    ratio_claim "MRAI=0.5 is no worse than MRAI=2.25 for the smallest failures" low high
      ~at:at_min ~cmp:( <= ) ~threshold:1.0;
    v "MRAI=0.5 delay rises sharply with failure size"
      (Shape.increasing_in_x ~tolerance:3.0 low)
      (Printf.sprintf "%.1f -> %.1f s" (at_min low) (at_max low));
  ]

let check_fig2 fig =
  let low = series fig "MRAI=0.5" and high = series fig "MRAI=2.25" in
  [
    ratio_claim "MRAI=0.5 generates far more messages at large failures" low high
      ~at:at_max ~cmp:( >= ) ~threshold:2.0;
    ratio_claim "message counts are comparable at the smallest failures" low high
      ~at:at_min ~cmp:( <= ) ~threshold:2.0;
  ]

let check_fig3 fig =
  let s1 = series fig "1% failure"
  and s5 = series fig "5% failure"
  and s10 = series fig "10% failure" in
  let o1 = Shape.argmin s1 and o5 = Shape.argmin s5 and o10 = Shape.argmin s10 in
  [
    v "the 5% curve is V-shaped" (Shape.is_v_shaped s5)
      (Printf.sprintf "min at MRAI=%g" o5);
    v "the 10% curve is V-shaped" (Shape.is_v_shaped s10)
      (Printf.sprintf "min at MRAI=%g" o10);
    v "the optimal MRAI grows with failure size"
      (o1 <= o5 && o5 <= o10 && o1 < o10)
      (Printf.sprintf "optima %g <= %g <= %g" o1 o5 o10);
  ]

let check_fig4 fig =
  let a = Shape.argmin (series fig "50-50")
  and b = Shape.argmin (series fig "70-30")
  and c = Shape.argmin (series fig "85-15") in
  [
    v "the optimal MRAI grows with the degree of the high-degree nodes"
      (a <= b && b <= c && a < c)
      (Printf.sprintf "optima %g (50-50) <= %g (70-30) <= %g (85-15)" a b c);
  ]

let check_fig5 fig =
  let sparse = series fig "avg degree 3.8" and dense = series fig "avg degree 7.6" in
  let oa = Shape.argmin sparse and ob = Shape.argmin dense in
  let ma = Shape.value_at sparse oa and mb = Shape.value_at dense ob in
  [
    v "the optimal MRAI is larger for the denser topology" (oa <= ob)
      (Printf.sprintf "optima %g vs %g" oa ob);
    v "the minimum delay is larger for the denser topology" (mb >= ma)
      (Printf.sprintf "min delays %.1f vs %.1f s" ma mb);
  ]

let check_fig6 fig =
  let good = series fig "low 0.5, high 2.25"
  and bad = series fig "low 2.25, high 0.5"
  and low = series fig "MRAI=0.5"
  and high = series fig "MRAI=2.25" in
  [
    ratio_claim "(low .5, high 2.25) tracks MRAI=2.25 for large failures" good high
      ~at:at_max ~cmp:( <= ) ~threshold:1.6;
    ratio_claim "(low .5, high 2.25) beats MRAI=2.25 for small failures" good high
      ~at:at_min ~cmp:( <= ) ~threshold:0.9;
    ratio_claim "the reversed assignment is very bad for large failures" bad high
      ~at:at_max ~cmp:( >= ) ~threshold:2.0;
    ratio_claim "the reversed assignment behaves like MRAI=0.5 for large failures" bad low
      ~at:at_max ~cmp:( >= ) ~threshold:0.5;
  ]

let check_fig7 fig =
  let dynamic = series fig "dynamic"
  and low = series fig "MRAI=0.5"
  and mid = series fig "MRAI=1.25"
  and high = series fig "MRAI=2.25" in
  [
    ratio_claim "dynamic is near the best static for small failures" dynamic low
      ~at:at_min ~cmp:( <= ) ~threshold:1.5;
    ratio_claim "dynamic is much better than MRAI=0.5 for large failures" dynamic low
      ~at:at_max ~cmp:( <= ) ~threshold:0.5;
    ratio_claim "dynamic stays below MRAI=1.25 for the largest failures" dynamic mid
      ~at:at_max ~cmp:( <= ) ~threshold:1.1;
    ratio_claim "dynamic is within ~2x of MRAI=2.25 for the largest failures" dynamic high
      ~at:at_max ~cmp:( <= ) ~threshold:2.2;
  ]

let check_fig8 fig =
  let tight = series fig "upTh=0.2" and loose = series fig "upTh=1.25" in
  [
    ratio_claim "a low upTh hurts small failures relative to a high upTh" tight loose
      ~at:at_min ~cmp:( >= ) ~threshold:1.0;
    ratio_claim "a low upTh is not worse for large failures" tight loose ~at:at_max
      ~cmp:( <= ) ~threshold:1.3;
  ]

let check_fig9 fig =
  let zero = series fig "downTh=0" and big = series fig "downTh=0.3" in
  [
    ratio_claim "a large downTh increases the delay for large failures" big zero
      ~at:at_max ~cmp:( >= ) ~threshold:1.0;
  ]

let check_fig10 fig =
  let batch = series fig "batching (MRAI=0.5)"
  and dynamic = series fig "dynamic"
  and low = series fig "MRAI=0.5" in
  [
    ratio_claim "batching cuts the large-failure delay by a factor of 3+" batch low
      ~at:at_max ~cmp:( <= ) ~threshold:(1.0 /. 3.0);
    ratio_claim "batching stays cheap for small failures" batch low ~at:at_min
      ~cmp:( <= ) ~threshold:2.0;
    ratio_claim "batching beats the dynamic scheme for large failures" batch dynamic
      ~at:at_max ~cmp:( <= ) ~threshold:1.0;
  ]

let check_fig11 fig =
  let batch = series fig "batching (MRAI=0.5)"
  and low = series fig "MRAI=0.5"
  and high = series fig "MRAI=2.25" in
  [
    ratio_claim "batching generates far fewer messages than plain MRAI=0.5" batch low
      ~at:at_max ~cmp:( <= ) ~threshold:0.5;
    ratio_claim "batching's message count is in the MRAI=2.25 range" batch high
      ~at:at_max ~cmp:( <= ) ~threshold:2.5;
  ]

let check_fig12 fig =
  let batch = series fig "batching" and plain = series fig "no batching" in
  let largest_x = fst (List.hd (List.rev plain)) in
  let r_low = Shape.first_y plain /. Shape.first_y batch in
  let r_high = Shape.value_at plain largest_x /. Shape.value_at batch largest_x in
  [
    v "batching helps a lot below the optimal MRAI" (r_low >= 1.5)
      (Printf.sprintf "%.2fx at the smallest MRAI" r_low);
    v "batching has little effect at/above the optimal MRAI"
      (r_high >= 0.7 && r_high <= 1.4)
      (Printf.sprintf "%.2fx at the largest MRAI" r_high);
  ]

let check_fig13 fig =
  let batch = series fig "batching (MRAI=0.5)"
  and dynamic = series fig "dynamic"
  and low = series fig "MRAI=0.5" in
  [
    ratio_claim "batching cuts the large-failure delay substantially" batch low
      ~at:at_max ~cmp:( <= ) ~threshold:0.5;
    ratio_claim "the dynamic scheme also beats plain MRAI=0.5 at large failures" dynamic
      low ~at:at_max ~cmp:( <= ) ~threshold:0.8;
  ]

let check fig =
  match fig.Figure.id with
  | "fig1" -> check_fig1 fig
  | "fig2" -> check_fig2 fig
  | "fig3" -> check_fig3 fig
  | "fig4" -> check_fig4 fig
  | "fig5" -> check_fig5 fig
  | "fig6" -> check_fig6 fig
  | "fig7" -> check_fig7 fig
  | "fig8" -> check_fig8 fig
  | "fig9" -> check_fig9 fig
  | "fig10" -> check_fig10 fig
  | "fig11" -> check_fig11 fig
  | "fig12" -> check_fig12 fig
  | "fig13" -> check_fig13 fig
  | _ -> []
