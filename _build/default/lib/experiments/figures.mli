(** One constructor per figure of the paper's evaluation (Figs 1-13).

    Each function simulates the corresponding sweep (through the shared
    {!Sweep} cache) and returns a {!Figure.t} whose series mirror the
    curves in the paper.  Pass {!Scenarios.quick} for a cut-down smoke
    version, {!Scenarios.default} for the paper-scale version. *)

val fig01 : Scenarios.opts -> Figure.t
(** Convergence delay vs failure size for MRAI 0.5 / 1.25 / 2.25 s. *)

val fig02 : Scenarios.opts -> Figure.t
(** Update messages vs failure size, same runs as Fig 1. *)

val fig03 : Scenarios.opts -> Figure.t
(** Delay vs MRAI for failures of 1%, 5% and 10% (the V-curves). *)

val fig04 : Scenarios.opts -> Figure.t
(** Delay vs MRAI at 5% failure for the 50-50 / 70-30 / 85-15 degree
    distributions (same average degree 3.8). *)

val fig05 : Scenarios.opts -> Figure.t
(** Delay vs MRAI at 5% failure for 50-50 with average degree 3.8 vs
    7.6. *)

val fig06 : Scenarios.opts -> Figure.t
(** Degree-dependent MRAI vs constant MRAIs, over failure size. *)

val fig07 : Scenarios.opts -> Figure.t
(** Dynamic MRAI (0.5/1.25/2.25, upTh .65, downTh .05) vs the three
    statics, over failure size. *)

val fig08 : Scenarios.opts -> Figure.t
(** Dynamic scheme with downTh = 0 and upTh in {0.2, 0.65, 1.25}. *)

val fig09 : Scenarios.opts -> Figure.t
(** Dynamic scheme with upTh = 0.65 and downTh in {0, 0.05, 0.3}. *)

val fig10 : Scenarios.opts -> Figure.t
(** Batching (MRAI 0.5) vs dynamic vs batching+dynamic vs statics;
    delay over failure size. *)

val fig11 : Scenarios.opts -> Figure.t
(** Messages generated: batching vs MRAI 0.5 and 2.25. *)

val fig12 : Scenarios.opts -> Figure.t
(** Delay at 5% failure vs MRAI, with and without batching. *)

val fig13 : Scenarios.opts -> Figure.t
(** Batching / dynamic / combined on realistic multi-router topologies. *)

val all : (string * (Scenarios.opts -> Figure.t)) list
(** [("fig1", fig01); ...] in paper order. *)

val by_id : string -> (Scenarios.opts -> Figure.t) option
(** Accepts "fig1", "fig01", "1", ... *)
