(** Result containers for regenerated paper figures, with text and CSV
    rendering. *)

type point = { x : float; y : float; sd : float }
type series = { label : string; points : point list }

type t = {
  id : string;  (** e.g. "fig7" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  paper_expectation : string;
      (** the qualitative shape the paper reports, quoted/summarized *)
}

val pp : Format.formatter -> t -> unit
(** Aligned text table: one row per x, one column per series. *)

val pp_chart : Format.formatter -> t -> unit
(** Rough ASCII bar chart: one row per series, bars scaled to the
    figure-wide maximum (quick visual check of who wins where). *)

val to_csv : t -> string
(** Long format: [figure,series,x,y,sd]. *)

val series_points : t -> string -> (float * float) list
(** [(x, y)] pairs of the named series. @raise Not_found. *)
