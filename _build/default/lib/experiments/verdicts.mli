(** Paper-vs-measured shape verdicts.

    For each regenerated figure this module evaluates the qualitative
    claims the paper makes about it (who wins, rough factors, where optima
    sit).  Thresholds are deliberately tolerant: the substrate is our own
    simulator, not the authors' SSFNet testbed, so only shapes are
    checked. *)

type verdict = { claim : string; holds : bool; detail : string }

val check : Figure.t -> verdict list
(** Claims for the given figure (dispatched on [Figure.id]); empty for
    unknown ids. *)

val pp_verdict : Format.formatter -> verdict -> unit
val all_hold : verdict list -> bool
