(** Cached scenario execution.

    Several figures share the exact same underlying runs (e.g. Fig 1 and
    Fig 2 are delay and message count over the same sweep); the cache keys
    on the structural content of (scenario, trials) so shared points are
    simulated once per process. *)

val results : Bgp_netsim.Runner.scenario -> trials:int -> Bgp_netsim.Runner.result list
(** Runs seeds [scenario.seed .. scenario.seed + trials - 1] (memoized). *)

val mean_of : (Bgp_netsim.Runner.result -> float) -> Bgp_netsim.Runner.result list -> float

val sd_of : (Bgp_netsim.Runner.result -> float) -> Bgp_netsim.Runner.result list -> float

val point :
  Bgp_netsim.Runner.scenario ->
  trials:int ->
  x:float ->
  metric:(Bgp_netsim.Runner.result -> float) ->
  Figure.point

val clear_cache : unit -> unit
val cache_size : unit -> int
