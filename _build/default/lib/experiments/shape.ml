let argmin = function
  | [] -> invalid_arg "Shape.argmin: empty"
  | (x0, y0) :: rest ->
    fst (List.fold_left (fun (bx, by) (x, y) -> if y < by then (x, y) else (bx, by)) (x0, y0) rest)

let value_at points x =
  match List.find_opt (fun (px, _) -> Float.equal px x) points with
  | Some (_, y) -> y
  | None -> raise Not_found

let last_y points =
  match List.rev points with [] -> invalid_arg "Shape.last_y: empty" | (_, y) :: _ -> y

let first_y = function [] -> invalid_arg "Shape.first_y: empty" | (_, y) :: _ -> y

let is_v_shaped ?(tolerance = 1.3) points =
  match points with
  | [] | [ _ ] | [ _; _ ] -> false
  | _ ->
    let min_y = List.fold_left (fun acc (_, y) -> Float.min acc y) infinity points in
    let x_min = argmin points in
    let xs = List.map fst points in
    let x_first = List.hd xs and x_last = List.hd (List.rev xs) in
    x_min > x_first && x_min < x_last
    && first_y points >= tolerance *. min_y
    && last_y points >= tolerance *. min_y

let increasing_in_x ?(tolerance = 1.2) points =
  last_y points >= tolerance *. first_y points

let common_xs a b =
  List.filter_map
    (fun (x, _) -> if List.exists (fun (x', _) -> Float.equal x x') b then Some x else None)
    a

let ratio_at_last a b =
  match List.rev (common_xs a b) with
  | [] -> invalid_arg "Shape.ratio_at_last: no common x"
  | x :: _ -> value_at a x /. value_at b x

let dominates ?(at_least = 1.0) a b =
  match common_xs a b with
  | [] -> false
  | xs -> List.for_all (fun x -> value_at a x >= at_least *. value_at b x) xs
