lib/experiments/figures.mli: Figure Scenarios
