lib/experiments/sweep.mli: Bgp_netsim Figure
