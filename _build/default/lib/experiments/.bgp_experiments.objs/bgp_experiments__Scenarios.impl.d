lib/experiments/scenarios.ml: Bgp_core Bgp_netsim Bgp_proto Bgp_topology
