lib/experiments/verdicts.mli: Figure Format
