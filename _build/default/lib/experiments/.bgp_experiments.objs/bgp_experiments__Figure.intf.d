lib/experiments/figure.mli: Format
