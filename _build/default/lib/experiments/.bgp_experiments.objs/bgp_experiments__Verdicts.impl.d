lib/experiments/verdicts.ml: Figure Fmt List Printf Shape
