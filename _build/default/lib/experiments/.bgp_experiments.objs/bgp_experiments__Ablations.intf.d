lib/experiments/ablations.mli: Figure Scenarios
