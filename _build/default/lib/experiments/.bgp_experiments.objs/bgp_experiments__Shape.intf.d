lib/experiments/shape.mli:
