lib/experiments/scenarios.mli: Bgp_core Bgp_netsim Bgp_topology
