lib/experiments/ablations.ml: Bgp_core Bgp_netsim Bgp_proto Bgp_topology Figure List Printf Scenarios Sweep
