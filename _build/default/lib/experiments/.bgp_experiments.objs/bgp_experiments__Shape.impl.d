lib/experiments/shape.ml: Float List
