lib/experiments/figure.ml: Array Buffer Float Fmt List Printf Stdlib String
