lib/experiments/sweep.ml: Bgp_engine Bgp_netsim Digest Figure Hashtbl List Marshal
