lib/experiments/figures.ml: Bgp_core Bgp_netsim Bgp_topology Figure List Printf Scenarios String Sweep
