(** Qualitative "shape" predicates used to check regenerated figures
    against what the paper reports (absolute numbers are not expected to
    match; shapes are). *)

val argmin : (float * float) list -> float
(** x of the smallest y.  @raise Invalid_argument on empty input. *)

val value_at : (float * float) list -> float -> float
(** y at the given x.  @raise Not_found. *)

val last_y : (float * float) list -> float
val first_y : (float * float) list -> float

val is_v_shaped : ?tolerance:float -> (float * float) list -> bool
(** The minimum is strictly inside the x-range and both endpoints exceed
    it by at least [tolerance] (default 1.3x). *)

val increasing_in_x : ?tolerance:float -> (float * float) list -> bool
(** Last y exceeds first y by at least [tolerance] (default 1.2x). *)

val ratio_at_last : (float * float) list -> (float * float) list -> float
(** [ratio_at_last a b] = y_a / y_b at the largest common x. *)

val dominates :
  ?at_least:float -> (float * float) list -> (float * float) list -> bool
(** [dominates a b] iff y_a >= y_b at every common x (scaled by
    [at_least], default 1.0).  "a is everywhere at least as slow as b". *)
