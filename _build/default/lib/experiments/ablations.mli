(** Ablation studies beyond the paper's figures: the design choices
    DESIGN.md calls out, each regenerated as a small table.

    - [detectors]: the three overload detectors of Section 4.3 (queue
      work, CPU utilization, received-message count);
    - [batching_decomposition]: stale-update elimination alone
      (fifo-dedup) vs elimination + per-destination reordering (batched);
    - [deshpande_sikdar]: the related-work MRAI bypasses of Section 2
      (expected: lower delay for small failures, many more messages);
    - [mrai_mode]: per-peer vs per-destination MRAI timers (Section 2);
    - [withdrawal_pacing]: RFC-style unpaced withdrawals vs WRATE;
    - [loop_check]: sender-side loop check on/off (message cost);
    - [size_scaling]: 60 / 120 / 240 nodes (Section 4: "the same trends");
    - [dynamic_restart]: Section 5 future work — applying a dynamic level
      change to running timers immediately. *)

val detectors : Scenarios.opts -> Figure.t
val batching_decomposition : Scenarios.opts -> Figure.t
val tcp_batching : Scenarios.opts -> Figure.t
val deshpande_sikdar : Scenarios.opts -> Figure.t
val deshpande_sikdar_messages : Scenarios.opts -> Figure.t
val mrai_mode : Scenarios.opts -> Figure.t
val prefix_scaling : Scenarios.opts -> Figure.t
val policies : Scenarios.opts -> Figure.t
val withdrawal_pacing : Scenarios.opts -> Figure.t
val loop_check : Scenarios.opts -> Figure.t
val damping : Scenarios.opts -> Figure.t
val detection : Scenarios.opts -> Figure.t
val size_scaling : Scenarios.opts -> Figure.t
val dynamic_restart : Scenarios.opts -> Figure.t

val all : (string * (Scenarios.opts -> Figure.t)) list
