type point = { x : float; y : float; sd : float }
type series = { label : string; points : point list }

type t = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  paper_expectation : string;
}

let xs t =
  let all = List.concat_map (fun s -> List.map (fun p -> p.x) s.points) t.series in
  List.sort_uniq Float.compare all

let value_at s x =
  List.find_opt (fun p -> Float.equal p.x x) s.points

let pp ppf t =
  Fmt.pf ppf "=== %s: %s ===@." t.id t.title;
  Fmt.pf ppf "paper: %s@." t.paper_expectation;
  let width = 22 in
  Fmt.pf ppf "%-10s" t.xlabel;
  List.iter (fun s -> Fmt.pf ppf " | %*s" width s.label) t.series;
  Fmt.pf ppf "@.";
  List.iter
    (fun x ->
      Fmt.pf ppf "%-10g" x;
      List.iter
        (fun s ->
          match value_at s x with
          | Some p ->
            if p.sd > 0.0 then
              Fmt.pf ppf " | %*s" width (Printf.sprintf "%.2f +/- %.2f" p.y p.sd)
            else Fmt.pf ppf " | %*s" width (Printf.sprintf "%.2f" p.y)
          | None -> Fmt.pf ppf " | %*s" width "-")
        t.series;
      Fmt.pf ppf "@.")
    (xs t);
  Fmt.pf ppf "(y: %s)@." t.ylabel

let pp_chart ppf t =
  let levels = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let all_y = List.concat_map (fun s -> List.map (fun p -> p.y) s.points) t.series in
  let max_y = List.fold_left Float.max 0.0 all_y in
  if max_y > 0.0 then begin
    Fmt.pf ppf "chart (rows: series over %s; bar height ~ %s, max %.4g):@." t.xlabel
      t.ylabel max_y;
    List.iter
      (fun s ->
        let bar =
          String.concat ""
            (List.map
               (fun p ->
                 let idx =
                   int_of_float (Float.round (p.y /. max_y *. 9.0))
                 in
                 String.make 1 levels.(Stdlib.max 0 (Stdlib.min 9 idx)))
               s.points)
        in
        Fmt.pf ppf "  %-22s |%s|@." s.label bar)
      t.series
  end

let to_csv t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "figure,series,x,y,sd\n";
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Buffer.add_string buffer
            (Printf.sprintf "%s,%s,%g,%g,%g\n" t.id s.label p.x p.y p.sd))
        s.points)
    t.series;
  Buffer.contents buffer

let series_points t label =
  match List.find_opt (fun s -> s.label = label) t.series with
  | None -> raise Not_found
  | Some s -> List.map (fun p -> (p.x, p.y)) s.points
