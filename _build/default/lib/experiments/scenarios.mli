(** Shared experiment parameters: the paper's default topology, failure
    sizes, MRAI grids, and scenario constructors. *)

module Runner := Bgp_netsim.Runner

type opts = {
  n : int;  (** routers in flat topologies (paper: 120) *)
  trials : int;  (** seeds averaged per point *)
  seed : int;  (** base seed *)
  sizes : float list;  (** failure fractions for size sweeps *)
  mrais : float list;  (** MRAI grid for MRAI sweeps *)
  realistic_ases : int;  (** AS count for Fig 13 *)
}

val default : opts
(** 120 nodes, 3 trials, sizes 1/2.5/5/10/15/20%, MRAI grid
    0.25..4 s, 120 ASes. *)

val quick : opts
(** Cut-down grids for smoke runs: 2 trials, sizes 1/5/10/20%,
    MRAI grid 0.5/1.25/2.25/4, 60 ASes. *)

val fig1_mrais : float list
(** The three static MRAIs of Figs 1-2 and 7: 0.5, 1.25, 2.25 s. *)

val flat :
  ?spec:Bgp_topology.Degree_dist.spec ->
  opts ->
  scheme:Bgp_core.Mrai_controller.scheme ->
  ?discipline:Bgp_core.Input_queue.discipline ->
  frac:float ->
  unit ->
  Runner.scenario
(** Scenario on a flat topology (default spec: 70-30). *)

val realistic :
  opts ->
  scheme:Bgp_core.Mrai_controller.scheme ->
  ?discipline:Bgp_core.Input_queue.discipline ->
  frac:float ->
  unit ->
  Runner.scenario
(** Fig 13's multi-router-per-AS scenario. *)

val paper_dynamic : Bgp_core.Mrai_controller.scheme
(** Levels 0.5/1.25/2.25, upTh 0.65, downTh 0.05 (Fig 7). *)

val realistic_dynamic : Bgp_core.Mrai_controller.scheme
(** Levels 0.5/1.25/3.5 for the realistic topologies (Section 4.4:
    optimal 0.5 small, 3.5 large). *)
