module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology

type opts = {
  n : int;
  trials : int;
  seed : int;
  sizes : float list;
  mrais : float list;
  realistic_ases : int;
}

let default =
  {
    n = 120;
    trials = 3;
    seed = 1;
    sizes = [ 0.01; 0.025; 0.05; 0.10; 0.15; 0.20 ];
    mrais = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.75; 2.25; 3.0; 4.0 ];
    realistic_ases = 120;
  }

let quick =
  {
    n = 120;
    trials = 2;
    seed = 1;
    sizes = [ 0.01; 0.05; 0.10; 0.20 ];
    mrais = [ 0.5; 1.25; 2.25; 4.0 ];
    realistic_ases = 60;
  }

let fig1_mrais = [ 0.5; 1.25; 2.25 ]

let net scheme discipline =
  Network.config_default
    Config.(default |> with_mrai scheme |> with_discipline discipline)

let flat ?(spec = Degree_dist.skewed_70_30) opts ~scheme ?(discipline = Bgp_core.Input_queue.Fifo)
    ~frac () =
  Runner.scenario ~net:(net scheme discipline) ~failure:(Runner.Fraction frac)
    ~seed:opts.seed
    (Runner.Flat { spec; n = opts.n })

let realistic opts ~scheme ?(discipline = Bgp_core.Input_queue.Fifo) ~frac () =
  Runner.scenario ~net:(net scheme discipline) ~failure:(Runner.Fraction frac)
    ~seed:opts.seed
    (Runner.Realistic (As_topology.default ~n_ases:opts.realistic_ases))

let paper_dynamic = Mrai.paper_dynamic ()

let realistic_dynamic =
  Mrai.Dynamic
    {
      levels = [| 0.5; 1.25; 3.5 |];
      up_threshold = 0.65;
      down_threshold = 0.05;
      detector = Mrai.Queue_work;
    }
