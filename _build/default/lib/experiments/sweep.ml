module Runner = Bgp_netsim.Runner
module Stats = Bgp_engine.Stats

let cache : (string, Runner.result list) Hashtbl.t = Hashtbl.create 64

let key scenario trials =
  Digest.string (Marshal.to_string (scenario, trials) [])

let results scenario ~trials =
  let k = key scenario trials in
  match Hashtbl.find_opt cache k with
  | Some r -> r
  | None ->
    let r =
      List.init trials (fun i ->
          Runner.run { scenario with Runner.seed = scenario.Runner.seed + i })
    in
    Hashtbl.replace cache k r;
    r

let summary metric results =
  let stats = Stats.create () in
  List.iter (fun r -> Stats.add stats (metric r)) results;
  Stats.summarize stats

let mean_of metric results = (summary metric results).Stats.mean
let sd_of metric results = (summary metric results).Stats.stddev

let point scenario ~trials ~x ~metric =
  let r = results scenario ~trials in
  let s = summary metric r in
  { Figure.x; y = s.Stats.mean; sd = s.Stats.stddev }

let clear_cache () = Hashtbl.reset cache
let cache_size () = Hashtbl.length cache
