(** Classic BRITE topology models (Section 3.1 lists Waxman,
    Albert-Barabasi and GLP as the generators BRITE supports).  The paper's
    main experiments use the skewed distributions in {!Degree_dist}; these
    models are provided for validation and extension studies. *)

module Rng := Bgp_engine.Rng

val waxman :
  Rng.t -> positions:Geometry.point array -> alpha:float -> beta:float -> Graph.t
(** Waxman [15]: edge (u,v) with probability
    [alpha * exp (-d(u,v) / (beta * l_max))].  The result is patched to be
    connected by joining components with their geometrically shortest
    cross edge. *)

val barabasi_albert : Rng.t -> n:int -> m:int -> Graph.t
(** Albert-Barabasi [16] preferential attachment, [m] edges per new node.
    Requires [1 <= m < n]. *)

val glp : Rng.t -> n:int -> m:int -> p:float -> beta:float -> Graph.t
(** Generalized Linear Preference [17]: with probability [p] add [m] new
    links between existing nodes, otherwise add a new node with [m] links;
    attachment weight of node [i] is [degree i - beta] with [beta < 1]. *)
