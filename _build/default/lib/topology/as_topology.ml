module Rng = Bgp_engine.Rng
module Dist = Bgp_engine.Dist

type config = {
  n_ases : int;
  as_size : Dist.t;
  inter_as_spec : Degree_dist.spec;
  intra_extra_edges : float;
  max_extent : float;
}

let default ~n_ases =
  {
    n_ases;
    as_size = Bounded_pareto { alpha = 1.2; lo = 1.0; hi = 100.0 };
    inter_as_spec = Degree_dist.internet_like;
    intra_extra_edges = 0.3;
    max_extent = 150.0;
  }

let sample_sizes rng cfg =
  Array.init cfg.n_ases (fun _ ->
      let s = int_of_float (Float.round (Dist.sample cfg.as_size rng)) in
      Stdlib.max 1 (Stdlib.min 100 s))

(* The paper assigns the highest inter-AS degrees to the largest ASes. *)
let assign_degrees_by_size rng cfg sizes =
  let degrees = Degree_dist.sample_sequence cfg.inter_as_spec rng ~n:cfg.n_ases in
  let by_size = Array.init cfg.n_ases (fun i -> i) in
  Array.sort (fun a b -> Int.compare sizes.(b) sizes.(a)) by_size;
  let sorted_degrees = Array.copy degrees in
  Array.sort (fun a b -> Int.compare b a) sorted_degrees;
  let assigned = Array.make cfg.n_ases 0 in
  Array.iteri (fun rank asn -> assigned.(asn) <- sorted_degrees.(rank)) by_size;
  assigned

(* Random connected intra-AS wiring: a random spanning tree (each router
   attaches to a uniformly chosen earlier one) plus a few random extras. *)
let wire_intra rng graph routers ~extra =
  let arr = Array.of_list routers in
  Rng.shuffle rng arr;
  let k = Array.length arr in
  for i = 1 to k - 1 do
    Graph.add_edge graph arr.(i) arr.(Rng.int rng i)
  done;
  if k > 2 then begin
    let n_extra = int_of_float (Float.round (extra *. float_of_int k)) in
    for _ = 1 to n_extra do
      let u = arr.(Rng.int rng k) and v = arr.(Rng.int rng k) in
      if u <> v then Graph.add_edge graph u v
    done
  end

let generate rng cfg =
  if cfg.n_ases < 2 then invalid_arg "As_topology.generate: need at least 2 ASes";
  let sizes = sample_sizes rng cfg in
  let degrees = assign_degrees_by_size rng cfg sizes in
  (* Inter-AS degree cannot exceed n_ases - 1. *)
  let degrees = Array.map (fun d -> Stdlib.min (cfg.n_ases - 1) d) degrees in
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then degrees.(0) <- degrees.(0) + 1;
  let as_graph = Degree_dist.realize rng degrees in
  (* Router id ranges per AS. *)
  let n_routers = Array.fold_left ( + ) 0 sizes in
  let first_router = Array.make cfg.n_ases 0 in
  let _ =
    Array.fold_left
      (fun (asn, offset) size ->
        first_router.(asn) <- offset;
        (asn + 1, offset + size))
      (0, 0) sizes
  in
  let as_of_router = Array.make n_routers 0 in
  Array.iteri
    (fun asn size ->
      for i = 0 to size - 1 do
        as_of_router.(first_router.(asn) + i) <- asn
      done)
    sizes;
  (* Placement: AS disc area proportional to AS size. *)
  let max_size = Array.fold_left Stdlib.max 1 sizes in
  let positions = Array.make n_routers Geometry.grid_center in
  let centers = Array.init cfg.n_ases (fun _ -> Geometry.random_point rng) in
  Array.iteri
    (fun asn size ->
      let radius =
        cfg.max_extent *. sqrt (float_of_int size /. float_of_int max_size)
      in
      for i = 0 to size - 1 do
        positions.(first_router.(asn) + i) <-
          Geometry.random_point_in_disc rng ~center:centers.(asn) ~radius
      done)
    sizes;
  let graph = Graph.create n_routers in
  Array.iteri
    (fun asn size ->
      let routers = List.init size (fun i -> first_router.(asn) + i) in
      wire_intra rng graph routers ~extra:cfg.intra_extra_edges)
    sizes;
  (* Each AS-level edge becomes one link between random border routers. *)
  List.iter
    (fun (a, b) ->
      let pick asn = first_router.(asn) + Rng.int rng sizes.(asn) in
      Graph.add_edge graph (pick a) (pick b))
    (Graph.edges as_graph);
  { Topology.graph; positions; as_of_router; n_ases = cfg.n_ases }
