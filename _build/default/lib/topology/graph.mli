(** Simple undirected graphs (no self-loops, no multi-edges), indexed by
    dense integer node ids. *)

type t

val create : int -> t
(** [create n] makes an edgeless graph on nodes [0 .. n-1]. *)

val num_nodes : t -> int
val num_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are rejected with [Invalid_argument]. *)

val remove_edge : t -> int -> int -> unit
val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Sorted ascending. *)

val degree : t -> int -> int
val avg_degree : t -> float
val max_degree : t -> int

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val is_connected : t -> bool
(** Vacuously true for the empty graph. *)

val connected_components : t -> int list list

val bfs_dist : t -> src:int -> int array
(** Hop distances from [src]; unreachable nodes get [max_int]. *)

val is_connected_subset : t -> keep:(int -> bool) -> bool
(** Is the subgraph induced by the nodes satisfying [keep] connected?
    Used to check that a regional failure does not partition survivors. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
