lib/topology/topology.ml: Array Bgp_engine Degree_dist Fmt Geometry Graph Int List
