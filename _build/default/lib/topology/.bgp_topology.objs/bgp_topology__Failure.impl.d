lib/topology/failure.ml: Array Float Fmt Geometry Graph List Topology
