lib/topology/graph.mli: Format
