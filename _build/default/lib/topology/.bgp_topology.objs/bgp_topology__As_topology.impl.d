lib/topology/as_topology.ml: Array Bgp_engine Degree_dist Float Geometry Graph Int List Stdlib Topology
