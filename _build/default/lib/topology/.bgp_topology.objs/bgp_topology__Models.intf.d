lib/topology/models.mli: Bgp_engine Geometry Graph
