lib/topology/as_topology.mli: Bgp_engine Degree_dist Topology
