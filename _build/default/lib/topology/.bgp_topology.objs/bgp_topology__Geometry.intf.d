lib/topology/geometry.mli: Bgp_engine Format
