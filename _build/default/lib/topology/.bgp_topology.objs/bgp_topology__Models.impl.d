lib/topology/models.ml: Array Bgp_engine Float Geometry Graph List Stdlib
