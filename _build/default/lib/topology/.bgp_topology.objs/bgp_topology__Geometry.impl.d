lib/topology/geometry.ml: Bgp_engine Float Fmt
