lib/topology/degree_dist.mli: Bgp_engine Graph
