lib/topology/degree_dist.ml: Array Bgp_engine Float Graph Hashtbl Int List Stdlib
