lib/topology/failure.mli: Format Geometry Topology
