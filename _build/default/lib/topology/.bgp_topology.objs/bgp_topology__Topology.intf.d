lib/topology/topology.mli: Bgp_engine Degree_dist Format Geometry Graph
