lib/topology/graph.ml: Array Fmt Int List Printf Queue Stdlib
