module Rng = Bgp_engine.Rng

type t = {
  graph : Graph.t;
  positions : Geometry.point array;
  as_of_router : int array;
  n_ases : int;
}

let of_graph rng graph =
  let n = Graph.num_nodes graph in
  {
    graph;
    positions = Array.init n (fun _ -> Geometry.random_point rng);
    as_of_router = Array.init n (fun i -> i);
    n_ases = n;
  }

let flat rng ~spec ~n = of_graph rng (Degree_dist.generate spec rng ~n)

let num_routers t = Graph.num_nodes t.graph

let inter_as_degree t r =
  let own = t.as_of_router.(r) in
  let foreign =
    List.filter_map
      (fun v ->
        let a = t.as_of_router.(v) in
        if a = own then None else Some a)
      (Graph.neighbors t.graph r)
  in
  List.length (List.sort_uniq Int.compare foreign)

let routers_of_as t a =
  let acc = ref [] in
  for r = num_routers t - 1 downto 0 do
    if t.as_of_router.(r) = a then acc := r :: !acc
  done;
  !acc

let is_ebgp t u v = t.as_of_router.(u) <> t.as_of_router.(v)

let validate t =
  let n = num_routers t in
  if Array.length t.positions <> n then Error "positions length mismatch"
  else if Array.length t.as_of_router <> n then Error "as_of_router length mismatch"
  else if Array.exists (fun a -> a < 0 || a >= t.n_ases) t.as_of_router then
    Error "AS id out of range"
  else if not (Graph.is_connected t.graph) then Error "graph not connected"
  else Ok ()

let pp ppf t =
  Fmt.pf ppf "topology(routers=%d, ases=%d, %a)" (num_routers t) t.n_ases Graph.pp t.graph
