(** Large-scale failure scenarios: geographically contiguous sets of
    routers (Section 3.1: "failures in contiguous areas of the grid,
    usually the center of the grid to avoid edge effects"; Section 3.2:
    all routers and links in the failed area become unoperational). *)

type t = {
  failed : bool array;  (** indexed by router id *)
  count : int;
  center : Geometry.point;
  radius : float;  (** distance of the farthest failed router *)
}

val none : Topology.t -> t

val contiguous : ?center:Geometry.point -> Topology.t -> fraction:float -> t
(** [contiguous topo ~fraction] fails the [round (fraction * n)] routers
    closest to [center] (default: the grid centre).  [fraction] in
    [\[0, 1\]]. *)

val single : Topology.t -> router:int -> t
(** Isolated failure of one router (the classic small-failure case). *)

val of_list : Topology.t -> int list -> t
(** Arbitrary failure set (for tests and custom scenarios). *)

val is_failed : t -> int -> bool
val failed_list : t -> int list
val survivors : t -> int list

val survivors_connected : Topology.t -> t -> bool
(** Whether the surviving routers still form one connected component. *)

val pp : Format.formatter -> t -> unit
