(** A placed router-level topology: the object the simulator consumes.

    For the paper's "simple" scenarios every AS has exactly one router
    ([flat]); the "realistic" scenarios of Fig 13 use multiple routers per
    AS ({!As_topology.generate}, re-exported here as [realistic]). *)

module Rng := Bgp_engine.Rng

type t = {
  graph : Graph.t;  (** router-level connectivity *)
  positions : Geometry.point array;  (** router positions on the grid *)
  as_of_router : int array;  (** AS id of each router *)
  n_ases : int;
}

val flat : Rng.t -> spec:Degree_dist.spec -> n:int -> t
(** One router per AS ([as_of_router.(i) = i]), degree distribution per
    [spec], positions uniform on the 1000x1000 grid (Section 3.1). *)

val of_graph : Rng.t -> Graph.t -> t
(** Wrap an existing graph as a one-router-per-AS topology with uniform
    random placement (used with the {!Models} generators and in tests). *)

val num_routers : t -> int

val inter_as_degree : t -> int -> int
(** Number of distinct foreign ASes a router's AS connects to through this
    router's own links.  Equal to graph degree in flat topologies; used by
    the degree-dependent MRAI assignment. *)

val routers_of_as : t -> int -> int list
val is_ebgp : t -> int -> int -> bool
(** Do the two routers belong to different ASes? *)

val validate : t -> (unit, string) result
(** Structural sanity: sizes agree, graph connected, AS ids in range. *)

val pp : Format.formatter -> t -> unit
