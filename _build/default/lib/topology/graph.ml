type t = { n : int; adj : int list array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n []; m = 0 }

let num_nodes t = t.n
let num_edges t = t.m

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Graph: node %d out of range" v)

let mem_edge t u v =
  check_node t u;
  check_node t v;
  List.mem v t.adj.(u)

let add_edge t u v =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (List.mem v t.adj.(u)) then begin
    t.adj.(u) <- List.merge Int.compare [ v ] t.adj.(u);
    t.adj.(v) <- List.merge Int.compare [ u ] t.adj.(v);
    t.m <- t.m + 1
  end

let remove_edge t u v =
  check_node t u;
  check_node t v;
  if List.mem v t.adj.(u) then begin
    t.adj.(u) <- List.filter (fun w -> w <> v) t.adj.(u);
    t.adj.(v) <- List.filter (fun w -> w <> u) t.adj.(v);
    t.m <- t.m - 1
  end

let neighbors t v =
  check_node t v;
  t.adj.(v)

let degree t v =
  check_node t v;
  List.length t.adj.(v)

let avg_degree t = if t.n = 0 then 0.0 else 2.0 *. float_of_int t.m /. float_of_int t.n

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := Stdlib.max !best (List.length t.adj.(v))
  done;
  !best

let fold_edges f t acc =
  let acc = ref acc in
  for u = 0 to t.n - 1 do
    List.iter (fun v -> if u < v then acc := f u v !acc) t.adj.(u)
  done;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let bfs_from t ~src ~keep =
  let dist = Array.make t.n max_int in
  if t.n = 0 then dist
  else begin
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      let advance v =
        if keep v && dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end
      in
      List.iter advance t.adj.(u)
    done;
    dist
  end

let bfs_dist t ~src =
  check_node t src;
  bfs_from t ~src ~keep:(fun _ -> true)

let is_connected_subset t ~keep =
  let kept = ref [] in
  for v = t.n - 1 downto 0 do
    if keep v then kept := v :: !kept
  done;
  match !kept with
  | [] -> true
  | src :: _ ->
    let dist = bfs_from t ~src ~keep in
    List.for_all (fun v -> dist.(v) < max_int) !kept

let is_connected t = is_connected_subset t ~keep:(fun _ -> true)

let connected_components t =
  let seen = Array.make t.n false in
  let components = ref [] in
  for v = t.n - 1 downto 0 do
    if not seen.(v) then begin
      let dist = bfs_from t ~src:v ~keep:(fun _ -> true) in
      let members = ref [] in
      for u = t.n - 1 downto 0 do
        if dist.(u) < max_int && not seen.(u) then begin
          seen.(u) <- true;
          members := u :: !members
        end
      done;
      components := !members :: !components
    end
  done;
  !components

let copy t = { n = t.n; adj = Array.copy t.adj; m = t.m }

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, m=%d, avg_deg=%.2f)" t.n t.m (avg_degree t)
