type t = {
  failed : bool array;
  count : int;
  center : Geometry.point;
  radius : float;
}

let none topo =
  {
    failed = Array.make (Topology.num_routers topo) false;
    count = 0;
    center = Geometry.grid_center;
    radius = 0.0;
  }

let contiguous ?(center = Geometry.grid_center) topo ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Failure.contiguous: fraction outside [0, 1]";
  let n = Topology.num_routers topo in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  let by_distance = Array.init n (fun i -> i) in
  let dist i = Geometry.distance topo.Topology.positions.(i) center in
  Array.sort (fun a b -> Float.compare (dist a) (dist b)) by_distance;
  let failed = Array.make n false in
  for rank = 0 to k - 1 do
    failed.(by_distance.(rank)) <- true
  done;
  let radius = if k = 0 then 0.0 else dist by_distance.(k - 1) in
  { failed; count = k; center; radius }

let single topo ~router =
  let n = Topology.num_routers topo in
  if router < 0 || router >= n then invalid_arg "Failure.single: router out of range";
  let failed = Array.make n false in
  failed.(router) <- true;
  {
    failed;
    count = 1;
    center = topo.Topology.positions.(router);
    radius = 0.0;
  }

let of_list topo routers =
  let n = Topology.num_routers topo in
  let failed = Array.make n false in
  List.iter
    (fun r ->
      if r < 0 || r >= n then invalid_arg "Failure.of_list: router out of range";
      failed.(r) <- true)
    routers;
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 failed in
  { failed; count; center = Geometry.grid_center; radius = 0.0 }

let is_failed t r = t.failed.(r)

let failed_list t =
  let acc = ref [] in
  for r = Array.length t.failed - 1 downto 0 do
    if t.failed.(r) then acc := r :: !acc
  done;
  !acc

let survivors t =
  let acc = ref [] in
  for r = Array.length t.failed - 1 downto 0 do
    if not t.failed.(r) then acc := r :: !acc
  done;
  !acc

let survivors_connected topo t =
  Graph.is_connected_subset topo.Topology.graph ~keep:(fun v -> not t.failed.(v))

let pp ppf t =
  Fmt.pf ppf "failure(%d routers, center=%a, radius=%.1f)" t.count Geometry.pp t.center
    t.radius
