module Rng = Bgp_engine.Rng

type point = { x : float; y : float }

let grid_side = 1000.0
let grid_center = { x = grid_side /. 2.0; y = grid_side /. 2.0 }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let random_point rng =
  { x = Rng.uniform rng ~lo:0.0 ~hi:grid_side; y = Rng.uniform rng ~lo:0.0 ~hi:grid_side }

let clamp v = Float.min grid_side (Float.max 0.0 v)

let random_point_in_disc rng ~center ~radius =
  (* Uniform over the disc: radius must be scaled by sqrt of a uniform. *)
  let r = radius *. sqrt (Rng.float rng) in
  let theta = Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi) in
  { x = clamp (center.x +. (r *. cos theta)); y = clamp (center.y +. (r *. sin theta)) }

let pp ppf p = Fmt.pf ppf "(%.1f, %.1f)" p.x p.y
