(** Planar geometry for router placement on the paper's 1000x1000 grid. *)

type point = { x : float; y : float }

val grid_side : float
(** 1000.0, as in Section 3.1. *)

val grid_center : point

val distance : point -> point -> float

val random_point : Bgp_engine.Rng.t -> point
(** Uniform on the grid. *)

val random_point_in_disc : Bgp_engine.Rng.t -> center:point -> radius:float -> point
(** Uniform in the disc, clamped to the grid. *)

val pp : Format.formatter -> point -> unit
