(** Realistic multi-router-per-AS topologies (Section 3.1, used in
    Section 4.1's "more realistic topologies" and Fig 13).

    Per the paper: the number of routers in an AS (1-100) comes from a
    heavy-tailed distribution; the geographic area of an AS is proportional
    to its size; the highest inter-AS degrees go to the largest ASes. *)

module Rng := Bgp_engine.Rng
module Dist := Bgp_engine.Dist

type config = {
  n_ases : int;
  as_size : Dist.t;  (** routers per AS, rounded and clamped to [1, 100] *)
  inter_as_spec : Degree_dist.spec;  (** inter-AS degree distribution *)
  intra_extra_edges : float;
      (** extra intra-AS edges per router beyond the spanning tree *)
  max_extent : float;  (** disc radius of the largest AS on the grid *)
}

val default : n_ases:int -> config
(** Bounded-Pareto AS sizes on [1, 100] (alpha 1.2), [internet_like]
    inter-AS degrees, 0.3 extra intra edges per router, extent 150. *)

val generate : Rng.t -> config -> Topology.t
(** Build AS-level graph, place each AS in a disc whose area is
    proportional to its size, wire each AS internally as a random connected
    subgraph, and realize each AS-level adjacency as one router-to-router
    link between uniformly chosen border routers. *)
