type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Bounded_pareto of { alpha : float; lo : float; hi : float }
  | Discrete of (float * float) array

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
  | Exponential { mean } ->
    let u = 1.0 -. Rng.float rng in
    -.mean *. log u
  | Bounded_pareto { alpha; lo; hi } ->
    (* Inverse CDF of the Pareto truncated to [lo, hi]. *)
    let u = Rng.float rng in
    let ratio = (lo /. hi) ** alpha in
    lo /. ((1.0 -. (u *. (1.0 -. ratio))) ** (1.0 /. alpha))
  | Discrete items ->
    let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
    assert (total > 0.0);
    let x = Rng.float rng *. total in
    let rec pick i acc =
      if i = Array.length items - 1 then snd items.(i)
      else
        let w, v = items.(i) in
        let acc = acc +. w in
        if x < acc then v else pick (i + 1) acc
    in
    pick 0 0.0

let mean t =
  match t with
  | Constant v -> v
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Bounded_pareto { alpha; lo; hi } ->
    if alpha = 1.0 then
      let h = hi and l = lo in
      h *. l /. (h -. l) *. log (h /. l)
    else
      let la = lo ** alpha in
      let ratio = (lo /. hi) ** alpha in
      la /. (1.0 -. ratio)
      *. (alpha /. (alpha -. 1.0))
      *. ((1.0 /. (lo ** (alpha -. 1.0))) -. (1.0 /. (hi ** (alpha -. 1.0))))
  | Discrete items ->
    let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
    Array.fold_left (fun acc (w, v) -> acc +. (w *. v)) 0.0 items /. total

let pp ppf = function
  | Constant v -> Fmt.pf ppf "const(%g)" v
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean } -> Fmt.pf ppf "exp(mean=%g)" mean
  | Bounded_pareto { alpha; lo; hi } -> Fmt.pf ppf "pareto(a=%g,%g,%g)" alpha lo hi
  | Discrete items -> Fmt.pf ppf "discrete(%d)" (Array.length items)
