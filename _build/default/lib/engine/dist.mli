(** Sampling distributions used by the simulator (processing delays, AS
    sizes, timer jitter, ...). *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Bounded_pareto of { alpha : float; lo : float; hi : float }
      (** Heavy-tailed on [\[lo, hi\]]; used for AS sizes (Section 3.1). *)
  | Discrete of (float * float) array
      (** [(weight, value)] pairs; weights need not be normalised. *)

val sample : t -> Rng.t -> float

val mean : t -> float
(** Analytic mean of the distribution (used e.g. to convert queue length
    into "unfinished work" in the dynamic-MRAI controller). *)

val pp : Format.formatter -> t -> unit
