(** Streaming statistics (Welford) with optional sample retention for
    percentiles.  Used to aggregate per-seed experiment results. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** [keep_samples] defaults to [true]; set [false] for high-volume
    accumulators where only moments are needed. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,1\]], linear interpolation.
    @raise Invalid_argument if samples were not kept or [t] is empty. *)

val ci95_halfwidth : t -> float
(** Normal-approximation 95% confidence half-width of the mean. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit
