lib/engine/dist.mli: Format Rng
