lib/engine/rng.mli:
