lib/engine/scheduler.ml: Float Hashtbl Heap Int Printf
