lib/engine/dist.ml: Array Fmt Rng
