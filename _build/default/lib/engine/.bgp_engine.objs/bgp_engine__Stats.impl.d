lib/engine/stats.ml: Array Float Fmt Stdlib
