lib/engine/heap.mli:
