lib/engine/scheduler.mli:
