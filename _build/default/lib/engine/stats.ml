type buffer = { mutable data : float array; mutable len : int }

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  samples : buffer option;
}

let buffer_add b x =
  if b.len = Array.length b.data then begin
    let data = Array.make (Stdlib.max 16 (2 * b.len)) 0.0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let create ?(keep_samples = true) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    samples = (if keep_samples then Some { data = [||]; len = 0 } else None);
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  match t.samples with None -> () | Some b -> buffer_add b x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min_v
let max t = t.max_v

let percentile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  match t.samples with
  | None -> invalid_arg "Stats.percentile: samples were not kept"
  | Some b ->
    if b.len = 0 then invalid_arg "Stats.percentile: empty";
    let a = Array.sub b.data 0 b.len in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let ci95_halfwidth t =
  if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize (t : t) =
  { n = t.n; mean = mean t; stddev = stddev t; min = t.min_v; max = t.max_v }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g" s.n s.mean s.stddev s.min s.max
