type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }
let copy t = { state = t.state }

let float t =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1p-53

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  assert (bound > 0);
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
