(** Array-backed binary min-heap, the core of the event queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Elements in unspecified order. *)
