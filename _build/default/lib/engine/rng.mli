(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit [t]
    so that a run is a pure function of its seeds.  Streams can be [split]
    so that adding draws to one component never perturbs another. *)

type t

val create : int -> t
(** [create seed] makes an independent generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  Requires a non-empty array. *)
