type event_id = int

type entry = { time : float; seq : int; id : event_id }

type t = {
  heap : entry Heap.t;
  callbacks : (event_id, unit -> unit) Hashtbl.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable next_id : event_id;
  mutable executed : int;
  mutable last_event_time : float;
}

let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:compare_entry;
    callbacks = Hashtbl.create 1024;
    clock = 0.0;
    next_seq = 0;
    next_id = 0;
    executed = 0;
    last_event_time = 0.0;
  }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: time %g is in the past (now %g)" time t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { time; seq; id };
  Hashtbl.replace t.callbacks id f;
  id

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Scheduler.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t id = Hashtbl.remove t.callbacks id
let pending t = Hashtbl.length t.callbacks

(* Entries whose callback was cancelled stay in the heap and are skipped
   lazily when popped. *)
let rec next_live t =
  match Heap.peek t.heap with
  | None -> None
  | Some entry ->
    if Hashtbl.mem t.callbacks entry.id then Some entry
    else begin
      ignore (Heap.pop_exn t.heap);
      next_live t
    end

let step t =
  match next_live t with
  | None -> false
  | Some entry ->
    ignore (Heap.pop_exn t.heap);
    let f = Hashtbl.find t.callbacks entry.id in
    Hashtbl.remove t.callbacks entry.id;
    t.clock <- entry.time;
    t.executed <- t.executed + 1;
    t.last_event_time <- entry.time;
    f ();
    true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
      match next_live t with None -> false | Some entry -> entry.time <= limit)
  in
  while continue () && step t do
    ()
  done

let time_of_last_event t = t.last_event_time
let events_executed t = t.executed
