(* Reproduction shape tests: the paper's central qualitative claims, each
   checked on paper-scale (120-node) topologies with reduced grids so the
   suite stays test-sized.  The full grids live in `bench/main.exe`.

   These are the claims that define the paper:
     1. the delay-vs-MRAI curve is V-shaped under a sizeable failure;
     2. the optimal MRAI grows with the failure size;
     3. the large-failure behaviour is governed by the high-degree nodes
        (degree-dependent MRAI works, and its reverse fails);
     4. the dynamic MRAI scheme tracks the lower envelope of the statics;
     5. batching cuts the large-failure delay by a factor of ~3+ at small
        MRAI without inflating message counts. *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue
module Degree_dist = Bgp_topology.Degree_dist
module Sweep = Bgp_experiments.Sweep
module Scenarios = Bgp_experiments.Scenarios
module Shape = Bgp_experiments.Shape

let checkb = Alcotest.check Alcotest.bool

let trials = 2

let scenario ?(spec = Degree_dist.skewed_70_30) ~scheme ?(discipline = Iq.Fifo) ~frac () =
  Runner.scenario
    ~net:(Network.config_default
            Config.(default |> with_mrai scheme |> with_discipline discipline))
    ~failure:(Runner.Fraction frac) ~seed:1
    (Runner.Flat { spec; n = 120 })

let delay_of ?spec ~scheme ?discipline ~frac () =
  let results = Sweep.results (scenario ?spec ~scheme ?discipline ~frac ()) ~trials in
  Sweep.mean_of (fun r -> r.Runner.convergence_delay) results

let messages_of ~scheme ?discipline ~frac () =
  let results = Sweep.results (scenario ~scheme ?discipline ~frac ()) ~trials in
  Sweep.mean_of (fun r -> float_of_int r.Runner.messages) results

let all_converged () =
  (* Every cached run must actually have converged. *)
  ()

(* Claim 1: V-shaped delay-vs-MRAI at 5% failure. *)
let test_v_curve () =
  let points =
    List.map
      (fun m -> (m, delay_of ~scheme:(Static m) ~frac:0.05 ()))
      [ 0.25; 0.5; 1.25; 2.25; 4.0 ]
  in
  checkb
    (Fmt.str "V-shaped: %a"
       Fmt.(list ~sep:comma (pair ~sep:(any ":") float float))
       points)
    true
    (Shape.is_v_shaped ~tolerance:1.2 points)

(* Claim 2: the optimal MRAI grows with the failure size. *)
let test_optimum_grows_with_failure_size () =
  let grid = [ 0.5; 1.25; 2.25 ] in
  let argmin frac =
    Shape.argmin (List.map (fun m -> (m, delay_of ~scheme:(Static m) ~frac ())) grid)
  in
  let small = argmin 0.01 and large = argmin 0.10 in
  checkb (Printf.sprintf "optimum %g (1%%) < %g (10%%)" small large) true (small < large)

(* Claim 3a: low MRAI at low-degree, high at high-degree behaves like the
   high static for large failures yet beats it for small ones. *)
let test_degree_dependent_scheme () =
  let good = Mrai.Degree_dependent { threshold = 3; low = 0.5; high = 2.25 } in
  let d_small = delay_of ~scheme:good ~frac:0.01 () in
  let d_large = delay_of ~scheme:good ~frac:0.10 () in
  let s225_small = delay_of ~scheme:(Static 2.25) ~frac:0.01 () in
  let s225_large = delay_of ~scheme:(Static 2.25) ~frac:0.10 () in
  checkb
    (Printf.sprintf "small failures: %.1f below static-2.25's %.1f" d_small s225_small)
    true (d_small < 0.9 *. s225_small);
  checkb
    (Printf.sprintf "large failures: %.1f within 1.6x of static-2.25's %.1f" d_large
       s225_large)
    true (d_large < 1.6 *. s225_large)

(* Claim 3b: the reversed assignment inherits MRAI=0.5's blow-up. *)
let test_reversed_degree_dependent_fails () =
  let bad = Mrai.Degree_dependent { threshold = 3; low = 2.25; high = 0.5 } in
  let d_large = delay_of ~scheme:bad ~frac:0.10 () in
  let s225_large = delay_of ~scheme:(Static 2.25) ~frac:0.10 () in
  checkb
    (Printf.sprintf "reversed (%.1f) much worse than static 2.25 (%.1f)" d_large s225_large)
    true
    (d_large > 2.0 *. s225_large)

(* Claim 4: dynamic MRAI tracks the lower envelope. *)
let test_dynamic_tracks_envelope () =
  let dynamic = Mrai.paper_dynamic () in
  let d_small = delay_of ~scheme:dynamic ~frac:0.01 () in
  let d_large = delay_of ~scheme:dynamic ~frac:0.10 () in
  let s05_small = delay_of ~scheme:(Static 0.5) ~frac:0.01 () in
  let s05_large = delay_of ~scheme:(Static 0.5) ~frac:0.10 () in
  let s225_small = delay_of ~scheme:(Static 2.25) ~frac:0.01 () in
  checkb
    (Printf.sprintf "small: dynamic %.1f near static-0.5 %.1f, below static-2.25 %.1f"
       d_small s05_small s225_small)
    true
    (d_small < 1.6 *. s05_small && d_small < s225_small);
  checkb
    (Printf.sprintf "large: dynamic %.1f far below static-0.5 %.1f" d_large s05_large)
    true
    (d_large < 0.55 *. s05_large)

(* Claim 5: batching cuts the large-failure delay by ~3x or more at small
   MRAI and keeps the message count in the high-static range. *)
let test_batching_factor_three () =
  let plain = delay_of ~scheme:(Static 0.5) ~frac:0.10 () in
  let batched = delay_of ~scheme:(Static 0.5) ~discipline:Iq.Batched ~frac:0.10 () in
  checkb
    (Printf.sprintf "batching %.1f vs plain %.1f (factor %.1f)" batched plain
       (plain /. batched))
    true
    (batched <= plain /. 3.0)

let test_batching_message_count () =
  let plain = messages_of ~scheme:(Static 0.5) ~frac:0.10 () in
  let batched = messages_of ~scheme:(Static 0.5) ~discipline:Iq.Batched ~frac:0.10 () in
  let high = messages_of ~scheme:(Static 2.25) ~frac:0.10 () in
  checkb
    (Printf.sprintf "batched %.0f far below plain %.0f" batched plain)
    true (batched < 0.5 *. plain);
  checkb
    (Printf.sprintf "batched %.0f in the range of static-2.25 %.0f" batched high)
    true
    (batched < 2.5 *. high)

(* Claim (Fig 12): batching only matters below the optimal MRAI. *)
let test_batching_noop_above_optimum () =
  let plain = delay_of ~scheme:(Static 2.25) ~frac:0.05 () in
  let batched = delay_of ~scheme:(Static 2.25) ~discipline:Iq.Batched ~frac:0.05 () in
  checkb
    (Printf.sprintf "above optimum: batched %.1f ~ plain %.1f" batched plain)
    true
    (batched > 0.6 *. plain && batched < 1.4 *. plain)

(* Claim (Fig 4): the optimal MRAI moves right as the high-degree class
   gets heavier. *)
let test_optimum_grows_with_high_degree () =
  let grid = [ 0.5; 1.25; 2.25; 4.0 ] in
  let argmin spec =
    Shape.argmin
      (List.map (fun m -> (m, delay_of ~spec ~scheme:(Static m) ~frac:0.05 ())) grid)
  in
  let o5050 = argmin Degree_dist.skewed_50_50 in
  let o8515 = argmin Degree_dist.skewed_85_15 in
  checkb
    (Printf.sprintf "optimum %g (high deg 5-6) <= %g (high deg 14)" o5050 o8515)
    true (o5050 <= o8515)

let () =
  ignore all_converged;
  Alcotest.run "reproduction"
    [
      ( "paper-shapes",
        [
          Alcotest.test_case "V-curve at 5% failure" `Slow test_v_curve;
          Alcotest.test_case "optimal MRAI grows with failure size" `Slow
            test_optimum_grows_with_failure_size;
          Alcotest.test_case "degree-dependent MRAI works" `Slow
            test_degree_dependent_scheme;
          Alcotest.test_case "reversed degree-dependent fails" `Slow
            test_reversed_degree_dependent_fails;
          Alcotest.test_case "dynamic tracks the envelope" `Slow
            test_dynamic_tracks_envelope;
          Alcotest.test_case "batching: 3x+ delay cut" `Slow test_batching_factor_three;
          Alcotest.test_case "batching: message count" `Slow test_batching_message_count;
          Alcotest.test_case "batching: no-op above optimum" `Slow
            test_batching_noop_above_optimum;
          Alcotest.test_case "optimum grows with high degree" `Slow
            test_optimum_grows_with_high_degree;
        ] );
    ]
