(* Unit and property tests for the topology generators. *)

module Rng = Bgp_engine.Rng
module Graph = Bgp_topology.Graph
module Geometry = Bgp_topology.Geometry
module Degree_dist = Bgp_topology.Degree_dist
module Models = Bgp_topology.Models
module Topology = Bgp_topology.Topology
module As_topology = Bgp_topology.As_topology
module Failure = Bgp_topology.Failure

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Geometry ------------------------------------------------------------ *)

let test_distance () =
  let a = { Geometry.x = 0.0; y = 0.0 } and b = { Geometry.x = 3.0; y = 4.0 } in
  checkf "3-4-5 triangle" 5.0 (Geometry.distance a b);
  checkf "self distance" 0.0 (Geometry.distance a a)

let test_random_point_on_grid () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let p = Geometry.random_point rng in
    checkb "on grid" true
      (p.Geometry.x >= 0.0 && p.Geometry.x <= 1000.0 && p.Geometry.y >= 0.0
      && p.Geometry.y <= 1000.0)
  done

let test_disc_point_within_radius () =
  let rng = Rng.create 2 in
  let center = Geometry.grid_center in
  for _ = 1 to 1000 do
    let p = Geometry.random_point_in_disc rng ~center ~radius:50.0 in
    checkb "within radius" true (Geometry.distance p center <= 50.0 +. 1e-9)
  done

(* --- Graph ---------------------------------------------------------------- *)

let test_graph_basic () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  checki "edges" 2 (Graph.num_edges g);
  checkb "mem" true (Graph.mem_edge g 0 1);
  checkb "symmetric" true (Graph.mem_edge g 1 0);
  checkb "absent" false (Graph.mem_edge g 0 2);
  checki "degree" 2 (Graph.degree g 1);
  Alcotest.check Alcotest.(list int) "neighbors sorted" [ 0; 2 ] (Graph.neighbors g 1)

let test_graph_idempotent_add () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  checki "single edge" 1 (Graph.num_edges g)

let test_graph_no_self_loop () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_graph_remove () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.remove_edge g 0 1;
  checki "removed" 0 (Graph.num_edges g);
  Graph.remove_edge g 0 1 (* no-op *)

let test_graph_connectivity () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  checkb "disconnected" false (Graph.is_connected g);
  checki "components" 3 (List.length (Graph.connected_components g));
  Graph.add_edge g 2 3;
  Graph.add_edge g 3 4;
  checkb "connected" true (Graph.is_connected g)

let test_graph_bfs () =
  let g = Graph.create 5 in
  (* path 0-1-2-3, isolated 4 *)
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let d = Graph.bfs_dist g ~src:0 in
  Alcotest.check Alcotest.(array int) "distances" [| 0; 1; 2; 3; max_int |] d

let test_graph_connected_subset () =
  let g = Graph.create 4 in
  (* square 0-1-2-3-0 *)
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  Graph.add_edge g 3 0;
  checkb "without one corner still connected" true
    (Graph.is_connected_subset g ~keep:(fun v -> v <> 0));
  let g2 = Graph.create 3 in
  (* path 0-1-2; removing the middle disconnects *)
  Graph.add_edge g2 0 1;
  Graph.add_edge g2 1 2;
  checkb "without cut vertex disconnected" false
    (Graph.is_connected_subset g2 ~keep:(fun v -> v <> 1))

(* --- Degree distributions -------------------------------------------------- *)

let spec_list =
  [
    ("70-30", Degree_dist.skewed_70_30, 3.8);
    ("50-50", Degree_dist.skewed_50_50, 3.75);
    ("85-15", Degree_dist.skewed_85_15, 3.8);
    ("50-50 dense", Degree_dist.skewed_50_50_dense, 7.75);
  ]

let test_mean_degrees () =
  List.iter
    (fun (name, spec, expected) ->
      Alcotest.check (Alcotest.float 0.01) name expected (Degree_dist.mean_degree spec))
    spec_list

let test_sequence_realizes_exactly () =
  let rng = Rng.create 10 in
  let degrees = Degree_dist.sample_sequence Degree_dist.skewed_70_30 rng ~n:120 in
  let g = Degree_dist.realize rng degrees in
  Array.iteri
    (fun v d -> checki (Printf.sprintf "degree of %d" v) d (Graph.degree g v))
    degrees

let test_internet_like_shape () =
  let rng = Rng.create 11 in
  let counts = Array.make 41 0 in
  let total = 20_000 in
  let degrees = Degree_dist.sample_sequence Degree_dist.internet_like rng ~n:total in
  Array.iter (fun d -> counts.(Stdlib.min d 40) <- counts.(Stdlib.min d 40) + 1) degrees;
  let below4 = float_of_int (counts.(1) + counts.(2) + counts.(3)) /. float_of_int total in
  checkb "~70-80% below degree 4" true (below4 > 0.6 && below4 < 0.85);
  let mean = Degree_dist.mean_degree Degree_dist.internet_like in
  checkb "average degree ~3.4" true (mean > 2.9 && mean < 3.9);
  checkb "max degree 40 respected" true (Array.for_all (fun d -> d <= 40) degrees)

let test_is_graphical () =
  checkb "simple" true (Degree_dist.is_graphical [| 1; 1 |]);
  checkb "triangle" true (Degree_dist.is_graphical [| 2; 2; 2 |]);
  checkb "odd sum" false (Degree_dist.is_graphical [| 1; 1; 1 |]);
  checkb "hub too big" false (Degree_dist.is_graphical [| 3; 1; 1 |]);
  checkb "two big hubs among leaves" false
    (Degree_dist.is_graphical [| 9; 9; 1; 1; 1; 1; 1; 1; 1; 1 |])

let prop_generate_connected =
  QCheck.Test.make ~name:"generated graphs are connected simple graphs" ~count:30
    QCheck.(pair (int_range 10 150) (int_range 0 3))
    (fun (n, which) ->
      let spec =
        match which with
        | 0 -> Degree_dist.skewed_70_30
        | 1 -> Degree_dist.skewed_50_50
        | 2 -> Degree_dist.skewed_85_15
        | _ -> Degree_dist.internet_like
      in
      let rng = Rng.create ((n * 13) + which) in
      let g = Degree_dist.generate spec rng ~n in
      Graph.is_connected g && Graph.num_nodes g = n)

let prop_two_class_split_exact =
  QCheck.Test.make ~name:"two-class sequences honour the class split" ~count:30
    (QCheck.int_range 20 200)
    (fun n ->
      let rng = Rng.create n in
      let degrees = Degree_dist.sample_sequence Degree_dist.skewed_70_30 rng ~n in
      (* 30% of nodes have degree 8 (one may be perturbed by the even-sum
         bump or graphicality repair). *)
      let high = Array.fold_left (fun acc d -> if d >= 7 then acc + 1 else acc) 0 degrees in
      let expected = int_of_float (Float.round (0.3 *. float_of_int n)) in
      abs (high - expected) <= 1)

let prop_avg_degree_close =
  QCheck.Test.make ~name:"realized average degree tracks the spec" ~count:20
    (QCheck.int_range 60 240)
    (fun n ->
      let rng = Rng.create (n + 7) in
      let g = Degree_dist.generate Degree_dist.skewed_70_30 rng ~n in
      Float.abs (Graph.avg_degree g -. 3.8) < 0.5)

(* --- Classic models --------------------------------------------------------- *)

let test_waxman_connected () =
  let rng = Rng.create 20 in
  let positions = Array.init 60 (fun _ -> Geometry.random_point rng) in
  let g = Models.waxman rng ~positions ~alpha:0.15 ~beta:0.2 in
  checkb "connected" true (Graph.is_connected g);
  checki "nodes" 60 (Graph.num_nodes g)

let test_barabasi_albert () =
  let rng = Rng.create 21 in
  let g = Models.barabasi_albert rng ~n:100 ~m:2 in
  checkb "connected" true (Graph.is_connected g);
  (* Preferential attachment produces hubs well above m. *)
  checkb "has hubs" true (Graph.max_degree g > 6);
  checkb "avg degree ~2m" true (Float.abs (Graph.avg_degree g -. 4.0) < 1.0)

let test_glp () =
  let rng = Rng.create 22 in
  let g = Models.glp rng ~n:100 ~m:1 ~p:0.4 ~beta:0.6 in
  checkb "connected" true (Graph.is_connected g);
  checki "nodes" 100 (Graph.num_nodes g)

(* --- Topology / As_topology -------------------------------------------------- *)

let test_flat_topology () =
  let rng = Rng.create 30 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:60 in
  checkb "valid" true (Topology.validate topo = Ok ());
  checki "one router per AS" 60 topo.Topology.n_ases;
  checkb "all sessions are eBGP" true
    (Graph.fold_edges (fun u v acc -> acc && Topology.is_ebgp topo u v) topo.Topology.graph
       true);
  checki "inter-AS degree = graph degree" (Graph.degree topo.Topology.graph 0)
    (Topology.inter_as_degree topo 0)

let test_realistic_topology () =
  let rng = Rng.create 31 in
  let topo = As_topology.generate rng (As_topology.default ~n_ases:40) in
  checkb "valid" true (Topology.validate topo = Ok ());
  checki "AS count" 40 topo.Topology.n_ases;
  checkb "has multi-router ASes" true (Topology.num_routers topo > 40);
  for a = 0 to 39 do
    let size = List.length (Topology.routers_of_as topo a) in
    checkb "size in [1,100]" true (size >= 1 && size <= 100)
  done

let test_realistic_biggest_as_best_connected () =
  let rng = Rng.create 32 in
  let topo = As_topology.generate rng (As_topology.default ~n_ases:40) in
  let as_size a = List.length (Topology.routers_of_as topo a) in
  let inter_as_degree_of_as a =
    let foreign = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun v ->
            let b = topo.Topology.as_of_router.(v) in
            if b <> a then foreign := b :: !foreign)
          (Graph.neighbors topo.Topology.graph r))
      (Topology.routers_of_as topo a);
    List.length (List.sort_uniq Int.compare !foreign)
  in
  let all_ases = List.init 40 Fun.id in
  let largest =
    List.fold_left (fun acc a -> if as_size a > as_size acc then a else acc) 0 all_ases
  in
  let smallest =
    List.fold_left (fun acc a -> if as_size a < as_size acc then a else acc) 0 all_ases
  in
  checkb "largest AS at least as connected as smallest" true
    (inter_as_degree_of_as largest >= inter_as_degree_of_as smallest)

(* --- Failure -------------------------------------------------------------------- *)

let test_failure_fraction_count () =
  let rng = Rng.create 40 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:120 in
  List.iter
    (fun frac ->
      let f = Failure.contiguous topo ~fraction:frac in
      checki
        (Printf.sprintf "count at %g" frac)
        (int_of_float (Float.round (frac *. 120.0)))
        f.Failure.count)
    [ 0.0; 0.01; 0.05; 0.10; 0.20; 1.0 ]

let test_failure_contiguity () =
  let rng = Rng.create 41 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:120 in
  let f = Failure.contiguous topo ~fraction:0.1 in
  let center = f.Failure.center in
  List.iter
    (fun r ->
      checkb "failed within radius" true
        (Geometry.distance topo.Topology.positions.(r) center <= f.Failure.radius +. 1e-9))
    (Failure.failed_list f);
  List.iter
    (fun r ->
      checkb "survivor outside radius" true
        (Geometry.distance topo.Topology.positions.(r) center >= f.Failure.radius -. 1e-9))
    (Failure.survivors f)

let test_failure_single_and_list () =
  let rng = Rng.create 42 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:20 in
  let f = Failure.single topo ~router:7 in
  checki "one failed" 1 f.Failure.count;
  checkb "router 7 failed" true (Failure.is_failed f 7);
  let f2 = Failure.of_list topo [ 1; 2; 2; 3 ] in
  checki "dedup count" 3 f2.Failure.count

let test_failure_none () =
  let rng = Rng.create 43 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:20 in
  let f = Failure.none topo in
  checki "nothing failed" 0 f.Failure.count;
  checkb "survivors connected" true (Failure.survivors_connected topo f)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "topology"
    [
      ( "geometry",
        [
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "random point on grid" `Quick test_random_point_on_grid;
          Alcotest.test_case "disc point within radius" `Quick test_disc_point_within_radius;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "idempotent add" `Quick test_graph_idempotent_add;
          Alcotest.test_case "no self loops" `Quick test_graph_no_self_loop;
          Alcotest.test_case "remove" `Quick test_graph_remove;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "bfs" `Quick test_graph_bfs;
          Alcotest.test_case "connected subset" `Quick test_graph_connected_subset;
        ] );
      ( "degree_dist",
        [
          Alcotest.test_case "mean degrees" `Quick test_mean_degrees;
          Alcotest.test_case "exact realization" `Quick test_sequence_realizes_exactly;
          Alcotest.test_case "internet-like shape" `Quick test_internet_like_shape;
          Alcotest.test_case "Erdos-Gallai" `Quick test_is_graphical;
          qc prop_generate_connected;
          qc prop_two_class_split_exact;
          qc prop_avg_degree_close;
        ] );
      ( "models",
        [
          Alcotest.test_case "waxman" `Quick test_waxman_connected;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "glp" `Quick test_glp;
        ] );
      ( "topology",
        [
          Alcotest.test_case "flat" `Quick test_flat_topology;
          Alcotest.test_case "realistic" `Quick test_realistic_topology;
          Alcotest.test_case "largest AS best connected" `Quick
            test_realistic_biggest_as_best_connected;
        ] );
      ( "failure",
        [
          Alcotest.test_case "fraction count" `Quick test_failure_fraction_count;
          Alcotest.test_case "contiguity" `Quick test_failure_contiguity;
          Alcotest.test_case "single and list" `Quick test_failure_single_and_list;
          Alcotest.test_case "none" `Quick test_failure_none;
        ] );
    ]
