test/test_core.ml: Alcotest Bgp_core Hashtbl List Option Printf QCheck QCheck_alcotest String
