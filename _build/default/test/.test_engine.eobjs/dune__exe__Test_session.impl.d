test/test_session.ml: Alcotest Bgp_engine Bgp_proto Lazy List Option
