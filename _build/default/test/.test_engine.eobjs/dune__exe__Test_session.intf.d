test/test_session.mli:
