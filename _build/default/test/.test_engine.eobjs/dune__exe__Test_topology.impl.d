test/test_topology.ml: Alcotest Array Bgp_engine Bgp_topology Float Fun Int List Printf QCheck QCheck_alcotest Stdlib
