test/test_bgp.mli:
