test/test_netsim.ml: Alcotest Bgp_core Bgp_engine Bgp_netsim Bgp_proto Bgp_topology Float Fun List Printf QCheck QCheck_alcotest Stdlib
