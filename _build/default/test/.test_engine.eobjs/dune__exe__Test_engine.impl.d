test/test_engine.ml: Alcotest Array Bgp_engine Float Fun Gen Int List QCheck QCheck_alcotest Stdlib
