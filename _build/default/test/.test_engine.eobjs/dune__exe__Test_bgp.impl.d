test/test_bgp.ml: Alcotest Bgp_core Bgp_engine Bgp_proto Float Hashtbl Int List Printf QCheck QCheck_alcotest
