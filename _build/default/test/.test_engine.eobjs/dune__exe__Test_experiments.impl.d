test/test_experiments.ml: Alcotest Bgp_experiments Bgp_netsim Bgp_proto Bgp_topology Float Fmt Int List Printf String
