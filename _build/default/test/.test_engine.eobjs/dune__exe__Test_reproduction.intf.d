test/test_reproduction.mli:
