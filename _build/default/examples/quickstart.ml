(* Quickstart: build a small network, converge it, fail one router, and
   watch BGP heal.

   Run with:  dune exec examples/quickstart.exe *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Degree_dist = Bgp_topology.Degree_dist

let () =
  (* A 30-node network with the paper's "70-30" skewed degree
     distribution and the Internet-default 30 s MRAI. *)
  let scenario =
    Runner.scenario
      ~net:(Network.config_default Config.default)
      ~failure:(Runner.Fraction 0.05) ~seed:42 ~validate:true
      (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 30 })
  in
  let result = Runner.run scenario in
  Fmt.pr "warm-up: converged in %.1f s using %d update messages@."
    result.Runner.warmup_delay result.Runner.warmup_messages;
  Fmt.pr "failure of 5%% of the routers:@.";
  Fmt.pr "  re-convergence delay : %.1f s@." result.Runner.convergence_delay;
  Fmt.pr "  update messages      : %d (%d advertisements, %d withdrawals)@."
    result.Runner.messages result.Runner.adverts result.Runner.withdrawals;
  Fmt.pr "  survivors connected  : %b@." result.Runner.survivors_connected;
  Fmt.pr "  invariants           : %s@."
    (if result.Runner.issues = [] then "all hold" else "VIOLATED");
  if not result.Runner.converged then Fmt.pr "  WARNING: hit the simulation cap@."
