(* Tuning study: sweep the MRAI for your own topology and failure profile,
   the workflow a network operator would follow before deploying the
   paper's schemes (Section 4.3 notes the parameters were picked from
   exactly this kind of measurement).

   Run with:  dune exec examples/tuning_study.exe *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Degree_dist = Bgp_topology.Degree_dist
module Shape = Bgp_experiments.Shape

let n = 120
let trials = 2
let mrais = [ 0.25; 0.5; 1.0; 1.25; 1.75; 2.25; 3.0 ]
let failure_sizes = [ 0.01; 0.05; 0.10 ]

let delay_at ~mrai ~frac =
  let total = ref 0.0 in
  for seed = 1 to trials do
    let scenario =
      Runner.scenario
        ~net:(Network.config_default Config.(with_mrai (Static mrai) default))
        ~failure:(Runner.Fraction frac) ~seed
        (Runner.Flat { spec = Degree_dist.skewed_70_30; n })
    in
    total := !total +. (Runner.run scenario).Runner.convergence_delay
  done;
  !total /. float_of_int trials

let () =
  Fmt.pr "MRAI tuning sweep on a %d-node 70-30 topology (%d seeds/point)@.@." n trials;
  Fmt.pr "%8s" "MRAI";
  List.iter (fun f -> Fmt.pr " | %7.0f%%" (100.0 *. f)) failure_sizes;
  Fmt.pr "@.";
  let columns =
    List.map
      (fun frac -> List.map (fun mrai -> (mrai, delay_at ~mrai ~frac)) mrais)
      failure_sizes
  in
  List.iteri
    (fun i mrai ->
      Fmt.pr "%8.2f" mrai;
      List.iter (fun column -> Fmt.pr " | %8.1f" (snd (List.nth column i))) columns;
      Fmt.pr "@.")
    mrais;
  Fmt.pr "@.optimal MRAI per failure size:@.";
  List.iter2
    (fun frac column ->
      Fmt.pr "  %4.0f%% failure -> MRAI = %.2f s@." (100.0 *. frac) (Shape.argmin column))
    failure_sizes columns;
  Fmt.pr
    "@.The optimum moves right as failures grow -- the paper's core observation@.\
     (Fig 3), and the reason no single static MRAI works (Section 4.1).  Use the@.\
     per-size optima as the level set for the dynamic scheme.@."
