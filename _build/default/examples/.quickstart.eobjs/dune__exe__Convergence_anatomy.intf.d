examples/convergence_anatomy.mli:
