examples/regional_failure.ml: Bgp_core Bgp_engine Bgp_netsim Bgp_proto Bgp_topology Fmt
