examples/convergence_anatomy.ml: Bgp_engine Bgp_netsim Bgp_proto Bgp_topology Float Fmt List Stdlib String
