examples/tuning_study.ml: Bgp_core Bgp_experiments Bgp_netsim Bgp_proto Bgp_topology Fmt List
