examples/quickstart.mli:
