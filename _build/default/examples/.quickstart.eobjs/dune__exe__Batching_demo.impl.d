examples/batching_demo.ml: Bgp_core Bgp_engine Bgp_proto Fmt List
