examples/regional_failure.mli:
