examples/quickstart.ml: Bgp_netsim Bgp_proto Bgp_topology Fmt
