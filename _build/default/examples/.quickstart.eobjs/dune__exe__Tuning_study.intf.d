examples/tuning_study.mli:
