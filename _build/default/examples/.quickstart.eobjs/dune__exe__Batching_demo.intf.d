examples/batching_demo.mli:
