(* Regional failure study: a geographically concentrated outage takes out
   10% of a 120-node network (the paper's motivating scenario) and we
   compare how the Internet-default MRAI, the paper's tuned static MRAI,
   and the two proposed schemes recover.

   Run with:  dune exec examples/regional_failure.exe *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue
module Degree_dist = Bgp_topology.Degree_dist
module Stats = Bgp_engine.Stats

let trials = 3

let measure label config =
  let delays = Stats.create () and msgs = Stats.create () in
  for seed = 1 to trials do
    let scenario =
      Runner.scenario
        ~net:(Network.config_default config)
        ~failure:(Runner.Fraction 0.10) ~seed ~validate:true
        (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 120 })
    in
    let r = Runner.run scenario in
    assert (r.Runner.converged && r.Runner.issues = []);
    Stats.add delays r.Runner.convergence_delay;
    Stats.add msgs (float_of_int r.Runner.messages)
  done;
  Fmt.pr "%-28s delay %7.1f s (+/- %5.1f)   %8.0f messages@." label (Stats.mean delays)
    (Stats.stddev delays) (Stats.mean msgs)

let () =
  Fmt.pr "10%% regional failure, 120-node 70-30 topology, %d seeds each@.@." trials;
  measure "MRAI=30 (Internet default)" Config.default;
  measure "MRAI=0.5 (small-failure opt)" Config.(with_mrai (Static 0.5) default);
  measure "MRAI=2.25 (large-failure opt)" Config.(with_mrai (Static 2.25) default);
  measure "degree-dependent MRAI"
    Config.(
      with_mrai (Degree_dependent { threshold = 3; low = 0.5; high = 2.25 }) default);
  measure "dynamic MRAI" Config.(with_mrai (Mrai.paper_dynamic ()) default);
  measure "batching (MRAI=0.5)"
    Config.(default |> with_mrai (Static 0.5) |> with_discipline Iq.Batched);
  measure "batching + dynamic"
    Config.(default |> with_mrai (Mrai.paper_dynamic ()) |> with_discipline Iq.Batched);
  Fmt.pr
    "@.The proposed schemes keep the recovery near the best static tuning without@.\
     knowing the failure size in advance (paper Sections 4.3-4.4).@."
