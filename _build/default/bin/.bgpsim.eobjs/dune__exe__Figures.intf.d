bin/figures.mli:
