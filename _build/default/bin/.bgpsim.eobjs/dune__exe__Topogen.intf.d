bin/topogen.mli:
