bin/bgpsim.mli:
