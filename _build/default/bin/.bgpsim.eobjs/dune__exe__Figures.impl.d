bin/figures.ml: Arg Bgp_experiments Cmd Cmdliner Filename Fmt List Term Unix
