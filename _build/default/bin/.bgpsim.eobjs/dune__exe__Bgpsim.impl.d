bin/bgpsim.ml: Arg Bgp_core Bgp_engine Bgp_netsim Bgp_proto Bgp_topology Cmd Cmdliner Fmt List Printf Term
