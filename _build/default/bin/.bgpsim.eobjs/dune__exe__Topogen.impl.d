bin/topogen.ml: Arg Array Bgp_engine Bgp_topology Cmd Cmdliner Fmt Hashtbl Int List Option Printf Term
