(* figures: regenerate one or more of the paper's figures.

   Examples:
     figures fig7
     figures fig3 fig10 --trials 5 --full
     figures all --csv out/ *)

open Cmdliner

module Figure = Bgp_experiments.Figure
module Figures = Bgp_experiments.Figures
module Scenarios = Bgp_experiments.Scenarios
module Verdicts = Bgp_experiments.Verdicts

let run ids full trials csv_dir =
  let opts = if full then Scenarios.default else Scenarios.quick in
  let opts = match trials with None -> opts | Some t -> { opts with Scenarios.trials = t } in
  let selected =
    match ids with
    | [] | [ "all" ] -> List.map fst Figures.all
    | ids -> ids
  in
  let failures = ref 0 in
  List.iter
    (fun id ->
      match Figures.by_id id with
      | None ->
        Fmt.epr "unknown figure %S (fig1..fig13 or all)@." id;
        incr failures
      | Some make ->
        let fig = make opts in
        Fmt.pr "@.%a" Figure.pp fig;
        List.iter
          (fun v -> Fmt.pr "  %a@." Verdicts.pp_verdict v)
          (Verdicts.check fig);
        (match csv_dir with
        | None -> ()
        | Some dir ->
          (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let path = Filename.concat dir (fig.Figure.id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Figure.to_csv fig);
          close_out oc;
          Fmt.pr "  wrote %s@." path))
    selected;
  if !failures = 0 then 0 else 1

let ids = Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc:"fig1..fig13 or all.")
let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale grids (slower).")
let trials = Arg.(value & opt (some int) None & info [ "trials" ] ~doc:"Seeds per point.")
let csv_dir =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc:"Also write CSVs.")

let cmd =
  let doc = "regenerate the paper's evaluation figures" in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ ids $ full $ trials $ csv_dir)

let () = exit (Cmd.eval' cmd)
