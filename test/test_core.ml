(* Tests for the paper's contribution layer: MRAI controllers and the
   batched input queue. *)

module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let load ?(now = 0.0) ?(qlen = 0) ?(mean = 0.0155) ?(util = 0.0) ?(msgs = 0) () =
  {
    Mrai.now;
    queue_length = qlen;
    mean_processing_delay = mean;
    utilization = util;
    updates_in_window = msgs;
  }

(* --- Mrai_controller ------------------------------------------------------- *)

let test_static () =
  let c = Mrai.make (Static 30.0) ~degree:5 in
  checkf "interval" 30.0 (Mrai.current_interval c);
  Mrai.observe c (load ~qlen:10_000 ());
  checkf "static never moves" 30.0 (Mrai.current_interval c);
  checki "level" 0 (Mrai.level c);
  checki "transitions" 0 (Mrai.transitions c)

let test_degree_dependent () =
  let scheme = Mrai.Degree_dependent { threshold = 3; low = 0.5; high = 2.25 } in
  checkf "low-degree node" 0.5 (Mrai.current_interval (Mrai.make scheme ~degree:2));
  checkf "boundary stays low" 0.5 (Mrai.current_interval (Mrai.make scheme ~degree:3));
  checkf "high-degree node" 2.25 (Mrai.current_interval (Mrai.make scheme ~degree:8))

let paper_scheme = Mrai.paper_dynamic ()

let test_dynamic_starts_low () =
  let c = Mrai.make paper_scheme ~degree:8 in
  checkf "starts at the lowest level" 0.5 (Mrai.current_interval c)

let test_dynamic_up_transition () =
  let c = Mrai.make paper_scheme ~degree:8 in
  (* unfinished work = qlen * mean = 50 * 0.0155 = 0.775 > 0.65 *)
  Mrai.observe c (load ~qlen:50 ());
  checkf "one step up" 1.25 (Mrai.current_interval c);
  Mrai.observe c (load ~qlen:50 ());
  checkf "second step up" 2.25 (Mrai.current_interval c);
  Mrai.observe c (load ~qlen:50 ());
  checkf "saturates at the top" 2.25 (Mrai.current_interval c);
  checki "transitions counted" 2 (Mrai.transitions c)

let test_dynamic_down_transition () =
  let c = Mrai.make paper_scheme ~degree:8 in
  Mrai.observe c (load ~qlen:50 ());
  Mrai.observe c (load ~qlen:50 ());
  checki "at top" 2 (Mrai.level c);
  (* work = 2 * 0.0155 = 0.031 < 0.05 *)
  Mrai.observe c (load ~qlen:2 ());
  checki "one step down" 1 (Mrai.level c);
  Mrai.observe c (load ~qlen:2 ());
  Mrai.observe c (load ~qlen:2 ());
  checki "floors at 0" 0 (Mrai.level c)

let test_dynamic_dead_band () =
  let c = Mrai.make paper_scheme ~degree:8 in
  (* work = 20 * 0.0155 = 0.31: between downTh and upTh -> no move *)
  Mrai.observe c (load ~qlen:20 ());
  checki "stays put inside the band" 0 (Mrai.level c)

let test_dynamic_utilization_detector () =
  let scheme =
    Mrai.Dynamic
      {
        levels = [| 0.5; 2.25 |];
        up_threshold = 0.8;
        down_threshold = 0.2;
        detector = Mrai.Utilization;
      }
  in
  let c = Mrai.make scheme ~degree:8 in
  Mrai.observe c (load ~util:0.95 ());
  checki "up on busy CPU" 1 (Mrai.level c);
  Mrai.observe c (load ~util:0.1 ());
  checki "down on idle CPU" 0 (Mrai.level c)

let test_dynamic_message_count_detector () =
  let scheme =
    Mrai.Dynamic
      {
        levels = [| 0.5; 2.25 |];
        up_threshold = 100.0;
        down_threshold = 5.0;
        detector = Mrai.Message_count;
      }
  in
  let c = Mrai.make scheme ~degree:8 in
  Mrai.observe c (load ~msgs:500 ());
  checki "up on message burst" 1 (Mrai.level c);
  Mrai.observe c (load ~msgs:1 ());
  checki "down when quiet" 0 (Mrai.level c)

let test_dynamic_bad_config () =
  checkb "empty levels rejected" true
    (try
       ignore
         (Mrai.make
            (Dynamic
               {
                 levels = [||];
                 up_threshold = 1.0;
                 down_threshold = 0.0;
                 detector = Mrai.Queue_work;
               })
            ~degree:1);
       false
     with Invalid_argument _ -> true);
  checkb "inverted thresholds rejected" true
    (try
       ignore
         (Mrai.make
            (Dynamic
               {
                 levels = [| 1.0 |];
                 up_threshold = 0.1;
                 down_threshold = 0.5;
                 detector = Mrai.Queue_work;
               })
            ~degree:1);
       false
     with Invalid_argument _ -> true)

(* --- Input_queue ----------------------------------------------------------- *)

let item src dest payload = { Iq.src; dest; payload; cause = -1; enqueued = 0.0 }

let drain q =
  let rec go acc = match Iq.pop q with None -> List.rev acc | Some i -> go (i :: acc) in
  go []

let test_fifo_order () =
  let q = Iq.create Iq.Fifo in
  List.iter (Iq.push q) [ item 1 10 "a"; item 2 20 "b"; item 1 10 "c" ];
  checki "length" 3 (Iq.length q);
  Alcotest.check
    Alcotest.(list string)
    "FIFO order keeps duplicates" [ "a"; "b"; "c" ]
    (List.map (fun i -> i.Iq.payload) (drain q));
  checki "fifo never eliminates" 0 (Iq.eliminated q)

let test_fifo_dedup_eliminates () =
  let q = Iq.create Iq.Fifo_dedup in
  List.iter (Iq.push q) [ item 1 10 "a"; item 2 20 "b"; item 1 10 "c" ];
  checki "length after elimination" 2 (Iq.length q);
  checki "one eliminated" 1 (Iq.eliminated q);
  Alcotest.check
    Alcotest.(list string)
    "newest replaces oldest, order of survivors kept" [ "b"; "c" ]
    (List.map (fun i -> i.Iq.payload) (drain q))

let test_batched_groups_by_dest () =
  let q = Iq.create Iq.Batched in
  (* Arrivals interleaved across destinations; processing must group them. *)
  List.iter (Iq.push q)
    [ item 1 10 "x1"; item 2 20 "y1"; item 3 10 "x2"; item 4 20 "y2"; item 5 10 "x3" ];
  Alcotest.check
    Alcotest.(list string)
    "all of dest 10 first (its queue head arrived first)"
    [ "x1"; "x2"; "x3"; "y1"; "y2" ]
    (List.map (fun i -> i.Iq.payload) (drain q))

let test_batched_eliminates_same_src_dest () =
  let q = Iq.create Iq.Batched in
  List.iter (Iq.push q) [ item 1 10 "old"; item 2 10 "other-src"; item 1 10 "new" ];
  checki "stale dropped" 1 (Iq.eliminated q);
  Alcotest.check
    Alcotest.(list string)
    "newest survives" [ "other-src"; "new" ]
    (List.map (fun i -> i.Iq.payload) (drain q))

let test_batched_dest_order_rotates () =
  let q = Iq.create Iq.Batched in
  List.iter (Iq.push q) [ item 1 10 "a"; item 1 20 "b" ];
  checkb "pop from first dest" true ((Option.get (Iq.pop q)).Iq.payload = "a");
  (* dest 10 exhausted; a new arrival for it must go behind dest 20. *)
  Iq.push q (item 2 10 "c");
  checkb "then second dest" true ((Option.get (Iq.pop q)).Iq.payload = "b");
  checkb "then the late arrival" true ((Option.get (Iq.pop q)).Iq.payload = "c")

let test_tcp_batch_same_batch_eliminates () =
  let q = Iq.create (Iq.Tcp_batch { batch_size = 3 }) in
  List.iter (Iq.push q) [ item 1 10 "a"; item 1 10 "b" ];
  checki "same-batch stale dropped" 1 (Iq.eliminated q);
  Alcotest.check
    Alcotest.(list string)
    "newest survives" [ "b" ]
    (List.map (fun i -> i.Iq.payload) (drain q))

let test_tcp_batch_cross_batch_keeps_both () =
  let q = Iq.create (Iq.Tcp_batch { batch_size = 2 }) in
  (* "a" lands in batch 0; the filler closes that batch; "c" lands in
     batch 1, so it cannot supersede "a" (different TCP reads). *)
  List.iter (Iq.push q) [ item 1 10 "a"; item 1 20 "filler"; item 1 10 "c" ];
  checki "nothing eliminated across batches" 0 (Iq.eliminated q);
  checki "all three queued" 3 (Iq.length q);
  Alcotest.check
    Alcotest.(list string)
    "FIFO order" [ "a"; "filler"; "c" ]
    (List.map (fun i -> i.Iq.payload) (drain q))

let test_tcp_batch_batch_size_one_is_fifo () =
  let q = Iq.create (Iq.Tcp_batch { batch_size = 1 }) in
  List.iter (Iq.push q) [ item 1 10 "a"; item 1 10 "b" ];
  checki "no elimination with singleton batches" 0 (Iq.eliminated q);
  checki "both kept" 2 (Iq.length q)

let test_tcp_batch_sources_independent () =
  let q = Iq.create (Iq.Tcp_batch { batch_size = 2 }) in
  (* src 2's messages must not advance src 1's batch fill. *)
  List.iter (Iq.push q) [ item 1 10 "a"; item 2 30 "x"; item 2 40 "y"; item 1 10 "b" ];
  checki "same batch for src 1 despite interleaving" 1 (Iq.eliminated q)

let test_max_length_high_water () =
  let q = Iq.create Iq.Fifo in
  for i = 1 to 5 do
    Iq.push q (item i i "p")
  done;
  ignore (Iq.pop q);
  ignore (Iq.pop q);
  Iq.push q (item 9 9 "p");
  checki "high water mark" 5 (Iq.max_length q)

let test_clear () =
  let q = Iq.create Iq.Batched in
  List.iter (Iq.push q) [ item 1 10 "a"; item 2 20 "b" ];
  Iq.clear q;
  checki "empty" 0 (Iq.length q);
  checkb "pop none" true (Iq.pop q = None);
  (* Still usable after clear. *)
  Iq.push q (item 3 30 "c");
  checkb "usable" true ((Option.get (Iq.pop q)).Iq.payload = "c")

(* --- Damping ----------------------------------------------------------------- *)

module Damping = Bgp_core.Damping

let damping_config =
  {
    Damping.withdraw_penalty = 1.0;
    update_penalty = 0.5;
    half_life = 10.0;
    cut_threshold = 2.0;
    reuse_threshold = 0.75;
    max_suppress = 60.0;
  }

let test_damping_penalty_accumulates () =
  let d = Damping.create damping_config in
  Damping.record_flap d ~peer:1 ~dest:9 ~now:0.0 ~kind:`Withdraw;
  Alcotest.check (Alcotest.float 1e-9) "one withdrawal" 1.0
    (Damping.penalty d ~peer:1 ~dest:9 ~now:0.0);
  Damping.record_flap d ~peer:1 ~dest:9 ~now:0.0 ~kind:`Update;
  Alcotest.check (Alcotest.float 1e-9) "plus an update" 1.5
    (Damping.penalty d ~peer:1 ~dest:9 ~now:0.0);
  Alcotest.check (Alcotest.float 1e-9) "other routes unaffected" 0.0
    (Damping.penalty d ~peer:2 ~dest:9 ~now:0.0)

let test_damping_decay_half_life () =
  let d = Damping.create damping_config in
  Damping.record_flap d ~peer:1 ~dest:9 ~now:0.0 ~kind:`Withdraw;
  Alcotest.check (Alcotest.float 1e-9) "half after one half-life" 0.5
    (Damping.penalty d ~peer:1 ~dest:9 ~now:10.0);
  Alcotest.check (Alcotest.float 1e-9) "quarter after two" 0.25
    (Damping.penalty d ~peer:1 ~dest:9 ~now:20.0)

let test_damping_suppression_cycle () =
  let d = Damping.create damping_config in
  checkb "clean route not suppressed" false (Damping.is_suppressed d ~peer:1 ~dest:9 ~now:0.0);
  (* Three rapid withdrawals: penalty 3.0 > cut 2.0. *)
  for _ = 1 to 3 do
    Damping.record_flap d ~peer:1 ~dest:9 ~now:0.0 ~kind:`Withdraw
  done;
  checkb "suppressed past the cut" true (Damping.is_suppressed d ~peer:1 ~dest:9 ~now:0.0);
  checki "suppression counted" 1 (Damping.suppressions d);
  (* 3.0 -> 0.75 takes two half-lives. *)
  (match Damping.reuse_time d ~peer:1 ~dest:9 ~now:0.0 with
  | Some time -> Alcotest.check (Alcotest.float 1e-6) "reuse after 2 half-lives" 20.0 time
  | None -> Alcotest.fail "expected a reuse time");
  checkb "still suppressed before reuse" true
    (Damping.is_suppressed d ~peer:1 ~dest:9 ~now:19.0);
  checkb "released after reuse" false (Damping.is_suppressed d ~peer:1 ~dest:9 ~now:20.5)

let test_damping_max_suppress_cap () =
  let d = Damping.create { damping_config with Damping.half_life = 1000.0 } in
  for _ = 1 to 3 do
    Damping.record_flap d ~peer:1 ~dest:9 ~now:0.0 ~kind:`Withdraw
  done;
  (* Decay is glacial, but max_suppress caps the outage at 60 s. *)
  (match Damping.reuse_time d ~peer:1 ~dest:9 ~now:0.0 with
  | Some time -> checkb "capped by max_suppress" true (time <= 60.0 +. 1e-9)
  | None -> Alcotest.fail "expected a reuse time");
  checkb "released at the cap" false (Damping.is_suppressed d ~peer:1 ~dest:9 ~now:61.0)

let test_damping_bad_config () =
  checkb "reuse >= cut rejected" true
    (try
       ignore (Damping.create { damping_config with Damping.reuse_threshold = 5.0 });
       false
     with Invalid_argument _ -> true)

(* Model-based property: any interleaving of pushes and pops keeps the
   queue consistent with a reference model. *)

type op = Push of int * int | Pop

let gen_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function Push (s, d) -> Printf.sprintf "push(%d,%d)" s d | Pop -> "pop")
           ops))
    QCheck.Gen.(
      list_size (1 -- 200)
        (frequency
           [ (3, map2 (fun s d -> Push (s, d)) (0 -- 4) (0 -- 6)); (2, return Pop) ]))

(* At most one live message per (src, dest) under elimination. *)
let prop_at_most_one_per_src_dest discipline =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: at most one queued message per (src,dest)"
         (Iq.discipline_name discipline))
    ~count:300 gen_ops
    (fun ops ->
      let q = Iq.create discipline in
      let tag = ref 0 in
      List.iter
        (function
          | Push (s, d) ->
            incr tag;
            Iq.push q (item s d !tag)
          | Pop -> ignore (Iq.pop q))
        ops;
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun i ->
          let key = (i.Iq.src, i.Iq.dest) in
          if Hashtbl.mem seen key then ok := false;
          Hashtbl.replace seen key ())
        (drain q);
      !ok)

let prop_conservation discipline =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: pushes = pops + eliminated + left"
         (Iq.discipline_name discipline))
    ~count:300 gen_ops
    (fun ops ->
      let q = Iq.create discipline in
      let pushes = ref 0 and pops = ref 0 in
      List.iter
        (function
          | Push (s, d) ->
            incr pushes;
            Iq.push q (item s d 0)
          | Pop -> ( match Iq.pop q with Some _ -> incr pops | None -> ()))
        ops;
      !pushes = !pops + Iq.eliminated q + Iq.length q)

let prop_batched_last_write_wins =
  QCheck.Test.make ~name:"batched: the surviving message per (src,dest) is the newest"
    ~count:300 gen_ops
    (fun ops ->
      let q = Iq.create Iq.Batched in
      let newest = Hashtbl.create 16 in
      let tag = ref 0 in
      List.iter
        (function
          | Push (s, d) ->
            incr tag;
            Iq.push q (item s d !tag);
            Hashtbl.replace newest (s, d) !tag
          | Pop -> (
            match Iq.pop q with
            | Some i ->
              if Hashtbl.find_opt newest (i.Iq.src, i.Iq.dest) = Some i.Iq.payload then
                Hashtbl.remove newest (i.Iq.src, i.Iq.dest)
            | None -> ()))
        ops;
      List.for_all
        (fun i -> Hashtbl.find_opt newest (i.Iq.src, i.Iq.dest) = Some i.Iq.payload)
        (drain q))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "mrai_controller",
        [
          Alcotest.test_case "static" `Quick test_static;
          Alcotest.test_case "degree dependent" `Quick test_degree_dependent;
          Alcotest.test_case "dynamic starts low" `Quick test_dynamic_starts_low;
          Alcotest.test_case "up transitions" `Quick test_dynamic_up_transition;
          Alcotest.test_case "down transitions" `Quick test_dynamic_down_transition;
          Alcotest.test_case "dead band" `Quick test_dynamic_dead_band;
          Alcotest.test_case "utilization detector" `Quick test_dynamic_utilization_detector;
          Alcotest.test_case "message-count detector" `Quick
            test_dynamic_message_count_detector;
          Alcotest.test_case "bad configs rejected" `Quick test_dynamic_bad_config;
        ] );
      ( "input_queue",
        [
          Alcotest.test_case "fifo order" `Quick test_fifo_order;
          Alcotest.test_case "fifo-dedup eliminates" `Quick test_fifo_dedup_eliminates;
          Alcotest.test_case "batched groups by dest" `Quick test_batched_groups_by_dest;
          Alcotest.test_case "batched eliminates (src,dest)" `Quick
            test_batched_eliminates_same_src_dest;
          Alcotest.test_case "batched dest order" `Quick test_batched_dest_order_rotates;
          Alcotest.test_case "max length" `Quick test_max_length_high_water;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "tcp-batch same batch eliminates" `Quick
            test_tcp_batch_same_batch_eliminates;
          Alcotest.test_case "tcp-batch cross batch keeps both" `Quick
            test_tcp_batch_cross_batch_keeps_both;
          Alcotest.test_case "tcp-batch size 1 = fifo" `Quick
            test_tcp_batch_batch_size_one_is_fifo;
          Alcotest.test_case "tcp-batch sources independent" `Quick
            test_tcp_batch_sources_independent;
          qc (prop_at_most_one_per_src_dest Iq.Batched);
          qc (prop_at_most_one_per_src_dest Iq.Fifo_dedup);
          qc (prop_conservation Iq.Fifo);
          qc (prop_conservation Iq.Fifo_dedup);
          qc (prop_conservation Iq.Batched);
          qc (prop_conservation (Iq.Tcp_batch { batch_size = 4 }));
          qc prop_batched_last_write_wins;
        ] );
      ( "damping",
        [
          Alcotest.test_case "penalty accumulates" `Quick test_damping_penalty_accumulates;
          Alcotest.test_case "half-life decay" `Quick test_damping_decay_half_life;
          Alcotest.test_case "suppression cycle" `Quick test_damping_suppression_cycle;
          Alcotest.test_case "max-suppress cap" `Quick test_damping_max_suppress_cap;
          Alcotest.test_case "bad config rejected" `Quick test_damping_bad_config;
        ] );
    ]
