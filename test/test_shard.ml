(* Shard-count invariance of the sharded single-trial executor.

   The contract under test: a scenario with [sharding = Some k] produces
   bit-identical results for every k >= 1 — delays to the bit, message
   and event counts exact, identical attribution component sums — because
   every delivery is ordered by the layout-free (arrival time, source
   router, send seq) key at globally-agreed barriers.  The sequential
   path ([sharding = None]) is different machinery and is NOT compared
   here; its 12 goldens pin it separately. *)

module Rng = Bgp_engine.Rng
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Config = Bgp_proto.Config
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Topology = Bgp_topology.Topology
module Partition = Bgp_topology.Partition
module Graph = Bgp_topology.Graph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- The three representative scenario classes (same battery shape as
   test_parallel.ml) ------------------------------------------------------- *)

let flat_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let realistic_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed:5
    (Runner.Realistic (As_topology.default ~n_ases:16))

let ring_topology n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    Graph.add_edge g u ((u + 1) mod n)
  done;
  Topology.of_graph (Rng.create 99) g

let link_failure_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 2.0) default))
    ~failure:(Runner.Links [ (0, 1); (3, 4) ])
    ~seed:7
    (Runner.Fixed (ring_topology 8))

(* --- Field-by-field result equality -------------------------------------- *)

let check_result_equal ~ctx (a : Runner.result) (b : Runner.result) =
  let tag field = Printf.sprintf "%s: %s" ctx field in
  checkb (tag "converged") a.Runner.converged b.Runner.converged;
  checkb (tag "convergence delay") true
    (a.Runner.convergence_delay = b.Runner.convergence_delay);
  checkb (tag "warmup delay") true (a.Runner.warmup_delay = b.Runner.warmup_delay);
  checki (tag "messages") a.Runner.messages b.Runner.messages;
  checki (tag "adverts") a.Runner.adverts b.Runner.adverts;
  checki (tag "withdrawals") a.Runner.withdrawals b.Runner.withdrawals;
  checki (tag "warmup messages") a.Runner.warmup_messages b.Runner.warmup_messages;
  checki (tag "eliminated") a.Runner.eliminated b.Runner.eliminated;
  checki (tag "max queue") a.Runner.max_queue b.Runner.max_queue;
  checki (tag "mrai transitions") a.Runner.mrai_transitions b.Runner.mrai_transitions;
  checki (tag "events") a.Runner.events b.Runner.events;
  checki (tag "lost messages") a.Runner.lost_messages b.Runner.lost_messages;
  checkb (tag "survivors connected") a.Runner.survivors_connected
    b.Runner.survivors_connected;
  checkb (tag "issues") true (a.Runner.issues = b.Runner.issues)

let check_attr_equal ~ctx (a : Runner.result) (b : Runner.result) =
  match (a.Runner.attribution, b.Runner.attribution) with
  | Some x, Some y ->
    let open Attribution in
    checkb (ctx ^ ": attr totals") true (x.totals = y.totals);
    checkb (ctx ^ ": attr aggregate") true (x.aggregate = y.aggregate);
    checkb (ctx ^ ": attr delay") true (x.convergence_delay = y.convergence_delay);
    checkb (ctx ^ ": attr complete") x.complete y.complete;
    checki (ctx ^ ": attr hops") (List.length x.critical_path)
      (List.length y.critical_path)
  | _ -> Alcotest.fail (ctx ^ ": attribution missing")

(* --- Golden: shards=2 and shards=4 == shards=1 ---------------------------- *)

let run_with_shards base k =
  (* Each run gets its own trace (a trace belongs to one run). *)
  let trace = Trace.create ~capacity:200_000 () in
  Runner.run
    {
      base with
      Runner.sharding = Some k;
      net = { base.Runner.net with Network.trace = Some trace };
    }

let shard_invariance ctx base () =
  let one = run_with_shards base 1 in
  List.iter
    (fun k ->
      let rk = run_with_shards base k in
      let ctx = Printf.sprintf "%s: shards=%d vs 1" ctx k in
      check_result_equal ~ctx one rk;
      check_attr_equal ~ctx one rk)
    [ 2; 4 ]

(* The chaos fault layer, sharded: replicated fault tables, hash-based
   gray loss, jitter-derived lookahead — all still shard-count invariant. *)
let faulted_scenario =
  let topo = Runner.topology_of flat_scenario in
  let failure = Runner.failure_of flat_scenario topo in
  let schedule =
    Bgp_netsim.Fault_injector.generate ~rng:(Rng.create 21) ~topo ~failure
      ~max_events:4 ~horizon:30.0 ()
  in
  { flat_scenario with Runner.faults = Some schedule }

(* --- Partition properties ------------------------------------------------- *)

let topo_gen =
  QCheck.Gen.(
    let* n = int_range 8 40 in
    let* seed = int_range 1 1000 in
    return (seed, Topology.flat (Rng.create seed) ~spec:Degree_dist.skewed_70_30 ~n))

let arb_topo =
  QCheck.make
    ~print:(fun (seed, topo) ->
      Printf.sprintf "{seed=%d; n=%d}" seed (Topology.num_routers topo))
    topo_gen

let arb_topo_shards = QCheck.pair arb_topo (QCheck.int_range 1 6)

let prop_total_assignment =
  QCheck.Test.make ~count:60 ~name:"Partition: every router in exactly one shard"
    arb_topo_shards
    (fun ((seed, topo), shards) ->
      let p = Partition.compute ~shards ~seed topo in
      let n = Topology.num_routers topo in
      Array.length p.Partition.owner = n
      && Array.for_all (fun s -> s >= 0 && s < shards) p.Partition.owner
      && Array.fold_left ( + ) 0 p.Partition.sizes = n
      (* AS granularity: an AS never splits across shards. *)
      && Array.for_all
           (fun r ->
             p.Partition.owner.(r)
             = p.Partition.as_owner.(topo.Topology.as_of_router.(r)))
           (Array.init n Fun.id))

let prop_balance_bound =
  QCheck.Test.make ~count:60 ~name:"Partition: balance bound respected"
    arb_topo_shards
    (fun ((seed, topo), shards) ->
      let p = Partition.compute ~shards ~seed topo in
      let bound = Partition.max_weight_bound ~shards topo in
      Array.for_all (fun size -> size <= bound) p.Partition.sizes)

let prop_deterministic =
  QCheck.Test.make ~count:30 ~name:"Partition: deterministic under fixed seed"
    arb_topo_shards
    (fun ((seed, topo), shards) ->
      let a = Partition.compute ~shards ~seed topo in
      let b = Partition.compute ~shards ~seed topo in
      a.Partition.owner = b.Partition.owner
      && a.Partition.cut_edges = b.Partition.cut_edges)

let prop_no_worse_than_round_robin =
  QCheck.Test.make ~count:60 ~name:"Partition: edge cut <= legal round-robin"
    arb_topo_shards
    (fun ((seed, topo), shards) ->
      let p = Partition.compute ~shards ~seed topo in
      let rr = Partition.round_robin ~shards topo in
      let bound = Partition.max_weight_bound ~shards topo in
      let rr_legal = Array.for_all (fun s -> s <= bound) rr.Partition.sizes in
      (not rr_legal) || p.Partition.cut_edges <= rr.Partition.cut_edges)

(* --- Pinned golden: the fig1-class topology ------------------------------- *)

let test_partition_golden () =
  (* Flat skewed 70-30 graph — the class every fig1 sweep point uses. *)
  let topo = Topology.flat (Rng.create 42) ~spec:Degree_dist.skewed_70_30 ~n:64 in
  let p = Partition.compute ~shards:4 ~seed:42 topo in
  checki "routers" 64 (Array.fold_left ( + ) 0 p.Partition.sizes);
  let bound = Partition.max_weight_bound ~shards:4 topo in
  checkb "bound" true (Array.for_all (fun s -> s <= bound) p.Partition.sizes);
  (* Pinned: any change to the partitioner that moves these numbers is a
     deliberate algorithm change and must update this golden. *)
  checki "cut edges" 54 p.Partition.cut_edges;
  checkb "sizes" true (p.Partition.sizes = [| 18; 18; 11; 17 |]);
  let q = Partition.compute ~shards:4 ~seed:42 topo in
  checkb "stable across calls" true (p.Partition.owner = q.Partition.owner)

let () =
  Alcotest.run "shard"
    [
      ( "shard-count invariance (shards 1/2/4)",
        [
          Alcotest.test_case "flat 70-30, 10% failure" `Quick
            (shard_invariance "flat" flat_scenario);
          Alcotest.test_case "realistic (Fig 13 class)" `Quick
            (shard_invariance "realistic" realistic_scenario);
          Alcotest.test_case "link-failure Tdown ring" `Quick
            (shard_invariance "tdown" link_failure_scenario);
          Alcotest.test_case "chaotic fault schedule" `Quick
            (shard_invariance "faulted" faulted_scenario);
        ] );
      ( "partition properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_total_assignment;
            prop_balance_bound;
            prop_deterministic;
            prop_no_worse_than_round_robin;
          ] );
      ( "partition golden (fig1 topology)",
        [ Alcotest.test_case "pinned 4-way split" `Quick test_partition_golden ] );
    ]
