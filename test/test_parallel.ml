(* Determinism of the parallel trial fan-out.

   The contract under test: every trial owns its seed, RNG and
   scheduler, so [Sweep.results]/[Pool.map] return results that are
   structurally identical whatever the job count, the submission order
   or the domain that happened to run each trial — and the sweep cache
   is domain-safe and single-flight under concurrent use. *)

module Pool = Bgp_engine.Pool
module Rng = Bgp_engine.Rng
module Sweep = Bgp_experiments.Sweep
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- The three representative scenario classes -------------------------- *)

(* Flat random topology (the paper's Waxman-placed degree-distribution
   graphs), contiguous 10% router failure. *)
let flat_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

(* Realistic multi-router-per-AS topology (Fig 13 class). *)
let realistic_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed:5
    (Runner.Realistic (As_topology.default ~n_ases:16))

(* Link-failure Tdown on a fixed ring: sessions drop, routers stay up. *)
let ring_topology n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    Graph.add_edge g u ((u + 1) mod n)
  done;
  Topology.of_graph (Rng.create 99) g

let link_failure_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 2.0) default))
    ~failure:(Runner.Links [ (0, 1); (3, 4) ])
    ~seed:7
    (Runner.Fixed (ring_topology 8))

(* --- Field-by-field result equality -------------------------------------- *)

let check_result_equal ~ctx i (a : Runner.result) (b : Runner.result) =
  let tag field = Printf.sprintf "%s: trial %d: %s" ctx i field in
  checkb (tag "converged") a.Runner.converged b.Runner.converged;
  checkb (tag "convergence delay")
    true (a.Runner.convergence_delay = b.Runner.convergence_delay);
  checkb (tag "warmup delay") true (a.Runner.warmup_delay = b.Runner.warmup_delay);
  checki (tag "messages") a.Runner.messages b.Runner.messages;
  checki (tag "adverts") a.Runner.adverts b.Runner.adverts;
  checki (tag "withdrawals") a.Runner.withdrawals b.Runner.withdrawals;
  checki (tag "warmup messages") a.Runner.warmup_messages b.Runner.warmup_messages;
  checki (tag "eliminated") a.Runner.eliminated b.Runner.eliminated;
  checki (tag "max queue") a.Runner.max_queue b.Runner.max_queue;
  checki (tag "mrai transitions") a.Runner.mrai_transitions b.Runner.mrai_transitions;
  checki (tag "events") a.Runner.events b.Runner.events;
  checkb (tag "survivors connected")
    a.Runner.survivors_connected b.Runner.survivors_connected;
  checkb (tag "issues") true (a.Runner.issues = b.Runner.issues)

let check_results_equal ~ctx xs ys =
  checki (ctx ^ ": result count") (List.length xs) (List.length ys);
  List.iteri (fun i (a, b) -> check_result_equal ~ctx i a b) (List.combine xs ys)

(* --- Golden determinism: jobs=4 == jobs=1 -------------------------------- *)

let golden ctx scenario () =
  Sweep.clear_cache ();
  let seq = Sweep.results ~jobs:1 scenario ~trials:4 in
  Sweep.clear_cache ();
  let par = Sweep.results ~jobs:4 scenario ~trials:4 in
  check_results_equal ~ctx seq par;
  (* And against the raw runner, bypassing cache and pool entirely. *)
  let raw =
    List.init 4 (fun i -> Runner.run { scenario with Runner.seed = scenario.Runner.seed + i })
  in
  check_results_equal ~ctx:(ctx ^ " vs raw") raw par

(* --- QCheck: job count and submission order don't matter ------------------ *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 8 16 in
    let* seed = int_range 1 30 in
    let* frac = oneofl [ 0.1; 0.2; 0.3 ] in
    let* mrai = oneofl [ 0.5; 2.0 ] in
    return
      (Runner.scenario
         ~net:(Network.config_default Config.(with_mrai (Static mrai) default))
         ~failure:(Runner.Fraction frac) ~seed
         (Runner.Flat { spec = Degree_dist.skewed_70_30; n })))

let scenario_print (s : Runner.scenario) =
  let n = match s.Runner.topo with Runner.Flat { n; _ } -> n | _ -> -1 in
  let frac = match s.Runner.failure with Runner.Fraction f -> f | _ -> nan in
  Printf.sprintf "{n=%d; seed=%d; frac=%g}" n s.Runner.seed frac

let arb_scenario = QCheck.make ~print:scenario_print scenario_gen

let prop_jobs_invariant =
  QCheck.Test.make ~count:6 ~name:"Sweep.results independent of job count"
    (QCheck.pair arb_scenario (QCheck.int_range 1 8))
    (fun (scenario, jobs) ->
      let trials = 3 in
      let seq =
        List.init trials (fun i ->
            Runner.run { scenario with Runner.seed = scenario.Runner.seed + i })
      in
      Sweep.clear_cache ();
      let par = Sweep.results ~jobs scenario ~trials in
      seq = par)

let prop_submission_order =
  (* Permuting the submitted job list permutes the output identically:
     the per-seed result multiset is independent of submission order. *)
  QCheck.Test.make ~count:4 ~name:"Pool.map independent of submission order"
    (QCheck.pair arb_scenario (QCheck.int_range 2 8))
    (fun (scenario, jobs) ->
      let seeds = List.init 4 (fun i -> scenario.Runner.seed + i) in
      let run_seed seed = Runner.run { scenario with Runner.seed = seed } in
      let forward = Pool.map ~jobs run_seed seeds in
      let backward = Pool.map ~jobs run_seed (List.rev seeds) in
      forward = List.rev backward)

(* Pure-function sanity: Pool.map is List.map for any jobs. *)
let prop_pool_is_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map f = List.map f"
    (QCheck.pair (QCheck.list (QCheck.int_range 0 1000)) (QCheck.int_range 1 8))
    (fun (xs, jobs) ->
      let f x = (x * 7919) lxor (x lsl 3) in
      Pool.map ~jobs f xs = List.map f xs)

(* --- Cache concurrency ---------------------------------------------------- *)

let tiny seed =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 12 })

let test_single_flight () =
  (* Six domains race for the same uncached key: exactly one simulates;
     the rest must block and then share the very same result list. *)
  Sweep.clear_cache ();
  let scenario = tiny 11 in
  let domains =
    List.init 6 (fun _ -> Domain.spawn (fun () -> Sweep.results ~jobs:1 scenario ~trials:2))
  in
  let results = List.map Domain.join domains in
  checki "one cache entry" 1 (Sweep.cache_size ());
  match results with
  | first :: rest ->
    List.iter
      (fun r -> checkb "physically shared (computed once)" true (r == first))
      rest
  | [] -> Alcotest.fail "no results"

let test_cache_stress () =
  (* Hammer results/clear_cache from concurrent domains: no crash, no
     torn table, the table never holds more than the two live keys, and
     every read returns one of the two deterministic golden values. *)
  Sweep.clear_cache ();
  let golden1 = Sweep.results ~jobs:1 (tiny 1) ~trials:2 in
  Sweep.clear_cache ();
  let golden2 = Sweep.results ~jobs:1 (tiny 2) ~trials:2 in
  Sweep.clear_cache ();
  let domains =
    List.init 6 (fun d ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            for i = 1 to 8 do
              if d = 0 && i mod 3 = 0 then Sweep.clear_cache ();
              mine := Sweep.results ~jobs:2 (tiny (1 + (i mod 2))) ~trials:2 :: !mine
            done;
            !mine))
  in
  let reads = List.concat_map Domain.join domains in
  checkb "cache holds at most the two live keys" true (Sweep.cache_size () <= 2);
  checki "all reads returned" 48 (List.length reads);
  List.iter
    (fun r ->
      checkb "every read is one of the two golden values" true
        (r = golden1 || r = golden2))
    reads;
  (* After the dust settles a fresh lookup still returns the golden value. *)
  let again = Sweep.results ~jobs:4 (tiny 1) ~trials:2 in
  check_results_equal ~ctx:"post-stress" golden1 again

(* --- Pool unit tests ------------------------------------------------------ *)

exception Boom of int

let test_pool_empty () =
  checkb "empty in, empty out" true (Pool.map ~jobs:4 (fun x -> x * 2) [] = [])

let test_pool_one () =
  checkb "single job" true (Pool.map ~jobs:4 (fun x -> x + 1) [ 41 ] = [ 42 ])

let test_pool_more_jobs_than_work () =
  checkb "jobs > queue" true
    (Pool.map ~jobs:8 (fun x -> x * x) [ 1; 2; 3 ] = [ 1; 4; 9 ])

let test_pool_default_jobs () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  checki "default set" 3 (Pool.default_jobs ());
  checkb "map honours default" true (Pool.map (fun x -> -x) [ 1; 2 ] = [ -1; -2 ]);
  Pool.set_default_jobs saved;
  checkb "zero jobs rejected" true
    (try
       Pool.set_default_jobs 0;
       false
     with Invalid_argument _ -> true);
  checkb "map rejects jobs=0" true
    (try
       ignore (Pool.map ~jobs:0 Fun.id [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_exception () =
  (* The exception is re-raised in the caller; with several raising jobs
     the one with the lowest input index wins, deterministically. *)
  Alcotest.check_raises "re-raised in caller" (Boom 5) (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x >= 5 then raise (Boom x) else x)
           [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
  for _ = 1 to 10 do
    (match Pool.map ~jobs:4 (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
             [ 1; 2; 3; 4; 5; 6 ]
     with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> checki "lowest raising index" 3 x)
  done;
  (* The pool shut down cleanly: domains were joined, later maps work. *)
  checkb "pool alive after failure" true
    (Pool.map ~jobs:4 (fun x -> x + 1) [ 1; 2; 3; 4 ] = [ 2; 3; 4; 5 ])

let () =
  Alcotest.run "parallel"
    [
      ( "golden determinism (jobs=4 == jobs=1)",
        [
          Alcotest.test_case "flat 70-30, 10% failure" `Quick
            (golden "flat" flat_scenario);
          Alcotest.test_case "realistic (Fig 13 class)" `Quick
            (golden "realistic" realistic_scenario);
          Alcotest.test_case "link-failure Tdown ring" `Quick
            (golden "tdown" link_failure_scenario);
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_jobs_invariant; prop_submission_order; prop_pool_is_map ] );
      ( "cache concurrency",
        [
          Alcotest.test_case "single flight" `Quick test_single_flight;
          Alcotest.test_case "clear/results stress" `Quick test_cache_stress;
        ] );
      ( "pool",
        [
          Alcotest.test_case "empty job list" `Quick test_pool_empty;
          Alcotest.test_case "one job" `Quick test_pool_one;
          Alcotest.test_case "jobs > queue" `Quick test_pool_more_jobs_than_work;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "raising job" `Quick test_pool_exception;
        ] );
    ]
