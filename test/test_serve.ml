(* The live analysis service (Bgp_experiments.Serve), driven in-process
   through the same scan/handle entry points the socket loop uses — plus
   one real fork-and-socket round trip.

   The properties: the folded trial count only ever grows as sidecars
   land in the watched directory; each sidecar is folded exactly once no
   matter how often the directory is rescanned; status carries the chaos
   battery tally and the telemetry counters; a corrupt drop is reported
   once, not once per scan; and the socket protocol answers a real
   client end to end. *)

module Attribution = Bgp_netsim.Attribution
module Serve = Bgp_experiments.Serve
module Report = Bgp_experiments.Bench_report

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "bgpsim_serve_%d_%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* A tiny synthetic sidecar — the service only folds, it never re-derives,
   so hand-built attributions exercise it fully. *)
let sidecar ?(violations = []) ~seed ~delay () =
  let c q = { Attribution.queueing = q; processing = 0.1; mrai_hold = 0.2; propagation = 0.05 } in
  {
    Attribution.sc_seed = seed;
    sc_t_fail = 100.0;
    sc_delay = delay;
    sc_complete = true;
    sc_events = 10;
    sc_totals = c (delay -. 0.35);
    sc_aggregate = c (2.0 *. delay);
    sc_by_router = [ (1, c 0.3); (2, c 0.4) ];
    sc_dests =
      [
        {
          Attribution.sd_dest = 5;
          sd_tail = delay;
          sd_complete = true;
          sd_parts = c (delay -. 0.35);
        };
      ];
    sc_violations = violations;
  }

let drop dir ~seed ?violations ~delay () =
  Attribution.write_sidecar
    (Filename.concat dir (Printf.sprintf "trial.seed%d.attr.json" seed))
    (sidecar ?violations ~seed ~delay ())

(* Pull a field out of the status JSON via the bench-report reader. *)
let status_field t name =
  match Report.member name (Report.of_string (Serve.handle t "status")) with
  | Some v -> v
  | None -> Alcotest.failf "status has no %S member" name

let status_int t name =
  match Report.to_float (status_field t name) with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "status member %S is not a number" name

let test_monotonic_growth () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Serve.create ~dir () in
  checki "empty" 0 (Serve.scan t);
  checki "no trials yet" 0 (Serve.trials t);
  drop dir ~seed:1 ~delay:2.0 ();
  drop dir ~seed:2 ~delay:3.0 ();
  checki "first batch folds" 2 (Serve.scan t);
  checki "trials after first batch" 2 (Serve.trials t);
  checki "rescan folds nothing new" 0 (Serve.scan t);
  checki "still 2" 2 (Serve.trials t);
  drop dir ~seed:3 ~delay:4.0 ();
  checki "second batch folds the new one" 1 (Serve.scan t);
  checki "monotonic" 3 (Serve.trials t);
  checki "status agrees" 3 (status_int t "trials")

let test_status_contents () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Serve.create ~dir () in
  drop dir ~seed:1 ~delay:2.0 ();
  drop dir ~seed:2 ~delay:3.0 ~violations:[ "queue_drain"; "converged" ] ();
  ignore (Serve.scan t);
  let s = Serve.handle t "status" in
  checkb "schema" true (contains s "\"schema\":\"bgp-serve-status/2\"");
  checki "trials" 2 (status_int t "trials");
  checkb "battery tally" true (contains s "\"pass\":1,\"fail\":1");
  checkb "violation names" true (contains s "\"queue_drain\":1");
  (* The /2 additions: explicit-unit uptime, process RSS and GC gauges. *)
  checkb "uptime_s gauge" true (contains s "\"uptime_s\":");
  checkb "rss gauge" true (status_int t "rss_bytes" >= 0);
  checkb "gc gauges" true (contains s "\"heap_words\":");
  let s2 = Serve.handle t "status" in
  checkb "request counter grew" true
    (contains s2 "\"requests\":" && not (String.equal s s2))

(* Prometheus text exposition (0.0.4): every sample line's metric must be
   declared by HELP/TYPE lines, and every value must parse as a float. *)
let test_metrics_well_formed () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Serve.create ~dir () in
  drop dir ~seed:1 ~delay:2.0 ();
  drop dir ~seed:2 ~delay:3.0 ~violations:[ "queue_drain" ] ();
  ignore (Serve.scan t);
  let body = Serve.handle t "metrics" in
  checkb "ends with a newline" true
    (String.length body > 0 && body.[String.length body - 1] = '\n');
  let declared = Hashtbl.create 16 in
  let samples = ref 0 in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.starts_with ~prefix:"# HELP " line
                 || String.starts_with ~prefix:"# TYPE " line then begin
           let rest = String.sub line 7 (String.length line - 7) in
           let name =
             match String.index_opt rest ' ' with
             | Some i -> String.sub rest 0 i
             | None -> rest
           in
           Hashtbl.replace declared name ()
         end
         else begin
           incr samples;
           let metric =
             match (String.index_opt line '{', String.index_opt line ' ') with
             | Some b, _ -> String.sub line 0 b
             | None, Some sp -> String.sub line 0 sp
             | None, None -> Alcotest.failf "malformed sample line %S" line
           in
           checkb (Printf.sprintf "%s declared by HELP/TYPE" metric) true
             (Hashtbl.mem declared metric);
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "no value in %S" line
           | Some i ->
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             if float_of_string_opt v = None then
               Alcotest.failf "value %S is not a float (line %S)" v line
         end);
  checkb "has samples" true (!samples > 0);
  checkb "campaign counters exposed" true
    (contains body "bgp_serve_trials 2"
    && contains body "bgp_serve_battery_fail_total 1");
  checkb "tail quantiles labeled" true
    (contains body "bgp_serve_tail_seconds{quantile=\"0.95\"}");
  checkb "process gauges exposed" true
    (contains body "bgp_process_resident_memory_bytes"
    && contains body "bgp_gc_heap_words");
  (* The metrics verb is itself counted in status. *)
  checkb "metrics counted in status" true
    (contains (Serve.handle t "status") "\"metrics\":1")

let test_report_and_flame () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Serve.create ~dir () in
  drop dir ~seed:1 ~delay:2.0 ();
  ignore (Serve.scan t);
  let r = Serve.handle t "report" in
  checkb "report schema" true (contains r "\"schema\":\"bgp-attr-merge/1\"");
  checkb "report sources" true (contains r "\"sidecars\":1");
  let f = Serve.handle t "flame" in
  checkb "flame has router frames" true (contains f "router_1;queueing ");
  checkb "unknown request errors" true
    (contains (Serve.handle t "bogus") "unknown request")

let test_corrupt_reported_once () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Serve.create ~dir () in
  drop dir ~seed:1 ~delay:2.0 ();
  Out_channel.with_open_bin (Filename.concat dir "bad.attr.json") (fun oc ->
      Out_channel.output_string oc "not json");
  checki "only the good one folds" 1 (Serve.scan t);
  checki "rescan does not refold or recount" 0 (Serve.scan t);
  checki "skipped once" 1 (status_int t "skipped");
  checkb "first_error names the file" true
    (contains (Serve.handle t "status") "bad.attr.json")

(* One real socket round trip: fork a server bounded by --max-requests,
   query it as a client, and let the shutdown request stop it. *)
let test_socket_roundtrip () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "serve.sock" in
  drop dir ~seed:1 ~delay:2.0 ();
  match Unix.fork () with
  | 0 ->
    (* Child: serve until the shutdown below; _exit skips alcotest's
       at_exit machinery. *)
    (try Serve.run ~max_requests:8 ~scan_interval:0.05 ~socket ~dir () with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try ignore (Serve.request ~socket "shutdown") with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        rm_rf dir)
    @@ fun () ->
    (* Wait for the socket to appear. *)
    let rec await n =
      if Sys.file_exists socket then ()
      else if n = 0 then Alcotest.fail "server socket never appeared"
      else begin
        Unix.sleepf 0.05;
        await (n - 1)
      end
    in
    await 100;
    let s1 = Serve.request ~socket "status" in
    checkb "status over socket" true (contains s1 "\"trials\":1");
    (* A second trial dropped while the server runs is visible to the
       next request — the live part of “live”. *)
    drop dir ~seed:2 ~delay:3.0 ();
    let s2 = Serve.request ~socket "status" in
    checkb "new sidecar visible" true (contains s2 "\"trials\":2");
    let ack = Serve.request ~socket "shutdown" in
    checkb "shutdown acked" true (contains ack "\"shutdown\":true")

let () =
  Alcotest.run "serve"
    [
      ( "fold",
        [
          Alcotest.test_case "trials grow monotonically" `Quick test_monotonic_growth;
          Alcotest.test_case "status carries battery and counters" `Quick
            test_status_contents;
          Alcotest.test_case "report and flame render" `Quick test_report_and_flame;
          Alcotest.test_case "metrics exposition well-formed" `Quick
            test_metrics_well_formed;
          Alcotest.test_case "corrupt sidecar reported once" `Quick
            test_corrupt_reported_once;
        ] );
      ("socket", [ Alcotest.test_case "fork + query + shutdown" `Quick test_socket_roundtrip ]);
    ]
