(* The chaos campaign's own contract.

   Four properties anchor the fault layer: (1) a chaotic trial is a pure
   function of its seed — same seed, byte-identical finalized trace
   file, whatever the job count; (2) the schedule generator only emits
   well-formed schedules (sorted, post-failure onsets, partitions that
   heal) and its shrinker preserves well-formedness, for arbitrary
   seeds; (3) a small campaign runs all-green with a jobs-invariant
   fingerprint, and the seeded-violation self-test drives the ddmin
   minimizer down to a tiny reproducer; (4) reading a trace file back
   never raises — empty, truncated and malformed files are clean
   [Error]s naming the file and line. *)

module Pool = Bgp_engine.Pool
module Rng = Bgp_engine.Rng
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Fi = Bgp_netsim.Fault_injector
module Chaos = Bgp_experiments.Chaos
module Config = Bgp_proto.Config
module Path = Bgp_proto.Path
module Degree_dist = Bgp_topology.Degree_dist
module Topology = Bgp_topology.Topology

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

(* The one scenario family under chaos everywhere below: flat 70-30,
   15% contiguous failure — small enough to run dozens of trials, big
   enough that every fault shape finds live links to hit. *)
let base =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.15) ~seed:11
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

(* --- (1) replay bit-identity: jobs=4 == jobs=1, byte for byte --------- *)

let finalized_traces ~jobs ~trials dir =
  let cfg = Chaos.config ~horizon:4.0 base in
  let pairs =
    Runner.traced ~capacity:300_000
      ~spill_base:(Filename.concat dir "t.jsonl")
      base ~trials
  in
  (* each trial gets the fault schedule its own seed derives *)
  let pairs =
    List.map
      (fun (s, tr) -> ({ s with Runner.faults = Some (Chaos.schedule_for cfg s) }, tr))
      pairs
  in
  let results = Pool.map ~jobs (fun (s, _) -> Runner.run s) pairs in
  List.map2
    (fun (s, tr) (r : Runner.result) ->
      let attr =
        match r.Runner.attribution with
        | Some a -> a
        | None -> Alcotest.fail "chaotic traced run produced no attribution"
      in
      Trace.finalize tr
        ~meta:{ Trace.seed = s.Runner.seed; t_fail = attr.Attribution.t_fail };
      match Trace.spill_path tr with
      | Some p -> (s.Runner.seed, slurp p)
      | None -> Alcotest.fail "traced trial has no spill file")
    pairs results

let test_replay_bit_identity () =
  let trials = 3 in
  let seq = finalized_traces ~jobs:1 ~trials (temp_dir "bgpsim_chaos_seq") in
  let par = finalized_traces ~jobs:4 ~trials (temp_dir "bgpsim_chaos_par") in
  checki "trial count" trials (List.length par);
  List.iter2
    (fun (seed_a, bytes_a) (seed_b, bytes_b) ->
      checki "same seed" seed_a seed_b;
      checkb
        (Printf.sprintf "seed %d produced events" seed_a)
        true
        (String.length bytes_a > 0);
      checks
        (Printf.sprintf "seed %d: finalized trace bytes identical (jobs 1 vs 4)"
           seed_a)
        (Digest.to_hex (Digest.string bytes_a))
        (Digest.to_hex (Digest.string bytes_b)))
    seq par

(* --- (2) generator and shrinker well-formedness, for any seed --------- *)

let topo = Runner.topology_of base
let failure = Runner.failure_of base topo
let n_routers = Topology.num_routers topo
let horizon = 4.0

let schedule_of_seed ?(max_events = 5) seed =
  Fi.generate ~rng:(Rng.create seed) ~topo ~failure ~max_events ~horizon ()

let pp_schedule sched =
  String.concat "; " (List.map (Fmt.to_to_string Fi.pp_event) sched)

let arb_seed = QCheck.int_range 1 100_000

let prop_generate_valid =
  QCheck.Test.make ~count:200 ~name:"generated schedules validate"
    arb_seed
    (fun seed ->
      let sched = schedule_of_seed seed in
      match Fi.validate ~n:n_routers ~horizon sched with
      | Ok () -> sched <> []
      | Error m -> QCheck.Test.fail_reportf "seed %d: %s: %s" seed m (pp_schedule sched))

let prop_no_event_predates_failure =
  QCheck.Test.make ~count:200 ~name:"no event predates t_fail" arb_seed
    (fun seed -> List.for_all (fun e -> e.Fi.at >= 0.0) (schedule_of_seed seed))

let prop_partitions_heal =
  QCheck.Test.make ~count:200 ~name:"partitions always heal within the horizon"
    arb_seed
    (fun seed ->
      List.for_all
        (fun e ->
          match e.Fi.fault with
          | Fi.Partition { heal_after; _ } ->
            heal_after > 0.0 && e.Fi.at +. heal_after <= horizon
          | _ -> true)
        (schedule_of_seed seed))

let prop_generate_pure =
  QCheck.Test.make ~count:50 ~name:"same seed, same schedule" arb_seed
    (fun seed -> schedule_of_seed seed = schedule_of_seed seed)

let prop_shrink_valid =
  QCheck.Test.make ~count:100 ~name:"every shrink of a valid schedule is valid"
    arb_seed
    (fun seed ->
      let sched = schedule_of_seed ~max_events:4 seed in
      List.for_all
        (fun cand ->
          match Fi.validate ~n:n_routers ~horizon cand with
          | Ok () -> true
          | Error m ->
            QCheck.Test.fail_reportf "seed %d: shrink invalid (%s): %s" seed m
              (pp_schedule cand))
        (Fi.shrink sched))

let prop_shrink_shrinks =
  (* shrink candidates never grow, and dropping events strictly shrinks —
     the minimizer's termination argument *)
  QCheck.Test.make ~count:100 ~name:"shrink candidates never grow" arb_seed
    (fun seed ->
      let sched = schedule_of_seed seed in
      List.for_all
        (fun cand -> List.length cand <= List.length sched)
        (Fi.shrink sched))

(* --- (3) campaign: all green, jobs-invariant, minimizer works --------- *)

let test_campaign_green () =
  let cfg = Chaos.config ~trials:6 ~horizon:3.0 ~replay_every:3 base in
  let c1 = Chaos.run_campaign ~jobs:1 cfg in
  let c4 = Chaos.run_campaign ~jobs:4 cfg in
  checki "all trials ran" 6 (List.length c1.Chaos.outcomes);
  (match Chaos.violating c1 with
  | [] -> ()
  | o :: _ ->
    let v = List.hd o.Chaos.violations in
    Alcotest.failf "trial seed %d violated %s: %s" o.Chaos.trial_seed
      v.Chaos.invariant v.Chaos.detail);
  checks "fingerprint independent of jobs" c1.Chaos.fingerprint c4.Chaos.fingerprint;
  checkb "several fault kinds exercised" true (List.length c1.Chaos.kinds_seen >= 2);
  checkb "no reproducer on a green campaign" true (c1.Chaos.minimized = None);
  (* faults actually bite: some trial loses messages in flight *)
  checkb "some trial lost messages" true
    (List.exists (fun o -> o.Chaos.lost > 0) c1.Chaos.outcomes)

let test_minimizer_self_test () =
  (* Declare gray-link schedules violating (the CI self-test hook): the
     campaign must find one, ddmin+shrink it to <= 3 events, and the
     minimal schedule must still contain the trigger. *)
  let cfg = Chaos.config ~trials:12 ~horizon:3.0 ~seed_violation:true base in
  let campaign = Chaos.run_campaign ~jobs:4 cfg in
  checkb "seeded violation found" true (Chaos.violating campaign <> []);
  match campaign.Chaos.minimized with
  | None -> Alcotest.fail "seeded violation was not minimized"
  | Some m ->
    checkb
      (Printf.sprintf "minimized to <= 3 events (got %d)"
         (List.length m.Chaos.m_schedule))
      true
      (List.length m.Chaos.m_schedule <= 3);
    checkb "minimal schedule no larger than the original" true
      (List.length m.Chaos.m_schedule <= m.Chaos.m_original_events);
    checkb "still violates seeded_violation" true
      (List.mem "seeded_violation" m.Chaos.m_invariants);
    checkb "the gray-link trigger survived minimization" true
      (List.mem "gray_link" (Fi.kinds m.Chaos.m_schedule));
    (* the artifact embeds the reproducer *)
    let json = Chaos.artifact_to_json cfg campaign in
    checkb "artifact carries schema tag" true (contains json "bgp-chaos/1");
    checkb "artifact carries the minimized schedule" true
      (contains json "\"minimized\"" && contains json "gray_link")

(* --- (4) Trace.read_file never raises ---------------------------------- *)

let write_text path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* A real finalized trace file to carve test inputs from. *)
let finalized_file () =
  let dir = temp_dir "bgpsim_readfile" in
  match finalized_traces ~jobs:1 ~trials:1 dir with
  | [ (_, bytes) ] -> (dir, bytes)
  | _ -> Alcotest.fail "expected exactly one trial"

let test_read_file_errors () =
  let paths = Path.create_table () in
  let dir, bytes = finalized_file () in
  let lines = String.split_on_char '\n' (String.trim bytes) in
  checkb "real file has several lines" true (List.length lines > 2);
  (* the untouched file reads back fine, meta and all *)
  let whole = Filename.concat dir "whole.jsonl" in
  write_text whole bytes;
  (match Trace.read_file ~paths whole with
  | Ok (Some _, events) -> checkb "events read back" true (events <> [])
  | Ok (None, _) -> Alcotest.fail "finalized file lost its meta line"
  | Error m -> Alcotest.failf "finalized file must read back: %s" m);
  (* missing file: Error, not Sys_error *)
  (match Trace.read_file ~paths (Filename.concat dir "no-such-file.jsonl") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be Error");
  (* empty file *)
  let empty = Filename.concat dir "empty.jsonl" in
  write_text empty "";
  (match Trace.read_file ~paths empty with
  | Error m ->
    checkb "error names the file" true (contains m empty);
    checkb "error says empty" true (contains m "empty")
  | Ok _ -> Alcotest.fail "empty file must be Error");
  (* truncated mid-line: first event line intact, second cut in half *)
  let first, second =
    match lines with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "unreachable"
  in
  let trunc = Filename.concat dir "trunc.jsonl" in
  write_text trunc (first ^ "\n" ^ String.sub second 0 (String.length second / 2));
  (match Trace.read_file ~paths trunc with
  | Error m ->
    checkb "error names the file" true (contains m trunc);
    checkb "error names line 2" true (contains m ":2");
    checkb "error says truncated or malformed" true (contains m "truncated")
  | Ok _ -> Alcotest.fail "truncated file must be Error");
  (* garbage instead of JSON *)
  let garbage = Filename.concat dir "garbage.jsonl" in
  write_text garbage (first ^ "\nnot json at all\n");
  (match Trace.read_file ~paths garbage with
  | Error m -> checkb "error names line 2" true (contains m ":2")
  | Ok _ -> Alcotest.fail "garbage line must be Error");
  (* a bare, never-finalized spill (no meta line) still reads back *)
  let bare = Filename.concat dir "bare.jsonl" in
  let event_lines =
    List.filter (fun l -> not (contains l "\"type\":\"meta\"")) lines
  in
  write_text bare (String.concat "\n" event_lines ^ "\n");
  match Trace.read_file ~paths bare with
  | Ok (None, events) ->
    checki "bare spill keeps every event" (List.length event_lines)
      (List.length events)
  | Ok (Some _, _) -> Alcotest.fail "bare spill has no meta line"
  | Error m -> Alcotest.failf "bare spill must read back: %s" m

let () =
  Alcotest.run "chaos"
    [
      ( "replay determinism",
        [
          Alcotest.test_case "same seed => byte-identical trace, jobs 1 vs 4"
            `Quick test_replay_bit_identity;
        ] );
      ( "schedule generator properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_generate_valid;
            prop_no_event_predates_failure;
            prop_partitions_heal;
            prop_generate_pure;
            prop_shrink_valid;
            prop_shrink_shrinks;
          ] );
      ( "campaign",
        [
          Alcotest.test_case "small campaign all green, jobs-invariant" `Quick
            test_campaign_green;
          Alcotest.test_case "seeded violation minimized to <= 3 events" `Quick
            test_minimizer_self_test;
        ] );
      ( "trace file robustness",
        [
          Alcotest.test_case "read_file: empty/truncated/garbage are clean errors"
            `Quick test_read_file_errors;
        ] );
    ]
