(* Tests for the experiment layer: shape predicates, figure containers,
   the memoizing sweep cache, and verdict plumbing. *)

module Figure = Bgp_experiments.Figure
module Shape = Bgp_experiments.Shape
module Sweep = Bgp_experiments.Sweep
module Figures = Bgp_experiments.Figures
module Scenarios = Bgp_experiments.Scenarios
module Verdicts = Bgp_experiments.Verdicts
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Degree_dist = Bgp_topology.Degree_dist

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Shape ------------------------------------------------------------------ *)

let v_curve = [ (0.25, 100.0); (0.5, 40.0); (1.25, 20.0); (2.25, 45.0); (4.0, 90.0) ]
let rising = [ (1.0, 10.0); (2.0, 20.0); (3.0, 40.0) ]
let flat = [ (1.0, 10.0); (2.0, 10.0); (3.0, 10.0) ]

let test_argmin () =
  checkf "bottom of the V" 1.25 (Shape.argmin v_curve);
  checkf "monotone argmin" 1.0 (Shape.argmin rising)

let test_value_at () =
  checkf "lookup" 40.0 (Shape.value_at v_curve 0.5);
  checkb "missing x raises" true
    (try
       ignore (Shape.value_at v_curve 9.9);
       false
     with Not_found -> true)

let test_v_shape () =
  checkb "V detected" true (Shape.is_v_shaped v_curve);
  checkb "rising is not a V" false (Shape.is_v_shaped rising);
  checkb "flat is not a V" false (Shape.is_v_shaped flat);
  checkb "too short is not a V" false (Shape.is_v_shaped [ (1.0, 1.0); (2.0, 5.0) ])

let test_increasing () =
  checkb "rising" true (Shape.increasing_in_x rising);
  checkb "flat is not increasing" false (Shape.increasing_in_x flat)

let test_ratio_and_dominates () =
  let a = [ (1.0, 10.0); (2.0, 30.0) ] in
  let b = [ (1.0, 5.0); (2.0, 10.0) ] in
  checkf "ratio at last common x" 3.0 (Shape.ratio_at_last a b);
  checkb "a dominates b" true (Shape.dominates a b);
  checkb "b does not dominate a" false (Shape.dominates b a);
  checkb "a dominates b by 2x" true (Shape.dominates ~at_least:2.0 a b)

(* --- Figure ------------------------------------------------------------------ *)

let fig =
  {
    Figure.id = "figX";
    title = "test";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        { Figure.label = "a"; points = [ { Figure.x = 1.0; y = 2.0; sd = 0.1 } ] };
        { Figure.label = "b"; points = [ { Figure.x = 1.0; y = 3.0; sd = 0.0 } ] };
      ];
    paper_expectation = "n/a";
  }

let test_figure_csv () =
  let csv = Figure.to_csv fig in
  checkb "header" true (String.length csv > 0 && String.sub csv 0 6 = "figure");
  checkb "row for a" true
    (List.exists (fun l -> l = "figX,a,1,2,0.1") (String.split_on_char '\n' csv));
  checkb "row for b" true
    (List.exists (fun l -> l = "figX,b,1,3,0") (String.split_on_char '\n' csv))

let test_figure_series_points () =
  Alcotest.check
    Alcotest.(list (pair (float 1e-9) (float 1e-9)))
    "points" [ (1.0, 2.0) ] (Figure.series_points fig "a");
  checkb "unknown raises" true
    (try
       ignore (Figure.series_points fig "zzz");
       false
     with Not_found -> true)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_figure_pp_renders () =
  let s = Fmt.str "%a" Figure.pp fig in
  checkb "mentions id" true (contains s "figX");
  checkb "mentions series" true (contains s "a" && contains s "b")

(* --- Sweep cache ---------------------------------------------------------------- *)

let tiny_scenario seed =
  Runner.scenario
    ~net:(Network.config_default Bgp_proto.Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 15 })

let test_sweep_cache_hits () =
  Sweep.clear_cache ();
  let r1 = Sweep.results (tiny_scenario 1) ~trials:2 in
  let size_after_first = Sweep.cache_size () in
  let r2 = Sweep.results (tiny_scenario 1) ~trials:2 in
  checkb "same object from cache" true (r1 == r2);
  checki "no new entry" size_after_first (Sweep.cache_size ());
  (* Different trials or seed = different key. *)
  ignore (Sweep.results (tiny_scenario 1) ~trials:1);
  ignore (Sweep.results (tiny_scenario 2) ~trials:2);
  checki "two new entries" (size_after_first + 2) (Sweep.cache_size ())

let test_sweep_trials_distinct_seeds () =
  Sweep.clear_cache ();
  let results = Sweep.results (tiny_scenario 7) ~trials:3 in
  checki "three runs" 3 (List.length results);
  (* Distinct seeds should give at least two distinct message counts. *)
  let msgs = List.map (fun r -> r.Runner.messages) results in
  checkb "not all identical" true (List.length (List.sort_uniq Int.compare msgs) > 1)

let test_sweep_clear_cache () =
  Sweep.clear_cache ();
  let r1 = Sweep.results (tiny_scenario 1) ~trials:2 in
  checkb "cache populated" true (Sweep.cache_size () > 0);
  Sweep.clear_cache ();
  checki "cache emptied" 0 (Sweep.cache_size ());
  (* Recomputation builds a fresh list with identical (deterministic)
     content. *)
  let r2 = Sweep.results (tiny_scenario 1) ~trials:2 in
  checkb "fresh list after clear" true (not (r1 == r2));
  checkb "identical content" true (r1 = r2);
  checki "one entry again" 1 (Sweep.cache_size ())

let test_sweep_prefetch () =
  Sweep.clear_cache ();
  let a = tiny_scenario 1 and b = tiny_scenario 5 in
  Sweep.prefetch [ (a, 2); (b, 2); (a, 2) ];
  checki "two entries (duplicate spec collapsed)" 2 (Sweep.cache_size ());
  let ra = Sweep.results a ~trials:2 in
  checki "prefetch filled the cache" 2 (Sweep.cache_size ());
  (* The prefetch-computed runs are what a direct call produces. *)
  Sweep.clear_cache ();
  checkb "same as direct computation" true (ra = Sweep.results a ~trials:2)

let test_sweep_mean_sd () =
  Sweep.clear_cache ();
  let results = Sweep.results (tiny_scenario 3) ~trials:3 in
  let metric r = float_of_int r.Runner.messages in
  let values = List.map metric results in
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. (n -. 1.0)
  in
  checkf "mean over trials" mean (Sweep.mean_of metric results);
  checkf "sample sd over trials" (sqrt var) (Sweep.sd_of metric results);
  (* Degenerate case: a single trial has zero spread. *)
  Sweep.clear_cache ();
  let one = Sweep.results (tiny_scenario 3) ~trials:1 in
  checkf "sd of one trial" 0.0 (Sweep.sd_of metric one)

let test_sweep_point_stats () =
  Sweep.clear_cache ();
  let p =
    Sweep.point (tiny_scenario 1) ~trials:3 ~x:42.0
      ~metric:(fun r -> float_of_int r.Runner.messages)
  in
  checkf "x carried through" 42.0 p.Figure.x;
  checkb "positive mean" true (p.Figure.y > 0.0)

(* --- Figures registry -------------------------------------------------------------- *)

let test_registry_complete () =
  checki "13 figures" 13 (List.length Figures.all);
  List.iteri
    (fun i (id, _) -> Alcotest.check Alcotest.string "ordered ids"
        (Printf.sprintf "fig%d" (i + 1)) id)
    Figures.all

let test_by_id_normalization () =
  checkb "fig7" true (Figures.by_id "fig7" <> None);
  checkb "7" true (Figures.by_id "7" <> None);
  checkb "Fig07" true (Figures.by_id "Fig07" <> None);
  checkb "unknown" true (Figures.by_id "fig99" = None)

(* One real (tiny) figure end-to-end: fig12 on a midget grid. *)
let midget_opts =
  {
    Scenarios.n = 20;
    trials = 1;
    seed = 1;
    sizes = [ 0.05; 0.15 ];
    mrais = [ 0.5; 2.25 ];
    realistic_ases = 10;
  }

let test_fig12_end_to_end () =
  Sweep.clear_cache ();
  let f = Figures.fig12 midget_opts in
  checki "two series" 2 (List.length f.Figure.series);
  List.iter
    (fun s ->
      checki (s.Figure.label ^ " has all points") 2 (List.length s.Figure.points);
      List.iter (fun p -> checkb "finite" true (Float.is_finite p.Figure.y)) s.Figure.points)
    f.Figure.series;
  (* Verdict machinery runs (we don't require PASS at this midget scale). *)
  checkb "verdicts computed" true (List.length (Verdicts.check f) > 0)

let test_fig13_end_to_end () =
  Sweep.clear_cache ();
  let f = Figures.fig13 midget_opts in
  checki "five series" 5 (List.length f.Figure.series);
  List.iter
    (fun s -> checki (s.Figure.label ^ " points") 2 (List.length s.Figure.points))
    f.Figure.series

let test_verdicts_unknown_figure () =
  checki "no claims for unknown ids" 0 (List.length (Verdicts.check fig))

let () =
  Alcotest.run "experiments"
    [
      ( "shape",
        [
          Alcotest.test_case "argmin" `Quick test_argmin;
          Alcotest.test_case "value_at" `Quick test_value_at;
          Alcotest.test_case "v-shape" `Quick test_v_shape;
          Alcotest.test_case "increasing" `Quick test_increasing;
          Alcotest.test_case "ratio and dominates" `Quick test_ratio_and_dominates;
        ] );
      ( "figure",
        [
          Alcotest.test_case "csv" `Quick test_figure_csv;
          Alcotest.test_case "series points" `Quick test_figure_series_points;
          Alcotest.test_case "pp renders" `Quick test_figure_pp_renders;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "cache hits" `Quick test_sweep_cache_hits;
          Alcotest.test_case "trials use distinct seeds" `Quick
            test_sweep_trials_distinct_seeds;
          Alcotest.test_case "clear empties and recompute matches" `Quick
            test_sweep_clear_cache;
          Alcotest.test_case "prefetch fills the cache" `Quick test_sweep_prefetch;
          Alcotest.test_case "mean/sd over multi-trial runs" `Quick test_sweep_mean_sd;
          Alcotest.test_case "point stats" `Quick test_sweep_point_stats;
        ] );
      ( "figures",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "id normalization" `Quick test_by_id_normalization;
          Alcotest.test_case "fig12 end-to-end (midget)" `Quick test_fig12_end_to_end;
          Alcotest.test_case "fig13 end-to-end (midget)" `Quick test_fig13_end_to_end;
          Alcotest.test_case "verdicts for unknown" `Quick test_verdicts_unknown_figure;
        ] );
    ]
