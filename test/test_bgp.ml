(* Unit tests for the BGP protocol model: types, RIB/decision process, and
   router behaviour driven through a private scheduler harness. *)

module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Types = Bgp_proto.Types
module Rib = Bgp_proto.Rib
module Config = Bgp_proto.Config
module Router = Bgp_proto.Router
module Mrai = Bgp_core.Mrai_controller

module Path = Bgp_proto.Path

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* One interning table for the whole test binary: the fixtures' routers
   and the test-constructed updates share it, exactly as all routers of
   one simulation run share the network's table. *)
let tbl = Path.create_table ()
let p = Path.of_list tbl
let adv dest hops = Types.Advertise { dest; path = p hops }
let path_t = Alcotest.testable Path.pp Path.equal

(* --- Types ----------------------------------------------------------------- *)

let test_path_helpers () =
  checki "length" 3 (Types.path_length (p [ 1; 2; 3 ]));
  checki "empty length" 0 (Types.path_length Path.empty);
  checkb "contains" true (Types.path_contains (p [ 1; 2; 3 ]) 2);
  checkb "not contains" false (Types.path_contains (p [ 1; 2; 3 ]) 9);
  checki "update dest of advert" 7
    (Types.update_dest (adv 7 [ 1 ]));
  checki "update dest of withdraw" 9 (Types.update_dest (Types.Withdraw 9));
  checkb "withdrawal flag" true (Types.is_withdrawal (Types.Withdraw 1));
  checkb "advert flag" false
    (Types.is_withdrawal (adv 1 []))

(* --- Rib -------------------------------------------------------------------- *)

let test_rib_shortest_path_wins () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 5; 9 ]);
  Rib.set_in rib 9 ~peer:2 ~kind:Types.Ebgp (p [ 2; 9 ]);
  ignore (Rib.decide rib 9);
  Alcotest.check (Alcotest.option path_t) "shorter path selected" (Some (p [ 2; 9 ]))
    (Rib.best_path rib 9)

let test_rib_tiebreak_lowest_peer () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:5 ~kind:Types.Ebgp (p [ 5; 9 ]);
  Rib.set_in rib 9 ~peer:3 ~kind:Types.Ebgp (p [ 3; 9 ]);
  ignore (Rib.decide rib 9);
  (match Rib.best rib 9 with
  | Some (Rib.Learned e) -> checki "lowest peer id wins ties" 3 e.Rib.peer
  | _ -> Alcotest.fail "expected a learned route")

let test_rib_ebgp_beats_ibgp () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:5 ~kind:Types.Ibgp (p [ 9 ]);
  Rib.set_in rib 9 ~peer:7 ~kind:Types.Ebgp (p [ 9 ]);
  ignore (Rib.decide rib 9);
  match Rib.best rib 9 with
  | Some (Rib.Learned e) ->
    checkb "eBGP wins equal-length tie" true (e.Rib.kind = Types.Ebgp)
  | _ -> Alcotest.fail "expected a learned route"

let test_rib_local_beats_learned () =
  let rib = Rib.create ~asn:4 in
  Rib.originate rib 4;
  Rib.set_in rib 4 ~peer:1 ~kind:Types.Ibgp (p []);
  ignore (Rib.decide rib 4);
  checkb "local origination wins" true (Rib.best rib 4 = Some Rib.Local)

let test_rib_withdraw_falls_back () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 9 ]);
  Rib.set_in rib 9 ~peer:2 ~kind:Types.Ebgp (p [ 2; 7; 9 ]);
  ignore (Rib.decide rib 9);
  Rib.withdraw_in rib 9 ~peer:1;
  checkb "decide reports the change" true (Rib.decide rib 9);
  Alcotest.check (Alcotest.option path_t) "backup promoted" (Some (p [ 2; 7; 9 ]))
    (Rib.best_path rib 9)

let test_rib_withdraw_last_route () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 9 ]);
  ignore (Rib.decide rib 9);
  Rib.withdraw_in rib 9 ~peer:1;
  checkb "change reported" true (Rib.decide rib 9);
  checkb "no route left" true (Rib.best rib 9 = None)

let test_rib_decide_change_detection () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 9 ]);
  checkb "first route is a change" true (Rib.decide rib 9);
  checkb "idempotent decide" false (Rib.decide rib 9);
  (* Same path length via a lower-id peer: it wins the tiebreak, and since
     the path itself differs the change is export-relevant. *)
  Rib.set_in rib 9 ~peer:0 ~kind:Types.Ebgp (p [ 4; 9 ]);
  checkb "better tiebreak with different path is a change" true (Rib.decide rib 9)

let test_rib_loop_rejected () =
  let rib = Rib.create ~asn:3 in
  Alcotest.check_raises "own AS in path"
    (Invalid_argument "Rib.set_in: path contains our own AS (loop check is the caller's job)")
    (fun () -> Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 3; 9 ]))

let test_rib_drop_peer () =
  let rib = Rib.create ~asn:0 in
  Rib.set_in rib 8 ~peer:1 ~kind:Types.Ebgp (p [ 1; 8 ]);
  Rib.set_in rib 9 ~peer:1 ~kind:Types.Ebgp (p [ 1; 9 ]);
  Rib.set_in rib 9 ~peer:2 ~kind:Types.Ebgp (p [ 2; 9 ]);
  List.iter (fun d -> ignore (Rib.decide rib d)) [ 8; 9 ];
  let affected = List.sort Int.compare (Rib.drop_peer rib ~peer:1) in
  Alcotest.check Alcotest.(list int) "affected dests" [ 8; 9 ] affected;
  ignore (Rib.decide rib 8);
  ignore (Rib.decide rib 9);
  checkb "dest 8 gone" true (Rib.best rib 8 = None);
  Alcotest.check (Alcotest.option path_t) "dest 9 falls back" (Some (p [ 2; 9 ]))
    (Rib.best_path rib 9)

let test_rib_rank_order () =
  let local = Rib.rank Rib.Local in
  let learned ?rel ?(kind = Types.Ebgp) path = Rib.Learned { peer = 1; kind; path; rel } in
  let ebgp = Rib.rank (learned (p [ 9 ])) in
  let ibgp = Rib.rank (learned ~kind:Types.Ibgp (p [ 9 ])) in
  let longer = Rib.rank (learned (p [ 2; 9 ])) in
  checkb "local < ebgp" true (local < ebgp);
  checkb "ebgp < ibgp at same length" true (ebgp < ibgp);
  checkb "shorter < longer" true (ebgp < longer);
  checkb "longer ebgp > shorter ibgp" true (longer > ibgp);
  (* Gao-Rexford preference class outranks path length. *)
  let customer_long = Rib.rank (learned ~rel:Types.Customer (p [ 2; 3; 4; 9 ])) in
  let provider_short = Rib.rank (learned ~rel:Types.Provider (p [ 9 ])) in
  let peer_short = Rib.rank (learned ~rel:Types.Peer_link (p [ 9 ])) in
  checkb "customer beats shorter provider route" true (customer_long < provider_short);
  checkb "customer beats shorter peer route" true (customer_long < peer_short);
  checkb "peer beats provider" true (peer_short < provider_short)

let prop_rib_best_is_minimal =
  let entry_gen =
    QCheck.Gen.(
      map3
        (fun peer kind path -> (peer, kind, path))
        (1 -- 20)
        (map (fun b -> if b then Types.Ebgp else Types.Ibgp) bool)
        (map2
           (fun len start -> List.init len (fun i -> 100 + ((start + i) mod 50)))
           (1 -- 6) (0 -- 49)))
  in
  QCheck.Test.make ~name:"decision picks the minimum-ranked entry" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 10) entry_gen))
    (fun entries ->
      let rib = Rib.create ~asn:0 in
      (* Last write per peer wins, mirroring Adj-RIB-In semantics. *)
      let by_peer = Hashtbl.create 8 in
      List.iter
        (fun (peer, kind, path) ->
          Rib.set_in rib 9 ~peer ~kind (p path);
          Hashtbl.replace by_peer peer (kind, p path))
        entries;
      ignore (Rib.decide rib 9);
      match Rib.best rib 9 with
      | Some (Rib.Learned e) ->
        Hashtbl.fold
          (fun peer (kind, path) ok ->
            ok
            && Rib.rank (Rib.Learned { peer; kind; path; rel = None })
               >= Rib.rank (Rib.Learned e))
          by_peer true
      | _ -> false)

(* The packed int key must induce exactly the ordering of the reference
   tuple rank, for every preference class / length / kind / peer mix. *)
let prop_packed_rank_isomorphic =
  let best_gen =
    QCheck.Gen.(
      frequency
        [
          (1, return Rib.Local);
          ( 9,
            map3
              (fun peer (kind, rel) hops ->
                Rib.Learned { Rib.peer; kind; path = p hops; rel })
              (0 -- 40)
              (pair
                 (map (fun b -> if b then Types.Ebgp else Types.Ibgp) bool)
                 (oneofl
                    [ None; Some Types.Customer; Some Types.Peer_link; Some Types.Provider ]))
              (list_size (0 -- 8) (100 -- 140)) );
        ])
  in
  QCheck.Test.make ~name:"packed rank ordering = tuple rank ordering" ~count:2000
    (QCheck.make QCheck.Gen.(pair best_gen best_gen))
    (fun (a, b) ->
      Stdlib.compare (Rib.rank a) (Rib.rank b)
      = Int.compare (Rib.packed_rank a) (Rib.packed_rank b))

(* --- Router harness ---------------------------------------------------------- *)

(* A small fixture: one router under test with scripted peers.  We capture
   everything the router sends. *)
type fixture = {
  sched : Sched.t;
  router : Router.t;
  sent : (int * Types.update) list ref;  (* (dst, update) in send order *)
}

let make_fixture ?(config = Config.default) ?(asn = 0) ~peers () =
  let sched = Sched.create () in
  let sent = ref [] in
  let cb =
    {
      Router.send = (fun ~src:_ ~dst update -> sent := (dst, update) :: !sent);
      activity = (fun ~time:_ -> ());
    }
  in
  let router =
    Router.create ~sched ~rng:(Rng.create 1) ~paths:tbl ~config ~id:0 ~asn
      ~degree:(List.length peers)
      cb
  in
  List.iter
    (fun (peer, peer_as, kind) -> Router.add_peer router ~peer ~peer_as ~kind ())
    peers;
  { sched; router; sent }

let sent_in_order fx = List.rev !(fx.sent)

let no_jitter = { Config.default with Config.mrai_jitter = false }

let test_router_originates () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  let adverts = sent_in_order fx in
  checki "advertised to both peers" 2 (List.length adverts);
  List.iter
    (fun (_, u) ->
      match u with
      | Types.Advertise { dest = 0; path } when Path.hops path = [ 0 ] -> ()
      | u -> Alcotest.failf "unexpected update %a" Types.pp_update u)
    adverts

let test_router_forwards_best () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  (* Peer 1 advertises dest 9. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  (* Must be re-advertised only to peer 2 (peer 1's AS is in the path). *)
  (match sent_in_order fx with
  | [ (2, Types.Advertise { dest = 9; path }) ] when Path.hops path = [ 0; 1; 9 ] -> ()
  | l -> Alcotest.failf "unexpected sends (%d)" (List.length l));
  Alcotest.check (Alcotest.option path_t) "installed" (Some (p [ 1; 9 ]))
    (Router.best_path_to fx.router 9)

let test_router_receiver_loop_check () =
  let fx = make_fixture ~config:no_jitter ~asn:0 ~peers:[ (1, 1, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  (* A path containing our own AS must be discarded. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 0; 9 ]);
  Sched.run fx.sched;
  checkb "looped path not installed" true (Router.best_path_to fx.router 9 = None)

let test_router_withdraw_propagates () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  Sched.run fx.sched;
  (match sent_in_order fx with
  | [ (2, Types.Withdraw 9) ] -> ()
  | l -> Alcotest.failf "expected a single withdrawal to peer 2, got %d sends" (List.length l));
  checkb "route gone" true (Router.best_path_to fx.router 9 = None)

let test_router_mrai_coalesces () =
  (* Two updates for the same destination arrive back to back; with the
     MRAI timer running after the first export, only the final state may
     be advertised at expiry. *)
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  checki "first advert out immediately" 1 (List.length !(fx.sent));
  (* A better route arrives while peer 2's timer runs. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  Router.receive fx.router ~src:1 (adv 9 [ 1; 5; 9 ]);
  Sched.run fx.sched;
  let to_peer2 =
    List.filter_map
      (fun (dst, u) -> if dst = 2 && Types.update_dest u = 9 then Some u else None)
      (sent_in_order fx)
  in
  (* First immediate advert, then exactly one coalesced refresh at expiry
     (possibly preceded by an unpaced withdrawal). *)
  let adverts = List.filter (fun u -> not (Types.is_withdrawal u)) to_peer2 in
  checki "adverts coalesced by the MRAI" 2 (List.length adverts);
  match List.rev adverts with
  | Types.Advertise { path; _ } :: _ when Path.hops path = [ 0; 1; 5; 9 ] -> ()
  | _ -> Alcotest.fail "final advert must carry the final path"

let test_router_mrai_timer_spacing () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  (* Route flaps from peer 1, 0.1 s apart; exports to peer 2 must be
     spaced by >= MRAI (30 s). *)
  let times = ref [] in
  let record () =
    List.iter
      (fun (dst, u) ->
        if dst = 2 && not (Types.is_withdrawal u) then times := Sched.now fx.sched :: !times)
      !(fx.sent);
    fx.sent := []
  in
  for i = 0 to 5 do
    ignore
      (Sched.schedule fx.sched ~delay:(0.1 *. float_of_int i) (fun () ->
           Router.receive fx.router ~src:1
             (adv 9 (if i mod 2 = 0 then [ 1; 9 ] else [ 1; 5; 9 ]))))
  done;
  let rec pump () = if Sched.step fx.sched then (record (); pump ()) in
  pump ();
  let times = List.sort Float.compare !times in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g -> checkb (Printf.sprintf "gap %.3f >= 30" g) true (g >= 30.0 -. 1e-6))
    (gaps times)

let test_router_peer_down_removes_routes () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  fx.sent := [];
  Router.peer_down fx.router 1;
  Sched.run fx.sched;
  checkb "route removed" true (Router.best_path_to fx.router 9 = None);
  (* The loss must be signalled to the surviving peer, and nothing may be
     sent to the dead one. *)
  checkb "withdrawal to survivor" true
    (List.exists (fun (dst, u) -> dst = 2 && u = Types.Withdraw 9) (sent_in_order fx));
  checkb "nothing to the dead peer" true
    (List.for_all (fun (dst, _) -> dst <> 1) (sent_in_order fx))

let test_router_stale_update_from_dead_peer_ignored () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  (* The update is queued, then the session drops before processing. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Router.peer_down fx.router 1;
  Sched.run fx.sched;
  checkb "stale update discarded" true (Router.best_path_to fx.router 9 = None)

let test_router_fail_goes_silent () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.fail fx.router;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  checkb "failed router is silent" true (!(fx.sent) = []);
  checkb "failed router learns nothing" true (Router.best_path_to fx.router 9 = None);
  checkb "reported failed" true (Router.is_failed fx.router)

let test_router_ibgp_nontransit () =
  (* iBGP-learned routes must not be re-advertised over iBGP, but must be
     exported over eBGP with AS prepend. *)
  let fx =
    make_fixture ~config:no_jitter ~asn:0
      ~peers:[ (1, 0, Types.Ibgp); (2, 0, Types.Ibgp); (3, 3, Types.Ebgp) ] ()
  in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (adv 9 [ 7; 9 ]);
  Sched.run fx.sched;
  let sends = sent_in_order fx in
  checkb "not echoed to iBGP peers" true
    (List.for_all (fun (dst, _) -> dst <> 1 && dst <> 2) sends);
  checkb "exported over eBGP with prepend" true
    (List.exists
       (fun (dst, u) ->
         dst = 3 && u = adv 9 [ 0; 7; 9 ])
       sends)

let test_router_ebgp_learned_goes_to_ibgp () =
  let fx =
    make_fixture ~config:no_jitter ~asn:0
      ~peers:[ (1, 0, Types.Ibgp); (3, 3, Types.Ebgp) ] ()
  in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:3 (adv 9 [ 3; 9 ]);
  Sched.run fx.sched;
  checkb "eBGP-learned goes to iBGP without prepend" true
    (List.exists
       (fun (dst, u) ->
         dst = 1 && u = adv 9 [ 3; 9 ])
       (sent_in_order fx))

let test_router_sender_side_loop_check_off () =
  let config = { no_jitter with Config.sender_side_loop_check = false } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  (* Without the check the route is advertised back to peer 1 even though
     peer 1 will drop it. *)
  checkb "echoed back when check disabled" true
    (List.exists (fun (dst, _) -> dst = 1) (sent_in_order fx))

let test_router_mrai_on_withdrawals () =
  let config = { no_jitter with Config.mrai_on_withdrawals = true } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  (* Drain only a short window so peer 2's 30 s MRAI timer is still
     running when the withdrawal arrives. *)
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  (* Pump only a little simulated time: no withdrawal may leave yet. *)
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "withdrawal paced by MRAI" true
    (not (List.exists (fun (_, u) -> Types.is_withdrawal u) (sent_in_order fx)));
  Sched.run fx.sched;
  checkb "withdrawal eventually sent" true
    (List.exists (fun (dst, u) -> dst = 2 && Types.is_withdrawal u) (sent_in_order fx))

let test_router_per_dest_mrai () =
  (* Per-destination timers: a change to another destination is not
     blocked by the first destination's running timer. *)
  let config = { no_jitter with Config.mrai_mode = Config.Per_dest } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  fx.sent := [];
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  Router.receive fx.router ~src:1 (adv 8 [ 1; 8 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  let adverts_to_2 =
    List.filter (fun (dst, u) -> dst = 2 && not (Types.is_withdrawal u)) (sent_in_order fx)
  in
  checki "both destinations exported promptly" 2 (List.length adverts_to_2)

let test_router_cancel_on_improvement () =
  (* A better route must bypass the running MRAI timer; a worse one must
     still wait. *)
  let config = { no_jitter with Config.mrai_bypass = Config.Cancel_on_improvement } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 5; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  fx.sent := [];
  (* Improvement: shorter path arrives while peer 2's timer runs. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "improvement bypasses the timer" true
    (List.exists
       (fun (dst, u) -> dst = 2 && u = adv 9 [ 0; 1; 9 ])
       (sent_in_order fx));
  fx.sent := [];
  (* Degradation: longer path must wait for expiry. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 5; 6; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "degradation is still paced" true
    (not (List.exists (fun (dst, _) -> dst = 2) (sent_in_order fx)));
  Sched.run fx.sched;
  checkb "degradation goes out at expiry" true
    (List.exists
       (fun (dst, u) ->
         dst = 2 && u = adv 9 [ 0; 1; 5; 6; 9 ])
       (sent_in_order fx))

let test_router_flap_threshold () =
  (* Below the threshold, changes go out immediately even though the timer
     runs; at the threshold, pacing kicks in. *)
  let config = { no_jitter with Config.mrai_bypass = Config.Flap_threshold 2 } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  fx.sent := [];
  (* Change 1 while the timer runs: flap count 1 < 2 -> immediate. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 5; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "first flap bypasses the MRAI" true
    (List.exists (fun (dst, _) -> dst = 2) (sent_in_order fx));
  fx.sent := [];
  (* Change 2: flap count reaches the threshold -> paced. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 6; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "second flap is paced" true
    (not (List.exists (fun (dst, _) -> dst = 2) (sent_in_order fx)));
  Sched.run fx.sched;
  checkb "paced update flushes at expiry" true
    (List.exists (fun (dst, _) -> dst = 2) (sent_in_order fx))

let test_router_damping_suppresses_and_reuses () =
  let damping =
    Some
      {
        Bgp_core.Damping.withdraw_penalty = 1.0;
        update_penalty = 0.5;
        half_life = 10.0;
        cut_threshold = 2.0;
        reuse_threshold = 0.75;
        max_suppress = 300.0;
      }
  in
  let config = { no_jitter with Config.damping } in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  (* Flap dest 9 hard: advertise / withdraw / advertise / withdraw /
     advertise — the final advertisement arrives suppressed. *)
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run ~until:(Sched.now fx.sched +. 1.0) fx.sched;
  checkb "route suppressed despite advertisement" true
    (Router.best_path_to fx.router 9 = None);
  checkb "suppression counted" true
    ((Router.metrics fx.router).Router.damping_suppressions >= 1);
  (* Let the penalty decay: the parked route must come back by itself. *)
  Sched.run fx.sched;
  Alcotest.check (Alcotest.option path_t) "route reinstated at reuse time"
    (Some (p [ 1; 9 ]))
    (Router.best_path_to fx.router 9)

let test_router_damping_clean_routes_unaffected () =
  let config =
    { no_jitter with Config.damping = Some Bgp_core.Damping.sim_config }
  in
  let fx = make_fixture ~config ~peers:[ (1, 1, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Sched.run fx.sched;
  Alcotest.check (Alcotest.option path_t) "single advertisement installs normally"
    (Some (p [ 1; 9 ]))
    (Router.best_path_to fx.router 9)

let test_router_metrics () =
  let fx = make_fixture ~config:no_jitter ~peers:[ (1, 1, Types.Ebgp); (2, 2, Types.Ebgp) ] () in
  Router.start fx.router;
  Sched.run fx.sched;
  Router.receive fx.router ~src:1 (adv 9 [ 1; 9 ]);
  Router.receive fx.router ~src:1 (Types.Withdraw 9);
  Sched.run fx.sched;
  let m = Router.metrics fx.router in
  checkb "processed counted" true (m.Router.msgs_processed >= 2);
  checkb "adverts counted" true (m.Router.adverts_sent >= 3);
  checkb "withdrawal counted" true (m.Router.withdrawals_sent >= 1)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "bgp"
    [
      ("types", [ Alcotest.test_case "path helpers" `Quick test_path_helpers ]);
      ( "rib",
        [
          Alcotest.test_case "shortest path wins" `Quick test_rib_shortest_path_wins;
          Alcotest.test_case "tiebreak lowest peer" `Quick test_rib_tiebreak_lowest_peer;
          Alcotest.test_case "eBGP beats iBGP" `Quick test_rib_ebgp_beats_ibgp;
          Alcotest.test_case "local beats learned" `Quick test_rib_local_beats_learned;
          Alcotest.test_case "withdraw falls back" `Quick test_rib_withdraw_falls_back;
          Alcotest.test_case "withdraw last route" `Quick test_rib_withdraw_last_route;
          Alcotest.test_case "change detection" `Quick test_rib_decide_change_detection;
          Alcotest.test_case "loop rejected" `Quick test_rib_loop_rejected;
          Alcotest.test_case "drop peer" `Quick test_rib_drop_peer;
          Alcotest.test_case "rank order" `Quick test_rib_rank_order;
          qc prop_rib_best_is_minimal;
          qc prop_packed_rank_isomorphic;
        ] );
      ( "router",
        [
          Alcotest.test_case "originates" `Quick test_router_originates;
          Alcotest.test_case "forwards best" `Quick test_router_forwards_best;
          Alcotest.test_case "receiver loop check" `Quick test_router_receiver_loop_check;
          Alcotest.test_case "withdraw propagates" `Quick test_router_withdraw_propagates;
          Alcotest.test_case "MRAI coalesces" `Quick test_router_mrai_coalesces;
          Alcotest.test_case "MRAI spacing" `Quick test_router_mrai_timer_spacing;
          Alcotest.test_case "peer down removes routes" `Quick
            test_router_peer_down_removes_routes;
          Alcotest.test_case "stale update from dead peer" `Quick
            test_router_stale_update_from_dead_peer_ignored;
          Alcotest.test_case "fail goes silent" `Quick test_router_fail_goes_silent;
          Alcotest.test_case "iBGP non-transit" `Quick test_router_ibgp_nontransit;
          Alcotest.test_case "eBGP-learned to iBGP" `Quick
            test_router_ebgp_learned_goes_to_ibgp;
          Alcotest.test_case "sender-side check off" `Quick
            test_router_sender_side_loop_check_off;
          Alcotest.test_case "MRAI on withdrawals" `Quick test_router_mrai_on_withdrawals;
          Alcotest.test_case "per-dest MRAI" `Quick test_router_per_dest_mrai;
          Alcotest.test_case "cancel-on-improvement bypass" `Quick
            test_router_cancel_on_improvement;
          Alcotest.test_case "flap-threshold bypass" `Quick test_router_flap_threshold;
          Alcotest.test_case "damping suppress + reuse" `Quick
            test_router_damping_suppresses_and_reuses;
          Alcotest.test_case "damping leaves clean routes" `Quick
            test_router_damping_clean_routes_unaffected;
          Alcotest.test_case "metrics" `Quick test_router_metrics;
        ] );
    ]
