(* The churn workload engine's contract.

   Five properties anchor the sustained-load layer: (1) a churn trial is
   a pure function of its seed — same seed, identical steady-state stats
   whatever the job count, and the sharded engine's measurements are
   invariant across shard counts 1/2/4; (2) the schedule generator only
   emits well-formed schedules (sorted onsets, origin routers of the
   right AS, strict withdraw/announce alternation ending all-announced)
   and its shrinker preserves well-formedness, for arbitrary seeds and
   all three workload shapes; (3) the multi-prefix plan round-trips —
   [origin_as] / [dests_of_as] / [num_dests] agree, and destination
   subsampling restricts the active set without breaking convergence;
   (4) the prefix-sum Erdos-Gallai test agrees with the naive O(n^2)
   reference on arbitrary sequences; (5) the bgp-churn/1 artifact
   round-trips through its hand-rolled JSON and [bgpsim serve] folds it
   into the workload gauges. *)

module Pool = Bgp_engine.Pool
module Rng = Bgp_engine.Rng
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Churn = Bgp_netsim.Churn
module Delay_hist = Bgp_netsim.Delay_hist
module Churn_report = Bgp_experiments.Churn_report
module Serve = Bgp_experiments.Serve
module Config = Bgp_proto.Config
module Degree_dist = Bgp_topology.Degree_dist
module Topology = Bgp_topology.Topology

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

(* The one scenario family everywhere below: flat 70-30 on 24 routers,
   no failure (pure churn), analytic warm-up — small enough for dozens
   of trials, big enough that schedules spread across many origins. *)
let base_scenario ?sharding seed =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.0) ~seed ~warmup:Runner.Analytic ?sharding
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let storm = Churn.Flap_storm { prefixes = 20; flaps = 2; hold = 1.0; spread = 5.0 }

(* Mirror of [bgpsim churn]'s per-trial derivation: plan and schedule are
   pure functions of the trial seed, independent of jobs and shards. *)
let churn_scenario ?sharding ~seed workload =
  let base = base_scenario ?sharding seed in
  let topo = Runner.topology_of base in
  let rng = Rng.create (seed lxor 0x6368726e) in
  let rng_plan = Rng.split rng in
  let rng_churn = Rng.split rng in
  let n_ases = topo.Topology.n_ases in
  let counts = Churn.prefix_counts ~rng:rng_plan ~n_ases ~mean:3.0 ~max_prefixes:64 in
  let bgp = Config.with_prefix_plan counts base.Runner.net.Network.bgp in
  let net = { base.Runner.net with Network.bgp } in
  let schedule = Churn.generate ~rng:rng_churn ~config:bgp ~topo workload in
  { base with Runner.net; churn = Some schedule; churn_window = 0.5 }

let churn_stats (r : Runner.result) =
  match r.Runner.churn with
  | Some s -> s
  | None -> Alcotest.fail "churn run produced no churn stats"

(* Everything the steady-state monitor measures, as one comparable
   string ([%.17g] floats round-trip; the histogram via its JSON). *)
let fingerprint (s : Churn.stats) =
  Printf.sprintf "%d|%.17g|%.17g|%d|%.17g|%.17g|%d|%d|%d|%d|%.17g|%.17g|%.17g|%s"
    s.Churn.ops s.Churn.workload_horizon s.Churn.span s.Churn.updates_processed
    s.Churn.sustained_rate s.Churn.peak_window_rate s.Churn.windows
    s.Churn.queue_high_water s.Churn.disturbed s.Churn.unconverged s.Churn.p50
    s.Churn.p95 s.Churn.p99
    (Delay_hist.to_json s.Churn.tails)

(* --- (1) determinism battery ------------------------------------------ *)

let test_jobs_invariance () =
  let scenarios = List.init 3 (fun i -> churn_scenario ~seed:(21 + i) storm) in
  let r1 = Pool.map ~jobs:1 Runner.run scenarios in
  let r4 = Pool.map ~jobs:4 Runner.run scenarios in
  List.iteri
    (fun i (a, b) ->
      let sa = churn_stats a and sb = churn_stats b in
      checkb (Printf.sprintf "trial %d converged" i) true a.Runner.converged;
      checki (Printf.sprintf "trial %d unconverged prefixes" i) 0 sa.Churn.unconverged;
      checkb (Printf.sprintf "trial %d did work" i) true (sa.Churn.ops > 0);
      checks
        (Printf.sprintf "trial %d stats identical, jobs 1 vs 4" i)
        (fingerprint sa) (fingerprint sb))
    (List.combine r1 r4)

let test_shard_invariance () =
  let run shards =
    churn_stats (Runner.run (churn_scenario ~sharding:shards ~seed:9 storm))
  in
  let s1 = run 1 and s2 = run 2 and s4 = run 4 in
  checkb "sharded run did work" true (s1.Churn.ops > 0);
  checki "sharded run fully converged" 0 s1.Churn.unconverged;
  checks "stats identical, shards 1 vs 2" (fingerprint s1) (fingerprint s2);
  checks "stats identical, shards 1 vs 4" (fingerprint s1) (fingerprint s4)

let test_sequential_repeatable () =
  let run () = churn_stats (Runner.run (churn_scenario ~seed:17 storm)) in
  checks "same seed, same stats (sequential)" (fingerprint (run ()))
    (fingerprint (run ()))

(* --- (2) generator and shrinker well-formedness ----------------------- *)

(* Schedules below are generated against one fixed (config, topo) pair;
   only the schedule RNG varies with the QCheck seed. *)
let prop_base = base_scenario 11
let prop_topo = Runner.topology_of prop_base
let prop_config =
  let counts =
    Churn.prefix_counts ~rng:(Rng.create 11) ~n_ases:prop_topo.Topology.n_ases
      ~mean:3.0 ~max_prefixes:64
  in
  Config.with_prefix_plan counts prop_base.Runner.net.Network.bgp

let workload_of_seed seed =
  match seed mod 3 with
  | 0 -> Churn.Poisson { rate = 30.0; duration = 4.0; prefixes = 12 }
  | 1 -> Churn.Flap_storm { prefixes = 12; flaps = 2; hold = 0.5; spread = 2.0 }
  | _ -> Churn.Staged_failover { stages = 3; gap = 2.0; prefixes = 12 }

let schedule_of_seed seed =
  Churn.generate ~rng:(Rng.create seed) ~config:prop_config ~topo:prop_topo
    (workload_of_seed seed)

let pp_schedule sched =
  String.concat "; " (List.map (Fmt.to_to_string Churn.pp_event) sched)

let arb_seed = QCheck.int_range 1 100_000

let prop_generate_valid =
  QCheck.Test.make ~count:150 ~name:"generated schedules validate" arb_seed
    (fun seed ->
      let sched = schedule_of_seed seed in
      match
        Churn.validate ~config:prop_config ~topo:prop_topo
          ~horizon:(Churn.horizon sched) sched
      with
      | Ok () -> sched <> []
      | Error m -> QCheck.Test.fail_reportf "seed %d: %s: %s" seed m (pp_schedule sched))

let prop_generate_pure =
  QCheck.Test.make ~count:50 ~name:"same seed, same schedule" arb_seed
    (fun seed -> schedule_of_seed seed = schedule_of_seed seed)

let prop_ends_announced =
  (* the alternation invariant validate enforces, checked directly: the
     last op on every (router, dest) re-announces *)
  QCheck.Test.make ~count:150 ~name:"every touched prefix ends announced" arb_seed
    (fun seed ->
      let last = Hashtbl.create 64 in
      List.iter
        (fun e -> Hashtbl.replace last (e.Churn.router, e.Churn.dest) e.Churn.op)
        (schedule_of_seed seed);
      Hashtbl.fold (fun _ op acc -> acc && op = Churn.Announce) last true)

let prop_shrink_valid =
  QCheck.Test.make ~count:80 ~name:"every shrink of a valid schedule is valid"
    arb_seed
    (fun seed ->
      let sched = schedule_of_seed seed in
      List.for_all
        (fun cand ->
          match
            Churn.validate ~config:prop_config ~topo:prop_topo
              ~horizon:(Churn.horizon sched) cand
          with
          | Ok () -> true
          | Error m ->
            QCheck.Test.fail_reportf "seed %d: shrink invalid (%s): %s" seed m
              (pp_schedule cand))
        (Churn.shrink sched))

let prop_shrink_shrinks =
  QCheck.Test.make ~count:80 ~name:"shrink candidates never grow" arb_seed
    (fun seed ->
      let sched = schedule_of_seed seed in
      List.for_all
        (fun cand ->
          List.length cand <= List.length sched
          && Churn.horizon cand <= Churn.horizon sched)
        (Churn.shrink sched))

(* --- (3) multi-prefix plan and destination subsampling ---------------- *)

let test_prefix_plan_roundtrip () =
  let counts = [| 3; 1; 5; 2 |] in
  let cfg = Config.with_prefix_plan counts Config.default in
  let n_ases = Array.length counts in
  checki "universe size" 11 (Config.num_dests cfg ~n_ases);
  let seen = Array.make 11 false in
  Array.iteri
    (fun asn c ->
      let dests = Config.dests_of_as cfg ~asn in
      checki (Printf.sprintf "AS %d prefix count" asn) c (List.length dests);
      List.iter
        (fun d ->
          checki (Printf.sprintf "dest %d origin" d) asn (Config.origin_as cfg ~dest:d);
          checkb (Printf.sprintf "dest %d unique" d) false seen.(d);
          seen.(d) <- true)
        dests)
    counts;
  checkb "plan covers the whole universe" true (Array.for_all Fun.id seen);
  (* the default plan is one prefix per AS *)
  checki "default universe = AS count" 7 (Config.num_dests Config.default ~n_ases:7);
  checki "default origin is identity" 4 (Config.origin_as Config.default ~dest:4)

let test_dest_sample_active_set () =
  let cfg = Config.with_dest_sample [| 2; 5 |] Config.default in
  let active = ref [] in
  Config.iter_active_dests cfg ~n_ases:8 (fun d -> active := d :: !active);
  checkb "only sampled dests active" true
    (List.sort compare !active = [ 2; 5 ]
    && Config.dest_active cfg ~dest:2
    && Config.dest_active cfg ~dest:5
    && not (Config.dest_active cfg ~dest:3))

let test_dest_sample_run () =
  (* A sampled one-shot run converges, measures fewer messages than the
     full-universe run, and replays identically for its seed. *)
  let scen k =
    Runner.scenario
      ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
      ~failure:(Runner.Fraction 0.15) ~seed:7 ?dest_sample:k
      (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })
  in
  let full = Runner.run (scen None) in
  let sampled = Runner.run (scen (Some 6)) in
  let sampled' = Runner.run (scen (Some 6)) in
  checkb "full run converged" true full.Runner.converged;
  checkb "sampled run converged" true sampled.Runner.converged;
  checkb "sampling shrinks the workload" true
    (sampled.Runner.messages < full.Runner.messages);
  checki "sampled run replays identically" sampled.Runner.messages
    sampled'.Runner.messages

(* --- (4) prefix-sum Erdos-Gallai vs the naive reference --------------- *)

let naive_is_graphical degrees =
  let d = Array.copy degrees in
  Array.sort (fun a b -> Int.compare b a) d;
  let n = Array.length d in
  let sum = Array.fold_left ( + ) 0 d in
  if sum mod 2 = 1 then false
  else begin
    let ok = ref true in
    let prefix = ref 0 in
    for k = 1 to n do
      prefix := !prefix + d.(k - 1);
      let rest = ref 0 in
      for i = k to n - 1 do
        rest := !rest + Stdlib.min d.(i) k
      done;
      if !prefix > (k * (k - 1)) + !rest then ok := false
    done;
    !ok
  end

let arb_degrees =
  QCheck.make
    ~print:(fun a ->
      "[" ^ String.concat ";" (List.map string_of_int (Array.to_list a)) ^ "]")
    QCheck.Gen.(
      sized_size (int_range 2 30) (fun n ->
          map Array.of_list (list_size (return n) (int_range 0 n))))

let prop_graphical_matches_naive =
  QCheck.Test.make ~count:500 ~name:"prefix-sum Erdos-Gallai == naive O(n^2)"
    arb_degrees
    (fun d -> Degree_dist.is_graphical d = naive_is_graphical d)

let test_graphical_pins () =
  checkb "K4 degrees" true (Degree_dist.is_graphical [| 3; 3; 3; 3 |]);
  checkb "star K1,3" true (Degree_dist.is_graphical [| 3; 1; 1; 1 |]);
  checkb "odd sum" false (Degree_dist.is_graphical [| 2; 2; 1 |]);
  checkb "degree beyond n-1" false (Degree_dist.is_graphical [| 5; 1; 1; 1 |]);
  checkb "empty sequence" true (Degree_dist.is_graphical [||])

(* --- (5) artifact round-trip and serve folding ------------------------ *)

let small_report () =
  let r = Runner.run (churn_scenario ~seed:31 storm) in
  let s = churn_stats r in
  let report =
    Churn_report.create ~workload:"flap_storm" ~window:0.5 ~prefixes:20
      ~universe:60 ~sampled_fraction:1.0 ~jobs:1 ~shards:1
  in
  Churn_report.add report ~seed:31 ~converged:r.Runner.converged s;
  report

let test_report_roundtrip () =
  let report = small_report () in
  let dir = temp_dir "bgpsim_churn_report" in
  let path = Filename.concat dir "storm.churn.json" in
  Churn_report.write report path;
  checkb "path recognised" true (Churn_report.is_churn_path path);
  checkb "attr sidecars not mistaken for churn" false
    (Churn_report.is_churn_path "t1.attr.json");
  let s = Churn_report.summary report in
  match Churn_report.read path with
  | Error m -> Alcotest.failf "written report must read back: %s" m
  | Ok s' ->
    checks "workload" s.Churn_report.workload s'.Churn_report.workload;
    checki "trials" s.Churn_report.trials s'.Churn_report.trials;
    checki "ops" s.Churn_report.ops s'.Churn_report.ops;
    checki "queue high water" s.Churn_report.queue_high_water
      s'.Churn_report.queue_high_water;
    checki "unconverged" s.Churn_report.unconverged s'.Churn_report.unconverged;
    checkb "rates round-trip" true
      (s.Churn_report.sustained_rate = s'.Churn_report.sustained_rate
      && s.Churn_report.peak_window_rate = s'.Churn_report.peak_window_rate
      && s.Churn_report.p50 = s'.Churn_report.p50
      && s.Churn_report.p95 = s'.Churn_report.p95
      && s.Churn_report.p99 = s'.Churn_report.p99);
    (* schema gate: anything else is a clean Error *)
    let bogus = Filename.concat dir "bogus.churn.json" in
    let oc = open_out bogus in
    output_string oc "{\"schema\":\"bgp-attr-merge/1\"}";
    close_out oc;
    (match Churn_report.read bogus with
    | Error m -> checkb "error names the schema" true (contains m "schema")
    | Ok _ -> Alcotest.fail "wrong schema must be Error")

let test_serve_folds_churn () =
  let report = small_report () in
  let dir = temp_dir "bgpsim_churn_serve" in
  Churn_report.write report (Filename.concat dir "storm.churn.json");
  let t = Serve.create ~dir () in
  ignore (Serve.scan t);
  let status = Serve.handle t "status" in
  checkb "status names the workload" true (contains status "\"workload\":\"flap_storm\"");
  checkb "status counts the campaign" true (contains status "\"churn_campaigns\":1");
  let metrics = Serve.handle t "metrics" in
  checkb "campaign gauge" true (contains metrics "bgp_churn_campaigns 1");
  checkb "throughput gauge with campaign label" true
    (contains metrics "bgp_churn_sustained_updates_per_second{campaign=\"storm.churn.json\"}");
  checkb "queue gauge" true (contains metrics "bgp_churn_queue_high_water");
  checkb "settle-tail gauge" true (contains metrics "bgp_churn_settle_p99_seconds");
  (* a rescan folds nothing new *)
  checki "rescan is idempotent" 0 (Serve.scan t);
  let status' = Serve.handle t "status" in
  checkb "still one campaign" true (contains status' "\"churn_campaigns\":1")

let () =
  Alcotest.run "churn"
    [
      ( "determinism battery",
        [
          Alcotest.test_case "same seed => same stats, jobs 1 vs 4" `Quick
            test_jobs_invariance;
          Alcotest.test_case "sharded stats invariant across shards 1/2/4" `Quick
            test_shard_invariance;
          Alcotest.test_case "sequential run repeatable" `Quick
            test_sequential_repeatable;
        ] );
      ( "schedule generator properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_generate_valid;
            prop_generate_pure;
            prop_ends_announced;
            prop_shrink_valid;
            prop_shrink_shrinks;
          ] );
      ( "multi-prefix plan",
        [
          Alcotest.test_case "plan round-trips origin_as/dests_of_as" `Quick
            test_prefix_plan_roundtrip;
          Alcotest.test_case "dest sample restricts the active set" `Quick
            test_dest_sample_active_set;
          Alcotest.test_case "sampled run converges and replays" `Quick
            test_dest_sample_run;
        ] );
      ( "graphicality",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_graphical_matches_naive ]
        @ [ Alcotest.test_case "pinned sequences" `Quick test_graphical_pins ] );
      ( "artifact and serve",
        [
          Alcotest.test_case "bgp-churn/1 round-trips" `Quick test_report_roundtrip;
          Alcotest.test_case "serve folds churn artifacts into gauges" `Quick
            test_serve_folds_churn;
        ] );
    ]
