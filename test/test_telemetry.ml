(* Telemetry layer: registry semantics, probe determinism, the
   no-perturbation guarantee (telemetry off/on changes no routing
   field), exporter round-trips, and the bench-report JSON. *)

module Rng = Bgp_engine.Rng
module Pool = Bgp_engine.Pool
module Graph = Bgp_topology.Graph
module Topology = Bgp_topology.Topology
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Network = Bgp_netsim.Network
module Runner = Bgp_netsim.Runner
module Telemetry = Bgp_netsim.Telemetry
module Bench_report = Bgp_experiments.Bench_report
module Profile = Bgp_engine.Profile

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let fixed_topo n edges =
  let g = Graph.create n in
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  Topology.of_graph (Rng.create 99) g

let scenario_of ?(telemetry = None) ?(scheme = Mrai.Static 1.25) ?(failure = Runner.Fraction 0.1)
    ?sharding ?(seed = 7) topo =
  let config = Config.(with_mrai scheme default) in
  let net = { (Network.config_default config) with Network.telemetry } in
  Runner.scenario ~net ~failure ~seed ?sharding topo

let flat n = Runner.Flat { spec = Degree_dist.skewed_70_30; n }
let tele_05 = Some (Telemetry.config ~probe_interval:0.5 ())

let counter report name =
  match
    List.find_opt (fun (n, _, _) -> n = name) report.Telemetry.counters
  with
  | Some (_, _, v) -> v
  | None -> Alcotest.failf "counter %s missing from report" name

(* --- Config and registry -------------------------------------------------- *)

let test_config_validation () =
  let c = Telemetry.config () in
  checkf "default interval" 0.5 c.Telemetry.probe_interval;
  checkb "default: no warmup probes" false c.Telemetry.probe_warmup;
  checki "default tick cap" 4096 c.Telemetry.max_ticks;
  Alcotest.check_raises "zero interval rejected"
    (Invalid_argument "Telemetry.config: probe_interval must be > 0") (fun () ->
      ignore (Telemetry.config ~probe_interval:0.0 ()));
  Alcotest.check_raises "zero cap rejected"
    (Invalid_argument "Telemetry.config: max_ticks must be > 0") (fun () ->
      ignore (Telemetry.config ~max_ticks:0 ()))

let test_registry () =
  let t = Telemetry.create (Telemetry.config ()) in
  let hits = ref 0 in
  Telemetry.register t ~name:"b.count" ~kind:Telemetry.Counter (fun () ->
      incr hits;
      42.0);
  Telemetry.register t ~name:"a.gauge" ~kind:Telemetry.Gauge (fun () -> 7.5);
  checki "getters are lazy: no reads yet" 0 !hits;
  (match Telemetry.counters t with
  | [ ("a.gauge", Telemetry.Gauge, g); ("b.count", Telemetry.Counter, c) ] ->
    checkf "gauge value" 7.5 g;
    checkf "counter value" 42.0 c
  | l -> Alcotest.failf "unexpected snapshot (%d entries, or unsorted)" (List.length l));
  checki "snapshot read each getter once" 1 !hits;
  checkb "counter_value hit" true (Telemetry.counter_value t "b.count" = Some 42.0);
  checkb "counter_value miss" true (Telemetry.counter_value t "nope" = None);
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Telemetry.register: duplicate metric \"b.count\"") (fun () ->
      Telemetry.register t ~name:"b.count" ~kind:Telemetry.Counter (fun () -> 0.0))

let test_tick_cap () =
  let t = Telemetry.create (Telemetry.config ~max_ticks:3 ()) in
  for i = 1 to 5 do
    Telemetry.record_tick t ~time:(float_of_int i) [||]
  done;
  checki "capped" 3 (Telemetry.ticks t);
  checki "excess counted" 2 (Telemetry.dropped_ticks t);
  let r = Telemetry.report t in
  checki "report sees cap" 3 r.Telemetry.probes;
  checki "report sees drops" 2 r.Telemetry.dropped

(* --- Counters vs Runner.result totals ------------------------------------- *)

let test_counters_match_result () =
  let r = Runner.run (scenario_of ~telemetry:tele_05 (flat 40)) in
  checkb "converged" true r.Runner.converged;
  let report =
    match r.Runner.report with
    | Some report -> report
    | None -> Alcotest.fail "telemetry enabled but no report"
  in
  (* The registry counters are cumulative over both phases; the result
     splits warm-up from post-failure. *)
  checkf "messages" (float_of_int (r.Runner.messages + r.Runner.warmup_messages))
    (counter report "net.messages_sent");
  checkf "eliminated" (float_of_int r.Runner.eliminated) (counter report "queue.eliminated");
  checkf "max queue depth" (float_of_int r.Runner.max_queue)
    (counter report "queue.max_depth");
  checkf "mrai transitions" (float_of_int r.Runner.mrai_transitions)
    (counter report "mrai.transitions");
  checkb "events counter sane" true (counter report "sched.events" > 0.0);
  checkb "session downs recorded" true (counter report "net.session_downs" > 0.0);
  checkb "probes recorded" true (report.Telemetry.probes > 0);
  (* Every tick carries one row per surviving router: a 10% failure on 40
     routers leaves 36 survivors. *)
  checki "one row per survivor per tick" (report.Telemetry.probes * 36)
    (Array.length report.Telemetry.samples)

(* --- Determinism across job counts ---------------------------------------- *)

let test_probes_deterministic_across_jobs () =
  let scenarios =
    List.init 4 (fun i -> scenario_of ~telemetry:tele_05 ~seed:(11 + i) (flat 30))
  in
  let seq = Pool.map ~jobs:1 Runner.run scenarios in
  let par = Pool.map ~jobs:4 Runner.run scenarios in
  checkb "results (reports included) identical for jobs=1 and jobs=4" true (seq = par);
  List.iter
    (fun r ->
      match r.Runner.report with
      | Some rep -> checkb "probes present" true (rep.Telemetry.probes > 0)
      | None -> Alcotest.fail "missing report")
    seq

(* --- Invariance across shard counts ---------------------------------------- *)

(* Routing-relevant counters only: the scheduler and path-interning
   counters (sched/path prefixes) legitimately differ across shard
   counts (per-shard schedulers, per-shard hashcons tables), as does
   the memory snapshot's per-shard breakdown. *)
let routing_counters (rep : Telemetry.report) =
  let prefixes = [ "net."; "router."; "queue."; "mrai."; "damping."; "attr." ] in
  List.filter
    (fun (n, _, _) -> List.exists (fun p -> String.starts_with ~prefix:p n) prefixes)
    rep.Telemetry.counters

let routing_view (rep : Telemetry.report) =
  ( (rep.Telemetry.probes, rep.Telemetry.dropped, rep.Telemetry.t_fail),
    (rep.Telemetry.progress, rep.Telemetry.samples, routing_counters rep) )

(* Base is [--shards 1]: the sharded engine stops probing at its
   quiescence barrier, so its final probe tick can differ from the
   sequential engine's (the same acknowledged boundary difference as the
   executed-event count); within the sharded engine every k must agree
   exactly. *)
let test_report_invariant_across_shards () =
  let run sharding =
    let r = Runner.run (scenario_of ~telemetry:tele_05 ~sharding (flat 30)) in
    checkb "converged" true r.Runner.converged;
    Option.get r.Runner.report
  in
  let base = run 1 in
  let base_mem = Option.get base.Telemetry.memory in
  List.iter
    (fun k ->
      let rep = run k in
      checkb
        (Printf.sprintf
           "probes/progress/samples/routing counters identical at --shards %d" k)
        true
        (routing_view base = routing_view rep);
      let mem = Option.get rep.Telemetry.memory in
      checki (Printf.sprintf "k=%d: one memory entry per shard" k) k
        (List.length mem.Telemetry.per_shard);
      checki (Printf.sprintf "k=%d: every router owned by exactly one shard" k) 30
        (List.fold_left
           (fun acc (s : Telemetry.shard_memory) -> acc + s.Telemetry.routers)
           0 mem.Telemetry.per_shard);
      (* Final RIB contents are bit-identical for every shard count, so
         the word-model totals must agree exactly. *)
      checki (Printf.sprintf "k=%d: RIB bytes invariant" k)
        base_mem.Telemetry.rib_bytes_total mem.Telemetry.rib_bytes_total)
    [ 1; 2; 4 ]

let test_memory_snapshot_sharded () =
  let r = Runner.run (scenario_of ~telemetry:tele_05 ~sharding:4 (flat 40)) in
  let rep = Option.get r.Runner.report in
  let mem = Option.get rep.Telemetry.memory in
  checki "four shards" 4 (List.length mem.Telemetry.per_shard);
  List.iter
    (fun (s : Telemetry.shard_memory) ->
      checkb (Printf.sprintf "shard %d has routers" s.Telemetry.shard) true
        (s.Telemetry.routers > 0);
      checkb (Printf.sprintf "shard %d has RIB state" s.Telemetry.shard) true
        (s.Telemetry.rib_entries > 0 && s.Telemetry.rib_bytes > 0);
      checkb (Printf.sprintf "shard %d interned paths" s.Telemetry.shard) true
        (s.Telemetry.path_nodes > 0 && s.Telemetry.path_bytes > 0);
      checkb (Printf.sprintf "shard %d scheduler high-water sane" s.Telemetry.shard)
        true
        (s.Telemetry.sched_max_live > 0
        && s.Telemetry.sched_max_live <= s.Telemetry.sched_slab_cap))
    mem.Telemetry.per_shard;
  checkb "hashcons sharing >= 1" true (mem.Telemetry.path_sharing >= 1.0);
  (* The memory snapshot rides in report_json (additively; the schema is
     unchanged). *)
  let json = Bench_report.of_string (Telemetry.report_json rep) in
  (match Option.bind (Bench_report.member "memory" json)
           (Bench_report.member "rib_bytes_total") with
  | Some v ->
    checkb "rib_bytes_total in json" true
      (Bench_report.to_float v = Some (float_of_int mem.Telemetry.rib_bytes_total))
  | None -> Alcotest.fail "no memory object in report json")

(* --- No perturbation when disabled (and when enabled) ---------------------- *)

let routing_fields (r : Runner.result) =
  ( ( r.Runner.converged,
      r.Runner.warmup_delay,
      r.Runner.convergence_delay,
      r.Runner.messages,
      r.Runner.adverts,
      r.Runner.withdrawals ),
    ( r.Runner.warmup_messages,
      r.Runner.eliminated,
      r.Runner.max_queue,
      r.Runner.mrai_transitions,
      r.Runner.survivors_connected,
      r.Runner.issues ) )

let check_no_perturbation name scenario_off scenario_on =
  let off = Runner.run scenario_off in
  let on = Runner.run scenario_on in
  checkb (name ^ ": telemetry off has no report") true (off.Runner.report = None);
  checkb (name ^ ": telemetry on has a report") true (on.Runner.report <> None);
  checkb
    (name ^ ": every routing-relevant field identical with telemetry on")
    true
    (routing_fields off = routing_fields on);
  (* Probe events execute on the same scheduler, so only [events] may
     legitimately grow. *)
  checkb (name ^ ": probe events visible in the event count") true
    (on.Runner.events > off.Runner.events)

let test_disabled_changes_nothing_flat () =
  check_no_perturbation "flat"
    (scenario_of (flat 40))
    (scenario_of ~telemetry:tele_05 (flat 40))

let test_disabled_changes_nothing_realistic () =
  let topo = Runner.Realistic (As_topology.default ~n_ases:8) in
  check_no_perturbation "realistic"
    (scenario_of ~failure:(Runner.Fraction 0.2) topo)
    (scenario_of ~failure:(Runner.Fraction 0.2) ~telemetry:tele_05 topo)

let test_disabled_changes_nothing_tdown () =
  (* Classic Tdown: one link drops, both routers stay up. *)
  let topo = Runner.Fixed (fixed_topo 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]) in
  check_no_perturbation "Tdown"
    (scenario_of ~failure:(Runner.Links [ (0, 1) ]) topo)
    (scenario_of ~failure:(Runner.Links [ (0, 1) ]) ~telemetry:tele_05 topo)

(* --- Probe series content -------------------------------------------------- *)

let dynamic_report () =
  let scheme = Mrai.paper_dynamic () in
  let r = Runner.run (scenario_of ~telemetry:tele_05 ~scheme (flat 60)) in
  match r.Runner.report with
  | Some report -> (r, report)
  | None -> Alcotest.fail "no report"

let test_progress_series () =
  let r, report = dynamic_report () in
  checkb "converged" true r.Runner.converged;
  let progress = report.Telemetry.progress in
  checkb "progress non-empty" true (Array.length progress > 0);
  let monotone = ref true in
  Array.iteri
    (fun i (p : Telemetry.series_point) ->
      if i > 0 then begin
        if p.Telemetry.value < progress.(i - 1).Telemetry.value then monotone := false
      end)
    progress;
  checkb "progress nondecreasing" true !monotone;
  checkf "progress ends at 1" 1.0 progress.(Array.length progress - 1).Telemetry.value;
  (match report.Telemetry.t_fail with
  | Some tf ->
    checkb "first probe at the failure instant" true
      (Float.abs (progress.(0).Telemetry.time -. tf) < 1e-9)
  | None -> Alcotest.fail "t_fail not stamped")

(* Acceptance check: on a dynamic-MRAI 10% failure, the queue-work series
   must peak while the controller is ramped up — overload is exactly what
   drives the level-up transitions (Section 4.3). *)
let test_queue_work_peak_coincides_with_levelup () =
  let _, report = dynamic_report () in
  checkb "levels moved at all" true (counter report "mrai.transitions" > 0.0);
  (* Total unfinished work per tick, and max MRAI level per tick. *)
  let by_tick = Hashtbl.create 64 in
  Array.iter
    (fun (s : Telemetry.sample) ->
      let w, l =
        Option.value (Hashtbl.find_opt by_tick s.Telemetry.time) ~default:(0.0, 0)
      in
      Hashtbl.replace by_tick s.Telemetry.time
        ( w +. s.Telemetry.row.Telemetry.unfinished_work,
          Stdlib.max l s.Telemetry.row.Telemetry.mrai_level ))
    report.Telemetry.samples;
  let peak_t, peak_w, _ =
    Hashtbl.fold
      (fun t (w, l) ((_, best_w, _) as best) -> if w > best_w then (t, w, l) else best)
      by_tick (0.0, neg_infinity, 0)
  in
  checkb "some queue work was observed" true (peak_w > 0.0);
  (* At (or within one probe of) the peak, at least one router must be
     ramped above the base MRAI level. *)
  let level_near_peak =
    Hashtbl.fold
      (fun t (_, l) acc -> if Float.abs (t -. peak_t) <= 1.0 then Stdlib.max acc l else acc)
      by_tick 0
  in
  checkb "MRAI level is up at the queue-work peak" true (level_near_peak >= 1)

let test_warmup_probes () =
  let telemetry = Some (Telemetry.config ~probe_interval:0.5 ~probe_warmup:true ()) in
  let r = Runner.run (scenario_of ~telemetry (flat 30)) in
  let report = Option.get r.Runner.report in
  match report.Telemetry.t_fail with
  | Some tf ->
    let pre_fail =
      Array.exists (fun (s : Telemetry.sample) -> s.Telemetry.time < tf)
        report.Telemetry.samples
    in
    checkb "warmup-phase samples present" true pre_fail
  | None -> Alcotest.fail "t_fail not stamped"

(* --- Exporters -------------------------------------------------------------- *)

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let test_exporters_and_report_json () =
  let _, report = dynamic_report () in
  let rows = Array.length report.Telemetry.samples in
  checki "series csv: header + one line per sample" (rows + 1)
    (count_lines (Telemetry.series_csv report));
  checki "series jsonl: one object per sample" rows
    (count_lines (Telemetry.series_jsonl report));
  checki "progress csv: header + one line per tick"
    (Array.length report.Telemetry.progress + 1)
    (count_lines (Telemetry.progress_csv report));
  checki "counters jsonl: one object per metric"
    (List.length report.Telemetry.counters)
    (count_lines (Telemetry.counters_jsonl report));
  (* Every JSONL line and the report document must parse. *)
  String.split_on_char '\n' (Telemetry.series_jsonl report)
  |> List.iter (fun line -> if line <> "" then ignore (Bench_report.of_string line));
  let json = Bench_report.of_string (Telemetry.report_json report) in
  checkb "schema" true
    (Option.bind (Bench_report.member "schema" json) Bench_report.to_str
    = Some "bgp-telemetry/1");
  checkb "probe count in json" true
    (Option.bind (Bench_report.member "probes" json) Bench_report.to_float
    = Some (float_of_int report.Telemetry.probes));
  (match Option.bind (Bench_report.member "progress" json) Bench_report.to_list with
  | Some points -> checki "progress points" (Array.length report.Telemetry.progress)
                     (List.length points)
  | None -> Alcotest.fail "no progress array in report.json")

let test_export_writes_files () =
  let _, report = dynamic_report () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bgp_telemetry_test" in
  let paths = Telemetry.export ~dir ~prefix:"t1_" report in
  checki "six artifacts" 6 (List.length paths);
  List.iter
    (fun p ->
      checkb (p ^ " exists") true (Sys.file_exists p);
      let ic = open_in p in
      let len = in_channel_length ic in
      close_in ic;
      checkb (p ^ " non-empty") true (len > 0))
    paths

(* --- Bench report JSON ------------------------------------------------------ *)

let test_bench_report_roundtrip () =
  let t = Bench_report.create ~trials:3 ~n:120 ~jobs:4 in
  let pool =
    { Pool.busy = 10.0; wall = 2.5; jobs_run = 24; batches = 3; queue_wait = 0.125 }
  in
  let per_domain =
    [
      { Pool.domain = 0; jobs = 12; busy = 5.0; wait = 0.05 };
      { Pool.domain = 1; jobs = 12; busy = 5.0; wait = 0.075 };
    ]
  in
  Bench_report.add t
    (Bench_report.entry ~id:"fig1" ~title:"Convergence \"delay\"" ~kind:"figure"
       ~wall:2.75 ~pool ~per_domain ~verdicts_pass:3 ~verdicts_total:3);
  let json = Bench_report.of_string (Bench_report.to_json t) in
  checkb "schema" true
    (Option.bind (Bench_report.member "schema" json) Bench_report.to_str
    = Some "bgp-bench/1");
  checkb "jobs" true
    (Option.bind (Bench_report.member "jobs" json) Bench_report.to_float = Some 4.0);
  let figures =
    match Option.bind (Bench_report.member "figures" json) Bench_report.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no figures array"
  in
  checki "one entry" 1 (List.length figures);
  let fig = List.hd figures in
  checkb "id" true
    (Option.bind (Bench_report.member "id" fig) Bench_report.to_str = Some "fig1");
  checkb "escaped title survives the round-trip" true
    (Option.bind (Bench_report.member "title" fig) Bench_report.to_str
    = Some "Convergence \"delay\"");
  (match Option.bind (Bench_report.member "speedup" fig) Bench_report.to_float with
  | Some s -> checkf "speedup = busy/wall" 4.0 s
  | None -> Alcotest.fail "no speedup");
  (match Option.bind (Bench_report.member "last_batch_domains" fig) Bench_report.to_list with
  | Some domains -> checki "per-domain entries" 2 (List.length domains)
  | None -> Alcotest.fail "no per-domain stats");
  Alcotest.check_raises "trailing garbage rejected"
    (Bench_report.Parse_error "trailing garbage at 3") (fun () ->
      ignore (Bench_report.of_string "{} x"))

(* --- Profiler report (bgp-prof/1) ------------------------------------------- *)

let test_prof_json_roundtrip () =
  Profile.start ();
  let t0 = Profile.now_ns () in
  Profile.record Profile.Compute ~shard:2 t0;
  Profile.record Profile.Build t0;
  Profile.accum Profile.Mailbox_post (Profile.now_ns ());
  Profile.counter_add "test.adds" 3;
  Profile.counter_max "test.high_water" 7;
  Profile.counter_max "test.high_water" 5;
  match Profile.stop () with
  | None -> Alcotest.fail "armed profiler returned no report"
  | Some r ->
    checkb "wall nonnegative" true (r.Profile.wall_ns >= 0L);
    checkb "stop disarms" true (Profile.stop () = None);
    let json = Bench_report.of_string (Profile.to_json r) in
    let str k j = Option.bind (Bench_report.member k j) Bench_report.to_str in
    let num k j = Option.bind (Bench_report.member k j) Bench_report.to_float in
    checkb "schema" true (str "schema" json = Some "bgp-prof/1");
    checkb "wall_s present" true (num "wall_s" json <> None);
    let domains =
      match Option.bind (Bench_report.member "domains" json) Bench_report.to_list with
      | Some (_ :: _ as l) -> l
      | _ -> Alcotest.fail "no domains array"
    in
    let spans =
      List.concat_map
        (fun d ->
          Option.value ~default:[]
            (Option.bind (Bench_report.member "spans" d) Bench_report.to_list))
        domains
    in
    checkb "compute span at shard 2 survives the round-trip" true
      (List.exists
         (fun s -> str "span" s = Some "compute" && num "shard" s = Some 2.0)
         spans);
    checkb "build span at shard -1" true
      (List.exists
         (fun s -> str "span" s = Some "build" && num "shard" s = Some (-1.0))
         spans);
    (match
       Option.bind (Bench_report.member "counters" json)
         (Bench_report.member "test.high_water")
     with
    | Some v -> checkb "counter_max keeps the max" true (Bench_report.to_float v = Some 7.0)
    | None -> Alcotest.fail "counters object missing test.high_water");
    checkb "summarize labels the spans" true
      (List.exists
         (fun (l, _, n) -> l = "domain0/shard2/compute" && n = 1)
         (Profile.summarize r));
    (* Every flamegraph line is "stack<space>integer". *)
    String.split_on_char '\n' (Profile.to_flamegraph r)
    |> List.iter (fun line ->
           if line <> "" then
             match String.rindex_opt line ' ' with
             | None -> Alcotest.failf "malformed flamegraph line %S" line
             | Some i ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               if int_of_string_opt v = None then
                 Alcotest.failf "flamegraph value not an integer in %S" line)

(* --- Pool runtime metrics --------------------------------------------------- *)

let test_pool_domain_stats () =
  Pool.reset_stats ();
  checkb "no batch yet" true (Pool.last_batch () = []);
  let _ = Pool.map ~jobs:2 (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
  let batch = Pool.last_batch () in
  checkb "per-domain entries present" true (batch <> []);
  checki "all jobs accounted for" 5
    (List.fold_left (fun acc (d : Pool.domain_stat) -> acc + d.Pool.jobs) 0 batch);
  List.iter
    (fun (d : Pool.domain_stat) ->
      checkb "busy nonnegative" true (d.Pool.busy >= 0.0);
      checkb "wait nonnegative" true (d.Pool.wait >= 0.0))
    batch;
  let stats = Pool.stats () in
  checkb "cumulative queue wait nonnegative" true (stats.Pool.queue_wait >= 0.0);
  checki "batch counted" 1 stats.Pool.batches;
  (* Sequential path records the caller as domain 0. *)
  let _ = Pool.map ~jobs:1 (fun x -> x + 1) [ 1; 2; 3 ] in
  (match Pool.last_batch () with
  | [ d ] ->
    checki "caller is domain 0" 0 d.Pool.domain;
    checki "ran everything" 3 d.Pool.jobs
  | l -> Alcotest.failf "expected one domain stat, got %d" (List.length l));
  Pool.reset_stats ()

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "register and snapshot" `Quick test_registry;
          Alcotest.test_case "tick cap" `Quick test_tick_cap;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "counters match result totals" `Quick
            test_counters_match_result;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_probes_deterministic_across_jobs;
          Alcotest.test_case "invariant across shard counts" `Quick
            test_report_invariant_across_shards;
          Alcotest.test_case "memory snapshot (sharded)" `Quick
            test_memory_snapshot_sharded;
          Alcotest.test_case "off/on: flat unchanged" `Quick
            test_disabled_changes_nothing_flat;
          Alcotest.test_case "off/on: realistic unchanged" `Quick
            test_disabled_changes_nothing_realistic;
          Alcotest.test_case "off/on: Tdown unchanged" `Quick
            test_disabled_changes_nothing_tdown;
        ] );
      ( "series",
        [
          Alcotest.test_case "progress monotone to 1" `Quick test_progress_series;
          Alcotest.test_case "queue-work peak at MRAI level-up" `Quick
            test_queue_work_peak_coincides_with_levelup;
          Alcotest.test_case "warmup probes opt-in" `Quick test_warmup_probes;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv/jsonl shapes + report.json parses" `Quick
            test_exporters_and_report_json;
          Alcotest.test_case "export writes files" `Quick test_export_writes_files;
        ] );
      ( "bench-report",
        [
          Alcotest.test_case "json round-trip" `Quick test_bench_report_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "bgp-prof/1 round-trip" `Quick test_prof_json_roundtrip;
        ] );
      ( "pool",
        [ Alcotest.test_case "per-domain stats" `Quick test_pool_domain_stats ] );
    ]
