(* Unit and property tests for the discrete-event engine. *)

module Rng = Bgp_engine.Rng
module Dist = Bgp_engine.Dist
module Heap = Bgp_engine.Heap
module Sched = Bgp_engine.Scheduler
module Stats = Bgp_engine.Stats

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    checkb "same stream" true (Rng.float a = Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.float a = Rng.float b then incr same
  done;
  checkb "different seeds diverge" true (!same < 5)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniform_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:3.0 ~hi:5.0 in
    checkb "in [3,5)" true (x >= 3.0 && x < 5.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 9 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    checkb "in [0,10)" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  checkb "all values hit" true (Array.for_all Fun.id seen)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* Drawing from b must not change a's future stream. *)
  let a' = Rng.copy a in
  for _ = 1 to 10 do
    ignore (Rng.float b)
  done;
  checkb "split stream is independent" true (Rng.float a = Rng.float a')

let test_rng_mean () =
  let rng = Rng.create 11 in
  let stats = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add stats (Rng.float rng)
  done;
  checkb "mean near 0.5" true (Float.abs (Stats.mean stats -. 0.5) < 0.01)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "a permutation" (Array.init 50 Fun.id) sorted

(* --- Dist --------------------------------------------------------------- *)

let test_dist_uniform_bounds () =
  let rng = Rng.create 1 in
  let d = Dist.Uniform { lo = 0.001; hi = 0.030 } in
  for _ = 1 to 10_000 do
    let x = Dist.sample d rng in
    checkb "in bounds" true (x >= 0.001 && x < 0.030)
  done

let test_dist_means_match_samples () =
  let rng = Rng.create 2 in
  let dists =
    [
      Dist.Constant 4.2;
      Dist.Uniform { lo = 1.0; hi = 3.0 };
      Dist.Exponential { mean = 2.0 };
      Dist.Bounded_pareto { alpha = 1.2; lo = 1.0; hi = 100.0 };
      Dist.Discrete [| (1.0, 5.0); (3.0, 1.0) |];
    ]
  in
  List.iter
    (fun d ->
      let stats = Stats.create ~keep_samples:false () in
      for _ = 1 to 200_000 do
        Stats.add stats (Dist.sample d rng)
      done;
      let analytic = Dist.mean d in
      let measured = Stats.mean stats in
      if Float.abs (measured -. analytic) > 0.05 *. Float.max 1.0 analytic then
        Alcotest.failf "mean mismatch for %a: analytic %g, measured %g" Dist.pp d
          analytic measured)
    dists

let test_dist_pareto_bounds () =
  let rng = Rng.create 3 in
  let d = Dist.Bounded_pareto { alpha = 1.2; lo = 1.0; hi = 100.0 } in
  for _ = 1 to 10_000 do
    let x = Dist.sample d rng in
    checkb "within [lo, hi]" true (x >= 1.0 && x <= 100.0)
  done

let test_dist_discrete_support () =
  let rng = Rng.create 4 in
  let d = Dist.Discrete [| (1.0, 2.0); (1.0, 7.0) |] in
  for _ = 1 to 1000 do
    let x = Dist.sample d rng in
    checkb "on support" true (x = 2.0 || x = 7.0)
  done

(* --- Heap --------------------------------------------------------------- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter (Heap.push h) input;
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "sorted output" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  checkb "is_empty" true (Heap.is_empty h);
  checkb "pop None" true (Heap.pop h = None);
  checkb "peek None" true (Heap.peek h = None);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 5;
  Heap.push h 2;
  Heap.push h 9;
  checkb "peek is min" true (Heap.peek h = Some 2);
  checki "length unchanged" 3 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun input ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) input;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare input)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap peek = min of live elements under interleaving"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := x :: !model;
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some y, l when l <> [] ->
              let min_l = List.fold_left Stdlib.min (List.hd l) l in
              if y = min_l then begin
                (* remove one occurrence *)
                let rec remove = function
                  | [] -> []
                  | z :: rest -> if z = y then rest else z :: remove rest
                in
                model := remove l;
                true
              end
              else false
            | _ -> false)
        ops)

let test_heap_drain_shrinks_and_reuses () =
  (* A full drain walks pop_exn through every shrink step; the order must
     survive the reallocations and the heap must stay usable afterwards. *)
  let h = Heap.create ~cmp:Int.compare in
  for i = 0 to 999 do
    Heap.push h (i * 7 mod 1000)
  done;
  let prev = ref min_int in
  for _ = 1 to 1000 do
    let x = Heap.pop_exn h in
    checkb "nondecreasing across shrinks" true (x >= !prev);
    prev := x
  done;
  checkb "empty after drain" true (Heap.is_empty h);
  Alcotest.check_raises "pop_exn raises when drained"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () -> ignore (Heap.pop_exn h));
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "reusable after drain" [ 1; 2; 3 ] (drain [])

(* --- Scheduler ----------------------------------------------------------- *)

let test_scheduler_order () =
  let s = Sched.create () in
  let log = ref [] in
  ignore (Sched.schedule s ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Sched.schedule s ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sched.schedule s ~delay:2.0 (fun () -> log := 2 :: !log));
  Sched.run s;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3.0 (Sched.now s)

let test_scheduler_tie_break_fifo () =
  let s = Sched.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sched.schedule s ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sched.run s;
  check Alcotest.(list int) "FIFO among ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_scheduler_cancel () =
  let s = Sched.create () in
  let fired = ref false in
  let id = Sched.schedule s ~delay:1.0 (fun () -> fired := true) in
  Sched.cancel s id;
  Sched.run s;
  checkb "cancelled event did not fire" false !fired;
  checki "no pending" 0 (Sched.pending s)

let test_scheduler_cancel_twice_ok () =
  let s = Sched.create () in
  let id = Sched.schedule s ~delay:1.0 (fun () -> ()) in
  Sched.cancel s id;
  Sched.cancel s id;
  Sched.run s;
  checki "empty" 0 (Sched.pending s)

let test_scheduler_nested_schedule () =
  let s = Sched.create () in
  let log = ref [] in
  ignore
    (Sched.schedule s ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Sched.schedule s ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Sched.run s;
  check Alcotest.(list string) "nested order" [ "outer"; "inner" ] (List.rev !log);
  checkf "clock" 1.5 (Sched.now s)

let test_scheduler_until () =
  let s = Sched.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sched.schedule s ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sched.run ~until:5.5 s;
  checki "events up to limit" 5 !count;
  checki "rest pending" 5 (Sched.pending s);
  Sched.run s;
  checki "all eventually" 10 !count

let test_scheduler_past_rejected () =
  let s = Sched.create () in
  ignore (Sched.schedule s ~delay:2.0 (fun () -> ()));
  Sched.run s;
  checkb "schedule_at in past raises" true
    (try
       ignore (Sched.schedule_at s ~time:1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_scheduler_zero_delay () =
  let s = Sched.create () in
  let log = ref [] in
  ignore (Sched.schedule s ~delay:1.0 (fun () ->
      ignore (Sched.schedule s ~delay:0.0 (fun () -> log := "zero" :: !log));
      log := "first" :: !log));
  Sched.run s;
  check Alcotest.(list string) "zero-delay runs after current" [ "first"; "zero" ]
    (List.rev !log)

(* Model check for the slab scheduler: random push/cancel/step sequences
   against a naive sorted-list model.  Exercises slot reuse (cancel frees
   a slot, the next push reclaims it), stale-id cancellation, and the
   (time, seq) tie-break. *)
let prop_scheduler_model =
  QCheck.Test.make ~name:"scheduler matches a sorted-list model (push/cancel/step)"
    ~count:300
    QCheck.(list (pair (int_bound 3) (pair small_nat (float_bound_inclusive 10.0))))
    (fun ops ->
      let s = Sched.create () in
      let fired = ref [] in
      let model = ref [] in
      (* every id ever issued, newest first; cancels target these so both
         live and stale ids get exercised *)
      let issued = ref [] in
      let next_seq = ref 0 in
      let ok = ref true in
      let model_min () =
        match !model with
        | [] -> None
        | hd :: tl ->
          Some
            (List.fold_left
               (fun ((bt, bs, _) as best) ((t, sq, _) as e) ->
                 if t < bt || (t = bt && sq < bs) then e else best)
               hd tl)
      in
      List.iter
        (fun (op, (k, d)) ->
          if !ok then begin
            (match op with
            | 0 | 1 ->
              let seq = !next_seq in
              incr next_seq;
              let id = Sched.schedule s ~delay:d (fun () -> fired := seq :: !fired) in
              model := (Sched.now s +. d, seq, id) :: !model;
              issued := id :: !issued
            | 2 ->
              if !issued <> [] then begin
                let id = List.nth !issued (k mod List.length !issued) in
                Sched.cancel s id;
                model := List.filter (fun (_, _, i) -> i <> id) !model
              end
            | _ -> (
              match model_min () with
              | None -> if Sched.step s then ok := false
              | Some (t, seq, id) ->
                if not (Sched.step s) then ok := false
                else begin
                  (match !fired with
                  | f :: _ when f = seq -> ()
                  | _ -> ok := false);
                  if Sched.now s <> t then ok := false;
                  model := List.filter (fun (_, _, i) -> i <> id) !model
                end));
            if Sched.pending s <> List.length !model then ok := false
          end)
        ops;
      !ok)

let prop_scheduler_executes_in_time_order =
  QCheck.Test.make ~name:"scheduler executes in nondecreasing time order" ~count:100
    QCheck.(list (float_bound_inclusive 100.0))
    (fun delays ->
      let s = Sched.create () in
      let times = ref [] in
      List.iter
        (fun d -> ignore (Sched.schedule s ~delay:d (fun () -> times := Sched.now s :: !times)))
        delays;
      Sched.run s;
      let executed = List.rev !times in
      List.sort Float.compare executed = executed)

(* --- Stats ---------------------------------------------------------------- *)

let test_stats_basic () =
  let t = Stats.create () in
  List.iter (Stats.add t) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.count t);
  checkf "mean" 2.5 (Stats.mean t);
  checkf "min" 1.0 (Stats.min t);
  checkf "max" 4.0 (Stats.max t);
  Alcotest.check (Alcotest.float 1e-6) "variance"
    (5.0 /. 3.0) (Stats.variance t)

let test_stats_percentile () =
  let t = Stats.create () in
  for i = 1 to 100 do
    Stats.add t (float_of_int i)
  done;
  Alcotest.check (Alcotest.float 0.6) "median" 50.5 (Stats.percentile t 0.5);
  checkf "p0" 1.0 (Stats.percentile t 0.0);
  checkf "p100" 100.0 (Stats.percentile t 1.0)

let test_stats_empty () =
  let t = Stats.create () in
  checkf "mean of empty" 0.0 (Stats.mean t);
  checki "count" 0 (Stats.count t)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let t = Stats.create () in
      List.iter (Stats.add t) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean t -. naive) < 1e-6 *. Float.max 1.0 (Float.abs naive))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "mean" `Quick test_rng_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform bounds" `Quick test_dist_uniform_bounds;
          Alcotest.test_case "means match samples" `Quick test_dist_means_match_samples;
          Alcotest.test_case "pareto bounds" `Quick test_dist_pareto_bounds;
          Alcotest.test_case "discrete support" `Quick test_dist_discrete_support;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "drain shrinks and reuses" `Quick
            test_heap_drain_shrinks_and_reuses;
          qc prop_heap_sorts;
          qc prop_heap_interleaved;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "order" `Quick test_scheduler_order;
          Alcotest.test_case "tie-break FIFO" `Quick test_scheduler_tie_break_fifo;
          Alcotest.test_case "cancel" `Quick test_scheduler_cancel;
          Alcotest.test_case "double cancel ok" `Quick test_scheduler_cancel_twice_ok;
          Alcotest.test_case "nested schedule" `Quick test_scheduler_nested_schedule;
          Alcotest.test_case "run until" `Quick test_scheduler_until;
          Alcotest.test_case "past rejected" `Quick test_scheduler_past_rejected;
          Alcotest.test_case "zero delay" `Quick test_scheduler_zero_delay;
          qc prop_scheduler_model;
          qc prop_scheduler_executes_in_time_order;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          qc prop_stats_mean_matches_naive;
        ] );
    ]
