(* Integration tests: whole networks converging over the discrete-event
   kernel, failure injection, invariants, and determinism. *)

module Rng = Bgp_engine.Rng
module Sched = Bgp_engine.Scheduler
module Graph = Bgp_topology.Graph
module Topology = Bgp_topology.Topology
module Degree_dist = Bgp_topology.Degree_dist
module Failure = Bgp_topology.Failure
module As_topology = Bgp_topology.As_topology
module Config = Bgp_proto.Config
module Router = Bgp_proto.Router
module Types = Bgp_proto.Types
module Network = Bgp_netsim.Network
module Runner = Bgp_netsim.Runner
module Validate = Bgp_netsim.Validate
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let path_t = Alcotest.(option (list int))

(* Paths are interned per network, so cross-network comparisons go
   through the raw hop lists. *)
let best_hops router dest =
  Option.map Bgp_proto.Path.hops (Router.best_path_to router dest)

(* Build a fixed topology from an edge list (one router per AS). *)
let fixed_topo n edges =
  let g = Graph.create n in
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  Topology.of_graph (Rng.create 99) g

let run_fixed ?(config = Config.default) ?(failure = Runner.No_failure) ?(seed = 1)
    ?(validate = true) topo =
  Runner.run
    (Runner.scenario
       ~net:(Network.config_default config)
       ~failure ~seed ~validate (Runner.Fixed topo))

(* Convergence on a line: 0-1-2-3.  Endpoints must learn 3-hop paths. *)
let test_line_converges () =
  let topo = fixed_topo 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 5)
      ~config:(Network.config_default Config.default)
      topo
  in
  Network.start_all net;
  Sched.run sched;
  checki "queue drained" 0 (Sched.pending sched);
  Alcotest.check path_t "0 -> 3 via the chain" (Some [ 1; 2; 3 ])
    (best_hops (Network.router net 0) 3);
  Alcotest.check path_t "3 -> 0" (Some [ 2; 1; 0 ])
    (best_hops (Network.router net 3) 0);
  Alcotest.check path_t "1 -> 2 direct" (Some [ 2 ])
    (best_hops (Network.router net 1) 2)

let test_ring_prefers_shorter_arc () =
  (* 6-ring: 0..5; 0 -> 3 has two equal arcs, 0 -> 2 a unique short one. *)
  let topo = fixed_topo 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 5)
      ~config:(Network.config_default Config.default)
      topo
  in
  Network.start_all net;
  Sched.run sched;
  (match Router.best_path_to (Network.router net 0) 2 with
  | Some p -> checki "2-hop path" 2 (Types.path_length p)
  | None -> Alcotest.fail "no route");
  match Router.best_path_to (Network.router net 0) 3 with
  | Some p -> checki "3-hop path either way" 3 (Types.path_length p)
  | None -> Alcotest.fail "no route"

let test_clique_all_direct () =
  let n = 5 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let topo = fixed_topo n !edges in
  let r = run_fixed topo in
  checkb "converged" true r.Runner.converged;
  checkb "no issues" true (r.Runner.issues = [])

(* After a failure the survivors re-converge to survivor-graph shortest
   paths; Validate encodes the full invariant set. *)
let test_failure_invariants_small () =
  (* A 3x3 grid; fail the middle node 4. *)
  let topo =
    fixed_topo 9
      [
        (0, 1); (1, 2); (3, 4); (4, 5); (6, 7); (7, 8);
        (0, 3); (3, 6); (1, 4); (4, 7); (2, 5); (5, 8);
      ]
  in
  let r = run_fixed ~failure:(Runner.Routers [ 4 ]) topo in
  checkb "converged" true r.Runner.converged;
  checkb "invariants hold" true (r.Runner.issues = []);
  checkb "survivors connected" true r.Runner.survivors_connected;
  checkb "messages flowed" true (r.Runner.messages > 0)

let test_partition_withdraws_everything () =
  (* A path 0-1-2: failing the middle partitions the ends. *)
  let topo = fixed_topo 3 [ (0, 1); (1, 2) ] in
  let r = run_fixed ~failure:(Runner.Routers [ 1 ]) topo in
  checkb "converged" true r.Runner.converged;
  checkb "survivors disconnected" false r.Runner.survivors_connected;
  checkb "invariants hold (no stale routes)" true (r.Runner.issues = [])

let test_failed_dest_unreachable () =
  let topo = fixed_topo 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 5)
      ~config:(Network.config_default Config.default)
      topo
  in
  Network.start_all net;
  Sched.run sched;
  let failure = Failure.of_list topo [ 2 ] in
  Network.inject_failure net failure;
  Sched.run sched;
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "router %d dropped the dead destination" r)
        true
        (Router.best_path_to (Network.router net r) 2 = None))
    [ 0; 1; 3 ];
  (* And the ring heals around the hole. *)
  Alcotest.check path_t "1 -> 3 reroutes via 0" (Some [ 0; 3 ])
    (best_hops (Network.router net 1) 3)

let std_scenario ?(config = Config.default) ?(frac = 0.05) ?(seed = 3) ?(n = 50) () =
  Runner.scenario
    ~net:(Network.config_default config)
    ~failure:(Runner.Fraction frac) ~seed ~validate:true
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n })

let test_random_topology_invariants () =
  List.iter
    (fun seed ->
      let r = Runner.run (std_scenario ~seed ()) in
      checkb (Printf.sprintf "seed %d converged" seed) true r.Runner.converged;
      checkb (Printf.sprintf "seed %d invariants" seed) true (r.Runner.issues = []))
    [ 1; 2; 3; 4 ]

let test_determinism () =
  let run () =
    let r = Runner.run (std_scenario ()) in
    (r.Runner.convergence_delay, r.Runner.messages, r.Runner.events, r.Runner.warmup_delay)
  in
  checkb "identical seeds give identical runs" true (run () = run ())

let test_seed_sensitivity () =
  let r1 = Runner.run (std_scenario ~seed:1 ()) in
  let r2 = Runner.run (std_scenario ~seed:2 ()) in
  checkb "different seeds differ" true (r1.Runner.messages <> r2.Runner.messages)

let test_no_failure_no_churn () =
  let r = Runner.run (std_scenario ~frac:0.0 ()) in
  checki "no messages after a non-failure" 0 r.Runner.messages;
  Alcotest.check (Alcotest.float 1e-9) "no delay" 0.0 r.Runner.convergence_delay

let test_batching_reduces_messages_under_overload () =
  let fifo = Config.(default |> with_mrai (Static 0.5)) in
  let batched = Config.(fifo |> with_discipline Iq.Batched) in
  let r_fifo = Runner.run (std_scenario ~config:fifo ~frac:0.15 ~n:60 ()) in
  let r_batch = Runner.run (std_scenario ~config:batched ~frac:0.15 ~n:60 ()) in
  checkb "batching eliminates stale updates" true (r_batch.Runner.eliminated > 0);
  checkb "fifo eliminates nothing" true (r_fifo.Runner.eliminated = 0);
  checkb "batching sends fewer messages" true
    (r_batch.Runner.messages < r_fifo.Runner.messages);
  checkb "batching converges faster" true
    (r_batch.Runner.convergence_delay < r_fifo.Runner.convergence_delay)

let test_dynamic_scheme_reacts () =
  let config = Config.(default |> with_mrai (Mrai.paper_dynamic ())) in
  let r = Runner.run (std_scenario ~config ~frac:0.15 ~n:60 ()) in
  checkb "converged" true r.Runner.converged;
  checkb "levels moved under load" true (r.Runner.mrai_transitions > 0);
  checkb "invariants hold" true (r.Runner.issues = [])

let test_realistic_topology_run () =
  let scenario =
    Runner.scenario
      ~net:(Network.config_default Config.(default |> with_mrai (Static 2.25)))
      ~failure:(Runner.Fraction 0.05) ~seed:2 ~validate:true
      (Runner.Realistic (As_topology.default ~n_ases:30))
  in
  let r = Runner.run scenario in
  checkb "converged" true r.Runner.converged;
  checkb "invariants hold" true (r.Runner.issues = [])

let test_ibgp_mesh_sessions () =
  let rng = Rng.create 8 in
  let topo = As_topology.generate rng (As_topology.default ~n_ases:10) in
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 9)
      ~config:(Network.config_default Config.default)
      topo
  in
  (* Every same-AS router pair has an iBGP session; every inter-AS link an
     eBGP session. *)
  let sessions = Network.sessions net in
  let ibgp_count =
    List.length (List.filter (fun (_, _, k) -> k = Types.Ibgp) sessions)
  in
  let expected_ibgp =
    List.fold_left
      (fun acc a ->
        let s = List.length (Topology.routers_of_as topo a) in
        acc + (s * (s - 1) / 2))
      0
      (List.init topo.Topology.n_ases Fun.id)
  in
  checki "full iBGP mesh" expected_ibgp ibgp_count;
  let ebgp_count =
    List.length (List.filter (fun (_, _, k) -> k = Types.Ebgp) sessions)
  in
  let inter_as_links =
    Graph.fold_edges
      (fun u v acc -> if Topology.is_ebgp topo u v then acc + 1 else acc)
      topo.Topology.graph 0
  in
  checki "one eBGP session per inter-AS link" inter_as_links ebgp_count

let test_warmup_message_bound () =
  (* Sanity: cold-start of an n-node network needs at least one message per
     (router, destination) pair reachable over each session... we only
     assert a loose lower bound: every destination must reach every other
     router at least once. *)
  let r = Runner.run (std_scenario ~frac:0.0 ~n:30 ()) in
  checkb "warmup messages at least n*(n-1)" true (r.Runner.warmup_messages >= 30 * 29)

(* The analytic warm-up must produce exactly the state a simulated
   cold-start converges to: selections, Adj-RIB-Ins and Adj-RIB-Outs. *)
let assert_warmup_equivalence topo =
  let build () =
    let sched = Sched.create () in
    let net =
      Network.build ~sched ~rng:(Rng.create 11)
        ~config:(Network.config_default Config.default)
        topo
    in
    (sched, net)
  in
  let sched_sim, net_sim = build () in
  Network.start_all net_sim;
  Sched.run sched_sim;
  checki "simulated warmup drained" 0 (Sched.pending sched_sim);
  let _, net_ana = build () in
  Bgp_netsim.Warmup.install net_ana;
  let n = Topology.num_routers topo in
  for r = 0 to n - 1 do
    let router_sim = Network.router net_sim r in
    let router_ana = Network.router net_ana r in
    for dest = 0 to topo.Topology.n_ases - 1 do
      let ctx = Printf.sprintf "router %d dest %d" r dest in
      Alcotest.check path_t (ctx ^ ": selection")
        (best_hops router_sim dest)
        (best_hops router_ana dest);
      let entries router =
        List.map
          (fun e ->
            (e.Bgp_proto.Rib.peer, e.Bgp_proto.Rib.kind,
             Bgp_proto.Path.hops e.Bgp_proto.Rib.path))
          (Bgp_proto.Rib.entries_in (Router.rib router) dest)
      in
      checkb (ctx ^ ": adj-rib-in") true (entries router_sim = entries router_ana);
      List.iter
        (fun peer ->
          Alcotest.check path_t
            (Printf.sprintf "%s: adj-rib-out to %d" ctx peer)
            (Option.map Bgp_proto.Path.hops (Router.advertised_to router_sim ~peer dest))
            (Option.map Bgp_proto.Path.hops (Router.advertised_to router_ana ~peer dest)))
        (Router.peer_ids router_sim)
    done
  done

let test_warmup_equivalence_flat () =
  let rng = Rng.create 21 in
  assert_warmup_equivalence (Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:40)

let test_warmup_equivalence_realistic () =
  let rng = Rng.create 22 in
  assert_warmup_equivalence (As_topology.generate rng (As_topology.default ~n_ases:15))

let test_warmup_equivalence_no_sender_check () =
  (* The equivalence must also hold when looped paths travel the wire and
     are dropped at the receiver instead. *)
  let rng = Rng.create 23 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:25 in
  let config = { Config.default with Config.sender_side_loop_check = false } in
  let build () =
    let sched = Sched.create () in
    let net =
      Network.build ~sched ~rng:(Rng.create 11) ~config:(Network.config_default config)
        topo
    in
    (sched, net)
  in
  let sched_sim, net_sim = build () in
  Network.start_all net_sim;
  Sched.run sched_sim;
  let _, net_ana = build () in
  Bgp_netsim.Warmup.install net_ana;
  for r = 0 to 24 do
    for dest = 0 to 24 do
      Alcotest.check path_t
        (Printf.sprintf "router %d dest %d" r dest)
        (best_hops (Network.router net_sim r) dest)
        (best_hops (Network.router net_ana r) dest)
    done
  done

let test_analytic_failure_run () =
  let scenario =
    Runner.scenario
      ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
      ~failure:(Runner.Fraction 0.10) ~seed:5 ~validate:true ~warmup:Runner.Analytic
      (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 50 })
  in
  let r = Runner.run scenario in
  checkb "converged" true r.Runner.converged;
  checkb "invariants hold" true (r.Runner.issues = []);
  Alcotest.check (Alcotest.float 1e-9) "no warm-up cost" 0.0 r.Runner.warmup_delay;
  checki "no warm-up messages" 0 r.Runner.warmup_messages;
  checkb "failure phase ran" true (r.Runner.messages > 0)

let test_detection_delay_config () =
  (* With a large detection delay, re-convergence takes at least that long. *)
  let topo = fixed_topo 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let net_config =
    { (Network.config_default Config.default) with Network.detection_delay = 5.0 }
  in
  let scenario =
    Runner.scenario ~net:net_config ~failure:(Runner.Routers [ 2 ]) ~seed:1
      ~validate:true (Runner.Fixed topo)
  in
  let r = Runner.run scenario in
  checkb "delay includes detection" true (r.Runner.convergence_delay >= 5.0)

(* --- Overload census (the mechanism behind the V-curve, Section 4.1) ------ *)

let overload_census ~mrai ~frac =
  let rng = Rng.create 3 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:120 in
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 4)
      ~config:(Network.config_default Config.(with_mrai (Static mrai) default))
      topo
  in
  Network.start_all net;
  Sched.run sched;
  Network.inject_failure net (Bgp_topology.Failure.contiguous topo ~fraction:frac);
  Sched.run sched;
  (* Overloaded = the backlog could not be cleared within one MRAI window
     at some point (the paper's notion of an overloaded node). *)
  (topo, Network.overloaded_routers net ~threshold:mrai)

let test_overload_hits_high_degree_nodes () =
  (* At MRAI=0.5 with a 10% failure plenty of routers exceed upTh, and a
     high-degree router is more likely to be overloaded than a low-degree
     one — the paper's explanation for why the high-degree nodes govern
     the optimal MRAI. *)
  let topo, overloaded = overload_census ~mrai:0.5 ~frac:0.10 in
  checkb
    (Printf.sprintf "many overloaded routers (%d)" (List.length overloaded))
    true
    (List.length overloaded >= 10);
  let is_high r = Graph.degree topo.Topology.graph r >= 7 in
  let class_rate pred =
    let members = List.filter pred (List.init 120 Fun.id) in
    let hit = List.filter (fun r -> List.mem r overloaded) members in
    float_of_int (List.length hit) /. float_of_int (List.length members)
  in
  let rate_high = class_rate is_high and rate_low = class_rate (fun r -> not (is_high r)) in
  checkb
    (Printf.sprintf "overload rate: %.0f%% of high-degree vs %.0f%% of low-degree"
       (100. *. rate_high) (100. *. rate_low))
    true (rate_high > rate_low)

let test_overload_shrinks_at_high_mrai () =
  (* Raising the MRAI relieves the low-degree nodes first; by MRAI=2.25
     the overloaded set is almost exactly the high-degree class — which is
     why the optimum tracks the high-degree nodes (Section 4.1/4.2). *)
  let topo, at_low = overload_census ~mrai:0.5 ~frac:0.10 in
  let _, at_high = overload_census ~mrai:2.25 ~frac:0.10 in
  checkb
    (Printf.sprintf "overloaded: %d at MRAI=0.5 vs %d at MRAI=2.25"
       (List.length at_low) (List.length at_high))
    true
    (List.length at_high * 2 < List.length at_low);
  let high_share set =
    let high =
      List.filter (fun r -> Graph.degree topo.Topology.graph r >= 7) set
    in
    float_of_int (List.length high) /. float_of_int (Stdlib.max 1 (List.length set))
  in
  checkb
    (Printf.sprintf "at MRAI=2.25 the overloaded set is %.0f%% high-degree"
       (100. *. high_share at_high))
    true
    (high_share at_high >= 0.8)

(* Property: random topologies with random failure sets always converge
   with all invariants intact. *)
let prop_random_failures_keep_invariants =
  QCheck.Test.make ~name:"random failures keep the routing invariants" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 0 8))
    (fun (seed, kills) ->
      let scenario =
        Runner.scenario
          ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
          ~failure:(Runner.Routers (List.init kills (fun i -> (seed + (i * 7)) mod 30)))
          ~seed ~validate:true
          (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 30 })
      in
      let r = Runner.run scenario in
      r.Runner.converged && r.Runner.issues = [])

(* --- Tracing ------------------------------------------------------------- *)

module Trace = Bgp_netsim.Trace

let test_trace_ring_buffer () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t (Trace.Router_failed { id = Trace.fresh_id t; time = float_of_int i; router = i })
  done;
  checki "bounded" 3 (Trace.length t);
  checki "overwrites counted" 2 (Trace.dropped t);
  (match Trace.to_list t with
  | [ a; b; c ] ->
    Alcotest.check
      Alcotest.(list (float 1e-9))
      "oldest first, newest kept" [ 3.0; 4.0; 5.0 ]
      [ Trace.time_of a; Trace.time_of b; Trace.time_of c ]
  | _ -> Alcotest.fail "expected 3 events");
  Trace.clear t;
  checki "cleared" 0 (Trace.length t)

let trace_times t = List.map Trace.time_of (Trace.to_list t)
let fail_at time = Trace.Router_failed { id = 0; time; router = 0 }
let times_t = Alcotest.(list (float 1e-9))

let test_trace_capacity_edges () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()));
  let t = Trace.create ~capacity:4 () in
  checki "empty" 0 (Trace.length t);
  Alcotest.check times_t "empty list" [] (trace_times t);
  (* Exactly at capacity: everything kept, nothing dropped. *)
  for i = 1 to 4 do
    Trace.record t (fail_at (float_of_int i))
  done;
  checki "full" 4 (Trace.length t);
  checki "nothing dropped at exact capacity" 0 (Trace.dropped t);
  Alcotest.check times_t "insertion order" [ 1.0; 2.0; 3.0; 4.0 ] (trace_times t);
  (* One past capacity: the single oldest is overwritten. *)
  Trace.record t (fail_at 5.0);
  checki "still bounded" 4 (Trace.length t);
  checki "one dropped" 1 (Trace.dropped t);
  Alcotest.check times_t "oldest evicted, order kept" [ 2.0; 3.0; 4.0; 5.0 ]
    (trace_times t);
  (* More than a full lap of the ring: ordering must survive wraparound. *)
  for i = 6 to 11 do
    Trace.record t (fail_at (float_of_int i))
  done;
  checki "dropped accumulates" 7 (Trace.dropped t);
  Alcotest.check times_t "newest window after wrap" [ 8.0; 9.0; 10.0; 11.0 ]
    (trace_times t)

let test_trace_between_boundaries () =
  let t = Trace.create ~capacity:8 () in
  List.iter (fun time -> Trace.record t (fail_at time)) [ 1.0; 2.0; 3.0; 4.0 ];
  let times lo hi = List.map Trace.time_of (Trace.between t ~lo ~hi) in
  (* Half-open window: lo inclusive, hi exclusive. *)
  Alcotest.check times_t "lo <= t < hi" [ 2.0; 3.0 ] (times 2.0 4.0);
  Alcotest.check times_t "empty window" [] (times 2.0 2.0);
  Alcotest.check times_t "hi just past last" [ 4.0 ] (times 4.0 4.0000001);
  Alcotest.check times_t "everything" [ 1.0; 2.0; 3.0; 4.0 ] (times 0.0 infinity);
  (* After wraparound the window still reads oldest-first. *)
  let t = Trace.create ~capacity:3 () in
  List.iter (fun time -> Trace.record t (fail_at time)) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.check times_t "window over wrapped ring" [ 3.0; 4.0 ]
    (List.map Trace.time_of (Trace.between t ~lo:3.0 ~hi:5.0))

let test_trace_clear_resets () =
  let t = Trace.create ~capacity:2 () in
  List.iter (fun time -> Trace.record t (fail_at time)) [ 1.0; 2.0; 3.0 ];
  checki "overflowed before clear" 1 (Trace.dropped t);
  Trace.clear t;
  checki "length reset" 0 (Trace.length t);
  checki "dropped reset" 0 (Trace.dropped t);
  Alcotest.check times_t "emptied" [] (trace_times t);
  (* The ring is reusable after clear, with fresh ordering. *)
  List.iter (fun time -> Trace.record t (fail_at time)) [ 7.0; 8.0 ];
  checki "refilled" 2 (Trace.length t);
  checki "no stale drops" 0 (Trace.dropped t);
  Alcotest.check times_t "fresh order" [ 7.0; 8.0 ] (trace_times t)

let test_trace_records_network_events () =
  let topo = fixed_topo 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let trace = Trace.create () in
  let net_config =
    { (Network.config_default Config.default) with Network.trace = Some trace }
  in
  let sched = Sched.create () in
  let net = Network.build ~sched ~rng:(Rng.create 5) ~config:net_config topo in
  Network.start_all net;
  Sched.run sched;
  let sends = Trace.count trace ~pred:(function Trace.Update_sent _ -> true | _ -> false) in
  let recvs =
    Trace.count trace ~pred:(function Trace.Update_delivered _ -> true | _ -> false)
  in
  checki "sends recorded" (Network.messages_sent net) sends;
  checki "all delivered (no failures yet)" sends recvs;
  Network.inject_failure net (Failure.of_list topo [ 2 ]);
  Sched.run sched;
  checki "failure recorded" 1
    (Trace.count trace ~pred:(function Trace.Router_failed _ -> true | _ -> false));
  checki "both neighbours saw the session drop" 2
    (Trace.count trace ~pred:(function Trace.Session_down _ -> true | _ -> false));
  checkb "busiest-router table non-empty" true (Trace.sends_by_router trace <> []);
  (* between: the failure-phase events all carry times after the warmup. *)
  let t_fail =
    List.find_map
      (function Trace.Router_failed { time; _ } -> Some time | _ -> None)
      (Trace.to_list trace)
  in
  match t_fail with
  | Some time ->
    checkb "post-failure window non-empty" true
      (Trace.between trace ~lo:time ~hi:infinity <> [])
  | None -> Alcotest.fail "no failure event"

(* --- Multiple prefixes per AS (Section 5 scaling argument) ----------------- *)

let test_prefixes_per_as_routes () =
  let config = { Config.default with Config.prefixes_per_as = 3 } in
  let rng = Rng.create 4 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:20 in
  let sched = Sched.create () in
  let net = Network.build ~sched ~rng:(Rng.create 5) ~config:(Network.config_default config) topo in
  Network.start_all net;
  Sched.run sched;
  checki "drained" 0 (Sched.pending sched);
  (* Every router must hold a route to every one of the 60 destinations,
     and same-AS prefixes must share their path. *)
  for r = 0 to 19 do
    for dest = 0 to 59 do
      match Router.best_path_to (Network.router net r) dest with
      | Some path ->
        let hops = Bgp_proto.Path.hops path in
        let origin = Config.origin_as config ~dest in
        if r <> origin then
          checki
            (Printf.sprintf "router %d dest %d path ends at its origin" r dest)
            origin
            (List.nth hops (List.length hops - 1))
      | None -> Alcotest.failf "router %d missing dest %d" r dest
    done
  done

let test_prefixes_scale_message_load () =
  let run ppa =
    let config =
      { (Config.with_mrai (Static 1.25) Config.default) with Config.prefixes_per_as = ppa }
    in
    Runner.run
      (Runner.scenario
         ~net:(Network.config_default config)
         ~failure:(Runner.Fraction 0.10) ~seed:2 ~validate:true
         (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 30 }))
  in
  let r1 = run 1 and r3 = run 3 in
  checkb "invariants hold at ppa=3" true (r3.Runner.issues = []);
  let ratio = float_of_int r3.Runner.messages /. float_of_int r1.Runner.messages in
  (* At least linear in the prefix count — in fact superlinear, because the
     extra updates overload routers and trigger extra churn, which is
     exactly the paper's Section 5 argument about the 200k-destination
     Internet. *)
  checkb
    (Printf.sprintf "3x prefixes => >=3x update load (ratio %.2f)" ratio)
    true
    (ratio >= 2.5 && ratio < 10.0)

let test_prefixes_analytic_equivalence () =
  let config = { Config.default with Config.prefixes_per_as = 2 } in
  let rng = Rng.create 31 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:15 in
  let build () =
    let sched = Sched.create () in
    (sched, Network.build ~sched ~rng:(Rng.create 6) ~config:(Network.config_default config) topo)
  in
  let sched_sim, net_sim = build () in
  Network.start_all net_sim;
  Sched.run sched_sim;
  let _, net_ana = build () in
  Bgp_netsim.Warmup.install net_ana;
  for r = 0 to 14 do
    for dest = 0 to 29 do
      Alcotest.check path_t
        (Printf.sprintf "router %d dest %d" r dest)
        (best_hops (Network.router net_sim r) dest)
        (best_hops (Network.router net_ana r) dest)
    done
  done

(* --- Classic single-event experiments (Labovitz et al.) ------------------ *)

let clique n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge g u v
    done
  done;
  Topology.of_graph (Rng.create 9) g

let tdown_clique ~n ~wrate =
  let config =
    {
      (Config.with_mrai (Static 2.0) Config.default) with
      Config.mrai_jitter = false;
      mrai_on_withdrawals = wrate;
    }
  in
  Runner.run
    (Runner.scenario
       ~net:(Network.config_default config)
       ~failure:(Runner.Routers [ n - 1 ])
       ~seed:1
       (Runner.Fixed (clique n)))

let test_labovitz_bound_wrate () =
  (* Labovitz et al. [5]: withdrawing a destination from an n-clique where
     every message is MRAI-paced converges in (n-3) * MRAI at best.  Our
     simulator lands on that bound almost exactly. *)
  List.iter
    (fun n ->
      let r = tdown_clique ~n ~wrate:true in
      let bound = float_of_int (n - 3) *. 2.0 in
      checkb
        (Printf.sprintf "n=%d: %.2f within 0.5 s of (n-3)*MRAI = %g" n
           r.Runner.convergence_delay bound)
        true
        (Float.abs (r.Runner.convergence_delay -. bound) <= 0.5))
    [ 5; 8; 10 ]

let test_tdown_scaling_unpaced () =
  (* With RFC-style unpaced withdrawals, exploration is compressed but the
     delay still grows with the clique size and the message count grows
     superlinearly (path exploration). *)
  let r5 = tdown_clique ~n:5 ~wrate:false in
  let r8 = tdown_clique ~n:8 ~wrate:false in
  let r12 = tdown_clique ~n:12 ~wrate:false in
  checkb "delay grows with n" true
    (r5.Runner.convergence_delay < r8.Runner.convergence_delay
    && r8.Runner.convergence_delay < r12.Runner.convergence_delay);
  checkb "faster than the all-paced model" true
    (r12.Runner.convergence_delay < (tdown_clique ~n:12 ~wrate:true).Runner.convergence_delay);
  let m5 = float_of_int r5.Runner.messages and m12 = float_of_int r12.Runner.messages in
  checkb "messages grow superlinearly" true (m12 /. m5 > 12.0 /. 5.0 *. 2.0)

let test_link_failure_reroutes () =
  (* Ring of 6: failing link (0,1) forces the long way around. *)
  let topo = fixed_topo 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let r =
    Runner.run
      (Runner.scenario
         ~net:(Network.config_default Config.default)
         ~failure:(Runner.Links [ (0, 1) ])
         ~seed:1 (Runner.Fixed topo))
  in
  checkb "converged" true r.Runner.converged;
  checkb "messages flowed" true (r.Runner.messages > 0);
  (* Rebuild to inspect final state (same seed, deterministic). *)
  let sched = Sched.create () in
  let net =
    Network.build ~sched ~rng:(Rng.create 5)
      ~config:(Network.config_default Config.default)
      topo
  in
  Network.start_all net;
  Sched.run sched;
  Network.inject_link_failures net [ (0, 1) ];
  Sched.run sched;
  (match Router.best_path_to (Network.router net 0) 1 with
  | Some p -> checki "0 -> 1 goes the long way" 5 (Types.path_length p)
  | None -> Alcotest.fail "no route after link failure");
  match Router.best_path_to (Network.router net 1) 0 with
  | Some p -> checki "1 -> 0 goes the long way" 5 (Types.path_length p)
  | None -> Alcotest.fail "no route after link failure"

(* --- Gao-Rexford policies ---------------------------------------------- *)

module Relationships = Bgp_netsim.Relationships

let test_relationship_inference () =
  (* A hub of degree 6 with six leaves: the hub must be everyone's
     provider. *)
  let topo = fixed_topo 7 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5); (0, 6) ] in
  let rels = Relationships.infer topo in
  checkb "hub is provider of leaf" true
    (Relationships.relation rels ~from:1 ~toward:0 = Some Bgp_proto.Types.Provider);
  checkb "leaf is customer of hub" true
    (Relationships.relation rels ~from:0 ~toward:1 = Some Bgp_proto.Types.Customer)

let test_relationship_peering () =
  (* Two equal-degree nodes peer. *)
  let topo = fixed_topo 4 [ (0, 1); (0, 2); (1, 3) ] in
  let rels = Relationships.infer topo in
  checkb "equal degrees peer" true
    (Relationships.relation rels ~from:0 ~toward:1 = Some Bgp_proto.Types.Peer_link)

let test_valley_free_predicate () =
  (* 0 and 1 are providers (peers of each other); 2,3 are their
     customers. *)
  let topo = fixed_topo 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3) ] in
  ignore topo;
  (* Build explicit relations through inference on a clearer shape:
     hub 0 (degree 4) provides to 1..4, and 1..4 have degree 1. *)
  let topo = fixed_topo 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let rels = Relationships.infer topo in
  checkb "up then down is valley-free" true
    (Relationships.valley_free rels ~self:1 [ 0; 2 ]);
  checkb "down then up is a valley" false
    (Relationships.valley_free rels ~self:0 [ 1; 0 ])

let test_policied_network_invariants () =
  let scenario =
    Runner.scenario
      ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
      ~failure:(Runner.Fraction 0.10) ~seed:7 ~validate:true ~policies:true
      (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 60 })
  in
  let r = Runner.run scenario in
  checkb "converged" true r.Runner.converged;
  checkb "invariants (incl. valley-free paths) hold" true (r.Runner.issues = [])

let test_policies_restrict_exports () =
  (* With valley-free export, total messages can only go down relative to
     policy-free on the same topology/seed (fewer exports are legal). *)
  let run policies =
    Runner.run
      (Runner.scenario
         ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
         ~failure:(Runner.Fraction 0.10) ~seed:3 ~policies
         (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 60 }))
  in
  let plain = run false and policied = run true in
  checkb "policies reduce warm-up messages" true
    (policied.Runner.warmup_messages < plain.Runner.warmup_messages)

let test_hold_timer_detection () =
  (* With hold-timer detection (no link signal), convergence is dominated
     by the hold time: everything happens between [hold - keepalive] and
     just after [hold]. *)
  let topo = fixed_topo 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let session =
    { Bgp_proto.Session.default_config with Bgp_proto.Session.hold_time = 9.0 }
  in
  let net_config =
    { (Network.config_default Config.default) with Network.detection = Network.Hold_timer session }
  in
  let scenario =
    Runner.scenario ~net:net_config ~failure:(Runner.Routers [ 2 ]) ~seed:1
      ~validate:true (Runner.Fixed topo)
  in
  let r = Runner.run scenario in
  checkb "converged" true r.Runner.converged;
  checkb "invariants hold" true (r.Runner.issues = []);
  checkb "delay at least hold - keepalive" true (r.Runner.convergence_delay >= 9.0 *. 0.75 -. 3.0);
  checkb "delay not much beyond hold" true (r.Runner.convergence_delay <= 9.0 +. 60.0)

let () =
  Alcotest.run "netsim"
    [
      ( "small-networks",
        [
          Alcotest.test_case "line converges" `Quick test_line_converges;
          Alcotest.test_case "ring shortest arc" `Quick test_ring_prefers_shorter_arc;
          Alcotest.test_case "clique" `Quick test_clique_all_direct;
          Alcotest.test_case "grid failure invariants" `Quick test_failure_invariants_small;
          Alcotest.test_case "partition" `Quick test_partition_withdraws_everything;
          Alcotest.test_case "failed dest unreachable" `Quick test_failed_dest_unreachable;
        ] );
      ( "random-networks",
        [
          Alcotest.test_case "invariants across seeds" `Quick test_random_topology_invariants;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "no failure, no churn" `Quick test_no_failure_no_churn;
          Alcotest.test_case "warmup message bound" `Quick test_warmup_message_bound;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "batching reduces load" `Quick
            test_batching_reduces_messages_under_overload;
          Alcotest.test_case "dynamic reacts" `Quick test_dynamic_scheme_reacts;
        ] );
      ( "realistic",
        [
          Alcotest.test_case "multi-router run" `Quick test_realistic_topology_run;
          Alcotest.test_case "iBGP mesh sessions" `Quick test_ibgp_mesh_sessions;
        ] );
      ( "warmup",
        [
          Alcotest.test_case "analytic = simulated (flat)" `Quick
            test_warmup_equivalence_flat;
          Alcotest.test_case "analytic = simulated (realistic)" `Quick
            test_warmup_equivalence_realistic;
          Alcotest.test_case "analytic = simulated (no sender check)" `Quick
            test_warmup_equivalence_no_sender_check;
          Alcotest.test_case "analytic failure run" `Quick test_analytic_failure_run;
        ] );
      ( "overload",
        [
          Alcotest.test_case "high-degree nodes overload first" `Quick
            test_overload_hits_high_degree_nodes;
          Alcotest.test_case "overload shrinks at high MRAI" `Quick
            test_overload_shrinks_at_high_mrai;
          QCheck_alcotest.to_alcotest prop_random_failures_keep_invariants;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
          Alcotest.test_case "capacity edge cases" `Quick test_trace_capacity_edges;
          Alcotest.test_case "between boundaries" `Quick test_trace_between_boundaries;
          Alcotest.test_case "clear resets" `Quick test_trace_clear_resets;
          Alcotest.test_case "records network events" `Quick
            test_trace_records_network_events;
        ] );
      ( "prefixes",
        [
          Alcotest.test_case "routes for every prefix" `Quick test_prefixes_per_as_routes;
          Alcotest.test_case "message load scales" `Quick test_prefixes_scale_message_load;
          Alcotest.test_case "analytic equivalence (ppa=2)" `Quick
            test_prefixes_analytic_equivalence;
        ] );
      ( "classic-events",
        [
          Alcotest.test_case "Labovitz (n-3)*MRAI bound (WRATE)" `Quick
            test_labovitz_bound_wrate;
          Alcotest.test_case "Tdown scaling (unpaced)" `Quick test_tdown_scaling_unpaced;
          Alcotest.test_case "link failure reroutes" `Quick test_link_failure_reroutes;
        ] );
      ( "policies",
        [
          Alcotest.test_case "relationship inference" `Quick test_relationship_inference;
          Alcotest.test_case "peering inference" `Quick test_relationship_peering;
          Alcotest.test_case "valley-free predicate" `Quick test_valley_free_predicate;
          Alcotest.test_case "policied network invariants" `Quick
            test_policied_network_invariants;
          Alcotest.test_case "policies restrict exports" `Quick
            test_policies_restrict_exports;
        ] );
      ( "config",
        [
          Alcotest.test_case "detection delay" `Quick test_detection_delay_config;
          Alcotest.test_case "hold-timer detection" `Quick test_hold_timer_detection;
        ] );
    ]
