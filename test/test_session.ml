(* Tests for the BGP session FSM: handshake, keepalive maintenance, hold
   expiry, notifications, and update gating. *)

module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Types = Bgp_proto.Types
module Session = Bgp_proto.Session

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let paths = Bgp_proto.Path.create_table ()

(* A pair of endpoints joined by a lossy-capable wire with 25 ms delay. *)
type endpoint = {
  session : Session.t;
  mutable established : int;
  mutable closed : (float * string) list;
  mutable delivered : Types.update list;
  mutable cut : bool;  (* when true, this endpoint's outgoing wire drops *)
}

let make_pair ?(config = Session.default_config) ?(config_b = None) sched =
  let delay = 0.025 in
  let rec a =
    lazy
      {
        session =
          Session.create ~sched ~rng:(Rng.create 1) ~config ~local_as:10
            {
              Session.send_wire =
                (fun msg ->
                  let src = Lazy.force a and dst = Lazy.force b in
                  if not src.cut then
                    ignore
                      (Sched.schedule sched ~delay (fun () ->
                           Session.handle_wire dst.session msg)));
              on_established =
                (fun () ->
                  let e = Lazy.force a in
                  e.established <- e.established + 1);
              on_closed =
                (fun ~reason ->
                  let e = Lazy.force a in
                  e.closed <- (Sched.now sched, reason) :: e.closed);
              deliver_update =
                (fun ~cause:_ u ->
                  let e = Lazy.force a in
                  e.delivered <- u :: e.delivered);
            };
        established = 0;
        closed = [];
        delivered = [];
        cut = false;
      }
  and b =
    lazy
      {
        session =
          Session.create ~sched ~rng:(Rng.create 2)
            ~config:(Option.value ~default:config config_b)
            ~local_as:20
            {
              Session.send_wire =
                (fun msg ->
                  let src = Lazy.force b and dst = Lazy.force a in
                  if not src.cut then
                    ignore
                      (Sched.schedule sched ~delay (fun () ->
                           Session.handle_wire dst.session msg)));
              on_established =
                (fun () ->
                  let e = Lazy.force b in
                  e.established <- e.established + 1);
              on_closed =
                (fun ~reason ->
                  let e = Lazy.force b in
                  e.closed <- (Sched.now sched, reason) :: e.closed);
              deliver_update =
                (fun ~cause:_ u ->
                  let e = Lazy.force b in
                  e.delivered <- u :: e.delivered);
            };
        established = 0;
        closed = [];
        delivered = [];
        cut = false;
      }
  in
  (Lazy.force a, Lazy.force b)

let no_jitter = { Session.default_config with Session.jitter = false }

let test_handshake () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  Session.start a.session;
  (* b opens passively on receipt of a's OPEN. *)
  Sched.run ~until:1.0 sched;
  checkb "a established" true (Session.state a.session = Session.Established);
  checkb "b established" true (Session.state b.session = Session.Established);
  checki "a fired on_established once" 1 a.established;
  checki "b fired on_established once" 1 b.established

let test_hold_negotiation () =
  let sched = Sched.create () in
  let config_b = Some { no_jitter with Session.hold_time = 30.0 } in
  let a, b = make_pair ~config:no_jitter ~config_b sched in
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  checkb "a negotiated min(90,30)" true
    (Session.negotiated_hold_time a.session = Some 30.0);
  checkb "b negotiated min(90,30)" true
    (Session.negotiated_hold_time b.session = Some 30.0)

let test_keepalives_maintain () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  Session.start a.session;
  (* Several hold periods of silence: keepalives must keep it alive. *)
  Sched.run ~until:500.0 sched;
  checkb "a still established" true (Session.state a.session = Session.Established);
  checkb "b still established" true (Session.state b.session = Session.Established);
  checkb "keepalives flowed" true (Session.keepalives_sent a.session > 10);
  checkb "no closures" true (a.closed = [] && b.closed = [])

let test_hold_expiry_on_silence () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  (* a dies silently at t=100: its wire is cut, no notification. *)
  ignore (Sched.schedule sched ~delay:99.0 (fun () -> a.cut <- true));
  Sched.run ~until:100.0 sched;
  Sched.run ~until:400.0 sched;
  checkb "b closed" true (Session.state b.session = Session.Idle);
  (match b.closed with
  | [ (time, reason) ] ->
    checkb "reason mentions hold" true (reason = "hold timer expired");
    (* Detection within (0, hold] after the silence began. *)
    checkb "detected within the hold time" true (time > 100.0 && time <= 100.0 +. 90.0)
  | l -> Alcotest.failf "expected one closure, got %d" (List.length l));
  (* Once b stops keepaliving, a's own hold timer expires as well. *)
  checkb "a's hold expires after b goes quiet" true (Session.state a.session = Session.Idle)

let test_notification_teardown () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  Session.close a.session ~reason:"maintenance";
  Sched.run ~until:2.0 sched;
  checkb "a idle" true (Session.state a.session = Session.Idle);
  checkb "b idle" true (Session.state b.session = Session.Idle);
  (match b.closed with
  | [ (_, reason) ] -> checkb "peer reason propagated" true (reason = "peer: maintenance")
  | _ -> Alcotest.fail "expected one closure at b")

let test_update_gating () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  (* Before establishment: dropped. *)
  checkb "update refused when idle" false
    (Session.send_update a.session (Types.Withdraw 5));
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  checkb "update accepted when established" true
    (Session.send_update a.session
       (Types.Advertise { dest = 7; path = Bgp_proto.Path.of_list paths [ 10; 7 ] }));
  Sched.run ~until:2.0 sched;
  (match b.delivered with
  | [ Types.Advertise { dest = 7; _ } ] -> ()
  | _ -> Alcotest.fail "update not delivered");
  checki "delivery counted" 1 (Session.updates_delivered b.session)

let test_updates_refresh_hold () =
  let sched = Sched.create () in
  let a, b = make_pair ~config:no_jitter sched in
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  (* Cut a's keepalives but keep manually pumping updates more often than
     the hold time: b must stay up (updates refresh the hold timer). *)
  let rec pump n =
    if n > 0 then
      ignore
        (Sched.schedule sched ~delay:60.0 (fun () ->
             (* bypass a's cut wire: inject directly into b *)
             Session.handle_wire b.session
               (Session.Update_msg { update = Types.Withdraw 1; cause = -1 });
             pump (n - 1)))
  in
  a.cut <- true;
  pump 5;
  Sched.run ~until:290.0 sched;
  checkb "b alive on updates alone" true (Session.state b.session = Session.Established)

let test_jitter_bounds () =
  (* With jitter on, detection still happens within (0, hold]. *)
  let sched = Sched.create () in
  let a, b = make_pair ~config:Session.default_config sched in
  Session.start a.session;
  Sched.run ~until:1.0 sched;
  ignore (Sched.schedule sched ~delay:49.0 (fun () -> a.cut <- true));
  Sched.run ~until:600.0 sched;
  match b.closed with
  | [ (time, _) ] -> checkb "within hold bound" true (time > 50.0 && time <= 50.0 +. 90.0)
  | _ -> Alcotest.fail "expected one closure"

let () =
  Alcotest.run "session"
    [
      ( "fsm",
        [
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "hold negotiation" `Quick test_hold_negotiation;
          Alcotest.test_case "keepalives maintain" `Quick test_keepalives_maintain;
          Alcotest.test_case "hold expiry on silence" `Quick test_hold_expiry_on_silence;
          Alcotest.test_case "notification teardown" `Quick test_notification_teardown;
          Alcotest.test_case "update gating" `Quick test_update_gating;
          Alcotest.test_case "updates refresh hold" `Quick test_updates_refresh_hold;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
        ] );
    ]
