(* Golden regression tests for the hot-path rewrite (packed ranks,
   interned paths, slab scheduler).

   The expected values below were produced by the pre-rewrite simulator
   (tuple ranks, list paths, record-slot scheduler) at jobs=1 and must
   stay bit-identical: the optimisations are pure representation changes,
   so any drift in a delay, message count or executed-event count is a
   semantic regression, not noise. *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Telemetry = Bgp_netsim.Telemetry
module Config = Bgp_proto.Config
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Rng = Bgp_engine.Rng
module Profile = Bgp_engine.Profile

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 0.0) msg

type golden = {
  warmup_delay : float;
  convergence_delay : float;
  messages : int;
  adverts : int;
  withdrawals : int;
  warmup_messages : int;
  max_queue : int;
  events : int;
}

let flat_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let realistic_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed:5
    (Runner.Realistic (As_topology.default ~n_ases:16))

let ring_topology n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    Graph.add_edge g u ((u + 1) mod n)
  done;
  Topology.of_graph (Rng.create 99) g

let tdown_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 2.0) default))
    ~failure:(Runner.Links [ (0, 1); (3, 4) ])
    ~seed:7
    (Runner.Fixed (ring_topology 8))

let flat_golden =
  [|
    { warmup_delay = 4.5932573959610448; convergence_delay = 3.410523805227708;
      messages = 568; adverts = 243; withdrawals = 325; warmup_messages = 1759;
      max_queue = 53; events = 5155 };
    { warmup_delay = 4.7545541373778049; convergence_delay = 1.6452888802113126;
      messages = 292; adverts = 121; withdrawals = 171; warmup_messages = 1612;
      max_queue = 60; events = 4243 };
    { warmup_delay = 5.3120246805448161; convergence_delay = 1.605273460530209;
      messages = 383; adverts = 145; withdrawals = 238; warmup_messages = 1802;
      max_queue = 66; events = 4868 };
    { warmup_delay = 5.5432049761709292; convergence_delay = 2.6954369334525614;
      messages = 353; adverts = 164; withdrawals = 189; warmup_messages = 1847;
      max_queue = 61; events = 4964 };
  |]

let realistic_golden =
  [|
    { warmup_delay = 104.66676969548706; convergence_delay = 24.543814509711865;
      messages = 206; adverts = 48; withdrawals = 158; warmup_messages = 911;
      max_queue = 11; events = 2390 };
    { warmup_delay = 72.06510557918979; convergence_delay = 51.305429495061432;
      messages = 2303; adverts = 1091; withdrawals = 1212; warmup_messages = 3486;
      max_queue = 40; events = 11834 };
    { warmup_delay = 129.02370705946035; convergence_delay = 84.293078716471001;
      messages = 334; adverts = 120; withdrawals = 214; warmup_messages = 698;
      max_queue = 13; events = 2218 };
    { warmup_delay = 55.135980722034517; convergence_delay = 0.46674715613026763;
      messages = 181; adverts = 119; withdrawals = 62; warmup_messages = 8534;
      max_queue = 85; events = 19044 };
  |]

let tdown_golden =
  [|
    { warmup_delay = 5.442808348848355; convergence_delay = 0.27309701573459044;
      messages = 37; adverts = 4; withdrawals = 33; warmup_messages = 76;
      max_queue = 6; events = 291 };
    { warmup_delay = 5.6734814882078108; convergence_delay = 0.27713364433453869;
      messages = 37; adverts = 4; withdrawals = 33; warmup_messages = 80;
      max_queue = 6; events = 302 };
    { warmup_delay = 5.6287803441753566; convergence_delay = 0.2490448934295717;
      messages = 37; adverts = 4; withdrawals = 33; warmup_messages = 78;
      max_queue = 6; events = 298 };
    { warmup_delay = 5.2558436216893147; convergence_delay = 0.26889247484797174;
      messages = 37; adverts = 4; withdrawals = 33; warmup_messages = 84;
      max_queue = 6; events = 308 };
  |]

let check_family name scenario golden () =
  Array.iteri
    (fun i g ->
      let r = Runner.run { scenario with Runner.seed = scenario.Runner.seed + i } in
      let ctx field = Printf.sprintf "%s seed+%d: %s" name i field in
      checkb (ctx "converged") true r.Runner.converged;
      checkf (ctx "warmup_delay") g.warmup_delay r.Runner.warmup_delay;
      checkf (ctx "convergence_delay") g.convergence_delay r.Runner.convergence_delay;
      checki (ctx "messages") g.messages r.Runner.messages;
      checki (ctx "adverts") g.adverts r.Runner.adverts;
      checki (ctx "withdrawals") g.withdrawals r.Runner.withdrawals;
      checki (ctx "warmup_messages") g.warmup_messages r.Runner.warmup_messages;
      checki (ctx "max_queue") g.max_queue r.Runner.max_queue;
      checki (ctx "events") g.events r.Runner.events)
    golden

(* Turning telemetry on must not perturb any routing-relevant golden
   field, and its report must account for the same totals. *)
let check_telemetry_neutral name scenario golden () =
  let tele_scenario =
    {
      scenario with
      Runner.net = { scenario.Runner.net with Network.telemetry = Some (Telemetry.config ()) };
    }
  in
  let g = golden.(0) in
  let r = Runner.run tele_scenario in
  let ctx field = Printf.sprintf "%s (telemetry on): %s" name field in
  checkb (ctx "converged") true r.Runner.converged;
  checkf (ctx "warmup_delay") g.warmup_delay r.Runner.warmup_delay;
  checkf (ctx "convergence_delay") g.convergence_delay r.Runner.convergence_delay;
  checki (ctx "messages") g.messages r.Runner.messages;
  checki (ctx "warmup_messages") g.warmup_messages r.Runner.warmup_messages;
  match r.Runner.report with
  | None -> Alcotest.fail (ctx "expected a telemetry report")
  | Some report ->
    let counter n =
      match List.find_opt (fun (name, _, _) -> name = n) report.Telemetry.counters with
      | Some (_, _, v) -> v
      | None -> Alcotest.failf "%s: counter %s missing" name n
    in
    checkf (ctx "net.messages_sent counter")
      (float_of_int (g.messages + g.warmup_messages))
      (counter "net.messages_sent");
    checkb (ctx "paths interned") true (counter "path.interned" > 0.0);
    checkb (ctx "intern hits") true (counter "path.intern_hits" > 0.0)

(* Arming the wall-clock profiler must not perturb any golden either: it
   reads only the monotonic clock and GC statistics, never simulated
   state, so all 12 pinned results stay bit-identical with --prof on. *)
let check_profiler_neutral name scenario golden () =
  Profile.start ();
  check_family name scenario golden ();
  match Profile.stop () with
  | None -> Alcotest.fail (name ^ ": profiler was armed but returned no report")
  | Some rep ->
    checkb (name ^ ": profiler recorded phase spans") true
      (List.exists
         (fun (d : Profile.domain_report) ->
           List.exists (fun (s : Profile.span) -> Profile.phase_kind s.Profile.kind)
             d.Profile.spans)
         rep.Profile.domains)

(* Same bit-identity over the sharded engine, whose hot loop carries the
   per-window span instrumentation.  The sharded engine's [events] count
   differs from the sequential one (different window bookkeeping), so
   the reference is the same sharded run with the profiler off. *)
let check_profiler_neutral_sharded name scenario () =
  let fields (r : Runner.result) =
    ( ( r.Runner.converged,
        r.Runner.warmup_delay,
        r.Runner.convergence_delay,
        r.Runner.messages,
        r.Runner.adverts ),
      ( r.Runner.withdrawals,
        r.Runner.warmup_messages,
        r.Runner.max_queue,
        r.Runner.events,
        r.Runner.issues ) )
  in
  Array.iter
    (fun i ->
      let scenario =
        { scenario with Runner.sharding = Some 2; Runner.seed = scenario.Runner.seed + i }
      in
      let off = Runner.run scenario in
      Profile.start ();
      let on = Runner.run scenario in
      let rep = Profile.stop () in
      checkb (Printf.sprintf "%s seed+%d: sharded run identical with --prof on" name i)
        true
        (fields off = fields on);
      match rep with
      | None -> Alcotest.fail (name ^ ": profiler was armed but returned no report")
      | Some rep ->
        checkb (Printf.sprintf "%s seed+%d: per-shard compute spans recorded" name i)
          true
          (List.exists
             (fun (d : Profile.domain_report) ->
               List.exists
                 (fun (s : Profile.span) ->
                   s.Profile.kind = Profile.Compute && s.Profile.shard >= 0)
                 d.Profile.spans)
             rep.Profile.domains))
    [| 0; 1; 2; 3 |]

let () =
  Alcotest.run "golden"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "flat 70-30 (4 seeds)" `Quick
            (check_family "flat" flat_scenario flat_golden);
          Alcotest.test_case "realistic 16-AS (4 seeds)" `Quick
            (check_family "realistic" realistic_scenario realistic_golden);
          Alcotest.test_case "Tdown ring (4 seeds)" `Quick
            (check_family "tdown" tdown_scenario tdown_golden);
        ] );
      ( "telemetry-neutral",
        [
          Alcotest.test_case "flat" `Quick
            (check_telemetry_neutral "flat" flat_scenario flat_golden);
          Alcotest.test_case "realistic" `Quick
            (check_telemetry_neutral "realistic" realistic_scenario realistic_golden);
          Alcotest.test_case "Tdown" `Quick
            (check_telemetry_neutral "tdown" tdown_scenario tdown_golden);
        ] );
      ( "profiler-neutral",
        [
          Alcotest.test_case "flat (4 seeds)" `Quick
            (check_profiler_neutral "flat" flat_scenario flat_golden);
          Alcotest.test_case "realistic (4 seeds)" `Quick
            (check_profiler_neutral "realistic" realistic_scenario realistic_golden);
          Alcotest.test_case "Tdown (4 seeds)" `Quick
            (check_profiler_neutral "tdown" tdown_scenario tdown_golden);
          Alcotest.test_case "flat sharded (4 seeds)" `Quick
            (check_profiler_neutral_sharded "flat-sharded" flat_scenario);
        ] );
    ]
