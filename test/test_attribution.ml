(* Attribution invariants on the golden scenarios.

   Three properties anchor the observability layer: (1) attaching a trace
   never perturbs the simulation — every result field stays bit-identical
   to an untraced run; (2) the critical path's component decomposition
   telescopes, so queueing + processing + MRAI hold + propagation sum to
   the measured convergence delay (up to float addition order) and the
   terminal hop's timestamp is exactly t_fail + delay; (3) the trace
   survives serialization — spilled-and-reloaded events yield the same
   attribution, and every event round-trips through JSONL. *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Report = Bgp_experiments.Bench_report
module Config = Bgp_proto.Config
module Path = Bgp_proto.Path
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Rng = Bgp_engine.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let exactf msg = Alcotest.check (Alcotest.float 0.0) msg
let nearf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* Same three scenario families (x 4 seeds) as test_golden.ml. *)

let flat_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let realistic_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed:5
    (Runner.Realistic (As_topology.default ~n_ases:16))

let ring_topology n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    Graph.add_edge g u ((u + 1) mod n)
  done;
  Topology.of_graph (Rng.create 99) g

let tdown_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 2.0) default))
    ~failure:(Runner.Links [ (0, 1); (3, 4) ])
    ~seed:7
    (Runner.Fixed (ring_topology 8))

let with_trace ?capacity ?spill scenario =
  {
    scenario with
    Runner.net =
      {
        scenario.Runner.net with
        Network.trace = Some (Trace.create ?capacity ?spill ());
      };
  }

let get_attr ctx (r : Runner.result) =
  match r.Runner.attribution with
  | Some a -> a
  | None -> Alcotest.failf "%s: traced run produced no attribution" ctx

(* (1) + (2): trace neutrality and the decomposition invariants, on all
   12 golden scenario instances. *)
let check_family name scenario () =
  for i = 0 to 3 do
    let scenario = { scenario with Runner.seed = scenario.Runner.seed + i } in
    let ctx field = Printf.sprintf "%s seed+%d: %s" name i field in
    let plain = Runner.run scenario in
    let traced = Runner.run (with_trace scenario) in
    (* bit-identity of every result field *)
    checkb (ctx "converged") plain.Runner.converged traced.Runner.converged;
    exactf (ctx "warmup_delay") plain.Runner.warmup_delay traced.Runner.warmup_delay;
    exactf (ctx "convergence_delay") plain.Runner.convergence_delay
      traced.Runner.convergence_delay;
    checki (ctx "messages") plain.Runner.messages traced.Runner.messages;
    checki (ctx "adverts") plain.Runner.adverts traced.Runner.adverts;
    checki (ctx "withdrawals") plain.Runner.withdrawals traced.Runner.withdrawals;
    checki (ctx "warmup_messages") plain.Runner.warmup_messages
      traced.Runner.warmup_messages;
    checki (ctx "eliminated") plain.Runner.eliminated traced.Runner.eliminated;
    checki (ctx "max_queue") plain.Runner.max_queue traced.Runner.max_queue;
    checki (ctx "events") plain.Runner.events traced.Runner.events;
    (* decomposition invariants *)
    let attr = get_attr (ctx "attribution") traced in
    checkb (ctx "complete") true attr.Attribution.complete;
    exactf (ctx "attr delay = result delay") plain.Runner.convergence_delay
      attr.Attribution.convergence_delay;
    nearf (ctx "components sum to delay") plain.Runner.convergence_delay
      (Attribution.total attr.Attribution.totals);
    (match List.rev attr.Attribution.critical_path with
    | [] -> Alcotest.fail (ctx "empty critical path")
    | terminal :: _ ->
      exactf (ctx "terminal timestamp = t_fail + delay")
        (attr.Attribution.t_fail +. plain.Runner.convergence_delay)
        (Trace.time_of terminal.Attribution.event));
    (* the chain is causally linked: each hop's cause is the previous
       hop's id, and the root is a true causal root *)
    (match attr.Attribution.critical_path with
    | [] -> ()
    | root :: rest ->
      checki (ctx "root has no cause") Trace.no_cause
        (Trace.cause_of root.Attribution.event);
      ignore
        (List.fold_left
           (fun prev_id (hop : Attribution.hop) ->
             checki (ctx "hop cause = predecessor id") prev_id
               (Trace.cause_of hop.Attribution.event);
             Trace.id_of hop.Attribution.event)
           (Trace.id_of root.Attribution.event)
           rest));
    (* hop parts re-sum to the totals *)
    let resummed =
      List.fold_left
        (fun acc (hop : Attribution.hop) -> Attribution.add acc hop.Attribution.parts)
        Attribution.zero attr.Attribution.critical_path
    in
    nearf (ctx "hop parts sum to totals")
      (Attribution.total attr.Attribution.totals)
      (Attribution.total resummed);
    (* per-router residencies partition the critical path *)
    let residency_sum =
      List.fold_left
        (fun acc (s : Attribution.router_stat) -> acc +. s.Attribution.residency)
        0.0 attr.Attribution.per_router
    in
    nearf (ctx "router residencies sum to delay") plain.Runner.convergence_delay
      residency_sum
  done

(* (3a): a tiny ring that spills to JSONL must reconstruct the identical
   attribution — nothing is lost on ring wrap. *)
let check_spill_roundtrip () =
  let spill = Filename.temp_file "bgpsim_spill" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove spill with Sys_error _ -> ())
    (fun () ->
      let big = Runner.run (with_trace ~capacity:1_000_000 flat_scenario) in
      let small_trace = Trace.create ~capacity:500 ~spill () in
      let small =
        Runner.run
          {
            flat_scenario with
            Runner.net =
              { flat_scenario.Runner.net with Network.trace = Some small_trace };
          }
      in
      let a_big = get_attr "spill: big" big in
      let a_small = get_attr "spill: small" small in
      checkb "small ring spilled" true (Trace.spilled small_trace > 0);
      checki "no drops with a sink" 0 (Trace.dropped small_trace);
      Alcotest.check Alcotest.string "attribution identical across spill"
        (Attribution.to_json a_big)
        (Attribution.to_json a_small);
      checkb "spilled trace complete" true a_small.Attribution.complete)

(* Without a spill sink, a small ring must *count* what it loses and
   report the truncation (complete = false or fewer analyzed events), not
   silently pretend full coverage. *)
let check_drop_counting () =
  let trace = Trace.create ~capacity:50 () in
  let scenario =
    { flat_scenario with Runner.net = { flat_scenario.Runner.net with Network.trace = Some trace } }
  in
  let _ = Runner.run scenario in
  checkb "drops counted" true (Trace.dropped trace > 0);
  checki "nothing spilled without a sink" 0 (Trace.spilled trace)

(* (3b): every traced event survives a JSONL round-trip byte-for-byte
   (modulo path re-interning, which the serialization hides). *)
let check_event_roundtrip () =
  let trace = Trace.create ~capacity:1_000_000 () in
  let scenario =
    { flat_scenario with Runner.net = { flat_scenario.Runner.net with Network.trace = Some trace } }
  in
  let _ = Runner.run scenario in
  let events = Trace.events trace in
  checkb "trace non-empty" true (events <> []);
  let paths = Path.create_table () in
  List.iter
    (fun e ->
      let line = Trace.event_to_json e in
      match Trace.event_of_json ~paths line with
      | Error msg -> Alcotest.failf "round-trip parse failed: %s on %s" msg line
      | Ok e' ->
        Alcotest.check Alcotest.string "event json round-trip" line
          (Trace.event_to_json e'))
    events;
  (match Trace.event_of_json ~paths "{\"kind\": \"nonsense\"}" with
  | Ok _ -> Alcotest.fail "parsed a bogus event kind"
  | Error _ -> ());
  match Trace.event_of_json ~paths "not json at all" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error _ -> ()

(* The analyze JSON is schema-valid and self-consistent, checked with the
   repo's own JSON reader (%.17g floats round-trip exactly). *)
let check_attr_json () =
  let traced = Runner.run (with_trace flat_scenario) in
  let attr = get_attr "json" traced in
  let json = Report.of_string (Attribution.to_json attr) in
  let str_member key =
    match Option.bind (Report.member key json) Report.to_str with
    | Some s -> s
    | None -> Alcotest.failf "missing string %s" key
  in
  let float_member obj key =
    match Option.bind (Report.member key obj) Report.to_float with
    | Some v -> v
    | None -> Alcotest.failf "missing float %s" key
  in
  Alcotest.check Alcotest.string "schema" "bgp-attr/1" (str_member "schema");
  let totals =
    match Report.member "totals" json with
    | Some o -> o
    | None -> Alcotest.fail "missing totals"
  in
  let sum =
    float_member totals "queueing"
    +. float_member totals "processing"
    +. float_member totals "mrai_hold"
    +. float_member totals "propagation"
  in
  nearf "json components sum to delay" (float_member json "convergence_delay") sum;
  (match Report.member "complete" json with
  | Some (Report.Bool true) -> ()
  | _ -> Alcotest.fail "complete should be true");
  let path =
    match Option.bind (Report.member "critical_path" json) Report.to_list with
    | Some l -> l
    | None -> Alcotest.fail "missing critical_path"
  in
  checki "json path length" (List.length attr.Attribution.critical_path)
    (List.length path);
  match Option.bind (Report.member "per_router" json) Report.to_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "missing per_router"

(* Bench reports carry the attribution block through their own emitter. *)
let check_bench_report_roundtrip () =
  let t = Report.create ~trials:2 ~n:24 ~jobs:1 in
  Report.set_attribution t
    {
      Report.attr_scenario = "unit test";
      attr_delay = 3.5;
      attr_queueing = 0.5;
      attr_processing = 0.25;
      attr_mrai_hold = 2.0;
      attr_propagation = 0.75;
      attr_hops = 42;
      attr_complete = true;
    };
  let json = Report.of_string (Report.to_json t) in
  let attr =
    match Report.member "attribution" json with
    | Some o -> o
    | None -> Alcotest.fail "bench report lost the attribution block"
  in
  let f key =
    match Option.bind (Report.member key attr) Report.to_float with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" key
  in
  exactf "delay" 3.5 (f "convergence_delay_s");
  exactf "queueing" 0.5 (f "queueing_s");
  exactf "mrai_hold" 2.0 (f "mrai_hold_s");
  exactf "hops" 42.0 (f "critical_hops");
  match Report.member "complete" attr with
  | Some (Report.Bool true) -> ()
  | _ -> Alcotest.fail "complete flag lost"

let () =
  Alcotest.run "attribution"
    [
      ( "golden-invariants",
        [
          Alcotest.test_case "flat 70-30 (4 seeds)" `Quick
            (check_family "flat" flat_scenario);
          Alcotest.test_case "realistic 16-AS (4 seeds)" `Quick
            (check_family "realistic" realistic_scenario);
          Alcotest.test_case "Tdown ring (4 seeds)" `Quick
            (check_family "tdown" tdown_scenario);
        ] );
      ( "serialization",
        [
          Alcotest.test_case "spill round-trip" `Quick check_spill_roundtrip;
          Alcotest.test_case "drop counting without sink" `Quick
            check_drop_counting;
          Alcotest.test_case "event JSONL round-trip" `Quick
            check_event_roundtrip;
          Alcotest.test_case "analyze JSON self-consistency" `Quick
            check_attr_json;
          Alcotest.test_case "bench report attribution" `Quick
            check_bench_report_roundtrip;
        ] );
    ]
