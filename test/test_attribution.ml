(* Attribution invariants on the golden scenarios.

   Three properties anchor the observability layer: (1) attaching a trace
   never perturbs the simulation — every result field stays bit-identical
   to an untraced run; (2) the critical path's component decomposition
   telescopes, so queueing + processing + MRAI hold + propagation sum to
   the measured convergence delay (up to float addition order) and the
   terminal hop's timestamp is exactly t_fail + delay; (3) the trace
   survives serialization — spilled-and-reloaded events yield the same
   attribution, and every event round-trips through JSONL. *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Report = Bgp_experiments.Bench_report
module Config = Bgp_proto.Config
module Path = Bgp_proto.Path
module Degree_dist = Bgp_topology.Degree_dist
module As_topology = Bgp_topology.As_topology
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Rng = Bgp_engine.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let exactf msg = Alcotest.check (Alcotest.float 0.0) msg
let nearf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* Same three scenario families (x 4 seeds) as test_golden.ml. *)

let flat_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let realistic_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.default)
    ~failure:(Runner.Fraction 0.1) ~seed:5
    (Runner.Realistic (As_topology.default ~n_ases:16))

let ring_topology n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    Graph.add_edge g u ((u + 1) mod n)
  done;
  Topology.of_graph (Rng.create 99) g

let tdown_scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 2.0) default))
    ~failure:(Runner.Links [ (0, 1); (3, 4) ])
    ~seed:7
    (Runner.Fixed (ring_topology 8))

let with_trace ?capacity ?spill scenario =
  {
    scenario with
    Runner.net =
      {
        scenario.Runner.net with
        Network.trace = Some (Trace.create ?capacity ?spill ());
      };
  }

let get_attr ctx (r : Runner.result) =
  match r.Runner.attribution with
  | Some a -> a
  | None -> Alcotest.failf "%s: traced run produced no attribution" ctx

(* (1) + (2): trace neutrality and the decomposition invariants, on all
   12 golden scenario instances. *)
let check_family name scenario () =
  for i = 0 to 3 do
    let scenario = { scenario with Runner.seed = scenario.Runner.seed + i } in
    let ctx field = Printf.sprintf "%s seed+%d: %s" name i field in
    let plain = Runner.run scenario in
    let traced = Runner.run (with_trace scenario) in
    (* bit-identity of every result field *)
    checkb (ctx "converged") plain.Runner.converged traced.Runner.converged;
    exactf (ctx "warmup_delay") plain.Runner.warmup_delay traced.Runner.warmup_delay;
    exactf (ctx "convergence_delay") plain.Runner.convergence_delay
      traced.Runner.convergence_delay;
    checki (ctx "messages") plain.Runner.messages traced.Runner.messages;
    checki (ctx "adverts") plain.Runner.adverts traced.Runner.adverts;
    checki (ctx "withdrawals") plain.Runner.withdrawals traced.Runner.withdrawals;
    checki (ctx "warmup_messages") plain.Runner.warmup_messages
      traced.Runner.warmup_messages;
    checki (ctx "eliminated") plain.Runner.eliminated traced.Runner.eliminated;
    checki (ctx "max_queue") plain.Runner.max_queue traced.Runner.max_queue;
    checki (ctx "events") plain.Runner.events traced.Runner.events;
    (* decomposition invariants *)
    let attr = get_attr (ctx "attribution") traced in
    checkb (ctx "complete") true attr.Attribution.complete;
    exactf (ctx "attr delay = result delay") plain.Runner.convergence_delay
      attr.Attribution.convergence_delay;
    nearf (ctx "components sum to delay") plain.Runner.convergence_delay
      (Attribution.total attr.Attribution.totals);
    (match List.rev attr.Attribution.critical_path with
    | [] -> Alcotest.fail (ctx "empty critical path")
    | terminal :: _ ->
      exactf (ctx "terminal timestamp = t_fail + delay")
        (attr.Attribution.t_fail +. plain.Runner.convergence_delay)
        (Trace.time_of terminal.Attribution.event));
    (* the chain is causally linked: each hop's cause is the previous
       hop's id, and the root is a true causal root *)
    (match attr.Attribution.critical_path with
    | [] -> ()
    | root :: rest ->
      checki (ctx "root has no cause") Trace.no_cause
        (Trace.cause_of root.Attribution.event);
      ignore
        (List.fold_left
           (fun prev_id (hop : Attribution.hop) ->
             checki (ctx "hop cause = predecessor id") prev_id
               (Trace.cause_of hop.Attribution.event);
             Trace.id_of hop.Attribution.event)
           (Trace.id_of root.Attribution.event)
           rest));
    (* hop parts re-sum to the totals *)
    let resummed =
      List.fold_left
        (fun acc (hop : Attribution.hop) -> Attribution.add acc hop.Attribution.parts)
        Attribution.zero attr.Attribution.critical_path
    in
    nearf (ctx "hop parts sum to totals")
      (Attribution.total attr.Attribution.totals)
      (Attribution.total resummed);
    (* per-router residencies partition the critical path *)
    let residency_sum =
      List.fold_left
        (fun acc (s : Attribution.router_stat) -> acc +. s.Attribution.residency)
        0.0 attr.Attribution.per_router
    in
    nearf (ctx "router residencies sum to delay") plain.Runner.convergence_delay
      residency_sum;
    (* per-destination attributions: every destination's components
       telescope to its own measured tail, every chain roots, and the
       slowest tail is the network-wide delay *)
    checkb (ctx "some destination re-converged") true (attr.Attribution.per_dest <> []);
    List.iter
      (fun (d : Attribution.dest_attr) ->
        let dctx field = ctx (Printf.sprintf "dest %d: %s" d.Attribution.dest field) in
        checkb (dctx "complete") true d.Attribution.dest_complete;
        nearf (dctx "components sum to tail") d.Attribution.tail
          (Attribution.total d.Attribution.dest_parts);
        match List.rev d.Attribution.dest_path with
        | [] -> Alcotest.fail (dctx "empty path")
        | terminal :: _ ->
          exactf (dctx "terminal timestamp = t_fail + tail")
            (attr.Attribution.t_fail +. d.Attribution.tail)
            (Trace.time_of terminal.Attribution.event))
      attr.Attribution.per_dest;
    (match attr.Attribution.per_dest with
    | slowest :: _ ->
      exactf (ctx "slowest tail = convergence delay")
        attr.Attribution.convergence_delay slowest.Attribution.tail
    | [] -> ());
    (* tails are ordered and the summary percentiles bracket them *)
    checki (ctx "tail summary counts per_dest")
      (List.length attr.Attribution.per_dest)
      attr.Attribution.tails.Attribution.n_dests;
    checkb (ctx "p50 <= p95 <= p99") true
      (attr.Attribution.tails.Attribution.p50 <= attr.Attribution.tails.Attribution.p95
      && attr.Attribution.tails.Attribution.p95 <= attr.Attribution.tails.Attribution.p99)
  done

(* (3a): a tiny ring that spills to JSONL must reconstruct the identical
   attribution — nothing is lost on ring wrap. *)
let check_spill_roundtrip () =
  let spill = Filename.temp_file "bgpsim_spill" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove spill with Sys_error _ -> ())
    (fun () ->
      let big = Runner.run (with_trace ~capacity:1_000_000 flat_scenario) in
      let small_trace = Trace.create ~capacity:500 ~spill () in
      let small =
        Runner.run
          {
            flat_scenario with
            Runner.net =
              { flat_scenario.Runner.net with Network.trace = Some small_trace };
          }
      in
      let a_big = get_attr "spill: big" big in
      let a_small = get_attr "spill: small" small in
      checkb "small ring spilled" true (Trace.spilled small_trace > 0);
      checki "no drops with a sink" 0 (Trace.dropped small_trace);
      Alcotest.check Alcotest.string "attribution identical across spill"
        (Attribution.to_json a_big)
        (Attribution.to_json a_small);
      checkb "spilled trace complete" true a_small.Attribution.complete)

(* Without a spill sink, a small ring must *count* what it loses and
   report the truncation (complete = false or fewer analyzed events), not
   silently pretend full coverage. *)
let check_drop_counting () =
  let trace = Trace.create ~capacity:50 () in
  let scenario =
    { flat_scenario with Runner.net = { flat_scenario.Runner.net with Network.trace = Some trace } }
  in
  let _ = Runner.run scenario in
  checkb "drops counted" true (Trace.dropped trace > 0);
  checki "nothing spilled without a sink" 0 (Trace.spilled trace)

(* (3b): every traced event survives a JSONL round-trip byte-for-byte
   (modulo path re-interning, which the serialization hides). *)
let check_event_roundtrip () =
  let trace = Trace.create ~capacity:1_000_000 () in
  let scenario =
    { flat_scenario with Runner.net = { flat_scenario.Runner.net with Network.trace = Some trace } }
  in
  let _ = Runner.run scenario in
  let events = Trace.events trace in
  checkb "trace non-empty" true (events <> []);
  let paths = Path.create_table () in
  List.iter
    (fun e ->
      let line = Trace.event_to_json e in
      match Trace.event_of_json ~paths line with
      | Error msg -> Alcotest.failf "round-trip parse failed: %s on %s" msg line
      | Ok e' ->
        Alcotest.check Alcotest.string "event json round-trip" line
          (Trace.event_to_json e'))
    events;
  (match Trace.event_of_json ~paths "{\"kind\": \"nonsense\"}" with
  | Ok _ -> Alcotest.fail "parsed a bogus event kind"
  | Error _ -> ());
  match Trace.event_of_json ~paths "not json at all" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error _ -> ()

(* The analyze JSON is schema-valid and self-consistent, checked with the
   repo's own JSON reader (%.17g floats round-trip exactly). *)
let check_attr_json () =
  let traced = Runner.run (with_trace flat_scenario) in
  let attr = get_attr "json" traced in
  let json = Report.of_string (Attribution.to_json attr) in
  let str_member key =
    match Option.bind (Report.member key json) Report.to_str with
    | Some s -> s
    | None -> Alcotest.failf "missing string %s" key
  in
  let float_member obj key =
    match Option.bind (Report.member key obj) Report.to_float with
    | Some v -> v
    | None -> Alcotest.failf "missing float %s" key
  in
  Alcotest.check Alcotest.string "schema" "bgp-attr/2" (str_member "schema");
  let totals =
    match Report.member "totals" json with
    | Some o -> o
    | None -> Alcotest.fail "missing totals"
  in
  let sum =
    float_member totals "queueing"
    +. float_member totals "processing"
    +. float_member totals "mrai_hold"
    +. float_member totals "propagation"
  in
  nearf "json components sum to delay" (float_member json "convergence_delay") sum;
  (match Report.member "complete" json with
  | Some (Report.Bool true) -> ()
  | _ -> Alcotest.fail "complete should be true");
  let path =
    match Option.bind (Report.member "critical_path" json) Report.to_list with
    | Some l -> l
    | None -> Alcotest.fail "missing critical_path"
  in
  checki "json path length" (List.length attr.Attribution.critical_path)
    (List.length path);
  (match Option.bind (Report.member "per_router" json) Report.to_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "missing per_router");
  let per_dest =
    match Report.member "per_dest" json with
    | Some o -> o
    | None -> Alcotest.fail "missing per_dest"
  in
  (match Option.bind (Report.member "dests" per_dest) Report.to_float with
  | Some n -> exactf "json dests" (float_of_int attr.Attribution.tails.Attribution.n_dests) n
  | None -> Alcotest.fail "missing per_dest.dests");
  match Option.bind (Report.member "destinations" per_dest) Report.to_list with
  | Some dests ->
    checki "json destinations length"
      (List.length attr.Attribution.per_dest)
      (List.length dests);
    (* each serialized destination's parts sum to its tail *)
    List.iter
      (fun d ->
        let parts =
          match Report.member "parts" d with
          | Some o -> o
          | None -> Alcotest.fail "missing destination parts"
        in
        let sum =
          float_member parts "queueing"
          +. float_member parts "processing"
          +. float_member parts "mrai_hold"
          +. float_member parts "propagation"
        in
        nearf "json dest parts sum to tail" (float_member d "tail") sum)
      dests
  | None -> Alcotest.fail "missing per_dest.destinations"

(* Bench reports carry the attribution block through their own emitter. *)
let check_bench_report_roundtrip () =
  let t = Report.create ~trials:2 ~n:24 ~jobs:1 in
  Report.set_attribution t
    {
      Report.attr_scenario = "unit test";
      attr_delay = 3.5;
      attr_queueing = 0.5;
      attr_processing = 0.25;
      attr_mrai_hold = 2.0;
      attr_propagation = 0.75;
      attr_hops = 42;
      attr_complete = true;
      attr_dests = 24;
      attr_tail_p50 = 1.25;
      attr_tail_p95 = 3.0;
      attr_tail_p99 = 3.5;
      attr_straggler_dest = 17;
      attr_straggler_tail = 3.5;
    };
  let json = Report.of_string (Report.to_json t) in
  let attr =
    match Report.member "attribution" json with
    | Some o -> o
    | None -> Alcotest.fail "bench report lost the attribution block"
  in
  let f key =
    match Option.bind (Report.member key attr) Report.to_float with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" key
  in
  exactf "delay" 3.5 (f "convergence_delay_s");
  exactf "queueing" 0.5 (f "queueing_s");
  exactf "mrai_hold" 2.0 (f "mrai_hold_s");
  exactf "hops" 42.0 (f "critical_hops");
  exactf "dests" 24.0 (f "dests");
  exactf "tail p50" 1.25 (f "tail_p50_s");
  exactf "tail p95" 3.0 (f "tail_p95_s");
  exactf "tail p99" 3.5 (f "tail_p99_s");
  exactf "straggler dest" 17.0 (f "straggler_dest");
  exactf "straggler tail" 3.5 (f "straggler_tail_s");
  match Report.member "complete" attr with
  | Some (Report.Bool true) -> ()
  | _ -> Alcotest.fail "complete flag lost"

(* The flat reference scenario must surface at least one straggler: a
   destination whose tail exceeds the p95 tail (the acceptance criterion
   for the per-destination view). *)
let check_stragglers () =
  (* seed 1 = the reference run bench embeds; 24 destinations re-converge
     there, enough for p95 to sit below the maximum tail *)
  let traced = Runner.run (with_trace { flat_scenario with Runner.seed = 1 }) in
  let attr = get_attr "stragglers" traced in
  let late = Attribution.stragglers attr in
  checkb "at least one straggler beyond p95" true (late <> []);
  List.iter
    (fun (d : Attribution.dest_attr) ->
      checkb "straggler is beyond p95" true
        (d.Attribution.tail > attr.Attribution.tails.Attribution.p95))
    late;
  (* stragglers lead the per_dest ranking *)
  match (late, attr.Attribution.per_dest) with
  | d :: _, d' :: _ -> checki "slowest straggler ranks first" d'.Attribution.dest d.Attribution.dest
  | _ -> Alcotest.fail "empty ranking"

(* Flamegraph lines re-sum to the aggregate decomposition (integer
   microseconds, so each emitted or omitted line may round by 0.5us). *)
let check_flamegraph_totals () =
  let traced = Runner.run (with_trace flat_scenario) in
  let attr = get_attr "flame" traced in
  let folded = Attribution.to_flamegraph ~mode:Attribution.Flame_aggregate attr in
  checkb "flamegraph non-empty" true (String.length folded > 0);
  let lines = String.split_on_char '\n' folded in
  let lines = List.filter (fun l -> l <> "") lines in
  let sums = Hashtbl.create 4 in
  let n_lines = ref 0 in
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed flame line %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let value =
          float_of_string (String.sub line (i + 1) (String.length line - i - 1))
        in
        checkb "value is whole microseconds" true (Float.is_integer value);
        incr n_lines;
        (match String.split_on_char ';' stack with
        | [ _router; comp ] ->
          Hashtbl.replace sums comp
            (value +. Option.value ~default:0.0 (Hashtbl.find_opt sums comp))
        | _ -> Alcotest.failf "expected router;component, got %S" stack))
    lines;
  let near_us msg expect got =
    (* 0.5us rounding per line, summed *)
    let tolerance = 0.5 *. float_of_int !n_lines in
    if Float.abs (expect -. got) > tolerance then
      Alcotest.failf "%s: expected %f (+/- %f), got %f" msg expect tolerance got
  in
  let sum_of comp = Option.value ~default:0.0 (Hashtbl.find_opt sums comp) in
  List.iter
    (fun comp ->
      near_us
        (Printf.sprintf "flame %s total" comp)
        (Attribution.component attr.Attribution.aggregate comp *. 1e6)
        (sum_of comp))
    Attribution.component_names

(* Merge over finalized per-trial trace files equals merging the in-memory
   attributions, and a jobs=4 traced sweep is bit-identical to jobs=1. *)
let check_merge_and_jobs () =
  let module Sweep = Bgp_experiments.Sweep in
  let dir = Filename.temp_file "bgpsim_merge" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let cleanup () = rm_rf dir in
  Fun.protect ~finally:cleanup (fun () ->
      let trials = 4 in
      let sweep jobs sub =
        Sys.mkdir (Filename.concat dir sub) 0o755;
        let base = Filename.concat (Filename.concat dir sub) "trace.jsonl" in
        Sweep.traced_results ~jobs ~spill_base:base flat_scenario ~trials
      in
      let seq = sweep 1 "seq" and par = sweep 4 "par" in
      let trials_of runs =
        List.mapi
          (fun i (r, _) ->
            {
              Attribution.trial_seed = flat_scenario.Runner.seed + i;
              attr = get_attr "merge" r;
            })
          runs
      in
      let seq_trials = trials_of seq and par_trials = trials_of par in
      (* jobs=4 == jobs=1, per trial and merged *)
      List.iter2
        (fun a b ->
          Alcotest.check Alcotest.string "per-trial attr identical across jobs"
            (Attribution.to_json a.Attribution.attr)
            (Attribution.to_json b.Attribution.attr))
        seq_trials par_trials;
      let m_seq = Attribution.merge seq_trials in
      let m_par = Attribution.merge par_trials in
      Alcotest.check Alcotest.string "merged json identical across jobs"
        (Attribution.merged_to_json m_seq)
        (Attribution.merged_to_json m_par);
      (* finalize the parallel sweep's traces and re-analyze from files *)
      List.iteri
        (fun i ((r : Runner.result), trace) ->
          let attr = get_attr "finalize" r in
          Trace.finalize trace
            ~meta:
              {
                Trace.seed = flat_scenario.Runner.seed + i;
                t_fail = attr.Attribution.t_fail;
              })
        par;
      let paths = Path.create_table () in
      let from_files =
        List.map
          (fun (_, trace) ->
            let file = Option.get (Trace.spill_path trace) in
            match Trace.read_file ~paths file with
            | Ok (Some meta, events) ->
              {
                Attribution.trial_seed = meta.Trace.seed;
                attr = Attribution.analyze ~t_fail:meta.Trace.t_fail events;
              }
            | Ok (None, _) -> Alcotest.failf "finalized file %s lost its meta line" file
            | Error m -> Alcotest.failf "read_file failed: %s" m)
          par
      in
      (* file-based analyses equal the in-memory union, trial by trial *)
      List.iter2
        (fun (a : Attribution.trial) (b : Attribution.trial) ->
          checki "merge seed" a.Attribution.trial_seed b.Attribution.trial_seed;
          Alcotest.check Alcotest.string "file analysis = in-memory analysis"
            (Attribution.to_json a.Attribution.attr)
            (Attribution.to_json b.Attribution.attr))
        seq_trials from_files;
      let m_files = Attribution.merge from_files in
      Alcotest.check Alcotest.string "merged-from-files json identical"
        (Attribution.merged_to_json m_seq)
        (Attribution.merged_to_json m_files))

(* Damping causality: a reuse re-announcement must carry the cause of the
   update whose processing parked the route, not restart at no_cause —
   so the only causal roots in a damped post-failure trace are the
   failure injections themselves. *)
let damping_scenario =
  (* aggressive thresholds so suppression (and hence reuse) actually
     happens inside a short run *)
  let damping =
    {
      Bgp_core.Damping.withdraw_penalty = 1.0;
      update_penalty = 1.0;
      half_life = 4.0;
      cut_threshold = 1.0;
      reuse_threshold = 0.75;
      max_suppress = 60.0;
    }
  in
  Runner.scenario
    ~net:
      (Network.config_default
         Config.{ (with_mrai (Static 1.25) default) with damping = Some damping })
    ~failure:(Runner.Fraction 0.2) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let check_damping_causality () =
  let trace = Trace.create ~capacity:1_000_000 () in
  let scenario =
    {
      damping_scenario with
      Runner.net = { damping_scenario.Runner.net with Network.trace = Some trace };
    }
  in
  let result = Runner.run scenario in
  let attr = get_attr "damping" result in
  let t_fail = attr.Attribution.t_fail in
  let post =
    List.filter (fun e -> Trace.time_of e >= t_fail) (Trace.events trace)
  in
  checkb "damping run produced post-failure events" true (post <> []);
  (* every causal root after the failure is a failure event: reuse
     re-announcements no longer restart chains at no_cause *)
  List.iter
    (fun e ->
      if Trace.cause_of e = Trace.no_cause then
        match e with
        | Trace.Router_failed _ | Trace.Session_down _ -> ()
        | _ ->
          Alcotest.failf "orphaned causal root: %s" (Trace.event_to_json e))
    post;
  checkb "damped attribution complete" true attr.Attribution.complete;
  (* the scenario must actually exercise a reuse: some event's cause
     precedes it by several seconds — the suppression wait threaded
     through the reuse timer (MRAI gaps are capped at 1.25 s here, so a
     > 2 s gap can only be a damping reuse) *)
  let by_id = Hashtbl.create 1024 in
  List.iter (fun e -> Hashtbl.replace by_id (Trace.id_of e) e) (Trace.events trace);
  let reuse_gaps =
    List.filter
      (fun e ->
        match Hashtbl.find_opt by_id (Trace.cause_of e) with
        | Some c -> Trace.time_of e -. Trace.time_of c > 2.0
        | None -> false)
      post
  in
  checkb "a suppressed update was released with its cause intact" true
    (reuse_gaps <> [])

(* Attribution under chaos (pinned seeds): injected faults — partitions
   that heal, flapping sessions — become causal roots of their own, the
   component decomposition still telescopes exactly to the measured
   delay, and no post-failure chain is orphaned. *)
module Fi = Bgp_netsim.Fault_injector
module Failure = Bgp_topology.Failure

let live_sessions topo failure =
  List.filter_map
    (fun (u, v, _) ->
      if Failure.is_failed failure u || Failure.is_failed failure v then None
      else Some (if u <= v then (u, v) else (v, u)))
    (Network.sessions_of_topology topo)

let partition_schedule _topo failure =
  let side = List.filteri (fun i _ -> i < 3) (Failure.survivors failure) in
  [ { Fi.at = 0.3; fault = Fi.Partition { side; heal_after = 1.5 } } ]

let reset_schedule topo failure =
  let live = live_sessions topo failure in
  let u, v = List.nth live 0 in
  let u2, v2 = List.nth live (7 mod List.length live) in
  [
    { Fi.at = 0.2; fault = Fi.Session_reset { u; v; recover_after = 0.8 } };
    { Fi.at = 0.6; fault = Fi.Session_reset { u = u2; v = v2; recover_after = 1.0 } };
  ]

let check_chaos_attr name mk_schedule () =
  List.iter
    (fun seed ->
      let scenario = { flat_scenario with Runner.seed } in
      let topo = Runner.topology_of scenario in
      let failure = Runner.failure_of scenario topo in
      let schedule = mk_schedule topo failure in
      (match Fi.validate ~n:(Topology.num_routers topo) ~horizon:6.0 schedule with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s seed %d: bad pinned schedule: %s" name seed m);
      let trace = Trace.create ~capacity:500_000 () in
      let scenario =
        {
          scenario with
          Runner.faults = Some schedule;
          net = { scenario.Runner.net with Network.trace = Some trace };
        }
      in
      let result = Runner.run scenario in
      let ctx field = Printf.sprintf "%s seed %d: %s" name seed field in
      checkb (ctx "converged") true result.Runner.converged;
      let attr = get_attr (ctx "attribution") result in
      checkb (ctx "complete under chaos") true attr.Attribution.complete;
      exactf (ctx "attr delay = result delay") result.Runner.convergence_delay
        attr.Attribution.convergence_delay;
      nearf (ctx "components sum to delay under chaos")
        result.Runner.convergence_delay
        (Attribution.total attr.Attribution.totals);
      let events = Trace.events trace in
      checkb (ctx "fault roots recorded") true
        (List.exists (function Trace.Fault _ -> true | _ -> false) events);
      (* every post-failure causal root is an injection: the original
         failure or a chaos fault — chaos adds roots, never orphans *)
      let t_fail = attr.Attribution.t_fail in
      List.iter
        (fun e ->
          if Trace.time_of e >= t_fail && Trace.cause_of e = Trace.no_cause then
            match e with
            | Trace.Router_failed _ | Trace.Session_down _ | Trace.Fault _ -> ()
            | _ ->
              Alcotest.failf "%s seed %d: orphaned causal root: %s" name seed
                (Trace.event_to_json e))
        events;
      (* per-destination tails telescope too *)
      List.iter
        (fun (d : Attribution.dest_attr) ->
          if d.Attribution.dest_complete then
            nearf
              (ctx (Printf.sprintf "dest %d tail telescopes" d.Attribution.dest))
              d.Attribution.tail
              (Attribution.total d.Attribution.dest_parts))
        attr.Attribution.per_dest)
    [ 3; 4; 5 ]

let () =
  Alcotest.run "attribution"
    [
      ( "golden-invariants",
        [
          Alcotest.test_case "flat 70-30 (4 seeds)" `Quick
            (check_family "flat" flat_scenario);
          Alcotest.test_case "realistic 16-AS (4 seeds)" `Quick
            (check_family "realistic" realistic_scenario);
          Alcotest.test_case "Tdown ring (4 seeds)" `Quick
            (check_family "tdown" tdown_scenario);
        ] );
      ( "per-destination",
        [
          Alcotest.test_case "stragglers beyond p95" `Quick check_stragglers;
          Alcotest.test_case "flamegraph totals = aggregate" `Quick
            check_flamegraph_totals;
          Alcotest.test_case "merge: files = memory, jobs=4 = jobs=1" `Quick
            check_merge_and_jobs;
          Alcotest.test_case "damping reuse keeps its cause" `Quick
            check_damping_causality;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "partition-heal keeps exact telescoping" `Quick
            (check_chaos_attr "partition" partition_schedule);
          Alcotest.test_case "session flaps keep exact telescoping" `Quick
            (check_chaos_attr "reset" reset_schedule);
        ] );
      ( "serialization",
        [
          Alcotest.test_case "spill round-trip" `Quick check_spill_roundtrip;
          Alcotest.test_case "drop counting without sink" `Quick
            check_drop_counting;
          Alcotest.test_case "event JSONL round-trip" `Quick
            check_event_roundtrip;
          Alcotest.test_case "analyze JSON self-consistency" `Quick
            check_attr_json;
          Alcotest.test_case "bench report attribution" `Quick
            check_bench_report_roundtrip;
        ] );
    ]
