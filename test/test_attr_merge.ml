(* The streaming merge (Attr_merge over bgp-attr-sidecar/1 sidecars)
   against the in-memory reference (Attribution.merge over re-parsed
   traces).

   The contract under test: (1) a sidecar is a lossless cache of its
   trial's attribution — write/read round-trips bit-exactly; (2) over a
   pinned 20-trial campaign the streamed component sums, aggregates and
   mean delay are bit-equal to the reference merge, and the histogram
   tail percentiles land within one bucket of the exact nearest-rank
   ones; (3) the fold is independent of the pool's job count; (4) when
   sidecars are present the raw trace JSONL is never read — proven by
   corrupting every trace and merging anyway — while missing sidecars
   fall back to re-parse and unreadable files are counted, never
   silently dropped. *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Attr_merge = Bgp_netsim.Attr_merge
module Delay_hist = Bgp_netsim.Delay_hist
module Sweep = Bgp_experiments.Sweep
module Config = Bgp_proto.Config
module Path = Bgp_proto.Path
module Degree_dist = Bgp_topology.Degree_dist

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let exactf msg = Alcotest.check (Alcotest.float 0.0) msg

let scenario =
  Runner.scenario
    ~net:(Network.config_default Config.(with_mrai (Static 0.5) default))
    ~failure:(Runner.Fraction 0.1) ~seed:3
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 24 })

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "bgpsim_attr_merge_%d_%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* One pinned-seed campaign shared by the equivalence tests: 20 traced
   trials, finalized with sidecars. *)
let campaign =
  lazy
    (let dir = fresh_dir () in
     let _results, sidecars =
       Sweep.traced_archived ~spill_base:(Filename.concat dir "t.jsonl") scenario
         ~trials:20
     in
     (dir, sidecars))

(* The reference answer: re-parse every finalized trace, re-run the
   attribution, Attribution.merge — the path analyze --merge used before
   sidecars existed. *)
let reference dir =
  let paths = Path.create_table () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  Attribution.merge
    (List.map
       (fun file ->
         match Trace.read_file ~paths file with
         | Ok (Some meta, events) ->
           {
             Attribution.trial_seed = meta.Trace.seed;
             attr = Attribution.analyze ~t_fail:meta.Trace.t_fail events;
           }
         | Ok (None, _) -> Alcotest.failf "%s: no meta line" file
         | Error m -> Alcotest.fail m)
       files)

let streamed ?jobs ?reparse dir =
  let acc = Attr_merge.create () in
  Attr_merge.load ?jobs acc (Attr_merge.plan ?reparse dir);
  acc

let check_components msg (a : Attribution.components) (b : Attribution.components) =
  exactf (msg ^ ".queueing") a.Attribution.queueing b.Attribution.queueing;
  exactf (msg ^ ".processing") a.Attribution.processing b.Attribution.processing;
  exactf (msg ^ ".mrai_hold") a.Attribution.mrai_hold b.Attribution.mrai_hold;
  exactf (msg ^ ".propagation") a.Attribution.propagation b.Attribution.propagation

(* --- sidecar round-trip --------------------------------------------------- *)

let test_sidecar_roundtrip () =
  let trace = Trace.create ~capacity:500_000 () in
  let s =
    { scenario with Runner.net = { scenario.Runner.net with Network.trace = Some trace } }
  in
  let r = Runner.run s in
  let attr = Option.get r.Runner.attribution in
  let sc = Attribution.sidecar_of ~violations:[ "queue_drain" ] ~seed:s.Runner.seed attr in
  Trace.close trace;
  let sc' =
    match Attribution.sidecar_of_json (Attribution.sidecar_to_json sc) with
    | Ok sc' -> sc'
    | Error m -> Alcotest.fail m
  in
  checki "seed" sc.Attribution.sc_seed sc'.Attribution.sc_seed;
  exactf "t_fail" sc.Attribution.sc_t_fail sc'.Attribution.sc_t_fail;
  exactf "delay" sc.Attribution.sc_delay sc'.Attribution.sc_delay;
  checkb "complete" sc.Attribution.sc_complete sc'.Attribution.sc_complete;
  checki "events" sc.Attribution.sc_events sc'.Attribution.sc_events;
  check_components "totals" sc.Attribution.sc_totals sc'.Attribution.sc_totals;
  check_components "aggregate" sc.Attribution.sc_aggregate sc'.Attribution.sc_aggregate;
  checki "by_router size"
    (List.length sc.Attribution.sc_by_router)
    (List.length sc'.Attribution.sc_by_router);
  List.iter2
    (fun (r, c) (r', c') ->
      checki "router" r r';
      check_components (Printf.sprintf "router %d" r) c c')
    sc.Attribution.sc_by_router sc'.Attribution.sc_by_router;
  checki "dests" (List.length sc.Attribution.sc_dests) (List.length sc'.Attribution.sc_dests);
  List.iter2
    (fun (d : Attribution.sidecar_dest) (d' : Attribution.sidecar_dest) ->
      checki "dest" d.Attribution.sd_dest d'.Attribution.sd_dest;
      exactf "tail" d.Attribution.sd_tail d'.Attribution.sd_tail;
      checkb "dest complete" d.Attribution.sd_complete d'.Attribution.sd_complete;
      check_components "dest parts" d.Attribution.sd_parts d'.Attribution.sd_parts)
    sc.Attribution.sc_dests sc'.Attribution.sc_dests;
  Alcotest.(check (list string))
    "violations" sc.Attribution.sc_violations sc'.Attribution.sc_violations

let test_sidecar_path () =
  checks "path" "/x/t.seed7.attr.json" (Attribution.sidecar_path "/x/t.seed7.jsonl");
  checkb "is sidecar" true (Attribution.is_sidecar_path "t.seed7.attr.json");
  checkb "trace is not sidecar" false (Attribution.is_sidecar_path "t.seed7.jsonl")

(* --- histogram ------------------------------------------------------------ *)

let test_hist_buckets () =
  checki "zero underflows" 0 (Delay_hist.bucket_of 0.0);
  checki "below lo underflows" 0 (Delay_hist.bucket_of 1e-9);
  checkb "overflow is last" true (Delay_hist.bucket_of 1e9 = Delay_hist.n_buckets - 1);
  (* Monotone: a bigger sample never lands in an earlier bucket. *)
  let prev = ref (-1) in
  for i = 0 to 200 do
    let v = 1e-6 *. (1.12 ** float_of_int i) in
    let b = Delay_hist.bucket_of v in
    checkb "monotone" true (b >= !prev);
    prev := b
  done;
  (* The representative value of a bucket maps back into that bucket. *)
  for i = 1 to Delay_hist.n_buckets - 2 do
    checki "midpoint stays" i (Delay_hist.bucket_of (Delay_hist.midpoint i))
  done

let test_hist_percentile_error () =
  let t = Delay_hist.create () in
  let samples = List.init 1000 (fun i -> 0.001 *. float_of_int (i + 1)) in
  List.iter (Delay_hist.add t) samples;
  checki "count" 1000 (Delay_hist.count t);
  (* Nearest-rank exact percentiles on the sorted list vs histogram. *)
  List.iter
    (fun q ->
      let exact = List.nth samples (int_of_float (ceil (q *. 1000.)) - 1) in
      let approx = Delay_hist.percentile t q in
      let rel = Float.abs (approx -. exact) /. exact in
      checkb
        (Printf.sprintf "p%.0f rel err %.4f within bound" (q *. 100.) rel)
        true
        (rel <= 0.0182);
      checkb
        (Printf.sprintf "p%.0f within one bucket" (q *. 100.))
        true
        (abs (Delay_hist.bucket_of approx - Delay_hist.bucket_of exact) <= 1))
    [ 0.5; 0.95; 0.99 ]

let test_hist_merge_json () =
  let a = Delay_hist.create () and b = Delay_hist.create () in
  List.iter (Delay_hist.add a) [ 0.1; 0.2; 3.0 ];
  List.iter (Delay_hist.add b) [ 0.15; 40.0 ];
  Delay_hist.merge_into ~into:a b;
  checki "merged count" 5 (Delay_hist.count a);
  match Delay_hist.of_json (Bgp_netsim.Json_lite.parse (Delay_hist.to_json a)) with
  | exception Bgp_netsim.Json_lite.Bad m -> Alcotest.fail m
  | a' ->
    checki "roundtrip count" 5 (Delay_hist.count a');
    Alcotest.(check (array int)) "roundtrip buckets" (Delay_hist.counts a)
      (Delay_hist.counts a')

(* --- equivalence over the pinned campaign --------------------------------- *)

let test_equivalence () =
  let dir, sidecars = Lazy.force campaign in
  checki "20 sidecars written" 20 (List.length sidecars);
  let ref_m = reference dir in
  let acc = streamed ~jobs:1 dir in
  let r = Attr_merge.report acc in
  checki "trials" ref_m.Attribution.n_trials r.Attr_merge.r_trials;
  checki "all from sidecars" 20 r.Attr_merge.r_from_sidecars;
  checki "none reparsed" 0 r.Attr_merge.r_reparsed;
  checki "none skipped" 0 r.Attr_merge.r_skipped;
  (* Bit-equal: same float additions in the same (stem-sorted) order,
     through a %.17g round-trip. *)
  exactf "mean delay" ref_m.Attribution.mean_delay r.Attr_merge.r_mean_delay;
  check_components "totals" ref_m.Attribution.merged_totals r.Attr_merge.r_totals;
  check_components "aggregate" ref_m.Attribution.merged_aggregate r.Attr_merge.r_aggregate;
  checki "pooled dests" ref_m.Attribution.pooled_tails.Attribution.n_dests
    r.Attr_merge.r_dests;
  (* Histogram percentiles within one bucket of the exact nearest-rank. *)
  List.iter
    (fun (name, exact, approx) ->
      checkb
        (Printf.sprintf "%s within one bucket (exact %.4f, hist %.4f)" name exact approx)
        true
        (abs (Delay_hist.bucket_of approx - Delay_hist.bucket_of exact) <= 1))
    [
      ("p50", ref_m.Attribution.pooled_tails.Attribution.p50, r.Attr_merge.r_p50);
      ("p95", ref_m.Attribution.pooled_tails.Attribution.p95, r.Attr_merge.r_p95);
      ("p99", ref_m.Attribution.pooled_tails.Attribution.p99, r.Attr_merge.r_p99);
    ];
  (* Stragglers: same (seed, dest, tail) board, slowest first. *)
  let ref_worst =
    List.filteri (fun i _ -> i < 5) ref_m.Attribution.worst
    |> List.map (fun (seed, (d : Attribution.dest_attr)) ->
           (seed, d.Attribution.dest, d.Attribution.tail))
  in
  let stream_worst =
    List.filteri (fun i _ -> i < 5) r.Attr_merge.r_stragglers
    |> List.map (fun (s : Attr_merge.straggler) ->
           (s.Attr_merge.seed, s.Attr_merge.dest, s.Attr_merge.tail))
  in
  List.iter2
    (fun (s, d, t) (s', d', t') ->
      checki "straggler seed" s s';
      checki "straggler dest" d d';
      exactf "straggler tail" t t')
    ref_worst stream_worst

let test_jobs_invariance () =
  let dir, _ = Lazy.force campaign in
  let j1 = Attr_merge.to_json (streamed ~jobs:1 dir) in
  let j4 = Attr_merge.to_json (streamed ~jobs:4 dir) in
  checks "jobs=4 == jobs=1" j1 j4

let test_reparse_equivalence () =
  (* --reparse forces the trace path; component sums must still be
     bit-equal (the sidecar is a cache, not an approximation). *)
  let dir, _ = Lazy.force campaign in
  let side = Attr_merge.report (streamed dir) in
  let re = Attr_merge.report (streamed ~reparse:true dir) in
  checki "all reparsed" 20 re.Attr_merge.r_reparsed;
  check_components "totals" side.Attr_merge.r_totals re.Attr_merge.r_totals;
  exactf "mean" side.Attr_merge.r_mean_delay re.Attr_merge.r_mean_delay;
  exactf "p99" side.Attr_merge.r_p99 re.Attr_merge.r_p99

(* --- sidecars bypass the trace JSONL entirely ----------------------------- *)

let copy_campaign () =
  let src, _ = Lazy.force campaign in
  let dst = fresh_dir () in
  Array.iter
    (fun f ->
      let contents =
        In_channel.with_open_bin (Filename.concat src f) In_channel.input_all
      in
      Out_channel.with_open_bin (Filename.concat dst f) (fun oc ->
          Out_channel.output_string oc contents))
    (Sys.readdir src);
  dst

let test_no_trace_reread () =
  let dir = copy_campaign () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let reference = Attr_merge.to_json (streamed dir) in
  (* Destroy every trace file.  If the sidecar path touched the JSONL at
     all, the merge would now skip or fail; it must not even notice. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".jsonl" then
        Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
            Out_channel.output_string oc "{TRUNCATED MID-EVENT"))
    (Sys.readdir dir);
  let acc = streamed dir in
  let r = Attr_merge.report acc in
  checki "trials" 20 r.Attr_merge.r_trials;
  checki "skipped" 0 r.Attr_merge.r_skipped;
  checks "identical to pre-corruption merge" reference (Attr_merge.to_json acc)

let test_fallback_and_skip () =
  let dir = copy_campaign () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sidecars =
    Sys.readdir dir |> Array.to_list
    |> List.filter Attribution.is_sidecar_path
    |> List.sort String.compare
  in
  (* Trial 0: sidecar deleted -> falls back to re-parsing its trace.
     Trial 1: sidecar corrupted and trace deleted -> skipped, reported. *)
  let s0 = List.nth sidecars 0 and s1 = List.nth sidecars 1 in
  Sys.remove (Filename.concat dir s0);
  Out_channel.with_open_bin (Filename.concat dir s1) (fun oc ->
      Out_channel.output_string oc "not json");
  let stem f = Filename.chop_suffix f ".attr.json" in
  Sys.remove (Filename.concat dir (stem s1 ^ ".jsonl"));
  let acc = streamed dir in
  let r = Attr_merge.report acc in
  checki "trials" 19 r.Attr_merge.r_trials;
  checki "from sidecars" 18 r.Attr_merge.r_from_sidecars;
  checki "reparsed" 1 r.Attr_merge.r_reparsed;
  checki "skipped" 1 r.Attr_merge.r_skipped;
  (match r.Attr_merge.r_first_error with
  | Some e -> checkb (Printf.sprintf "first error names the file: %s" e) true (contains e s1)
  | None -> Alcotest.fail "expected a first_error");
  (* The skip surfaces in the JSON artifact too. *)
  checkb "json reports skip" true (contains (Attr_merge.to_json acc) "\"skipped\":1")

let test_plan_prefers_sidecars () =
  let dir, _ = Lazy.force campaign in
  let items = Attr_merge.plan dir in
  checki "one item per stem" 20 (List.length items);
  List.iter
    (function
      | Attr_merge.Use_sidecar p ->
        checkb "sidecar path" true (Attribution.is_sidecar_path p)
      | Attr_merge.Use_trace p -> Alcotest.failf "unexpected trace item %s" p)
    items;
  let forced = Attr_merge.plan ~reparse:true dir in
  List.iter
    (function
      | Attr_merge.Use_trace p ->
        checkb "trace path" true (Filename.check_suffix p ".jsonl")
      | Attr_merge.Use_sidecar p -> Alcotest.failf "unexpected sidecar item %s" p)
    forced

let () =
  Alcotest.run "attr_merge"
    [
      ( "sidecar",
        [
          Alcotest.test_case "roundtrip is bit-exact" `Quick test_sidecar_roundtrip;
          Alcotest.test_case "path derivation" `Quick test_sidecar_path;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket layout" `Quick test_hist_buckets;
          Alcotest.test_case "percentile error bound" `Quick test_hist_percentile_error;
          Alcotest.test_case "merge and json" `Quick test_hist_merge_json;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "streamed == reference merge" `Slow test_equivalence;
          Alcotest.test_case "independent of jobs" `Slow test_jobs_invariance;
          Alcotest.test_case "reparse path agrees" `Slow test_reparse_equivalence;
        ] );
      ( "sources",
        [
          Alcotest.test_case "sidecars bypass trace JSONL" `Slow test_no_trace_reread;
          Alcotest.test_case "fallback and skip accounting" `Slow test_fallback_and_skip;
          Alcotest.test_case "plan prefers sidecars" `Slow test_plan_prefers_sidecars;
        ] );
    ]
