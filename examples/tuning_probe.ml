(* probe clique Tdown behavior *)
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Graph = Bgp_topology.Graph
module Topology = Bgp_topology.Topology
let clique n =
  let g = Graph.create n in
  for u = 0 to n-1 do for v = u+1 to n-1 do Graph.add_edge g u v done done;
  Topology.of_graph (Bgp_engine.Rng.create 9) g
let () =
  List.iter (fun n ->
    let cfg = { Config.(with_mrai (Static 2.0) default) with Config.mrai_jitter = false } in
    let scenario = Runner.scenario ~net:(Network.config_default cfg)
      ~failure:(Runner.Routers [ n-1 ]) ~seed:1 (Runner.Fixed (clique n)) in
    let r = Runner.run scenario in
    Printf.printf "clique n=%2d: Tdown conv=%6.2f s msgs=%5d (MRAI=2, (n-3)*MRAI=%g)\n%!"
      n r.Bgp_netsim.Runner.convergence_delay r.Bgp_netsim.Runner.messages (float (n-3) *. 2.))
    [5;6;8;10;12]
