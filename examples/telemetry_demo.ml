(* Telemetry demo: watch the dynamic MRAI controller react to overload.

   Runs one 10% failure on a 60-router flat topology with the paper's
   dynamic MRAI scheme and 0.5 s telemetry probes, then prints two
   aligned time series from the run's telemetry report: total unfinished
   queue work across the network, and the highest MRAI level any router
   sits at.  The point of Section 4.3 is visible directly — the level
   steps up as queue work peaks and back down as it drains — along with
   the network-wide convergence-progress series.

   Run with:  dune exec examples/telemetry_demo.exe *)

module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Telemetry = Bgp_netsim.Telemetry
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Degree_dist = Bgp_topology.Degree_dist

let () =
  let config = Config.(with_mrai (Mrai.paper_dynamic ()) default) in
  let net =
    {
      (Network.config_default config) with
      Network.telemetry = Some (Telemetry.config ~probe_interval:0.5 ());
    }
  in
  let scenario =
    Runner.scenario ~net ~failure:(Runner.Fraction 0.1) ~seed:7
      (Runner.Flat { spec = Degree_dist.skewed_70_30; n = 60 })
  in
  Fmt.pr "60 routers, 10%% contiguous failure, dynamic MRAI, probes every 0.5 s@.@.";
  let result = Runner.run scenario in
  let report =
    match result.Runner.report with Some r -> r | None -> assert false
  in
  Fmt.pr "converged in %.1f s; %a@.@." result.Runner.convergence_delay
    Telemetry.pp_summary report;
  (* Collapse the per-router samples into one row per probe tick. *)
  let module M = Map.Make (Float) in
  let ticks =
    Array.fold_left
      (fun acc (s : Telemetry.sample) ->
        let work, level =
          Option.value (M.find_opt s.Telemetry.time acc) ~default:(0.0, 0)
        in
        M.add s.Telemetry.time
          ( work +. s.Telemetry.row.Telemetry.unfinished_work,
            Stdlib.max level s.Telemetry.row.Telemetry.mrai_level )
          acc)
      M.empty report.Telemetry.samples
  in
  let progress_at time =
    Array.fold_left
      (fun acc (p : Telemetry.series_point) ->
        if p.Telemetry.time <= time +. 1e-9 then p.Telemetry.value else acc)
      0.0 report.Telemetry.progress
  in
  let max_work =
    M.fold (fun _ (work, _) acc -> Float.max acc work) ticks 0.001
  in
  let t0 = Option.value report.Telemetry.t_fail ~default:0.0 in
  Fmt.pr "  t-t_fail   queue work (s)                            MRAI  progress@.";
  M.iter
    (fun time (work, level) ->
      let bar = int_of_float (40.0 *. work /. max_work) in
      Fmt.pr "  %7.1f s  %6.2f %-40s L%d    %3.0f%%@." (time -. t0) work
        (String.make bar '#') level
        (100.0 *. progress_at time))
    ticks;
  Fmt.pr "@.counters:@.";
  List.iter
    (fun (name, _, value) -> Fmt.pr "  %-24s %12.0f@." name value)
    report.Telemetry.counters
