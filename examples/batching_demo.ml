(* Batching demo: watch the paper's Section 4.4 mechanism at message level.

   A router under overload receives interleaved update bursts for many
   destinations.  With the default FIFO queue it exports stale routes when
   its MRAI timers fire mid-queue; with the batched per-destination queue
   the stale messages are eliminated and same-destination updates complete
   together.

   Run with:  dune exec examples/batching_demo.exe *)

module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Types = Bgp_proto.Types
module Config = Bgp_proto.Config
module Router = Bgp_proto.Router
module Iq = Bgp_core.Input_queue

let burst router ~paths ~from_peer ~dests ~rounds =
  (* Each round re-advertises every destination with a different path, so
     every earlier round's message is stale by the time the next lands. *)
  for round = 1 to rounds do
    List.iter
      (fun dest ->
        let path =
          Bgp_proto.Path.of_list paths
            (if round mod 2 = 0 then [ from_peer; dest ] else [ from_peer; 77; dest ])
        in
        Router.receive router ~src:from_peer (Types.Advertise { dest; path }))
      dests
  done

let run_once discipline =
  let sched = Sched.create () in
  let sent = ref 0 in
  let cb =
    { Router.send = (fun ~src:_ ~dst:_ _ -> incr sent); activity = (fun ~time:_ -> ()) }
  in
  let config =
    {
      Config.default with
      Config.mrai_scheme = Static 0.5;
      queue_discipline = discipline;
      mrai_jitter = false;
    }
  in
  let paths = Bgp_proto.Path.create_table () in
  let router =
    Router.create ~sched ~rng:(Rng.create 7) ~paths ~config ~id:0 ~asn:0 ~degree:2 cb
  in
  Router.add_peer router ~peer:1 ~peer_as:1 ~kind:Types.Ebgp ();
  Router.add_peer router ~peer:2 ~peer_as:2 ~kind:Types.Ebgp ();
  Router.start router;
  Sched.run sched;
  sent := 0;
  let dests = List.init 30 (fun i -> 100 + i) in
  burst router ~paths ~from_peer:1 ~dests ~rounds:6;
  Sched.run sched;
  let m = Router.metrics router in
  (!sent, m.Router.msgs_processed, m.Router.eliminated)

let () =
  Fmt.pr "one overloaded router, 6 stale-making update rounds over 30 destinations@.@.";
  List.iter
    (fun (name, discipline) ->
      let sent, processed, eliminated = run_once discipline in
      Fmt.pr "%-12s sent %4d updates, processed %4d, eliminated %4d stale@." name sent
        processed eliminated)
    [ ("fifo", Iq.Fifo); ("fifo-dedup", Iq.Fifo_dedup); ("batched", Iq.Batched) ];
  Fmt.pr
    "@.Batching processes each destination's queue back-to-back and deletes@.\
     superseded updates from the same neighbour, so fewer invalid routes are@.\
     exported and less CPU is burned (paper Figs 10-12).@."
