(* Convergence anatomy: dissect one failure event with the trace subsystem.

   Runs a 30-node network with a 10% regional failure and an attached
   event trace, then reads the story out of the trace: when the sessions
   dropped, how the update storm ramped and decayed per second, and which
   routers carried the load (the paper's Section 4.1 point: the
   high-degree nodes receive the most messages and get overloaded first).

   Run with:  dune exec examples/convergence_anatomy.exe *)

module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Graph = Bgp_topology.Graph
module Topology = Bgp_topology.Topology
module Degree_dist = Bgp_topology.Degree_dist
module Failure = Bgp_topology.Failure
module Config = Bgp_proto.Config
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace

let () =
  let rng = Rng.create 11 in
  let topo = Topology.flat rng ~spec:Degree_dist.skewed_70_30 ~n:30 in
  let trace = Trace.create () in
  let config =
    {
      (Network.config_default Config.(with_mrai (Static 0.5) default)) with
      Network.trace = Some trace;
    }
  in
  let sched = Sched.create () in
  let net = Network.build ~sched ~rng:(Rng.create 12) ~config topo in
  Network.start_all net;
  Sched.run sched;
  Trace.clear trace;
  let t_fail = Sched.now sched in
  let failure = Failure.contiguous topo ~fraction:0.10 in
  Network.inject_failure net failure;
  Sched.run sched;
  let t_end = Sched.now sched in
  Fmt.pr "failure at t=%.1f s: %d routers died; re-converged by t=%.1f s@.@." t_fail
    failure.Failure.count t_end;
  (* Session drops. *)
  let drops =
    List.filter_map
      (function
        | Trace.Session_down { time; router; peer; _ } -> Some (time, router, peer)
        | _ -> None)
      (Trace.to_list trace)
  in
  Fmt.pr "%d surviving routers observed a session drop:@." (List.length drops);
  List.iteri
    (fun i (time, router, peer) ->
      if i < 5 then Fmt.pr "  t=%.3f: router %d lost its session to %d@." time router peer)
    drops;
  if List.length drops > 5 then Fmt.pr "  ...@.";
  (* The update storm, second by second. *)
  Fmt.pr "@.update storm (messages sent per second after the failure):@.";
  let seconds = int_of_float (Float.ceil (t_end -. t_fail)) in
  for s = 0 to Stdlib.min 14 (seconds - 1) do
    let lo = t_fail +. float_of_int s and hi = t_fail +. float_of_int (s + 1) in
    let sent =
      List.length
        (List.filter
           (function Trace.Update_sent _ -> true | _ -> false)
           (Trace.between trace ~lo ~hi))
    in
    Fmt.pr "  t+%2d s: %5d %s@." s sent (String.make (Stdlib.min 60 (sent / 20)) '#')
  done;
  (* Who carried the load. *)
  Fmt.pr "@.busiest senders vs their degree:@.";
  List.iteri
    (fun i (router, count) ->
      if i < 8 then
        Fmt.pr "  router %3d (degree %2d): %5d updates@." router
          (Graph.degree topo.Topology.graph router)
          count)
    (Trace.sends_by_router trace);
  Fmt.pr
    "@.The highest-degree routers dominate the storm -- the observation behind@.\
     the paper's degree-dependent MRAI (Section 4.2).@.";
  (* Per-destination anatomy: which prefixes dragged the tail, and why. *)
  let module Attribution = Bgp_netsim.Attribution in
  let attr = Attribution.analyze ~t_fail (Trace.events trace) in
  Fmt.pr
    "@.%d destinations re-converged (tail p50 %.2f s, p95 %.2f s); the 5 slowest:@."
    attr.Attribution.tails.Attribution.n_dests attr.Attribution.tails.Attribution.p50
    attr.Attribution.tails.Attribution.p95;
  List.iteri
    (fun i (d : Attribution.dest_attr) ->
      if i < 5 then
        Fmt.pr "  dest %3d: %5.2f s tail over %3d hops, mostly %s@." d.Attribution.dest
          d.Attribution.tail
          (List.length d.Attribution.dest_path)
          (Attribution.dominant d.Attribution.dest_parts))
    attr.Attribution.per_dest;
  (* Collapsed stacks for a flamegraph of where the network's time went:
     render with inferno-flamegraph or drag into speedscope.app. *)
  let folded = "convergence_anatomy.folded" in
  let oc = open_out folded in
  output_string oc (Attribution.to_flamegraph ~mode:Attribution.Flame_aggregate attr);
  close_out oc;
  Fmt.pr "@.wrote %s (collapsed stacks; feed to inferno or speedscope)@." folded
