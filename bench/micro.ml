(* Micro-benchmarks for the simulator's hot paths: RIB decide/select over
   packed ranks, AS-path interning, and scheduler/heap event churn.

   Unlike bench/main.ml (whole-figure regeneration under bechamel), these
   are tight hand-timed loops over the individual operations the profiles
   show dominating a run, so a representation regression shows up as a
   per-op number rather than a minutes-long sweep.

   Run with:  dune exec bench/micro.exe -- [--quick] [--json PATH] *)

module Rib = Bgp_proto.Rib
module Path = Bgp_proto.Path
module Types = Bgp_proto.Types
module Sched = Bgp_engine.Scheduler
module Heap = Bgp_engine.Heap
module Rng = Bgp_engine.Rng
module Shard_exec = Bgp_engine.Shard_exec
module Topology = Bgp_topology.Topology
module Partition = Bgp_topology.Partition
module Report = Bgp_experiments.Bench_report

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* --- Path interning ------------------------------------------------------ *)

(* Realistic mix: most cons hits re-intern an already-seen suffix (the
   steady-state of a converged network re-exploring paths). *)
let bench_path_intern ~iters () =
  let tbl = Path.create_table () in
  let rng = Rng.create 42 in
  let stems =
    Array.init 64 (fun i -> Path.of_list tbl [ 100 + i; 200 + (i mod 7); 300 ])
  in
  let sink = ref 0 in
  let wall =
    time (fun () ->
        for _ = 1 to iters do
          let stem = stems.(Rng.int rng 64) in
          let p = Path.cons tbl (400 + Rng.int rng 16) stem in
          sink := !sink + Path.length p
        done)
  in
  ignore !sink;
  Report.micro ~name:"path.cons" ~iters ~wall

let bench_path_equal ~iters () =
  let tbl = Path.create_table () in
  let ps = Array.init 32 (fun i -> Path.of_list tbl [ i; i + 1; i + 2; 999 ]) in
  let rng = Rng.create 7 in
  let sink = ref 0 in
  let wall =
    time (fun () ->
        for _ = 1 to iters do
          let a = ps.(Rng.int rng 32) and b = ps.(Rng.int rng 32) in
          if Path.equal a b then incr sink
        done)
  in
  ignore !sink;
  Report.micro ~name:"path.equal" ~iters ~wall

(* --- RIB ----------------------------------------------------------------- *)

(* Churn a 16-peer Adj-RIB-In for one destination: replace one entry and
   re-run the decision process, like a router absorbing an update burst. *)
let bench_rib_decide ~iters () =
  let tbl = Path.create_table () in
  let rib = Rib.create ~asn:0 in
  let dest = 7 in
  let paths =
    Array.init 16 (fun peer ->
        Path.of_list tbl (List.init ((peer mod 4) + 1) (fun h -> 100 + peer + h)))
  in
  for peer = 1 to 16 do
    Rib.set_in rib dest ~peer ~kind:Types.Ebgp paths.(peer - 1)
  done;
  let rng = Rng.create 3 in
  let sink = ref 0 in
  let wall =
    time (fun () ->
        for _ = 1 to iters do
          let peer = 1 + Rng.int rng 16 in
          Rib.set_in rib dest ~peer ~kind:Types.Ebgp paths.(Rng.int rng 16);
          if Rib.decide rib dest then incr sink
        done)
  in
  ignore !sink;
  Report.micro ~name:"rib.set_in+decide" ~iters ~wall

let bench_rib_select ~iters () =
  let tbl = Path.create_table () in
  let rib = Rib.create ~asn:0 in
  let dest = 7 in
  for peer = 1 to 16 do
    Rib.set_in rib dest ~peer ~kind:Types.Ebgp
      (Path.of_list tbl (List.init ((peer mod 4) + 1) (fun h -> 100 + peer + h)))
  done;
  let sink = ref 0 in
  let wall =
    time (fun () ->
        for _ = 1 to iters do
          if Rib.decide rib dest then incr sink
        done)
  in
  ignore !sink;
  Report.micro ~name:"rib.select" ~iters ~wall

(* --- Scheduler ----------------------------------------------------------- *)

(* Steady-state event churn: a window of pending events; each iteration
   pushes one, cancels one in three, and executes until the window is
   back at its size — the simulator's inner-loop mix. *)
let bench_sched_churn ~iters () =
  let s = Sched.create () in
  let rng = Rng.create 11 in
  let window = 256 in
  let ids =
    Array.init window (fun _ -> Sched.schedule s ~delay:(Rng.float rng) (fun () -> ()))
  in
  let wall =
    time (fun () ->
        for i = 1 to iters do
          let slot = i mod window in
          if i mod 3 = 0 then Sched.cancel s ids.(slot);
          ids.(slot) <- Sched.schedule s ~delay:(Rng.float rng) (fun () -> ());
          while Sched.pending s > window do
            ignore (Sched.step s)
          done
        done)
  in
  Report.micro ~name:"sched.push_cancel_step" ~iters ~wall

let bench_heap_churn ~iters () =
  let h = Heap.create ~cmp:Float.compare in
  let rng = Rng.create 13 in
  for _ = 1 to 256 do
    Heap.push h (Rng.float rng)
  done;
  let wall =
    time (fun () ->
        for _ = 1 to iters do
          Heap.push h (Rng.float rng);
          ignore (Heap.pop_exn h)
        done)
  in
  Report.micro ~name:"heap.push_pop" ~iters ~wall

(* --- Shard layer ---------------------------------------------------------- *)

(* Mailbox enqueue + sorted drain: post [batch] messages across the 0->1
   edge, then run one (empty-scheduler) phase so the barrier machinery
   drains, sorts and delivers them — the per-window cost the sharded
   executor pays for every cross-shard message. *)
let bench_shard_mailbox ~iters () =
  let batch = 256 in
  let rounds = max 1 (iters / batch) in
  let delivered = ref 0 in
  let wall =
    time (fun () ->
        for _ = 1 to rounds do
          let t = Shard_exec.create ~shards:2 ~compare:Int.compare in
          for i = 0 to batch - 1 do
            Shard_exec.post t ~src:0 ~dst:1 i
          done;
          Shard_exec.run_phase t ~lookahead:0.025 ~cap:1.0
            ~deliver:(fun _ msgs -> delivered := !delivered + Array.length msgs)
            ()
        done)
  in
  assert (!delivered = rounds * batch);
  Report.micro ~name:"shard.mailbox_post_drain" ~iters:(rounds * batch) ~wall

(* Raw barrier round-trip between two domains: the synchronization floor
   under every window of the sharded executor. *)
let bench_shard_barrier ~iters () =
  let b = Shard_exec.Barrier.create 2 in
  let wall =
    time (fun () ->
        let other =
          Domain.spawn (fun () ->
              for _ = 1 to iters do
                Shard_exec.Barrier.wait b
              done)
        in
        for _ = 1 to iters do
          Shard_exec.Barrier.wait b
        done;
        Domain.join other)
  in
  Report.micro ~name:"shard.barrier_round_trip" ~iters ~wall

(* Partitioner wall-time at realistic topology scales (the one-off cost a
   sharded run pays before building the network).  Generation is outside
   the timed region; Barabasi-Albert keeps it cheap at 50k nodes where
   the degree-sequence generator's O(n^2) graphicality test would not —
   and its own sampling is O(1) per draw, so setup no longer dominates
   quick mode. *)
let bench_partition ~n ~iters () =
  let rng = Rng.create 1 in
  let topo = Topology.of_graph rng (Bgp_topology.Models.barabasi_albert rng ~n ~m:2) in
  let cut = ref 0 in
  let wall =
    time (fun () ->
        for seed = 1 to iters do
          let p = Partition.compute ~shards:4 ~seed topo in
          cut := !cut + p.Partition.cut_edges
        done)
  in
  ignore !cut;
  Report.micro ~name:(Printf.sprintf "partition.compute/%dk" (n / 1000)) ~iters ~wall

(* --- Driver -------------------------------------------------------------- *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let json_path =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let scale n = if quick then n / 10 else n in
  let benches =
    [
      bench_path_intern ~iters:(scale 2_000_000);
      bench_path_equal ~iters:(scale 5_000_000);
      bench_rib_decide ~iters:(scale 500_000);
      bench_rib_select ~iters:(scale 1_000_000);
      bench_sched_churn ~iters:(scale 1_000_000);
      bench_heap_churn ~iters:(scale 2_000_000);
      bench_shard_mailbox ~iters:(scale 200_000);
      bench_shard_barrier ~iters:(scale 100_000);
      bench_partition ~n:1_000 ~iters:(max 1 (scale 50));
      bench_partition ~n:10_000 ~iters:(max 1 (scale 10));
    ]
    (* The 50k point's Partition.compute alone takes ~10 s (its BA
       generation is linear-time since the repeated-endpoints sampler),
       so it only runs in full mode. *)
    @ (if quick then [] else [ bench_partition ~n:50_000 ~iters:1 ])
  in
  let report = Report.create ~trials:1 ~n:0 ~jobs:1 in
  Fmt.pr "%-24s %12s %12s %14s@." "benchmark" "iters" "ns/op" "ops/s";
  List.iter
    (fun bench ->
      let m = bench () in
      Report.add_micro report m;
      Fmt.pr "%-24s %12d %12.1f %14.3e@." m.Report.name m.Report.iters
        m.Report.ns_per_op m.Report.ops_per_s)
    benches;
  match json_path with
  | None -> ()
  | Some path ->
    Report.write report path;
    Fmt.pr "@.wrote %s@." path
