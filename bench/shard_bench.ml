(* Single-trial shard speedup: the tentpole measurement for the sharded
   executor.  One power-law (Barabasi-Albert) trial is run three ways —
   the historic sequential engine, the sharded engine at shards=1, and
   the sharded engine at shards=K — and the walls are archived as a
   bgp-bench/1 report (micro entries), with the host's recommended
   domain count recorded in the report's "jobs" field.

   Honesty note: on a single-core host the shards=K point measures
   barrier overhead, not speedup; CI gates its speedup floor on the
   recorded core count.  The shards=1-vs-sequential point (the overhead
   criterion) and the shards=1-vs-shards=K bit-identity check are
   meaningful on any host.

   Run with:  dune exec bench/shard_bench.exe -- [--n N] [--shards K]
              [--seed S] [--json PATH] *)

module Rng = Bgp_engine.Rng
module Topology = Bgp_topology.Topology
module Models = Bgp_topology.Models
module Partition = Bgp_topology.Partition
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Report = Bgp_experiments.Bench_report

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = ref 500 and shards = ref 4 and seed = ref 1 and json = ref None in
  let rec parse = function
    | [] -> ()
    | "--n" :: v :: rest ->
      n := int_of_string v;
      parse rest
    | "--shards" :: v :: rest ->
      shards := int_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--json" :: v :: rest ->
      json := Some v;
      parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cores = Domain.recommended_domain_count () in
  let rng = Rng.create !seed in
  let topo = Topology.of_graph rng (Models.barabasi_albert rng ~n:!n ~m:2) in
  Fmt.pr "shard speedup bench: %d-node power-law trial, shards=%d, %d core(s)@." !n
    !shards cores;
  let base =
    Runner.scenario
      ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
      ~failure:(Runner.Fraction 0.05) ~seed:!seed (Runner.Fixed topo)
  in
  let report = Report.create ~trials:1 ~n:!n ~jobs:cores in
  let point label sharding =
    let r, wall = time (fun () -> Runner.run { base with Runner.sharding }) in
    Fmt.pr "  %-22s %8.2f s  (delay %.3f s, %d msgs, %d events)@." label wall
      r.Runner.convergence_delay r.Runner.messages r.Runner.events;
    Report.add_micro report (Report.micro ~name:("shard.trial/" ^ label) ~iters:1 ~wall);
    (r, wall)
  in
  let r_seq, w_seq = point "sequential" None in
  let r_k1, w_k1 = point "shards=1" (Some 1) in
  let r_kn, w_kn = point (Printf.sprintf "shards=%d" !shards) (Some !shards) in
  (* Bit-identity across shard counts is the engine's contract; a mismatch
     here is a determinism bug, not a benchmark artifact. *)
  if
    r_k1.Runner.convergence_delay <> r_kn.Runner.convergence_delay
    || r_k1.Runner.messages <> r_kn.Runner.messages
    || r_k1.Runner.events <> r_kn.Runner.events
  then failwith "shards=1 and shards=K disagree: shard-count invariance violated";
  let p, w_part = time (fun () -> Partition.compute ~shards:!shards ~seed:!seed topo) in
  Report.add_micro report (Report.micro ~name:"partition.compute" ~iters:1 ~wall:w_part);
  Fmt.pr "  partition: %a (%.3f s)@." Partition.pp_stats p w_part;
  Fmt.pr "  shards=1 vs sequential: %+.1f%% wall (same results: %b)@."
    (100. *. ((w_k1 /. w_seq) -. 1.))
    (r_seq.Runner.convergence_delay = r_k1.Runner.convergence_delay
    && r_seq.Runner.messages = r_k1.Runner.messages);
  Fmt.pr "  shards=%d vs shards=1: %.2fx speedup on %d core(s)@." !shards (w_k1 /. w_kn)
    cores;
  match !json with
  | None -> ()
  | Some path ->
    Report.write report path;
    Fmt.pr "wrote %s@." path
