(* Benchmark harness.

   Two halves:

   1. Figure regeneration — re-simulates every figure of the paper's
      evaluation (Figs 1-13) and prints the series plus PASS/FAIL shape
      verdicts against the paper's qualitative claims.  This is the
      "regenerate every table and figure" harness.

   2. Bechamel micro-benchmarks of the core data structures and of small
      end-to-end simulations (one Test.make per figure workload class).

   Usage:
     dune exec bench/main.exe                    # quick grids, all figures + micro
     dune exec bench/main.exe -- --full          # paper-scale grids
     dune exec bench/main.exe -- fig3 fig7       # a subset of figures
     dune exec bench/main.exe -- --trials 5      # override trials
     dune exec bench/main.exe -- --jobs 4        # trial fan-out over 4 domains
     dune exec bench/main.exe -- --micro-only
     dune exec bench/main.exe -- --figures-only
     dune exec bench/main.exe -- --csv-dir DIR   # also dump CSVs

   --jobs N runs every figure's trial fan-out on a pool of N OCaml
   domains (default: Domain.recommended_domain_count).  Results are
   bit-identical to --jobs 1 — each trial owns its seed, RNG and
   scheduler — so the flag only changes wall-clock time; each figure
   reports its achieved parallel speedup. *)

module Figure = Bgp_experiments.Figure
module Figures = Bgp_experiments.Figures
module Scenarios = Bgp_experiments.Scenarios
module Verdicts = Bgp_experiments.Verdicts

module Ablations = Bgp_experiments.Ablations
module Bench_report = Bgp_experiments.Bench_report
module Pool = Bgp_engine.Pool
module Runner = Bgp_netsim.Runner
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller

type mode = {
  opts : Scenarios.opts;
  figures : string list;
  micro : bool;
  figs : bool;
  ablations : bool;
  csv_dir : string option;
  bench_json : string option;
  prof : bool;
}

let parse_args () =
  let opts = ref Scenarios.quick in
  let trials = ref None in
  let figures = ref [] in
  let micro = ref true in
  let figs = ref true in
  let ablations = ref true in
  let csv_dir = ref None in
  let bench_json = ref None in
  let prof = ref false in
  let rec loop = function
    | [] -> ()
    | "--full" :: rest ->
      opts := Scenarios.default;
      loop rest
    | "--quick" :: rest ->
      opts := Scenarios.quick;
      loop rest
    | "--trials" :: n :: rest ->
      trials := Some (int_of_string n);
      loop rest
    | "--micro-only" :: rest ->
      figs := false;
      ablations := false;
      loop rest
    | "--figures-only" :: rest ->
      micro := false;
      ablations := false;
      loop rest
    | "--ablations-only" :: rest ->
      micro := false;
      figs := false;
      loop rest
    | "--no-ablations" :: rest ->
      ablations := false;
      loop rest
    | "--csv-dir" :: dir :: rest ->
      csv_dir := Some dir;
      loop rest
    | "--bench-json" :: path :: rest ->
      bench_json := Some path;
      loop rest
    | "--prof" :: rest ->
      prof := true;
      loop rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> Pool.set_default_jobs j
      | Some 0 -> ()
        (* auto: keep the recommended-domain-count default; the header
           line echoes the resolved value *)
      | Some _ | None -> failwith ("--jobs expects a non-negative integer, got " ^ n));
      loop rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      figures := arg :: !figures;
      loop rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  loop (List.tl (Array.to_list Sys.argv));
  let opts =
    match !trials with None -> !opts | Some t -> { !opts with Scenarios.trials = t }
  in
  (* Selecting specific figures implies skipping the ablations. *)
  let ablations = !ablations && !figures = [] in
  {
    opts;
    figures = List.rev !figures;
    micro = !micro;
    figs = !figs;
    ablations;
    csv_dir = !csv_dir;
    bench_json = !bench_json;
    prof = !prof;
  }

(* --- Figure regeneration ------------------------------------------------ *)

(* Per-figure parallel speedup: summed per-run simulation time over the
   elapsed time of the pool batches — i.e. how much faster than a
   sequential replay of the same runs this figure was produced.  Runs
   served from the sweep cache execute nothing, hence "cached". *)
let pp_pool_speedup ppf (pool : Pool.stats) =
  if pool.Pool.jobs_run = 0 then Fmt.pf ppf "cached"
  else if pool.Pool.wall <= 0.0 then Fmt.pf ppf "%d sim runs" pool.Pool.jobs_run
  else
    Fmt.pf ppf "%d sim runs, %.2fx speedup over sequential" pool.Pool.jobs_run
      (pool.Pool.busy /. pool.Pool.wall)

let normalize_figure_id id =
  let digits =
    String.to_seq id
    |> Seq.filter (fun c -> c >= '0' && c <= '9')
    |> String.of_seq
  in
  if digits = "" then String.lowercase_ascii id else "fig" ^ string_of_int (int_of_string digits)

let select_figures ids =
  match ids with
  | [] -> Figures.all
  | ids ->
    let wanted = List.map normalize_figure_id ids in
    List.filter (fun (name, _) -> List.mem name wanted) Figures.all

let run_figures mode report =
  let selected = select_figures mode.figures in
  (match mode.figures with
  | [] -> ()
  | ids ->
    List.iter
      (fun id -> if Figures.by_id id = None then Fmt.epr "unknown figure id %S@." id)
      ids);
  let total_pass = ref 0 and total = ref 0 in
  List.iter
    (fun (id, make) ->
      let t0 = Unix.gettimeofday () in
      Pool.reset_stats ();
      let fig = make mode.opts in
      let pool = Pool.stats () in
      let wall = Unix.gettimeofday () -. t0 in
      Fmt.pr "@.%a" Figure.pp fig;
      Fmt.pr "%a" Figure.pp_chart fig;
      let verdicts = Verdicts.check fig in
      let pass = List.length (List.filter (fun v -> v.Verdicts.holds) verdicts) in
      List.iter
        (fun v ->
          incr total;
          if v.Verdicts.holds then incr total_pass;
          Fmt.pr "  %a@." Verdicts.pp_verdict v)
        verdicts;
      Fmt.pr "  (%.1f s wall, %a)@." wall pp_pool_speedup pool;
      Option.iter
        (fun r ->
          Bench_report.add r
            (Bench_report.entry ~id ~title:fig.Figure.title ~kind:"figure" ~wall ~pool
               ~per_domain:(Pool.last_batch ()) ~verdicts_pass:pass
               ~verdicts_total:(List.length verdicts)))
        report;
      match mode.csv_dir with
      | None -> ()
      | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path = Filename.concat dir (id ^ ".csv") in
        let oc = open_out path in
        output_string oc (Figure.to_csv fig);
        close_out oc;
        Fmt.pr "  wrote %s@." path)
    selected;
  Fmt.pr "@.shape verdicts: %d/%d hold@." !total_pass !total

let run_ablations mode report =
  Fmt.pr "@.=== ablations (design-choice studies beyond the paper's figures) ===@.";
  List.iter
    (fun (name, make) ->
      let t0 = Unix.gettimeofday () in
      Pool.reset_stats ();
      let fig = make mode.opts in
      let pool = Pool.stats () in
      let wall = Unix.gettimeofday () -. t0 in
      Fmt.pr "@.%a" Figure.pp fig;
      Fmt.pr "%a" Figure.pp_chart fig;
      Fmt.pr "  (%s, %.1f s wall, %a)@." name wall pp_pool_speedup pool;
      Option.iter
        (fun r ->
          Bench_report.add r
            (Bench_report.entry ~id:name ~title:fig.Figure.title ~kind:"ablation" ~wall
               ~pool ~per_domain:(Pool.last_batch ()) ~verdicts_pass:0 ~verdicts_total:0))
        report)
    Ablations.all

(* --- Micro-benchmarks ---------------------------------------------------- *)

open Bechamel
open Toolkit

let bench_heap =
  Test.make ~name:"engine/heap push+pop 1k"
    (Staged.stage (fun () ->
         let h = Bgp_engine.Heap.create ~cmp:Int.compare in
         for i = 0 to 999 do
           Bgp_engine.Heap.push h (i * 7919 mod 1000)
         done;
         while not (Bgp_engine.Heap.is_empty h) do
           ignore (Bgp_engine.Heap.pop_exn h)
         done))

let bench_scheduler =
  Test.make ~name:"engine/scheduler 1k events"
    (Staged.stage (fun () ->
         let s = Bgp_engine.Scheduler.create () in
         for i = 0 to 999 do
           ignore
             (Bgp_engine.Scheduler.schedule s
                ~delay:(float_of_int (i * 37 mod 100))
                (fun () -> ()))
         done;
         Bgp_engine.Scheduler.run s))

let bench_rng =
  Test.make ~name:"engine/rng 1k floats"
    (Staged.stage
       (let rng = Bgp_engine.Rng.create 7 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Bgp_engine.Rng.float rng)
          done))

let bench_rib =
  Test.make ~name:"bgp/rib 100 updates + decide"
    (Staged.stage (fun () ->
         let paths = Bgp_proto.Path.create_table () in
         let rib = Bgp_proto.Rib.create ~asn:0 in
         for peer = 1 to 10 do
           for dest = 1 to 10 do
             Bgp_proto.Rib.set_in rib dest ~peer ~kind:Bgp_proto.Types.Ebgp
               (Bgp_proto.Path.of_list paths [ peer; dest ]);
             ignore (Bgp_proto.Rib.decide rib dest)
           done
         done))

let bench_queue discipline name =
  Test.make
    ~name:(Printf.sprintf "core/input_queue %s 1k" name)
    (Staged.stage (fun () ->
         let q = Bgp_core.Input_queue.create discipline in
         for i = 0 to 999 do
           Bgp_core.Input_queue.push q
             { Bgp_core.Input_queue.src = i mod 8; dest = i mod 50; payload = i; cause = -1; enqueued = 0.0 }
         done;
         while not (Bgp_core.Input_queue.is_empty q) do
           ignore (Bgp_core.Input_queue.pop q)
         done))

let bench_topology =
  Test.make ~name:"topology/70-30 n=120"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let rng = Bgp_engine.Rng.create !counter in
          ignore
            (Bgp_topology.Degree_dist.generate Bgp_topology.Degree_dist.skewed_70_30 rng
               ~n:120)))

(* One Test.make per figure workload class: a small end-to-end simulation
   representative of the figure's dominant cost. *)
let bench_run ~name ~scheme ~discipline ~frac =
  Test.make ~name
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let cfg =
            Bgp_proto.Config.(default |> with_mrai scheme |> with_discipline discipline)
          in
          let scenario =
            Bgp_netsim.Runner.scenario
              ~net:(Bgp_netsim.Network.config_default cfg)
              ~failure:(Bgp_netsim.Runner.Fraction frac) ~seed:!counter
              (Bgp_netsim.Runner.Flat
                 { spec = Bgp_topology.Degree_dist.skewed_70_30; n = 40 })
          in
          ignore (Bgp_netsim.Runner.run scenario)))

let micro_tests =
  Test.make_grouped ~name:"bgp-convergence"
    [
      bench_heap;
      bench_scheduler;
      bench_rng;
      bench_rib;
      bench_queue Bgp_core.Input_queue.Fifo "fifo";
      bench_queue Bgp_core.Input_queue.Batched "batched";
      bench_topology;
      bench_run ~name:"run/static-mrai (figs 1-5)" ~scheme:(Static 1.25)
        ~discipline:Bgp_core.Input_queue.Fifo ~frac:0.05;
      bench_run ~name:"run/degree-dependent (fig 6)"
        ~scheme:(Degree_dependent { threshold = 3; low = 0.5; high = 2.25 })
        ~discipline:Bgp_core.Input_queue.Fifo ~frac:0.05;
      bench_run ~name:"run/dynamic-mrai (figs 7-9)"
        ~scheme:(Bgp_core.Mrai_controller.paper_dynamic ())
        ~discipline:Bgp_core.Input_queue.Fifo ~frac:0.05;
      bench_run ~name:"run/batching (figs 10-12)" ~scheme:(Static 0.5)
        ~discipline:Bgp_core.Input_queue.Batched ~frac:0.05;
      bench_run ~name:"run/batching+dynamic (figs 10,13)"
        ~scheme:(Bgp_core.Mrai_controller.paper_dynamic ())
        ~discipline:Bgp_core.Input_queue.Batched ~frac:0.05;
    ]

let run_micro () =
  Fmt.pr "@.=== micro-benchmarks (bechamel) ===@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] micro_tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] ->
        if est > 1e6 then Fmt.pr "%-55s %10.3f ms/run@." name (est /. 1e6)
        else Fmt.pr "%-55s %10.1f ns/run@." name est
      | _ -> Fmt.pr "%-55s (no estimate)@." name)
    rows

let () =
  let mode = parse_args () in
  Fmt.pr
    "BGP convergence benchmark harness (%d trials/point, %d-node flat topologies, %d \
     jobs)@."
    mode.opts.Scenarios.trials mode.opts.Scenarios.n (Pool.default_jobs ());
  let report =
    Option.map
      (fun _ ->
        Bench_report.create ~trials:mode.opts.Scenarios.trials ~n:mode.opts.Scenarios.n
          ~jobs:(Pool.default_jobs ()))
      mode.bench_json
  in
  (* Arm the harness's own wall-clock profiler before any simulation so
     pool busy/wait and runner phase spans cover every figure. *)
  if mode.prof then Bgp_engine.Profile.start ();
  if mode.figs then run_figures mode report;
  if mode.ablations then run_ablations mode report;
  if mode.micro then run_micro ();
  (* One small traced reference run, so every bench report records where
     a typical run's convergence delay went (causal critical path). *)
  Option.iter
    (fun r ->
      let trace = Bgp_netsim.Trace.create () in
      let scenario =
        Runner.scenario
          ~net:
            {
              (Bgp_netsim.Network.config_default
                 { Config.default with Config.mrai_scheme = Mrai.Static 1.25 })
              with
              Bgp_netsim.Network.trace = Some trace;
            }
          ~failure:(Runner.Fraction 0.1) ~seed:1
          (Runner.Flat { spec = Bgp_topology.Degree_dist.skewed_70_30; n = 24 })
      in
      let result = Runner.run scenario in
      Option.iter
        (fun (attr : Bgp_netsim.Attribution.t) ->
          Bench_report.set_attribution r
            {
              Bench_report.attr_scenario = "flat 70-30 n=24 mrai=1.25 failure=0.1 seed=1";
              attr_delay = attr.Bgp_netsim.Attribution.convergence_delay;
              attr_queueing = attr.totals.Bgp_netsim.Attribution.queueing;
              attr_processing = attr.totals.processing;
              attr_mrai_hold = attr.totals.mrai_hold;
              attr_propagation = attr.totals.propagation;
              attr_hops = List.length attr.critical_path;
              attr_complete = attr.complete;
              attr_dests = attr.tails.Bgp_netsim.Attribution.n_dests;
              attr_tail_p50 = attr.tails.p50;
              attr_tail_p95 = attr.tails.p95;
              attr_tail_p99 = attr.tails.p99;
              attr_straggler_dest =
                (match attr.per_dest with d :: _ -> d.Bgp_netsim.Attribution.dest | [] -> -1);
              attr_straggler_tail =
                (match attr.per_dest with d :: _ -> d.Bgp_netsim.Attribution.tail | [] -> 0.0);
            })
        result.Runner.attribution)
    report;
  (if mode.prof then
     match Bgp_engine.Profile.stop () with
     | None -> ()
     | Some pr ->
       let wall = Int64.to_float pr.Bgp_engine.Profile.wall_ns /. 1e9 in
       let queue_wait = Int64.to_float (Bgp_engine.Profile.queue_wait_ns pr) /. 1e9 in
       let spans = Bgp_engine.Profile.summarize pr in
       Fmt.pr "@.=== harness wall-time profile (--prof) ===@.";
       Fmt.pr "wall %.2f s, pool queue wait %.2f s@." wall queue_wait;
       List.iter
         (fun (label, s, n) ->
           if s >= 0.01 then Fmt.pr "  %-45s %8.3f s  (%d)@." label s n)
         spans;
       Option.iter
         (fun r ->
           Bench_report.set_profile r
             {
               Bench_report.prof_wall = wall;
               prof_queue_wait = queue_wait;
               prof_spans = spans;
               prof_counters = pr.Bgp_engine.Profile.counters;
             })
         report);
  match (mode.bench_json, report) with
  | Some path, Some r ->
    Bench_report.write r path;
    Fmt.pr "@.wrote %s (%d entries)@." path (List.length (Bench_report.entries r))
  | _ -> ()
