(* Merge-path micro-benchmark: sidecar fold vs trace re-parse.

   Generates a traced campaign (every trial finalized with its
   bgp-attr-sidecar/1 sidecar next to the trace JSONL), then times the
   two ways `bgpsim analyze --merge` can consume it:

   - [merge.sidecar]  — the O(trials) path: fold each trial's sidecar;
   - [merge.reparse]  — the O(events) baseline: re-read every trace
     JSONL and re-run the full attribution per trial.

   Both merges run single-threaded so the ratio is per-trial work, not
   pool scheduling.  The speedup is the whole point of the sidecars;
   BENCH_pr7.json archives it.

   Run with:  dune exec bench/merge_bench.exe -- [--quick] [--json PATH] *)

module Sweep = Bgp_experiments.Sweep
module Runner = Bgp_netsim.Runner
module Merge = Bgp_netsim.Attr_merge
module Report = Bgp_experiments.Bench_report

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let fresh_dir () =
  let base = Filename.temp_file "bgpsim_merge_bench" "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let run_merge items =
  let acc = Merge.create () in
  Merge.load ~jobs:1 acc items;
  acc

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let json_path =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let trials = if quick then 40 else 200 in
  let nodes = 32 in
  let scenario =
    Runner.scenario ~failure:(Runner.Fraction 0.10) ~seed:1
      (Runner.Flat { spec = Bgp_topology.Degree_dist.skewed_70_30; n = nodes })
  in
  let scenario =
    let net = scenario.Runner.net in
    {
      scenario with
      Runner.net =
        {
          net with
          Bgp_netsim.Network.bgp =
            { net.Bgp_netsim.Network.bgp with Bgp_proto.Config.mrai_scheme = Static 0.5 };
        };
    }
  in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let gen_wall, (_, sidecars) =
    time (fun () ->
        Sweep.traced_archived ~spill_base:(Filename.concat dir "t.jsonl") scenario ~trials)
  in
  Fmt.pr "campaign: %d trials (%d routers) generated in %.1fs, %d sidecars@." trials
    nodes gen_wall (List.length sidecars);
  let sidecar_items = Merge.plan dir in
  let reparse_items = Merge.plan ~reparse:true dir in
  let n_traces =
    List.length (List.filter (function Merge.Use_trace _ -> true | _ -> false) reparse_items)
  in
  if List.length sidecar_items <> trials || n_traces <> trials then begin
    Fmt.epr "error: expected %d items from both plans (got %d sidecar, %d reparse)@."
      trials (List.length sidecar_items) n_traces;
    exit 1
  end;
  (* Warm the page cache so the first timed pass is not charged for cold
     reads the second would then get for free. *)
  ignore (run_merge sidecar_items);
  let wall_reparse, acc_reparse = time (fun () -> run_merge reparse_items) in
  let wall_sidecar, acc_sidecar = time (fun () -> run_merge sidecar_items) in
  if Merge.trials acc_sidecar <> trials || Merge.trials acc_reparse <> trials then begin
    Fmt.epr "error: merges folded %d / %d trials, expected %d@."
      (Merge.trials acc_sidecar) (Merge.trials acc_reparse) trials;
    exit 1
  end;
  (* The two paths must agree — the sidecar is a cache, not an estimate. *)
  let r_s = Merge.report acc_sidecar and r_r = Merge.report acc_reparse in
  let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
  if
    not
      (close r_s.Merge.r_mean_delay r_r.Merge.r_mean_delay
      && close r_s.Merge.r_totals.Bgp_netsim.Attribution.queueing
           r_r.Merge.r_totals.Bgp_netsim.Attribution.queueing)
  then begin
    Fmt.epr "error: sidecar merge disagrees with re-parse merge@.";
    exit 1
  end;
  let speedup = wall_reparse /. wall_sidecar in
  Fmt.pr "%-16s %10s %14s %14s@." "merge path" "trials" "wall (s)" "trials/s";
  Fmt.pr "%-16s %10d %14.4f %14.0f@." "reparse" trials wall_reparse
    (float_of_int trials /. wall_reparse);
  Fmt.pr "%-16s %10d %14.4f %14.0f@." "sidecar" trials wall_sidecar
    (float_of_int trials /. wall_sidecar);
  Fmt.pr "speedup: %.1fx@." speedup;
  (match json_path with
  | None -> ()
  | Some path ->
    let report = Report.create ~trials ~n:nodes ~jobs:1 in
    Report.add_micro report (Report.micro ~name:"merge.reparse" ~iters:trials ~wall:wall_reparse);
    Report.add_micro report (Report.micro ~name:"merge.sidecar" ~iters:trials ~wall:wall_sidecar);
    Report.write report path;
    Fmt.pr "wrote %s@." path);
  if speedup < 5.0 then begin
    Fmt.epr "error: sidecar merge speedup %.1fx is below the 5x floor@." speedup;
    exit 1
  end
