(* Domain work pool: a mutex-protected deque of job indices drained by
   [jobs] workers (the caller plus [jobs - 1] spawned domains).  Results
   land in a per-index slot, so output order equals input order no
   matter which domain ran which job. *)

let default = Atomic.make 0 (* 0 = unset, resolve lazily *)

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: job count must be >= 1";
  Atomic.set default n

let default_jobs () =
  match Atomic.get default with
  | 0 -> Domain.recommended_domain_count ()
  | n -> n

type domain_stat = { domain : int; jobs : int; busy : float; wait : float }

type stats = {
  busy : float;
  wall : float;
  jobs_run : int;
  batches : int;
  queue_wait : float;
}

let stats_lock = Mutex.create ()
let stats_acc = ref { busy = 0.0; wall = 0.0; jobs_run = 0; batches = 0; queue_wait = 0.0 }
let last_batch_acc : domain_stat list ref = ref []

let add_stats ~busy ~wall ~jobs_run ~queue_wait ~per_domain =
  Mutex.lock stats_lock;
  let s = !stats_acc in
  stats_acc :=
    {
      busy = s.busy +. busy;
      wall = s.wall +. wall;
      jobs_run = s.jobs_run + jobs_run;
      batches = s.batches + 1;
      queue_wait = s.queue_wait +. queue_wait;
    };
  last_batch_acc := per_domain;
  Mutex.unlock stats_lock

let stats () =
  Mutex.lock stats_lock;
  let s = !stats_acc in
  Mutex.unlock stats_lock;
  s

let last_batch () =
  Mutex.lock stats_lock;
  let b = !last_batch_acc in
  Mutex.unlock stats_lock;
  b

let reset_stats () =
  Mutex.lock stats_lock;
  stats_acc := { busy = 0.0; wall = 0.0; jobs_run = 0; batches = 0; queue_wait = 0.0 };
  last_batch_acc := [];
  Mutex.unlock stats_lock

let now = Unix.gettimeofday

(* The work queue: indices 0..n-1, taken front-first. *)
type deque = { m : Mutex.t; mutable items : int list }

let take dq =
  Mutex.lock dq.m;
  let r =
    match dq.items with
    | [] -> None
    | i :: rest ->
      dq.items <- rest;
      Some i
  in
  Mutex.unlock dq.m;
  r

(* First failure by input index, so the re-raised exception is
   deterministic even when several jobs raise on different domains. *)
type failure = { fm : Mutex.t; mutable err : (int * exn * Printexc.raw_backtrace) option }

let record_failure fl i e bt =
  Mutex.lock fl.fm;
  (match fl.err with
  | Some (j, _, _) when j <= i -> ()
  | _ -> fl.err <- Some (i, e, bt));
  Mutex.unlock fl.fm

let sequential_map f xs =
  let n = List.length xs in
  let t0 = now () in
  let c0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      let wall = now () -. t0 in
      add_stats ~busy:(Sys.time () -. c0) ~wall ~jobs_run:n ~queue_wait:0.0
        ~per_domain:[ { domain = 0; jobs = n; busy = wall; wait = 0.0 } ])
    (fun () -> List.map f xs)

(* [busy] is process CPU time, which aggregates every domain's work, so
   [busy /. wall] is an honest speedup estimate: ~1 on a saturated
   single core however many domains run, ~jobs on idle hardware.  The
   per-domain breakdown is wall-clock based: each worker times its own
   job executions ([busy]) and its waits on the work deque ([wait]). *)
let map ?jobs f xs =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.map: job count must be >= 1"
  in
  let n = List.length xs in
  if jobs = 1 || n <= 1 then sequential_map f xs
  else begin
    let nworkers = min jobs n in
    let w_jobs = Array.make nworkers 0 in
    let w_busy = Array.make nworkers 0.0 in
    let w_wait = Array.make nworkers 0.0 in
    let t0 = now () in
    let c0 = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        add_stats ~busy:(Sys.time () -. c0) ~wall:(now () -. t0) ~jobs_run:n
          ~queue_wait:(Array.fold_left ( +. ) 0.0 w_wait)
          ~per_domain:
            (List.init nworkers (fun w ->
                 { domain = w; jobs = w_jobs.(w); busy = w_busy.(w); wait = w_wait.(w) })))
      (fun () ->
        let input = Array.of_list xs in
        let results = Array.make n None in
        let queue = { m = Mutex.create (); items = List.init n Fun.id } in
        let failed = { fm = Mutex.create (); err = None } in
        let worker w () =
          (* Every job runs even after a failure elsewhere: that keeps
             the re-raised exception deterministic (lowest input index)
             instead of depending on which domain noticed a flag first. *)
          let prof = Profile.on () in
          let rec loop () =
            let p0 = if prof then Profile.now_ns () else 0L in
            let t_take = now () in
            let next = take queue in
            w_wait.(w) <- w_wait.(w) +. (now () -. t_take);
            if prof then Profile.accum Pool_wait p0;
            match next with
            | None -> ()
            | Some i ->
              let p0 = if prof then Profile.now_ns () else 0L in
              let t_job = now () in
              (match f input.(i) with
              | y -> results.(i) <- Some y
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                record_failure failed i e bt);
              w_busy.(w) <- w_busy.(w) +. (now () -. t_job);
              w_jobs.(w) <- w_jobs.(w) + 1;
              if prof then Profile.accum Pool_job p0;
              loop ()
          in
          loop ()
        in
        let domains = List.init (nworkers - 1) (fun w -> Domain.spawn (worker (w + 1))) in
        worker 0 ();
        List.iter Domain.join domains;
        match failed.err with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None ->
          Array.to_list
            (Array.map (function Some y -> y | None -> assert false) results))
  end
