(* Domain work pool: a mutex-protected deque of job indices drained by
   [jobs] workers (the caller plus [jobs - 1] spawned domains).  Results
   land in a per-index slot, so output order equals input order no
   matter which domain ran which job. *)

let default = Atomic.make 0 (* 0 = unset, resolve lazily *)

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: job count must be >= 1";
  Atomic.set default n

let default_jobs () =
  match Atomic.get default with
  | 0 -> Domain.recommended_domain_count ()
  | n -> n

type stats = { busy : float; wall : float; jobs_run : int; batches : int }

let stats_lock = Mutex.create ()
let stats_acc = ref { busy = 0.0; wall = 0.0; jobs_run = 0; batches = 0 }

let add_stats ~busy ~wall ~jobs_run =
  Mutex.lock stats_lock;
  let s = !stats_acc in
  stats_acc :=
    {
      busy = s.busy +. busy;
      wall = s.wall +. wall;
      jobs_run = s.jobs_run + jobs_run;
      batches = s.batches + 1;
    };
  Mutex.unlock stats_lock

let stats () =
  Mutex.lock stats_lock;
  let s = !stats_acc in
  Mutex.unlock stats_lock;
  s

let reset_stats () =
  Mutex.lock stats_lock;
  stats_acc := { busy = 0.0; wall = 0.0; jobs_run = 0; batches = 0 };
  Mutex.unlock stats_lock

let now = Unix.gettimeofday

(* The work queue: indices 0..n-1, taken front-first. *)
type deque = { m : Mutex.t; mutable items : int list }

let take dq =
  Mutex.lock dq.m;
  let r =
    match dq.items with
    | [] -> None
    | i :: rest ->
      dq.items <- rest;
      Some i
  in
  Mutex.unlock dq.m;
  r

(* First failure by input index, so the re-raised exception is
   deterministic even when several jobs raise on different domains. *)
type failure = { fm : Mutex.t; mutable err : (int * exn * Printexc.raw_backtrace) option }

let record_failure fl i e bt =
  Mutex.lock fl.fm;
  (match fl.err with
  | Some (j, _, _) when j <= i -> ()
  | _ -> fl.err <- Some (i, e, bt));
  Mutex.unlock fl.fm

(* [busy] is process CPU time, which aggregates every domain's work, so
   [busy /. wall] is an honest speedup estimate: ~1 on a saturated
   single core however many domains run, ~jobs on idle hardware. *)
let with_batch_stats ~jobs_run body =
  let t0 = now () in
  let c0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      add_stats ~busy:(Sys.time () -. c0) ~wall:(now () -. t0) ~jobs_run)
    body

let sequential_map f xs =
  with_batch_stats ~jobs_run:(List.length xs) (fun () -> List.map f xs)

let map ?jobs f xs =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.map: job count must be >= 1"
  in
  let n = List.length xs in
  if jobs = 1 || n <= 1 then sequential_map f xs
  else
    with_batch_stats ~jobs_run:n (fun () ->
        let input = Array.of_list xs in
        let results = Array.make n None in
        let queue = { m = Mutex.create (); items = List.init n Fun.id } in
        let failed = { fm = Mutex.create (); err = None } in
        let worker () =
          (* Every job runs even after a failure elsewhere: that keeps
             the re-raised exception deterministic (lowest input index)
             instead of depending on which domain noticed a flag first. *)
          let rec loop () =
            match take queue with
            | None -> ()
            | Some i ->
              (match f input.(i) with
              | y -> results.(i) <- Some y
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                record_failure failed i e bt);
              loop ()
          in
          loop ()
        in
        let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join domains;
        match failed.err with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None ->
          Array.to_list
            (Array.map (function Some y -> y | None -> assert false) results))
