/* Monotonic wall clock for the runtime profiler.

   CLOCK_MONOTONIC nanoseconds as an unboxed int64: immune to NTP steps
   (unlike Unix.gettimeofday) and cheap enough to read inside the
   sharded executor's window loop.  [@@noalloc] on the OCaml side —
   clock_gettime never fails for CLOCK_MONOTONIC on the platforms we
   target, and the unboxed return avoids boxing an Int64 per read. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

int64_t bgp_prof_clock_ns_unboxed(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value bgp_prof_clock_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(bgp_prof_clock_ns_unboxed());
}
