type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data = Array.make new_capacity x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && t.cmp t.data.(left) t.data.(!smallest) < 0 then smallest := left;
  if right < t.size && t.cmp t.data.(right) t.data.(!smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    (* Point the vacated slot at a live element so the popped one is not
       pinned by the array. *)
    t.data.(t.size) <- t.data.(0);
    sift_down t 0
  end;
  (* Shrink when mostly empty: slots beyond [size] may still reference
     formerly-live elements, so a drained heap must not keep a large
     array alive. *)
  let capacity = Array.length t.data in
  if capacity >= 64 && t.size * 4 <= capacity then
    if t.size = 0 then t.data <- [||]
    else begin
      let data = Array.make (capacity / 2) t.data.(0) in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
  top

let pop t = if t.size = 0 then None else Some (pop_exn t)

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.size - 1) []
