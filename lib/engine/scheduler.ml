(* Array-slab event queue.

   Callbacks live in a growable slot array with a free-list; the binary
   heap is three parallel arrays (unboxed float times, scheduling seqs,
   slot indices), so a heap comparison touches no heap-allocated entry
   record and executing an event costs no hash-table lookup.  Event ids
   pack (seq, slot): the seq doubles as a generation tag, so [cancel] of
   an already-fired or already-cancelled id is a safe no-op even after the
   slot has been reused.  Cancelled events stay in the heap and are
   skimmed lazily at the root, exactly like the old Hashtbl-based
   implementation. *)

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let max_slots = 1 lsl slot_bits

type event_id = int

type t = {
  (* Heap over (time, seq), min at 0; h_slot names the slab slot. *)
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable h_size : int;
  (* Slab: callback + owning seq per slot (-1 = free), free-list stack. *)
  mutable cbs : (unit -> unit) array;
  mutable seq_of_slot : int array;
  mutable free : int array;
  mutable free_top : int;
  mutable live : int;
  mutable max_live : int;  (* slab occupancy high-water since create *)
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable last_event_time : float;
}

let noop () = ()
let initial_cap = 256

let create () =
  {
    h_time = Array.make initial_cap 0.0;
    h_seq = Array.make initial_cap 0;
    h_slot = Array.make initial_cap 0;
    h_size = 0;
    cbs = Array.make initial_cap noop;
    seq_of_slot = Array.make initial_cap (-1);
    free = Array.init initial_cap (fun i -> initial_cap - 1 - i);
    free_top = initial_cap;
    live = 0;
    max_live = 0;
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    last_event_time = 0.0;
  }

let now t = t.clock

(* --- Heap of (time, seq, slot) triples ---------------------------------- *)

let heap_ensure_room t =
  let cap = Array.length t.h_time in
  if t.h_size = cap then begin
    let cap' = 2 * cap in
    let ht = Array.make cap' 0.0 in
    let hs = Array.make cap' 0 in
    let hl = Array.make cap' 0 in
    Array.blit t.h_time 0 ht 0 cap;
    Array.blit t.h_seq 0 hs 0 cap;
    Array.blit t.h_slot 0 hl 0 cap;
    t.h_time <- ht;
    t.h_seq <- hs;
    t.h_slot <- hl
  end

let heap_push t time seq slot =
  heap_ensure_room t;
  (* Sift the hole up, then fill it: one write per level. *)
  let i = ref t.h_size in
  t.h_size <- t.h_size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = t.h_time.(p) in
    if pt > time || (pt = time && t.h_seq.(p) > seq) then begin
      t.h_time.(!i) <- pt;
      t.h_seq.(!i) <- t.h_seq.(p);
      t.h_slot.(!i) <- t.h_slot.(p);
      i := p
    end
    else continue := false
  done;
  t.h_time.(!i) <- time;
  t.h_seq.(!i) <- seq;
  t.h_slot.(!i) <- slot

let heap_remove_root t =
  let n = t.h_size - 1 in
  t.h_size <- n;
  if n > 0 then begin
    (* Sift the displaced last element down from the root as a hole. *)
    let time = t.h_time.(n) and seq = t.h_seq.(n) and slot = t.h_slot.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.h_time.(r) < t.h_time.(l)
               || (t.h_time.(r) = t.h_time.(l) && t.h_seq.(r) < t.h_seq.(l)))
          then r
          else l
        in
        if t.h_time.(c) < time || (t.h_time.(c) = time && t.h_seq.(c) < seq) then begin
          t.h_time.(!i) <- t.h_time.(c);
          t.h_seq.(!i) <- t.h_seq.(c);
          t.h_slot.(!i) <- t.h_slot.(c);
          i := c
        end
        else continue := false
      end
    done;
    t.h_time.(!i) <- time;
    t.h_seq.(!i) <- seq;
    t.h_slot.(!i) <- slot
  end

(* --- Slab --------------------------------------------------------------- *)

let slab_grow t =
  let cap = Array.length t.cbs in
  if cap >= max_slots then
    invalid_arg "Scheduler: more than 2^24 simultaneously pending events";
  let cap' = min max_slots (2 * cap) in
  let cbs = Array.make cap' noop in
  let sos = Array.make cap' (-1) in
  Array.blit t.cbs 0 cbs 0 cap;
  Array.blit t.seq_of_slot 0 sos 0 cap;
  t.cbs <- cbs;
  t.seq_of_slot <- sos;
  let free = Array.make cap' 0 in
  Array.blit t.free 0 free 0 t.free_top;
  (* Push the new slots so the lowest index pops first. *)
  for i = 0 to cap' - cap - 1 do
    free.(t.free_top + i) <- cap' - 1 - i
  done;
  t.free <- free;
  t.free_top <- t.free_top + (cap' - cap)

let alloc_slot t =
  if t.free_top = 0 then slab_grow t;
  t.free_top <- t.free_top - 1;
  t.free.(t.free_top)

let release_slot t slot =
  t.cbs.(slot) <- noop;
  t.seq_of_slot.(slot) <- -1;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

(* --- Public API --------------------------------------------------------- *)

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: time %g is in the past (now %g)" time t.clock);
  let slot = alloc_slot t in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.cbs.(slot) <- f;
  t.seq_of_slot.(slot) <- seq;
  t.live <- t.live + 1;
  if t.live > t.max_live then t.max_live <- t.live;
  heap_push t time seq slot;
  (seq lsl slot_bits) lor slot

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Scheduler.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t id =
  let slot = id land slot_mask in
  let seq = id lsr slot_bits in
  if slot < Array.length t.seq_of_slot && t.seq_of_slot.(slot) = seq then begin
    release_slot t slot;
    t.live <- t.live - 1
  end

let pending t = t.live

(* Discard cancelled entries at the root; [true] iff a live root remains.
   This is the single peek both [step] and [run] build on. *)
let rec skim t =
  if t.h_size = 0 then false
  else begin
    let slot = t.h_slot.(0) in
    if t.seq_of_slot.(slot) = t.h_seq.(0) then true
    else begin
      heap_remove_root t;
      skim t
    end
  end

(* Precondition: [skim t] just returned [true]. *)
let exec_root t =
  let time = t.h_time.(0) in
  let slot = t.h_slot.(0) in
  heap_remove_root t;
  let f = t.cbs.(slot) in
  (* Release before invoking: callbacks observe the event as no longer
     pending (the telemetry probe chain relies on this to let the queue
     drain). *)
  release_slot t slot;
  t.live <- t.live - 1;
  t.clock <- time;
  t.executed <- t.executed + 1;
  t.last_event_time <- time;
  f ()

let step t =
  if skim t then begin
    exec_root t;
    true
  end
  else false

let next_time t = if skim t then Some t.h_time.(0) else None

let run_window t ~stop ~cap =
  let continue = ref true in
  while !continue do
    if skim t && t.h_time.(0) < stop && t.h_time.(0) <= cap then exec_root t
    else continue := false
  done

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      if skim t && t.h_time.(0) <= limit then exec_root t else continue := false
    done

let time_of_last_event t = t.last_event_time
let events_executed t = t.executed
let max_live t = t.max_live
let slab_capacity t = Array.length t.cbs
