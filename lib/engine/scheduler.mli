(** Discrete-event scheduler: the simulation kernel.

    Events are closures executed at a simulated instant.  Ties are broken
    by scheduling order, so a run is fully deterministic.  This plays the
    role SSFNet's kernel played for the paper.

    Internally the queue is an array-slab: callbacks sit in a growable
    slot array with a free-list, the heap is parallel arrays with the
    time key inline (no per-event record, no hash-table lookup per
    executed event), and ids are generation-tagged so [cancel] stays a
    safe no-op on stale handles.  See DESIGN.md "Performance". *)

type t

type event_id
(** Handle for cancellation.  Each [schedule] returns a fresh id. *)

val create : unit -> t

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Requires [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant.  Requires [time >= now t]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (not cancelled, not yet fired) events. *)

val step : t -> bool
(** Execute the next event.  [false] if the queue was empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stop before executing any event
    scheduled strictly after [until] (the clock then reads the time of the
    last executed event). *)

val next_time : t -> float option
(** Timestamp of the earliest live event, without executing it.
    [None] if the queue is empty. *)

val run_window : t -> stop:float -> cap:float -> unit
(** Execute every live event with time strictly below [stop] and at most
    [cap].  The conservative-window primitive: a shard drains its slab up
    to the window boundary and no further. *)

val time_of_last_event : t -> float
(** Timestamp of the most recently executed event (0 if none ran yet). *)

val events_executed : t -> int

val max_live : t -> int
(** Slab occupancy high-water: the most events simultaneously pending
    since [create].  Always tracked (one compare per [schedule]); the
    profiler and telemetry read it at finalize. *)

val slab_capacity : t -> int
(** Current size of the callback slab (grows by doubling, never
    shrinks) — with {!max_live} this bounds the queue's memory. *)
