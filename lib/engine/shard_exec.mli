(** Conservative parallel event execution over per-shard slab schedulers.

    One simulation is split across [shards] {!Scheduler} instances, each
    driven by its own OCaml 5 domain.  Synchronization is
    null-message-free and barrier-windowed: all inter-shard interaction
    goes through per-edge mailboxes whose messages can never take effect
    sooner than [lookahead] simulated seconds after they were posted (in
    the BGP simulator the 25 ms one-way link delay).  Each round the
    executor

    + drains every mailbox, sorting the incoming batch with the caller's
      shard-count-invariant comparator and handing it to [deliver];
    + agrees on the next window [[start, start + lookahead)] where
      [start] is the global minimum next-event time — windows {e jump},
      so an idle stretch costs one barrier, not a busy-wait;
    + lets every shard run its own scheduler freely inside the window
      ({!Scheduler.run_window}): within a window no shard can affect
      another, so no locks are taken on the hot path.

    Determinism: the caller keys its comparator on values that do not
    depend on the shard layout (the simulator uses
    [(arrival time, source router, per-source sequence)]), every mailbox
    is drained at a globally-agreed barrier, and window boundaries are a
    pure function of event times — so the full delivery schedule, and
    hence the simulation, is bit-identical for any shard count.
    See DESIGN.md §11. *)

type 'msg t

val create : shards:int -> compare:('msg -> 'msg -> int) -> 'msg t
(** [compare] must be a total order on messages, independent of the shard
    layout.  @raise Invalid_argument if [shards < 1]. *)

val shards : 'msg t -> int

val sched : 'msg t -> int -> Scheduler.t
(** Shard [i]'s scheduler.  Outside {!run_phase} the caller (a
    single-threaded orchestrator) may schedule onto any of them; during a
    phase each is private to its domain. *)

val post : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Append to the [src -> dst] mailbox.  Lock-free: only shard [src]'s
    domain (or the orchestrator, between phases) may post on that edge.
    The message is delivered — sorted, via [deliver] — at the next
    barrier, so its effect time must be at least [lookahead] after the
    posting shard's current time. *)

val run_phase :
  'msg t ->
  lookahead:float ->
  cap:float ->
  deliver:(int -> 'msg array -> unit) ->
  ?at_barrier:(now:float -> unit) ->
  unit ->
  unit
(** Run windows until no shard holds an event at time [<= cap] (pending
    events beyond [cap] remain queued, mirroring
    [Scheduler.run ~until:cap]).  [deliver dst batch] runs on shard
    [dst]'s domain between windows with the batch sorted by [compare];
    it must only touch shard [dst]'s state and scheduler.  [at_barrier]
    runs single-threaded (all other domains parked at a barrier) once
    per window with the window's start time — the telemetry-probe hook.
    With [shards = 1] the phase runs inline, no domain is spawned.
    An exception in any shard stops the phase at the next barrier and is
    re-raised (lowest shard index wins) after all domains joined. *)

val now : 'msg t -> float
(** Max clock over shards: the time of the last executed event. *)

val pending : 'msg t -> int
(** Total live events over all shards (mailboxes are always empty between
    phases — every [run_phase] round drains them before deciding). *)

val events_executed : 'msg t -> int
(** Total events executed over all shards. *)

type stats = {
  windows : int;  (** barrier rounds across all [run_phase] calls *)
  posted : int;  (** messages ever posted to mailboxes *)
}

val stats : 'msg t -> stats

(** The sense-reversing barrier used between windows, exposed for
    microbenchmarks. *)
module Barrier : sig
  type t

  val create : int -> t
  (** [create parties].  @raise Invalid_argument if [parties < 1]. *)

  val wait : t -> unit
  (** Block until all [parties] domains arrive.  Reusable immediately;
    a single-party barrier returns without synchronizing. *)
end
