(** Work pool over OCaml 5 domains.

    [map] fans a list of independent jobs out over [jobs] domains (a
    mutex-protected work deque; each worker repeatedly takes the next
    pending job).  Results are returned in input order, so for a pure
    job function the output is bit-identical to [List.map] regardless
    of the job count or of which domain ran which job.  [jobs = 1] (or
    a single-element input) runs entirely in the calling domain with no
    domain spawned at all.

    Exceptions: if one or more jobs raise, the pool drains, joins every
    worker domain (no domain leak), and re-raises — deterministically,
    the exception of the raising job with the {e lowest} input index,
    with its original backtrace. *)

val default_jobs : unit -> int
(** Process-wide default used when [?jobs] is omitted.  Initially
    [Domain.recommended_domain_count ()]; override with
    [set_default_jobs] (e.g. from a [--jobs] CLI flag). *)

val set_default_jobs : int -> unit
(** Sets the process-wide default job count.
    @raise Invalid_argument if the count is [< 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] is [List.map f xs], computed on up to [jobs]
    domains (default {!default_jobs}).
    @raise Invalid_argument if [jobs < 1]. *)

(** {1 Instrumentation}

    The pool keeps cumulative counters so callers (the bench harness)
    can report parallel speedup: [busy] is the process CPU time consumed
    during [map] calls — which aggregates every domain's work, i.e. an
    estimate of the sequential replay cost — and [wall] is their elapsed
    time, so [busy /. wall] estimates the achieved speedup (~1 on a
    saturated single core regardless of the job count).

    Per-domain runtime metrics: each worker additionally times its own
    job executions and its waits on the work deque, surfaced per batch
    through {!last_batch} and cumulatively as [queue_wait]. *)

type domain_stat = {
  domain : int;  (** worker index within the batch; 0 is the caller *)
  jobs : int;  (** jobs this worker executed *)
  busy : float;  (** wall seconds this worker spent inside jobs *)
  wait : float;  (** wall seconds this worker spent taking from the deque *)
}

type stats = {
  busy : float;  (** process CPU seconds consumed during [map] calls *)
  wall : float;  (** summed elapsed seconds of [map] calls *)
  jobs_run : int;  (** jobs executed *)
  batches : int;  (** [map] calls *)
  queue_wait : float;
      (** summed wall seconds all workers spent waiting on the work
          deque (lock contention indicator) *)
}

val stats : unit -> stats

val last_batch : unit -> domain_stat list
(** Per-domain breakdown of the most recent [map] call (one entry per
    worker, caller first).  Empty before the first call or after
    [reset_stats]. *)

val reset_stats : unit -> unit
