(* Barrier-windowed conservative execution.  Three barriers per round:

     B1  every shard finished the previous window (all posts visible)
     B2  every shard drained its incoming mailboxes (deliveries queued)
     B3  shard 0 published the next-window decision (or Stop)

   Between B2 and B3 shard 0 alone computes the global minimum
   next-event time and runs the caller's [at_barrier] hook, so the hook
   can read cross-shard state without racing.  The mutex-based barrier
   gives the happens-before edges that make the lock-free mailboxes (a
   plain [list ref] per directed shard pair, written only by the source
   domain) safe to read on the destination side. *)

module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    if parties < 1 then invalid_arg "Shard_exec.Barrier.create: parties must be >= 1";
    { m = Mutex.create (); c = Condition.create (); parties; count = 0; phase = 0 }

  let wait b =
    if b.parties > 1 then begin
      Mutex.lock b.m;
      let phase = b.phase in
      b.count <- b.count + 1;
      if b.count = b.parties then begin
        b.count <- 0;
        b.phase <- phase + 1;
        Condition.broadcast b.c
      end
      else
        while b.phase = phase do
          Condition.wait b.c b.m
        done;
      Mutex.unlock b.m
    end
end

type decision = Stop | Window of float

type 'msg t = {
  k : int;
  scheds : Scheduler.t array;
  (* boxes.(src * k + dst): messages posted by shard [src] for shard
     [dst] this window, newest first.  Written by src's domain only;
     read and cleared by dst's domain after B1. *)
  boxes : 'msg list ref array;
  compare : 'msg -> 'msg -> int;
  barrier : Barrier.t;
  mutable decision : decision;  (* written by shard 0 between B2 and B3 *)
  mutable windows : int;
  (* Per-source posted counters, strided to keep each on its own cache
     line (they are bumped on every send). *)
  posted : int array;
  excs : exn option array;
}

let stride = 16

let create ~shards ~compare =
  if shards < 1 then invalid_arg "Shard_exec.create: shards must be >= 1";
  {
    k = shards;
    scheds = Array.init shards (fun _ -> Scheduler.create ());
    boxes = Array.init (shards * shards) (fun _ -> ref []);
    compare;
    barrier = Barrier.create shards;
    decision = Stop;
    windows = 0;
    posted = Array.make (shards * stride) 0;
    excs = Array.make shards None;
  }

let shards t = t.k
let sched t i = t.scheds.(i)

let post t ~src ~dst m =
  let t0 = if Profile.on () then Profile.now_ns () else 0L in
  let box = t.boxes.((src * t.k) + dst) in
  box := m :: !box;
  t.posted.(src * stride) <- t.posted.(src * stride) + 1;
  if Profile.on () then Profile.accum Mailbox_post t0

let drain_into t dst =
  (* Gather everything addressed to [dst], restore posting order per
     source, and sort with the caller's layout-invariant comparator. *)
  let batch = ref [] in
  for src = t.k - 1 downto 0 do
    let box = t.boxes.((src * t.k) + dst) in
    batch := List.rev_append !box !batch;
    box := []
  done;
  match !batch with
  | [] -> [||]
  | msgs ->
    let arr = Array.of_list msgs in
    Array.sort t.compare arr;
    arr

let run_phase t ~lookahead ~cap ~deliver ?at_barrier () =
  if lookahead <= 0.0 then invalid_arg "Shard_exec.run_phase: lookahead must be positive";
  Array.fill t.excs 0 t.k None;
  t.decision <- Stop;
  let worker d =
    (* Read the profiler arm once per phase: the windows loop is the
       hot path, and a window with profiling off must cost exactly one
       extra branch per section. *)
    let prof = Profile.on () in
    let continue = ref true in
    while !continue do
      let t0 = if prof then Profile.now_ns () else 0L in
      Barrier.wait t.barrier (* B1: previous window done, posts visible *);
      if prof then Profile.record Barrier_wait ~shard:d t0;
      let t0 = if prof then Profile.now_ns () else 0L in
      (if t.excs.(d) = None then
         try
           let batch = drain_into t d in
           if Array.length batch > 0 then deliver d batch
         with e -> t.excs.(d) <- Some e);
      if prof then Profile.record Mailbox_drain ~shard:d t0;
      let t0 = if prof then Profile.now_ns () else 0L in
      Barrier.wait t.barrier (* B2: mailboxes empty, deliveries queued *);
      if prof then Profile.record Barrier_wait ~shard:d t0;
      if d = 0 then begin
        let t0 = if prof then Profile.now_ns () else 0L in
        let failed = Array.exists Option.is_some t.excs in
        let next = ref None in
        if not failed then
          Array.iter
            (fun sched ->
              match Scheduler.next_time sched with
              | None -> ()
              | Some time -> (
                match !next with
                | Some best when best <= time -> ()
                | Some _ | None -> next := Some time))
            t.scheds;
        t.decision <-
          (match !next with
          | Some start when start <= cap ->
            (try
               (match at_barrier with Some f -> f ~now:start | None -> ());
               t.windows <- t.windows + 1;
               Window (start +. lookahead)
             with e ->
               t.excs.(0) <- Some e;
               Stop)
          | Some _ | None -> Stop);
        if prof then Profile.record Decide ~shard:0 t0
      end;
      let t0 = if prof then Profile.now_ns () else 0L in
      Barrier.wait t.barrier (* B3: decision visible *);
      if prof then Profile.record Barrier_wait ~shard:d t0;
      match t.decision with
      | Stop -> continue := false
      | Window stop ->
        if t.excs.(d) = None then (
          let t0 = if prof then Profile.now_ns () else 0L in
          (try Scheduler.run_window t.scheds.(d) ~stop ~cap
           with e -> t.excs.(d) <- Some e);
          if prof then Profile.record Compute ~shard:d t0)
    done
  in
  if t.k = 1 then worker 0
  else begin
    let domains = List.init (t.k - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    List.iter Domain.join domains
  end;
  Array.iter (function Some e -> raise e | None -> ()) t.excs

let now t = Array.fold_left (fun acc s -> Float.max acc (Scheduler.now s)) 0.0 t.scheds

let pending t = Array.fold_left (fun acc s -> acc + Scheduler.pending s) 0 t.scheds

let events_executed t =
  Array.fold_left (fun acc s -> acc + Scheduler.events_executed s) 0 t.scheds

type stats = { windows : int; posted : int }

let stats t =
  let posted = ref 0 in
  for s = 0 to t.k - 1 do
    posted := !posted + t.posted.(s * stride)
  done;
  { windows = t.windows; posted = !posted }
