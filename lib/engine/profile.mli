(** Wall-clock runtime profiler: per-domain span rings over a monotonic
    clock, plus named counters and per-domain GC deltas.

    The profiler observes the simulator, never the simulation: it reads
    {!now_ns} (CLOCK_MONOTONIC) and [Gc.quick_stat] only, so enabling it
    cannot perturb simulated state, RNG draws, or event ordering — runs
    are bit-identical with profiling off and on.

    Sessions are global: {!start} arms recording, {!stop} disarms it and
    returns everything recorded since.  Each domain lazily allocates its
    own recorder (via [Domain.DLS]) the first time it records, so the
    hot paths never contend on a lock; only {!stop} walks the registry.

    Two recording flavours:
    - {!record}: one ring entry per call — for coarse spans (a window's
      compute slice, a runner phase).  The ring wraps; overwritten
      entries are counted as dropped.
    - {!accum}: a per-domain running [(total_ns, count)] per span kind —
      for hot, tiny spans (a single mailbox post, one pool job) where a
      ring entry each would be noise.

    Callers should read {!on} once per batch and skip the clock reads
    entirely when disabled:
    {[
      let prof = Profile.on () in
      ...
      let t0 = if prof then Profile.now_ns () else 0L in
      work ();
      if prof then Profile.record Compute ~shard t0
    ]} *)

type span_kind =
  | Compute        (** [Scheduler.run_window] inside a shard's window *)
  | Barrier_wait   (** blocked in [Shard_exec.Barrier.wait] *)
  | Mailbox_drain  (** drain + sort + deliver of a window's mailboxes *)
  | Mailbox_post   (** posting one cross-shard message (accumulated) *)
  | Decide         (** shard 0 computing the next-window decision *)
  | Merge          (** merge-renumbering per-shard traces *)
  | Pool_job       (** running one job on a pool domain (accumulated) *)
  | Pool_wait      (** blocked on the pool's job queue (accumulated) *)
  | Build          (** topology generation + network build *)
  | Warmup         (** pre-failure convergence phase *)
  | Fail           (** failure-injection instant *)
  | Converge       (** post-failure run to quiescence *)
  | Finalize       (** attribution, telemetry export, reporting *)

val span_name : span_kind -> string
(** Stable lower-snake name used in JSON and flamegraph output. *)

val phase_kind : span_kind -> bool
(** Phases ([Build]..[Finalize]) structurally contain the other spans
    recorded on the same domain; reporters use this to compute phase
    self-time and to keep leaf-span sums comparable to wall time. *)

(** {1 Recording} *)

val start : unit -> unit
(** Arm the profiler and reset all state.  Recorders from a previous
    session are discarded. *)

val on : unit -> bool
(** Whether a session is armed ([Atomic.get]; safe from any domain). *)

val now_ns : unit -> int64
(** CLOCK_MONOTONIC in nanoseconds (reads the clock even when off). *)

val record : span_kind -> ?shard:int -> int64 -> unit
(** [record kind ~shard t0] appends a [(kind, shard, t0, now)] span to
    the calling domain's ring.  [shard] defaults to [-1] (no shard).
    No-op when the profiler is off. *)

val accum : span_kind -> int64 -> unit
(** [accum kind t0] adds [now - t0] to the calling domain's running
    total for [kind].  No-op when the profiler is off. *)

val counter_add : string -> int -> unit
(** Add to a named global counter (created at 0).  Thread-safe. *)

val counter_max : string -> int -> unit
(** Raise a named global counter to at least the given value. *)

(** {1 Reports} *)

type span = { kind : span_kind; shard : int; t0_ns : int64; t1_ns : int64 }

type accum_entry = { a_kind : span_kind; a_ns : int64; a_count : int }

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;  (** absolute, at [stop] — not a delta *)
}

type domain_report = {
  dom : int;          (** [Domain.self] id *)
  spans : span list;  (** oldest first *)
  dropped : int;      (** ring overwrites *)
  accums : accum_entry list;
  gc : gc_delta;
}

type report = {
  wall_ns : int64;  (** [stop] minus [start] on the monotonic clock *)
  domains : domain_report list;  (** sorted by [dom] *)
  counters : (string * int) list;  (** sorted by name *)
}

val stop : unit -> report option
(** Disarm and collect.  [None] if no session was armed. *)

(** {1 Rendering} *)

val to_json : report -> string
(** Schema [bgp-prof/1]: wall time, per-domain span aggregates (total
    seconds, count, max seconds per [(kind, shard)]), accumulators, GC
    deltas, and counters. *)

val to_flamegraph : report -> string
(** Wall-time collapsed stacks, one per line: leaf spans render as
    [domainD;shardS;kind count_us] ([domainD;kind] when shard-less);
    phases render as [domainD;kind self_us] where self-time subtracts
    any leaf span recorded on the same domain whose start falls inside
    the phase. *)

val summarize : report -> (string * float * int) list
(** Flat [(label, seconds, count)] rows ("domain0/shard1/compute"),
    aggregated like {!to_json} — for embedding in bench reports without
    depending on this module's types. *)

val queue_wait_ns : report -> int64
(** Cumulative {!Pool_wait} across all domains. *)
