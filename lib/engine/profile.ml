(* Per-domain span rings over CLOCK_MONOTONIC.  See the .mli for the
   session model; the implementation notes here cover the concurrency
   story.

   Recording never takes a lock: each domain owns a recorder reached
   through Domain.DLS, created lazily on first use and registered (one
   mutex acquisition, once per domain per session) so [stop] can find
   it.  A session generation counter invalidates recorders left in DLS
   by earlier sessions — a pool domain that outlives two sessions gets a
   fresh ring for the second.  [stop] runs while pool/shard domains are
   quiescent (the engine joins them before reports are cut), so reading
   rings without a lock is safe by the same join-ordering argument the
   mailboxes use. *)

external now_ns : unit -> (int64[@unboxed])
  = "bgp_prof_clock_ns" "bgp_prof_clock_ns_unboxed"
[@@noalloc]

type span_kind =
  | Compute
  | Barrier_wait
  | Mailbox_drain
  | Mailbox_post
  | Decide
  | Merge
  | Pool_job
  | Pool_wait
  | Build
  | Warmup
  | Fail
  | Converge
  | Finalize

let span_name = function
  | Compute -> "compute"
  | Barrier_wait -> "barrier_wait"
  | Mailbox_drain -> "mailbox_drain"
  | Mailbox_post -> "mailbox_post"
  | Decide -> "decide"
  | Merge -> "merge"
  | Pool_job -> "pool_job"
  | Pool_wait -> "pool_wait"
  | Build -> "build"
  | Warmup -> "warmup"
  | Fail -> "fail"
  | Converge -> "converge"
  | Finalize -> "finalize"

let phase_kind = function
  | Build | Warmup | Fail | Converge | Finalize -> true
  | Compute | Barrier_wait | Mailbox_drain | Mailbox_post | Decide | Merge
  | Pool_job | Pool_wait ->
    false

let kind_index = function
  | Compute -> 0
  | Barrier_wait -> 1
  | Mailbox_drain -> 2
  | Mailbox_post -> 3
  | Decide -> 4
  | Merge -> 5
  | Pool_job -> 6
  | Pool_wait -> 7
  | Build -> 8
  | Warmup -> 9
  | Fail -> 10
  | Converge -> 11
  | Finalize -> 12

let n_kinds = 13

let kind_of_index = function
  | 0 -> Compute
  | 1 -> Barrier_wait
  | 2 -> Mailbox_drain
  | 3 -> Mailbox_post
  | 4 -> Decide
  | 5 -> Merge
  | 6 -> Pool_job
  | 7 -> Pool_wait
  | 8 -> Build
  | 9 -> Warmup
  | 10 -> Fail
  | 11 -> Converge
  | 12 -> Finalize
  | _ -> assert false

(* --- Session state ------------------------------------------------------- *)

let ring_cap = 65_536

type recorder = {
  gen : int;
  r_dom : int;
  kinds : int array;
  r_shards : int array;
  t0s : int64 array;
  t1s : int64 array;
  mutable len : int;  (* total records; ring slot is [len mod ring_cap] *)
  acc_ns : int64 array;  (* per span kind *)
  acc_n : int array;
  gc0 : Gc.stat;  (* quick_stat at recorder creation *)
}

let armed = Atomic.make false
let generation = Atomic.make 0
let t_start = Atomic.make 0L
let registry_mu = Mutex.create ()
let registry : recorder list ref = ref []
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 16

let dls_key : recorder option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_recorder () =
  let r =
    {
      gen = Atomic.get generation;
      r_dom = (Domain.self () :> int);
      kinds = Array.make ring_cap 0;
      r_shards = Array.make ring_cap (-1);
      t0s = Array.make ring_cap 0L;
      t1s = Array.make ring_cap 0L;
      len = 0;
      acc_ns = Array.make n_kinds 0L;
      acc_n = Array.make n_kinds 0;
      gc0 = Gc.quick_stat ();
    }
  in
  Mutex.lock registry_mu;
  registry := r :: !registry;
  Mutex.unlock registry_mu;
  r

let recorder () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some r when r.gen = Atomic.get generation -> r
  | Some _ | None ->
    let r = fresh_recorder () in
    cell := Some r;
    r

let on () = Atomic.get armed

let start () =
  Mutex.lock registry_mu;
  registry := [];
  Hashtbl.reset counters;
  Mutex.unlock registry_mu;
  Atomic.incr generation;
  Atomic.set t_start (now_ns ());
  Atomic.set armed true

let record kind ?(shard = -1) t0 =
  if Atomic.get armed then begin
    let t1 = now_ns () in
    let r = recorder () in
    let slot = r.len mod ring_cap in
    r.kinds.(slot) <- kind_index kind;
    r.r_shards.(slot) <- shard;
    r.t0s.(slot) <- t0;
    r.t1s.(slot) <- t1;
    r.len <- r.len + 1
  end

let accum kind t0 =
  if Atomic.get armed then begin
    let t1 = now_ns () in
    let r = recorder () in
    let i = kind_index kind in
    r.acc_ns.(i) <- Int64.add r.acc_ns.(i) (Int64.sub t1 t0);
    r.acc_n.(i) <- r.acc_n.(i) + 1
  end

let counter_bump name v ~combine =
  if Atomic.get armed then begin
    Mutex.lock registry_mu;
    (match Hashtbl.find_opt counters name with
    | Some cell -> cell := combine !cell v
    | None -> Hashtbl.add counters name (ref (combine 0 v)));
    Mutex.unlock registry_mu
  end

let counter_add name v = counter_bump name v ~combine:( + )
let counter_max name v = counter_bump name v ~combine:max

(* --- Reports ------------------------------------------------------------- *)

type span = { kind : span_kind; shard : int; t0_ns : int64; t1_ns : int64 }
type accum_entry = { a_kind : span_kind; a_ns : int64; a_count : int }

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

type domain_report = {
  dom : int;
  spans : span list;
  dropped : int;
  accums : accum_entry list;
  gc : gc_delta;
}

type report = {
  wall_ns : int64;
  domains : domain_report list;
  counters : (string * int) list;
}

let collect_recorder r =
  (* The recorder's own domain is quiescent (joined or ourselves) by the
     time stop runs; plain reads suffice. *)
  let stored = min r.len ring_cap in
  let dropped = r.len - stored in
  let first = if r.len > ring_cap then r.len mod ring_cap else 0 in
  let spans =
    List.init stored (fun i ->
        let slot = (first + i) mod ring_cap in
        {
          kind = kind_of_index r.kinds.(slot);
          shard = r.r_shards.(slot);
          t0_ns = r.t0s.(slot);
          t1_ns = r.t1s.(slot);
        })
  in
  let accums =
    List.filter_map
      (fun i ->
        if r.acc_n.(i) = 0 then None
        else
          Some { a_kind = kind_of_index i; a_ns = r.acc_ns.(i); a_count = r.acc_n.(i) })
      (List.init n_kinds Fun.id)
  in
  let gc1 = Gc.quick_stat () in
  let gc =
    (* Deltas are meaningful only for the domain calling stop; for other
       domains quick_stat here reads the stopping domain again, so take
       the recorder's own start point and the best end point we have.
       In practice recorders on worker domains are collected after the
       workers were joined, and OCaml folds their GC totals into the
       joining domain — the per-domain deltas are attributed to where
       the recorder started, which is what the report documents. *)
    {
      minor_words = gc1.Gc.minor_words -. r.gc0.Gc.minor_words;
      promoted_words = gc1.Gc.promoted_words -. r.gc0.Gc.promoted_words;
      major_words = gc1.Gc.major_words -. r.gc0.Gc.major_words;
      minor_collections = gc1.Gc.minor_collections - r.gc0.Gc.minor_collections;
      major_collections = gc1.Gc.major_collections - r.gc0.Gc.major_collections;
      heap_words = gc1.Gc.heap_words;
    }
  in
  { dom = r.r_dom; spans; dropped; accums; gc }

let stop () =
  if not (Atomic.get armed) then None
  else begin
    Atomic.set armed false;
    let wall_ns = Int64.sub (now_ns ()) (Atomic.get t_start) in
    Mutex.lock registry_mu;
    let recs = !registry in
    let counts =
      Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) counters []
    in
    registry := [];
    Hashtbl.reset counters;
    Mutex.unlock registry_mu;
    let domains =
      List.map collect_recorder recs
      |> List.sort (fun a b -> compare a.dom b.dom)
    in
    let counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counts in
    Some { wall_ns; domains; counters }
  end

(* --- Aggregation --------------------------------------------------------- *)

let ns_to_s ns = Int64.to_float ns /. 1e9

(* (kind, shard) -> (total_ns, count, max_ns), sorted for stable output. *)
let aggregate_spans spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let d = Int64.sub s.t1_ns s.t0_ns in
      let key = (kind_index s.kind, s.shard) in
      match Hashtbl.find_opt tbl key with
      | Some (total, n, mx) ->
        Hashtbl.replace tbl key (Int64.add total d, n + 1, Int64.max mx d)
      | None -> Hashtbl.add tbl key (d, 1, d))
    spans;
  Hashtbl.fold (fun (ki, shard) (total, n, mx) acc -> (ki, shard, total, n, mx) :: acc) tbl []
  |> List.sort compare

(* Phase self-time: a phase span minus every leaf span on the same
   domain whose start lies inside it.  Leaves never overlap each other
   on one domain (they are sequential sections of the same loop), so
   subtracting totals is exact up to clock resolution. *)
let phase_self dom_report =
  let phases =
    List.filter (fun s -> phase_kind s.kind) dom_report.spans
    |> List.map (fun s -> (s, ref (Int64.sub s.t1_ns s.t0_ns)))
  in
  List.iter
    (fun leaf ->
      if not (phase_kind leaf.kind) then
        List.iter
          (fun (p, self) ->
            if leaf.t0_ns >= p.t0_ns && leaf.t0_ns < p.t1_ns then
              self := Int64.sub !self (Int64.sub leaf.t1_ns leaf.t0_ns))
          phases)
    dom_report.spans;
  List.map (fun (p, self) -> (p.kind, Int64.max 0L !self)) phases

(* --- JSON (bgp-prof/1) --------------------------------------------------- *)

let buf_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let buf_sep b first = if !first then first := false else Buffer.add_string b ","

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"bgp-prof/1\"";
  Buffer.add_string b ",\"wall_s\":";
  buf_float b (ns_to_s r.wall_ns);
  Buffer.add_string b ",\"domains\":[";
  let firstd = ref true in
  List.iter
    (fun d ->
      buf_sep b firstd;
      Buffer.add_string b (Printf.sprintf "{\"domain\":%d,\"dropped\":%d" d.dom d.dropped);
      Buffer.add_string b ",\"spans\":[";
      let first = ref true in
      List.iter
        (fun (ki, shard, total, n, mx) ->
          buf_sep b first;
          Buffer.add_string b
            (Printf.sprintf "{\"span\":\"%s\",\"shard\":%d,\"total_s\":"
               (span_name (kind_of_index ki))
               shard);
          buf_float b (ns_to_s total);
          Buffer.add_string b (Printf.sprintf ",\"count\":%d,\"max_s\":" n);
          buf_float b (ns_to_s mx);
          Buffer.add_string b "}")
        (aggregate_spans d.spans);
      Buffer.add_string b "],\"accums\":[";
      let first = ref true in
      List.iter
        (fun a ->
          buf_sep b first;
          Buffer.add_string b
            (Printf.sprintf "{\"span\":\"%s\",\"total_s\":" (span_name a.a_kind));
          buf_float b (ns_to_s a.a_ns);
          Buffer.add_string b (Printf.sprintf ",\"count\":%d}" a.a_count))
        d.accums;
      Buffer.add_string b "],\"gc\":{\"minor_words\":";
      buf_float b d.gc.minor_words;
      Buffer.add_string b ",\"promoted_words\":";
      buf_float b d.gc.promoted_words;
      Buffer.add_string b ",\"major_words\":";
      buf_float b d.gc.major_words;
      Buffer.add_string b
        (Printf.sprintf
           ",\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d}}"
           d.gc.minor_collections d.gc.major_collections d.gc.heap_words))
    r.domains;
  Buffer.add_string b "],\"counters\":{";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      buf_sep b first;
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    r.counters;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- Flamegraph ---------------------------------------------------------- *)

let us ns = Int64.to_int (Int64.div ns 1_000L)

let to_flamegraph r =
  let b = Buffer.create 1024 in
  List.iter
    (fun d ->
      (* Leaf spans, aggregated by (kind, shard). *)
      List.iter
        (fun (ki, shard, total, _n, _mx) ->
          let kind = kind_of_index ki in
          if not (phase_kind kind) then
            if shard >= 0 then
              Buffer.add_string b
                (Printf.sprintf "domain%d;shard%d;%s %d\n" d.dom shard
                   (span_name kind) (us total))
            else
              Buffer.add_string b
                (Printf.sprintf "domain%d;%s %d\n" d.dom (span_name kind) (us total)))
        (aggregate_spans d.spans);
      (* Accumulators are leaves, except Pool_job: a pool job *contains*
         the runner phases executed on that domain (a trial runs inside
         its pool job), so render its self-time — the accumulated total
         minus the gross phase spans recorded on the same domain. *)
      let phase_gross =
        List.fold_left
          (fun acc s ->
            if phase_kind s.kind then Int64.add acc (Int64.sub s.t1_ns s.t0_ns)
            else acc)
          0L d.spans
      in
      List.iter
        (fun a ->
          let ns =
            if a.a_kind = Pool_job then
              Int64.max 0L (Int64.sub a.a_ns phase_gross)
            else a.a_ns
          in
          Buffer.add_string b
            (Printf.sprintf "domain%d;%s %d\n" d.dom (span_name a.a_kind) (us ns)))
        d.accums;
      (* Phases at self-time, folded over repeats of the same kind. *)
      let totals = Hashtbl.create 8 in
      List.iter
        (fun (kind, self) ->
          let i = kind_index kind in
          let prev = Option.value ~default:0L (Hashtbl.find_opt totals i) in
          Hashtbl.replace totals i (Int64.add prev self))
        (phase_self d);
      Hashtbl.fold (fun i total acc -> (i, total) :: acc) totals []
      |> List.sort compare
      |> List.iter (fun (i, total) ->
             Buffer.add_string b
               (Printf.sprintf "domain%d;%s %d\n" d.dom
                  (span_name (kind_of_index i))
                  (us total))))
    r.domains;
  Buffer.contents b

(* --- Flat summary -------------------------------------------------------- *)

let summarize r =
  List.concat_map
    (fun d ->
      let spans =
        List.map
          (fun (ki, shard, total, n, _mx) ->
            let label =
              if shard >= 0 then
                Printf.sprintf "domain%d/shard%d/%s" d.dom shard
                  (span_name (kind_of_index ki))
              else Printf.sprintf "domain%d/%s" d.dom (span_name (kind_of_index ki))
            in
            (label, ns_to_s total, n))
          (aggregate_spans d.spans)
      in
      let accums =
        List.map
          (fun a ->
            ( Printf.sprintf "domain%d/%s" d.dom (span_name a.a_kind),
              ns_to_s a.a_ns,
              a.a_count ))
          d.accums
      in
      spans @ accums)
    r.domains

let queue_wait_ns r =
  List.fold_left
    (fun acc d ->
      List.fold_left
        (fun acc a -> if a.a_kind = Pool_wait then Int64.add acc a.a_ns else acc)
        acc d.accums)
    0L r.domains
