(** Degree-distribution specifications and realization of exact degree
    sequences as connected random simple graphs.

    This replaces the paper's "modified BRITE" (Section 3.1): the skewed
    two-class distributions (70-30, 50-50, 85-15) plus a capped power law
    standing in for the real AS connectivity data of [18]. *)

module Rng := Bgp_engine.Rng

type spec =
  | Two_class of {
      low_frac : float;  (** fraction of nodes in the low-degree class *)
      low_degrees : int array;  (** each low node draws uniformly from these *)
      high_degrees : int array;
    }
  | Uniform_range of { lo : int; hi : int }
  | Power_law of { gamma : float; min_degree : int; max_degree : int }
      (** P(d) proportional to d^-gamma on [min_degree, max_degree]. *)

val skewed_70_30 : spec
(** 70% with degree 1-3, 30% with degree 8; average 3.8 (Section 4.1). *)

val skewed_50_50 : spec
(** 50% with degree 1-3, 50% with degree 5 or 6; average ~3.8 (Fig 4). *)

val skewed_85_15 : spec
(** 85% with degree 1-3, 15% with degree 14; average 3.8 (Fig 4). *)

val skewed_50_50_dense : spec
(** 50% with degree 1-3, 50% with degree 13 or 14; average ~7.6 (Fig 5). *)

val internet_like : spec
(** Power law capped at degree 40 tuned so that ~70% of ASes have degree
    < 4 and the average is ~3.4 — the three facts the paper states about
    the Zhang et al. dataset (Sections 3.1, 4.1).  Substitution documented
    in DESIGN.md. *)

val mean_degree : spec -> float
(** Expected average degree of sequences drawn from [spec]. *)

val sample_sequence : spec -> Rng.t -> n:int -> int array
(** Draw a degree sequence; the sum is forced even (a random node may be
    bumped by one), each degree is clamped to [1, n-1], and the sequence
    is repaired to satisfy Erdos-Gallai (shaving the largest degrees) so
    that {!realize} always succeeds — repairs only trigger for small [n]. *)

val is_graphical : int array -> bool
(** Erdos-Gallai test: can the sequence be realized as a simple graph?
    O(n log n) — prefix sums over the sorted sequence plus a binary
    search per inequality. *)

val realize : Rng.t -> int array -> Graph.t
(** Build a connected random simple graph with exactly the given degree
    sequence: Havel-Hakimi construction, degree-preserving double-edge-swap
    randomization, then component-merging swaps.
    @raise Invalid_argument if the sequence is not graphical or the sum of
    degrees is below [2 * (n - 1)] (a connected graph needs that many stub
    ends). *)

val generate : spec -> Rng.t -> n:int -> Graph.t
(** [sample_sequence] composed with [realize]. *)
