module Rng = Bgp_engine.Rng

type spec =
  | Two_class of {
      low_frac : float;
      low_degrees : int array;
      high_degrees : int array;
    }
  | Uniform_range of { lo : int; hi : int }
  | Power_law of { gamma : float; min_degree : int; max_degree : int }

let skewed_70_30 =
  Two_class { low_frac = 0.70; low_degrees = [| 1; 2; 3 |]; high_degrees = [| 8 |] }

let skewed_50_50 =
  Two_class { low_frac = 0.50; low_degrees = [| 1; 2; 3 |]; high_degrees = [| 5; 6 |] }

let skewed_85_15 =
  Two_class { low_frac = 0.85; low_degrees = [| 1; 2; 3 |]; high_degrees = [| 14 |] }

let skewed_50_50_dense =
  Two_class { low_frac = 0.50; low_degrees = [| 1; 2; 3 |]; high_degrees = [| 13; 14 |] }

(* gamma tuned so the capped power law on [1,40] has mean ~3.4, the
   average the paper reports after capping the real AS data at degree 40;
   this puts ~77% of the mass on degrees 1-3 (the paper reports ~70% of
   ASes below degree 4 — a pure power law cannot hit both targets exactly,
   so we prioritise the average degree; see DESIGN.md). *)
let internet_like = Power_law { gamma = 1.78; min_degree = 1; max_degree = 40 }

let array_mean a =
  Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 a /. float_of_int (Array.length a)

let power_law_weights ~gamma ~min_degree ~max_degree =
  Array.init
    (max_degree - min_degree + 1)
    (fun i ->
      let d = min_degree + i in
      (float_of_int d ** -.gamma, float_of_int d))

let mean_degree = function
  | Two_class { low_frac; low_degrees; high_degrees } ->
    (low_frac *. array_mean low_degrees) +. ((1.0 -. low_frac) *. array_mean high_degrees)
  | Uniform_range { lo; hi } -> float_of_int (lo + hi) /. 2.0
  | Power_law { gamma; min_degree; max_degree } ->
    let weights = power_law_weights ~gamma ~min_degree ~max_degree in
    let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 weights in
    Array.fold_left (fun acc (w, d) -> acc +. (w *. d)) 0.0 weights /. total

let sample_one spec rng =
  match spec with
  | Two_class { low_frac; low_degrees; high_degrees } ->
    if Rng.float rng < low_frac then Rng.choose rng low_degrees
    else Rng.choose rng high_degrees
  | Uniform_range { lo; hi } -> lo + Rng.int rng (hi - lo + 1)
  | Power_law { gamma; min_degree; max_degree } ->
    let weights = power_law_weights ~gamma ~min_degree ~max_degree in
    int_of_float (Bgp_engine.Dist.sample (Discrete weights) rng)

(* Erdos-Gallai graphicality test.  With the sequence sorted descending,
   the k-th inequality's tail sum [sum_{i>k} min(d_i, k)] splits at the
   crossover index where degrees drop below [k]: everything before it
   contributes [k], everything after contributes its own degree, read off
   a prefix-sum table.  A binary search per [k] gives O(n log n) overall
   instead of the naive O(n^2) inner loop. *)
let is_graphical degrees =
  let d = Array.copy degrees in
  Array.sort (fun a b -> Int.compare b a) d;
  let n = Array.length d in
  let prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) + d.(i)
  done;
  if prefix.(n) mod 2 = 1 then false
  else begin
    (* First index with [d.(i) < k]; [d] is non-increasing. *)
    let crossover k =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if d.(mid) >= k then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let ok = ref true in
    for k = 1 to n do
      let m = Stdlib.max k (crossover k) in
      let rest = (k * (m - k)) + (prefix.(n) - prefix.(m)) in
      if prefix.(k) > (k * (k - 1)) + rest then ok := false
    done;
    !ok
  end

(* Repair a non-graphical sequence by shaving the two largest degrees.
   Keeps the sum even and every degree >= 1; mostly needed for small [n]
   where clamped hub degrees violate Erdos-Gallai. *)
let rec make_graphical degrees =
  if is_graphical degrees then degrees
  else begin
    let order = Array.init (Array.length degrees) (fun i -> i) in
    Array.sort (fun a b -> Int.compare degrees.(b) degrees.(a)) order;
    if Array.length order < 2 || degrees.(order.(1)) <= 1 then
      invalid_arg "Degree_dist.sample_sequence: cannot repair degree sequence";
    degrees.(order.(0)) <- degrees.(order.(0)) - 1;
    degrees.(order.(1)) <- degrees.(order.(1)) - 1;
    make_graphical degrees
  end

let sample_sequence spec rng ~n =
  if n < 2 then invalid_arg "Degree_dist.sample_sequence: need at least 2 nodes";
  let degrees =
    match spec with
    | Two_class { low_frac; low_degrees; high_degrees } ->
      (* Exact class sizes (the paper's "70% of the nodes"), not Bernoulli
         draws, so every sampled topology honours the stated split. *)
      let n_low = int_of_float (Float.round (low_frac *. float_of_int n)) in
      let degrees =
        Array.init n (fun i ->
            if i < n_low then Rng.choose rng low_degrees else Rng.choose rng high_degrees)
      in
      Rng.shuffle rng degrees;
      degrees
    | Uniform_range _ | Power_law _ -> Array.init n (fun _ -> sample_one spec rng)
  in
  let degrees = Array.map (fun d -> Stdlib.max 1 (Stdlib.min (n - 1) d)) degrees in
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then begin
    (* Force an even stub count by bumping one random node that has room. *)
    let rec bump () =
      let v = Rng.int rng n in
      if degrees.(v) < n - 1 then degrees.(v) <- degrees.(v) + 1 else bump ()
    in
    bump ()
  end;
  make_graphical degrees

(* --- Realization: Havel-Hakimi + edge swaps --------------------------- *)

let edge_key u v = if u < v then (u, v) else (v, u)

module Edge_set = struct
  type t = (int * int, unit) Hashtbl.t

  let create () : t = Hashtbl.create 512
  let mem t u v = Hashtbl.mem t (edge_key u v)
  let add t u v = Hashtbl.replace t (edge_key u v) ()
  let remove t u v = Hashtbl.remove t (edge_key u v)
end

let havel_hakimi degrees =
  let n = Array.length degrees in
  let remaining = Array.copy degrees in
  let edges = ref [] in
  let edge_set = Edge_set.create () in
  let nodes = Array.init n (fun i -> i) in
  let unsatisfied () = Array.exists (fun d -> d > 0) remaining in
  while unsatisfied () do
    (* Sort by remaining degree, descending; stable enough for our sizes. *)
    Array.sort (fun a b -> Int.compare remaining.(b) remaining.(a)) nodes;
    let u = nodes.(0) in
    let need = remaining.(u) in
    remaining.(u) <- 0;
    let attached = ref 0 in
    let i = ref 1 in
    while !attached < need && !i < n do
      let v = nodes.(!i) in
      if remaining.(v) > 0 && not (Edge_set.mem edge_set u v) then begin
        remaining.(v) <- remaining.(v) - 1;
        Edge_set.add edge_set u v;
        edges := edge_key u v :: !edges;
        incr attached
      end;
      incr i
    done;
    if !attached < need then
      invalid_arg "Degree_dist.realize: degree sequence is not graphical"
  done;
  (Array.of_list !edges, edge_set)

let randomize_edges rng edges edge_set =
  let m = Array.length edges in
  if m >= 2 then
    for _ = 1 to 10 * m do
      let i = Rng.int rng m and j = Rng.int rng m in
      if i <> j then begin
        let a, b = edges.(i) in
        let c, d = edges.(j) in
        (* Randomly pick one of the two rewirings. *)
        let a, b = if Rng.bool rng then (a, b) else (b, a) in
        let ok =
          a <> c && a <> d && b <> c && b <> d
          && (not (Edge_set.mem edge_set a c))
          && not (Edge_set.mem edge_set b d)
        in
        if ok then begin
          Edge_set.remove edge_set a b;
          Edge_set.remove edge_set c d;
          Edge_set.add edge_set a c;
          Edge_set.add edge_set b d;
          edges.(i) <- edge_key a c;
          edges.(j) <- edge_key b d
        end
      end
    done

let graph_of_edges n edges =
  let g = Graph.create n in
  Array.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  g

(* Find an edge that lies on a cycle (a non-bridge): DFS with parent
   tracking; the first back edge found is returned.  When the graph is
   disconnected and has at least [n - 1] edges, some component must
   contain a cycle (all-trees would mean at most [n - #components]
   edges). *)
let cycle_edge g =
  let n = Graph.num_nodes g in
  let visited = Array.make n false in
  let parent = Array.make n (-1) in
  let found = ref None in
  let rec dfs u =
    visited.(u) <- true;
    List.iter
      (fun v ->
        if !found = None then
          if not visited.(v) then begin
            parent.(v) <- u;
            dfs v
          end
          else if v <> parent.(u) then found := Some (edge_key u v))
      (Graph.neighbors g u)
  in
  let root = ref 0 in
  while !found = None && !root < n do
    if not visited.(!root) then dfs !root;
    incr root
  done;
  !found

(* Merge components without changing any degree.  Take an edge (a, b)
   that lies on a cycle of its component X (so removing it keeps X
   connected) and any edge (c, d) of a different component Y; rewiring to
   (a, c) and (b, d) attaches both halves of Y to X.  The component count
   strictly decreases, so this terminates. *)
let connect_components rng n edges edge_set =
  let rec loop () =
    let g = graph_of_edges n edges in
    if not (Graph.is_connected g) then begin
      let a, b =
        match cycle_edge g with
        | Some e -> e
        | None ->
          invalid_arg
            "Degree_dist.realize: disconnected graph with no cycle (too few edges)"
      in
      let comp_of =
        let dist = Graph.bfs_dist g ~src:a in
        fun v -> dist.(v) < max_int
      in
      let foreign =
        Array.of_list (List.filter (fun (u, v) -> not (comp_of u || comp_of v))
                         (Array.to_list edges))
      in
      if Array.length foreign = 0 then
        invalid_arg "Degree_dist.realize: foreign component without edges";
      let c, d = Rng.choose rng foreign in
      let index_of e =
        let rec find i = if edges.(i) = e then i else find (i + 1) in
        find 0
      in
      let i = index_of (edge_key a b) and j = index_of (edge_key c d) in
      Edge_set.remove edge_set a b;
      Edge_set.remove edge_set c d;
      Edge_set.add edge_set a c;
      Edge_set.add edge_set b d;
      edges.(i) <- edge_key a c;
      edges.(j) <- edge_key b d;
      loop ()
    end
  in
  loop ()

let realize rng degrees =
  let n = Array.length degrees in
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then invalid_arg "Degree_dist.realize: odd degree sum";
  if sum < 2 * (n - 1) then
    invalid_arg "Degree_dist.realize: too few edges for a connected graph";
  if Array.exists (fun d -> d < 1 || d > n - 1) degrees then
    invalid_arg "Degree_dist.realize: degree outside [1, n-1]";
  let edges, edge_set = havel_hakimi degrees in
  randomize_edges rng edges edge_set;
  connect_components rng n edges edge_set;
  graph_of_edges n edges

let generate spec rng ~n = realize rng (sample_sequence spec rng ~n)
