module Rng = Bgp_engine.Rng

let waxman rng ~positions ~alpha ~beta =
  let n = Array.length positions in
  let g = Graph.create n in
  let l_max =
    let best = ref 0.0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        best := Float.max !best (Geometry.distance positions.(u) positions.(v))
      done
    done;
    Float.max !best 1.0
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Geometry.distance positions.(u) positions.(v) in
      let p = alpha *. exp (-.d /. (beta *. l_max)) in
      if Rng.float rng < p then Graph.add_edge g u v
    done
  done;
  (* Patch connectivity: repeatedly join the first component to the rest by
     the geometrically shortest missing edge, mimicking BRITE's fix-up. *)
  let rec patch () =
    match Graph.connected_components g with
    | [] | [ _ ] -> ()
    | comp :: rest ->
      let others = List.concat rest in
      let best = ref None in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              let d = Geometry.distance positions.(u) positions.(v) in
              match !best with
              | Some (_, _, d') when d' <= d -> ()
              | _ -> best := Some (u, v, d))
            others)
        comp;
      (match !best with
      | Some (u, v, _) -> Graph.add_edge g u v
      | None -> ());
      patch ()
  in
  patch ();
  g

(* Weighted choice over nodes 0..k-1 with weight w(i); total > 0. *)
let weighted_choice rng ~k ~w =
  let total = ref 0.0 in
  for i = 0 to k - 1 do
    total := !total +. w i
  done;
  let x = Rng.float rng *. !total in
  let rec pick i acc =
    if i = k - 1 then i
    else
      let acc = acc +. w i in
      if x < acc then i else pick (i + 1) acc
  in
  pick 0 0.0

let barabasi_albert rng ~n ~m =
  if m < 1 || m >= n then invalid_arg "Models.barabasi_albert: need 1 <= m < n";
  let g = Graph.create n in
  (* Degree-proportional sampling in O(1): every endpoint of every edge
     is appended to [targets], so a uniform draw from the filled prefix
     lands on node [i] with probability degree(i) / (2 edges) — the same
     distribution as a cumulative-degree scan, without its O(n) per draw
     (which made generation quadratic and dominated bench setup at 10k+
     nodes).  Every node present has degree >= 1, so no zero-weight
     entries are needed. *)
  let targets = ref (Array.make (4 * m * n) 0) in
  let filled = ref 0 in
  let push u =
    if !filled = Array.length !targets then begin
      let bigger = Array.make (2 * Array.length !targets) 0 in
      Array.blit !targets 0 bigger 0 !filled;
      targets := bigger
    end;
    !targets.(!filled) <- u;
    incr filled
  in
  let add_edge u v =
    Graph.add_edge g u v;
    push u;
    push v
  in
  (* Seed: clique on the first m+1 nodes. *)
  let m0 = m + 1 in
  for u = 0 to m0 - 1 do
    for v = u + 1 to m0 - 1 do
      add_edge u v
    done
  done;
  for v = m0 to n - 1 do
    let added = ref 0 in
    let attempts = ref 0 in
    (* New endpoints only become sampling targets once node [v]'s edges
       are all chosen, matching the scan over nodes 0..v-1 it replaces. *)
    let limit = !filled in
    while !added < m && !attempts < 50 * m do
      incr attempts;
      let u = !targets.(Rng.int rng limit) in
      if not (Graph.mem_edge g u v) then begin
        Graph.add_edge g u v;
        incr added
      end
    done;
    Graph.neighbors g v
    |> List.iter (fun u ->
           push u;
           push v)
  done;
  g

let glp rng ~n ~m ~p ~beta =
  if beta >= 1.0 then invalid_arg "Models.glp: beta must be < 1";
  if m < 1 then invalid_arg "Models.glp: m must be >= 1";
  let g = Graph.create n in
  (* Seed: path on m+1 nodes. *)
  let m0 = Stdlib.min n (m + 1) in
  for v = 1 to m0 - 1 do
    Graph.add_edge g (v - 1) v
  done;
  let next = ref m0 in
  let weight i = Float.max 0.05 (float_of_int (Graph.degree g i) -. beta) in
  let add_internal_links () =
    for _ = 1 to m do
      let k = !next in
      let u = weighted_choice rng ~k ~w:weight in
      let v = weighted_choice rng ~k ~w:weight in
      if u <> v && not (Graph.mem_edge g u v) then Graph.add_edge g u v
    done
  in
  let add_node () =
    let v = !next in
    incr next;
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < Stdlib.min m v && !attempts < 50 * m do
      incr attempts;
      let u = weighted_choice rng ~k:v ~w:weight in
      if not (Graph.mem_edge g u v) then begin
        Graph.add_edge g u v;
        incr added
      end
    done
  in
  while !next < n do
    if Rng.float rng < p then add_internal_links () else add_node ()
  done;
  g
