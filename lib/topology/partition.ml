module Rng = Bgp_engine.Rng

type t = {
  shards : int;
  owner : int array;
  as_owner : int array;
  sizes : int array;
  cut_edges : int;
  total_edges : int;
}

(* AS-level view: per-AS router weight and weighted adjacency (number of
   inter-AS links between each AS pair — each such link is one eBGP
   session). *)
type as_graph = {
  n_ases : int;
  weight : int array;  (* routers per AS *)
  adj : (int * int) list array;  (* AS -> (neighbour AS, link count), sorted *)
  total_links : int;
}

let as_graph (topo : Topology.t) =
  let n_ases = topo.Topology.n_ases in
  let weight = Array.make n_ases 0 in
  Array.iter (fun a -> weight.(a) <- weight.(a) + 1) topo.Topology.as_of_router;
  let pair = Hashtbl.create 256 in
  let total = ref 0 in
  Graph.fold_edges
    (fun u v () ->
      let a = topo.Topology.as_of_router.(u) and b = topo.Topology.as_of_router.(v) in
      if a <> b then begin
        incr total;
        let key = if a < b then (a, b) else (b, a) in
        Hashtbl.replace pair key (1 + Option.value ~default:0 (Hashtbl.find_opt pair key))
      end)
    topo.Topology.graph ();
  let adj = Array.make n_ases [] in
  Hashtbl.iter
    (fun (a, b) w ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    pair;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n_ases; weight; adj; total_links = !total }

let cut_of g as_owner =
  let cut = ref 0 in
  Array.iteri
    (fun a neighbours ->
      List.iter
        (fun (b, w) -> if a < b && as_owner.(a) <> as_owner.(b) then cut := !cut + w)
        neighbours)
    g.adj;
  !cut

let finish (topo : Topology.t) g ~shards as_owner =
  let n = Topology.num_routers topo in
  let owner = Array.make n 0 in
  for r = 0 to n - 1 do
    owner.(r) <- as_owner.(topo.Topology.as_of_router.(r))
  done;
  let sizes = Array.make shards 0 in
  Array.iter (fun s -> sizes.(s) <- sizes.(s) + 1) owner;
  {
    shards;
    owner;
    as_owner;
    sizes;
    cut_edges = cut_of g as_owner;
    total_edges = g.total_links;
  }

let bound_of ~balance ~shards ~total ~w_max =
  let ideal = float_of_int total /. float_of_int shards in
  Stdlib.max
    (int_of_float (Float.ceil ((1.0 +. balance) *. ideal)))
    ((total / shards) + w_max)

let max_weight_bound ?(balance = 0.1) ~shards topo =
  let g = as_graph topo in
  let w_max = Array.fold_left Stdlib.max 0 g.weight in
  bound_of ~balance ~shards ~total:(Topology.num_routers topo) ~w_max

let round_robin ~shards (topo : Topology.t) =
  if shards < 1 then invalid_arg "Partition.round_robin: shards must be >= 1";
  let g = as_graph topo in
  let as_owner = Array.init g.n_ases (fun a -> a mod shards) in
  finish topo g ~shards as_owner

(* Greedy BFS region growing: each shard in turn claims the unassigned
   AS most strongly attached to it (heaviest link weight, then lowest AS
   id), seeded from a random unassigned AS, until it reaches its share
   of the remaining weight.  Strict determinism: all ties break on ids,
   and the RNG is derived from the caller's seed alone. *)
let grow g ~shards ~rng ~bound =
  let as_owner = Array.make g.n_ases (-1) in
  let load = Array.make shards 0 in
  let unassigned = ref g.n_ases in
  let remaining_weight = ref (Array.fold_left ( + ) 0 g.weight) in
  for s = 0 to shards - 1 do
    if !unassigned > 0 then begin
      let target =
        (* This shard's fair share of what is left. *)
        int_of_float
          (Float.ceil (float_of_int !remaining_weight /. float_of_int (shards - s)))
      in
      (* attachment.(a): total link weight from AS a to the region. *)
      let attachment = Array.make g.n_ases 0 in
      let pick_seed () =
        let idx = ref (Rng.int rng !unassigned) in
        let found = ref (-1) in
        (try
           for a = 0 to g.n_ases - 1 do
             if as_owner.(a) < 0 then
               if !idx = 0 then begin
                 found := a;
                 raise Exit
               end
               else decr idx
           done
         with Exit -> ());
        !found
      in
      let claim a =
        as_owner.(a) <- s;
        load.(s) <- load.(s) + g.weight.(a);
        decr unassigned;
        remaining_weight := !remaining_weight - g.weight.(a);
        List.iter
          (fun (b, w) -> if as_owner.(b) < 0 then attachment.(b) <- attachment.(b) + w)
          g.adj.(a)
      in
      let best_frontier () =
        let best = ref (-1) and best_w = ref 0 in
        Array.iteri
          (fun a w ->
            if w > 0 && as_owner.(a) < 0 && w > !best_w then begin
              best := a;
              best_w := w
            end)
          attachment;
        !best
      in
      claim (pick_seed ());
      let continue = ref true in
      while !continue && !unassigned > 0 && load.(s) < target do
        let next =
          match best_frontier () with
          | -1 -> if s = shards - 1 then pick_seed () else -1
          | a -> a
        in
        if next < 0 || load.(s) + g.weight.(next) > bound then continue := false
        else claim next
      done;
      (* The last shard takes every leftover (bound permitting — spill
         into the lightest shard otherwise, keeping the provable
         floor(n/k) + w_max bound). *)
      if s = shards - 1 then
        for a = 0 to g.n_ases - 1 do
          if as_owner.(a) < 0 then begin
            let dst =
              if load.(s) + g.weight.(a) <= bound then s
              else begin
                let lightest = ref 0 in
                for j = 1 to shards - 1 do
                  if load.(j) < load.(!lightest) then lightest := j
                done;
                !lightest
              end
            in
            as_owner.(a) <- dst;
            load.(dst) <- load.(dst) + g.weight.(a)
          end
        done
    end
  done;
  (* Orphans left by exhausted frontiers on non-final shards. *)
  for a = 0 to g.n_ases - 1 do
    if as_owner.(a) < 0 then begin
      let lightest = ref 0 in
      for j = 1 to shards - 1 do
        if load.(j) < load.(!lightest) then lightest := j
      done;
      as_owner.(a) <- !lightest;
      load.(!lightest) <- load.(!lightest) + g.weight.(a)
    end
  done;
  (as_owner, load)

(* Boundary refinement: move an AS to the neighbouring shard with the
   best cut gain when the balance bound allows it.  A few passes in AS
   order; deterministic because the scan order and tie-breaks are. *)
let refine g ~shards ~bound as_owner load =
  let passes = 4 in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < passes do
    changed := false;
    incr pass;
    for a = 0 to g.n_ases - 1 do
      if g.adj.(a) <> [] then begin
        let own = as_owner.(a) in
        (* Link weight from [a] into each shard. *)
        let towards = Hashtbl.create 8 in
        List.iter
          (fun (b, w) ->
            let s = as_owner.(b) in
            Hashtbl.replace towards s (w + Option.value ~default:0 (Hashtbl.find_opt towards s)))
          g.adj.(a);
        let home = Option.value ~default:0 (Hashtbl.find_opt towards own) in
        let best_s = ref own and best_gain = ref 0 in
        for s = 0 to shards - 1 do
          if s <> own then
            match Hashtbl.find_opt towards s with
            | Some w ->
              let gain = w - home in
              if
                (gain > !best_gain || (gain = !best_gain && gain > 0 && s < !best_s))
                && load.(s) + g.weight.(a) <= bound
              then begin
                best_gain := gain;
                best_s := s
              end
            | None -> ()
        done;
        if !best_s <> own then begin
          as_owner.(a) <- !best_s;
          load.(own) <- load.(own) - g.weight.(a);
          load.(!best_s) <- load.(!best_s) + g.weight.(a);
          changed := true
        end
      end
    done
  done

let compute ?(balance = 0.1) ~shards ~seed (topo : Topology.t) =
  if shards < 1 then invalid_arg "Partition.compute: shards must be >= 1";
  if balance < 0.0 then invalid_arg "Partition.compute: balance must be >= 0";
  let g = as_graph topo in
  if shards = 1 then finish topo g ~shards (Array.make g.n_ases 0)
  else begin
    let w_max = Array.fold_left Stdlib.max 0 g.weight in
    let bound =
      bound_of ~balance ~shards ~total:(Topology.num_routers topo) ~w_max
    in
    let rng = Rng.create (0x9e3779b9 lxor seed) in
    let as_owner, load = grow g ~shards ~rng ~bound in
    refine g ~shards ~bound as_owner load;
    let grown = finish topo g ~shards as_owner in
    (* Keep the trivial layout when it is strictly better and legal: the
       advertised guarantee is "never worse than balanced round-robin". *)
    let rr = round_robin ~shards topo in
    let rr_max = Array.fold_left Stdlib.max 0 rr.sizes in
    if rr.cut_edges < grown.cut_edges && rr_max <= bound then rr else grown
  end

let edge_cut_fraction t =
  if t.total_edges = 0 then 0.0
  else float_of_int t.cut_edges /. float_of_int t.total_edges

let imbalance t =
  let n = Array.fold_left ( + ) 0 t.sizes in
  if n = 0 then 1.0
  else
    let ideal = float_of_int n /. float_of_int t.shards in
    float_of_int (Array.fold_left Stdlib.max 0 t.sizes) /. ideal

let pp_stats ppf t =
  let min_size = Array.fold_left Stdlib.min max_int t.sizes in
  let max_size = Array.fold_left Stdlib.max 0 t.sizes in
  Fmt.pf ppf
    "@[<v>shards %d: edge cut %d/%d (%.1f%%), shard size min %d / max %d, imbalance \
     %.2fx@]"
    t.shards t.cut_edges t.total_edges
    (100.0 *. edge_cut_fraction t)
    min_size max_size (imbalance t)
