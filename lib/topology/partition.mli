(** Deterministic seeded multi-way partitioning for sharded simulation.

    Partitioning is at {e AS granularity}: every router of an AS lands on
    the same shard, so the iBGP full mesh never crosses shards and only
    eBGP sessions (inter-AS links) can become cut edges.  Units are
    weighted by router count.

    The algorithm is greedy BFS region growing over the AS-adjacency
    graph (each region grows along its heaviest attachment first)
    followed by bounded boundary-refinement passes; the result is
    compared against trivial round-robin assignment and the round-robin
    layout is kept when it both cuts fewer eBGP sessions and respects
    the balance bound — so {!t.cut_edges} is never worse than
    round-robin-with-balance.  Everything is a pure function of
    [(topology, shards, seed, balance)], so a partition is stable across
    runs and across machines. *)

type t = {
  shards : int;
  owner : int array;  (** router -> shard *)
  as_owner : int array;  (** AS -> shard *)
  sizes : int array;  (** routers per shard *)
  cut_edges : int;  (** eBGP sessions crossing shards *)
  total_edges : int;  (** all eBGP sessions (inter-AS links) *)
}

val compute : ?balance:float -> shards:int -> seed:int -> Topology.t -> t
(** [balance] (default [0.1]) is the slack [eps] of the size bound: no
    shard's router weight exceeds
    [max (ceil ((1 + eps) * n / shards)) (floor (n / shards) + w_max)]
    where [w_max] is the largest AS.  @raise Invalid_argument if
    [shards < 1] or [balance < 0]. *)

val round_robin : shards:int -> Topology.t -> t
(** AS [a] on shard [a mod shards]: the trivial baseline. *)

val max_weight_bound : ?balance:float -> shards:int -> Topology.t -> int
(** The bound {!compute} guarantees (see above). *)

val edge_cut_fraction : t -> float
(** [cut_edges / total_edges]; [0.] when there are no eBGP sessions. *)

val imbalance : t -> float
(** Largest shard size over the ideal [n / shards]; [1.0] is perfect. *)

val pp_stats : Format.formatter -> t -> unit
(** One-paragraph quality summary: cut %, size min/max, imbalance. *)
