(** Routing information bases and the decision process for one router.

    The decision criterion is the paper's: shortest AS-path length only
    (Section 3.2), with deterministic tie-breaks — locally-originated
    beats learned, eBGP beats iBGP, then lowest peer id.  When Gao-Rexford
    relationships are supplied, a local-preference class (customer over
    peer over provider) ranks above path length, as in real BGP. *)

open Types

type entry = {
  peer : router_id;
  kind : session_kind;
  path : path;
  rel : relationship option;  (** our relationship to the advertising peer *)
}

type best =
  | Local  (** locally originated, path [] *)
  | Learned of entry

type t

val create : asn:as_id -> t
val asn : t -> as_id

val originate : t -> dest -> unit
(** Install a locally-originated route (used for the router's own AS
    prefix). *)

val unoriginate : t -> dest -> unit
(** Remove the locally-originated route (a churn workload withdrawing one
    of its own prefixes); no-op if absent.  Learned Adj-RIB-In entries
    for [dest] are untouched. *)

val originates : t -> dest -> bool

val set_in :
  t -> dest -> peer:router_id -> kind:session_kind -> ?rel:relationship -> path -> unit
(** Replace the Adj-RIB-In entry from [peer] for [dest].  [rel] is the
    Gao-Rexford relationship used for local-preference ranking (omit for
    the paper's policy-free operation).
    @raise Invalid_argument if the path contains our own AS (the caller
    must apply receiver-side loop detection first). *)

val withdraw_in : t -> dest -> peer:router_id -> unit
(** Remove the entry from [peer]; no-op if absent. *)

val drop_peer : t -> peer:router_id -> dest list
(** Remove all entries learned from [peer] (session down); returns the
    destinations that lost an entry. *)

val entries_in : t -> dest -> entry list
(** Current Adj-RIB-In contents for a destination (sorted by rank). *)

val decide : t -> dest -> bool
(** Re-run the decision process for [dest] and update the Loc-RIB.
    Returns [true] iff the result changed in an export-relevant way (the
    best path, its existence, or its iBGP re-exportability). *)

val best : t -> dest -> best option
(** Current Loc-RIB selection, if any. *)

val best_path : t -> dest -> path option
(** Path of the current selection; [Some Path.empty] for a local
    route. *)

val ibgp_exportable : best -> bool
(** Standard full-mesh iBGP rule: only local and eBGP-learned routes are
    re-advertised to iBGP peers. *)

val num_dests : t -> int
(** Number of destinations with any Adj-RIB-In or Loc-RIB state, without
    materialising the list. *)

val iter_dests : t -> (dest -> unit) -> unit
(** Visit each such destination once (unspecified order, no intermediate
    list). *)

val loc_size : t -> int
(** Destinations with a current Loc-RIB selection — the "RIB size" the
    telemetry probes sample.  O(1). *)

val in_entries : t -> int
(** Total Adj-RIB-In entries across all destinations and peers. *)

val approx_bytes : t -> int
(** Estimated resident size of this RIB in bytes, from a fixed
    words-per-entry model over the entry counts (deterministic: no heap
    walk, no dependence on hashing or GC state).  Shared AS-path storage
    is excluded — it is accounted once, at the hashcons table
    ([Path.table_stats]). *)

val rank : best -> int * int * int * int
(** Reference ranking key (preference class, path length, eBGP-over-iBGP,
    peer id; lower is better); kept as the specification that
    [packed_rank] is property-tested against. *)

val packed_rank : best -> int
(** The same ordering packed into a single int (what the hot path
    compares); [packed_rank Local = 0].  Order-isomorphic to {!rank}. *)
