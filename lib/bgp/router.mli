(** A BGP speaker as a discrete-event process.

    The model mirrors what the paper's SSFNet setup exercises:

    - one input queue of received update messages, served by a single CPU;
      each message costs one draw of the processing-delay distribution
      (Section 3.2: uniform 1-30 ms);
    - the queue discipline is pluggable ({!Bgp_core.Input_queue}): FIFO
      (default BGP) or the paper's batched per-destination scheme;
    - route changes are exported to every peer as Adj-RIB-Out deltas gated
      by the MRAI: if the per-peer timer is idle the update goes out
      immediately and the timer starts, otherwise the destination is marked
      pending and flushed at expiry *against the then-current Loc-RIB* —
      this is precisely the mechanism that lets an overloaded router send
      routes that are about to be invalidated by updates still in its
      queue (Section 2);
    - the MRAI interval used at each timer (re)start comes from a
      {!Bgp_core.Mrai_controller}, so static, degree-dependent and dynamic
      schemes all plug in unchanged;
    - withdrawals are sent immediately unless [mrai_on_withdrawals]. *)

open Types

type t

type callbacks = {
  send : src:router_id -> dst:router_id -> update -> unit;
      (** deliver an update message; the network layer adds link delay *)
  activity : time:float -> unit;
      (** invoked on every route-affecting action (for convergence
          detection) *)
}

(** Causal-tracing hooks (opt-in; see {!Bgp_netsim.Trace}).  Each hook
    records an event and returns its trace id; the router remembers it as
    {!current_cause} while the triggered exports run, so the network layer
    can stamp outgoing updates with their cause. *)
type tracer = {
  on_processed :
    router:router_id ->
    src:router_id ->
    dest:dest ->
    enqueued:float ->
    started:float ->
    cause:int ->
    int;
      (** a work item finished processing; [dest] is [-1] for peer-down
          work, [cause] is the trace id that enqueued it *)
  on_mrai_flush :
    router:router_id -> peer:router_id -> dest:dest -> ready:float -> cause:int -> int;
      (** an MRAI timer fired and [dest] is being flushed to [peer];
          [ready] is when it was last marked pending *)
}

val create :
  sched:Bgp_engine.Scheduler.t ->
  rng:Bgp_engine.Rng.t ->
  paths:Path.table ->
  config:Config.t ->
  id:router_id ->
  asn:as_id ->
  degree:int ->
  ?tracer:tracer ->
  callbacks ->
  t
(** [degree] is the value the degree-dependent MRAI scheme keys on
    (inter-AS degree of the router).  [paths] is the run's shared AS-path
    interning table ({!Path}): all routers of one network must use the
    same table so exchanged paths compare by pointer. *)

val id : t -> router_id
val asn : t -> as_id

val add_peer :
  t ->
  peer:router_id ->
  peer_as:as_id ->
  kind:session_kind ->
  ?relationship:relationship ->
  unit ->
  unit
(** Declare a BGP session.  [relationship] enables Gao-Rexford policy
    (ranking and valley-free export) on this session; omit it for the
    paper's policy-free operation.  All sessions must be added before
    [start]. *)

val start : t -> unit
(** Originate this router's AS prefix and export it. *)

val announce_origin : t -> ?cause:int -> dest -> unit
(** (Re-)originate one locally-owned prefix at the current simulated time
    and export the change through the normal decision process — the
    churn workload's announce op.  [cause] is the trace id of the churn
    root event (default [-1], untraced).  No-op on a failed router. *)

val withdraw_origin : t -> ?cause:int -> dest -> unit
(** Withdraw one locally-originated prefix; the decision process falls
    back to any learned route (or sends withdrawals).  The churn
    workload's withdraw op. *)

val set_rib_change_hook : t -> (dest -> float -> unit) -> unit
(** Observe every export-relevant Loc-RIB revision as [(dest, now)].
    Pure observation: the hook must not draw randomness or schedule
    events, so installing one never perturbs the simulation.  The churn
    monitor records per-prefix settle times through it. *)

val warm_install :
  t ->
  dest:dest ->
  local:bool ->
  entries:(router_id * session_kind * path) list ->
  advertised:(router_id * path) list ->
  unit
(** Install pre-computed steady state for one destination: Adj-RIB-In
    [entries], the local-origination flag, and the Adj-RIB-Out contents
    per peer — silently (no exports are scheduled).  Used by the analytic
    warm-up; the caller is responsible for supplying a fixpoint (otherwise
    the first failure event will trigger spurious churn). *)

val advertised_to : t -> peer:router_id -> dest -> path option
(** Current Adj-RIB-Out entry (what was last advertised to the peer). *)

val receive : t -> ?cause:int -> src:router_id -> update -> unit
(** Called by the network layer when a message arrives (after link
    delay).  Enqueues the message for processing.  [cause] is the trace
    id of the delivery event (default [-1], untraced). *)

val peer_down : t -> ?cause:int -> router_id -> unit
(** The session to [peer] dropped: stop sending to it and enqueue the
    removal of everything learned from it (one work item, one
    processing-delay draw).  [cause] is the trace id of the session-down
    event (default [-1], untraced). *)

val peer_up : t -> ?cause:int -> router_id -> unit
(** The session to [peer] (re-)established after a {!peer_down}: forget
    the Adj-RIB-Out towards it and enqueue a full-table re-sync (drop the
    remaining state learned from the peer, then re-export every current
    best route from scratch, MRAI-gated).  One work item, one
    processing-delay draw — session restart costs processing time like
    any other work.  No-op if the peer is unknown, already up, or this
    router has failed.  [cause] is the trace id of the session-up event
    (default [-1], untraced). *)

val current_cause : t -> int
(** Trace id of the event whose handling is currently executing — the
    cause any update sent right now should carry.  [-1] when untraced or
    outside any traced handler. *)

val fail : t -> unit
(** This router dies: it stops processing, sending, and receiving. *)

val is_failed : t -> bool

(** {2 Inspection (tests, invariant checks, metrics)} *)

val best_path_to : t -> dest -> path option
val next_hop : t -> dest -> router_id option
(** The router itself for local routes. *)

val rib : t -> Rib.t
val peer_ids : t -> router_id list
val queue_length : t -> int
val is_busy : t -> bool

val max_unfinished_work : t -> float
(** High-water mark of queue length x mean processing delay, in seconds —
    the overload signal of the paper's dynamic scheme (Section 4.3).  A
    router whose value exceeded upTh was overloaded at some point. *)

(** {2 Point-in-time probe readouts}

    Cheap O(1) samplers for the telemetry layer: the {e current} value of
    the signals the paper's mechanisms key on, as opposed to the
    end-of-run aggregates in {!metrics}. *)

val unfinished_work : t -> float
(** Current queue length x mean processing delay, in seconds (the
    dynamic scheme's instantaneous overload signal). *)

val mrai_level : t -> int
(** Current level of the eBGP MRAI controller (0 for static schemes). *)

val mrai_transitions : t -> int
(** Cumulative level changes of the eBGP MRAI controller. *)

val rib_size : t -> int
(** Destinations with a current Loc-RIB selection. *)

val rib_changes : t -> int
(** Cumulative export-relevant Loc-RIB revisions.  A router whose count
    has reached its end-of-run value holds its final best routes — the
    basis of the telemetry convergence-progress series. *)

type metrics = {
  adverts_sent : int;
  withdrawals_sent : int;
  msgs_processed : int;
  eliminated : int;  (** stale messages deleted by the batching queue *)
  max_queue : int;
  mrai_transitions : int;
  mrai_level : int;
  damping_suppressions : int;  (** routes that crossed into suppression *)
}

val metrics : t -> metrics
