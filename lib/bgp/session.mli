(** BGP session endpoint: a simplified RFC 1771 Section 8 finite state
    machine with OPEN negotiation, keepalive maintenance and hold-timer
    expiry.

    The convergence experiments (like the paper's) signal failures at the
    link layer, so they do not need per-keepalive events; this module
    provides the full session substrate — used directly in tests and
    examples, and as the timing model behind the network layer's
    hold-timer failure-detection mode ({!Network.config}). *)

open Types

type state = Idle | Open_sent | Open_confirm | Established

val pp_state : Format.formatter -> state -> unit

type message =
  | Open of { asn : as_id; hold_time : float }
  | Keepalive
  | Notification of string
  | Update_msg of { update : update; cause : int }
      (** [cause] is the trace id of the event that emitted the update
          ([-1] when untraced); it rides the wire so the receiving side can
          link its delivery event to the sender's ({!Bgp_netsim.Trace}) *)

val pp_message : Format.formatter -> message -> unit

type config = {
  hold_time : float;  (** proposed hold time; RFC suggests 90 s *)
  keepalive_fraction : float;
      (** keepalive interval = fraction x negotiated hold time; RFC
          suggests 1/3 *)
  jitter : bool;  (** RFC 1771 jitter (x U(0.75, 1)) on both timers *)
}

val default_config : config
(** 90 s hold, 1/3 keepalive fraction, jitter on. *)

type callbacks = {
  send_wire : message -> unit;  (** hand a message to the transport *)
  on_established : unit -> unit;
  on_closed : reason:string -> unit;
  deliver_update : cause:int -> update -> unit;
      (** an UPDATE arrived in Established; [cause] as in [Update_msg] *)
}

type t

val create :
  sched:Bgp_engine.Scheduler.t ->
  rng:Bgp_engine.Rng.t ->
  config:config ->
  local_as:as_id ->
  callbacks ->
  t

val start : t -> unit
(** Actively open: send OPEN and await the peer's. *)

val handle_wire : t -> message -> unit
(** Feed a message from the transport (any state). *)

val send_update : t -> ?cause:int -> update -> bool
(** [false] if the session is not Established (the update is dropped, as
    BGP has no session-less delivery).  [cause] defaults to [-1]
    (untraced). *)

val close : t -> reason:string -> unit
(** Local administrative teardown: NOTIFICATION, then Idle. *)

val state : t -> state
val negotiated_hold_time : t -> float option
(** [min] of both sides' proposals; [None] before negotiation. *)

val keepalives_sent : t -> int
val updates_delivered : t -> int
