type t = {
  id : int;  (* unique within the owning table; 0 = empty *)
  hops : int list;  (* spine shared with the tail node: hops = head :: tail.hops *)
  len : int;
  bits : int;  (* membership bitset: bit (asn mod 62) of every hop *)
}

let empty = { id = 0; hops = []; len = 0; bits = 0 }

type table = {
  memo : (int, t) Hashtbl.t;  (* key = tail id * 2^22 + head asn *)
  mutable next_id : int;
  mutable hits : int;
}

let create_table () = { memo = Hashtbl.create 1024; next_id = 1; hits = 0 }

(* Memo keys pack (tail id, head asn) into one int, so the hot probe hashes
   an immediate instead of a tuple.  22 bits cover any AS number this
   simulator generates (destinations are AS ids); 41 bits of id space is
   unreachable in practice. *)
let asn_bits = 22
let max_asn = (1 lsl asn_bits) - 1

let cons tbl asn tail =
  if asn < 0 || asn > max_asn then invalid_arg "Path.cons: AS id out of range";
  let key = (tail.id lsl asn_bits) lor asn in
  match Hashtbl.find_opt tbl.memo key with
  | Some p ->
    (* The key only identifies [tail] within [tbl]; a tail interned
       elsewhere could collide on id, so confirm spine sharing. *)
    (match p.hops with
    | _ :: rest when rest == tail.hops ->
      tbl.hits <- tbl.hits + 1;
      p
    | _ -> invalid_arg "Path.cons: tail was interned in a different table")
  | None ->
    let p =
      {
        id = tbl.next_id;
        hops = asn :: tail.hops;
        len = tail.len + 1;
        bits = tail.bits lor (1 lsl (asn mod 62));
      }
    in
    tbl.next_id <- tbl.next_id + 1;
    Hashtbl.replace tbl.memo key p;
    p

let of_list tbl l = List.fold_right (fun asn acc -> cons tbl asn acc) l empty

let hops p = p.hops
let length p = p.len
let is_empty p = p.len = 0
let id p = p.id

let rec mem_int (asn : int) = function
  | [] -> false
  | x :: tl -> x = asn || mem_int asn tl

let contains p asn =
  asn >= 0 && p.bits land (1 lsl (asn mod 62)) <> 0 && mem_int asn p.hops

let rec eq_hops (a : int list) (b : int list) =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> x = y && eq_hops xs ys
  | _ -> false

let equal a b = a == b || (a.len = b.len && a.bits = b.bits && eq_hops a.hops b.hops)

let pp ppf p = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") int) p.hops

let unique_count tbl = tbl.next_id - 1
let hit_count tbl = tbl.hits

type table_stats = {
  nodes : int;
  hops_total : int;
  sharing : float;
  approx_bytes : int;
}

(* Word model per interned node: path record (5 words incl. header) +
   one cons cell of the shared spine (3) + memo bucket cons (3) = 11
   words.  [hops_total] is what the paths would occupy as naive int
   lists (3 words per hop); [sharing] is that naive cost over the
   actual shared-spine cost, >= 1, higher = more tail sharing. *)
let table_stats tbl =
  let word = Sys.word_size / 8 in
  let hops_total = Hashtbl.fold (fun _ p acc -> acc + p.len) tbl.memo 0 in
  let nodes = unique_count tbl in
  let sharing =
    if nodes = 0 then 1.0 else float_of_int hops_total /. float_of_int nodes
  in
  { nodes; hops_total; sharing; approx_bytes = nodes * 11 * word }
