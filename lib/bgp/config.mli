(** Protocol configuration knobs for a simulation run. *)

type mrai_mode =
  | Per_peer  (** one MRAI timer per neighbour (Internet practice, used in
                  all paper experiments, Section 3.2) *)
  | Per_dest  (** one timer per (neighbour, destination); the textbook
                  variant discussed in Section 2, kept for ablation *)

(** The Deshpande-Sikdar [12] comparison schemes the paper discusses in
    Section 2: both bypass the MRAI gate in specific situations.  The paper
    reports they reduce delay at the price of "considerably" more update
    messages — reproduced in the ablation benches. *)
type mrai_bypass =
  | No_bypass
  | Cancel_on_improvement
      (** method 1: a strictly better route (shorter path, or a route where
          none was advertised) cancels the running timer and goes out
          immediately; the timer then restarts *)
  | Flap_threshold of int
      (** method 2: the MRAI is applied to a destination only once its
          route has changed at least this many times since the last paced
          flush; earlier changes go out immediately *)

type prefix_plan = { offsets : int array }
(** Non-uniform prefix numbering: AS [a] originates the contiguous
    destination block [offsets.(a) .. offsets.(a+1) - 1], and
    [offsets.(n_ases)] is the universe size.  Built with
    {!plan_of_counts} / {!with_prefix_plan}. *)

type t = {
  mrai_scheme : Bgp_core.Mrai_controller.scheme;  (** eBGP sessions *)
  mrai_mode : mrai_mode;
  ibgp_mrai : float;  (** fixed MRAI for iBGP sessions; 0 = no pacing *)
  queue_discipline : Bgp_core.Input_queue.discipline;
  processing_delay : Bgp_engine.Dist.t;
      (** per received update message; paper: uniform 1-30 ms *)
  mrai_jitter : bool;
      (** RFC 1771 jitter: interval x U(0.75, 1.0) ("reduction of up to
          25%", Section 3.2) *)
  mrai_on_withdrawals : bool;
      (** false = RFC behaviour (withdrawals sent immediately); true is the
          WRATE-style ablation *)
  sender_side_loop_check : bool;
      (** don't advertise a path to a peer whose AS already appears in it *)
  load_window : float;
      (** seconds; window for the utilization / message-count detectors *)
  mrai_bypass : mrai_bypass;
  dynamic_restart_timers : bool;
      (** paper Section 5 future work: when the dynamic controller changes
          level, re-arm running timers with the new interval immediately
          instead of waiting for their natural restart *)
  damping : Bgp_core.Damping.config option;
      (** RFC 2439 route flap damping on received routes; [None] (default)
          matches the paper's setup *)
  prefixes_per_as : int;
      (** destinations originated by each AS (default 1, as in the paper's
          simulations).  The paper's Section 5 argues that the real
          Internet's ~200k destinations multiply the update load; raising
          this reproduces that scaling.  Destination id [d] belongs to AS
          [d / prefixes_per_as]. *)
  prefix_plan : prefix_plan option;
      (** heavy-tailed (or otherwise non-uniform) per-AS prefix counts;
          [None] (default) keeps the uniform [prefixes_per_as] numbering
          and its historical division-based paths bit-identical *)
  dest_sample : int array option;
      (** sorted active-destination subset: routers originate (and the
          warm-up installs) only these destinations, bounding RIB memory
          for internet-scale universes.  [None] (default) = all active. *)
}

val default : t
(** Paper defaults: static MRAI 30 s (the Internet default), per-peer,
    FIFO queue, processing delay U(1 ms, 30 ms), jitter on, withdrawals
    unpaced, sender-side loop check on, 0.5 s load window. *)

val with_mrai : Bgp_core.Mrai_controller.scheme -> t -> t
val with_discipline : Bgp_core.Input_queue.discipline -> t -> t

val paper_processing_delay : Bgp_engine.Dist.t
(** U(0.001, 0.030) seconds. *)

val origin_as : t -> dest:int -> int
(** The AS that originates destination [dest] — a division with the
    uniform numbering, a binary search over the plan offsets otherwise.
    @raise Invalid_argument when a plan is set and [dest] lies outside
    it. *)

val dests_of_as : t -> asn:int -> int list
(** The destinations AS [asn] originates, restricted to the active sample
    when one is set. *)

val plan_of_counts : int array -> prefix_plan
(** Cumulative offsets from per-AS prefix counts (index = AS id).
    @raise Invalid_argument on an empty array or a count below 1. *)

val with_prefix_plan : int array -> t -> t
(** Install [plan_of_counts counts] as the prefix numbering. *)

val with_dest_sample : int array -> t -> t
(** Restrict origination to this destination subset (copied, sorted).
    @raise Invalid_argument on duplicates, negatives or an empty array. *)

val num_dests : t -> n_ases:int -> int
(** Size of the destination universe (before sampling).
    @raise Invalid_argument when a plan sized for a different AS count is
    installed. *)

val dest_active : t -> dest:int -> bool
(** Is [dest] in the active sample?  Always [true] without one. *)

val iter_active_dests : t -> n_ases:int -> (int -> unit) -> unit
(** Visit every active destination in ascending order: the whole universe
    without a sample, exactly the sample with one. *)
