open Types

type entry = {
  peer : router_id;
  kind : session_kind;
  path : path;
  rel : relationship option;
}
type best = Local | Learned of entry

type t = {
  asn : as_id;
  rib_in : (dest, (router_id, entry) Hashtbl.t) Hashtbl.t;
  loc_rib : (dest, best) Hashtbl.t;
  local : (dest, unit) Hashtbl.t;
}

let create ~asn =
  {
    asn;
    rib_in = Hashtbl.create 256;
    loc_rib = Hashtbl.create 256;
    local = Hashtbl.create 4;
  }

let asn t = t.asn

let rank = function
  | Local -> (0, 0, 0, -1)
  | Learned { peer; kind; path; rel } ->
    ( preference_of_relationship rel,
      path_length path,
      (match kind with Ebgp -> 0 | Ibgp -> 1),
      peer )

let compare_best a b = compare (rank a) (rank b)

let in_table t dest =
  match Hashtbl.find_opt t.rib_in dest with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 8 in
    Hashtbl.replace t.rib_in dest table;
    table

let originate t dest = Hashtbl.replace t.local dest ()

let set_in t dest ~peer ~kind ?rel path =
  if path_contains path t.asn then
    invalid_arg "Rib.set_in: path contains our own AS (loop check is the caller's job)";
  Hashtbl.replace (in_table t dest) peer { peer; kind; path; rel }

let withdraw_in t dest ~peer =
  match Hashtbl.find_opt t.rib_in dest with
  | None -> ()
  | Some table -> Hashtbl.remove table peer

let drop_peer t ~peer =
  Hashtbl.fold
    (fun dest table acc ->
      if Hashtbl.mem table peer then begin
        Hashtbl.remove table peer;
        dest :: acc
      end
      else acc)
    t.rib_in []

let entries_in t dest =
  match Hashtbl.find_opt t.rib_in dest with
  | None -> []
  | Some table ->
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) table [] in
    List.sort (fun a b -> compare_best (Learned a) (Learned b)) entries

let select t dest =
  let candidates =
    (if Hashtbl.mem t.local dest then [ Local ] else [])
    @ List.map (fun e -> Learned e) (entries_in t dest)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> if compare_best c acc < 0 then c else acc) first rest)

let ibgp_exportable = function
  | Local -> true
  | Learned { kind = Ebgp; _ } -> true
  | Learned { kind = Ibgp; _ } -> false

let export_identity = function
  | None -> None
  | Some Local -> Some ([], true)
  | Some (Learned e) -> Some (e.path, ibgp_exportable (Learned e))

let decide t dest =
  let before = Hashtbl.find_opt t.loc_rib dest in
  let after = select t dest in
  (match after with
  | None -> Hashtbl.remove t.loc_rib dest
  | Some b -> Hashtbl.replace t.loc_rib dest b);
  export_identity before <> export_identity after

let best t dest = Hashtbl.find_opt t.loc_rib dest

let best_path t dest =
  match best t dest with
  | None -> None
  | Some Local -> Some []
  | Some (Learned e) -> Some e.path

let loc_size t = Hashtbl.length t.loc_rib

let dests t =
  let seen = Hashtbl.create 256 in
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.rib_in;
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.loc_rib;
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.local;
  List.sort Int.compare (Hashtbl.fold (fun dest () acc -> dest :: acc) seen [])
