open Types

type entry = {
  peer : router_id;
  kind : session_kind;
  path : path;
  rel : relationship option;
}
type best = Local | Learned of entry

(* Packed ranking key: one int, lower is better, ordering identical to the
   lexicographic tuple (pref, len, kind, peer).  Layout (low to high):

     bits 0..30   peer id + 1        (Local's "peer -1" packs to 0)
     bit  31      session kind       (0 = eBGP, 1 = iBGP)
     bits 32..55  AS-path length     (24 bits)
     bits 56..57  preference class   (customer 0 / peer 1 / provider 2)

   Local therefore packs to 0, strictly below every learned route.  The
   key is precomputed at Adj-RIB-In insertion, so [select] compares plain
   ints and [decide] never allocates rank tuples. *)

let max_peer = (1 lsl 31) - 2
let max_len = (1 lsl 24) - 1

let pack ~pref ~len ~kind ~peer =
  if len > max_len then invalid_arg "Rib: AS path too long to rank";
  if peer < -1 || peer > max_peer then invalid_arg "Rib: peer id out of rank range";
  (pref lsl 56)
  lor (len lsl 32)
  lor ((match kind with Ebgp -> 0 | Ibgp -> 1) lsl 31)
  lor (peer + 1)

let packed_rank = function
  | Local -> 0
  | Learned { peer; kind; path; rel } ->
    pack ~pref:(preference_of_relationship rel) ~len:(path_length path) ~kind ~peer

let rank = function
  | Local -> (0, 0, 0, -1)
  | Learned { peer; kind; path; rel } ->
    ( preference_of_relationship rel,
      path_length path,
      (match kind with Ebgp -> 0 | Ibgp -> 1),
      peer )

(* Adj-RIB-In slots carry the precomputed key alongside the entry. *)
type slot = { entry : entry; key : int }

type t = {
  asn : as_id;
  rib_in : (dest, (router_id, slot) Hashtbl.t) Hashtbl.t;
  loc_rib : (dest, best) Hashtbl.t;
  local : (dest, unit) Hashtbl.t;
}

let create ~asn =
  {
    asn;
    rib_in = Hashtbl.create 256;
    loc_rib = Hashtbl.create 256;
    local = Hashtbl.create 4;
  }

let asn t = t.asn

let in_table t dest =
  match Hashtbl.find_opt t.rib_in dest with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 8 in
    Hashtbl.replace t.rib_in dest table;
    table

let originate t dest = Hashtbl.replace t.local dest ()
let unoriginate t dest = Hashtbl.remove t.local dest
let originates t dest = Hashtbl.mem t.local dest

let set_in t dest ~peer ~kind ?rel path =
  if path_contains path t.asn then
    invalid_arg "Rib.set_in: path contains our own AS (loop check is the caller's job)";
  let key =
    pack ~pref:(preference_of_relationship rel) ~len:(path_length path) ~kind ~peer
  in
  Hashtbl.replace (in_table t dest) peer { entry = { peer; kind; path; rel }; key }

let withdraw_in t dest ~peer =
  match Hashtbl.find_opt t.rib_in dest with
  | None -> ()
  | Some table -> Hashtbl.remove table peer

let drop_peer t ~peer =
  Hashtbl.fold
    (fun dest table acc ->
      if Hashtbl.mem table peer then begin
        Hashtbl.remove table peer;
        dest :: acc
      end
      else acc)
    t.rib_in []

let entries_in t dest =
  match Hashtbl.find_opt t.rib_in dest with
  | None -> []
  | Some table ->
    let slots = Hashtbl.fold (fun _ s acc -> s :: acc) table [] in
    List.map
      (fun s -> s.entry)
      (List.sort (fun a b -> Int.compare a.key b.key) slots)

(* One fold over the per-dest table; the running minimum is a plain int.
   Keys are unique (the peer id is part of the key), so the minimum is
   unambiguous and the fold order cannot matter. *)
let select t dest =
  let best_key = ref max_int in
  let best_slot = ref None in
  (match Hashtbl.find_opt t.rib_in dest with
  | None -> ()
  | Some table ->
    Hashtbl.iter
      (fun _ s ->
        if s.key < !best_key then begin
          best_key := s.key;
          best_slot := Some s
        end)
      table);
  if Hashtbl.mem t.local dest then Some Local
  else match !best_slot with None -> None | Some s -> Some (Learned s.entry)

let ibgp_exportable = function
  | Local -> true
  | Learned { kind = Ebgp; _ } -> true
  | Learned { kind = Ibgp; _ } -> false

(* Allocation-free equivalent of comparing the old [export_identity]
   options: two selections are export-equivalent iff they agree on the
   advertised path and on iBGP re-exportability (Local counts as the
   empty path and exportable, exactly as before). *)
let same_export before after =
  match (before, after) with
  | None, None -> true
  | None, Some _ | Some _, None -> false
  | Some Local, Some Local -> true
  | Some Local, Some (Learned e) | Some (Learned e), Some Local ->
    path_length e.path = 0 && ibgp_exportable (Learned e)
  | Some (Learned a), Some (Learned b) ->
    path_equal a.path b.path
    && ibgp_exportable (Learned a) = ibgp_exportable (Learned b)

let decide t dest =
  let before = Hashtbl.find_opt t.loc_rib dest in
  let after = select t dest in
  (match after with
  | None -> Hashtbl.remove t.loc_rib dest
  | Some b -> Hashtbl.replace t.loc_rib dest b);
  not (same_export before after)

let best t dest = Hashtbl.find_opt t.loc_rib dest

let best_path t dest =
  match best t dest with
  | None -> None
  | Some Local -> Some Path.empty
  | Some (Learned e) -> Some e.path

let loc_size t = Hashtbl.length t.loc_rib

let in_entries t =
  Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.rib_in 0

(* Estimated resident size in bytes.  A fixed word model, not a heap
   walk, so the number is deterministic (it depends only on entry
   counts, never on hashing or GC state) and cheap to take mid-run:
     adj-in entry   bucket cons (3) + slot (3) + entry (5) + rel (2)
     per-dest table inner Hashtbl header/bucket floor (12) + outer cons (3)
     loc-rib entry  bucket cons (3) + Learned box (2) + entry (5) + rel (2)
   AS-path storage is shared through the hashcons table and accounted
   there ([Path.table_stats]), not per RIB. *)
let approx_bytes t =
  let word = Sys.word_size / 8 in
  let words =
    (Hashtbl.length t.rib_in * 15)
    + (in_entries t * 13)
    + (Hashtbl.length t.loc_rib * 12)
    + (Hashtbl.length t.local * 3)
    + (3 * 12)
  in
  words * word

let num_dests t =
  let seen = Hashtbl.create 256 in
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.rib_in;
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.loc_rib;
  Hashtbl.iter (fun dest _ -> Hashtbl.replace seen dest ()) t.local;
  Hashtbl.length seen

let iter_dests t f =
  let seen = Hashtbl.create 256 in
  let visit dest _ =
    if not (Hashtbl.mem seen dest) then begin
      Hashtbl.replace seen dest ();
      f dest
    end
  in
  Hashtbl.iter visit t.rib_in;
  Hashtbl.iter visit t.loc_rib;
  Hashtbl.iter visit t.local
