type router_id = int
type as_id = int
type dest = as_id
type path = Path.t

let path_length = Path.length
let path_contains = Path.contains
let path_equal = Path.equal
let pp_path = Path.pp

type update =
  | Advertise of { dest : dest; path : path }
  | Withdraw of dest

let update_dest = function Advertise { dest; _ } -> dest | Withdraw dest -> dest
let is_withdrawal = function Withdraw _ -> true | Advertise _ -> false

let update_equal a b =
  match (a, b) with
  | Withdraw da, Withdraw db -> da = db
  | Advertise a, Advertise b -> a.dest = b.dest && Path.equal a.path b.path
  | Advertise _, Withdraw _ | Withdraw _, Advertise _ -> false

let pp_update ppf = function
  | Advertise { dest; path } -> Fmt.pf ppf "advertise(d%d via %a)" dest pp_path path
  | Withdraw dest -> Fmt.pf ppf "withdraw(d%d)" dest

type session_kind = Ebgp | Ibgp

let pp_session_kind ppf = function
  | Ebgp -> Fmt.string ppf "eBGP"
  | Ibgp -> Fmt.string ppf "iBGP"

type relationship = Customer | Peer_link | Provider

let pp_relationship ppf = function
  | Customer -> Fmt.string ppf "customer"
  | Peer_link -> Fmt.string ppf "peer"
  | Provider -> Fmt.string ppf "provider"

let preference_of_relationship = function
  | None -> 0
  | Some Customer -> 0
  | Some Peer_link -> 1
  | Some Provider -> 2
