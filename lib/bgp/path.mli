(** Hash-consed AS paths.

    Every distinct hop sequence is represented by exactly one node per
    {!table}, so the hot path compares paths by pointer, reads their
    length from a cached field, and answers most [contains] queries from a
    per-node membership bitset — replacing the [List.length]/[List.mem]
    walks the decision process and loop checks used to pay per message.

    Lifetime rules: a table lives for one simulation run (it is created by
    the network builder and shared by every router of that run), so
    interned nodes are reclaimed wholesale when the run's network is
    dropped, and no cross-domain sharing ever occurs — parallel trials
    each build their own table.  {!equal} is nevertheless safe across
    tables: it falls back to a structural hop comparison when the pointer
    test fails. *)

type t
(** An interned AS path.  Head is the AS of the last speaker that
    prepended; the origin AS is last.  The empty path (locally-originated
    routes) is the shared {!empty} node, which belongs to every table. *)

type table
(** An interning context: one per simulation run. *)

val create_table : unit -> table

val empty : t
(** The empty path; [length empty = 0]. *)

val cons : table -> int -> t -> t
(** [cons tbl asn p] is the path [asn :: hops p], interned in [tbl].
    O(1) amortised (one memo-table probe).  [p] must itself be interned
    in [tbl] (or be {!empty}).
    @raise Invalid_argument if [asn] is negative or [p] was interned in a
    different table. *)

val of_list : table -> int list -> t
(** Intern an explicit hop list (tests, warm-up seeds). *)

val hops : t -> int list
(** The hop sequence, head first.  O(1) — the list is the interned
    spine, not a copy. *)

val length : t -> int
(** Cached; O(1). *)

val is_empty : t -> bool

val contains : t -> int -> bool
(** Membership test: O(1) bitset rejection for most misses, then a scan
    of the (short) hop list to confirm. *)

val equal : t -> t -> bool
(** Pointer comparison for paths from the same table (the common case);
    structural fallback otherwise. *)

val id : t -> int
(** Unique id within the owning table (0 for {!empty}); exposed for
    debugging and benchmarks. *)

val pp : Format.formatter -> t -> unit

(** {2 Interning statistics (telemetry, micro-benchmarks)} *)

val unique_count : table -> int
(** Distinct non-empty paths interned so far. *)

val hit_count : table -> int
(** [cons] calls answered from the memo table. *)

type table_stats = {
  nodes : int;  (** distinct interned path nodes (= {!unique_count}) *)
  hops_total : int;  (** sum of path lengths over all interned nodes *)
  sharing : float;
      (** naive per-path hop storage over actual shared-spine storage;
          [>= 1.0], higher means more tail sharing *)
  approx_bytes : int;  (** fixed word model: 11 words per node *)
}

val table_stats : table -> table_stats
(** Deterministic size accounting for the memory report: depends only on
    what was interned, never on hashing or GC state.  O(nodes). *)
