(** The export half of the decision process as a pure function: what does
    a router whose Loc-RIB selection is [best] tell a given peer?

    Shared by {!Router} (live operation) and by the analytic steady-state
    construction in the network layer, so the two can never disagree. *)

open Types

val target :
  paths:Path.table ->
  config:Config.t ->
  own_as:as_id ->
  peer_kind:session_kind ->
  peer_as:as_id ->
  ?peer_rel:relationship ->
  best:Rib.best option ->
  unit ->
  path option
(** [paths] is the run's interning table (any prepended hop is interned
    there).  [None] means "advertise nothing" (i.e. withdraw if something was
    advertised before): no selection, an iBGP-learned selection facing an
    iBGP peer, a sender-side loop-check hit, or — when relationships are
    configured — a valley-free (Gao-Rexford) export restriction: routes
    learned from peers or providers are only exported to customers.
    [peer_rel] is our relationship to the peer being exported to. *)
