(** Core BGP vocabulary shared by the protocol modules.

    Destinations are AS-level prefixes: every AS originates exactly one
    prefix, identified by its AS number (the granularity at which the
    paper counts update messages). *)

type router_id = int
type as_id = int

type dest = as_id
(** The prefix originated by that AS. *)

type path = Path.t
(** AS path: head is the AS of the last speaker that prepended (the
    advertising neighbour for eBGP-learned routes), the origin AS is last.
    A locally-originated route has the empty path.  Paths are hash-consed
    per run ({!Path}), so length, equality and membership are O(1)-ish on
    the hot path. *)

val path_length : path -> int
(** O(1) (cached in the interned node). *)

val path_contains : path -> as_id -> bool
(** Bitset rejection then a short scan; see {!Path.contains}. *)

val path_equal : path -> path -> bool
(** Pointer equality within a run's table; structural fallback. *)

val pp_path : Format.formatter -> path -> unit

type update =
  | Advertise of { dest : dest; path : path }
  | Withdraw of dest

val update_dest : update -> dest
val is_withdrawal : update -> bool

val update_equal : update -> update -> bool
(** Structural equality on updates (paths compared with {!path_equal});
    the batching input queue's superseded-update test. *)

val pp_update : Format.formatter -> update -> unit

type session_kind = Ebgp | Ibgp

val pp_session_kind : Format.formatter -> session_kind -> unit

(** Commercial relationship of a neighbour (Gao-Rexford model).  The paper
    runs policy-free ("no policy based restrictions on route
    advertisements", Section 3.2); the policy machinery is an optional
    overlay of this library. *)
type relationship =
  | Customer  (** the neighbour pays us *)
  | Peer_link  (** settlement-free peer *)
  | Provider  (** we pay the neighbour *)

val pp_relationship : Format.formatter -> relationship -> unit

val preference_of_relationship : relationship option -> int
(** Local-preference class: routes via customers (0) over peers (1) over
    providers (2); [None] (no policy) maps to 0 so policy-free ranking is
    unchanged. *)
