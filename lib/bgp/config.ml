type mrai_mode = Per_peer | Per_dest
type mrai_bypass = No_bypass | Cancel_on_improvement | Flap_threshold of int

(* Non-uniform prefix numbering: [offsets.(a)] is the first destination id
   AS [a] originates and [offsets.(n_ases)] the total universe size, so
   AS [a] owns the contiguous block [offsets.(a) .. offsets.(a+1) - 1].
   The uniform [prefixes_per_as] numbering is the special case
   [offsets.(a) = a * prefixes_per_as] and stays on its historical
   division-based fast path when no plan is set. *)
type prefix_plan = { offsets : int array }

type t = {
  mrai_scheme : Bgp_core.Mrai_controller.scheme;
  mrai_mode : mrai_mode;
  ibgp_mrai : float;
  queue_discipline : Bgp_core.Input_queue.discipline;
  processing_delay : Bgp_engine.Dist.t;
  mrai_jitter : bool;
  mrai_on_withdrawals : bool;
  sender_side_loop_check : bool;
  load_window : float;
  mrai_bypass : mrai_bypass;
  dynamic_restart_timers : bool;
  damping : Bgp_core.Damping.config option;
  prefixes_per_as : int;
  prefix_plan : prefix_plan option;
  dest_sample : int array option;
}

let paper_processing_delay = Bgp_engine.Dist.Uniform { lo = 0.001; hi = 0.030 }

let default =
  {
    mrai_scheme = Static 30.0;
    mrai_mode = Per_peer;
    ibgp_mrai = 0.0;
    queue_discipline = Fifo;
    processing_delay = paper_processing_delay;
    mrai_jitter = true;
    mrai_on_withdrawals = false;
    sender_side_loop_check = true;
    load_window = 0.5;
    mrai_bypass = No_bypass;
    dynamic_restart_timers = false;
    damping = None;
    prefixes_per_as = 1;
    prefix_plan = None;
    dest_sample = None;
  }

let plan_of_counts counts =
  let n = Array.length counts in
  if n = 0 then invalid_arg "Config.plan_of_counts: empty counts";
  let offsets = Array.make (n + 1) 0 in
  for a = 0 to n - 1 do
    if counts.(a) < 1 then invalid_arg "Config.plan_of_counts: every AS needs >= 1 prefix";
    offsets.(a + 1) <- offsets.(a) + counts.(a)
  done;
  { offsets }

let with_prefix_plan counts t = { t with prefix_plan = Some (plan_of_counts counts) }

let with_dest_sample sample t =
  let sample = Array.copy sample in
  Array.sort Int.compare sample;
  for i = 1 to Array.length sample - 1 do
    if sample.(i) = sample.(i - 1) then
      invalid_arg "Config.with_dest_sample: duplicate destination"
  done;
  if Array.length sample = 0 then invalid_arg "Config.with_dest_sample: empty sample";
  if sample.(0) < 0 then invalid_arg "Config.with_dest_sample: negative destination";
  { t with dest_sample = Some sample }

let origin_as t ~dest =
  match t.prefix_plan with
  | None -> dest / t.prefixes_per_as
  | Some { offsets } ->
    (* Largest [a] with [offsets.(a) <= dest]: binary search over the
       monotone offsets array. *)
    let n = Array.length offsets - 1 in
    if dest < 0 || dest >= offsets.(n) then
      invalid_arg "Config.origin_as: destination outside the prefix plan";
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if offsets.(mid) <= dest then lo := mid else hi := mid - 1
    done;
    !lo

(* Sampling membership: binary search in the sorted active-dest array. *)
let dest_active t ~dest =
  match t.dest_sample with
  | None -> true
  | Some sample ->
    let lo = ref 0 and hi = ref (Array.length sample - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = sample.(mid) in
      if v = dest then found := true else if v < dest then lo := mid + 1 else hi := mid - 1
    done;
    !found

let dests_of_as t ~asn =
  let all =
    match t.prefix_plan with
    | None -> List.init t.prefixes_per_as (fun k -> (asn * t.prefixes_per_as) + k)
    | Some { offsets } ->
      List.init (offsets.(asn + 1) - offsets.(asn)) (fun k -> offsets.(asn) + k)
  in
  match t.dest_sample with
  | None -> all
  | Some _ -> List.filter (fun d -> dest_active t ~dest:d) all

let num_dests t ~n_ases =
  match t.prefix_plan with
  | None -> n_ases * t.prefixes_per_as
  | Some { offsets } ->
    if Array.length offsets <> n_ases + 1 then
      invalid_arg "Config.num_dests: prefix plan sized for a different AS count";
    offsets.(n_ases)

let iter_active_dests t ~n_ases f =
  match t.dest_sample with
  | None ->
    for dest = 0 to num_dests t ~n_ases - 1 do
      f dest
    done
  | Some sample -> Array.iter f sample

let with_mrai scheme t = { t with mrai_scheme = scheme }
let with_discipline discipline t = { t with queue_discipline = discipline }
