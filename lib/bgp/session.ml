open Types
module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng

type state = Idle | Open_sent | Open_confirm | Established

let pp_state ppf s =
  Fmt.string ppf
    (match s with
    | Idle -> "Idle"
    | Open_sent -> "OpenSent"
    | Open_confirm -> "OpenConfirm"
    | Established -> "Established")

type message =
  | Open of { asn : as_id; hold_time : float }
  | Keepalive
  | Notification of string
  | Update_msg of { update : update; cause : int }

let pp_message ppf = function
  | Open { asn; hold_time } -> Fmt.pf ppf "OPEN(as%d, hold=%g)" asn hold_time
  | Keepalive -> Fmt.string ppf "KEEPALIVE"
  | Notification reason -> Fmt.pf ppf "NOTIFICATION(%s)" reason
  | Update_msg { update; cause = _ } -> Fmt.pf ppf "UPDATE(%a)" pp_update update

type config = { hold_time : float; keepalive_fraction : float; jitter : bool }

let default_config = { hold_time = 90.0; keepalive_fraction = 1.0 /. 3.0; jitter = true }

type callbacks = {
  send_wire : message -> unit;
  on_established : unit -> unit;
  on_closed : reason:string -> unit;
  deliver_update : cause:int -> update -> unit;
}

type t = {
  sched : Sched.t;
  rng : Rng.t;
  config : config;
  local_as : as_id;
  cb : callbacks;
  mutable state : state;
  mutable negotiated_hold : float option;
  mutable hold_event : Sched.event_id option;
  mutable keepalive_event : Sched.event_id option;
  mutable keepalives_sent : int;
  mutable updates_delivered : int;
}

let create ~sched ~rng ~config ~local_as cb =
  {
    sched;
    rng;
    config;
    local_as;
    cb;
    state = Idle;
    negotiated_hold = None;
    hold_event = None;
    keepalive_event = None;
    keepalives_sent = 0;
    updates_delivered = 0;
  }

let state t = t.state
let negotiated_hold_time t = t.negotiated_hold
let keepalives_sent t = t.keepalives_sent
let updates_delivered t = t.updates_delivered

let jittered t interval =
  if t.config.jitter then interval *. Rng.uniform t.rng ~lo:0.75 ~hi:1.0 else interval

let cancel_timer t = function
  | Some ev -> Sched.cancel t.sched ev
  | None -> ()

let cancel_all_timers t =
  cancel_timer t t.hold_event;
  cancel_timer t t.keepalive_event;
  t.hold_event <- None;
  t.keepalive_event <- None

let rec restart_hold_timer t =
  cancel_timer t t.hold_event;
  match t.negotiated_hold with
  | None -> t.hold_event <- None
  | Some hold ->
    if hold > 0.0 then
      t.hold_event <-
        Some (Sched.schedule t.sched ~delay:(jittered t hold) (fun () -> on_hold_expiry t))

and on_hold_expiry t =
  t.hold_event <- None;
  if t.state <> Idle then begin
    t.cb.send_wire (Notification "hold timer expired");
    cancel_all_timers t;
    t.state <- Idle;
    t.cb.on_closed ~reason:"hold timer expired"
  end

let rec schedule_keepalive t =
  cancel_timer t t.keepalive_event;
  match t.negotiated_hold with
  | None -> t.keepalive_event <- None
  | Some hold ->
    let interval = t.config.keepalive_fraction *. hold in
    if interval > 0.0 then
      t.keepalive_event <-
        Some
          (Sched.schedule t.sched ~delay:(jittered t interval) (fun () ->
               on_keepalive_timer t))

and on_keepalive_timer t =
  t.keepalive_event <- None;
  if t.state = Established || t.state = Open_confirm then begin
    t.keepalives_sent <- t.keepalives_sent + 1;
    t.cb.send_wire Keepalive;
    schedule_keepalive t
  end

let send_open t =
  t.cb.send_wire (Open { asn = t.local_as; hold_time = t.config.hold_time })

let start t =
  if t.state = Idle then begin
    send_open t;
    t.state <- Open_sent;
    (* Until negotiation completes, guard the handshake with our own
       proposed hold time. *)
    t.negotiated_hold <- Some t.config.hold_time;
    restart_hold_timer t
  end

let go_idle t ~reason ~notify =
  if t.state <> Idle then begin
    if notify then t.cb.send_wire (Notification reason);
    cancel_all_timers t;
    t.state <- Idle;
    t.cb.on_closed ~reason
  end

let close t ~reason = go_idle t ~reason ~notify:true

let become_established t =
  t.state <- Established;
  restart_hold_timer t;
  t.cb.on_established ()

let handle_open t ~hold_time =
  t.negotiated_hold <- Some (Float.min t.config.hold_time hold_time);
  match t.state with
  | Idle ->
    (* Passive open: respond with our OPEN, confirm theirs. *)
    send_open t;
    t.cb.send_wire Keepalive;
    t.state <- Open_confirm;
    restart_hold_timer t;
    schedule_keepalive t
  | Open_sent ->
    t.cb.send_wire Keepalive;
    t.state <- Open_confirm;
    restart_hold_timer t;
    schedule_keepalive t
  | Open_confirm | Established ->
    (* Duplicate OPEN: renegotiate the hold time, stay put. *)
    restart_hold_timer t

let handle_wire t message =
  match message with
  | Open { hold_time; _ } -> handle_open t ~hold_time
  | Keepalive -> (
    match t.state with
    | Open_confirm -> become_established t
    | Established -> restart_hold_timer t
    | Open_sent | Idle -> ())
  | Notification reason -> go_idle t ~reason:("peer: " ^ reason) ~notify:false
  | Update_msg { update; cause } -> (
    match t.state with
    | Established ->
      restart_hold_timer t;
      t.updates_delivered <- t.updates_delivered + 1;
      t.cb.deliver_update ~cause update
    | Idle | Open_sent | Open_confirm -> ())

let send_update t ?(cause = -1) update =
  if t.state = Established then begin
    t.cb.send_wire (Update_msg { update; cause });
    true
  end
  else false
