open Types

(* Valley-free rule: a route learned from a peer or a provider may only
   be exported to customers.  Local routes and customer routes go to
   everyone.  Sessions without relationship metadata are unrestricted. *)
let valley_free_allows ~peer_rel best =
  match best with
  | Rib.Local -> true
  | Rib.Learned e -> (
    match e.Rib.rel with
    | None | Some Customer -> true
    | Some (Peer_link | Provider) -> peer_rel = Some Customer)

let target ~paths ~config ~own_as ~peer_kind ~peer_as ?peer_rel ~best () =
  match best with
  | None -> None
  | Some best ->
    if peer_kind = Ibgp && not (Rib.ibgp_exportable best) then None
    else if peer_kind = Ebgp && not (valley_free_allows ~peer_rel best) then None
    else
      let base =
        match best with Rib.Local -> Path.empty | Rib.Learned e -> e.Rib.path
      in
      let path =
        match peer_kind with Ebgp -> Path.cons paths own_as base | Ibgp -> base
      in
      if config.Config.sender_side_loop_check && path_contains path peer_as then None
      else Some path
