open Types
module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Dist = Bgp_engine.Dist
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue
module Damping = Bgp_core.Damping

type work = Update_msg of update | Peer_down_msg | Peer_up_msg

type peer_state = {
  peer_id : router_id;
  peer_as : as_id;
  kind : session_kind;
  peer_rel : relationship option;
  controller : Mrai.t;
  mutable up : bool;
  (* Per-peer MRAI mode. *)
  mutable timer_running : bool;
  mutable timer_event : Sched.event_id option;
  (* Per-dest MRAI mode: destinations with a running timer. *)
  dest_timers : (dest, Sched.event_id) Hashtbl.t;
  (* Pending destinations, with (when last marked pending, trace cause id).
     Both extras are ignored when tracing is off. *)
  pending : (dest, float * int) Hashtbl.t;
  advertised : (dest, path) Hashtbl.t;  (* Adj-RIB-Out *)
  flaps : (dest, int) Hashtbl.t;
      (* route changes since the last paced flush (Flap_threshold bypass) *)
}

type callbacks = {
  send : src:router_id -> dst:router_id -> update -> unit;
  activity : time:float -> unit;
}

type tracer = {
  on_processed :
    router:router_id ->
    src:router_id ->
    dest:dest ->
    enqueued:float ->
    started:float ->
    cause:int ->
    int;
  on_mrai_flush :
    router:router_id -> peer:router_id -> dest:dest -> ready:float -> cause:int -> int;
}

type t = {
  id : router_id;
  asn : as_id;
  config : Config.t;
  sched : Sched.t;
  rng : Rng.t;
  paths : Path.table;  (* the run's shared AS-path interning table *)
  rib : Rib.t;
  input : work Iq.t;
  peers : (router_id, peer_state) Hashtbl.t;
  mutable peer_list : router_id list;  (* ascending, for deterministic iteration *)
  mutable peer_states : peer_state list;  (* same order as [peer_list] *)
  ebgp_controller : Mrai.t;
  ibgp_controller : Mrai.t;
  mean_proc : float;
  adaptive : bool;
      (* the eBGP controller reacts to load; when false the per-message
         load-window accounting and level checks are skipped entirely *)
  cb : callbacks;
  tracer : tracer option;
  (* Trace id of the event whose handling is currently executing: the
     [Processed] completion or [Mrai_flush] that any update sent right now
     is caused by.  [-1] when untraced or outside any handler. *)
  mutable cur_cause : int;
  mutable busy : bool;
  mutable failed : bool;
  mutable last_level : int;  (* for dynamic_restart_timers *)
  damping : Damping.t option;
  (* Routes received while suppressed, reinstalled at their reuse time. *)
  parked : (router_id * dest, session_kind * path * int) Hashtbl.t;
  (* Load window for the utilization / message-count detectors. *)
  mutable window_start : float;
  mutable busy_in_window : float;
  mutable msgs_in_window : int;
  mutable last_utilization : float;
  mutable last_msgs_in_window : int;
  (* Counters. *)
  mutable adverts_sent : int;
  mutable withdrawals_sent : int;
  mutable msgs_processed : int;
  mutable max_unfinished_work : float;
  mutable rib_changes : int;  (* export-relevant Loc-RIB revisions *)
  (* Steady-state observer: called on every export-relevant Loc-RIB
     revision with (dest, now).  Pure observation — it must not draw
     randomness or schedule events (the churn monitor records per-prefix
     settle times through it). *)
  mutable on_rib_change : (int -> float -> unit) option;
}

let create ~sched ~rng ~paths ~config ~id ~asn ~degree ?tracer cb =
  let ebgp_controller = Mrai.make config.Config.mrai_scheme ~degree in
  {
    id;
    asn;
    config;
    sched;
    rng;
    paths;
    rib = Rib.create ~asn;
    input = Iq.create config.Config.queue_discipline;
    peers = Hashtbl.create 16;
    peer_list = [];
    peer_states = [];
    ebgp_controller;
    ibgp_controller = Mrai.make (Static config.Config.ibgp_mrai) ~degree;
    mean_proc = Dist.mean config.Config.processing_delay;
    adaptive = Mrai.is_adaptive ebgp_controller;
    cb;
    tracer;
    cur_cause = -1;
    busy = false;
    failed = false;
    last_level = 0;
    damping = Option.map Damping.create config.Config.damping;
    parked = Hashtbl.create 16;
    window_start = 0.0;
    busy_in_window = 0.0;
    msgs_in_window = 0;
    last_utilization = 0.0;
    last_msgs_in_window = 0;
    adverts_sent = 0;
    withdrawals_sent = 0;
    msgs_processed = 0;
    max_unfinished_work = 0.0;
    rib_changes = 0;
    on_rib_change = None;
  }

let set_rib_change_hook t f = t.on_rib_change <- Some f

let id t = t.id
let asn t = t.asn
let current_cause t = t.cur_cause
let rib t = t.rib
let is_failed t = t.failed
let peer_ids t = t.peer_list
let queue_length t = Iq.length t.input
let is_busy t = t.busy

let add_peer t ~peer ~peer_as ~kind ?relationship () =
  if Hashtbl.mem t.peers peer then invalid_arg "Router.add_peer: duplicate peer";
  let controller =
    match kind with Ebgp -> t.ebgp_controller | Ibgp -> t.ibgp_controller
  in
  Hashtbl.replace t.peers peer
    {
      peer_id = peer;
      peer_as;
      kind;
      peer_rel = relationship;
      controller;
      up = true;
      timer_running = false;
      timer_event = None;
      dest_timers = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      advertised = Hashtbl.create 64;
      flaps = Hashtbl.create 8;
    };
  t.peer_list <- List.merge Int.compare [ peer ] t.peer_list;
  t.peer_states <-
    List.map (fun pid -> Hashtbl.find t.peers pid) t.peer_list

(* --- Load window ------------------------------------------------------- *)

let roll_window t =
  let now = Sched.now t.sched in
  let w = t.config.Config.load_window in
  let elapsed = now -. t.window_start in
  if elapsed >= w then begin
    if elapsed < 2.0 *. w then begin
      t.last_utilization <- Float.min 1.0 (t.busy_in_window /. w);
      t.last_msgs_in_window <- t.msgs_in_window
    end
    else begin
      (* We skipped at least one whole window: the router was idle. *)
      t.last_utilization <- 0.0;
      t.last_msgs_in_window <- 0
    end;
    t.busy_in_window <- 0.0;
    t.msgs_in_window <- 0;
    t.window_start <- now -. Float.rem elapsed w
  end

let observe_load t =
  let work = float_of_int (Iq.length t.input) *. t.mean_proc in
  if work > t.max_unfinished_work then t.max_unfinished_work <- work;
  if t.adaptive then begin
    let load =
      {
        Mrai.now = Sched.now t.sched;
        queue_length = Iq.length t.input;
        mean_processing_delay = t.mean_proc;
        utilization = t.last_utilization;
        updates_in_window = t.last_msgs_in_window;
      }
    in
    Mrai.observe t.ebgp_controller load
  end

(* --- Sending and the MRAI gate ----------------------------------------- *)

let activity t = t.cb.activity ~time:(Sched.now t.sched)

let effective_interval t peer =
  let base = Mrai.current_interval peer.controller in
  if base <= 0.0 then 0.0
  else if t.config.Config.mrai_jitter then base *. Rng.uniform t.rng ~lo:0.75 ~hi:1.0
  else base

let send_advert t peer dest path =
  t.adverts_sent <- t.adverts_sent + 1;
  Hashtbl.replace peer.advertised dest path;
  t.cb.send ~src:t.id ~dst:peer.peer_id (Advertise { dest; path });
  activity t

let send_withdraw t peer dest =
  t.withdrawals_sent <- t.withdrawals_sent + 1;
  Hashtbl.remove peer.advertised dest;
  t.cb.send ~src:t.id ~dst:peer.peer_id (Withdraw dest);
  activity t

(* What should [peer] currently be told about [dest]?  [None] = nothing
   (so a withdrawal if something was advertised before). *)
let export_target t peer dest =
  Export.target ~paths:t.paths ~config:t.config ~own_as:t.asn ~peer_kind:peer.kind
    ~peer_as:peer.peer_as ?peer_rel:peer.peer_rel ~best:(Rib.best t.rib dest) ()

let timer_idle t peer dest =
  match t.config.Config.mrai_mode with
  | Config.Per_peer -> not peer.timer_running
  | Config.Per_dest -> not (Hashtbl.mem peer.dest_timers dest)

(* Flush one pending destination against the current Loc-RIB.  Returns
   [true] if an MRAI-limited message (an advertisement, or any message
   when mrai_on_withdrawals) was sent. *)
let flush_target t peer dest target =
  match (target, Hashtbl.find_opt peer.advertised dest) with
  | None, None -> false
  | Some path, Some advertised when path_equal path advertised -> false
  | Some path, _ ->
    send_advert t peer dest path;
    true
  | None, Some _ ->
    send_withdraw t peer dest;
    t.config.Config.mrai_on_withdrawals

let flush_dest t peer dest = flush_target t peer dest (export_target t peer dest)

(* Mark [dest] pending towards [peer], remembering when it became
   MRAI-eligible and which event made it so (for the Mrai_flush trace
   event recorded at timer expiry). *)
let pend t peer dest = Hashtbl.replace peer.pending dest (Sched.now t.sched, t.cur_cause)

(* About to flush [dest] at timer expiry: record the Mrai_flush event and
   make it the cause of the updates the flush emits. *)
let set_flush_cause t peer dest ~ready ~cause =
  match t.tracer with
  | Some tr ->
    t.cur_cause <- tr.on_mrai_flush ~router:t.id ~peer:peer.peer_id ~dest ~ready ~cause
  | None -> ()

let rec start_timer t peer =
  let interval = effective_interval t peer in
  if interval > 0.0 then begin
    peer.timer_running <- true;
    let ev = Sched.schedule t.sched ~delay:interval (fun () -> on_peer_timer t peer) in
    peer.timer_event <- Some ev
  end

and on_peer_timer t peer =
  peer.timer_running <- false;
  peer.timer_event <- None;
  if (not t.failed) && peer.up then begin
    let dests = Hashtbl.fold (fun d rc acc -> (d, rc) :: acc) peer.pending [] in
    let dests = List.sort (fun (a, _) (b, _) -> Int.compare a b) dests in
    Hashtbl.reset peer.pending;
    Hashtbl.reset peer.flaps;
    let sent =
      List.fold_left
        (fun acc (d, (ready, cause)) ->
          set_flush_cause t peer d ~ready ~cause;
          if flush_dest t peer d then true else acc)
        false dests
    in
    if sent then start_timer t peer
  end

let rec start_dest_timer t peer dest =
  let interval = effective_interval t peer in
  if interval > 0.0 then begin
    let ev =
      Sched.schedule t.sched ~delay:interval (fun () -> on_dest_timer t peer dest)
    in
    Hashtbl.replace peer.dest_timers dest ev
  end

and on_dest_timer t peer dest =
  Hashtbl.remove peer.dest_timers dest;
  if (not t.failed) && peer.up then
    match Hashtbl.find_opt peer.pending dest with
    | None -> ()
    | Some (ready, cause) ->
      Hashtbl.remove peer.pending dest;
      Hashtbl.remove peer.flaps dest;
      set_flush_cause t peer dest ~ready ~cause;
      if flush_dest t peer dest then start_dest_timer t peer dest

let after_send t peer dest =
  match t.config.Config.mrai_mode with
  | Config.Per_peer -> start_timer t peer
  | Config.Per_dest -> start_dest_timer t peer dest

(* Cancel whichever timer currently gates exports of [dest] to [peer]
   (Deshpande-Sikdar "cancel the running MRAI timer"). *)
let cancel_gate_timer t peer dest =
  match t.config.Config.mrai_mode with
  | Config.Per_peer -> (
    match peer.timer_event with
    | Some ev ->
      Sched.cancel t.sched ev;
      peer.timer_event <- None;
      peer.timer_running <- false
    | None -> ())
  | Config.Per_dest -> (
    match Hashtbl.find_opt peer.dest_timers dest with
    | Some ev ->
      Sched.cancel t.sched ev;
      Hashtbl.remove peer.dest_timers dest
    | None -> ())

(* Deshpande-Sikdar method 1: is the new export strictly better than what
   the peer currently holds? *)
let is_improvement peer dest path =
  match Hashtbl.find_opt peer.advertised dest with
  | None -> true
  | Some advertised -> path_length path < path_length advertised

let bump_flaps peer dest =
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt peer.flaps dest) in
  Hashtbl.replace peer.flaps dest count;
  count

(* A route change for [dest] happened: decide what (if anything) to tell
   [peer], applying the MRAI gate (and any configured bypass). *)
let schedule_export t peer dest =
  if peer.up then
    let target = export_target t peer dest in
    match (target, Hashtbl.find_opt peer.advertised dest) with
    | None, None -> Hashtbl.remove peer.pending dest
    | Some path, Some advertised when path_equal path advertised ->
      Hashtbl.remove peer.pending dest
    | Some path, _ ->
      if timer_idle t peer dest then begin
        ignore (flush_target t peer dest target);
        after_send t peer dest
      end
      else begin
        let flap_count = bump_flaps peer dest in
        match t.config.Config.mrai_bypass with
        | Config.No_bypass -> pend t peer dest
        | Config.Cancel_on_improvement ->
          if is_improvement peer dest path then begin
            cancel_gate_timer t peer dest;
            Hashtbl.remove peer.pending dest;
            ignore (flush_target t peer dest target);
            after_send t peer dest
          end
          else pend t peer dest
        | Config.Flap_threshold k ->
          if flap_count < k then begin
            (* Below the flap threshold the MRAI is not applied to this
               destination: the update goes out immediately and the gate
               timer is left untouched. *)
            Hashtbl.remove peer.pending dest;
            ignore (flush_target t peer dest target)
          end
          else pend t peer dest
      end
    | None, Some _ ->
      if t.config.Config.mrai_on_withdrawals then begin
        if timer_idle t peer dest then begin
          ignore (flush_target t peer dest target);
          after_send t peer dest
        end
        else pend t peer dest
      end
      else begin
        (* RFC behaviour: withdrawals are not rate-limited. *)
        Hashtbl.remove peer.pending dest;
        send_withdraw t peer dest
      end

(* Paper Section 5 "future work": apply a dynamic level change to running
   timers immediately (re-armed with the new interval from now) instead of
   waiting for their natural restart. *)
let rearm_running_timers t =
  let level = Mrai.level t.ebgp_controller in
  if level <> t.last_level then begin
    t.last_level <- level;
    if t.config.Config.dynamic_restart_timers then
      List.iter
        (fun peer ->
          if peer.up && peer.kind = Ebgp then
            match t.config.Config.mrai_mode with
            | Config.Per_peer ->
              if peer.timer_running then begin
                (match peer.timer_event with
                | Some ev -> Sched.cancel t.sched ev
                | None -> ());
                peer.timer_event <- None;
                peer.timer_running <- false;
                start_timer t peer
              end
            | Config.Per_dest ->
              let dests =
                List.sort Int.compare
                  (Hashtbl.fold (fun d _ acc -> d :: acc) peer.dest_timers [])
              in
              List.iter
                (fun d ->
                  (match Hashtbl.find_opt peer.dest_timers d with
                  | Some ev -> Sched.cancel t.sched ev
                  | None -> ());
                  Hashtbl.remove peer.dest_timers d;
                  start_dest_timer t peer d)
                dests)
        t.peer_states
  end

let reconsider t dest =
  if Rib.decide t.rib dest then begin
    t.rib_changes <- t.rib_changes + 1;
    (match t.on_rib_change with
    | Some f -> f dest (Sched.now t.sched)
    | None -> ());
    activity t;
    List.iter (fun peer -> schedule_export t peer dest) t.peer_states
  end

(* --- Flap damping (RFC 2439) -------------------------------------------- *)

(* A suppressed route is parked instead of installed; when its penalty
   decays below the reuse threshold it is installed as if freshly
   received. *)
let rec schedule_reuse_check t damping ~src ~dest =
  match Damping.reuse_time damping ~peer:src ~dest ~now:(Sched.now t.sched) with
  | None -> ()
  | Some time ->
    let delay = Float.max 0.001 (time -. Sched.now t.sched) in
    ignore
      (Sched.schedule t.sched ~delay (fun () ->
           if not t.failed then
             match Hashtbl.find_opt t.peers src with
             | Some peer when peer.up ->
               if Damping.is_suppressed damping ~peer:src ~dest ~now:(Sched.now t.sched)
               then schedule_reuse_check t damping ~src ~dest
               else begin
                 match Hashtbl.find_opt t.parked (src, dest) with
                 | Some (kind, path, cause) ->
                   Hashtbl.remove t.parked (src, dest);
                   Rib.set_in t.rib dest ~peer:src ~kind path;
                   (* The reuse timer fires on penalty decay, but the
                      announcement it releases was caused by the update
                      whose processing parked the route — thread that
                      cause through so damped paths attribute end to
                      end. *)
                   t.cur_cause <- cause;
                   reconsider t dest;
                   activity t
                 | None -> ()
               end
             | Some _ | None -> ()))

let apply_update_with_damping t damping peer ~src update =
  let now = Sched.now t.sched in
  match update with
  | Withdraw dest ->
    Damping.record_flap damping ~peer:src ~dest ~now ~kind:`Withdraw;
    Hashtbl.remove t.parked (src, dest);
    Rib.withdraw_in t.rib dest ~peer:src
  | Advertise { dest; path } ->
    Damping.record_flap damping ~peer:src ~dest ~now ~kind:`Update;
    if path_contains path t.asn then begin
      Hashtbl.remove t.parked (src, dest);
      Rib.withdraw_in t.rib dest ~peer:src
    end
    else if Damping.is_suppressed damping ~peer:src ~dest ~now then begin
      Hashtbl.replace t.parked (src, dest) (peer.kind, path, t.cur_cause);
      Rib.withdraw_in t.rib dest ~peer:src;
      schedule_reuse_check t damping ~src ~dest
    end
    else begin
      Hashtbl.remove t.parked (src, dest);
      Rib.set_in t.rib dest ~peer:src ~kind:peer.kind ?rel:peer.peer_rel path
    end

(* --- Input queue and processing ---------------------------------------- *)

let handle_work t (item : work Iq.item) =
  match item.payload with
  | Update_msg update -> (
    match Hashtbl.find_opt t.peers item.src with
    | None -> ()
    | Some peer ->
      if peer.up then begin
        (match t.damping with
        | Some damping -> apply_update_with_damping t damping peer ~src:item.src update
        | None -> (
          match update with
          | Advertise { dest; path } ->
            if path_contains path t.asn then
              (* Receiver-side loop detection: treat as implicit withdraw. *)
              Rib.withdraw_in t.rib dest ~peer:item.src
            else
              Rib.set_in t.rib dest ~peer:item.src ~kind:peer.kind ?rel:peer.peer_rel
                path
          | Withdraw dest -> Rib.withdraw_in t.rib dest ~peer:item.src));
        reconsider t (update_dest update)
      end)
  | Peer_down_msg ->
    (* Parked (suppressed) routes from the dead peer must go too; collect
       the stale keys first (mutating under iteration is unspecified)
       rather than copying the whole table. *)
    let stale =
      Hashtbl.fold
        (fun ((src, _) as k) _ acc -> if src = item.src then k :: acc else acc)
        t.parked []
    in
    List.iter (Hashtbl.remove t.parked) stale;
    let affected = Rib.drop_peer t.rib ~peer:item.src in
    List.iter (reconsider t) (List.sort Int.compare affected)
  | Peer_up_msg -> (
    match Hashtbl.find_opt t.peers item.src with
    | None -> ()
    | Some peer ->
      if peer.up then begin
        (* Session re-establishment: both sides start from a clean slate
           (whatever survived the down/up race is dropped) and re-announce
           their full table, exactly like a real BGP session reset.  The
           Adj-RIB-Out towards the peer was cleared at [peer_up] time, so
           every current best route exports as a fresh advertisement,
           gated by the MRAI as usual. *)
        let stale =
          Hashtbl.fold
            (fun ((src, _) as k) _ acc -> if src = item.src then k :: acc else acc)
            t.parked []
        in
        List.iter (Hashtbl.remove t.parked) stale;
        let affected = Rib.drop_peer t.rib ~peer:item.src in
        List.iter (reconsider t) (List.sort Int.compare affected);
        let dests = ref [] in
        Rib.iter_dests t.rib (fun d -> dests := d :: !dests);
        List.iter (fun d -> schedule_export t peer d) (List.sort Int.compare !dests)
      end)

let rec begin_next t =
  match Iq.pop t.input with
  | None -> t.busy <- false
  | Some item ->
    t.busy <- true;
    let delay = Dist.sample t.config.Config.processing_delay t.rng in
    ignore (Sched.schedule t.sched ~delay (fun () -> complete t item delay))

and complete t item delay =
  if not t.failed then begin
    if t.adaptive then begin
      roll_window t;
      t.busy_in_window <- t.busy_in_window +. delay
    end;
    t.msgs_processed <- t.msgs_processed + 1;
    (match t.tracer with
    | Some tr ->
      t.cur_cause <-
        tr.on_processed ~router:t.id ~src:item.src ~dest:item.dest
          ~enqueued:item.enqueued
          ~started:(Sched.now t.sched -. delay)
          ~cause:item.cause
    | None -> ());
    handle_work t item;
    observe_load t;
    if t.adaptive then rearm_running_timers t;
    activity t;
    begin_next t
  end

let enqueue t ?(cause = -1) ~src ~dest work =
  if not t.failed then begin
    if t.adaptive then begin
      roll_window t;
      (match work with
      | Update_msg _ -> t.msgs_in_window <- t.msgs_in_window + 1
      | _ -> ())
    end;
    Iq.push t.input { Iq.src; dest; payload = work; cause; enqueued = Sched.now t.sched };
    observe_load t;
    if t.adaptive then rearm_running_timers t;
    if not t.busy then begin_next t
  end

let receive t ?cause ~src update =
  enqueue t ?cause ~src ~dest:(update_dest update) (Update_msg update)

let cancel_peer_timers t peer =
  (match peer.timer_event with
  | Some ev ->
    Sched.cancel t.sched ev;
    peer.timer_event <- None;
    peer.timer_running <- false
  | None -> ());
  Hashtbl.iter (fun _ ev -> Sched.cancel t.sched ev) peer.dest_timers;
  Hashtbl.reset peer.dest_timers

let peer_down t ?cause peer_id =
  if not t.failed then
    match Hashtbl.find_opt t.peers peer_id with
    | None -> ()
    | Some peer ->
      if peer.up then begin
        peer.up <- false;
        cancel_peer_timers t peer;
        Hashtbl.reset peer.pending;
        Hashtbl.reset peer.flaps;
        enqueue t ?cause ~src:peer_id ~dest:(-1) Peer_down_msg
      end

let peer_up t ?cause peer_id =
  if not t.failed then
    match Hashtbl.find_opt t.peers peer_id with
    | None -> ()
    | Some peer ->
      if not peer.up then begin
        peer.up <- true;
        (* Forget the Adj-RIB-Out now: the peer lost everything we ever
           sent when its side processed the session drop, so the re-sync
           (the queued [Peer_up_msg]) must re-advertise from scratch. *)
        Hashtbl.reset peer.advertised;
        Hashtbl.reset peer.pending;
        Hashtbl.reset peer.flaps;
        enqueue t ?cause ~src:peer_id ~dest:(-1) Peer_up_msg
      end

let start t =
  List.iter
    (fun dest ->
      Rib.originate t.rib dest;
      reconsider t dest)
    (Config.dests_of_as t.config ~asn:t.asn)

(* Churn entry points: a locally-originated prefix comes or goes at the
   current simulated time, threaded through the normal decision process
   (so exports, MRAI pacing and tracing behave exactly as for a learned
   route change).  [cause] is the Trace.Fault root the churn installer
   recorded for this op. *)
let announce_origin t ?(cause = -1) dest =
  if not t.failed then begin
    t.cur_cause <- cause;
    Rib.originate t.rib dest;
    reconsider t dest;
    t.cur_cause <- -1
  end

let withdraw_origin t ?(cause = -1) dest =
  if not t.failed then begin
    t.cur_cause <- cause;
    Rib.unoriginate t.rib dest;
    reconsider t dest;
    t.cur_cause <- -1
  end

let warm_install t ~dest ~local ~entries ~advertised =
  if local then Rib.originate t.rib dest;
  List.iter (fun (peer, kind, path) -> Rib.set_in t.rib dest ~peer ~kind path) entries;
  ignore (Rib.decide t.rib dest);
  List.iter
    (fun (peer_id, path) ->
      match Hashtbl.find_opt t.peers peer_id with
      | Some peer -> Hashtbl.replace peer.advertised dest path
      | None -> invalid_arg "Router.warm_install: unknown peer")
    advertised

let advertised_to t ~peer dest =
  match Hashtbl.find_opt t.peers peer with
  | None -> None
  | Some p -> Hashtbl.find_opt p.advertised dest

let fail t =
  if not t.failed then begin
    t.failed <- true;
    t.busy <- false;
    Iq.clear t.input;
    Hashtbl.iter (fun _ peer -> cancel_peer_timers t peer) t.peers
  end

(* --- Inspection --------------------------------------------------------- *)

let best_path_to t dest = Rib.best_path t.rib dest
let max_unfinished_work t = t.max_unfinished_work

(* Point-in-time probe readouts (telemetry samplers). *)
let unfinished_work t = float_of_int (Iq.length t.input) *. t.mean_proc
let mrai_level t = Mrai.level t.ebgp_controller
let mrai_transitions t = Mrai.transitions t.ebgp_controller
let rib_size t = Rib.loc_size t.rib
let rib_changes t = t.rib_changes

let next_hop t dest =
  match Rib.best t.rib dest with
  | None -> None
  | Some Rib.Local -> Some t.id
  | Some (Rib.Learned e) -> Some e.peer

type metrics = {
  adverts_sent : int;
  withdrawals_sent : int;
  msgs_processed : int;
  eliminated : int;
  max_queue : int;
  mrai_transitions : int;
  mrai_level : int;
  damping_suppressions : int;
}

let metrics (t : t) =
  {
    adverts_sent = t.adverts_sent;
    withdrawals_sent = t.withdrawals_sent;
    msgs_processed = t.msgs_processed;
    eliminated = Iq.eliminated t.input;
    max_queue = Iq.max_length t.input;
    mrai_transitions = Mrai.transitions t.ebgp_controller;
    mrai_level = Mrai.level t.ebgp_controller;
    damping_suppressions =
      (match t.damping with None -> 0 | Some d -> Damping.suppressions d);
  }
