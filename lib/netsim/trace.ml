module Types = Bgp_proto.Types
module Path = Bgp_proto.Path

let no_cause = -1

type event =
  | Update_sent of {
      id : int;
      time : float;
      src : int;
      dst : int;
      update : Types.update;
      cause : int;
    }
  | Update_delivered of {
      id : int;
      time : float;
      src : int;
      dst : int;
      update : Types.update;
      cause : int;
    }
  | Processed of {
      id : int;
      time : float;
      router : int;
      src : int;
      dest : int;
      enqueued : float;
      started : float;
      cause : int;
    }
  | Mrai_flush of {
      id : int;
      time : float;
      router : int;
      peer : int;
      dest : int;
      ready : float;
      cause : int;
    }
  | Router_failed of { id : int; time : float; router : int }
  | Session_down of { id : int; time : float; router : int; peer : int; cause : int }
  | Session_up of { id : int; time : float; router : int; peer : int; cause : int }
  | Fault of { id : int; time : float; label : string; router : int; cause : int }

let id_of = function
  | Update_sent { id; _ }
  | Update_delivered { id; _ }
  | Processed { id; _ }
  | Mrai_flush { id; _ }
  | Router_failed { id; _ }
  | Session_down { id; _ }
  | Session_up { id; _ }
  | Fault { id; _ } ->
    id

let time_of = function
  | Update_sent { time; _ }
  | Update_delivered { time; _ }
  | Processed { time; _ }
  | Mrai_flush { time; _ }
  | Router_failed { time; _ }
  | Session_down { time; _ }
  | Session_up { time; _ }
  | Fault { time; _ } ->
    time

let cause_of = function
  | Update_sent { cause; _ }
  | Update_delivered { cause; _ }
  | Processed { cause; _ }
  | Mrai_flush { cause; _ }
  | Session_down { cause; _ }
  | Session_up { cause; _ }
  | Fault { cause; _ } ->
    cause
  | Router_failed _ -> no_cause

let router_of = function
  | Update_sent { src; _ } -> src
  | Update_delivered { dst; _ } -> dst
  | Processed { router; _ } | Mrai_flush { router; _ } -> router
  | Router_failed { router; _ } | Session_down { router; _ } -> router
  | Session_up { router; _ } | Fault { router; _ } -> router

let dest_of = function
  | Update_sent { update; _ } | Update_delivered { update; _ } ->
    Some (Types.update_dest update)
  | Processed { dest; _ } -> if dest >= 0 then Some dest else None
  | Mrai_flush { dest; _ } -> Some dest
  | Router_failed _ | Session_down _ | Session_up _ | Fault _ -> None

(* Latest event per destination, max (time, id) — the same tie-break the
   network-wide terminal uses, so a destination's terminal is the event
   recorded last among simultaneous ones (causally downstream). *)
let terminals_by_dest events =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match dest_of e with
      | None -> ()
      | Some dest -> (
        match Hashtbl.find_opt table dest with
        | None -> Hashtbl.replace table dest e
        | Some best ->
          let te = time_of e and tb = time_of best in
          if te > tb || (te = tb && id_of e > id_of best) then
            Hashtbl.replace table dest e))
    events;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun dest e acc -> (dest, e) :: acc) table [])

let pp_event ppf = function
  | Update_sent { id; time; src; dst; update; cause } ->
    Fmt.pf ppf "%10.4f  #%-6d %3d -> %3d  send %a (cause #%d)" time id src dst
      Types.pp_update update cause
  | Update_delivered { id; time; src; dst; update; cause } ->
    Fmt.pf ppf "%10.4f  #%-6d %3d -> %3d  recv %a (cause #%d)" time id src dst
      Types.pp_update update cause
  | Processed { id; time; router; src; dest; enqueued; started; cause } ->
    Fmt.pf ppf
      "%10.4f  #%-6d router %d processed d%d from %d (enq %.4f, start %.4f, cause #%d)"
      time id router dest src enqueued started cause
  | Mrai_flush { id; time; router; peer; dest; ready; cause } ->
    Fmt.pf ppf
      "%10.4f  #%-6d router %d MRAI flush d%d -> %d (ready %.4f, held %.4f, cause #%d)"
      time id router dest peer ready (time -. ready) cause
  | Router_failed { id; time; router } ->
    Fmt.pf ppf "%10.4f  #%-6d router %d FAILED" time id router
  | Session_down { id; time; router; peer; cause } ->
    Fmt.pf ppf "%10.4f  #%-6d router %d: session to %d down (cause #%d)" time id router
      peer cause
  | Session_up { id; time; router; peer; cause } ->
    Fmt.pf ppf "%10.4f  #%-6d router %d: session to %d up (cause #%d)" time id router
      peer cause
  | Fault { id; time; label; router; cause } ->
    Fmt.pf ppf "%10.4f  #%-6d FAULT %s (router %d, cause #%d)" time id label router
      cause

(* --- JSONL serialization -------------------------------------------------- *)

(* "%.17g" round-trips any finite double exactly, so spilled events parse
   back bit-identical and attribution over a spilled trace matches the
   in-memory result. *)
let json_float = Json_lite.float_lit

let buf_update buf update =
  match update with
  | Types.Advertise { dest; path } ->
    Printf.bprintf buf "{\"kind\":\"advertise\",\"dest\":%d,\"path\":[" dest;
    List.iteri
      (fun i asn -> Printf.bprintf buf "%s%d" (if i > 0 then "," else "") asn)
      (Path.hops path);
    Buffer.add_string buf "]}"
  | Types.Withdraw dest -> Printf.bprintf buf "{\"kind\":\"withdraw\",\"dest\":%d}" dest

let event_to_json event =
  let buf = Buffer.create 128 in
  let head kind id time =
    Printf.bprintf buf "{\"type\":\"%s\",\"id\":%d,\"time\":%s" kind id (json_float time)
  in
  (match event with
  | Update_sent { id; time; src; dst; update; cause } ->
    head "update_sent" id time;
    Printf.bprintf buf ",\"src\":%d,\"dst\":%d,\"cause\":%d,\"update\":" src dst cause;
    buf_update buf update
  | Update_delivered { id; time; src; dst; update; cause } ->
    head "update_delivered" id time;
    Printf.bprintf buf ",\"src\":%d,\"dst\":%d,\"cause\":%d,\"update\":" src dst cause;
    buf_update buf update
  | Processed { id; time; router; src; dest; enqueued; started; cause } ->
    head "processed" id time;
    Printf.bprintf buf
      ",\"router\":%d,\"src\":%d,\"dest\":%d,\"enqueued\":%s,\"started\":%s,\"cause\":%d"
      router src dest (json_float enqueued) (json_float started) cause
  | Mrai_flush { id; time; router; peer; dest; ready; cause } ->
    head "mrai_flush" id time;
    Printf.bprintf buf ",\"router\":%d,\"peer\":%d,\"dest\":%d,\"ready\":%s,\"cause\":%d"
      router peer dest (json_float ready) cause
  | Router_failed { id; time; router } ->
    head "router_failed" id time;
    Printf.bprintf buf ",\"router\":%d" router
  | Session_down { id; time; router; peer; cause } ->
    head "session_down" id time;
    Printf.bprintf buf ",\"router\":%d,\"peer\":%d,\"cause\":%d" router peer cause
  | Session_up { id; time; router; peer; cause } ->
    head "session_up" id time;
    Printf.bprintf buf ",\"router\":%d,\"peer\":%d,\"cause\":%d" router peer cause
  | Fault { id; time; label; router; cause } ->
    head "fault" id time;
    Printf.bprintf buf ",\"label\":\"%s\",\"router\":%d,\"cause\":%d" label router cause);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* The JSON reader lives in {!Json_lite}, shared with the sidecar and
   merge layers; numbers keep their literal so ints and exact floats both
   survive. *)
module J = Json_lite

let event_of_json ~paths line =
  J.try_result @@ fun () ->
    let obj = J.obj (J.parse line) in
    let field = J.field obj in
    let int key = J.int (field key) in
    let fl key = J.float (field key) in
    let str key = J.str (field key) in
    let update () =
      let u = J.obj (field "update") in
      let uint key = J.int (J.field u key) in
      match J.str (J.field u "kind") with
      | "withdraw" -> Types.Withdraw (uint "dest")
      | "advertise" ->
        let hops = List.map J.int (J.arr (J.field u "path")) in
        Types.Advertise { dest = uint "dest"; path = Path.of_list paths hops }
      | _ -> raise (J.Bad "update: unknown kind")
    in
    let id = int "id" and time = fl "time" in
    match str "type" with
    | "update_sent" ->
      Update_sent
        {
          id;
          time;
          src = int "src";
          dst = int "dst";
          update = update ();
          cause = int "cause";
        }
    | "update_delivered" ->
      Update_delivered
        {
          id;
          time;
          src = int "src";
          dst = int "dst";
          update = update ();
          cause = int "cause";
        }
    | "processed" ->
      Processed
        {
          id;
          time;
          router = int "router";
          src = int "src";
          dest = int "dest";
          enqueued = fl "enqueued";
          started = fl "started";
          cause = int "cause";
        }
    | "mrai_flush" ->
      Mrai_flush
        {
          id;
          time;
          router = int "router";
          peer = int "peer";
          dest = int "dest";
          ready = fl "ready";
          cause = int "cause";
        }
    | "router_failed" -> Router_failed { id; time; router = int "router" }
    | "session_down" ->
      Session_down { id; time; router = int "router"; peer = int "peer"; cause = int "cause" }
    | "session_up" ->
      Session_up { id; time; router = int "router"; peer = int "peer"; cause = int "cause" }
    | "fault" ->
      Fault { id; time; label = str "label"; router = int "router"; cause = int "cause" }
    | kind -> raise (J.Bad (Printf.sprintf "unknown event type %S" kind))

(* --- Shard-trace merge ----------------------------------------------------- *)

let with_ids ~id ~cause = function
  | Update_sent r -> Update_sent { r with id; cause }
  | Update_delivered r -> Update_delivered { r with id; cause }
  | Processed r -> Processed { r with id; cause }
  | Mrai_flush r -> Mrai_flush { r with id; cause }
  | Router_failed r -> Router_failed { r with id }
  | Session_down r -> Session_down { r with id; cause }
  | Session_up r -> Session_up { r with id; cause }
  | Fault r -> Fault { r with id; cause }

(* Merge per-shard event lists into one sequential-looking trace.  Input
   ids must be globally unique with ids allocated in causal order within
   each (time-tied) group — the sharded network's strided per-router ids
   and its high fault-id range satisfy both.  The merge sorts by
   (time, id), renumbers densely from 0 and rewrites cause pointers; a
   cause whose event is missing (evicted from a full per-shard ring)
   degrades to [no_cause], exactly like a sequential ring overflow. *)
let merge_renumber lists =
  let arr = Array.of_list (List.concat lists) in
  Array.sort
    (fun a b ->
      let c = Float.compare (time_of a) (time_of b) in
      if c <> 0 then c else Int.compare (id_of a) (id_of b))
    arr;
  let remap = Hashtbl.create (2 * Array.length arr) in
  Array.iteri (fun i e -> Hashtbl.replace remap (id_of e) i) arr;
  Array.to_list
    (Array.mapi
       (fun i e ->
         let cause =
           let c = cause_of e in
           if c = no_cause then no_cause
           else (match Hashtbl.find_opt remap c with Some j -> j | None -> no_cause)
         in
         with_ids ~id:i ~cause e)
       arr)

(* --- Run-meta line --------------------------------------------------------- *)

(* One JSONL line carrying what a trace file cannot reconstruct from its
   events: the trial's seed and failure-injection time.  Appended by
   [finalize] so a seed-suffixed per-trial file is self-describing and a
   merge pass ([Attribution.merge]) can re-analyze it standalone. *)

type run_meta = { seed : int; t_fail : float }

let meta_prefix = "{\"type\":\"meta\""

let meta_to_json m =
  Printf.sprintf "{\"type\":\"meta\",\"schema\":\"bgp-trace/1\",\"seed\":%d,\"t_fail\":%s}"
    m.seed (json_float m.t_fail)

let is_meta_line line =
  String.length line >= String.length meta_prefix
  && String.sub line 0 (String.length meta_prefix) = meta_prefix

let meta_of_json line =
  J.try_result @@ fun () ->
    let obj = J.obj (J.parse line) in
    { seed = J.int (J.field obj "seed"); t_fail = J.float (J.field obj "t_fail") }

(* --- Ring buffer + spill sink --------------------------------------------- *)

type t = {
  capacity : int;
  mutable data : event array;
  mutable next : int;  (* next write position *)
  mutable size : int;
  mutable dropped : int;
  mutable spilled : int;
  mutable next_id : int;
  spill : string option;
  mutable sink : out_channel option;
}

let create ?(capacity = 100_000) ?spill () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let sink = Option.map open_out spill in
  {
    capacity;
    data = [||];
    next = 0;
    size = 0;
    dropped = 0;
    spilled = 0;
    next_id = 0;
    spill;
    sink;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let record t event =
  if Array.length t.data = 0 then t.data <- Array.make t.capacity event;
  if t.size = t.capacity then begin
    (* Evicting the oldest event: spill it if a sink is attached. *)
    match t.sink with
    | Some oc ->
      output_string oc (event_to_json t.data.(t.next));
      output_char oc '\n';
      t.spilled <- t.spilled + 1
    | None -> t.dropped <- t.dropped + 1
  end
  else t.size <- t.size + 1;
  t.data.(t.next) <- event;
  t.next <- (t.next + 1) mod t.capacity

let length t = t.size
let capacity t = t.capacity
let dropped t = t.dropped
let spilled t = t.spilled
let spill_path t = t.spill

let close t =
  match t.sink with
  | Some oc ->
    close_out oc;
    t.sink <- None
  | None -> ()

let to_list t =
  let start = (t.next - t.size + t.capacity) mod t.capacity in
  List.init t.size (fun i -> t.data.((start + i) mod t.capacity))

let read_spilled t =
  match t.spill with
  | None -> []
  | Some path ->
    Option.iter flush t.sink;
    if not (Sys.file_exists path) then []
    else begin
      let paths = Path.create_table () in
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match In_channel.input_line ic with
            | None -> List.rev acc
            | Some line when is_meta_line line -> go acc
            | Some line ->
              (match event_of_json ~paths line with
              | Ok event -> go (event :: acc)
              | Error msg ->
                failwith (Printf.sprintf "Trace.events: bad spilled line (%s): %s" msg line))
          in
          go [])
    end

let events t = read_spilled t @ to_list t

let finalize t ~meta =
  match t.spill with
  | None -> invalid_arg "Trace.finalize: the trace has no spill file"
  | Some path ->
    close t;
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (event_to_json e);
            output_char oc '\n')
          (to_list t);
        output_string oc (meta_to_json meta);
        output_char oc '\n');
    (* The file is now the complete record; empty the ring so [events]
       (which splices file + ring) does not double-count the tail. *)
    t.size <- 0;
    t.next <- 0

let read_file ~paths path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* A truncated write (crash mid-spill, partial copy) shows up as a
           line that does not parse — typically the last one.  Report it as
           a value so a merge over many per-trial files can skip or surface
           the bad file instead of dying mid-pass. *)
        let rec go lineno meta acc =
          match In_channel.input_line ic with
          | None ->
            if lineno = 1 then Error (Printf.sprintf "%s: empty trace file" path)
            else Ok (meta, List.rev acc)
          | Some line when is_meta_line line ->
            (match meta_of_json line with
            | Ok m -> go (lineno + 1) (Some m) acc
            | Error msg ->
              Error (Printf.sprintf "%s:%d: bad meta line (%s)" path lineno msg))
          | Some line ->
            (match event_of_json ~paths line with
            | Ok event -> go (lineno + 1) meta (event :: acc)
            | Error msg ->
              Error
                (Printf.sprintf "%s:%d: truncated or malformed line (%s)" path lineno
                   msg))
        in
        go 1 None [])

let count t ~pred = List.length (List.filter pred (to_list t))

let sends_by_router t =
  let table = Hashtbl.create 64 in
  List.iter
    (function
      | Update_sent { src; _ } ->
        Hashtbl.replace table src (1 + Option.value ~default:0 (Hashtbl.find_opt table src))
      | Update_delivered _ | Processed _ | Mrai_flush _ | Router_failed _
      | Session_down _ | Session_up _ | Fault _ ->
        ())
    (to_list t);
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold (fun r c acc -> (r, c) :: acc) table [])

let between t ~lo ~hi =
  List.filter
    (fun e ->
      let time = time_of e in
      time >= lo && time < hi)
    (to_list t)

let dump ?(limit = 50) ppf t =
  let events = to_list t in
  let skip = Stdlib.max 0 (List.length events - limit) in
  if skip > 0 then Fmt.pf ppf "... (%d earlier events)@." skip;
  List.iteri (fun i e -> if i >= skip then Fmt.pf ppf "%a@." pp_event e) events

let clear t =
  t.size <- 0;
  t.next <- 0;
  t.dropped <- 0;
  t.spilled <- 0;
  match (t.spill, t.sink) with
  | Some path, Some oc ->
    close_out oc;
    t.sink <- Some (open_out path)
  | Some path, None -> if Sys.file_exists path then Sys.remove path
  | None, _ -> ()
