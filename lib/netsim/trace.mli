(** Causal event tracing: a bounded ring buffer of typed simulation events
    with per-event ids and cause pointers, for debugging and post-hoc
    convergence-delay attribution ({!Attribution}).

    Every recorded event carries a unique [id] (monotonic per trace) and a
    [cause]: the id of the event that directly triggered it, or [no_cause]
    for roots (failure injections, origination-time sends).  The cause
    chain is what {!Attribution} walks to recover the critical path from a
    failure to the last route change.

    Recording is O(1) and allocation-light; attach one through
    {!Network.config}.  When the ring would overwrite its oldest event,
    the event is either spilled to a JSONL file (when [spill] was given —
    nothing is lost) or dropped and counted. *)

val no_cause : int
(** The cause id of a root event ([-1]). *)

type event =
  | Update_sent of {
      id : int;
      time : float;
      src : int;
      dst : int;
      update : Bgp_proto.Types.update;
      cause : int;
          (** the [Processed] completion, [Mrai_flush] or origination
              ([no_cause]) that emitted this update *)
    }
  | Update_delivered of {
      id : int;
      time : float;
      src : int;
      dst : int;
      update : Bgp_proto.Types.update;
      cause : int;  (** the matching [Update_sent]; gap = link propagation *)
    }
  | Processed of {
      id : int;
      time : float;  (** processing completed *)
      router : int;
      src : int;  (** sender of the work item *)
      dest : int;  (** destination of the update; [-1] for peer-down work *)
      enqueued : float;  (** when the item entered the input queue *)
      started : float;  (** when the CPU began serving it *)
      cause : int;
          (** the [Update_delivered] (or [Session_down] for peer-down
              work) that enqueued the item *)
    }
  | Mrai_flush of {
      id : int;
      time : float;  (** the timer fired and the destination was flushed *)
      router : int;
      peer : int;
      dest : int;
      ready : float;
          (** when the export became MRAI-eligible (last marked pending);
              [time -. ready] is the MRAI hold *)
      cause : int;  (** the event that last marked the destination pending *)
    }
  | Router_failed of { id : int; time : float; router : int }
  | Session_down of {
      id : int;
      time : float;
      router : int;  (** noticed its session to [peer] drop *)
      peer : int;
      cause : int;
          (** the [Router_failed] detected, [no_cause] for a link
              failure, or the [Fault] that severed the link *)
    }
  | Session_up of {
      id : int;
      time : float;
      router : int;  (** re-established its session to [peer] *)
      peer : int;
      cause : int;  (** the [Fault] (heal/recover) that restored the link *)
    }
  | Fault of {
      id : int;
      time : float;
      label : string;
          (** fault-taxonomy tag from {!Fault_injector} ([partition],
              [heal], [session_reset], ...) *)
      router : int;  (** a representative router of the faulted component *)
      cause : int;
          (** [no_cause] for a scheduled fault onset; the onset's id for
              its heal/recover counterpart *)
    }

val id_of : event -> int
val time_of : event -> float

val cause_of : event -> int
(** [no_cause] for [Router_failed]. *)

val router_of : event -> int
(** The router where the event's latency was incurred: the sender for
    [Update_sent], the receiver for [Update_delivered], the processing /
    flushing / noticing router otherwise. *)

val dest_of : event -> int option
(** The destination prefix the event is about: the update's destination
    for sends/deliveries/flushes and for update-processing completions;
    [None] for failure events and peer-down work items. *)

val terminals_by_dest : event list -> (int * event) list
(** Index the {e terminal} event of each destination: for every
    destination with at least one event, the latest event about it (max
    [(time, id)], the same tie-break {!Attribution} uses for the
    network-wide terminal).  Sorted by destination. *)

val pp_event : Format.formatter -> event -> unit

val merge_renumber : event list list -> event list
(** Merge per-shard event lists into one sequential-looking trace:
    events sorted by [(time, id)], ids renumbered densely from [0],
    cause pointers rewritten through the renumbering (a cause whose
    event is absent — evicted from a full shard ring — degrades to
    [no_cause]).  Requires globally-unique input ids allocated in causal
    order within each simultaneous group, which the sharded network's
    strided per-router ids guarantee; under that contract the result is
    bit-identical for any shard count.  See DESIGN.md §11. *)

type t

val create : ?capacity:int -> ?spill:string -> unit -> t
(** Ring buffer; default capacity 100_000 events.  When full, the oldest
    event is overwritten: with [spill] it is first appended to the JSONL
    file at that path (created/truncated here) and counted in [spilled];
    without it the event is lost and counted in [dropped].
    @raise Invalid_argument if [capacity <= 0]. *)

val fresh_id : t -> int
(** Next event id (monotonic; never reset, not even by [clear]). *)

val record : t -> event -> unit

val length : t -> int
(** Events currently held in memory. *)

val capacity : t -> int
(** The ring capacity [create] was given. *)

val dropped : t -> int
val spilled : t -> int

val spill_path : t -> string option

val to_list : t -> event list
(** In-memory events, oldest first (excludes spilled events). *)

val events : t -> event list
(** The complete record, oldest first: spilled events read back from the
    JSONL file, then the in-memory ring.  Flushes the sink first.
    @raise Failure if a spilled line does not parse (file tampered). *)

val close : t -> unit
(** Flush and close the spill sink.  Further overwrites count as
    [dropped].  Idempotent; a no-op without a sink. *)

val count : t -> pred:(event -> bool) -> int

val sends_by_router : t -> (int * int) list
(** [(router, updates sent)] sorted by count, busiest first (in-memory
    events only). *)

val between : t -> lo:float -> hi:float -> event list
(** In-memory events with [lo <= time < hi], oldest first. *)

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Print the most recent [limit] (default 50) in-memory events. *)

val clear : t -> unit
(** Drop all events (and truncate the spill file, if any).  Ids keep
    counting. *)

(** {2 Per-trial trace files}

    A finalized trace file is the complete, self-describing record of one
    trial: every event in order as JSONL plus one trailing meta line
    carrying the trial's seed and failure time.  {!Runner.trace_path}
    derives a seed-suffixed path per trial, so traced trials of a sweep
    parallelize (no shared file) and {!Attribution.merge} can combine
    them afterwards. *)

type run_meta = { seed : int; t_fail : float }

val meta_to_json : run_meta -> string
(** One JSONL line ([{"type":"meta",...}]), no trailing newline. *)

val finalize : t -> meta:run_meta -> unit
(** Close the sink, append the in-memory tail and the meta line to the
    spill file — making the file the complete record — and empty the
    ring (so {!events}, which re-reads the file, stays duplicate-free).
    @raise Invalid_argument if the trace has no spill file. *)

val read_file :
  paths:Bgp_proto.Path.table ->
  string ->
  (run_meta option * event list, string) result
(** Read a trace file back: events in file order plus the meta line if
    present ([None] for a bare spill file that was never finalized).
    [Error] — never an exception — for an unreadable, empty, truncated
    or otherwise malformed file; the message names the file and line. *)

(** {2 JSONL serialization} *)

val event_to_json : event -> string
(** One line, no trailing newline. *)

val event_of_json :
  paths:Bgp_proto.Path.table -> string -> (event, string) result
(** Parse a line emitted by {!event_to_json}; AS paths are re-interned
    into [paths]. *)
