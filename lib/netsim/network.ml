module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Failure = Bgp_topology.Failure
module Router = Bgp_proto.Router
module Types = Bgp_proto.Types

type detection = Link_signal | Hold_timer of Bgp_proto.Session.config

type config = {
  bgp : Bgp_proto.Config.t;
  link_delay : float;
  detection_delay : float;
  detection : detection;
  relationships : Relationships.t option;
  trace : Trace.t option;
  telemetry : Telemetry.config option;
}

let config_default bgp =
  {
    bgp;
    link_delay = 0.025;
    detection_delay = 0.025;
    detection = Link_signal;
    relationships = None;
    trace = None;
    telemetry = None;
  }

(* Mutable fault-layer state, absent unless {!enable_faults} was called.
   Every delivery-path hook fast-paths on [None]: same delay float, no
   extra RNG draws, no extra scheduled events — so a run with the
   injector disabled is bit-identical to one built before this layer
   existed (the goldens pin this).  Link keys are normalized (min, max)
   pairs: faults are symmetric, like the links themselves. *)
type fault_state = {
  fault_rng : Rng.t;  (* gray-link loss draws, injector-owned stream *)
  severed : (int * int, int) Hashtbl.t;
      (* link -> sever count; counted so overlapping faults (a partition
         and a session reset covering the same link) only restore the
         link when every fault holding it down has lifted *)
  link_factor : (int * int, float) Hashtbl.t;  (* delay multiplier; absent = 1.0 *)
  link_loss : (int * int, float) Hashtbl.t;  (* drop probability; absent = 0.0 *)
  skew : float array;  (* per-router receive-clock offset, seconds *)
  mutable n_lost : int;  (* messages dropped in flight (severed/gray/dead dst) *)
}

(* --- Sharded execution state --------------------------------------------- *)

module Shard_exec = Bgp_engine.Shard_exec

(* A cross-shard (or, uniformly, any) update in flight.  [m_seq] is the
   per-source-router send sequence: together with the arrival time and the
   source router id it forms the delivery sort key, which depends only on
   what each router did — never on the shard layout — so the delivery
   schedule is bit-identical for any shard count. *)
type msg = {
  m_arrival : float;
  m_src : int;
  m_dst : int;
  m_seq : int;
  m_update : Types.update;
  m_sent_id : int;  (* Update_sent trace id, or [Trace.no_cause] *)
}

let msg_compare a b =
  let c = Float.compare a.m_arrival b.m_arrival in
  if c <> 0 then c
  else
    let c = Int.compare a.m_src b.m_src in
    if c <> 0 then c else Int.compare a.m_seq b.m_seq

(* Everything one shard's domain owns: its scheduler (inside the
   executor), its path-interning table, its slice of the trace, its
   counters, and its replica of the fault tables.  Fault events are
   replicated into every shard's scheduler, so each replica of the
   severed/factor/loss/skew tables evolves identically — a sender can
   read delay factors and a receiver can read loss/sever state without
   ever crossing a domain boundary. *)
type shard_ctx = {
  sx : int;
  ssched : Sched.t;
  spaths : Bgp_proto.Path.table;
  strace : Trace.t option;
  mutable s_adverts : int;
  mutable s_withdrawals : int;
  mutable s_session_downs : int;
  mutable s_last_activity : float;
  mutable s_lost : int;
  mutable s_rep_events : int;  (* replicated fault events executed here *)
  s_severed : (int * int, int) Hashtbl.t;
  s_factor : (int * int, float) Hashtbl.t;
  s_loss : (int * int, float) Hashtbl.t;
  s_skew : float array;
}

type shard_state = {
  exec : msg Shard_exec.t;
  owner : int array;  (* router -> shard *)
  ctxs : shard_ctx array;
  (* Per-router trace-id and send-sequence counters.  Each slot is
     written only by its owner's domain (or the single-threaded
     orchestrator between phases). *)
  sid : int array;
  mseq : int array;
  lookahead : float;
  mutable deliver : int -> msg array -> unit;
  mutable faults_on : bool;
  mutable loss_salt : int64;
}

type t = {
  topo : Topology.t;
  config : config;
  sched : Sched.t;
  paths : Bgp_proto.Path.table;  (* per-run AS-path interning table *)
  routers : Router.t array;
  detect_rng : Rng.t;  (* hold-timer detection sampling *)
  failed : bool array;
  sessions : (int * int * Types.session_kind) list;
  session_peers : int list array;  (* BGP session neighbours of each router *)
  mutable n_adverts : int;
  mutable n_withdrawals : int;
  mutable n_session_downs : int;
  mutable last_activity : float;
  mutable faults : fault_state option;
  shard : shard_state option;  (* present iff built by [build_sharded] *)
}

let link_key u v = if u <= v then (u, v) else (v, u)

let compute_sessions topo =
  let acc = ref [] in
  (* eBGP: one session per inter-AS physical link. *)
  Graph.fold_edges
    (fun u v () ->
      if Topology.is_ebgp topo u v then acc := (u, v, Types.Ebgp) :: !acc)
    topo.Topology.graph ();
  (* iBGP: full mesh inside each AS. *)
  for a = 0 to topo.Topology.n_ases - 1 do
    let members = Topology.routers_of_as topo a in
    let rec mesh = function
      | [] -> ()
      | u :: rest ->
        List.iter (fun v -> acc := (u, v, Types.Ibgp) :: !acc) rest;
        mesh rest
    in
    mesh members
  done;
  List.rev !acc

let sessions_of_topology = compute_sessions

let sum_metrics t =
  let zero =
    {
      Router.adverts_sent = 0;
      withdrawals_sent = 0;
      msgs_processed = 0;
      eliminated = 0;
      max_queue = 0;
      mrai_transitions = 0;
      mrai_level = 0;
      damping_suppressions = 0;
    }
  in
  Array.fold_left
    (fun (acc : Router.metrics) router ->
      if Router.is_failed router then acc
      else
        let m = Router.metrics router in
        {
          Router.adverts_sent = acc.adverts_sent + m.adverts_sent;
          withdrawals_sent = acc.withdrawals_sent + m.withdrawals_sent;
          msgs_processed = acc.msgs_processed + m.msgs_processed;
          eliminated = acc.eliminated + m.eliminated;
          max_queue = Stdlib.max acc.max_queue m.max_queue;
          mrai_transitions = acc.mrai_transitions + m.mrai_transitions;
          mrai_level = Stdlib.max acc.mrai_level m.mrai_level;
          damping_suppressions = acc.damping_suppressions + m.damping_suppressions;
        })
    zero t.routers

let build ~sched ~rng ~config ?telemetry topo =
  let n = Topology.num_routers topo in
  let sessions = compute_sessions topo in
  let session_peers = Array.make n [] in
  List.iter
    (fun (u, v, _) ->
      session_peers.(u) <- v :: session_peers.(u);
      session_peers.(v) <- u :: session_peers.(v))
    sessions;
  Array.iteri (fun i l -> session_peers.(i) <- List.sort Int.compare l) session_peers;
  let paths = Bgp_proto.Path.create_table () in
  let net =
    {
      topo;
      config;
      sched;
      paths;
      routers = [||];
      detect_rng = Rng.split rng;
      failed = Array.make n false;
      sessions;
      session_peers;
      n_adverts = 0;
      n_withdrawals = 0;
      n_session_downs = 0;
      last_activity = 0.0;
      faults = None;
      shard = None;
    }
  in
  let net = ref net in
  (* Per-message fault hooks.  With [faults = None] these reduce to the
     historical behaviour exactly: [config.link_delay] and a dead-dst
     check, no counter writes, no RNG draws. *)
  let delivery_delay nref ~src ~dst =
    match nref.faults with
    | None -> nref.config.link_delay
    | Some f ->
      let factor =
        match Hashtbl.find_opt f.link_factor (link_key src dst) with
        | Some x -> x
        | None -> 1.0
      in
      Float.max 1e-6 ((nref.config.link_delay *. factor) +. f.skew.(dst))
  in
  let deliverable nref ~src ~dst =
    match nref.faults with
    | None -> not nref.failed.(dst)
    | Some f ->
      let lost () =
        f.n_lost <- f.n_lost + 1;
        false
      in
      if nref.failed.(dst) then lost ()
      else if Hashtbl.mem f.severed (link_key src dst) then lost ()
      else (
        match Hashtbl.find_opt f.link_loss (link_key src dst) with
        | Some p when Rng.float f.fault_rng < p -> lost ()
        | Some _ | None -> true)
  in
  (* Causal-tracing hooks for the routers: record Processed / Mrai_flush
     events and hand back their ids so the router can stamp the exports
     they trigger.  Absent when tracing is off — the router then skips
     the hook calls entirely. *)
  let tracer =
    Option.map
      (fun trace ->
        {
          Router.on_processed =
            (fun ~router ~src ~dest ~enqueued ~started ~cause ->
              let id = Trace.fresh_id trace in
              Trace.record trace
                (Trace.Processed
                   { id; time = Sched.now sched; router; src; dest; enqueued; started; cause });
              id);
          on_mrai_flush =
            (fun ~router ~peer ~dest ~ready ~cause ->
              let id = Trace.fresh_id trace in
              Trace.record trace
                (Trace.Mrai_flush { id; time = Sched.now sched; router; peer; dest; ready; cause });
              id);
        })
      config.trace
  in
  (* Build routers with their own RNG streams (stable under changes to
     other routers' draw counts). *)
  let routers =
    Array.init n (fun i ->
        let router_rng = Rng.split rng in
        let cb =
          {
            Router.send =
              (fun ~src ~dst update ->
                let nref = !net in
                (match update with
                | Types.Advertise _ -> nref.n_adverts <- nref.n_adverts + 1
                | Types.Withdraw _ -> nref.n_withdrawals <- nref.n_withdrawals + 1);
                let delay = delivery_delay nref ~src ~dst in
                match nref.config.trace with
                | None ->
                  ignore
                    (Sched.schedule sched ~delay (fun () ->
                         if deliverable nref ~src ~dst then
                           Router.receive nref.routers.(dst) ~src update))
                | Some trace ->
                  (* Both branches schedule exactly one delivery event, so
                     the scheduler (and hence the run) is bit-identical
                     with tracing on or off. *)
                  let sent_id = Trace.fresh_id trace in
                  Trace.record trace
                    (Trace.Update_sent
                       {
                         id = sent_id;
                         time = Sched.now sched;
                         src;
                         dst;
                         update;
                         cause = Router.current_cause nref.routers.(src);
                       });
                  ignore
                    (Sched.schedule sched ~delay (fun () ->
                         if deliverable nref ~src ~dst then begin
                           let deliver_id = Trace.fresh_id trace in
                           Trace.record trace
                             (Trace.Update_delivered
                                {
                                  id = deliver_id;
                                  time = Sched.now sched;
                                  src;
                                  dst;
                                  update;
                                  cause = sent_id;
                                });
                           Router.receive nref.routers.(dst) ~cause:deliver_id ~src
                             update
                         end)));
            activity =
              (fun ~time ->
                let nref = !net in
                if time > nref.last_activity then nref.last_activity <- time);
          }
        in
        Router.create ~sched ~rng:router_rng ~paths ~config:config.bgp ~id:i
          ~asn:topo.Topology.as_of_router.(i)
          ~degree:(Topology.inter_as_degree topo i)
          ?tracer cb)
  in
  net := { !net with routers };
  List.iter
    (fun (u, v, kind) ->
      let rel_of a b =
        match config.relationships with
        | None -> None
        | Some rels -> Relationships.relation rels ~from:a ~toward:b
      in
      Router.add_peer routers.(u) ~peer:v ~peer_as:topo.Topology.as_of_router.(v) ~kind
        ?relationship:(rel_of u v) ();
      Router.add_peer routers.(v) ~peer:u ~peer_as:topo.Topology.as_of_router.(u) ~kind
        ?relationship:(rel_of v u) ())
    sessions;
  (* Getter-backed metrics: registration stores one closure per name and
     reads happen only at snapshot time, so a registered-but-unread
     counter costs nothing during the run.  The closures read [!net],
     which aliases the record returned below. *)
  (match telemetry with
  | None -> ()
  | Some tele ->
    let reg name kind read = Telemetry.register tele ~name ~kind read in
    let sum m = float_of_int (m ()) in
    reg "net.adverts_sent" Telemetry.Counter (fun () -> sum (fun () -> !net.n_adverts));
    reg "net.withdrawals_sent" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_withdrawals));
    reg "net.messages_sent" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_adverts + !net.n_withdrawals));
    reg "net.session_downs" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_session_downs));
    let router_metric name kind pick =
      reg name kind (fun () ->
          let m = sum_metrics !net in
          float_of_int (pick m))
    in
    router_metric "router.msgs_processed" Telemetry.Counter (fun m ->
        m.Router.msgs_processed);
    router_metric "queue.eliminated" Telemetry.Counter (fun m -> m.Router.eliminated);
    router_metric "queue.max_depth" Telemetry.Gauge (fun m -> m.Router.max_queue);
    router_metric "mrai.transitions" Telemetry.Counter (fun m ->
        m.Router.mrai_transitions);
    router_metric "mrai.max_level" Telemetry.Gauge (fun m -> m.Router.mrai_level);
    router_metric "damping.suppressions" Telemetry.Counter (fun m ->
        m.Router.damping_suppressions);
    reg "sched.events" Telemetry.Gauge (fun () ->
        float_of_int (Sched.events_executed sched));
    reg "sched.time" Telemetry.Gauge (fun () -> Sched.now sched);
    reg "path.interned" Telemetry.Gauge (fun () ->
        float_of_int (Bgp_proto.Path.unique_count paths));
    reg "path.intern_hits" Telemetry.Counter (fun () ->
        float_of_int (Bgp_proto.Path.hit_count paths)));
  !net

let topology t = t.topo
let bgp_config t = t.config.bgp
let paths t = t.paths
let relationships t = t.config.relationships
let router t i = t.routers.(i)
let num_routers t = Array.length t.routers
let sessions t = t.sessions

let start_all t = Array.iter Router.start t.routers

(* How long a surviving session peer takes to notice a drop: via the link
   layer after a fixed delay, or when the BGP hold timer expires (sampled
   from the session timing model: jittered hold time minus the time
   already elapsed since the last keepalive). *)
let detection_sample t =
  match t.config.detection with
  | Link_signal -> t.config.detection_delay
  | Hold_timer session ->
    let hold =
      if session.Bgp_proto.Session.jitter then
        session.Bgp_proto.Session.hold_time *. Rng.uniform t.detect_rng ~lo:0.75 ~hi:1.0
      else session.Bgp_proto.Session.hold_time
    in
    let keepalive = session.Bgp_proto.Session.keepalive_fraction *. hold in
    let since_last_keepalive = Rng.uniform t.detect_rng ~lo:0.0 ~hi:keepalive in
    Float.max 0.001 (hold -. since_last_keepalive)

let inject_failure t failure =
  let n = num_routers t in
  (* Trace ids of the Router_failed events, so each surviving peer's
     Session_down can point at the failure that caused it. *)
  let fail_ids = Array.make n Trace.no_cause in
  for r = 0 to n - 1 do
    if Failure.is_failed failure r && not t.failed.(r) then begin
      t.failed.(r) <- true;
      (match t.config.trace with
      | Some trace ->
        let id = Trace.fresh_id trace in
        fail_ids.(r) <- id;
        Trace.record trace
          (Trace.Router_failed { id; time = Sched.now t.sched; router = r })
      | None -> ());
      Router.fail t.routers.(r)
    end
  done;
  let detection_sample () = detection_sample t in
  for r = 0 to n - 1 do
    if Failure.is_failed failure r then
      List.iter
        (fun peer ->
          if not t.failed.(peer) then
            ignore
              (Sched.schedule t.sched ~delay:(detection_sample ()) (fun () ->
                   if not t.failed.(peer) then begin
                     t.n_session_downs <- t.n_session_downs + 1;
                     match t.config.trace with
                     | Some trace ->
                       let down_id = Trace.fresh_id trace in
                       Trace.record trace
                         (Trace.Session_down
                            {
                              id = down_id;
                              time = Sched.now t.sched;
                              router = peer;
                              peer = r;
                              cause = fail_ids.(r);
                            });
                       Router.peer_down t.routers.(peer) ~cause:down_id r
                     | None -> Router.peer_down t.routers.(peer) r
                   end)))
        t.session_peers.(r)
  done

let inject_link_failures t links =
  List.iter
    (fun (u, v) ->
      let notify a b =
        if not t.failed.(a) then
          ignore
            (Sched.schedule t.sched ~delay:t.config.detection_delay (fun () ->
                 if not t.failed.(a) then begin
                   t.n_session_downs <- t.n_session_downs + 1;
                   match t.config.trace with
                   | Some trace ->
                     let down_id = Trace.fresh_id trace in
                     Trace.record trace
                       (Trace.Session_down
                          {
                            id = down_id;
                            time = Sched.now t.sched;
                            router = a;
                            peer = b;
                            cause = Trace.no_cause;
                          });
                     Router.peer_down t.routers.(a) ~cause:down_id b
                   | None -> Router.peer_down t.routers.(a) b
                 end))
      in
      notify u v;
      notify v u)
    links

(* --- Fault-injection hooks ---------------------------------------------- *)

let enable_faults t ~rng =
  match t.shard with
  | Some sh ->
    if sh.faults_on then invalid_arg "Network.enable_faults: already enabled";
    sh.faults_on <- true;
    (* One draw from the injector stream salts the hash-based gray-link
       loss decisions (see [loss_draw]); the hash replaces the sequential
       path's shared-RNG draws because those depend on global delivery
       order, which no shard can observe. *)
    sh.loss_salt <- Rng.int64 rng
  | None -> (
    match t.faults with
    | Some _ -> invalid_arg "Network.enable_faults: already enabled"
    | None ->
      t.faults <-
        Some
          {
            fault_rng = rng;
            severed = Hashtbl.create 16;
            link_factor = Hashtbl.create 16;
            link_loss = Hashtbl.create 16;
            skew = Array.make (Array.length t.routers) 0.0;
            n_lost = 0;
          })

let faults_enabled t =
  match t.shard with
  | Some sh -> sh.faults_on
  | None -> Option.is_some t.faults

let lost_messages t =
  match t.shard with
  | Some sh -> Array.fold_left (fun acc c -> acc + c.s_lost) 0 sh.ctxs
  | None -> ( match t.faults with None -> 0 | Some f -> f.n_lost)

let require_faults t =
  match t.faults with
  | Some f -> f
  | None -> invalid_arg "Network: call enable_faults before injecting faults"

let record_fault t ~label ~router ?(cause = Trace.no_cause) () =
  match t.config.trace with
  | None -> Trace.no_cause
  | Some trace ->
    let id = Trace.fresh_id trace in
    Trace.record trace (Trace.Fault { id; time = Sched.now t.sched; label; router; cause });
    id

let set_link_factor t ~u ~v factor =
  if factor <= 0.0 then invalid_arg "Network.set_link_factor: factor must be positive";
  let f = require_faults t in
  if factor = 1.0 then Hashtbl.remove f.link_factor (link_key u v)
  else Hashtbl.replace f.link_factor (link_key u v) factor

let set_link_loss t ~u ~v p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Network.set_link_loss: probability must be in [0, 1)";
  let f = require_faults t in
  if p = 0.0 then Hashtbl.remove f.link_loss (link_key u v)
  else Hashtbl.replace f.link_loss (link_key u v) p

let set_clock_skew t ~router skew =
  let f = require_faults t in
  f.skew.(router) <- skew

(* Session state transitions after the link layer notices, mirroring
   [inject_link_failures]: the affected router learns of the change
   [detection_delay] later and records the causal trace event then. *)
let notify_session t ~dir ~cause a b =
  if not t.failed.(a) then
    ignore
      (Sched.schedule t.sched ~delay:t.config.detection_delay (fun () ->
           if not t.failed.(a) then
             match dir with
             | `Down ->
               t.n_session_downs <- t.n_session_downs + 1;
               (match t.config.trace with
               | Some trace ->
                 let down_id = Trace.fresh_id trace in
                 Trace.record trace
                   (Trace.Session_down
                      { id = down_id; time = Sched.now t.sched; router = a; peer = b; cause });
                 Router.peer_down t.routers.(a) ~cause:down_id b
               | None -> Router.peer_down t.routers.(a) b)
             | `Up -> (
               match t.config.trace with
               | Some trace ->
                 let up_id = Trace.fresh_id trace in
                 Trace.record trace
                   (Trace.Session_up
                      { id = up_id; time = Sched.now t.sched; router = a; peer = b; cause });
                 Router.peer_up t.routers.(a) ~cause:up_id b
               | None -> Router.peer_up t.routers.(a) b)))

let sever_link ?(cause = Trace.no_cause) t ~u ~v =
  let f = require_faults t in
  let k = link_key u v in
  let count = Option.value ~default:0 (Hashtbl.find_opt f.severed k) in
  Hashtbl.replace f.severed k (count + 1);
  (* In-flight messages start dropping immediately; the routers only
     notice (and tear the session down) after the detection delay. *)
  if count = 0 then begin
    notify_session t ~dir:`Down ~cause u v;
    notify_session t ~dir:`Down ~cause v u
  end

let restore_link ?(cause = Trace.no_cause) t ~u ~v =
  let f = require_faults t in
  let k = link_key u v in
  match Hashtbl.find_opt f.severed k with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove f.severed k;
    notify_session t ~dir:`Up ~cause u v;
    notify_session t ~dir:`Up ~cause v u
  | Some c -> Hashtbl.replace f.severed k (c - 1)

let cross_sessions t ~side =
  List.filter_map
    (fun (u, v, _) -> if side.(u) <> side.(v) then Some (u, v) else None)
    t.sessions

let is_failed t r = t.failed.(r)

let adverts_sent t =
  match t.shard with
  | Some sh -> Array.fold_left (fun acc c -> acc + c.s_adverts) 0 sh.ctxs
  | None -> t.n_adverts

let withdrawals_sent t =
  match t.shard with
  | Some sh -> Array.fold_left (fun acc c -> acc + c.s_withdrawals) 0 sh.ctxs
  | None -> t.n_withdrawals

let messages_sent t = adverts_sent t + withdrawals_sent t

let session_downs t =
  match t.shard with
  | Some sh -> Array.fold_left (fun acc c -> acc + c.s_session_downs) 0 sh.ctxs
  | None -> t.n_session_downs

let last_activity t =
  match t.shard with
  | Some sh -> Array.fold_left (fun acc c -> Float.max acc c.s_last_activity) 0.0 sh.ctxs
  | None -> t.last_activity

(* --- Telemetry probes ---------------------------------------------------- *)

let probe_tick ?time t tele =
  let rows = ref [] in
  for r = Array.length t.routers - 1 downto 0 do
    if not t.failed.(r) then begin
      let router = t.routers.(r) in
      rows :=
        {
          Telemetry.router = r;
          queue_len = Router.queue_length router;
          unfinished_work = Router.unfinished_work router;
          mrai_level = Router.mrai_level router;
          mrai_transitions = Router.mrai_transitions router;
          rib_size = Router.rib_size router;
          rib_changes = Router.rib_changes router;
        }
        :: !rows
    end
  done;
  let time = match time with Some x -> x | None -> Sched.now t.sched in
  Telemetry.record_tick tele ~time (Array.of_list !rows)

let start_probes t tele =
  let interval = (Telemetry.conf tele).Telemetry.probe_interval in
  (* Each probe re-arms only while other work remains: [Sched.step]
     removes the running event before its callback executes, so a probe
     firing into an otherwise-empty queue sees [pending = 0], records a
     final tick and stops — the queue drains and the runner's
     [converged = pending = 0] check is unaffected. *)
  let rec arm () =
    ignore
      (Sched.schedule t.sched ~delay:interval (fun () ->
           probe_tick t tele;
           if Sched.pending t.sched > 0 then arm ()))
  in
  arm ()

(* End-of-run memory snapshot for Telemetry.memory: fixed word-model
   estimates over entry counts, so the result is a pure function of
   simulated state (identical across jobs; see telemetry.mli).  Failed
   routers are included — their RIBs are still resident. *)
let memory_snapshot t =
  let shard_of r = match t.shard with None -> 0 | Some sh -> sh.owner.(r) in
  let k = match t.shard with None -> 1 | Some sh -> Array.length sh.ctxs in
  let routers = Array.make k 0 in
  let rib_entries = Array.make k 0 in
  let rib_bytes = Array.make k 0 in
  Array.iteri
    (fun r router ->
      let s = shard_of r in
      routers.(s) <- routers.(s) + 1;
      let rib = Router.rib router in
      rib_entries.(s) <- rib_entries.(s) + Bgp_proto.Rib.in_entries rib;
      rib_bytes.(s) <- rib_bytes.(s) + Bgp_proto.Rib.approx_bytes rib)
    t.routers;
  let path_stats =
    match t.shard with
    | None -> [| Bgp_proto.Path.table_stats t.paths |]
    | Some sh -> Array.map (fun c -> Bgp_proto.Path.table_stats c.spaths) sh.ctxs
  in
  let sched_stats =
    match t.shard with
    | None -> [| (Sched.max_live t.sched, Sched.slab_capacity t.sched) |]
    | Some sh ->
      Array.map (fun c -> (Sched.max_live c.ssched, Sched.slab_capacity c.ssched)) sh.ctxs
  in
  let per_shard =
    List.init k (fun s ->
        let ps = path_stats.(s) in
        let max_live, slab_cap = sched_stats.(s) in
        {
          Telemetry.shard = s;
          routers = routers.(s);
          rib_entries = rib_entries.(s);
          rib_bytes = rib_bytes.(s);
          path_nodes = ps.Bgp_proto.Path.nodes;
          path_bytes = ps.Bgp_proto.Path.approx_bytes;
          sched_max_live = max_live;
          sched_slab_cap = slab_cap;
        })
  in
  let traces =
    match t.shard with
    | None -> Option.to_list t.config.trace
    | Some sh -> List.filter_map (fun c -> c.strace) (Array.to_list sh.ctxs)
  in
  let sum f = List.fold_left (fun acc tr -> acc + f tr) 0 traces in
  let path_nodes_total =
    Array.fold_left (fun acc ps -> acc + ps.Bgp_proto.Path.nodes) 0 path_stats
  in
  let path_hops_total =
    Array.fold_left (fun acc ps -> acc + ps.Bgp_proto.Path.hops_total) 0 path_stats
  in
  {
    Telemetry.per_shard;
    rib_bytes_total = Array.fold_left ( + ) 0 rib_bytes;
    path_bytes_total =
      Array.fold_left (fun acc ps -> acc + ps.Bgp_proto.Path.approx_bytes) 0 path_stats;
    path_sharing =
      (if path_nodes_total = 0 then 1.0
       else float_of_int path_hops_total /. float_of_int path_nodes_total);
    trace_len = sum Trace.length;
    trace_cap = sum Trace.capacity;
    trace_dropped = sum Trace.dropped;
    trace_spilled = sum Trace.spilled;
  }

let overloaded_routers t ~threshold =
  let acc = ref [] in
  for r = Array.length t.routers - 1 downto 0 do
    if (not t.failed.(r)) && Router.max_unfinished_work t.routers.(r) > threshold then
      acc := r :: !acc
  done;
  !acc

(* --- Sharded build and execution ----------------------------------------- *)

let require_shard t =
  match t.shard with
  | Some sh -> sh
  | None -> invalid_arg "Network: this operation needs a build_sharded network"

let is_sharded t = Option.is_some t.shard
let shard_count t = match t.shard with None -> 1 | Some sh -> Array.length sh.ctxs
let owner_of t r = (require_shard t).owner.(r)
let shard_sched t s = (require_shard t).ctxs.(s).ssched
let paths_for t r =
  match t.shard with
  | None -> t.paths
  | Some sh -> sh.ctxs.(sh.owner.(r)).spaths

let shard_traces t =
  List.filter_map (fun c -> c.strace) (Array.to_list (require_shard t).ctxs)

let shard_now t = Shard_exec.now (require_shard t).exec
let shard_pending t = Shard_exec.pending (require_shard t).exec
let shard_stats t = Shard_exec.stats (require_shard t).exec

(* Replicated fault events execute once per shard; normalize the event
   count so it reads as "events one sequential observer would have seen":
   subtract every shard's replicas, then count shard 0's once. *)
let note_replica t ~shard =
  let sh = require_shard t in
  sh.ctxs.(shard).s_rep_events <- sh.ctxs.(shard).s_rep_events + 1

let shard_events t =
  match t.shard with
  | None -> Sched.events_executed t.sched
  | Some sh ->
    let rep = Array.fold_left (fun acc c -> acc + c.s_rep_events) 0 sh.ctxs in
    Shard_exec.events_executed sh.exec - rep + sh.ctxs.(0).s_rep_events

let run_shards ?at_barrier t ~cap =
  let sh = require_shard t in
  Shard_exec.run_phase sh.exec ~lookahead:sh.lookahead ~cap ~deliver:sh.deliver
    ?at_barrier ()

(* Per-router strided trace ids: router [r]'s k-th event gets id
   [k * n + r].  Each router's ids are allocated by one domain in its
   deterministic execution order, distinct routers can never collide, and
   within one router allocation order is time order — so the merged
   (time, id) sort and the cause links are shard-count invariant. *)
let fresh_sid sh r =
  let n = Array.length sh.sid in
  let s = sh.sid.(r) in
  sh.sid.(r) <- s + 1;
  (s * n) + r

(* Hash-based gray-link loss: a pure function of (salt, src, dst, send
   seq), so the drop decision rides with the message instead of with a
   shared RNG whose draw order no shard can observe. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let loss_draw sh ~src ~dst ~seq =
  let h = mix64 (Int64.add sh.loss_salt (Int64.of_int src)) in
  let h = mix64 (Int64.add h (Int64.of_int dst)) in
  let h = mix64 (Int64.add h (Int64.of_int seq)) in
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let deliverable_sharded t sh ctx ~src ~dst ~seq =
  if not sh.faults_on then not t.failed.(dst)
  else begin
    let lost () =
      ctx.s_lost <- ctx.s_lost + 1;
      false
    in
    if t.failed.(dst) then lost ()
    else if Hashtbl.mem ctx.s_severed (link_key src dst) then lost ()
    else (
      match Hashtbl.find_opt ctx.s_loss (link_key src dst) with
      | Some p when loss_draw sh ~src ~dst ~seq < p -> lost ()
      | Some _ | None -> true)
  end

let build_sharded ~shards ~owner ~lookahead ~rng ~config ?telemetry topo =
  if shards < 1 then invalid_arg "Network.build_sharded: shards must be >= 1";
  if lookahead <= 0.0 then invalid_arg "Network.build_sharded: lookahead must be positive";
  let n = Topology.num_routers topo in
  if Array.length owner <> n then
    invalid_arg "Network.build_sharded: owner array size mismatch";
  Array.iter
    (fun s ->
      if s < 0 || s >= shards then
        invalid_arg "Network.build_sharded: owner out of range")
    owner;
  let sessions = compute_sessions topo in
  let session_peers = Array.make n [] in
  List.iter
    (fun (u, v, _) ->
      session_peers.(u) <- v :: session_peers.(u);
      session_peers.(v) <- u :: session_peers.(v))
    sessions;
  Array.iteri (fun i l -> session_peers.(i) <- List.sort Int.compare l) session_peers;
  let exec = Shard_exec.create ~shards ~compare:msg_compare in
  let mk_trace () =
    Option.map (fun tr -> Trace.create ~capacity:(Trace.capacity tr) ()) config.trace
  in
  let ctxs =
    Array.init shards (fun sx ->
        {
          sx;
          ssched = Shard_exec.sched exec sx;
          spaths = Bgp_proto.Path.create_table ();
          strace = mk_trace ();
          s_adverts = 0;
          s_withdrawals = 0;
          s_session_downs = 0;
          s_last_activity = 0.0;
          s_lost = 0;
          s_rep_events = 0;
          s_severed = Hashtbl.create 16;
          s_factor = Hashtbl.create 16;
          s_loss = Hashtbl.create 16;
          s_skew = Array.make n 0.0;
        })
  in
  let sh =
    {
      exec;
      owner = Array.copy owner;
      ctxs;
      sid = Array.make n 0;
      mseq = Array.make n 0;
      lookahead;
      deliver = (fun _ _ -> ());
      faults_on = false;
      loss_salt = 0L;
    }
  in
  let net =
    {
      topo;
      config;
      sched = ctxs.(0).ssched;
      paths = ctxs.(0).spaths;
      routers = [||];
      (* Same split order as [build]: detection stream first, then one
         stream per router in index order — so a router's RNG stream does
         not depend on the shard layout. *)
      detect_rng = Rng.split rng;
      failed = Array.make n false;
      sessions;
      session_peers;
      n_adverts = 0;
      n_withdrawals = 0;
      n_session_downs = 0;
      last_activity = 0.0;
      faults = None;
      shard = Some sh;
    }
  in
  let net = ref net in
  let tracers =
    Array.map
      (fun ctx ->
        Option.map
          (fun trace ->
            {
              Router.on_processed =
                (fun ~router ~src ~dest ~enqueued ~started ~cause ->
                  let id = fresh_sid sh router in
                  Trace.record trace
                    (Trace.Processed
                       {
                         id;
                         time = Sched.now ctx.ssched;
                         router;
                         src;
                         dest;
                         enqueued;
                         started;
                         cause;
                       });
                  id);
              on_mrai_flush =
                (fun ~router ~peer ~dest ~ready ~cause ->
                  let id = fresh_sid sh router in
                  Trace.record trace
                    (Trace.Mrai_flush
                       { id; time = Sched.now ctx.ssched; router; peer; dest; ready; cause });
                  id);
            })
          ctx.strace)
      ctxs
  in
  (* Every send — intra- or cross-shard — goes through the mailboxes, so
     delivery order is decided once, at the barrier, by the layout-free
     (arrival, src router, send seq) key. *)
  let send ~src ~dst update =
    let ctx = ctxs.(sh.owner.(src)) in
    (match update with
    | Types.Advertise _ -> ctx.s_adverts <- ctx.s_adverts + 1
    | Types.Withdraw _ -> ctx.s_withdrawals <- ctx.s_withdrawals + 1);
    let factor =
      match Hashtbl.find_opt ctx.s_factor (link_key src dst) with
      | Some x -> x
      | None -> 1.0
    in
    let delay = Float.max 1e-6 ((config.link_delay *. factor) +. ctx.s_skew.(dst)) in
    let seq = sh.mseq.(src) in
    sh.mseq.(src) <- seq + 1;
    let sent_id =
      match ctx.strace with
      | None -> Trace.no_cause
      | Some trace ->
        let id = fresh_sid sh src in
        Trace.record trace
          (Trace.Update_sent
             {
               id;
               time = Sched.now ctx.ssched;
               src;
               dst;
               update;
               cause = Router.current_cause !net.routers.(src);
             });
        id
    in
    Shard_exec.post exec ~src:(sh.owner.(src)) ~dst:(sh.owner.(dst))
      {
        m_arrival = Sched.now ctx.ssched +. delay;
        m_src = src;
        m_dst = dst;
        m_seq = seq;
        m_update = update;
        m_sent_id = sent_id;
      }
  in
  let deliver d batch =
    let ctx = ctxs.(d) in
    Array.iter
      (fun m ->
        (* Cross-shard advertisements are re-interned into the receiving
           shard's table; path identity never reaches route selection
           (RIB ranking is structural), so rehoming is invisible. *)
        let update =
          if sh.owner.(m.m_src) = d then m.m_update
          else
            match m.m_update with
            | Types.Withdraw _ as u -> u
            | Types.Advertise { dest; path } ->
              Types.Advertise
                { dest; path = Bgp_proto.Path.of_list ctx.spaths (Bgp_proto.Path.hops path) }
        in
        ignore
          (Sched.schedule_at ctx.ssched ~time:m.m_arrival (fun () ->
               if deliverable_sharded !net sh ctx ~src:m.m_src ~dst:m.m_dst ~seq:m.m_seq
               then begin
                 match ctx.strace with
                 | None -> Router.receive !net.routers.(m.m_dst) ~src:m.m_src update
                 | Some trace ->
                   let id = fresh_sid sh m.m_dst in
                   Trace.record trace
                     (Trace.Update_delivered
                        {
                          id;
                          time = Sched.now ctx.ssched;
                          src = m.m_src;
                          dst = m.m_dst;
                          update;
                          cause = m.m_sent_id;
                        });
                   Router.receive !net.routers.(m.m_dst) ~cause:id ~src:m.m_src update
               end)))
      batch
  in
  sh.deliver <- deliver;
  let routers =
    Array.init n (fun i ->
        let router_rng = Rng.split rng in
        let ctx = ctxs.(sh.owner.(i)) in
        let cb =
          {
            Router.send;
            activity =
              (fun ~time ->
                let ctx = ctxs.(sh.owner.(i)) in
                if time > ctx.s_last_activity then ctx.s_last_activity <- time);
          }
        in
        Router.create ~sched:ctx.ssched ~rng:router_rng ~paths:ctx.spaths
          ~config:config.bgp ~id:i
          ~asn:topo.Topology.as_of_router.(i)
          ~degree:(Topology.inter_as_degree topo i)
          ?tracer:tracers.(sh.owner.(i))
          cb)
  in
  net := { !net with routers };
  List.iter
    (fun (u, v, kind) ->
      let rel_of a b =
        match config.relationships with
        | None -> None
        | Some rels -> Relationships.relation rels ~from:a ~toward:b
      in
      Router.add_peer routers.(u) ~peer:v ~peer_as:topo.Topology.as_of_router.(v) ~kind
        ?relationship:(rel_of u v) ();
      Router.add_peer routers.(v) ~peer:u ~peer_as:topo.Topology.as_of_router.(u) ~kind
        ?relationship:(rel_of v u) ())
    sessions;
  (match telemetry with
  | None -> ()
  | Some tele ->
    let reg name kind read = Telemetry.register tele ~name ~kind read in
    let counter name read = reg name Telemetry.Counter (fun () -> float_of_int (read ())) in
    counter "net.adverts_sent" (fun () -> adverts_sent !net);
    counter "net.withdrawals_sent" (fun () -> withdrawals_sent !net);
    counter "net.messages_sent" (fun () -> messages_sent !net);
    counter "net.session_downs" (fun () -> session_downs !net);
    let router_metric name kind pick =
      reg name kind (fun () -> float_of_int (pick (sum_metrics !net)))
    in
    router_metric "router.msgs_processed" Telemetry.Counter (fun m ->
        m.Router.msgs_processed);
    router_metric "queue.eliminated" Telemetry.Counter (fun m -> m.Router.eliminated);
    router_metric "queue.max_depth" Telemetry.Gauge (fun m -> m.Router.max_queue);
    router_metric "mrai.transitions" Telemetry.Counter (fun m ->
        m.Router.mrai_transitions);
    router_metric "mrai.max_level" Telemetry.Gauge (fun m -> m.Router.mrai_level);
    router_metric "damping.suppressions" Telemetry.Counter (fun m ->
        m.Router.damping_suppressions);
    reg "sched.events" Telemetry.Gauge (fun () -> float_of_int (shard_events !net));
    reg "sched.time" Telemetry.Gauge (fun () -> shard_now !net);
    reg "path.interned" Telemetry.Gauge (fun () ->
        float_of_int
          (Array.fold_left
             (fun acc c -> acc + Bgp_proto.Path.unique_count c.spaths)
             0 ctxs));
    reg "path.intern_hits" Telemetry.Counter (fun () ->
        float_of_int
          (Array.fold_left (fun acc c -> acc + Bgp_proto.Path.hit_count c.spaths) 0 ctxs)));
  !net

(* --- Sharded failure injection (orchestrator-time, between phases) -------- *)

let inject_failure_sharded t ~at failure =
  let sh = require_shard t in
  let n = num_routers t in
  let fail_ids = Array.make n Trace.no_cause in
  for r = 0 to n - 1 do
    if Failure.is_failed failure r && not t.failed.(r) then begin
      t.failed.(r) <- true;
      let ctx = sh.ctxs.(sh.owner.(r)) in
      (match ctx.strace with
      | Some trace ->
        let id = fresh_sid sh r in
        fail_ids.(r) <- id;
        Trace.record trace (Trace.Router_failed { id; time = at; router = r })
      | None -> ());
      Router.fail t.routers.(r)
    end
  done;
  (* Same [detect_rng] stream, drawn in the same global (failed router,
     peer) order as the sequential path — layout-independent by
     construction. *)
  for r = 0 to n - 1 do
    if Failure.is_failed failure r then
      List.iter
        (fun peer ->
          if not t.failed.(peer) then begin
            let d = detection_sample t in
            let ctx = sh.ctxs.(sh.owner.(peer)) in
            ignore
              (Sched.schedule_at ctx.ssched ~time:(at +. d) (fun () ->
                   if not t.failed.(peer) then begin
                     ctx.s_session_downs <- ctx.s_session_downs + 1;
                     match ctx.strace with
                     | Some trace ->
                       let down_id = fresh_sid sh peer in
                       Trace.record trace
                         (Trace.Session_down
                            {
                              id = down_id;
                              time = Sched.now ctx.ssched;
                              router = peer;
                              peer = r;
                              cause = fail_ids.(r);
                            });
                       Router.peer_down t.routers.(peer) ~cause:down_id r
                     | None -> Router.peer_down t.routers.(peer) r
                   end))
          end)
        t.session_peers.(r)
  done

let inject_link_failures_sharded t ~at links =
  let sh = require_shard t in
  List.iter
    (fun (u, v) ->
      let notify a b =
        if not t.failed.(a) then begin
          let ctx = sh.ctxs.(sh.owner.(a)) in
          ignore
            (Sched.schedule_at ctx.ssched ~time:(at +. t.config.detection_delay)
               (fun () ->
                 if not t.failed.(a) then begin
                   ctx.s_session_downs <- ctx.s_session_downs + 1;
                   match ctx.strace with
                   | Some trace ->
                     let down_id = fresh_sid sh a in
                     Trace.record trace
                       (Trace.Session_down
                          {
                            id = down_id;
                            time = Sched.now ctx.ssched;
                            router = a;
                            peer = b;
                            cause = Trace.no_cause;
                          });
                     Router.peer_down t.routers.(a) ~cause:down_id b
                   | None -> Router.peer_down t.routers.(a) b
                 end))
        end
      in
      notify u v;
      notify v u)
    links

(* --- Sharded fault hooks (replica-local) ---------------------------------- *)

(* Each hook below runs once per shard (the injector replicates fault
   events into every shard's scheduler) and touches only shard-local
   tables; router notifications fire only on the shard owning the
   affected router, so exactly one shard acts on each session endpoint. *)

let record_fault_replica t ~shard ~id ~label ~router ~cause =
  let sh = require_shard t in
  if sh.owner.(router) = shard then
    match sh.ctxs.(shard).strace with
    | Some trace ->
      Trace.record trace
        (Trace.Fault { id; time = Sched.now sh.ctxs.(shard).ssched; label; router; cause })
    | None -> ()

let notify_session_sharded t sh ~shard ~dir ~cause a b =
  if sh.owner.(a) = shard && not t.failed.(a) then begin
    let ctx = sh.ctxs.(shard) in
    ignore
      (Sched.schedule ctx.ssched ~delay:t.config.detection_delay (fun () ->
           if not t.failed.(a) then
             match dir with
             | `Down ->
               ctx.s_session_downs <- ctx.s_session_downs + 1;
               (match ctx.strace with
               | Some trace ->
                 let down_id = fresh_sid sh a in
                 Trace.record trace
                   (Trace.Session_down
                      { id = down_id; time = Sched.now ctx.ssched; router = a; peer = b; cause });
                 Router.peer_down t.routers.(a) ~cause:down_id b
               | None -> Router.peer_down t.routers.(a) b)
             | `Up -> (
               match ctx.strace with
               | Some trace ->
                 let up_id = fresh_sid sh a in
                 Trace.record trace
                   (Trace.Session_up
                      { id = up_id; time = Sched.now ctx.ssched; router = a; peer = b; cause });
                 Router.peer_up t.routers.(a) ~cause:up_id b
               | None -> Router.peer_up t.routers.(a) b)))
  end

let sever_link_sharded t ~shard ~cause ~u ~v =
  let sh = require_shard t in
  let ctx = sh.ctxs.(shard) in
  let k = link_key u v in
  let count = Option.value ~default:0 (Hashtbl.find_opt ctx.s_severed k) in
  Hashtbl.replace ctx.s_severed k (count + 1);
  if count = 0 then begin
    notify_session_sharded t sh ~shard ~dir:`Down ~cause u v;
    notify_session_sharded t sh ~shard ~dir:`Down ~cause v u
  end

let restore_link_sharded t ~shard ~cause ~u ~v =
  let sh = require_shard t in
  let ctx = sh.ctxs.(shard) in
  let k = link_key u v in
  match Hashtbl.find_opt ctx.s_severed k with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove ctx.s_severed k;
    notify_session_sharded t sh ~shard ~dir:`Up ~cause u v;
    notify_session_sharded t sh ~shard ~dir:`Up ~cause v u
  | Some c -> Hashtbl.replace ctx.s_severed k (c - 1)

let set_link_factor_sharded t ~shard ~u ~v factor =
  if factor <= 0.0 then invalid_arg "Network.set_link_factor: factor must be positive";
  let ctx = (require_shard t).ctxs.(shard) in
  if factor = 1.0 then Hashtbl.remove ctx.s_factor (link_key u v)
  else Hashtbl.replace ctx.s_factor (link_key u v) factor

let set_link_loss_sharded t ~shard ~u ~v p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Network.set_link_loss: probability must be in [0, 1)";
  let ctx = (require_shard t).ctxs.(shard) in
  if p = 0.0 then Hashtbl.remove ctx.s_loss (link_key u v)
  else Hashtbl.replace ctx.s_loss (link_key u v) p

let set_clock_skew_sharded t ~shard ~router skew =
  (require_shard t).ctxs.(shard).s_skew.(router) <- skew

