module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Failure = Bgp_topology.Failure
module Router = Bgp_proto.Router
module Types = Bgp_proto.Types

type detection = Link_signal | Hold_timer of Bgp_proto.Session.config

type config = {
  bgp : Bgp_proto.Config.t;
  link_delay : float;
  detection_delay : float;
  detection : detection;
  relationships : Relationships.t option;
  trace : Trace.t option;
  telemetry : Telemetry.config option;
}

let config_default bgp =
  {
    bgp;
    link_delay = 0.025;
    detection_delay = 0.025;
    detection = Link_signal;
    relationships = None;
    trace = None;
    telemetry = None;
  }

(* Mutable fault-layer state, absent unless {!enable_faults} was called.
   Every delivery-path hook fast-paths on [None]: same delay float, no
   extra RNG draws, no extra scheduled events — so a run with the
   injector disabled is bit-identical to one built before this layer
   existed (the goldens pin this).  Link keys are normalized (min, max)
   pairs: faults are symmetric, like the links themselves. *)
type fault_state = {
  fault_rng : Rng.t;  (* gray-link loss draws, injector-owned stream *)
  severed : (int * int, int) Hashtbl.t;
      (* link -> sever count; counted so overlapping faults (a partition
         and a session reset covering the same link) only restore the
         link when every fault holding it down has lifted *)
  link_factor : (int * int, float) Hashtbl.t;  (* delay multiplier; absent = 1.0 *)
  link_loss : (int * int, float) Hashtbl.t;  (* drop probability; absent = 0.0 *)
  skew : float array;  (* per-router receive-clock offset, seconds *)
  mutable n_lost : int;  (* messages dropped in flight (severed/gray/dead dst) *)
}

type t = {
  topo : Topology.t;
  config : config;
  sched : Sched.t;
  paths : Bgp_proto.Path.table;  (* per-run AS-path interning table *)
  routers : Router.t array;
  detect_rng : Rng.t;  (* hold-timer detection sampling *)
  failed : bool array;
  sessions : (int * int * Types.session_kind) list;
  session_peers : int list array;  (* BGP session neighbours of each router *)
  mutable n_adverts : int;
  mutable n_withdrawals : int;
  mutable n_session_downs : int;
  mutable last_activity : float;
  mutable faults : fault_state option;
}

let link_key u v = if u <= v then (u, v) else (v, u)

let compute_sessions topo =
  let acc = ref [] in
  (* eBGP: one session per inter-AS physical link. *)
  Graph.fold_edges
    (fun u v () ->
      if Topology.is_ebgp topo u v then acc := (u, v, Types.Ebgp) :: !acc)
    topo.Topology.graph ();
  (* iBGP: full mesh inside each AS. *)
  for a = 0 to topo.Topology.n_ases - 1 do
    let members = Topology.routers_of_as topo a in
    let rec mesh = function
      | [] -> ()
      | u :: rest ->
        List.iter (fun v -> acc := (u, v, Types.Ibgp) :: !acc) rest;
        mesh rest
    in
    mesh members
  done;
  List.rev !acc

let sessions_of_topology = compute_sessions

let sum_metrics t =
  let zero =
    {
      Router.adverts_sent = 0;
      withdrawals_sent = 0;
      msgs_processed = 0;
      eliminated = 0;
      max_queue = 0;
      mrai_transitions = 0;
      mrai_level = 0;
      damping_suppressions = 0;
    }
  in
  Array.fold_left
    (fun (acc : Router.metrics) router ->
      if Router.is_failed router then acc
      else
        let m = Router.metrics router in
        {
          Router.adverts_sent = acc.adverts_sent + m.adverts_sent;
          withdrawals_sent = acc.withdrawals_sent + m.withdrawals_sent;
          msgs_processed = acc.msgs_processed + m.msgs_processed;
          eliminated = acc.eliminated + m.eliminated;
          max_queue = Stdlib.max acc.max_queue m.max_queue;
          mrai_transitions = acc.mrai_transitions + m.mrai_transitions;
          mrai_level = Stdlib.max acc.mrai_level m.mrai_level;
          damping_suppressions = acc.damping_suppressions + m.damping_suppressions;
        })
    zero t.routers

let build ~sched ~rng ~config ?telemetry topo =
  let n = Topology.num_routers topo in
  let sessions = compute_sessions topo in
  let session_peers = Array.make n [] in
  List.iter
    (fun (u, v, _) ->
      session_peers.(u) <- v :: session_peers.(u);
      session_peers.(v) <- u :: session_peers.(v))
    sessions;
  Array.iteri (fun i l -> session_peers.(i) <- List.sort Int.compare l) session_peers;
  let paths = Bgp_proto.Path.create_table () in
  let net =
    {
      topo;
      config;
      sched;
      paths;
      routers = [||];
      detect_rng = Rng.split rng;
      failed = Array.make n false;
      sessions;
      session_peers;
      n_adverts = 0;
      n_withdrawals = 0;
      n_session_downs = 0;
      last_activity = 0.0;
      faults = None;
    }
  in
  let net = ref net in
  (* Per-message fault hooks.  With [faults = None] these reduce to the
     historical behaviour exactly: [config.link_delay] and a dead-dst
     check, no counter writes, no RNG draws. *)
  let delivery_delay nref ~src ~dst =
    match nref.faults with
    | None -> nref.config.link_delay
    | Some f ->
      let factor =
        match Hashtbl.find_opt f.link_factor (link_key src dst) with
        | Some x -> x
        | None -> 1.0
      in
      Float.max 1e-6 ((nref.config.link_delay *. factor) +. f.skew.(dst))
  in
  let deliverable nref ~src ~dst =
    match nref.faults with
    | None -> not nref.failed.(dst)
    | Some f ->
      let lost () =
        f.n_lost <- f.n_lost + 1;
        false
      in
      if nref.failed.(dst) then lost ()
      else if Hashtbl.mem f.severed (link_key src dst) then lost ()
      else (
        match Hashtbl.find_opt f.link_loss (link_key src dst) with
        | Some p when Rng.float f.fault_rng < p -> lost ()
        | Some _ | None -> true)
  in
  (* Causal-tracing hooks for the routers: record Processed / Mrai_flush
     events and hand back their ids so the router can stamp the exports
     they trigger.  Absent when tracing is off — the router then skips
     the hook calls entirely. *)
  let tracer =
    Option.map
      (fun trace ->
        {
          Router.on_processed =
            (fun ~router ~src ~dest ~enqueued ~started ~cause ->
              let id = Trace.fresh_id trace in
              Trace.record trace
                (Trace.Processed
                   { id; time = Sched.now sched; router; src; dest; enqueued; started; cause });
              id);
          on_mrai_flush =
            (fun ~router ~peer ~dest ~ready ~cause ->
              let id = Trace.fresh_id trace in
              Trace.record trace
                (Trace.Mrai_flush { id; time = Sched.now sched; router; peer; dest; ready; cause });
              id);
        })
      config.trace
  in
  (* Build routers with their own RNG streams (stable under changes to
     other routers' draw counts). *)
  let routers =
    Array.init n (fun i ->
        let router_rng = Rng.split rng in
        let cb =
          {
            Router.send =
              (fun ~src ~dst update ->
                let nref = !net in
                (match update with
                | Types.Advertise _ -> nref.n_adverts <- nref.n_adverts + 1
                | Types.Withdraw _ -> nref.n_withdrawals <- nref.n_withdrawals + 1);
                let delay = delivery_delay nref ~src ~dst in
                match nref.config.trace with
                | None ->
                  ignore
                    (Sched.schedule sched ~delay (fun () ->
                         if deliverable nref ~src ~dst then
                           Router.receive nref.routers.(dst) ~src update))
                | Some trace ->
                  (* Both branches schedule exactly one delivery event, so
                     the scheduler (and hence the run) is bit-identical
                     with tracing on or off. *)
                  let sent_id = Trace.fresh_id trace in
                  Trace.record trace
                    (Trace.Update_sent
                       {
                         id = sent_id;
                         time = Sched.now sched;
                         src;
                         dst;
                         update;
                         cause = Router.current_cause nref.routers.(src);
                       });
                  ignore
                    (Sched.schedule sched ~delay (fun () ->
                         if deliverable nref ~src ~dst then begin
                           let deliver_id = Trace.fresh_id trace in
                           Trace.record trace
                             (Trace.Update_delivered
                                {
                                  id = deliver_id;
                                  time = Sched.now sched;
                                  src;
                                  dst;
                                  update;
                                  cause = sent_id;
                                });
                           Router.receive nref.routers.(dst) ~cause:deliver_id ~src
                             update
                         end)));
            activity =
              (fun ~time ->
                let nref = !net in
                if time > nref.last_activity then nref.last_activity <- time);
          }
        in
        Router.create ~sched ~rng:router_rng ~paths ~config:config.bgp ~id:i
          ~asn:topo.Topology.as_of_router.(i)
          ~degree:(Topology.inter_as_degree topo i)
          ?tracer cb)
  in
  net := { !net with routers };
  List.iter
    (fun (u, v, kind) ->
      let rel_of a b =
        match config.relationships with
        | None -> None
        | Some rels -> Relationships.relation rels ~from:a ~toward:b
      in
      Router.add_peer routers.(u) ~peer:v ~peer_as:topo.Topology.as_of_router.(v) ~kind
        ?relationship:(rel_of u v) ();
      Router.add_peer routers.(v) ~peer:u ~peer_as:topo.Topology.as_of_router.(u) ~kind
        ?relationship:(rel_of v u) ())
    sessions;
  (* Getter-backed metrics: registration stores one closure per name and
     reads happen only at snapshot time, so a registered-but-unread
     counter costs nothing during the run.  The closures read [!net],
     which aliases the record returned below. *)
  (match telemetry with
  | None -> ()
  | Some tele ->
    let reg name kind read = Telemetry.register tele ~name ~kind read in
    let sum m = float_of_int (m ()) in
    reg "net.adverts_sent" Telemetry.Counter (fun () -> sum (fun () -> !net.n_adverts));
    reg "net.withdrawals_sent" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_withdrawals));
    reg "net.messages_sent" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_adverts + !net.n_withdrawals));
    reg "net.session_downs" Telemetry.Counter (fun () ->
        sum (fun () -> !net.n_session_downs));
    let router_metric name kind pick =
      reg name kind (fun () ->
          let m = sum_metrics !net in
          float_of_int (pick m))
    in
    router_metric "router.msgs_processed" Telemetry.Counter (fun m ->
        m.Router.msgs_processed);
    router_metric "queue.eliminated" Telemetry.Counter (fun m -> m.Router.eliminated);
    router_metric "queue.max_depth" Telemetry.Gauge (fun m -> m.Router.max_queue);
    router_metric "mrai.transitions" Telemetry.Counter (fun m ->
        m.Router.mrai_transitions);
    router_metric "mrai.max_level" Telemetry.Gauge (fun m -> m.Router.mrai_level);
    router_metric "damping.suppressions" Telemetry.Counter (fun m ->
        m.Router.damping_suppressions);
    reg "sched.events" Telemetry.Gauge (fun () ->
        float_of_int (Sched.events_executed sched));
    reg "sched.time" Telemetry.Gauge (fun () -> Sched.now sched);
    reg "path.interned" Telemetry.Gauge (fun () ->
        float_of_int (Bgp_proto.Path.unique_count paths));
    reg "path.intern_hits" Telemetry.Counter (fun () ->
        float_of_int (Bgp_proto.Path.hit_count paths)));
  !net

let topology t = t.topo
let bgp_config t = t.config.bgp
let paths t = t.paths
let relationships t = t.config.relationships
let router t i = t.routers.(i)
let num_routers t = Array.length t.routers
let sessions t = t.sessions

let start_all t = Array.iter Router.start t.routers

let inject_failure t failure =
  let n = num_routers t in
  (* Trace ids of the Router_failed events, so each surviving peer's
     Session_down can point at the failure that caused it. *)
  let fail_ids = Array.make n Trace.no_cause in
  for r = 0 to n - 1 do
    if Failure.is_failed failure r && not t.failed.(r) then begin
      t.failed.(r) <- true;
      (match t.config.trace with
      | Some trace ->
        let id = Trace.fresh_id trace in
        fail_ids.(r) <- id;
        Trace.record trace
          (Trace.Router_failed { id; time = Sched.now t.sched; router = r })
      | None -> ());
      Router.fail t.routers.(r)
    end
  done;
  (* Surviving session peers notice the drop: via the link layer after a
     fixed delay, or when the BGP hold timer expires (sampled from the
     session timing model: jittered hold time minus the time already
     elapsed since the last keepalive). *)
  let detection_sample () =
    match t.config.detection with
    | Link_signal -> t.config.detection_delay
    | Hold_timer session ->
      let hold =
        if session.Bgp_proto.Session.jitter then
          session.Bgp_proto.Session.hold_time *. Rng.uniform t.detect_rng ~lo:0.75 ~hi:1.0
        else session.Bgp_proto.Session.hold_time
      in
      let keepalive = session.Bgp_proto.Session.keepalive_fraction *. hold in
      let since_last_keepalive = Rng.uniform t.detect_rng ~lo:0.0 ~hi:keepalive in
      Float.max 0.001 (hold -. since_last_keepalive)
  in
  for r = 0 to n - 1 do
    if Failure.is_failed failure r then
      List.iter
        (fun peer ->
          if not t.failed.(peer) then
            ignore
              (Sched.schedule t.sched ~delay:(detection_sample ()) (fun () ->
                   if not t.failed.(peer) then begin
                     t.n_session_downs <- t.n_session_downs + 1;
                     match t.config.trace with
                     | Some trace ->
                       let down_id = Trace.fresh_id trace in
                       Trace.record trace
                         (Trace.Session_down
                            {
                              id = down_id;
                              time = Sched.now t.sched;
                              router = peer;
                              peer = r;
                              cause = fail_ids.(r);
                            });
                       Router.peer_down t.routers.(peer) ~cause:down_id r
                     | None -> Router.peer_down t.routers.(peer) r
                   end)))
        t.session_peers.(r)
  done

let inject_link_failures t links =
  List.iter
    (fun (u, v) ->
      let notify a b =
        if not t.failed.(a) then
          ignore
            (Sched.schedule t.sched ~delay:t.config.detection_delay (fun () ->
                 if not t.failed.(a) then begin
                   t.n_session_downs <- t.n_session_downs + 1;
                   match t.config.trace with
                   | Some trace ->
                     let down_id = Trace.fresh_id trace in
                     Trace.record trace
                       (Trace.Session_down
                          {
                            id = down_id;
                            time = Sched.now t.sched;
                            router = a;
                            peer = b;
                            cause = Trace.no_cause;
                          });
                     Router.peer_down t.routers.(a) ~cause:down_id b
                   | None -> Router.peer_down t.routers.(a) b
                 end))
      in
      notify u v;
      notify v u)
    links

(* --- Fault-injection hooks ---------------------------------------------- *)

let enable_faults t ~rng =
  match t.faults with
  | Some _ -> invalid_arg "Network.enable_faults: already enabled"
  | None ->
    t.faults <-
      Some
        {
          fault_rng = rng;
          severed = Hashtbl.create 16;
          link_factor = Hashtbl.create 16;
          link_loss = Hashtbl.create 16;
          skew = Array.make (Array.length t.routers) 0.0;
          n_lost = 0;
        }

let faults_enabled t = Option.is_some t.faults
let lost_messages t = match t.faults with None -> 0 | Some f -> f.n_lost

let require_faults t =
  match t.faults with
  | Some f -> f
  | None -> invalid_arg "Network: call enable_faults before injecting faults"

let record_fault t ~label ~router ?(cause = Trace.no_cause) () =
  match t.config.trace with
  | None -> Trace.no_cause
  | Some trace ->
    let id = Trace.fresh_id trace in
    Trace.record trace (Trace.Fault { id; time = Sched.now t.sched; label; router; cause });
    id

let set_link_factor t ~u ~v factor =
  if factor <= 0.0 then invalid_arg "Network.set_link_factor: factor must be positive";
  let f = require_faults t in
  if factor = 1.0 then Hashtbl.remove f.link_factor (link_key u v)
  else Hashtbl.replace f.link_factor (link_key u v) factor

let set_link_loss t ~u ~v p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Network.set_link_loss: probability must be in [0, 1)";
  let f = require_faults t in
  if p = 0.0 then Hashtbl.remove f.link_loss (link_key u v)
  else Hashtbl.replace f.link_loss (link_key u v) p

let set_clock_skew t ~router skew =
  let f = require_faults t in
  f.skew.(router) <- skew

(* Session state transitions after the link layer notices, mirroring
   [inject_link_failures]: the affected router learns of the change
   [detection_delay] later and records the causal trace event then. *)
let notify_session t ~dir ~cause a b =
  if not t.failed.(a) then
    ignore
      (Sched.schedule t.sched ~delay:t.config.detection_delay (fun () ->
           if not t.failed.(a) then
             match dir with
             | `Down ->
               t.n_session_downs <- t.n_session_downs + 1;
               (match t.config.trace with
               | Some trace ->
                 let down_id = Trace.fresh_id trace in
                 Trace.record trace
                   (Trace.Session_down
                      { id = down_id; time = Sched.now t.sched; router = a; peer = b; cause });
                 Router.peer_down t.routers.(a) ~cause:down_id b
               | None -> Router.peer_down t.routers.(a) b)
             | `Up -> (
               match t.config.trace with
               | Some trace ->
                 let up_id = Trace.fresh_id trace in
                 Trace.record trace
                   (Trace.Session_up
                      { id = up_id; time = Sched.now t.sched; router = a; peer = b; cause });
                 Router.peer_up t.routers.(a) ~cause:up_id b
               | None -> Router.peer_up t.routers.(a) b)))

let sever_link ?(cause = Trace.no_cause) t ~u ~v =
  let f = require_faults t in
  let k = link_key u v in
  let count = Option.value ~default:0 (Hashtbl.find_opt f.severed k) in
  Hashtbl.replace f.severed k (count + 1);
  (* In-flight messages start dropping immediately; the routers only
     notice (and tear the session down) after the detection delay. *)
  if count = 0 then begin
    notify_session t ~dir:`Down ~cause u v;
    notify_session t ~dir:`Down ~cause v u
  end

let restore_link ?(cause = Trace.no_cause) t ~u ~v =
  let f = require_faults t in
  let k = link_key u v in
  match Hashtbl.find_opt f.severed k with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove f.severed k;
    notify_session t ~dir:`Up ~cause u v;
    notify_session t ~dir:`Up ~cause v u
  | Some c -> Hashtbl.replace f.severed k (c - 1)

let cross_sessions t ~side =
  List.filter_map
    (fun (u, v, _) -> if side.(u) <> side.(v) then Some (u, v) else None)
    t.sessions

let is_failed t r = t.failed.(r)
let messages_sent t = t.n_adverts + t.n_withdrawals
let adverts_sent t = t.n_adverts
let withdrawals_sent t = t.n_withdrawals
let session_downs t = t.n_session_downs
let last_activity t = t.last_activity

(* --- Telemetry probes ---------------------------------------------------- *)

let probe_tick t tele =
  let rows = ref [] in
  for r = Array.length t.routers - 1 downto 0 do
    if not t.failed.(r) then begin
      let router = t.routers.(r) in
      rows :=
        {
          Telemetry.router = r;
          queue_len = Router.queue_length router;
          unfinished_work = Router.unfinished_work router;
          mrai_level = Router.mrai_level router;
          mrai_transitions = Router.mrai_transitions router;
          rib_size = Router.rib_size router;
          rib_changes = Router.rib_changes router;
        }
        :: !rows
    end
  done;
  Telemetry.record_tick tele ~time:(Sched.now t.sched) (Array.of_list !rows)

let start_probes t tele =
  let interval = (Telemetry.conf tele).Telemetry.probe_interval in
  (* Each probe re-arms only while other work remains: [Sched.step]
     removes the running event before its callback executes, so a probe
     firing into an otherwise-empty queue sees [pending = 0], records a
     final tick and stops — the queue drains and the runner's
     [converged = pending = 0] check is unaffected. *)
  let rec arm () =
    ignore
      (Sched.schedule t.sched ~delay:interval (fun () ->
           probe_tick t tele;
           if Sched.pending t.sched > 0 then arm ()))
  in
  arm ()

let overloaded_routers t ~threshold =
  let acc = ref [] in
  for r = Array.length t.routers - 1 downto 0 do
    if (not t.failed.(r)) && Router.max_unfinished_work t.routers.(r) > threshold then
      acc := r :: !acc
  done;
  !acc

