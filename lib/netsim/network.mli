(** Assembles a BGP network over a topology and carries messages.

    Sessions: every inter-AS link is an eBGP session; routers inside one
    AS form a full iBGP mesh (intra-AS physical links matter only for
    geography).  All messages take [link_delay] one way (paper: 25 ms,
    covering transmission + propagation + reception). *)

(** How a surviving router learns its neighbour died. *)
type detection =
  | Link_signal
      (** the link layer reports the loss after [detection_delay] (what
          the paper's experiments model) *)
  | Hold_timer of Bgp_proto.Session.config
      (** no link signal: the BGP session's hold timer must expire.  The
          delay is sampled from the session timing model — jittered hold
          time minus the time since the last keepalive — instead of
          simulating every keepalive message (see {!Bgp_proto.Session}). *)

type config = {
  bgp : Bgp_proto.Config.t;
  link_delay : float;  (** seconds; paper uses 0.025 *)
  detection_delay : float;
      (** [Link_signal] latency; defaults to [link_delay] *)
  detection : detection;
  relationships : Relationships.t option;
      (** Gao-Rexford policies on eBGP sessions; [None] (default) is the
          paper's policy-free operation *)
  trace : Trace.t option;
      (** record message/failure events when set.  A trace belongs to one
          run: parallel trials each need their own instance (and their
          own spill file — {!Runner.traced} builds seed-suffixed ones) *)
  telemetry : Telemetry.config option;
      (** enable the telemetry layer (probes + counter registry); [None]
          (default) is zero-cost — see {!Telemetry} *)
}

val config_default : Bgp_proto.Config.t -> config
(** [Link_signal] detection, 25 ms links, no policies, no telemetry. *)

type t

val build :
  sched:Bgp_engine.Scheduler.t ->
  rng:Bgp_engine.Rng.t ->
  config:config ->
  ?telemetry:Telemetry.t ->
  Bgp_topology.Topology.t ->
  t
(** [telemetry] is the per-run instance the network registers its
    getter-backed counters into ([net.*], [router.*], [queue.*],
    [mrai.*], [damping.*], [sched.*], [path.*]); created and threaded by
    {!Runner.run} when [config.telemetry] is set. *)

val topology : t -> Bgp_topology.Topology.t
val bgp_config : t -> Bgp_proto.Config.t

val paths : t -> Bgp_proto.Path.table
(** The run's AS-path interning table, shared by all routers of this
    network (and by the analytic warm-up). *)

val relationships : t -> Relationships.t option
val router : t -> int -> Bgp_proto.Router.t
val num_routers : t -> int
val sessions : t -> (int * int * Bgp_proto.Types.session_kind) list
(** Each session once, [(u, v, kind)] with [u < v]. *)

val sessions_of_topology :
  Bgp_topology.Topology.t -> (int * int * Bgp_proto.Types.session_kind) list
(** The sessions {!build} would create over this topology — lets
    {!Fault_injector.generate} derive a link-aware schedule from the
    seed before (and without) building the network. *)

val start_all : t -> unit
(** Originate every router's prefix at the current simulated time. *)

val inject_failure : t -> Bgp_topology.Failure.t -> unit
(** Immediately kill the failed routers and schedule session-down
    notifications to their surviving session peers after
    [detection_delay]. *)

val inject_link_failures : t -> (int * int) list -> unit
(** Fail individual links (sessions): both endpoints observe the session
    drop after the detection delay; the routers stay up.  The paper
    argues link-only failures are unlikely at large scale (Section 3.2)
    but they are the classic single-event experiments (Labovitz Tdown). *)

val is_failed : t -> int -> bool

(** {2 Fault-injection hooks}

    The substrate {!Fault_injector} drives: a per-network mutable fault
    state (severed links, gray-link loss probabilities, per-link delay
    factors, per-router clock skew) consulted on every message's send and
    delivery.  Disabled — and entirely cost- and draw-free, so existing
    seeds replay bit-identically — until {!enable_faults} is called.
    All link-keyed hooks are symmetric in [u]/[v]. *)

val enable_faults : t -> rng:Bgp_engine.Rng.t -> unit
(** Attach the fault layer.  [rng] is the injector-owned stream used for
    gray-link loss draws — deliberately NOT split from the network's
    build-time RNG, so enabling faults never shifts the routers'
    streams.  @raise Invalid_argument if already enabled. *)

val faults_enabled : t -> bool

val sever_link : ?cause:int -> t -> u:int -> v:int -> unit
(** Cut the link now: in-flight and future messages between [u] and [v]
    drop immediately; both endpoints observe the session drop after
    [detection_delay] (recorded as causal [Session_down] events, caused
    by [cause]).  Sever counts nest: a link severed by two overlapping
    faults needs two {!restore_link}s to come back. *)

val restore_link : ?cause:int -> t -> u:int -> v:int -> unit
(** Undo one {!sever_link}.  When the last sever lifts, both endpoints
    re-establish after [detection_delay] ([Session_up] trace events,
    {!Bgp_proto.Router.peer_up} full-table re-sync).  No-op if the link
    is not severed. *)

val set_link_factor : t -> u:int -> v:int -> float -> unit
(** Multiply the link's one-way delay by [factor] (jitter); [1.0]
    restores the default.  Applies to messages {e sent} from now on.
    @raise Invalid_argument if [factor <= 0]. *)

val set_link_loss : t -> u:int -> v:int -> float -> unit
(** Gray link: independently drop each message on the link with
    probability [p] (drawn from the injector RNG at delivery, in
    deterministic scheduler order); [0.0] restores the default.
    @raise Invalid_argument unless [0 <= p < 1]. *)

val set_clock_skew : t -> router:int -> float -> unit
(** Receive-path clock offset: every message delivered {e to} [router]
    arrives [skew] seconds later (effective delay clamped positive). *)

val record_fault : t -> label:string -> router:int -> ?cause:int -> unit -> int
(** Record a [Fault] trace event and return its id ([Trace.no_cause]
    when untraced) — the causal root that session transitions and heals
    point back to. *)

val cross_sessions : t -> side:bool array -> (int * int) list
(** The sessions with exactly one endpoint in [side] — the cut-set a
    partition along [side] must sever.  Each pair once, [(u, v)] with
    [u < v]. *)

val lost_messages : t -> int
(** Messages dropped in flight by the fault layer (severed link, gray
    loss, or dead destination while faults were enabled); [0] when
    faults were never enabled. *)

(** {2 Aggregate counters} *)

val messages_sent : t -> int
(** Update messages handed to the network (adverts + withdrawals). *)

val adverts_sent : t -> int
val withdrawals_sent : t -> int

val session_downs : t -> int
(** Session-down notifications delivered to surviving routers. *)

val last_activity : t -> float
(** Simulated time of the last route-affecting action anywhere. *)

val sum_metrics : t -> Bgp_proto.Router.metrics
(** Component-wise sum over surviving routers (max for [max_queue] and
    [mrai_level]). *)

val overloaded_routers : t -> threshold:float -> int list
(** Routers whose unfinished work ever exceeded [threshold] seconds —
    the paper's Section 4.1 explanation of the V-curve is that these are
    predominantly the high-degree nodes. *)

(** {2 Telemetry probes} *)

val memory_snapshot : t -> Telemetry.memory
(** Estimated memory footprint, rolled up per shard (pseudo-shard 0 for
    a sequential build): RIB bytes and entry counts per owner shard,
    per-table hashcons stats, scheduler-slab high-water/capacity, and
    trace-ring occupancy.  Fixed word models over entry counts only —
    deterministic for a given run, identical across [--jobs].  The
    runner attaches it via [Telemetry.set_memory] at finalize. *)

val probe_tick : ?time:float -> t -> Telemetry.t -> unit
(** Record one probe tick: a {!Telemetry.row} per surviving router at the
    current simulated time (or [time] — the sharded runner's window
    start, since no single scheduler clock exists there).  Read-only —
    draws no randomness and schedules nothing. *)

val start_probes : t -> Telemetry.t -> unit
(** Begin the periodic probe chain at the configured interval.  Each
    probe re-arms only while other events remain pending, so the chain
    never keeps the scheduler queue alive: the queue still drains at
    convergence and the runner's converged-iff-drained check is
    unaffected (the executed-events count does grow). *)

(** {2 Sharded execution}

    A network built with {!build_sharded} partitions its routers across
    [shards] OCaml 5 domains ({!Bgp_engine.Shard_exec}): router state,
    sessions, path tables, trace slices, counters and fault tables are
    all shard-local, and {e every} send goes through the executor's
    mailboxes so deliveries are ordered by the layout-free
    [(arrival time, src router, send seq)] key — results are
    bit-identical for any shard count (but not vs {!build}, whose
    direct-scheduling machinery is preserved untouched).  Between
    phases the orchestrator (single-threaded) injects failures and
    merges traces.  See DESIGN.md §11. *)

val build_sharded :
  shards:int ->
  owner:int array ->
  lookahead:float ->
  rng:Bgp_engine.Rng.t ->
  config:config ->
  ?telemetry:Telemetry.t ->
  Bgp_topology.Topology.t ->
  t
(** [owner.(r)] is router [r]'s shard (from {!Bgp_topology.Partition});
    [lookahead] must be a positive lower bound on every message's
    delivery delay — [link_delay] scaled down by the smallest jitter
    factor the fault schedule can apply ({!Fault_injector.lookahead}).
    The RNG split order matches {!build} (detection stream, then one per
    router), so router streams do not depend on the layout.
    @raise Invalid_argument on a bad [shards]/[owner]/[lookahead]. *)

val is_sharded : t -> bool

val shard_count : t -> int
(** [1] for a {!build} network. *)

val owner_of : t -> int -> int
val shard_sched : t -> int -> Bgp_engine.Scheduler.t

val paths_for : t -> int -> Bgp_proto.Path.table
(** Router [r]'s interning table: its shard's (equals {!paths} when
    unsharded) — what the analytic warm-up must intern into. *)

val shard_traces : t -> Trace.t list
(** The per-shard trace slices (empty list when untraced); merge with
    {!Trace.merge_renumber}. *)

val run_shards : ?at_barrier:(now:float -> unit) -> t -> cap:float -> unit
(** Run one conservative parallel phase until no shard holds an event at
    time [<= cap] ({!Bgp_engine.Shard_exec.run_phase}).  [at_barrier]
    runs single-threaded once per window — the telemetry-probe hook. *)

val shard_now : t -> float
(** Max shard clock. *)

val shard_pending : t -> int
(** Total live events across shards. *)

val shard_events : t -> int
(** Executed events, normalized so replicated fault events count once
    (as a sequential observer would see them).  Falls back to the
    scheduler's count when unsharded. *)

val shard_stats : t -> Bgp_engine.Shard_exec.stats

val inject_failure_sharded : t -> at:float -> Bgp_topology.Failure.t -> unit
(** {!inject_failure} for a sharded network, called by the orchestrator
    between phases: [at] is the injection time (must be [>=] every shard
    clock); detections are scheduled onto each surviving peer's own
    shard, with the hold-timer samples drawn in the same global order as
    the sequential path. *)

val inject_link_failures_sharded : t -> at:float -> (int * int) list -> unit

(** {3 Replica-local fault hooks}

    {!Fault_injector.install_sharded} replicates every fault event into
    every shard's scheduler with preassigned trace ids, so each shard's
    fault tables evolve identically without cross-shard reads.  Each
    hook touches only shard [shard]'s tables; session notifications and
    trace records fire only on the shard owning the affected router. *)

val note_replica : t -> shard:int -> unit
(** Count one replicated fault event executing on [shard], for the
    {!shard_events} normalization. *)

val record_fault_replica :
  t -> shard:int -> id:int -> label:string -> router:int -> cause:int -> unit
(** Record a [Fault] event with the preassigned [id] — only on the shard
    owning [router] (no-op elsewhere or when untraced). *)

val sever_link_sharded : t -> shard:int -> cause:int -> u:int -> v:int -> unit
val restore_link_sharded : t -> shard:int -> cause:int -> u:int -> v:int -> unit
val set_link_factor_sharded : t -> shard:int -> u:int -> v:int -> float -> unit
val set_link_loss_sharded : t -> shard:int -> u:int -> v:int -> float -> unit
val set_clock_skew_sharded : t -> shard:int -> router:int -> float -> unit
