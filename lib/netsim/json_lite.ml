type t =
  | Num of string
  | Str of string
  | Bool of bool
  | Null
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some c -> Buffer.add_char buf c
        | None -> fail "truncated escape");
        incr pos;
        go ()
      | Some c ->
        incr pos;
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    Num (String.sub s start (!pos - start))
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj = function Obj o -> o | _ -> raise (Bad "expected an object")

let field o key =
  match List.assoc_opt key o with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let field_opt o key = List.assoc_opt key o
let str = function Str s -> s | _ -> raise (Bad "expected a string")
let num = function Num s -> s | _ -> raise (Bad "expected a number")

let int v =
  match int_of_string_opt (num v) with
  | Some i -> i
  | None -> raise (Bad "expected an int")

let float v = float_of_string (num v)
let bool = function Bool b -> b | _ -> raise (Bad "expected a bool")
let arr = function Arr l -> l | _ -> raise (Bad "expected an array")

let try_result f =
  match f () with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception Failure msg -> Error msg

(* "%.17g" round-trips any finite double exactly; the integer fast path
   just keeps small whole numbers readable. *)
let float_lit v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf
