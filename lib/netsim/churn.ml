module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Topology = Bgp_topology.Topology
module Config = Bgp_proto.Config
module Router = Bgp_proto.Router

type op = Announce | Withdraw
type event = { at : float; router : int; dest : int; op : op }
type schedule = event list

type workload =
  | Poisson of { rate : float; duration : float; prefixes : int }
  | Flap_storm of { prefixes : int; flaps : int; hold : float; spread : float }
  | Staged_failover of { stages : int; gap : float; prefixes : int }

let kind_of_workload = function
  | Poisson _ -> "poisson"
  | Flap_storm _ -> "flap_storm"
  | Staged_failover _ -> "staged_failover"

let op_label = function Announce -> "announce" | Withdraw -> "withdraw"

(* The Trace.Fault label of a churn root. *)
let trace_label = function
  | Announce -> "churn_announce"
  | Withdraw -> "churn_withdraw"

let pp_event ppf e =
  Fmt.pf ppf "@[+%.3f %s router %d dest %d@]" e.at (op_label e.op) e.router e.dest

let horizon schedule = List.fold_left (fun acc e -> Float.max acc e.at) 0.0 schedule

(* --- Validation ---------------------------------------------------------- *)

let validate ~config ~topo ~horizon schedule =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let nr = Topology.num_routers topo in
  let universe = Config.num_dests config ~n_ases:topo.Topology.n_ases in
  (* (router, dest) pairs currently withdrawn; ops must alternate starting
     from the announced steady state and end all-announced, so the
     quiesced network re-converges to a checkable fixpoint. *)
  let withdrawn : (int * int, unit) Hashtbl.t = Hashtbl.create 97 in
  let rec go prev = function
    | [] ->
      if Hashtbl.length withdrawn > 0 then
        err "%d prefixes left withdrawn at end of schedule" (Hashtbl.length withdrawn)
      else Ok ()
    | { at; router; dest; op } :: rest ->
      if at < prev then err "events not sorted: %.3f after %.3f" at prev
      else if at < 0.0 then err "event predates t_fail: %.3f" at
      else if at > horizon then err "event past horizon: %.3f > %.3f" at horizon
      else if router < 0 || router >= nr then err "router %d out of range" router
      else if dest < 0 || dest >= universe then err "dest %d out of range" dest
      else if topo.Topology.as_of_router.(router) <> Config.origin_as config ~dest then
        err "router %d does not originate dest %d" router dest
      else if not (Config.dest_active config ~dest) then
        err "dest %d is sampled out" dest
      else begin
        let key = (router, dest) in
        match op with
        | Withdraw ->
          if Hashtbl.mem withdrawn key then
            err "double withdraw of dest %d at router %d" dest router
          else begin
            Hashtbl.add withdrawn key ();
            go at rest
          end
        | Announce ->
          if not (Hashtbl.mem withdrawn key) then
            err "announce of already-announced dest %d at router %d" dest router
          else begin
            Hashtbl.remove withdrawn key;
            go at rest
          end
      end
  in
  go 0.0 schedule

(* --- Generation ---------------------------------------------------------- *)

(* Seeded (router, dest) targets: [prefixes] distinct active destinations
   by partial Fisher-Yates, each paired with one originating router of its
   origin AS.  Sorted by dest so closing sweeps are deterministic. *)
let target_pool ~rng ~config ~topo ~prefixes =
  if prefixes < 1 then invalid_arg "Churn.generate: prefixes must be >= 1";
  let n_ases = topo.Topology.n_ases in
  let active =
    match config.Config.dest_sample with
    | Some s -> Array.copy s
    | None -> Array.init (Config.num_dests config ~n_ases) Fun.id
  in
  let k = min prefixes (Array.length active) in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (Array.length active - i) in
    let tmp = active.(i) in
    active.(i) <- active.(j);
    active.(j) <- tmp
  done;
  let pool = Array.sub active 0 k in
  Array.sort Int.compare pool;
  let routers_of_as = Array.make n_ases [] in
  for r = Topology.num_routers topo - 1 downto 0 do
    let a = topo.Topology.as_of_router.(r) in
    routers_of_as.(a) <- r :: routers_of_as.(a)
  done;
  Array.map
    (fun dest ->
      let origin = Config.origin_as config ~dest in
      let routers = Array.of_list routers_of_as.(origin) in
      (Rng.choose rng routers, dest))
    pool

let exp_draw rng ~rate = -.log (1.0 -. Rng.float rng) /. rate

let generate ~rng ~config ~topo workload =
  match workload with
  | Poisson { rate; duration; prefixes } ->
    if rate <= 0.0 then invalid_arg "Churn.generate: rate must be positive";
    if duration <= 0.0 then invalid_arg "Churn.generate: duration must be positive";
    let pool = target_pool ~rng ~config ~topo ~prefixes in
    let withdrawn = Array.make (Array.length pool) false in
    let events = ref [] in
    let t = ref (exp_draw rng ~rate) in
    while !t < duration do
      let i = Rng.int rng (Array.length pool) in
      let router, dest = pool.(i) in
      let op = if withdrawn.(i) then Announce else Withdraw in
      withdrawn.(i) <- not withdrawn.(i);
      events := { at = !t; router; dest; op } :: !events;
      t := !t +. exp_draw rng ~rate
    done;
    (* Close every open flap at the horizon so the schedule quiesces with
       all prefixes re-announced. *)
    let closing = ref [] in
    Array.iteri
      (fun i open_flap ->
        if open_flap then begin
          let router, dest = pool.(i) in
          closing := { at = duration; router; dest; op = Announce } :: !closing
        end)
      withdrawn;
    List.rev_append !events (List.rev !closing)
  | Flap_storm { prefixes; flaps; hold; spread } ->
    if flaps < 1 then invalid_arg "Churn.generate: flaps must be >= 1";
    if hold <= 0.0 then invalid_arg "Churn.generate: hold must be positive";
    if spread < 0.0 then invalid_arg "Churn.generate: spread must be >= 0";
    let pool = target_pool ~rng ~config ~topo ~prefixes in
    let events = ref [] in
    Array.iter
      (fun (router, dest) ->
        let start = if spread > 0.0 then Rng.uniform rng ~lo:0.0 ~hi:spread else 0.0 in
        for j = 0 to flaps - 1 do
          let base = start +. (float_of_int j *. 2.0 *. hold) in
          events := { at = base; router; dest; op = Withdraw } :: !events;
          events := { at = base +. hold; router; dest; op = Announce } :: !events
        done)
      pool;
    List.stable_sort (fun a b -> Float.compare a.at b.at) (List.rev !events)
  | Staged_failover { stages; gap; prefixes } ->
    if stages < 1 then invalid_arg "Churn.generate: stages must be >= 1";
    if gap <= 0.0 then invalid_arg "Churn.generate: gap must be positive";
    let pool = target_pool ~rng ~config ~topo ~prefixes in
    let k = Array.length pool in
    let events = ref [] in
    Array.iteri
      (fun i (router, dest) ->
        let stage = i * stages / k in
        let t0 = float_of_int stage *. gap in
        events := { at = t0; router; dest; op = Withdraw } :: !events;
        events := { at = t0 +. (gap /. 2.0); router; dest; op = Announce } :: !events)
      pool;
    List.stable_sort (fun a b -> Float.compare a.at b.at) (List.rev !events)

(* Heavy-tailed per-AS prefix counts: a discretized bounded Pareto with
   mean steered by rejection-free clamping — most ASes originate one or a
   few prefixes, a fat tail originates up to [max_prefixes]. *)
let prefix_counts ~rng ~n_ases ~mean ~max_prefixes =
  if n_ases < 1 then invalid_arg "Churn.prefix_counts: n_ases must be >= 1";
  if max_prefixes < 1 then invalid_arg "Churn.prefix_counts: max_prefixes must be >= 1";
  if mean < 1.0 then invalid_arg "Churn.prefix_counts: mean must be >= 1";
  (* Pareto(alpha) on [1, inf): x = u^(-1/alpha); alpha from the target
     mean alpha/(alpha-1) = mean, floored at 1.05 for mean <= ~20. *)
  let alpha = if mean <= 1.05 then 20.0 else Float.max 1.05 (mean /. (mean -. 1.0)) in
  Array.init n_ases (fun _ ->
      let u = 1.0 -. Rng.float rng in
      let x = u ** (-1.0 /. alpha) in
      min max_prefixes (int_of_float x))

(* --- Shrinking ----------------------------------------------------------- *)

let shrink schedule =
  let candidates = ref [] in
  (* Drop one complete withdraw/announce cycle of one (router, dest): the
     remaining ops still alternate and still end announced. *)
  let arr = Array.of_list schedule in
  let open_w : (int * int, int) Hashtbl.t = Hashtbl.create 97 in
  Array.iteri
    (fun i e ->
      let key = (e.router, e.dest) in
      match e.op with
      | Withdraw -> Hashtbl.replace open_w key i
      | Announce -> (
        match Hashtbl.find_opt open_w key with
        | Some wi ->
          Hashtbl.remove open_w key;
          candidates := List.filteri (fun j _ -> j <> wi && j <> i) schedule :: !candidates
        | None -> ()))
    arr;
  (* Compress time: halving every onset preserves order and validity. *)
  if horizon schedule > 1e-3 then
    candidates := List.map (fun e -> { e with at = e.at /. 2.0 }) schedule :: !candidates;
  List.rev !candidates

(* --- JSON ---------------------------------------------------------------- *)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_json schedule =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"at":%s,"op":"%s","router":%d,"dest":%d}|} (json_float e.at)
           (op_label e.op) e.router e.dest))
    schedule;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* --- Installation -------------------------------------------------------- *)

let apply net e =
  let router = Network.router net e.router in
  let cause = Network.record_fault net ~label:(trace_label e.op) ~router:e.router () in
  match e.op with
  | Announce -> Router.announce_origin router ~cause e.dest
  | Withdraw -> Router.withdraw_origin router ~cause e.dest

let install net ~sched ~t0 schedule =
  List.iter
    (fun e -> ignore (Sched.schedule_at sched ~time:(t0 +. e.at) (fun () -> apply net e)))
    schedule

(* Preassigned trace-id block, disjoint from [Fault_injector.fault_id_base]
   (1 lsl 50) so a chaotic churn trial can carry both root families. *)
let churn_id_base = 1 lsl 51

let install_sharded net ~t_fail schedule =
  List.iteri
    (fun idx e ->
      let id = churn_id_base + idx in
      let shard = Network.owner_of net e.router in
      let sched = Network.shard_sched net shard in
      ignore
        (Sched.schedule_at sched ~time:(t_fail +. e.at) (fun () ->
             Network.record_fault_replica net ~shard ~id ~label:(trace_label e.op)
               ~router:e.router ~cause:Trace.no_cause;
             let router = Network.router net e.router in
             match e.op with
             | Announce -> Router.announce_origin router ~cause:id e.dest
             | Withdraw -> Router.withdraw_origin router ~cause:id e.dest)))
    schedule

(* --- Steady-state monitor ------------------------------------------------- *)

type monitor = {
  t0 : float;
  window : float;
  settle : float array array;  (** per shard: last Loc-RIB revision time per dest *)
  mutable samples : (float * int) list;  (** (time, cumulative msgs), newest first *)
  baseline_msgs : int;
}

let monitor net ~t0 ~window =
  if window <= 0.0 then invalid_arg "Churn.monitor: window must be positive";
  let topo = Network.topology net in
  let config = Network.bgp_config net in
  let universe = Config.num_dests config ~n_ases:topo.Topology.n_ases in
  let sharded = Network.is_sharded net in
  let shards = if sharded then Network.shard_count net else 1 in
  (* One slab per shard: each domain writes only its own rows, and the
     end-of-run fold takes the max across shards — layout-free. *)
  let settle = Array.init shards (fun _ -> Array.make universe neg_infinity) in
  let m =
    {
      t0;
      window;
      settle;
      samples = [];
      baseline_msgs = (Network.sum_metrics net).Router.msgs_processed;
    }
  in
  for r = 0 to Network.num_routers net - 1 do
    let slot = if sharded then settle.(Network.owner_of net r) else settle.(0) in
    Router.set_rib_change_hook (Network.router net r) (fun dest time ->
        if time > slot.(dest) then slot.(dest) <- time)
  done;
  m

let sample m net ~now =
  m.samples <- (now, (Network.sum_metrics net).Router.msgs_processed) :: m.samples

(* Sequential only: a self-rearming sampler chain on the exact window
   grid, stopping when the queue drains (the [start_probes] idiom). *)
let start_sampler m net ~sched =
  let rec arm k =
    let time = m.t0 +. (float_of_int k *. m.window) in
    ignore
      (Sched.schedule_at sched ~time (fun () ->
           sample m net ~now:time;
           if Sched.pending sched > 0 then arm (k + 1)))
  in
  arm 1

type stats = {
  ops : int;
  workload_horizon : float;
  span : float;  (** t0 to the last route-affecting action *)
  updates_processed : int;
  sustained_rate : float;
  peak_window_rate : float;
  windows : int;
  queue_high_water : int;
  disturbed : int;
  unconverged : int;
  tails : Delay_hist.t;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* A destination is unconverged if any surviving router's forwarding walk
   toward it loops or breaks mid-chain.  Routelessness is legitimate
   (partitions, dead origins) — only inconsistency counts. *)
let dest_converged net ~n dest =
  let ok = ref true in
  let rec follow current steps =
    if steps > n then false
    else if Network.is_failed net current then false
    else
      match Router.next_hop (Network.router net current) dest with
      | None -> false
      | Some hop when hop = current -> true
      | Some hop -> follow hop (steps + 1)
  in
  for r = 0 to n - 1 do
    if !ok && not (Network.is_failed net r) then
      match Router.next_hop (Network.router net r) dest with
      | None -> ()
      | Some _ -> if not (follow r 0) then ok := false
  done;
  !ok

let stats m net ~schedule ~last_activity =
  let ops = List.length schedule in
  let workload_horizon = horizon schedule in
  (* Last disturbance per destination (the schedule is sorted, so the
     final replace wins). *)
  let last_op : (int, float) Hashtbl.t = Hashtbl.create 997 in
  List.iter (fun e -> Hashtbl.replace last_op e.dest (m.t0 +. e.at)) schedule;
  let disturbed = Hashtbl.length last_op in
  let shards = Array.length m.settle in
  let settle_of dest =
    let best = ref neg_infinity in
    for s = 0 to shards - 1 do
      if m.settle.(s).(dest) > !best then best := m.settle.(s).(dest)
    done;
    !best
  in
  let tails = Delay_hist.create () in
  (* Hash iteration order varies, but histogram insertion commutes, so the
     result is deterministic. *)
  Hashtbl.iter
    (fun dest at ->
      let settle = settle_of dest in
      if settle > neg_infinity then Delay_hist.add tails (Float.max 0.0 (settle -. at)))
    last_op;
  let n = Network.num_routers net in
  let unconverged =
    Hashtbl.fold (fun dest _ acc -> if dest_converged net ~n dest then acc else acc + 1)
      last_op 0
  in
  let final_msgs = (Network.sum_metrics net).Router.msgs_processed in
  let updates_processed = final_msgs - m.baseline_msgs in
  let span = Float.max 0.0 (last_activity -. m.t0) in
  let sustained_rate = if span > 0.0 then float_of_int updates_processed /. span else 0.0 in
  let ordered = List.rev m.samples in
  let peak_window_rate, _, _ =
    List.fold_left
      (fun (peak, pt, pm) (t, msgs) ->
        let dt = t -. pt in
        let rate = if dt > 0.0 then float_of_int (msgs - pm) /. dt else 0.0 in
        (Float.max peak rate, t, msgs))
      (0.0, m.t0, m.baseline_msgs)
      ordered
  in
  {
    ops;
    workload_horizon;
    span;
    updates_processed;
    sustained_rate;
    peak_window_rate;
    windows = List.length ordered;
    queue_high_water = (Network.sum_metrics net).Router.max_queue;
    disturbed;
    unconverged;
    tails;
    p50 = Delay_hist.percentile tails 0.5;
    p95 = Delay_hist.percentile tails 0.95;
    p99 = Delay_hist.percentile tails 0.99;
  }
