module Topology = Bgp_topology.Topology
module Graph = Bgp_topology.Graph
module Failure = Bgp_topology.Failure
module Router = Bgp_proto.Router
module Types = Bgp_proto.Types

type issue = { router : int; dest : int; problem : string }

let pp_issue ppf i =
  Fmt.pf ppf "router %d, dest %d: %s" i.router i.dest i.problem

(* Does the AS still have at least one live router? *)
let as_alive topo failure =
  let alive = Array.make topo.Topology.n_ases false in
  for r = 0 to Topology.num_routers topo - 1 do
    if not (Failure.is_failed failure r) then alive.(topo.Topology.as_of_router.(r)) <- true
  done;
  alive

(* Follow next hops from [r] toward [dest]; having a bound of [n] steps
   catches loops. *)
let forwarding_chain net topo failure ~r ~dest ~origin =
  let n = Topology.num_routers topo in
  let rec follow current steps =
    if steps > n then Error "forwarding loop"
    else if Failure.is_failed failure current then Error "chain hits a failed router"
    else
      let router = Network.router net current in
      match Router.next_hop router dest with
      | None -> Error (Printf.sprintf "chain breaks at router %d (no route)" current)
      | Some hop when hop = current ->
        if Router.asn router = origin then Ok steps
        else Error (Printf.sprintf "router %d claims local route for foreign AS" current)
      | Some hop -> follow hop (steps + 1)
  in
  follow r 0

let check net ~failure =
  let topo = Network.topology net in
  let n = Topology.num_routers topo in
  let issues = ref [] in
  let report router dest problem = issues := { router; dest; problem } :: !issues in
  let alive_as = as_alive topo failure in
  let relationships = Network.relationships net in
  (* Valley-free export can legitimately leave destinations unreachable
     and non-shortest, so completeness and BFS-equality only apply to
     policy-free runs. *)
  let policied = relationships <> None in
  let flat = n = topo.Topology.n_ases in
  let connected = Failure.survivors_connected topo failure in
  (* Precompute survivor BFS distances per destination AS (flat only). *)
  let keep v = not (Failure.is_failed failure v) in
  for r = 0 to n - 1 do
    if keep r then begin
      let router = Network.router net r in
      let config = Network.bgp_config net in
      (* Sampled-out destinations are never originated, so only active
         ones carry invariants. *)
      Bgp_proto.Config.iter_active_dests config ~n_ases:topo.Topology.n_ases @@ fun dest ->
        let origin = Bgp_proto.Config.origin_as config ~dest in
        match Router.best_path_to router dest with
        | Some path ->
          if not alive_as.(origin) then report r dest "retains a route to a dead AS"
          else begin
            let hops = Bgp_proto.Path.hops path in
            (match List.find_opt (fun asn -> not alive_as.(asn)) hops with
            | Some dead -> report r dest (Printf.sprintf "path crosses dead AS %d" dead)
            | None -> ());
            (match relationships with
            | Some rels ->
              if not (Relationships.valley_free rels ~self:r hops) then
                report r dest "selected path is not valley-free"
            | None -> ());
            match forwarding_chain net topo failure ~r ~dest ~origin with
            | Ok _ -> ()
            | Error problem -> report r dest problem
          end
        | None ->
          if alive_as.(origin) && connected && not policied then
            report r dest "missing a route to a live AS despite connected survivors"
    end
  done;
  (* Exact shortest-path check for flat, policy-free topologies. *)
  if flat && connected && not policied then begin
    let graph = topo.Topology.graph in
    for dest = 0 to n - 1 do
      if keep dest then begin
        let dist =
          (* BFS over survivors only. *)
          let d = Array.make n max_int in
          let q = Queue.create () in
          d.(dest) <- 0;
          Queue.add dest q;
          while not (Queue.is_empty q) do
            let u = Queue.take q in
            List.iter
              (fun v ->
                if keep v && d.(v) = max_int then begin
                  d.(v) <- d.(u) + 1;
                  Queue.add v q
                end)
              (Graph.neighbors graph u)
          done;
          d
        in
        let config = Network.bgp_config net in
        List.iter
          (fun prefix ->
            for r = 0 to n - 1 do
              if keep r && r <> dest then
                match Router.best_path_to (Network.router net r) prefix with
                | Some path ->
                  let len = Types.path_length path in
                  if len <> dist.(r) then
                    report r prefix
                      (Printf.sprintf "path length %d but survivor BFS distance %d" len
                         dist.(r))
                | None -> ()  (* already reported above *)
            done)
          (Bgp_proto.Config.dests_of_as config ~asn:dest)
      end
    done
  end;
  List.rev !issues

let check_exn net ~failure =
  match check net ~failure with
  | [] -> ()
  | issues ->
    let buffer = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buffer in
    Fmt.pf ppf "%d invariant violations:@." (List.length issues);
    List.iteri
      (fun i issue -> if i < 20 then Fmt.pf ppf "  %a@." pp_issue issue)
      issues;
    Format.pp_print_flush ppf ();
    failwith (Buffer.contents buffer)
