module A = Attribution

type straggler = { seed : int; dest : int; tail : float; parts : A.components }

(* The straggler board keeps the K best samples under the reference sort
   order (tail desc, then seed, then dest — the same tie-break
   {!Attribution.merge} uses), maintained as a sorted list.  K is small
   (default 64), so ordered insertion beats a heap on simplicity and is
   deterministic by construction. *)
let straggler_compare a b =
  match Float.compare b.tail a.tail with
  | 0 -> ( match Int.compare a.seed b.seed with 0 -> Int.compare a.dest b.dest | c -> c)
  | c -> c

let straggler_before a b = straggler_compare a b < 0

type t = {
  worst_capacity : int;
  mutable n_trials : int;
  mutable from_sidecars : int;
  mutable reparsed : int;
  mutable delay_sum : float;
  mutable totals : A.components;
  mutable aggregate : A.components;
  by_router : (int, A.components) Hashtbl.t;
  hist : Delay_hist.t;
  mutable pass : int;
  mutable fail : int;
  viol_tally : (string, int) Hashtbl.t;
  mutable worst : straggler list;  (* sorted best (slowest) first, length <= K *)
  mutable worst_len : int;
  mutable n_skipped : int;
  mutable first_err : string option;
}

let create ?(worst_capacity = 64) () =
  if worst_capacity < 1 then invalid_arg "Attr_merge.create: worst_capacity must be >= 1";
  {
    worst_capacity;
    n_trials = 0;
    from_sidecars = 0;
    reparsed = 0;
    delay_sum = 0.0;
    totals = A.zero;
    aggregate = A.zero;
    by_router = Hashtbl.create 64;
    hist = Delay_hist.create ();
    pass = 0;
    fail = 0;
    viol_tally = Hashtbl.create 8;
    worst = [];
    worst_len = 0;
    n_skipped = 0;
    first_err = None;
  }

let insert_straggler t s =
  let rec insert = function
    | [] -> [ s ]
    | x :: _ as l when straggler_before s x -> s :: l
    | x :: rest -> x :: insert rest
  in
  if t.worst_len < t.worst_capacity then begin
    t.worst <- insert t.worst;
    t.worst_len <- t.worst_len + 1
  end
  else if straggler_before s (List.nth t.worst (t.worst_len - 1)) then
    t.worst <- List.filteri (fun i _ -> i < t.worst_capacity) (insert t.worst)

let add_sidecar ?(reparsed = false) t (sc : A.sidecar) =
  t.n_trials <- t.n_trials + 1;
  if reparsed then t.reparsed <- t.reparsed + 1
  else t.from_sidecars <- t.from_sidecars + 1;
  t.delay_sum <- t.delay_sum +. sc.A.sc_delay;
  t.totals <- A.add t.totals sc.A.sc_totals;
  t.aggregate <- A.add t.aggregate sc.A.sc_aggregate;
  List.iter
    (fun (router, parts) ->
      let prev = Option.value ~default:A.zero (Hashtbl.find_opt t.by_router router) in
      Hashtbl.replace t.by_router router (A.add prev parts))
    sc.A.sc_by_router;
  List.iter
    (fun (d : A.sidecar_dest) ->
      Delay_hist.add t.hist d.A.sd_tail;
      insert_straggler t
        { seed = sc.A.sc_seed; dest = d.A.sd_dest; tail = d.A.sd_tail; parts = d.A.sd_parts })
    sc.A.sc_dests;
  (match sc.A.sc_violations with
  | [] -> t.pass <- t.pass + 1
  | vs ->
    t.fail <- t.fail + 1;
    List.iter
      (fun v ->
        Hashtbl.replace t.viol_tally v
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.viol_tally v)))
      (List.sort_uniq String.compare vs))

let skip t msg =
  t.n_skipped <- t.n_skipped + 1;
  if t.first_err = None then t.first_err <- Some msg

let trials t = t.n_trials
let skipped t = t.n_skipped
let first_error t = t.first_err

(* --- Reports -------------------------------------------------------------- *)

type report = {
  r_trials : int;
  r_from_sidecars : int;
  r_reparsed : int;
  r_skipped : int;
  r_first_error : string option;
  r_mean_delay : float;
  r_totals : A.components;
  r_aggregate : A.components;
  r_dests : int;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_pass : int;
  r_fail : int;
  r_violations : (string * int) list;
  r_stragglers : straggler list;
}

let report t =
  {
    r_trials = t.n_trials;
    r_from_sidecars = t.from_sidecars;
    r_reparsed = t.reparsed;
    r_skipped = t.n_skipped;
    r_first_error = t.first_err;
    r_mean_delay =
      (if t.n_trials = 0 then 0.0 else t.delay_sum /. float_of_int t.n_trials);
    r_totals = t.totals;
    r_aggregate = t.aggregate;
    r_dests = Delay_hist.count t.hist;
    r_p50 = Delay_hist.percentile t.hist 0.50;
    r_p95 = Delay_hist.percentile t.hist 0.95;
    r_p99 = Delay_hist.percentile t.hist 0.99;
    r_pass = t.pass;
    r_fail = t.fail;
    r_violations =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.viol_tally []);
    r_stragglers = t.worst;
  }

let json_float = Json_lite.float_lit

let buf_components buf (c : A.components) =
  Printf.bprintf buf
    "{\"queueing\":%s,\"processing\":%s,\"mrai_hold\":%s,\"propagation\":%s,\"total\":%s}"
    (json_float c.A.queueing) (json_float c.A.processing) (json_float c.A.mrai_hold)
    (json_float c.A.propagation)
    (json_float (A.total c))

let to_json ?(top = 10) t =
  let r = report t in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "{\"schema\":\"bgp-attr-merge/1\",\"trials\":%d,\"mean_delay\":%s,"
    r.r_trials (json_float r.r_mean_delay);
  Printf.bprintf buf
    "\"sources\":{\"sidecars\":%d,\"reparsed\":%d,\"skipped\":%d,\"first_error\":%s},"
    r.r_from_sidecars r.r_reparsed r.r_skipped
    (match r.r_first_error with None -> "null" | Some m -> Json_lite.escape m);
  Buffer.add_string buf "\"totals\":";
  buf_components buf r.r_totals;
  Buffer.add_string buf ",\"aggregate\":";
  buf_components buf r.r_aggregate;
  Printf.bprintf buf
    ",\"pooled_tails\":{\"dests\":%d,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s},"
    r.r_dests (json_float r.r_p50) (json_float r.r_p95) (json_float r.r_p99);
  Printf.bprintf buf "\"histogram\":%s," (Delay_hist.to_json t.hist);
  Printf.bprintf buf "\"battery\":{\"pass\":%d,\"fail\":%d,\"violations\":{%s}},"
    r.r_pass r.r_fail
    (String.concat ","
       (List.map
          (fun (name, count) -> Printf.sprintf "%s:%d" (Json_lite.escape name) count)
          r.r_violations));
  Buffer.add_string buf "\"stragglers\":[";
  List.iteri
    (fun i s ->
      if i < top then begin
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf
          "{\"seed\":%d,\"dest\":%d,\"tail\":%s,\"dominant\":\"%s\",\"parts\":" s.seed
          s.dest (json_float s.tail) (A.dominant s.parts);
        buf_components buf s.parts;
        Buffer.add_char buf '}'
      end)
    r.r_stragglers;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_flamegraph t =
  let buf = Buffer.create 4096 in
  let routers =
    List.sort Int.compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.by_router [])
  in
  List.iter
    (fun router ->
      let parts = Hashtbl.find t.by_router router in
      List.iter
        (fun name ->
          let v = A.component parts name in
          if Float.round (v *. 1e6) >= 1.0 then
            Printf.bprintf buf "router_%d;%s %.0f\n" router name
              (Float.round (v *. 1e6)))
        A.component_names)
    routers;
  Buffer.contents buf

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let pp_components ppf (c : A.components) =
  let whole = A.total c in
  Fmt.pf ppf
    "queueing %.4fs (%.1f%%) | processing %.4fs (%.1f%%) | mrai hold %.4fs (%.1f%%) | propagation %.4fs (%.1f%%)"
    c.A.queueing (pct c.A.queueing whole) c.A.processing (pct c.A.processing whole)
    c.A.mrai_hold (pct c.A.mrai_hold whole) c.A.propagation
    (pct c.A.propagation whole)

let pp ?(top = 5) ppf t =
  let r = report t in
  Fmt.pf ppf "Merged attribution over %d trials (%d sidecars, %d re-parsed)@." r.r_trials
    r.r_from_sidecars r.r_reparsed;
  (match (r.r_skipped, r.r_first_error) with
  | 0, _ -> ()
  | n, err ->
    Fmt.pf ppf "  SKIPPED %d unreadable input(s); first: %s@." n
      (Option.value ~default:"?" err));
  Fmt.pf ppf "  mean convergence delay %.4fs@." r.r_mean_delay;
  Fmt.pf ppf "  critical paths: %a@." pp_components r.r_totals;
  Fmt.pf ppf "  network-wide:   %a@." pp_components r.r_aggregate;
  Fmt.pf ppf
    "  pooled tails over %d (trial, dest) pairs: p50 %.4fs, p95 %.4fs, p99 %.4fs \
     (histogram, <2%% rel. error)@."
    r.r_dests r.r_p50 r.r_p95 r.r_p99;
  if r.r_fail > 0 || r.r_pass > 0 then
    Fmt.pf ppf "  invariant battery: %d pass, %d fail%s@." r.r_pass r.r_fail
      (match r.r_violations with
      | [] -> ""
      | vs ->
        Printf.sprintf " (%s)"
          (String.concat ", "
             (List.map (fun (name, count) -> Printf.sprintf "%s x%d" name count) vs)));
  Fmt.pf ppf "  worst straggler destinations across the sweep:@.";
  List.iteri
    (fun i s ->
      if i < top then
        Fmt.pf ppf "    seed %3d dest %3d: tail %.4fs (dominant %s)@." s.seed s.dest
          s.tail (A.dominant s.parts))
    r.r_stragglers

(* --- Directory loading ---------------------------------------------------- *)

type item = Use_sidecar of string | Use_trace of string

let stem_of file =
  if A.is_sidecar_path file then
    Some (`Sidecar, Filename.chop_suffix file ".attr.json")
  else if Filename.check_suffix file ".jsonl" then
    Some (`Trace, Filename.remove_extension file)
  else None

let plan ?(reparse = false) dir =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  let sidecars = Hashtbl.create 64 and traces = Hashtbl.create 64 in
  let stems = ref [] in
  Array.iter
    (fun file ->
      match stem_of file with
      | None -> ()
      | Some (kind, stem) ->
        if not (Hashtbl.mem sidecars stem || Hashtbl.mem traces stem) then
          stems := stem :: !stems;
        let table = match kind with `Sidecar -> sidecars | `Trace -> traces in
        Hashtbl.replace table stem file)
    entries;
  List.rev !stems
  |> List.sort String.compare
  |> List.map (fun stem ->
         let sidecar = Hashtbl.find_opt sidecars stem in
         let trace = Hashtbl.find_opt traces stem in
         match (sidecar, trace, reparse) with
         | Some s, None, _ -> Use_sidecar (Filename.concat dir s)
         | Some s, Some _, false -> Use_sidecar (Filename.concat dir s)
         | _, Some tr, _ -> Use_trace (Filename.concat dir tr)
         | None, None, _ -> assert false)

let load_item = function
  | Use_sidecar path -> A.read_sidecar path
  | Use_trace path -> (
    let paths = Bgp_proto.Path.create_table () in
    match Trace.read_file ~paths path with
    | Error msg -> Error msg
    | Ok (None, _) ->
      Error (Printf.sprintf "%s: no meta line (not a finalized trace)" path)
    | Ok (Some meta, events) ->
      let attr = A.analyze ~t_fail:meta.Trace.t_fail events in
      Ok (A.sidecar_of ~seed:meta.Trace.seed attr))

let load ?jobs t items =
  let loaded = Bgp_engine.Pool.map ?jobs load_item items in
  List.iter2
    (fun item result ->
      match result with
      | Error msg -> skip t msg
      | Ok sc ->
        let reparsed = match item with Use_sidecar _ -> false | Use_trace _ -> true in
        add_sidecar ~reparsed t sc)
    items loaded
