(** One complete experiment run: generate a topology, warm the network up
    to steady state, inject a failure, and measure re-convergence — the
    paper's basic experimental unit. *)

type topo_spec =
  | Flat of { spec : Bgp_topology.Degree_dist.spec; n : int }
      (** one router per AS, Section 3.1's simple topologies *)
  | Realistic of Bgp_topology.As_topology.config  (** Fig 13 *)
  | Fixed of Bgp_topology.Topology.t  (** caller-supplied (tests) *)

type failure_spec =
  | Fraction of float  (** contiguous around the grid centre (paper) *)
  | Routers of int list  (** explicit set *)
  | Links of (int * int) list
      (** sessions drop, routers stay up (classic Tdown experiments) *)
  | No_failure

type warmup_mode =
  | Simulated  (** cold-start convergence simulation (like the paper) *)
  | Analytic
      (** install the steady state directly ({!Warmup.install}); roughly
          halves a run's cost and is bit-equivalent in routing state *)

type scenario = {
  topo : topo_spec;
  net : Network.config;
  failure : failure_spec;
  seed : int;
  sim_time_cap : float;
      (** safety net per phase; a run that hits it is flagged unconverged *)
  validate : bool;  (** run {!Validate.check_exn} after each phase *)
  warmup : warmup_mode;
  policies : bool;
      (** infer Gao-Rexford relationships for the generated topology and
          run with valley-free policies (forces a simulated warm-up) *)
  faults : Fault_injector.schedule option;
      (** chaos schedule installed at the failure instant (onsets are
          offsets from [t_fail]); [None] leaves the fault layer disabled
          and the run bit-identical to pre-chaos builds *)
  sharding : int option;
      (** [Some k]: run the single trial across [k] OCaml 5 domains
          ({!Network.build_sharded} over a {!Bgp_topology.Partition},
          conservative barrier-windowed execution with the link delay as
          lookahead).  Results are bit-identical for every [k >= 1] —
          but produced by different machinery than [None], which keeps
          the historical sequential path (and its goldens) untouched.
          See DESIGN.md §11. *)
  churn : Churn.schedule option;
      (** sustained-load workload armed at the failure instant (onsets
          are offsets from [t_fail]); a steady-state {!Churn.monitor}
          observes the run and its {!Churn.stats} land in the result.
          [None] keeps the load phase bit-identical to churn-free
          builds *)
  churn_window : float;
      (** throughput-sampling window width in seconds (only read under
          [churn]) *)
  dest_sample : int option;
      (** [Some k]: seeded destination subsampling — only a [k]-subset of
          the prefix universe is originated, warmed, validated and
          churned; per-prefix metrics stay exact for the subset while
          message totals scale roughly with the sampled fraction.  [None]
          keeps the full universe and the historical RNG draw order *)
}

val scenario :
  ?net:Network.config ->
  ?failure:failure_spec ->
  ?seed:int ->
  ?sim_time_cap:float ->
  ?validate:bool ->
  ?warmup:warmup_mode ->
  ?policies:bool ->
  ?faults:Fault_injector.schedule ->
  ?sharding:int ->
  ?churn:Churn.schedule ->
  ?churn_window:float ->
  ?dest_sample:int ->
  topo_spec ->
  scenario
(** Defaults: paper BGP config ({!Bgp_proto.Config.default}), no failure,
    seed 1, cap 36000 s, validation off, simulated warm-up, no policies,
    no fault schedule, no sharding (sequential execution), no churn
    (churn window 0.5 s), no destination subsampling. *)

type result = {
  converged : bool;
  warmup_delay : float;  (** time to initial convergence *)
  convergence_delay : float;
      (** last route-affecting activity minus failure time (the paper's
          metric); 0 when nothing happened *)
  messages : int;  (** update messages generated after the failure *)
  adverts : int;  (** advertisements generated after the failure *)
  withdrawals : int;
  warmup_messages : int;
  eliminated : int;  (** stale updates removed by the batching queue *)
  max_queue : int;  (** deepest input queue seen at any router *)
  mrai_transitions : int;  (** dynamic-scheme level changes *)
  events : int;  (** simulator events executed (cost indicator) *)
  lost_messages : int;
      (** messages the fault layer dropped in flight; 0 without [faults].
          Conservation: update sends = deliveries + [lost_messages] *)
  survivors_connected : bool;
  issues : Validate.issue list;  (** non-empty only when [validate] *)
  report : Telemetry.report option;
      (** telemetry report when [net.telemetry] is set; [None] otherwise.
          With telemetry off the whole record is bit-identical to a run
          without the telemetry layer; with it on, only [events] differs
          (probe events), never a routing-relevant field *)
  attribution : Attribution.t option;
      (** causal convergence-delay attribution when [net.trace] is set;
          [None] otherwise.  Tracing perturbs nothing: all other fields
          (including [events]) are bit-identical with it on or off.  When
          both trace and telemetry are set, the component totals also
          appear in [report] as [attr.*] gauges *)
  churn : Churn.stats option;
      (** steady-state workload measurements when [scenario.churn] is
          set: sustained/peak update throughput, queue-depth high-water,
          per-prefix settle-delay tails, unconverged prefix count *)
}

val run : scenario -> result
(** A pure function of the scenario: same scenario, same result, on any
    number of domains. *)

val run_with : inspect:(Network.t -> unit) -> scenario -> result
(** {!run}, plus an end-of-run hook called on the live network after the
    post-failure phase drains (or hits the cap) and before teardown —
    the chaos harness reads per-router queue and RIB state there.
    [inspect] must only read; the run is otherwise identical to {!run}. *)

val topology_of : scenario -> Bgp_topology.Topology.t
(** The topology {!run} will build for this scenario (same seed
    derivation), so a fault schedule can be generated against it without
    running anything. *)

val failure_of : scenario -> Bgp_topology.Topology.t -> Bgp_topology.Failure.t
(** The failure set {!run} will inject into this topology. *)

val run_mean :
  scenario -> trials:int -> metric:(result -> float) -> Bgp_engine.Stats.summary
(** Run [trials] seeds ([seed], [seed+1], ...) and summarize a metric. *)

(** {2 Traced trials}

    Tracing a sweep used to mean one shared spill file and hence one
    domain; giving every trial its own trace (and its own seed-suffixed
    spill file) makes traced sweeps embarrassingly parallel again. *)

val trace_path : base:string -> seed:int -> string
(** The per-trial spill path: [trace_path ~base:"t.jsonl" ~seed:7] is
    ["t.seed7.jsonl"] (the seed suffix goes before the extension). *)

val traced :
  ?capacity:int ->
  ?spill_base:string ->
  scenario ->
  trials:int ->
  (scenario * Trace.t) list
(** Expand a scenario into [trials] per-trial scenarios (seeds [seed],
    [seed+1], ...), each with a fresh {!Trace.t} attached; with
    [spill_base] each trace spills to {!trace_path}[ ~base:spill_base].
    The traces are returned so the caller can inspect, {!Trace.finalize}
    or close them after running.
    @raise Invalid_argument if [trials <= 0]. *)

val finalize_traced :
  ?sidecars:bool -> (scenario * Trace.t) list -> result list -> string list
(** Archive a traced batch after the runs: every trial with a spill file
    is {!Trace.finalize}d (events + meta line) and — unless
    [~sidecars:false] — its {!Attribution.sidecar} is written next to
    the trace ({!Attribution.sidecar_path}), atomically.  Trials without
    a spill file are just closed.  Returns the sidecar paths written.
    The sidecar is what makes later [analyze --merge] passes O(trials):
    the raw event JSONL is never re-read when a sidecar is present. *)
