(** Seeded, schedule-based fault injection beyond the paper's single
    contiguous failure: every fault in a trial is derived from the trial
    seed, so a chaos run is a pure function of [(seed, scenario)] and
    replays bit-identically — the property the swarm harness
    ({!Bgp_experiments.Chaos}) checks and the minimizer relies on.

    A {e schedule} is a time-sorted list of faults with onsets relative
    to the trial's failure time [t_fail].  {!install} arms them on the
    scheduler; each onset records a causal [Trace.Fault] root, and its
    heal/recover counterpart chains back to it, so attribution over a
    chaotic trial still telescopes exactly. *)

type fault =
  | Partition of { side : int list; heal_after : float }
      (** sever every session crossing the cut between [side] (sorted,
          unique) and the rest; restore them all [heal_after] later.
          Partitions always heal — {!validate} rejects non-positive or
          past-horizon heals. *)
  | Session_reset of { u : int; v : int; recover_after : float }
      (** one session flaps: down now, re-established (with a full-table
          re-sync) [recover_after] later *)
  | Gray_link of { u : int; v : int; loss : float; duration : float }
      (** lossy link: each message dropped independently with
          probability [loss] in (0, 1) for [duration] seconds *)
  | Link_jitter of { u : int; v : int; factor : float; duration : float }
      (** the link's one-way delay is multiplied by [factor] for
          [duration] seconds *)
  | Clock_skew of { router : int; skew : float }
      (** every delivery to [router] arrives [skew] seconds late from
          now on (receive-path clock offset) *)

type event = { at : float;  (** onset, seconds after [t_fail], [>= 0] *) fault : fault }

type schedule = event list
(** Sorted ascending by [at]. *)

val kind_of_fault : fault -> string
(** The fault-taxonomy tag ([partition], [session_reset], [gray_link],
    [link_jitter], [clock_skew]) — also the [Trace.Fault] label. *)

val kinds : schedule -> string list
(** Distinct fault kinds present, sorted (the campaign's shape-coverage
    report). *)

val pp_event : Format.formatter -> event -> unit

val validate : n:int -> horizon:float -> schedule -> (unit, string) result
(** Structural well-formedness for an [n]-router network: events sorted
    with [0 <= at <= horizon], every transient fault heals within the
    horizon, links and routers in range, probabilities and factors in
    their domains. *)

val generate :
  rng:Bgp_engine.Rng.t ->
  topo:Bgp_topology.Topology.t ->
  failure:Bgp_topology.Failure.t ->
  ?max_events:int ->
  horizon:float ->
  unit ->
  schedule
(** Derive a schedule from [rng] (pure: same stream, same schedule).
    Faults target the surviving part of the network: partition sides are
    BFS balls over the surviving session graph, link faults pick live
    sessions.  Draws [1 + U(max_events)] base events (default
    [max_events] 5), each spawning a correlated companion with
    probability 1/4; onsets land in [[0, horizon/2]] and durations fit
    the horizon, so the result always passes {!validate}. *)

val shrink : schedule -> schedule list
(** Structure-preserving shrink candidates: drop one event, halve a
    duration/loss/skew, pull a jitter factor towards 1, halve a
    partition side.  Every candidate of a valid schedule is valid (the
    QCheck property pins this); used as the minimizer's polish pass
    after ddmin. *)

val to_json : schedule -> string
(** JSON array (one object per event), embedded in the chaos artifact. *)

val install : Network.t -> sched:Bgp_engine.Scheduler.t -> schedule -> unit
(** Arm the schedule at the current simulated time (the runner calls it
    at [t_fail]): each event fires [at] seconds later, records its
    [Trace.Fault] root and applies the fault through the {!Network}
    hooks; heals/recoveries are scheduled and cause-chained to the
    onset.  @raise Invalid_argument unless [Network.enable_faults] was
    called. *)

val lookahead : link_delay:float -> schedule -> float
(** The sharded executor's hard lookahead under this schedule: the
    smallest one-way delay any message can experience — [link_delay]
    scaled by the schedule's smallest jitter factor (clock skew is
    non-negative and only lengthens delays), clamped to the delivery
    path's [1e-6] floor.  [link_delay] itself for a fault-free run. *)

val install_sharded : Network.t -> t_fail:float -> schedule -> unit
(** {!install} for a sharded network: every fault event (and its heal)
    is replicated into {e every} shard's scheduler with preassigned
    trace ids, so each shard's replica fault tables evolve identically
    with no cross-shard reads; the shard owning a fault's representative
    router records the [Trace.Fault] events, and session notifications
    fire only on the owners of the affected endpoints.  Onsets are
    absolute: [t_fail +. at].  @raise Invalid_argument unless
    [Network.enable_faults] was called. *)
