(** Sustained-load churn workloads: seeded, open-ended schedules of
    announce/withdraw operations against locally-originated prefixes,
    driven through the same causal machinery as {!Fault_injector}.

    Where the one-shot harness injects a single failure and waits for
    quiet, a churn schedule keeps the network under route churn for a
    configurable span — Poisson update arrivals, withdraw/re-announce
    flap storms, staged failover waves — and the monitor measures what
    the paper's mechanisms trade off under load: sustained update
    throughput, queue depth, and per-prefix convergence-delay tails.

    Every schedule is a pure function of [(rng, config, topo, workload)]
    and replays bit-identically; every op fires as a causal [Trace.Fault]
    root ([churn_announce] / [churn_withdraw]), so attribution over a
    churn trial telescopes exactly like a fault trial.  Schedules always
    end with every touched prefix re-announced, so a quiesced run settles
    back to a checkable steady state. *)

type op = Announce | Withdraw

type event = { at : float;  (** seconds after [t_fail], [>= 0] *) router : int; dest : int; op : op }

type schedule = event list
(** Sorted ascending by [at]; per (router, dest) the ops alternate
    starting from the announced steady state and end announced. *)

type workload =
  | Poisson of { rate : float;  (** expected ops/second *) duration : float; prefixes : int }
      (** memoryless announce/withdraw arrivals over [prefixes] seeded
          targets for [duration] seconds; open flaps close at the horizon *)
  | Flap_storm of { prefixes : int; flaps : int; hold : float; spread : float }
      (** every target withdraw/re-announces [flaps] times with [hold]
          seconds down per flap, start times staggered over [spread] *)
  | Staged_failover of { stages : int; gap : float; prefixes : int }
      (** targets split into [stages] waves; wave [k] withdraws in a
          burst at [k * gap] and re-announces half a gap later *)

val kind_of_workload : workload -> string
(** [poisson], [flap_storm] or [staged_failover] — the report tag. *)

val op_label : op -> string

val pp_event : Format.formatter -> event -> unit

val horizon : schedule -> float
(** Largest onset (0 for an empty schedule). *)

val validate :
  config:Bgp_proto.Config.t ->
  topo:Bgp_topology.Topology.t ->
  horizon:float ->
  schedule ->
  (unit, string) result
(** Structural well-formedness: sorted onsets in [[0, horizon]], routers
    and destinations in range, every op at a router of the destination's
    origin AS, no sampled-out destinations, strict withdraw/announce
    alternation per (router, dest) ending all-announced. *)

val generate :
  rng:Bgp_engine.Rng.t ->
  config:Bgp_proto.Config.t ->
  topo:Bgp_topology.Topology.t ->
  workload ->
  schedule
(** Derive a schedule from [rng] (pure: same stream, same schedule).
    Targets are [prefixes] distinct active destinations drawn by partial
    Fisher-Yates, each paired with a seeded originating router of its
    origin AS.  The result always passes {!validate} against the same
    [config] at [horizon ~=] the workload's natural span. *)

val prefix_counts :
  rng:Bgp_engine.Rng.t -> n_ases:int -> mean:float -> max_prefixes:int -> int array
(** Heavy-tailed per-AS origination counts (bounded discretized Pareto,
    every AS >= 1): feed to {!Bgp_proto.Config.with_prefix_plan}. *)

val shrink : schedule -> schedule list
(** Structure-preserving shrink candidates: drop one complete
    withdraw/announce cycle, or halve every onset.  Every candidate of a
    valid schedule is valid (QCheck-pinned). *)

val to_json : schedule -> string
(** JSON array, one object per op (embedded in the churn artifact). *)

val install : Network.t -> sched:Bgp_engine.Scheduler.t -> t0:float -> schedule -> unit
(** Arm every op at [t0 +. at] on the sequential scheduler.  Each op
    records its [Trace.Fault] root (a no-op when untraced — churn does
    not require [Network.enable_faults]) and drives the origin router's
    decision process through {!Bgp_proto.Router.announce_origin} /
    [withdraw_origin]. *)

val churn_id_base : int
(** Preassigned trace-id block for sharded runs ([1 lsl 51]), disjoint
    from {!Fault_injector}'s. *)

val install_sharded : Network.t -> t_fail:float -> schedule -> unit
(** {!install} for a sharded network: each op is scheduled only on the
    shard owning its router (ops are never replicated, so counts need no
    normalisation) with preassigned trace ids, keeping the merged trace
    shard-count invariant. *)

(** {2 Steady-state monitor} *)

type monitor
(** Observes one run: per-prefix settle times through
    {!Bgp_proto.Router.set_rib_change_hook} (pure observation — installing
    the monitor never perturbs the simulation) plus windowed cumulative
    message samples. *)

val monitor : Network.t -> t0:float -> window:float -> monitor
(** Install hooks on every router; call between warm-up and the load
    phase.  [t0] is the load epoch ([t_fail]), [window] the throughput
    sampling width in seconds. *)

val sample : monitor -> Network.t -> now:float -> unit
(** Record one cumulative-throughput sample (sharded runs call this from
    the barrier hook: window starts are shard-count invariant). *)

val start_sampler : monitor -> Network.t -> sched:Bgp_engine.Scheduler.t -> unit
(** Sequential runs: arm a self-rearming sampler chain on the exact
    [t0 + k * window] grid that stops once the event queue drains. *)

type stats = {
  ops : int;  (** schedule length *)
  workload_horizon : float;  (** largest onset offset *)
  span : float;  (** [t0] to the last route-affecting action *)
  updates_processed : int;  (** messages processed during the load phase *)
  sustained_rate : float;  (** [updates_processed / span], per second *)
  peak_window_rate : float;  (** best single-window throughput *)
  windows : int;  (** throughput samples taken *)
  queue_high_water : int;  (** max input-queue depth across routers *)
  disturbed : int;  (** distinct prefixes the schedule touched *)
  unconverged : int;
      (** disturbed prefixes whose post-quiesce forwarding walk loops or
          breaks (routelessness under partition is not counted) *)
  tails : Delay_hist.t;
      (** per-prefix settle delay: last Loc-RIB revision anywhere minus
          the prefix's last scheduled disturbance *)
  p50 : float;
  p95 : float;
  p99 : float;
}

val stats : monitor -> Network.t -> schedule:schedule -> last_activity:float -> stats
(** Fold the monitor's observations after the run; deterministic for a
    deterministic run (per-shard settle slabs merge by max, histogram
    insertion commutes). *)
