module Heap = Bgp_engine.Heap
module Topology = Bgp_topology.Topology
module Types = Bgp_proto.Types
module Rib = Bgp_proto.Rib
module Export = Bgp_proto.Export
module Router = Bgp_proto.Router

(* Session adjacency: for each router, its session peers with kinds. *)
let session_adjacency net =
  let n = Network.num_routers net in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, kind) ->
      adj.(u) <- (v, kind) :: adj.(u);
      adj.(v) <- (u, kind) :: adj.(v))
    (Network.sessions net);
  Array.map (List.sort compare) adj

type label = Local | Learned of Rib.entry

let best_of = function Local -> Rib.Local | Learned e -> Rib.Learned e

(* Settling order uses the same packed int key the live decision process
   compares (proven order-isomorphic to the reference tuple rank by the
   QCheck property in test_bgp). *)
let rank_of label = Rib.packed_rank (best_of label)

(* Dijkstra-style settling for one destination: ranks (path length, then
   eBGP-over-iBGP, then peer id) are strictly monotone along session
   edges, so settling in rank order computes the unique fixpoint of
   best(v) = min over peers p of import(export(best(p))). *)
let settle net adj ~config ~paths ~dest =
  let topo = Network.topology net in
  let n = Network.num_routers net in
  let origin = Bgp_proto.Config.origin_as config ~dest in
  let best : label option array = Array.make n None in
  let settled = Array.make n false in
  let heap =
    Heap.create ~cmp:(fun ((ra : int), _, _) ((rb : int), _, _) -> Int.compare ra rb)
  in
  for r = 0 to n - 1 do
    if topo.Topology.as_of_router.(r) = origin then begin
      best.(r) <- Some Local;
      Heap.push heap (rank_of Local, r, Local)
    end
  done;
  let relax v label =
    let own_as = topo.Topology.as_of_router.(v) in
    List.iter
      (fun (u, kind) ->
        let peer_as = topo.Topology.as_of_router.(u) in
        match
          Export.target ~paths ~config ~own_as ~peer_kind:kind ~peer_as
            ~best:(Some (best_of label)) ()
        with
        | None -> ()
        | Some path ->
          if not (Types.path_contains path peer_as) then begin
            let candidate = Learned { Rib.peer = v; kind; path; rel = None } in
            let better =
              match best.(u) with
              | None -> true
              | Some current -> rank_of candidate < rank_of current
            in
            if better && not settled.(u) then begin
              best.(u) <- Some candidate;
              Heap.push heap (rank_of candidate, u, candidate)
            end
          end)
      adj.(v)
  in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (_, v, label) ->
      if not settled.(v) then begin
        settled.(v) <- true;
        (* Only the currently-best label settles; stale heap entries are
           skipped by the settled check. *)
        (match best.(v) with
        | Some current when rank_of current = rank_of label -> relax v label
        | _ -> ());
        drain ()
      end
      else drain ()
  in
  drain ();
  best

(* Scratch interning table for a sharded network: the settling pass is
   orchestrator-side and must not touch any shard's table (results are
   rehomed per owner at install time). *)
let settle_table net =
  if Network.is_sharded net then Bgp_proto.Path.create_table () else Network.paths net

let best_paths net ~dest =
  let adj = session_adjacency net in
  let config =
    (* All routers share one protocol config in this simulator. *)
    Network.bgp_config net
  in
  let best = settle net adj ~config ~paths:(settle_table net) ~dest in
  Array.map
    (function
      | None -> None
      | Some Local -> Some Bgp_proto.Path.empty
      | Some (Learned e) -> Some e.Rib.path)
    best

let install net =
  if Network.relationships net <> None then
    invalid_arg
      "Warmup.install: analytic warm-up supports only policy-free operation; \
       use a simulated warm-up with Gao-Rexford relationships";
  let topo = Network.topology net in
  let n = Network.num_routers net in
  let adj = session_adjacency net in
  let config = Network.bgp_config net in
  let paths = settle_table net in
  (* Sharded: every path a router keeps must live in its own shard's
     interning table (rank keys are structural, so rehoming changes no
     decision). *)
  let rehome =
    if Network.is_sharded net then fun u p ->
      Bgp_proto.Path.of_list (Network.paths_for net u) (Bgp_proto.Path.hops p)
    else fun _ p -> p
  in
  Bgp_proto.Config.iter_active_dests config ~n_ases:topo.Topology.n_ases @@ fun dest ->
    let best = settle net adj ~config ~paths ~dest in
    let origin = Bgp_proto.Config.origin_as config ~dest in
    (* Adj-RIB-In of u from peer p = p's export; Adj-RIB-Out of p toward u
       likewise — both derive from the settled selections through the same
       export function the live router uses. *)
    for u = 0 to n - 1 do
      let own_as = topo.Topology.as_of_router.(u) in
      let entries = ref [] and advertised = ref [] in
      List.iter
        (fun (p, kind) ->
          let peer_as = topo.Topology.as_of_router.(p) in
          (* What p tells u (import side). *)
          (match
             Export.target ~paths ~config ~own_as:peer_as ~peer_kind:kind
               ~peer_as:own_as ~best:(Option.map best_of best.(p)) ()
           with
          | Some path when not (Types.path_contains path own_as) ->
            entries := (p, kind, rehome u path) :: !entries
          | Some _ | None -> ());
          (* What u told p (export side). *)
          match
            Export.target ~paths ~config ~own_as ~peer_kind:kind ~peer_as
              ~best:(Option.map best_of best.(u)) ()
          with
          | Some path -> advertised := (p, rehome u path) :: !advertised
          | None -> ())
        adj.(u);
      Router.warm_install (Network.router net u) ~dest
        ~local:(own_as = origin) ~entries:!entries ~advertised:!advertised
    done
