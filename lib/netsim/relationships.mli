(** AS commercial relationships (Gao-Rexford) for a topology.

    The paper runs policy-free; this overlay lets the library also model
    policy-rich operation: {!infer} derives customer/provider/peer
    relations from relative AS connectivity (better-connected ASes are
    providers of much-less-connected neighbours, similar sizes peer), the
    standard degree heuristic. *)

type t

val infer : ?provider_ratio:float -> Bgp_topology.Topology.t -> t
(** AS [a] is a provider of adjacent AS [b] when [a]'s inter-AS degree is
    at least [provider_ratio] (default 2.0) times [b]'s; otherwise the two
    peer. *)

val relation :
  t -> from:int -> toward:int -> Bgp_proto.Types.relationship option
(** What router [toward]'s AS is to router [from]'s AS ([None] for
    same-AS/iBGP pairs). *)

val valley_free : t -> self:int -> int list -> bool
(** Is the AS hop list (as selected by router [self]; obtain it from an
    interned path with {!Bgp_proto.Path.hops}) valley-free: zero or more
    provider hops up, at most one peer hop, then only customer hops
    down? *)
