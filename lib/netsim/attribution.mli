(** Convergence-delay attribution over a causal trace ({!Trace}).

    Walking cause pointers backwards from the last post-failure event
    recovers the {e critical path}: the single causal chain whose total
    latency is exactly the measured convergence delay.  Each hop's latency
    (its timestamp minus its cause's) is decomposed into the four
    components the paper's Figs 4–5 argue over — queueing, processing,
    MRAI hold, and propagation — and the per-hop parts telescope, so the
    component totals sum to the convergence delay {e exactly} (no float
    tolerance needed beyond the additions themselves):

    - [Processed]: queueing = started − enqueued, processing =
      completion − started, remainder of the hop gap → propagation;
    - [Mrai_flush]: MRAI hold = fire − ready, remainder → propagation;
    - [Update_delivered] / [Session_down] / [Update_sent]: the whole hop
      gap → propagation (link delay, failure-detection delay, residuals);
    - the root hop (a [Router_failed] or cause-less [Session_down])
      carries [time − t_fail] → propagation, so link-failure scenarios
      (whose roots fire one detection delay after injection) attribute
      that delay too.

    The analysis is pure post-processing: it never touches the simulation
    and can run over spilled-and-reloaded traces ({!Trace.events}). *)

type components = {
  queueing : float;  (** waiting in router input queues *)
  processing : float;  (** being served by router CPUs *)
  mrai_hold : float;  (** sitting pending behind a running MRAI timer *)
  propagation : float;  (** link delay, failure detection, residuals *)
}

val zero : components
val add : components -> components -> components

val total : components -> float
(** Sum of the four components. *)

type hop = {
  event : Trace.event;
  parts : components;  (** this hop's share of the chain latency *)
}

type router_stat = {
  router : int;
  residency : float;  (** critical-path time spent at this router *)
  parts : components;
  hops : int;
}

type t = {
  t_fail : float;
  convergence_delay : float;
      (** terminal event time − [t_fail]; [0.] when nothing happened *)
  complete : bool;
      (** the cause chain reached a root; [false] means the ring buffer
          dropped part of the chain and the decomposition is a lower
          bound *)
  totals : components;
      (** summed over the critical path; [total totals =
          convergence_delay] when [complete] *)
  critical_path : hop list;  (** root first, terminal last *)
  per_router : router_stat list;
      (** critical-path residency per router, busiest first *)
  aggregate : components;
      (** the same per-event decomposition summed over {e all}
          post-failure events with a resolvable cause — where the whole
          network's time went, not just the slowest chain *)
  events : int;  (** post-failure events analyzed *)
}

val analyze : t_fail:float -> Trace.event list -> t
(** Events at [time < t_fail] (warmup) are ignored. *)

val of_trace : t_fail:float -> Trace.t -> t
(** [analyze] over {!Trace.events} (includes spilled events). *)

val to_json : ?top:int -> t -> string
(** Schema ["bgp-attr/1"].  [top] (default 10) caps [per_router]; the
    critical path is always emitted in full. *)

val pp : ?top:int -> ?max_hops:int -> Format.formatter -> t -> unit
(** Human-readable report: component totals with percentages, the
    critical path (at most [max_hops], default 40, keeping the ends), and
    the [top] (default 5) routers by residency. *)
