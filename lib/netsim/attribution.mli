(** Convergence-delay attribution over a causal trace ({!Trace}).

    Walking cause pointers backwards from a {e terminal event} recovers a
    {e critical path}: the single causal chain whose total latency is
    exactly the delay from the failure to that terminal.  The walk is
    parameterized by its terminal, and one analysis runs it many times:

    - once from the network-wide last post-failure event, yielding the
      convergence delay and its decomposition ([totals], [critical_path]);
    - once per destination, from that destination's own last event,
      yielding each prefix's convergence {e tail} and its decomposition
      ([per_dest]) plus cross-destination percentiles ([tails]) and
      stragglers.

    Each hop's latency (its timestamp minus its cause's) is decomposed
    into the four components the paper's Figs 4–5 argue over — queueing,
    processing, MRAI hold, and propagation — and the per-hop parts
    telescope, so the component totals sum to the walked delay {e exactly}
    (no float tolerance needed beyond the additions themselves):

    - [Processed]: queueing = started − enqueued, processing =
      completion − started, remainder of the hop gap → propagation;
    - [Mrai_flush]: MRAI hold = fire − ready, remainder → propagation;
    - [Update_delivered] / [Session_down] / [Update_sent]: the whole hop
      gap → propagation (link delay, failure-detection delay, residuals);
    - a root hop (cause [no_cause], or a cause that predates [t_fail] —
      e.g. a damping suppression begun during warmup) carries
      [time − t_fail], with its own timestamps clipped at [t_fail] so no
      pre-failure waiting leaks into the post-failure decomposition.

    The analysis is pure post-processing: it never touches the simulation
    and can run over spilled-and-reloaded traces ({!Trace.events},
    {!Trace.read_file}). *)

type components = {
  queueing : float;  (** waiting in router input queues *)
  processing : float;  (** being served by router CPUs *)
  mrai_hold : float;  (** sitting pending behind a running MRAI timer *)
  propagation : float;  (** link delay, failure detection, residuals *)
}

val zero : components
val add : components -> components -> components

val total : components -> float
(** Sum of the four components. *)

val component_names : string list
(** [["queueing"; "processing"; "mrai_hold"; "propagation"]], the order
    used everywhere (JSON, flamegraphs, reports). *)

val component : components -> string -> float
(** Project one component by name.
    @raise Invalid_argument on an unknown name. *)

val dominant : components -> string
(** The largest component's name (first in {!component_names} on ties). *)

type hop = {
  event : Trace.event;
  parts : components;  (** this hop's share of the chain latency *)
}

type router_stat = {
  router : int;
  residency : float;  (** critical-path time spent at this router *)
  parts : components;
  hops : int;
}

type dest_attr = {
  dest : int;
  tail : float;
      (** this destination's convergence tail: its terminal event time −
          [t_fail] *)
  dest_complete : bool;  (** this destination's chain reached a root *)
  dest_parts : components;
      (** summed over [dest_path]; [total dest_parts = tail] when
          [dest_complete] *)
  dest_path : hop list;  (** root first, terminal last *)
}

type tail_summary = {
  n_dests : int;
  p50 : float;
  p95 : float;
  p99 : float;  (** nearest-rank percentiles of per-destination tails *)
}

type t = {
  t_fail : float;
  convergence_delay : float;
      (** terminal event time − [t_fail]; [0.] when nothing happened *)
  complete : bool;
      (** the cause chain reached a root; [false] means the ring buffer
          dropped part of the chain and the decomposition is a lower
          bound *)
  totals : components;
      (** summed over the critical path; [total totals =
          convergence_delay] when [complete] *)
  critical_path : hop list;  (** root first, terminal last *)
  per_router : router_stat list;
      (** critical-path residency per router, busiest first *)
  aggregate : components;
      (** the same per-event decomposition summed over {e all}
          post-failure events with a resolvable cause — where the whole
          network's time went, not just the slowest chain *)
  aggregate_by_router : (int * components) list;
      (** [aggregate] broken down by the router that incurred each
          event's latency, sorted by router — the data behind the
          aggregate flamegraph *)
  events : int;  (** post-failure events analyzed *)
  per_dest : dest_attr list;
      (** one attribution per destination, slowest tail first (ties by
          destination id) *)
  tails : tail_summary;  (** percentiles over [per_dest] tails *)
}

val analyze : t_fail:float -> Trace.event list -> t
(** Events at [time < t_fail] (warmup) are analyzed only as potential
    causes of post-failure events; they contribute nothing themselves. *)

val of_trace : t_fail:float -> Trace.t -> t
(** [analyze] over {!Trace.events} (includes spilled events). *)

val stragglers : t -> dest_attr list
(** Destinations whose tail exceeds the p95 tail, slowest first — the
    prefixes the paper's tail-latency figures are about. *)

(** {2 Collapsed-stack (flamegraph) export} *)

type flame_mode =
  | Flame_aggregate
      (** one stack per (router, component) over the network-wide
          aggregate: line totals equal the aggregate decomposition *)
  | Flame_per_dest
      (** one stack per (destination, router, component) over each
          destination's critical path *)

val to_flamegraph : ?mode:flame_mode -> t -> string
(** Collapsed-stack lines ([frame;frame value\n]) for inferno /
    flamegraph.pl / speedscope.  Values are integer microseconds of
    simulated time; zero-valued lines are omitted.  Default mode
    {!Flame_aggregate}. *)

val to_json : ?top:int -> t -> string
(** Schema ["bgp-attr/2"].  [top] (default 10) caps [per_router]; the
    critical path and the per-destination array are always emitted in
    full. *)

val pp : ?top:int -> ?max_hops:int -> Format.formatter -> t -> unit
(** Human-readable report: component totals with percentages, the
    critical path (at most [max_hops], default 40, keeping the ends), and
    the [top] (default 5) routers by residency. *)

val pp_per_dest : ?top:int -> Format.formatter -> t -> unit
(** Per-destination report: tail percentiles, stragglers beyond p95, and
    the [top] (default 5) slowest destinations with their decompositions. *)

(** {2 Per-trial sidecars}

    A sidecar is the compact, mergeable residue of one trial's
    attribution — schema ["bgp-attr-sidecar/1"]: the component sums
    (critical-path and network-wide, per router) plus one delay sample
    per destination, with every float printed exactly (["%.17g"]) so a
    merge over sidecars is bit-equal to a merge over re-analyzed traces.
    Every traced run persists one next to its finalized trace
    ({!Runner.finalize_traced}, {!Bgp_experiments.Sweep.traced_archived},
    [bgpsim chaos --sidecar-dir]), which is what makes
    [bgpsim analyze --merge] O(trials) instead of O(events) and lets
    [bgpsim serve] watch a campaign without touching raw traces. *)

type sidecar_dest = {
  sd_dest : int;
  sd_tail : float;
  sd_complete : bool;
  sd_parts : components;
}

type sidecar = {
  sc_seed : int;
  sc_t_fail : float;
  sc_delay : float;  (** the trial's convergence delay *)
  sc_complete : bool;
  sc_events : int;  (** post-failure events the analysis covered *)
  sc_totals : components;  (** critical-path decomposition *)
  sc_aggregate : components;  (** network-wide decomposition *)
  sc_by_router : (int * components) list;
      (** [aggregate_by_router], the flamegraph data, sorted by router *)
  sc_dests : sidecar_dest list;  (** per-destination tails, slowest first *)
  sc_violations : string list;
      (** chaos invariant-battery failures ([] for a clean or non-chaos
          trial) — lets a live campaign serve its pass/fail tally *)
}

val sidecar_of : ?violations:string list -> seed:int -> t -> sidecar

val sidecar_path : string -> string
(** The sidecar path for a trace file: ["t.seed7.jsonl"] maps to
    ["t.seed7.attr.json"] (the extension is replaced). *)

val is_sidecar_path : string -> bool
(** True for paths ending in [".attr.json"]. *)

val sidecar_to_json : sidecar -> string
(** One ["bgp-attr-sidecar/1"] document, no trailing newline. *)

val sidecar_of_json : string -> (sidecar, string) result

val write_sidecar : string -> sidecar -> unit
(** Write atomically (temp file + rename), so a directory watcher
    ({!Bgp_experiments.Serve}) never observes a partial sidecar. *)

val read_sidecar : string -> (sidecar, string) result
(** [Error] — never an exception — for an unreadable or malformed file;
    the message names the file. *)

(** {2 Multi-trial merge}

    Traced trials of a sweep each produce one finalized trace file
    ({!Trace.finalize}); merging pools their per-destination tails into
    sweep-wide percentiles and straggler rankings without re-running
    anything.  (The streaming, O(trials) path over sidecars lives in
    {!Attr_merge}; this in-memory merge remains the reference the
    streamed one is tested against.) *)

type trial = { trial_seed : int; attr : t }

type merged = {
  n_trials : int;
  mean_delay : float;  (** mean convergence delay across trials *)
  merged_totals : components;  (** critical-path components summed *)
  merged_aggregate : components;  (** network-wide aggregates summed *)
  pooled_tails : tail_summary;
      (** percentiles over the pooled [(trial, dest)] tails *)
  worst : (int * dest_attr) list;
      (** all pooled [(seed, dest)] attributions, slowest tail first *)
}

val merge : trial list -> merged
(** @raise Invalid_argument on an empty list. *)

val merged_to_json : ?top:int -> merged -> string
(** Schema ["bgp-attr-merge/1"].  [top] (default 10) caps the straggler
    array. *)

val pp_merged : ?top:int -> Format.formatter -> merged -> unit
