(** Streaming, O(trials) merge of per-trial attribution sidecars
    ({!Attribution.sidecar}).

    The in-memory reference merge ({!Attribution.merge}) retains every
    [(trial, dest)] tail sample and re-sorts them per query; this module
    instead folds each sidecar into a constant-size accumulator —
    running component sums (exact: the same float additions in the same
    order as the reference), a fixed-bucket log-scale tail histogram
    ({!Delay_hist}, quantiles within its documented <2% relative error),
    and a bounded worst-straggler board — so merging a thousand-trial
    campaign costs O(trials) time and O(1) memory, and a live service
    ({!Bgp_experiments.Serve}) can answer percentile queries mid-run.

    Trials missing a sidecar fall back to re-parsing their finalized
    trace ({!plan} emits [Use_trace] items); unreadable or malformed
    files are never silently dropped — they are counted in [skipped]
    with the first error (file:line) surfaced in every report. *)

type t

val create : ?worst_capacity:int -> unit -> t
(** An empty accumulator.  [worst_capacity] (default 64) bounds the
    straggler board — the K slowest [(trial, dest)] samples kept. *)

val add_sidecar : ?reparsed:bool -> t -> Attribution.sidecar -> unit
(** Fold one trial in.  Order matters only for float-addition order; the
    callers fold in stem-sorted file order so repeated merges of the
    same directory are bit-identical.  [reparsed] (default false) tallies
    the trial under the re-parse fallback in the [sources] accounting
    instead of the sidecar fast path. *)

val skip : t -> string -> unit
(** Record an unreadable/malformed input; the first message is kept. *)

val trials : t -> int
val skipped : t -> int
val first_error : t -> string option

(** {2 Reports} *)

type straggler = {
  seed : int;
  dest : int;
  tail : float;
  parts : Attribution.components;
}

type report = {
  r_trials : int;
  r_from_sidecars : int;  (** trials folded straight from sidecars *)
  r_reparsed : int;  (** trials recovered by trace re-parse fallback *)
  r_skipped : int;
  r_first_error : string option;
  r_mean_delay : float;
  r_totals : Attribution.components;
  r_aggregate : Attribution.components;
  r_dests : int;  (** pooled [(trial, dest)] samples *)
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;  (** histogram tail percentiles (see {!Delay_hist}) *)
  r_pass : int;  (** trials with an empty violation list *)
  r_fail : int;
  r_violations : (string * int) list;
      (** chaos invariant-battery tally, sorted by name *)
  r_stragglers : straggler list;  (** slowest first, at most K *)
}

val report : t -> report

val to_json : ?top:int -> t -> string
(** Schema ["bgp-attr-merge/1"] — a superset of
    {!Attribution.merged_to_json}: same [trials], [mean_delay],
    [totals], [aggregate], [pooled_tails] and [stragglers] members, plus
    [sources] (sidecar/reparse/skip counts and the first error),
    [histogram], and the [battery] pass/fail tally.  [top] (default 10)
    caps the straggler array. *)

val to_flamegraph : t -> string
(** Merged aggregate [router;component] collapsed stacks (integer
    microseconds), one line per (router, component) across all folded
    trials. *)

val pp : ?top:int -> Format.formatter -> t -> unit

(** {2 Directory loading}

    The work plan for a campaign directory: one item per trial {e stem}
    (file name minus [.jsonl] / [.attr.json]), preferring the sidecar
    when both exist, stem-sorted so the fold order — and hence the
    merged floats — are reproducible. *)

type item =
  | Use_sidecar of string
  | Use_trace of string  (** no sidecar: re-parse the finalized trace *)

val plan : ?reparse:bool -> string -> item list
(** Scan a directory.  [reparse] forces [Use_trace] for every trial that
    has a trace file (benchmark baseline; sidecar-only trials still load
    from their sidecar).
    @raise Sys_error if the directory cannot be read. *)

val load_item : item -> (Attribution.sidecar, string) result
(** Pure per-item work — safe to fan across {!Bgp_engine.Pool} domains.
    [Use_trace] re-parses the trace and re-runs the full attribution; a
    trace without a meta line is an error (it was never finalized). *)

val load : ?jobs:int -> t -> item list -> unit
(** {!load_item} across the pool (results folded in input order, so the
    accumulator is independent of [jobs]), errors recorded via {!skip}. *)
