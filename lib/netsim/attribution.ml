type components = {
  queueing : float;
  processing : float;
  mrai_hold : float;
  propagation : float;
}

let zero = { queueing = 0.0; processing = 0.0; mrai_hold = 0.0; propagation = 0.0 }

let add a b =
  {
    queueing = a.queueing +. b.queueing;
    processing = a.processing +. b.processing;
    mrai_hold = a.mrai_hold +. b.mrai_hold;
    propagation = a.propagation +. b.propagation;
  }

let total c = c.queueing +. c.processing +. c.mrai_hold +. c.propagation

type hop = { event : Trace.event; parts : components }
type router_stat = { router : int; residency : float; parts : components; hops : int }

type t = {
  t_fail : float;
  convergence_delay : float;
  complete : bool;
  totals : components;
  critical_path : hop list;
  per_router : router_stat list;
  aggregate : components;
  events : int;
}

(* Decompose one event's hop latency — its time minus its cause's time
   ([gap]) — into the four components.  Whatever a constructor cannot
   account for from its own timestamps is propagation, so the parts sum
   to [gap] by construction and the chain telescopes exactly. *)
let parts_of_event event ~gap =
  match event with
  | Trace.Processed { time; enqueued; started; _ } ->
    let queueing = started -. enqueued in
    let processing = time -. started in
    { queueing; processing; mrai_hold = 0.0; propagation = gap -. queueing -. processing }
  | Trace.Mrai_flush { time; ready; _ } ->
    let mrai_hold = time -. ready in
    { zero with mrai_hold; propagation = gap -. mrai_hold }
  | Trace.Update_sent _ | Trace.Update_delivered _ | Trace.Session_down _
  | Trace.Router_failed _ ->
    { zero with propagation = gap }

let analyze ~t_fail events =
  let post = List.filter (fun e -> Trace.time_of e >= t_fail) events in
  let n_events = List.length post in
  let by_id = Hashtbl.create (2 * n_events) in
  List.iter (fun e -> Hashtbl.replace by_id (Trace.id_of e) e) post;
  (* The gap of [event] to its cause, or to [t_fail] for roots; [None]
     when the cause was evicted from the ring (chain broken). *)
  let gap_of event =
    let cause = Trace.cause_of event in
    if cause = Trace.no_cause then Some (Trace.time_of event -. t_fail)
    else
      match Hashtbl.find_opt by_id cause with
      | Some c -> Some (Trace.time_of event -. Trace.time_of c)
      | None -> None
  in
  (* Terminal: latest timestamp; among simultaneous events the highest id
     (recorded last, hence causally downstream). *)
  let terminal =
    List.fold_left
      (fun acc e ->
        match acc with
        | None -> Some e
        | Some best ->
          let te = Trace.time_of e and tb = Trace.time_of best in
          if te > tb || (te = tb && Trace.id_of e > Trace.id_of best) then Some e
          else acc)
      None post
  in
  match terminal with
  | None ->
    {
      t_fail;
      convergence_delay = 0.0;
      complete = true;
      totals = zero;
      critical_path = [];
      per_router = [];
      aggregate = zero;
      events = 0;
    }
  | Some terminal ->
    (* Walk the cause chain terminal -> root, building the path root
       first. *)
    let rec walk event acc =
      let cause = Trace.cause_of event in
      match gap_of event with
      | None -> (false, { event; parts = zero } :: acc)
      | Some gap ->
        let hop = { event; parts = parts_of_event event ~gap } in
        if cause = Trace.no_cause then (true, hop :: acc)
        else walk (Hashtbl.find by_id cause) (hop :: acc)
    in
    let complete, critical_path = walk terminal [] in
    let totals =
      List.fold_left (fun acc (hop : hop) -> add acc hop.parts) zero critical_path
    in
    let per_router =
      let table = Hashtbl.create 16 in
      List.iter
        (fun (hop : hop) ->
          let r = Trace.router_of hop.event in
          let parts, hops =
            Option.value ~default:(zero, 0) (Hashtbl.find_opt table r)
          in
          Hashtbl.replace table r (add parts hop.parts, hops + 1))
        critical_path;
      Hashtbl.fold
        (fun router (parts, hops) acc ->
          { router; residency = total parts; parts; hops } :: acc)
        table []
      |> List.sort (fun a b ->
             match Float.compare b.residency a.residency with
             | 0 -> Int.compare a.router b.router
             | c -> c)
    in
    let aggregate =
      List.fold_left
        (fun acc e ->
          match gap_of e with
          | None -> acc
          | Some gap -> add acc (parts_of_event e ~gap))
        zero post
    in
    {
      t_fail;
      convergence_delay = Trace.time_of terminal -. t_fail;
      complete;
      totals;
      critical_path;
      per_router;
      aggregate;
      events = n_events;
    }

let of_trace ~t_fail trace = analyze ~t_fail (Trace.events trace)

(* --- JSON ---------------------------------------------------------------- *)

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let buf_components buf c =
  Printf.bprintf buf
    "{\"queueing\":%s,\"processing\":%s,\"mrai_hold\":%s,\"propagation\":%s,\"total\":%s}"
    (json_float c.queueing) (json_float c.processing) (json_float c.mrai_hold)
    (json_float c.propagation)
    (json_float (total c))

let kind_of_event = function
  | Trace.Update_sent _ -> "update_sent"
  | Trace.Update_delivered _ -> "update_delivered"
  | Trace.Processed _ -> "processed"
  | Trace.Mrai_flush _ -> "mrai_flush"
  | Trace.Router_failed _ -> "router_failed"
  | Trace.Session_down _ -> "session_down"

let to_json ?(top = 10) t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"schema\":\"bgp-attr/1\",\"t_fail\":%s,\"convergence_delay\":%s,\"complete\":%b,\"events\":%d,"
    (json_float t.t_fail)
    (json_float t.convergence_delay)
    t.complete t.events;
  Buffer.add_string buf "\"totals\":";
  buf_components buf t.totals;
  Buffer.add_string buf ",\"aggregate\":";
  buf_components buf t.aggregate;
  Buffer.add_string buf ",\"critical_path\":[";
  List.iteri
    (fun i hop ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"id\":%d,\"kind\":\"%s\",\"time\":%s,\"router\":%d,\"cause\":%d,\"parts\":"
        (Trace.id_of hop.event)
        (kind_of_event hop.event)
        (json_float (Trace.time_of hop.event))
        (Trace.router_of hop.event)
        (Trace.cause_of hop.event);
      buf_components buf hop.parts;
      Buffer.add_char buf '}')
    t.critical_path;
  Buffer.add_string buf "],\"per_router\":[";
  List.iteri
    (fun i stat ->
      if i < top then begin
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "{\"router\":%d,\"residency\":%s,\"hops\":%d,\"parts\":"
          stat.router (json_float stat.residency) stat.hops;
        buf_components buf stat.parts;
        Buffer.add_char buf '}'
      end)
    t.per_router;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- Text report --------------------------------------------------------- *)

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let pp_components ppf c =
  let whole = total c in
  Fmt.pf ppf
    "queueing %.4fs (%.1f%%) | processing %.4fs (%.1f%%) | mrai hold %.4fs (%.1f%%) | propagation %.4fs (%.1f%%)"
    c.queueing (pct c.queueing whole) c.processing (pct c.processing whole) c.mrai_hold
    (pct c.mrai_hold whole) c.propagation
    (pct c.propagation whole)

let pp ?(top = 5) ?(max_hops = 40) ppf t =
  Fmt.pf ppf "Convergence-delay attribution@.";
  Fmt.pf ppf "  failure injected at t=%.4f; converged %.4fs later%s@." t.t_fail
    t.convergence_delay
    (if t.complete then "" else "  [INCOMPLETE: trace dropped part of the chain]");
  Fmt.pf ppf "  critical path: %a@." pp_components t.totals;
  Fmt.pf ppf "  network-wide:  %a  (%d events)@." pp_components t.aggregate t.events;
  let hops = List.length t.critical_path in
  Fmt.pf ppf "  critical path (%d hops):@." hops;
  (* Keep the ends of a long path: the root explains onset, the tail
     explains the terminal delay. *)
  let head_n = max_hops - (max_hops / 2) in
  let tail_from = hops - (max_hops / 2) in
  List.iteri
    (fun i hop ->
      if hops <= max_hops || i < head_n || i >= tail_from then
        Fmt.pf ppf "    %a@." Trace.pp_event hop.event
      else if i = head_n then Fmt.pf ppf "    ... (%d hops elided)@." (tail_from - head_n))
    t.critical_path;
  if t.per_router <> [] then begin
    Fmt.pf ppf "  top routers by critical-path residency:@.";
    List.iteri
      (fun i stat ->
        if i < top then
          Fmt.pf ppf "    router %3d: %.4fs (%.1f%%) over %d hops — %a@." stat.router
            stat.residency
            (pct stat.residency t.convergence_delay)
            stat.hops pp_components stat.parts)
      t.per_router
  end
