type components = {
  queueing : float;
  processing : float;
  mrai_hold : float;
  propagation : float;
}

let zero = { queueing = 0.0; processing = 0.0; mrai_hold = 0.0; propagation = 0.0 }

let add a b =
  {
    queueing = a.queueing +. b.queueing;
    processing = a.processing +. b.processing;
    mrai_hold = a.mrai_hold +. b.mrai_hold;
    propagation = a.propagation +. b.propagation;
  }

let total c = c.queueing +. c.processing +. c.mrai_hold +. c.propagation

let component_names = [ "queueing"; "processing"; "mrai_hold"; "propagation" ]

let component c = function
  | "queueing" -> c.queueing
  | "processing" -> c.processing
  | "mrai_hold" -> c.mrai_hold
  | "propagation" -> c.propagation
  | name -> invalid_arg ("Attribution.component: unknown component " ^ name)

let dominant c =
  List.fold_left
    (fun best name -> if component c name > component c best then name else best)
    "queueing" component_names

type hop = { event : Trace.event; parts : components }
type router_stat = { router : int; residency : float; parts : components; hops : int }

type dest_attr = {
  dest : int;
  tail : float;
  dest_complete : bool;
  dest_parts : components;
  dest_path : hop list;
}

type tail_summary = { n_dests : int; p50 : float; p95 : float; p99 : float }

let no_tails = { n_dests = 0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }

type t = {
  t_fail : float;
  convergence_delay : float;
  complete : bool;
  totals : components;
  critical_path : hop list;
  per_router : router_stat list;
  aggregate : components;
  aggregate_by_router : (int * components) list;
  events : int;
  per_dest : dest_attr list;
  tails : tail_summary;
}

(* Decompose one event's hop latency — its time minus its cause's time
   ([gap]) — into the four components.  Whatever a constructor cannot
   account for from its own timestamps is propagation, so the parts sum
   to [gap] by construction and the chain telescopes exactly.  [floor]
   clips the event's own timestamps for root hops measured against
   [t_fail]: a cause chain reaching back before the failure (e.g. a
   damping suppression begun during warmup) must not attribute
   pre-failure waiting to the post-failure window. *)
let parts_of_event event ~gap ~floor =
  match event with
  | Trace.Processed { time; enqueued; started; _ } ->
    let enqueued = Float.max enqueued floor in
    let started = Float.max started floor in
    let queueing = started -. enqueued in
    let processing = time -. started in
    { queueing; processing; mrai_hold = 0.0; propagation = gap -. queueing -. processing }
  | Trace.Mrai_flush { time; ready; _ } ->
    let mrai_hold = time -. Float.max ready floor in
    { zero with mrai_hold; propagation = gap -. mrai_hold }
  | Trace.Update_sent _ | Trace.Update_delivered _ | Trace.Session_down _
  | Trace.Session_up _ | Trace.Fault _ | Trace.Router_failed _ ->
    { zero with propagation = gap }

(* Latest event by (time, id); [id] breaks ties towards the event
   recorded last, hence causally downstream. *)
let latest events =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some best ->
        let te = Trace.time_of e and tb = Trace.time_of best in
        if te > tb || (te = tb && Trace.id_of e > Trace.id_of best) then Some e else acc)
    None events

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let summarize_tails per_dest =
  match per_dest with
  | [] -> no_tails
  | dests ->
    let tails = Array.of_list (List.map (fun d -> d.tail) dests) in
    Array.sort Float.compare tails;
    {
      n_dests = Array.length tails;
      p50 = percentile tails 0.50;
      p95 = percentile tails 0.95;
      p99 = percentile tails 0.99;
    }

let analyze ~t_fail events =
  let post = List.filter (fun e -> Trace.time_of e >= t_fail) events in
  let n_events = List.length post in
  (* Index every event (warmup included): a post-failure event may be
     caused by a pre-failure one — e.g. a damping reuse of a route parked
     during warmup — and such a chain roots at the analysis boundary
     rather than counting as broken. *)
  let by_id = Hashtbl.create (2 * List.length events) in
  List.iter (fun e -> Hashtbl.replace by_id (Trace.id_of e) e) events;
  (* How [event] connects backwards: a true causal root, a chain that
     crosses the failure boundary (rooted at [t_fail]), a resolvable
     cause, or a cause evicted from the ring (chain broken). *)
  let resolve event =
    let cause = Trace.cause_of event in
    if cause = Trace.no_cause then `Root
    else
      match Hashtbl.find_opt by_id cause with
      | None -> `Broken
      | Some c -> if Trace.time_of c < t_fail then `Pre_failure else `Cause c
  in
  let gap_of event =
    match resolve event with
    | `Root | `Pre_failure -> Some (Trace.time_of event -. t_fail)
    | `Cause c -> Some (Trace.time_of event -. Trace.time_of c)
    | `Broken -> None
  in
  (* The terminal-parameterized walk: follow cause pointers from
     [terminal] back to a root, building the path root first.  The same
     walk serves the network-wide critical path and every destination's
     own tail. *)
  let walk_from terminal =
    let rec walk event acc =
      match resolve event with
      | `Broken -> (false, { event; parts = zero } :: acc)
      | `Root | `Pre_failure ->
        let gap = Trace.time_of event -. t_fail in
        (true, { event; parts = parts_of_event event ~gap ~floor:t_fail } :: acc)
      | `Cause c ->
        let gap = Trace.time_of event -. Trace.time_of c in
        walk c ({ event; parts = parts_of_event event ~gap ~floor:Float.neg_infinity } :: acc)
    in
    walk terminal []
  in
  let path_totals path =
    List.fold_left (fun acc (hop : hop) -> add acc hop.parts) zero path
  in
  match latest post with
  | None ->
    {
      t_fail;
      convergence_delay = 0.0;
      complete = true;
      totals = zero;
      critical_path = [];
      per_router = [];
      aggregate = zero;
      aggregate_by_router = [];
      events = 0;
      per_dest = [];
      tails = no_tails;
    }
  | Some terminal ->
    let complete, critical_path = walk_from terminal in
    let totals = path_totals critical_path in
    let per_router =
      let table = Hashtbl.create 16 in
      List.iter
        (fun (hop : hop) ->
          let r = Trace.router_of hop.event in
          let parts, hops =
            Option.value ~default:(zero, 0) (Hashtbl.find_opt table r)
          in
          Hashtbl.replace table r (add parts hop.parts, hops + 1))
        critical_path;
      Hashtbl.fold
        (fun router (parts, hops) acc ->
          { router; residency = total parts; parts; hops } :: acc)
        table []
      |> List.sort (fun a b ->
             match Float.compare b.residency a.residency with
             | 0 -> Int.compare a.router b.router
             | c -> c)
    in
    (* The aggregate decomposition — the same per-event split summed over
       every post-failure event — kept per router so the collapsed-stack
       export can show where the whole network's time went. *)
    let aggregate, aggregate_by_router =
      let table = Hashtbl.create 16 in
      let agg =
        List.fold_left
          (fun acc e ->
            match gap_of e with
            | None -> acc
            | Some gap ->
              let floor =
                match resolve e with
                | `Root | `Pre_failure -> t_fail
                | `Cause _ | `Broken -> Float.neg_infinity
              in
              let parts = parts_of_event e ~gap ~floor in
              let r = Trace.router_of e in
              Hashtbl.replace table r
                (add parts (Option.value ~default:zero (Hashtbl.find_opt table r)));
              add acc parts)
          zero post
      in
      let by_router =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold (fun r c acc -> (r, c) :: acc) table [])
      in
      (agg, by_router)
    in
    (* One attribution per destination: that destination's own terminal,
       walked back with the same parameterized walk, so each
       destination's components telescope to its own tail exactly. *)
    let per_dest =
      List.map
        (fun (dest, term) ->
          let dest_complete, dest_path = walk_from term in
          {
            dest;
            tail = Trace.time_of term -. t_fail;
            dest_complete;
            dest_parts = path_totals dest_path;
            dest_path;
          })
        (Trace.terminals_by_dest post)
      |> List.sort (fun a b ->
             match Float.compare b.tail a.tail with
             | 0 -> Int.compare a.dest b.dest
             | c -> c)
    in
    {
      t_fail;
      convergence_delay = Trace.time_of terminal -. t_fail;
      complete;
      totals;
      critical_path;
      per_router;
      aggregate;
      aggregate_by_router;
      events = n_events;
      per_dest;
      tails = summarize_tails per_dest;
    }

let of_trace ~t_fail trace = analyze ~t_fail (Trace.events trace)

let stragglers t = List.filter (fun d -> d.tail > t.tails.p95) t.per_dest

(* --- Collapsed-stack (flamegraph) export --------------------------------- *)

type flame_mode = Flame_aggregate | Flame_per_dest

(* inferno / speedscope collapsed format: semicolon-separated frames and
   an integer value per line.  Values are microseconds of simulated time,
   so rounding error is bounded by 0.5 us per emitted line. *)
let flame_value v = Printf.sprintf "%.0f" (Float.round (v *. 1e6))

let add_flame_lines buf ~prefix parts =
  List.iter
    (fun name ->
      let v = component parts name in
      if Float.round (v *. 1e6) >= 1.0 then
        Printf.bprintf buf "%s;%s %s\n" prefix name (flame_value v))
    component_names

let to_flamegraph ?(mode = Flame_aggregate) t =
  let buf = Buffer.create 4096 in
  (match mode with
  | Flame_aggregate ->
    List.iter
      (fun (router, parts) ->
        add_flame_lines buf ~prefix:(Printf.sprintf "router_%d" router) parts)
      t.aggregate_by_router
  | Flame_per_dest ->
    List.iter
      (fun d ->
        let table = Hashtbl.create 16 in
        let routers = ref [] in
        List.iter
          (fun (hop : hop) ->
            let r = Trace.router_of hop.event in
            (match Hashtbl.find_opt table r with
            | None ->
              routers := r :: !routers;
              Hashtbl.replace table r hop.parts
            | Some parts -> Hashtbl.replace table r (add parts hop.parts)))
          d.dest_path;
        List.iter
          (fun r ->
            add_flame_lines buf
              ~prefix:(Printf.sprintf "dest_%d;router_%d" d.dest r)
              (Hashtbl.find table r))
          (List.sort Int.compare !routers))
      (List.sort (fun a b -> Int.compare a.dest b.dest) t.per_dest));
  Buffer.contents buf

(* --- JSON ---------------------------------------------------------------- *)

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let buf_components buf c =
  Printf.bprintf buf
    "{\"queueing\":%s,\"processing\":%s,\"mrai_hold\":%s,\"propagation\":%s,\"total\":%s}"
    (json_float c.queueing) (json_float c.processing) (json_float c.mrai_hold)
    (json_float c.propagation)
    (json_float (total c))

let kind_of_event = function
  | Trace.Update_sent _ -> "update_sent"
  | Trace.Update_delivered _ -> "update_delivered"
  | Trace.Processed _ -> "processed"
  | Trace.Mrai_flush _ -> "mrai_flush"
  | Trace.Router_failed _ -> "router_failed"
  | Trace.Session_down _ -> "session_down"
  | Trace.Session_up _ -> "session_up"
  | Trace.Fault _ -> "fault"

let buf_per_dest buf t =
  Printf.bprintf buf
    "{\"dests\":%d,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s,\"destinations\":["
    t.tails.n_dests (json_float t.tails.p50) (json_float t.tails.p95)
    (json_float t.tails.p99);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"dest\":%d,\"tail\":%s,\"complete\":%b,\"hops\":%d,\"dominant\":\"%s\",\"parts\":"
        d.dest (json_float d.tail) d.dest_complete
        (List.length d.dest_path)
        (dominant d.dest_parts);
      buf_components buf d.dest_parts;
      Buffer.add_char buf '}')
    t.per_dest;
  Buffer.add_string buf "]}"

let to_json ?(top = 10) t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"schema\":\"bgp-attr/2\",\"t_fail\":%s,\"convergence_delay\":%s,\"complete\":%b,\"events\":%d,"
    (json_float t.t_fail)
    (json_float t.convergence_delay)
    t.complete t.events;
  Buffer.add_string buf "\"totals\":";
  buf_components buf t.totals;
  Buffer.add_string buf ",\"aggregate\":";
  buf_components buf t.aggregate;
  Buffer.add_string buf ",\"per_dest\":";
  buf_per_dest buf t;
  Buffer.add_string buf ",\"critical_path\":[";
  List.iteri
    (fun i hop ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"id\":%d,\"kind\":\"%s\",\"time\":%s,\"router\":%d,\"cause\":%d,\"parts\":"
        (Trace.id_of hop.event)
        (kind_of_event hop.event)
        (json_float (Trace.time_of hop.event))
        (Trace.router_of hop.event)
        (Trace.cause_of hop.event);
      buf_components buf hop.parts;
      Buffer.add_char buf '}')
    t.critical_path;
  Buffer.add_string buf "],\"per_router\":[";
  List.iteri
    (fun i stat ->
      if i < top then begin
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "{\"router\":%d,\"residency\":%s,\"hops\":%d,\"parts\":"
          stat.router (json_float stat.residency) stat.hops;
        buf_components buf stat.parts;
        Buffer.add_char buf '}'
      end)
    t.per_router;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- Per-trial sidecars ---------------------------------------------------- *)

module J = Json_lite

type sidecar_dest = {
  sd_dest : int;
  sd_tail : float;
  sd_complete : bool;
  sd_parts : components;
}

type sidecar = {
  sc_seed : int;
  sc_t_fail : float;
  sc_delay : float;
  sc_complete : bool;
  sc_events : int;
  sc_totals : components;
  sc_aggregate : components;
  sc_by_router : (int * components) list;
  sc_dests : sidecar_dest list;
  sc_violations : string list;
}

let sidecar_of ?(violations = []) ~seed t =
  {
    sc_seed = seed;
    sc_t_fail = t.t_fail;
    sc_delay = t.convergence_delay;
    sc_complete = t.complete;
    sc_events = t.events;
    sc_totals = t.totals;
    sc_aggregate = t.aggregate;
    sc_by_router = t.aggregate_by_router;
    sc_dests =
      List.map
        (fun d ->
          {
            sd_dest = d.dest;
            sd_tail = d.tail;
            sd_complete = d.dest_complete;
            sd_parts = d.dest_parts;
          })
        t.per_dest;
    sc_violations = violations;
  }

let sidecar_suffix = ".attr.json"
let sidecar_path trace = Filename.remove_extension trace ^ sidecar_suffix
let is_sidecar_path path = Filename.check_suffix path sidecar_suffix

let sidecar_to_json sc =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\"schema\":\"bgp-attr-sidecar/1\",\"seed\":%d,\"t_fail\":%s,\"delay\":%s,\"complete\":%b,\"events\":%d,"
    sc.sc_seed (json_float sc.sc_t_fail) (json_float sc.sc_delay) sc.sc_complete
    sc.sc_events;
  Buffer.add_string buf "\"totals\":";
  buf_components buf sc.sc_totals;
  Buffer.add_string buf ",\"aggregate\":";
  buf_components buf sc.sc_aggregate;
  Buffer.add_string buf ",\"by_router\":[";
  List.iteri
    (fun i (router, parts) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "[%d," router;
      buf_components buf parts;
      Buffer.add_char buf ']')
    sc.sc_by_router;
  Buffer.add_string buf "],\"dests\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"dest\":%d,\"tail\":%s,\"complete\":%b,\"parts\":" d.sd_dest
        (json_float d.sd_tail) d.sd_complete;
      buf_components buf d.sd_parts;
      Buffer.add_char buf '}')
    sc.sc_dests;
  Buffer.add_string buf "],\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (J.escape v))
    sc.sc_violations;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let components_of_json j =
  let o = J.obj j in
  let f key = J.float (J.field o key) in
  {
    queueing = f "queueing";
    processing = f "processing";
    mrai_hold = f "mrai_hold";
    propagation = f "propagation";
  }

let sidecar_of_json s =
  J.try_result @@ fun () ->
    let o = J.obj (J.parse s) in
    (match J.str (J.field o "schema") with
    | "bgp-attr-sidecar/1" -> ()
    | other -> raise (J.Bad (Printf.sprintf "unknown sidecar schema %S" other)));
    {
      sc_seed = J.int (J.field o "seed");
      sc_t_fail = J.float (J.field o "t_fail");
      sc_delay = J.float (J.field o "delay");
      sc_complete = J.bool (J.field o "complete");
      sc_events = J.int (J.field o "events");
      sc_totals = components_of_json (J.field o "totals");
      sc_aggregate = components_of_json (J.field o "aggregate");
      sc_by_router =
        List.map
          (fun pair ->
            match J.arr pair with
            | [ router; parts ] -> (J.int router, components_of_json parts)
            | _ -> raise (J.Bad "by_router: expected a [router, parts] pair"))
          (J.arr (J.field o "by_router"));
      sc_dests =
        List.map
          (fun dj ->
            let d = J.obj dj in
            {
              sd_dest = J.int (J.field d "dest");
              sd_tail = J.float (J.field d "tail");
              sd_complete = J.bool (J.field d "complete");
              sd_parts = components_of_json (J.field d "parts");
            })
          (J.arr (J.field o "dests"));
      sc_violations = List.map J.str (J.arr (J.field o "violations"));
    }

(* Atomic write (temp + rename): a live directory watcher must never see
   a half-written sidecar, and a crash must not leave one behind as if it
   were complete. *)
let write_sidecar path sc =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc (sidecar_to_json sc);
     output_char oc '\n'
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    raise e);
  Sys.rename tmp path

let read_sidecar path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match sidecar_of_json (String.trim contents) with
    | Ok sc -> Ok sc
    | Error msg -> Error (Printf.sprintf "%s: bad sidecar (%s)" path msg))

(* --- Multi-trial merge ---------------------------------------------------- *)

type trial = { trial_seed : int; attr : t }

type merged = {
  n_trials : int;
  mean_delay : float;
  merged_totals : components;
  merged_aggregate : components;
  pooled_tails : tail_summary;
  worst : (int * dest_attr) list;
}

let merge trials =
  match trials with
  | [] -> invalid_arg "Attribution.merge: no trials"
  | _ ->
    let n_trials = List.length trials in
    let mean_delay =
      List.fold_left (fun acc tr -> acc +. tr.attr.convergence_delay) 0.0 trials
      /. float_of_int n_trials
    in
    let merged_totals =
      List.fold_left (fun acc tr -> add acc tr.attr.totals) zero trials
    in
    let merged_aggregate =
      List.fold_left (fun acc tr -> add acc tr.attr.aggregate) zero trials
    in
    let pooled =
      List.concat_map
        (fun tr -> List.map (fun d -> (tr.trial_seed, d)) tr.attr.per_dest)
        trials
    in
    let pooled_tails =
      summarize_tails (List.map snd pooled)
    in
    let worst =
      List.sort
        (fun (sa, a) (sb, b) ->
          match Float.compare b.tail a.tail with
          | 0 -> ( match Int.compare sa sb with 0 -> Int.compare a.dest b.dest | c -> c)
          | c -> c)
        pooled
    in
    { n_trials; mean_delay; merged_totals; merged_aggregate; pooled_tails; worst }

let merged_to_json ?(top = 10) m =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"schema\":\"bgp-attr-merge/1\",\"trials\":%d,\"mean_delay\":%s," m.n_trials
    (json_float m.mean_delay);
  Buffer.add_string buf "\"totals\":";
  buf_components buf m.merged_totals;
  Buffer.add_string buf ",\"aggregate\":";
  buf_components buf m.merged_aggregate;
  Printf.bprintf buf
    ",\"pooled_tails\":{\"dests\":%d,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s},"
    m.pooled_tails.n_dests
    (json_float m.pooled_tails.p50)
    (json_float m.pooled_tails.p95)
    (json_float m.pooled_tails.p99);
  Buffer.add_string buf "\"stragglers\":[";
  List.iteri
    (fun i (seed, d) ->
      if i < top then begin
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf
          "{\"seed\":%d,\"dest\":%d,\"tail\":%s,\"dominant\":\"%s\",\"parts\":" seed
          d.dest (json_float d.tail)
          (dominant d.dest_parts);
        buf_components buf d.dest_parts;
        Buffer.add_char buf '}'
      end)
    m.worst;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- Text report --------------------------------------------------------- *)

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let pp_components ppf c =
  let whole = total c in
  Fmt.pf ppf
    "queueing %.4fs (%.1f%%) | processing %.4fs (%.1f%%) | mrai hold %.4fs (%.1f%%) | propagation %.4fs (%.1f%%)"
    c.queueing (pct c.queueing whole) c.processing (pct c.processing whole) c.mrai_hold
    (pct c.mrai_hold whole) c.propagation
    (pct c.propagation whole)

let pp ?(top = 5) ?(max_hops = 40) ppf t =
  Fmt.pf ppf "Convergence-delay attribution@.";
  Fmt.pf ppf "  failure injected at t=%.4f; converged %.4fs later%s@." t.t_fail
    t.convergence_delay
    (if t.complete then "" else "  [INCOMPLETE: trace dropped part of the chain]");
  Fmt.pf ppf "  critical path: %a@." pp_components t.totals;
  Fmt.pf ppf "  network-wide:  %a  (%d events)@." pp_components t.aggregate t.events;
  let hops = List.length t.critical_path in
  Fmt.pf ppf "  critical path (%d hops):@." hops;
  (* Keep the ends of a long path: the root explains onset, the tail
     explains the terminal delay. *)
  let head_n = max_hops - (max_hops / 2) in
  let tail_from = hops - (max_hops / 2) in
  List.iteri
    (fun i hop ->
      if hops <= max_hops || i < head_n || i >= tail_from then
        Fmt.pf ppf "    %a@." Trace.pp_event hop.event
      else if i = head_n then Fmt.pf ppf "    ... (%d hops elided)@." (tail_from - head_n))
    t.critical_path;
  if t.per_router <> [] then begin
    Fmt.pf ppf "  top routers by critical-path residency:@.";
    List.iteri
      (fun i stat ->
        if i < top then
          Fmt.pf ppf "    router %3d: %.4fs (%.1f%%) over %d hops — %a@." stat.router
            stat.residency
            (pct stat.residency t.convergence_delay)
            stat.hops pp_components stat.parts)
      t.per_router
  end

let pp_per_dest ?(top = 5) ppf t =
  Fmt.pf ppf "Per-destination convergence tails@.";
  Fmt.pf ppf "  %d destinations re-converged; tail p50 %.4fs, p95 %.4fs, p99 %.4fs@."
    t.tails.n_dests t.tails.p50 t.tails.p95 t.tails.p99;
  let late = stragglers t in
  if late = [] then Fmt.pf ppf "  no stragglers beyond the p95 tail@."
  else begin
    Fmt.pf ppf "  %d straggler(s) beyond the p95 tail:@." (List.length late);
    List.iteri
      (fun i d ->
        if i < top then
          Fmt.pf ppf "    dest %3d: tail %.4fs (%d hops, dominant %s) — %a@." d.dest
            d.tail
            (List.length d.dest_path)
            (dominant d.dest_parts) pp_components d.dest_parts)
      late
  end;
  Fmt.pf ppf "  slowest destinations:@.";
  List.iteri
    (fun i d ->
      if i < top then
        Fmt.pf ppf "    dest %3d: tail %.4fs%s — %a@." d.dest d.tail
          (if d.dest_complete then "" else " [INCOMPLETE]")
          pp_components d.dest_parts)
    t.per_dest

let pp_merged ?(top = 5) ppf m =
  Fmt.pf ppf "Merged attribution over %d traced trials@." m.n_trials;
  Fmt.pf ppf "  mean convergence delay %.4fs@." m.mean_delay;
  Fmt.pf ppf "  critical paths: %a@." pp_components m.merged_totals;
  Fmt.pf ppf "  network-wide:   %a@." pp_components m.merged_aggregate;
  Fmt.pf ppf "  pooled tails over %d (trial, dest) pairs: p50 %.4fs, p95 %.4fs, p99 %.4fs@."
    m.pooled_tails.n_dests m.pooled_tails.p50 m.pooled_tails.p95 m.pooled_tails.p99;
  Fmt.pf ppf "  worst straggler destinations across the sweep:@.";
  List.iteri
    (fun i (seed, d) ->
      if i < top then
        Fmt.pf ppf "    seed %3d dest %3d: tail %.4fs (dominant %s)@." seed d.dest d.tail
          (dominant d.dest_parts))
    m.worst
