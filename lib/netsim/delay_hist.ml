(* Geometric layout constants.  Changing any of these is a schema change
   for every serialized histogram, so they are deliberately not
   configurable. *)
let lo = 1e-6
let per_decade = 64
let decades = 10
let n_log = per_decade * decades
let n_buckets = n_log + 2 (* underflow + log buckets + overflow *)
let hi = lo *. (10.0 ** float_of_int decades)

type t = { mutable n : int; counts : int array }

let create () = { n = 0; counts = Array.make n_buckets 0 }

let bucket_of v =
  if v <= lo then 0
  else if v > hi then n_buckets - 1
  else
    let i =
      int_of_float (Float.ceil (float_of_int per_decade *. Float.log10 (v /. lo)))
    in
    Stdlib.max 1 (Stdlib.min n_log i)

let add t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1

let count t = t.n
let counts t = Array.copy t.counts

let merge_into ~into t =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.n <- into.n + t.n

(* Geometric midpoint of log bucket [i]: lo * 10^((i - 0.5) / per_decade). *)
let midpoint i = lo *. (10.0 ** ((float_of_int i -. 0.5) /. float_of_int per_decade))

let percentile t q =
  if t.n = 0 then 0.0
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min t.n (int_of_float (Float.ceil (q *. float_of_int t.n))))
    in
    let bucket = ref 0 in
    let seen = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           bucket := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !bucket = 0 then 0.0
    else if !bucket = n_buckets - 1 then hi
    else midpoint !bucket
  end

let to_json t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "{\"n\":%d,\"buckets\":[" t.n;
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Printf.bprintf buf "[%d,%d]" i c
      end)
    t.counts;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let of_json json =
  let module J = Json_lite in
  let o = J.obj json in
  let t = create () in
  t.n <- J.int (J.field o "n");
  List.iter
    (fun pair ->
      match J.arr pair with
      | [ i; c ] ->
        let i = J.int i in
        if i < 0 || i >= n_buckets then raise (J.Bad "bucket index out of range");
        t.counts.(i) <- J.int c
      | _ -> raise (J.Bad "expected a [bucket, count] pair"))
    (J.arr (J.field o "buckets"));
  t
