(** Per-run telemetry: counter/gauge registry, periodic per-router
    time-series probes, and machine-readable exporters.

    One instance is created per simulation run (see {!Runner.run}) so that
    enabling telemetry never couples trials: probes only {e read} router
    state — they draw no random numbers and schedule nothing the routing
    machinery can observe — so every routing-relevant result field is
    bit-identical with telemetry on or off.  The network layer registers
    getter-backed counters at build time; reads are deferred until a
    snapshot is taken, so registration costs one closure per metric and
    the steady-state overhead of a registered counter is zero. *)

(** {1 Configuration} *)

type config = {
  probe_interval : float;  (** seconds of simulated time between probes *)
  probe_warmup : bool;  (** also probe during the warm-up phase *)
  max_ticks : int;  (** cap on recorded probe ticks (memory bound) *)
}

val config :
  ?probe_interval:float -> ?probe_warmup:bool -> ?max_ticks:int -> unit -> config
(** Defaults: 0.5 s interval, no warm-up probing, 4096 ticks.  Probes
    beyond [max_ticks] are counted as dropped rather than recorded.
    @raise Invalid_argument if [probe_interval <= 0] or [max_ticks <= 0]. *)

(** {1 Registry} *)

type kind = Counter | Gauge

type t

val create : config -> t
val conf : t -> config

val register : t -> name:string -> kind:kind -> (unit -> float) -> unit
(** Register a named metric backed by a getter; the value is read lazily
    at snapshot time.  @raise Invalid_argument on a duplicate name. *)

val counters : t -> (string * kind * float) list
(** Snapshot of every registered metric, sorted by name. *)

val counter_value : t -> string -> float option

(** {1 Probe recording} *)

type row = {
  router : int;
  queue_len : int;
  unfinished_work : float;  (** queue length x mean processing delay, s *)
  mrai_level : int;
  mrai_transitions : int;
  rib_size : int;
  rib_changes : int;
}

val record_tick : t -> time:float -> row array -> unit
(** Record one probe tick (one row per live router).  Ticks beyond
    [max_ticks] are dropped and counted. *)

val ticks : t -> int
val dropped_ticks : t -> int

val set_fail_time : t -> float -> unit
(** Stamp the failure-injection time for the report. *)

(** {1 Memory accounting} *)

type shard_memory = {
  shard : int;
  routers : int;
  rib_entries : int;  (** Adj-RIB-In entries across the shard's routers *)
  rib_bytes : int;  (** estimated, from [Rib.approx_bytes]'s word model *)
  path_nodes : int;  (** interned path nodes in the shard's hashcons table *)
  path_bytes : int;
  sched_max_live : int;  (** event-slab occupancy high-water *)
  sched_slab_cap : int;  (** event-slab capacity *)
}

type memory = {
  per_shard : shard_memory list;  (** sorted by shard; one entry
      (pseudo-shard 0) for a sequential run *)
  rib_bytes_total : int;
  path_bytes_total : int;
  path_sharing : float;
      (** naive per-path hop storage over actual shared-spine storage *)
  trace_len : int;  (** events held in the trace ring *)
  trace_cap : int;
  trace_dropped : int;
  trace_spilled : int;
}
(** Every field is an estimate computed from simulated state alone (fixed
    word models, entry counts) — deterministic for a given run, hence safe
    inside the structurally-compared {!report}.  Wall-clock and GC data
    live in [Bgp_engine.Profile], never here. *)

val set_memory : t -> memory -> unit
(** Attach the end-of-run memory snapshot (see [Network.memory_snapshot]);
    the runner calls this at finalize. *)

(** {1 Report} *)

type sample = { time : float; row : row }
type series_point = { time : float; value : float }

type report = {
  interval : float;
  t_fail : float option;
  probes : int;  (** ticks recorded *)
  dropped : int;  (** ticks dropped by the [max_ticks] cap *)
  samples : sample array;  (** per-router series, time-major *)
  progress : series_point array;
      (** network-wide convergence progress: fraction of surviving routers
          whose best routes were already final; nondecreasing, ends at 1 *)
  counters : (string * kind * float) list;
  memory : memory option;  (** end-of-run snapshot, if one was attached *)
}
(** Plain data only — safe to compare structurally, [Marshal] and send
    across domains. *)

val report : t -> report

(** {1 Exporters} *)

val series_csv : report -> string
val progress_csv : report -> string
val counters_csv : report -> string
val series_jsonl : report -> string
val counters_jsonl : report -> string

val report_json : report -> string
(** Whole-run summary (schema ["bgp-telemetry/1"]): probe metadata,
    progress series and counter snapshot, without the bulky per-router
    samples. *)

val export : dir:string -> ?prefix:string -> report -> string list
(** Write all six artifacts into [dir] (created if missing), each file
    name prefixed with [prefix]; returns the paths written. *)

val pp_summary : Format.formatter -> report -> unit
(** One-line human summary (probe count, peak queue work, max MRAI
    level). *)

val pp_memory : Format.formatter -> memory -> unit
(** One-line human summary of the memory snapshot (RIB/path bytes,
    sharing ratio, trace occupancy). *)
