module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Topology = Bgp_topology.Topology
module Failure = Bgp_topology.Failure

type fault =
  | Partition of { side : int list; heal_after : float }
  | Session_reset of { u : int; v : int; recover_after : float }
  | Gray_link of { u : int; v : int; loss : float; duration : float }
  | Link_jitter of { u : int; v : int; factor : float; duration : float }
  | Clock_skew of { router : int; skew : float }

type event = { at : float; fault : fault }
type schedule = event list

let kind_of_fault = function
  | Partition _ -> "partition"
  | Session_reset _ -> "session_reset"
  | Gray_link _ -> "gray_link"
  | Link_jitter _ -> "link_jitter"
  | Clock_skew _ -> "clock_skew"

let kinds schedule =
  List.sort_uniq String.compare (List.map (fun e -> kind_of_fault e.fault) schedule)

let pp_fault ppf = function
  | Partition { side; heal_after } ->
    Fmt.pf ppf "partition [%a] heal %.3f" Fmt.(list ~sep:comma int) side heal_after
  | Session_reset { u; v; recover_after } ->
    Fmt.pf ppf "session_reset %d-%d recover %.3f" u v recover_after
  | Gray_link { u; v; loss; duration } ->
    Fmt.pf ppf "gray_link %d-%d loss %.3f for %.3f" u v loss duration
  | Link_jitter { u; v; factor; duration } ->
    Fmt.pf ppf "link_jitter %d-%d x%.3f for %.3f" u v factor duration
  | Clock_skew { router; skew } -> Fmt.pf ppf "clock_skew %d +%.4f" router skew

let pp_event ppf e = Fmt.pf ppf "@[+%.3f %a@]" e.at pp_fault e.fault

(* --- Validation ---------------------------------------------------------- *)

let validate ~n ~horizon schedule =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_router r = r >= 0 && r < n in
  let check_link u v = check_router u && check_router v && u < v in
  let rec go prev = function
    | [] -> Ok ()
    | { at; fault } :: rest ->
      if at < prev then err "events not sorted: %.3f after %.3f" at prev
      else if at < 0.0 then err "event predates t_fail: %.3f" at
      else if at > horizon then err "event past horizon: %.3f > %.3f" at horizon
      else (
        match fault with
        | Partition { side; heal_after } ->
          if side = [] then err "partition: empty side"
          else if List.length side >= n then err "partition: side covers the network"
          else if not (List.for_all check_router side) then
            err "partition: router out of range"
          else if List.sort_uniq Int.compare side <> side then
            err "partition: side not sorted-unique"
          else if heal_after <= 0.0 then err "partition: must heal (heal_after <= 0)"
          else if at +. heal_after > horizon then
            err "partition: heals past horizon (%.3f)" (at +. heal_after)
          else go at rest
        | Session_reset { u; v; recover_after } ->
          if not (check_link u v) then err "session_reset: bad link %d-%d" u v
          else if recover_after <= 0.0 then err "session_reset: recover_after <= 0"
          else if at +. recover_after > horizon then
            err "session_reset: recovers past horizon"
          else go at rest
        | Gray_link { u; v; loss; duration } ->
          if not (check_link u v) then err "gray_link: bad link %d-%d" u v
          else if not (loss > 0.0 && loss < 1.0) then
            err "gray_link: loss %.3f outside (0, 1)" loss
          else if duration <= 0.0 then err "gray_link: duration <= 0"
          else if at +. duration > horizon then err "gray_link: heals past horizon"
          else go at rest
        | Link_jitter { u; v; factor; duration } ->
          if not (check_link u v) then err "link_jitter: bad link %d-%d" u v
          else if factor <= 0.0 then err "link_jitter: factor <= 0"
          else if duration <= 0.0 then err "link_jitter: duration <= 0"
          else if at +. duration > horizon then err "link_jitter: ends past horizon"
          else go at rest
        | Clock_skew { router; skew } ->
          if not (check_router router) then err "clock_skew: router out of range"
          else if skew < 0.0 then err "clock_skew: negative skew"
          else go at rest)
  in
  go 0.0 schedule

(* --- Seed-derived generation --------------------------------------------- *)

(* Contiguous partition side: a BFS ball of [size] surviving routers over
   the session graph, from a random surviving start.  Adjacency lists are
   sorted and the queue is FIFO, so the ball is a pure function of the
   RNG draw. *)
let bfs_side ~rng ~n ~links ~survivors ~size =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    links;
  Array.iteri (fun i l -> adj.(i) <- List.sort Int.compare l) adj;
  let start = Rng.choose rng (Array.of_list survivors) in
  let seen = Array.make n false in
  seen.(start) <- true;
  let queue = Queue.create () in
  Queue.add start queue;
  let side = ref [] in
  let count = ref 0 in
  while !count < size && not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    side := r :: !side;
    incr count;
    List.iter
      (fun peer ->
        if not seen.(peer) then begin
          seen.(peer) <- true;
          Queue.add peer queue
        end)
      adj.(r)
  done;
  List.sort Int.compare !side

let generate ~rng ~topo ~failure ?(max_events = 5) ~horizon () =
  let n = Topology.num_routers topo in
  let survivors = Failure.survivors failure in
  let link_order u v = if u <= v then (u, v) else (v, u) in
  let live_links =
    List.filter_map
      (fun (u, v, _) ->
        if Failure.is_failed failure u || Failure.is_failed failure v then None
        else Some (link_order u v))
      (Network.sessions_of_topology topo)
  in
  let links = Array.of_list live_links in
  if survivors = [] || horizon <= 0.0 then []
  else begin
    let onset () = Rng.uniform rng ~lo:0.0 ~hi:(horizon *. 0.5) in
    (* Durations fit inside the horizon so every fault that must heal
       does ([validate] enforces it; the property tests pin it). *)
    let span at lo cap =
      let hi = Float.min cap (horizon -. at) in
      Rng.uniform rng ~lo:(Float.min lo hi) ~hi
    in
    let pick_link () = links.(Rng.int rng (Array.length links)) in
    (* [at] is the event's FINAL onset: correlated companions get their
       shifted onset before drawing, so spans always fit the horizon. *)
    let fault_at at =
      let fault =
        if Array.length links = 0 then
          (* Degenerate survivor set (no live sessions): only router-local
             faults remain expressible. *)
          Clock_skew
            {
              router = Rng.choose rng (Array.of_list survivors);
              skew = Rng.uniform rng ~lo:0.001 ~hi:0.02;
            }
        else (
          match Rng.int rng 5 with
          | 0 ->
            let max_side = Stdlib.max 1 (List.length survivors / 3) in
            let size = 1 + Rng.int rng max_side in
            let side = bfs_side ~rng ~n ~links:live_links ~survivors ~size in
            Partition { side; heal_after = span at 0.25 4.0 }
          | 1 ->
            let u, v = pick_link () in
            Session_reset { u; v; recover_after = span at 0.1 2.0 }
          | 2 ->
            let u, v = pick_link () in
            Gray_link
              {
                u;
                v;
                loss = Rng.uniform rng ~lo:0.05 ~hi:0.5;
                duration = span at 0.25 4.0;
              }
          | 3 ->
            let u, v = pick_link () in
            Link_jitter
              {
                u;
                v;
                factor = Rng.uniform rng ~lo:0.25 ~hi:4.0;
                duration = span at 0.25 4.0;
              }
          | _ ->
            Clock_skew
              {
                router = Rng.choose rng (Array.of_list survivors);
                skew = Rng.uniform rng ~lo:0.001 ~hi:0.02;
              })
      in
      { at; fault }
    in
    let one_fault () = fault_at (onset ()) in
    let n_events = 1 + Rng.int rng (Stdlib.max 1 max_events) in
    let base = List.init n_events (fun _ -> one_fault ()) in
    (* Correlated bursts: some events spawn a companion shortly after —
       the multi-event schedules the paper's single-shot failure model
       never exercises. *)
    let correlated =
      List.concat_map
        (fun e ->
          if Rng.float rng < 0.25 && e.at +. 0.05 <= horizon *. 0.5 then
            [ e; fault_at (e.at +. Rng.uniform rng ~lo:0.005 ~hi:0.05) ]
          else [ e ])
        base
    in
    List.stable_sort (fun a b -> Float.compare a.at b.at) correlated
  end

(* --- Shrinking ----------------------------------------------------------- *)

(* Structure-preserving shrinks: every candidate is a valid schedule
   whenever the input was (subsets keep sortedness; the per-fault
   mutations shrink strictly positive spans towards smaller strictly
   positive spans).  Used by the QCheck shrinker and as the final
   polish pass after ddmin. *)
let shrink_fault = function
  | Partition { side; heal_after } ->
    let halves =
      match side with
      | [] | [ _ ] -> []
      | side ->
        let k = (List.length side + 1) / 2 in
        [ Partition { side = List.filteri (fun i _ -> i < k) side; heal_after } ]
    in
    halves
    @ (if heal_after > 0.01 then [ Partition { side; heal_after = heal_after /. 2.0 } ]
       else [])
  | Session_reset { u; v; recover_after } ->
    if recover_after > 0.01 then
      [ Session_reset { u; v; recover_after = recover_after /. 2.0 } ]
    else []
  | Gray_link { u; v; loss; duration } ->
    (if loss > 0.01 then [ Gray_link { u; v; loss = loss /. 2.0; duration } ] else [])
    @
    if duration > 0.01 then [ Gray_link { u; v; loss; duration = duration /. 2.0 } ]
    else []
  | Link_jitter { u; v; factor; duration } ->
    (if Float.abs (factor -. 1.0) > 0.01 then
       [ Link_jitter { u; v; factor = (factor +. 1.0) /. 2.0; duration } ]
     else [])
    @
    if duration > 0.01 then [ Link_jitter { u; v; factor; duration = duration /. 2.0 } ]
    else []
  | Clock_skew { router; skew } ->
    if skew > 0.0005 then [ Clock_skew { router; skew = skew /. 2.0 } ] else []

let shrink schedule =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) schedule) schedule
  in
  let mutations =
    List.concat
      (List.mapi
         (fun i e ->
           List.map
             (fun fault ->
               List.mapi (fun j e' -> if i = j then { e' with fault } else e') schedule)
             (shrink_fault e.fault))
         schedule)
  in
  drops @ mutations

(* --- JSON ---------------------------------------------------------------- *)

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let fault_to_json buf = function
  | Partition { side; heal_after } ->
    Printf.bprintf buf "\"kind\":\"partition\",\"side\":[";
    List.iteri
      (fun i r -> Printf.bprintf buf "%s%d" (if i > 0 then "," else "") r)
      side;
    Printf.bprintf buf "],\"heal_after\":%s" (json_float heal_after)
  | Session_reset { u; v; recover_after } ->
    Printf.bprintf buf "\"kind\":\"session_reset\",\"u\":%d,\"v\":%d,\"recover_after\":%s"
      u v (json_float recover_after)
  | Gray_link { u; v; loss; duration } ->
    Printf.bprintf buf "\"kind\":\"gray_link\",\"u\":%d,\"v\":%d,\"loss\":%s,\"duration\":%s"
      u v (json_float loss) (json_float duration)
  | Link_jitter { u; v; factor; duration } ->
    Printf.bprintf buf
      "\"kind\":\"link_jitter\",\"u\":%d,\"v\":%d,\"factor\":%s,\"duration\":%s" u v
      (json_float factor) (json_float duration)
  | Clock_skew { router; skew } ->
    Printf.bprintf buf "\"kind\":\"clock_skew\",\"router\":%d,\"skew\":%s" router
      (json_float skew)

let to_json schedule =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"at\":%s," (json_float e.at);
      fault_to_json buf e.fault;
      Buffer.add_char buf '}')
    schedule;
  Buffer.add_string buf "]";
  Buffer.contents buf

(* --- Installation -------------------------------------------------------- *)

let representative = function
  | Partition { side; _ } -> ( match side with r :: _ -> r | [] -> 0)
  | Session_reset { u; _ } | Gray_link { u; _ } | Link_jitter { u; _ } -> u
  | Clock_skew { router; _ } -> router

let record ?cause ~label net fault =
  Network.record_fault net ~label ~router:(representative fault) ?cause ()

let apply_fault net ~sched e =
  let fault_id = record ~label:(kind_of_fault e.fault) net e.fault in
  match e.fault with
  | Partition { side; heal_after } ->
    let side_arr = Array.make (Network.num_routers net) false in
    List.iter (fun r -> side_arr.(r) <- true) side;
    (* The cut-set is computed at onset and reused at heal time, so we
       restore exactly the links we severed even if the network changed
       in between. *)
    let cut = Network.cross_sessions net ~side:side_arr in
    List.iter (fun (u, v) -> Network.sever_link ~cause:fault_id net ~u ~v) cut;
    ignore
      (Sched.schedule sched ~delay:heal_after (fun () ->
           let heal_id = record ~label:"partition_heal" ~cause:fault_id net e.fault in
           List.iter (fun (u, v) -> Network.restore_link ~cause:heal_id net ~u ~v) cut))
  | Session_reset { u; v; recover_after } ->
    Network.sever_link ~cause:fault_id net ~u ~v;
    ignore
      (Sched.schedule sched ~delay:recover_after (fun () ->
           let up_id = record ~label:"session_recover" ~cause:fault_id net e.fault in
           Network.restore_link ~cause:up_id net ~u ~v))
  | Gray_link { u; v; loss; duration } ->
    Network.set_link_loss net ~u ~v loss;
    ignore
      (Sched.schedule sched ~delay:duration (fun () ->
           ignore (record ~label:"gray_heal" ~cause:fault_id net e.fault);
           Network.set_link_loss net ~u ~v 0.0))
  | Link_jitter { u; v; factor; duration } ->
    Network.set_link_factor net ~u ~v factor;
    ignore
      (Sched.schedule sched ~delay:duration (fun () ->
           ignore (record ~label:"jitter_end" ~cause:fault_id net e.fault);
           Network.set_link_factor net ~u ~v 1.0))
  | Clock_skew { router; skew } -> Network.set_clock_skew net ~router skew

let install net ~sched schedule =
  if not (Network.faults_enabled net) then
    invalid_arg "Fault_injector.install: call Network.enable_faults first";
  List.iter
    (fun e -> ignore (Sched.schedule sched ~delay:e.at (fun () -> apply_fault net ~sched e)))
    schedule

(* --- Sharded installation ------------------------------------------------- *)

let lookahead ~link_delay schedule =
  let min_factor =
    List.fold_left
      (fun acc e ->
        match e.fault with
        | Link_jitter { factor; _ } -> Float.min acc factor
        | Partition _ | Session_reset _ | Gray_link _ | Clock_skew _ -> acc)
      1.0 schedule
  in
  Float.max 1e-6 (link_delay *. Float.min 1.0 min_factor)

(* Preassigned trace ids for replicated fault events, in a range no
   strided per-router id can reach (see [Network.build_sharded]): every
   shard knows each onset's id without recording it, so heal events can
   cause-chain to their onset from any shard. *)
let fault_id_base = 1 lsl 50

let apply_fault_replica net ~shard e ~onset_id ~heal_id =
  let sched = Network.shard_sched net shard in
  let rec_replica ~id ~label ~cause =
    Network.record_fault_replica net ~shard ~id ~label
      ~router:(representative e.fault) ~cause
  in
  rec_replica ~id:onset_id ~label:(kind_of_fault e.fault) ~cause:Trace.no_cause;
  match e.fault with
  | Partition { side; heal_after } ->
    let side_arr = Array.make (Network.num_routers net) false in
    List.iter (fun r -> side_arr.(r) <- true) side;
    let cut = Network.cross_sessions net ~side:side_arr in
    List.iter
      (fun (u, v) -> Network.sever_link_sharded net ~shard ~cause:onset_id ~u ~v)
      cut;
    ignore
      (Sched.schedule sched ~delay:heal_after (fun () ->
           Network.note_replica net ~shard;
           rec_replica ~id:heal_id ~label:"partition_heal" ~cause:onset_id;
           List.iter
             (fun (u, v) -> Network.restore_link_sharded net ~shard ~cause:heal_id ~u ~v)
             cut))
  | Session_reset { u; v; recover_after } ->
    Network.sever_link_sharded net ~shard ~cause:onset_id ~u ~v;
    ignore
      (Sched.schedule sched ~delay:recover_after (fun () ->
           Network.note_replica net ~shard;
           rec_replica ~id:heal_id ~label:"session_recover" ~cause:onset_id;
           Network.restore_link_sharded net ~shard ~cause:heal_id ~u ~v))
  | Gray_link { u; v; loss; duration } ->
    Network.set_link_loss_sharded net ~shard ~u ~v loss;
    ignore
      (Sched.schedule sched ~delay:duration (fun () ->
           Network.note_replica net ~shard;
           rec_replica ~id:heal_id ~label:"gray_heal" ~cause:onset_id;
           Network.set_link_loss_sharded net ~shard ~u ~v 0.0))
  | Link_jitter { u; v; factor; duration } ->
    Network.set_link_factor_sharded net ~shard ~u ~v factor;
    ignore
      (Sched.schedule sched ~delay:duration (fun () ->
           Network.note_replica net ~shard;
           rec_replica ~id:heal_id ~label:"jitter_end" ~cause:onset_id;
           Network.set_link_factor_sharded net ~shard ~u ~v 1.0))
  | Clock_skew { router; skew } -> Network.set_clock_skew_sharded net ~shard ~router skew

let install_sharded net ~t_fail schedule =
  if not (Network.faults_enabled net) then
    invalid_arg "Fault_injector.install_sharded: call Network.enable_faults first";
  let k = Network.shard_count net in
  (* Every shard executes every fault event at the same time, mutating
     only its replica tables; [note_replica] lets the executed-events
     count normalize the k-fold duplication away. *)
  List.iteri
    (fun idx e ->
      let onset_id = fault_id_base + (2 * idx) in
      let heal_id = onset_id + 1 in
      for s = 0 to k - 1 do
        ignore
          (Sched.schedule_at (Network.shard_sched net s) ~time:(t_fail +. e.at)
             (fun () ->
               Network.note_replica net ~shard:s;
               apply_fault_replica net ~shard:s e ~onset_id ~heal_id))
      done)
    schedule
