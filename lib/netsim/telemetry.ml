(* Telemetry: per-run counter/gauge registry, periodic per-router
   time-series probes, and CSV/JSONL/JSON exporters.

   An instance is created per Runner.run (never shared between trials),
   so enabling telemetry keeps every run a pure function of its seed:
   probes read router state, they never draw from an RNG or mutate the
   network.  The network layer registers getter-backed counters at build
   time and the runner drives the probe loop; this module owns only the
   data model and its serializations. *)

type config = {
  probe_interval : float;
  probe_warmup : bool;
  max_ticks : int;
}

let config ?(probe_interval = 0.5) ?(probe_warmup = false) ?(max_ticks = 4096) () =
  if probe_interval <= 0.0 then
    invalid_arg "Telemetry.config: probe_interval must be > 0";
  if max_ticks <= 0 then invalid_arg "Telemetry.config: max_ticks must be > 0";
  { probe_interval; probe_warmup; max_ticks }

type kind = Counter | Gauge

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

type row = {
  router : int;
  queue_len : int;
  unfinished_work : float;
  mrai_level : int;
  mrai_transitions : int;
  rib_size : int;
  rib_changes : int;
}

type sample = { time : float; row : row }

type tick = { t : float; rows : row array }

type metric = { mkind : kind; read : unit -> float }

(* Memory accounting: estimated sizes from fixed word models (see
   Rib.approx_bytes / Path.table_stats), so every field is a pure
   function of simulated state — the same across jobs and safe to
   compare structurally.  One [shard_memory] per shard scheduler
   (pseudo-shard 0 for a sequential run). *)
type shard_memory = {
  shard : int;
  routers : int;
  rib_entries : int;  (** Adj-RIB-In entries across the shard's routers *)
  rib_bytes : int;
  path_nodes : int;  (** interned path nodes in the shard's table *)
  path_bytes : int;
  sched_max_live : int;  (** slab occupancy high-water *)
  sched_slab_cap : int;
}

type memory = {
  per_shard : shard_memory list;  (** sorted by shard *)
  rib_bytes_total : int;
  path_bytes_total : int;
  path_sharing : float;  (** naive hop storage / shared-spine storage *)
  trace_len : int;
  trace_cap : int;
  trace_dropped : int;
  trace_spilled : int;
}

type t = {
  conf : config;
  metrics : (string, metric) Hashtbl.t;
  mutable ticks_rev : tick list;
  mutable n_ticks : int;
  mutable dropped : int;
  mutable t_fail : float option;
  mutable memory : memory option;
}

let create conf =
  {
    conf;
    metrics = Hashtbl.create 32;
    ticks_rev = [];
    n_ticks = 0;
    dropped = 0;
    t_fail = None;
    memory = None;
  }

let set_memory t m = t.memory <- Some m

let conf t = t.conf

(* --- Registry ----------------------------------------------------------- *)

let register t ~name ~kind read =
  if Hashtbl.mem t.metrics name then
    invalid_arg (Printf.sprintf "Telemetry.register: duplicate metric %S" name);
  Hashtbl.replace t.metrics name { mkind = kind; read }

let counters t =
  Hashtbl.fold (fun name m acc -> (name, m.mkind, m.read ()) :: acc) t.metrics []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let counter_value t name =
  Option.map (fun m -> m.read ()) (Hashtbl.find_opt t.metrics name)

(* --- Probe recording ----------------------------------------------------- *)

let record_tick t ~time rows =
  if t.n_ticks >= t.conf.max_ticks then t.dropped <- t.dropped + 1
  else begin
    t.ticks_rev <- { t = time; rows } :: t.ticks_rev;
    t.n_ticks <- t.n_ticks + 1
  end

let ticks t = t.n_ticks
let dropped_ticks t = t.dropped
let set_fail_time t time = t.t_fail <- Some time

(* --- Report -------------------------------------------------------------- *)

type series_point = { time : float; value : float }

type report = {
  interval : float;
  t_fail : float option;
  probes : int;
  dropped : int;
  samples : sample array;
  progress : series_point array;
  counters : (string * kind * float) list;
  memory : memory option;
}

(* Convergence progress at tick k: the fraction of end-of-run survivors
   whose cumulative Loc-RIB revision count had already reached its final
   value — i.e. whose best routes were final.  The counter is monotone,
   so the series is nondecreasing and ends at 1. *)
let progress_of ticks =
  match List.rev ticks with
  | [] -> [||]
  | last :: _ ->
    let final = Hashtbl.create 256 in
    Array.iter (fun r -> Hashtbl.replace final r.router r.rib_changes) last.rows;
    let base = Array.length last.rows in
    Array.of_list
      (List.map
         (fun tick ->
           let settled =
             Array.fold_left
               (fun acc r ->
                 match Hashtbl.find_opt final r.router with
                 | Some f when r.rib_changes = f -> acc + 1
                 | Some _ | None -> acc)
               0 tick.rows
           in
           {
             time = tick.t;
             value = (if base = 0 then 1.0 else float_of_int settled /. float_of_int base);
           })
         ticks)

let report t =
  let ticks = List.rev t.ticks_rev in
  let samples =
    Array.of_list
      (List.concat_map
         (fun tick -> Array.to_list (Array.map (fun row -> { time = tick.t; row }) tick.rows))
         ticks)
  in
  {
    interval = t.conf.probe_interval;
    t_fail = t.t_fail;
    probes = t.n_ticks;
    dropped = t.dropped;
    samples;
    progress = progress_of ticks;
    counters = counters t;
    memory = t.memory;
  }

(* --- Exporters ----------------------------------------------------------- *)

let series_header = "time,router,queue_len,unfinished_work,mrai_level,mrai_transitions,rib_size,rib_changes"

let series_csv r =
  let buf = Buffer.create (64 * (1 + Array.length r.samples)) in
  Buffer.add_string buf series_header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (s : sample) ->
      Printf.bprintf buf "%.6g,%d,%d,%.6g,%d,%d,%d,%d\n" s.time s.row.router
        s.row.queue_len s.row.unfinished_work s.row.mrai_level s.row.mrai_transitions
        s.row.rib_size s.row.rib_changes)
    r.samples;
  Buffer.contents buf

let progress_csv r =
  let buf = Buffer.create (24 * (1 + Array.length r.progress)) in
  Buffer.add_string buf "time,fraction_final\n";
  Array.iter (fun (p : series_point) -> Printf.bprintf buf "%.6g,%.6g\n" p.time p.value) r.progress;
  Buffer.contents buf

let counters_csv r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "name,kind,value\n";
  List.iter
    (fun (name, kind, v) -> Printf.bprintf buf "%s,%s,%.6g\n" name (kind_name kind) v)
    r.counters;
  Buffer.contents buf

(* Hand-rolled JSON emission: the values are identifiers and numbers, so
   escaping only needs to cover the metric names we generate. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let series_jsonl r =
  let buf = Buffer.create (96 * (1 + Array.length r.samples)) in
  Array.iter
    (fun (s : sample) ->
      Printf.bprintf buf
        "{\"time\":%s,\"router\":%d,\"queue_len\":%d,\"unfinished_work\":%s,\"mrai_level\":%d,\"mrai_transitions\":%d,\"rib_size\":%d,\"rib_changes\":%d}\n"
        (json_float s.time) s.row.router s.row.queue_len
        (json_float s.row.unfinished_work)
        s.row.mrai_level s.row.mrai_transitions s.row.rib_size s.row.rib_changes)
    r.samples;
  Buffer.contents buf

let counters_jsonl r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, kind, v) ->
      Printf.bprintf buf "{\"name\":%s,\"kind\":%s,\"value\":%s}\n" (json_string name)
        (json_string (kind_name kind))
        (json_float v))
    r.counters;
  Buffer.contents buf

let report_json r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"bgp-telemetry/1\",\n";
  Printf.bprintf buf "  \"probe_interval\": %s,\n" (json_float r.interval);
  (match r.t_fail with
  | None -> Buffer.add_string buf "  \"t_fail\": null,\n"
  | Some t -> Printf.bprintf buf "  \"t_fail\": %s,\n" (json_float t));
  Printf.bprintf buf "  \"probes\": %d,\n  \"dropped\": %d,\n  \"samples\": %d,\n"
    r.probes r.dropped (Array.length r.samples);
  Buffer.add_string buf "  \"progress\": [";
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "[%s, %s]" (json_float p.time) (json_float p.value))
    r.progress;
  Buffer.add_string buf "],\n  \"counters\": [";
  List.iteri
    (fun i (name, kind, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "{\"name\": %s, \"kind\": %s, \"value\": %s}" (json_string name)
        (json_string (kind_name kind))
        (json_float v))
    r.counters;
  Buffer.add_string buf "],\n";
  (match r.memory with
  | None -> Buffer.add_string buf "  \"memory\": null\n"
  | Some m ->
    Buffer.add_string buf "  \"memory\": {\n    \"per_shard\": [";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        Printf.bprintf buf
          "{\"shard\": %d, \"routers\": %d, \"rib_entries\": %d, \"rib_bytes\": %d, \
           \"path_nodes\": %d, \"path_bytes\": %d, \"sched_max_live\": %d, \
           \"sched_slab_cap\": %d}"
          s.shard s.routers s.rib_entries s.rib_bytes s.path_nodes s.path_bytes
          s.sched_max_live s.sched_slab_cap)
      m.per_shard;
    Printf.bprintf buf
      "],\n    \"rib_bytes_total\": %d,\n    \"path_bytes_total\": %d,\n    \
       \"path_sharing\": %s,\n    \"trace\": {\"len\": %d, \"cap\": %d, \"dropped\": \
       %d, \"spilled\": %d}\n  }\n"
      m.rib_bytes_total m.path_bytes_total
      (json_float m.path_sharing)
      m.trace_len m.trace_cap m.trace_dropped m.trace_spilled);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let export ~dir ?(prefix = "") r =
  mkdir_p dir;
  let files =
    [
      ("series.csv", series_csv r);
      ("progress.csv", progress_csv r);
      ("counters.csv", counters_csv r);
      ("series.jsonl", series_jsonl r);
      ("counters.jsonl", counters_jsonl r);
      ("report.json", report_json r);
    ]
  in
  List.map
    (fun (name, contents) ->
      let path = Filename.concat dir (prefix ^ name) in
      write_file path contents;
      path)
    files

(* --- Summary ------------------------------------------------------------- *)

let peak_work r =
  Array.fold_left
    (fun ((_, best_w) as best) s ->
      if s.row.unfinished_work > best_w then (s.time, s.row.unfinished_work) else best)
    (0.0, 0.0) r.samples

let max_level r =
  Array.fold_left (fun acc s -> Stdlib.max acc s.row.mrai_level) 0 r.samples

let pp_summary ppf r =
  let t_peak, w_peak = peak_work r in
  Fmt.pf ppf "%d probes every %gs%s, peak queue work %.3f s at t=%.1f, max MRAI level %d"
    r.probes r.interval
    (if r.dropped > 0 then Printf.sprintf " (%d dropped)" r.dropped else "")
    w_peak t_peak (max_level r)

let pp_bytes ppf b =
  if b >= 1 lsl 20 then Fmt.pf ppf "%.1f MiB" (float_of_int b /. 1048576.0)
  else if b >= 1 lsl 10 then Fmt.pf ppf "%.1f KiB" (float_of_int b /. 1024.0)
  else Fmt.pf ppf "%d B" b

let pp_memory ppf m =
  Fmt.pf ppf "rib %a over %d shard%s, paths %a (sharing %.2fx), trace %d/%d"
    pp_bytes m.rib_bytes_total
    (List.length m.per_shard)
    (if List.length m.per_shard = 1 then "" else "s")
    pp_bytes m.path_bytes_total m.path_sharing m.trace_len m.trace_cap
