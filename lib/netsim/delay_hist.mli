(** Fixed-bucket log-scale histogram of per-destination convergence
    tails, the streaming replacement for retaining every tail sample
    during a multi-trial merge ({!Attr_merge}).

    Layout (fixed, shared by every instance so histograms merge by
    bucket-wise addition):
    - bucket 0 collects underflow: tails [<= 1e-6] s (including the
      zero tails of destinations whose terminal coincides with the
      failure instant);
    - buckets [1 .. n_buckets - 2] are geometric: bucket [i] covers
      [(lo * r^(i-1), lo * r^i]] with [lo = 1e-6] s, [r = 10^(1/64)]
      (64 buckets per decade) over 10 decades (1 us to 10 000 s);
    - the last bucket collects overflow ([> 1e4] s; no simulated
      scenario reaches it — the runner caps phases at 36 000 s but a
      tail that long means an unconverged run).

    Quantile error bound: {!percentile} answers the nearest-rank
    quantile with the {e geometric midpoint} of the bucket holding the
    exact nearest-rank sample, so the reported value is within one
    bucket of the exact answer — a relative error of at most
    [sqrt r - 1 < 1.82%] (and exact for underflow, which reports 0). *)

type t

val n_buckets : int

val create : unit -> t

val bucket_of : float -> int
(** The bucket index a tail value falls into (total order preserving). *)

val add : t -> float -> unit

val count : t -> int
(** Samples added so far. *)

val counts : t -> int array
(** A copy of the raw bucket counts (length {!n_buckets}). *)

val merge_into : into:t -> t -> unit
(** Bucket-wise addition of [t] into [into]. *)

val midpoint : int -> float
(** The geometric midpoint of a log bucket — the representative value
    {!percentile} reports; it falls back into the same bucket under
    {!bucket_of}. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [(0, 1]]: the geometric midpoint of the
    bucket containing the nearest-rank sample ([ceil (q * count)]-th
    smallest); [0.0] on an empty histogram or an underflow bucket hit. *)

val to_json : t -> string
(** A compact sparse rendering [{"n":N,"buckets":[[i,c],...]}] (only
    non-empty buckets), embedded in merge reports. *)

val of_json : Json_lite.t -> t
(** Rebuild from {!to_json} output.
    @raise Json_lite.Bad on shape mismatch. *)
