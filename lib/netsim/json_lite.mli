(** Minimal JSON reader shared by the netsim serialization layers
    ({!Trace} spill files, {!Attribution} sidecars, {!Attr_merge}
    reports).  The dependency budget rules out a JSON library, so the
    parser is hand-rolled; numbers keep their literal text so ints and
    ["%.17g"]-printed floats both round-trip exactly. *)

type t =
  | Num of string  (** the literal, unconverted — caller picks int/float *)
  | Str of string
  | Bool of bool
  | Null
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} and the accessors below; the message carries the
    offending position or key. *)

val parse : string -> t
(** @raise Bad on malformed input (including trailing garbage). *)

(** {2 Accessors}

    All raise {!Bad} (never return) on shape mismatch, so a reader is a
    straight-line chain of lookups wrapped once in {!try_result}. *)

val obj : t -> (string * t) list
val field : (string * t) list -> string -> t
val field_opt : (string * t) list -> string -> t option
val str : t -> string
val num : t -> string
val int : t -> int
val float : t -> float
val bool : t -> bool
val arr : t -> t list

val try_result : (unit -> 'a) -> ('a, string) result
(** Run a parser chain, catching {!Bad} and [Failure] into [Error]. *)

(** {2 Emission helpers} *)

val float_lit : float -> string
(** Shortest exact rendering: ["%.1f"] for small integers, ["%.17g"]
    otherwise — the same convention every emitter in the repo uses, so
    reparsing is bit-exact. *)

val escape : string -> string
(** A double-quoted JSON string literal. *)
