module Sched = Bgp_engine.Scheduler
module Rng = Bgp_engine.Rng
module Stats = Bgp_engine.Stats
module Profile = Bgp_engine.Profile
module Topology = Bgp_topology.Topology
module As_topology = Bgp_topology.As_topology
module Degree_dist = Bgp_topology.Degree_dist
module Failure = Bgp_topology.Failure

type topo_spec =
  | Flat of { spec : Degree_dist.spec; n : int }
  | Realistic of As_topology.config
  | Fixed of Topology.t

type failure_spec =
  | Fraction of float
  | Routers of int list
  | Links of (int * int) list
  | No_failure

type warmup_mode = Simulated | Analytic

type scenario = {
  topo : topo_spec;
  net : Network.config;
  failure : failure_spec;
  seed : int;
  sim_time_cap : float;
  validate : bool;
  warmup : warmup_mode;
  policies : bool;
  faults : Fault_injector.schedule option;
  sharding : int option;
  churn : Churn.schedule option;
  churn_window : float;
  dest_sample : int option;
}

let scenario ?(net = Network.config_default Bgp_proto.Config.default)
    ?(failure = No_failure) ?(seed = 1) ?(sim_time_cap = 36000.0) ?(validate = false)
    ?(warmup = Simulated) ?(policies = false) ?faults ?sharding ?churn
    ?(churn_window = 0.5) ?dest_sample topo =
  {
    topo;
    net;
    failure;
    seed;
    sim_time_cap;
    validate;
    warmup;
    policies;
    faults;
    sharding;
    churn;
    churn_window;
    dest_sample;
  }

type result = {
  converged : bool;
  warmup_delay : float;
  convergence_delay : float;
  messages : int;
  adverts : int;
  withdrawals : int;
  warmup_messages : int;
  eliminated : int;
  max_queue : int;
  mrai_transitions : int;
  events : int;
  lost_messages : int;
  survivors_connected : bool;
  issues : Validate.issue list;
  report : Telemetry.report option;
  attribution : Attribution.t option;
  churn : Churn.stats option;
}

let make_topology rng = function
  | Flat { spec; n } -> Topology.flat rng ~spec ~n
  | Realistic config -> As_topology.generate rng config
  | Fixed topo -> topo

let make_failure topo = function
  | Fraction f -> Failure.contiguous topo ~fraction:f
  | Routers l -> Failure.of_list topo l
  | Links _ | No_failure -> Failure.none topo

(* Seeded destination subsampling: narrow the config's active set to a
   [k]-subset by partial Fisher-Yates over the full prefix universe.  The
   stream is split only when sampling is requested (after the fault
   stream), so unsampled runs draw exactly what they always did. *)
let apply_dest_sample s topo rng_sample net_config =
  match (s.dest_sample, rng_sample) with
  | Some k, Some rng ->
    if k < 1 then invalid_arg "Runner.run: dest_sample must be >= 1";
    let bgp = net_config.Network.bgp in
    let universe = Bgp_proto.Config.num_dests bgp ~n_ases:topo.Topology.n_ases in
    if k >= universe then net_config
    else begin
      let arr = Array.init universe Fun.id in
      for i = 0 to k - 1 do
        let j = i + Rng.int rng (universe - i) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      {
        net_config with
        Network.bgp = Bgp_proto.Config.with_dest_sample (Array.sub arr 0 k) bgp;
      }
    end
  | _ -> net_config

let run_sequential ?inspect s =
  (* Wall-clock phase spans: reads of the monotonic clock only, so the
     run is bit-identical with profiling off and on. *)
  let prof = Profile.on () in
  let p0 = if prof then Profile.now_ns () else 0L in
  let root = Rng.create s.seed in
  let rng_topo = Rng.split root in
  let rng_net = Rng.split root in
  (* The fault stream is split only when a schedule is present: fault-free
     runs draw exactly what they always did (the goldens pin this), and a
     chaotic run is still a pure function of the seed. *)
  let rng_faults = Option.map (fun _ -> Rng.split root) s.faults in
  let rng_sample = Option.map (fun _ -> Rng.split root) s.dest_sample in
  let topo = make_topology rng_topo s.topo in
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.run: bad topology: " ^ msg));
  let sched = Sched.create () in
  let net_config =
    if s.policies then
      { s.net with Network.relationships = Some (Relationships.infer topo) }
    else s.net
  in
  let net_config = apply_dest_sample s topo rng_sample net_config in
  (* Telemetry lives per run: the config only carries the spec, the
     instance (and hence all recorded state) is private to this trial. *)
  let tele = Option.map Telemetry.create net_config.Network.telemetry in
  let net = Network.build ~sched ~rng:rng_net ~config:net_config ?telemetry:tele topo in
  if prof then Profile.record Build p0;
  let p0 = if prof then Profile.now_ns () else 0L in
  (* Phase 1: reach steady state — by cold-start simulation (as in the
     paper) or by direct analytic construction. *)
  (match s.warmup with
  | Simulated ->
    Network.start_all net;
    (match tele with
    | Some t when (Telemetry.conf t).Telemetry.probe_warmup ->
      Network.start_probes net t
    | Some _ | None -> ());
    Sched.run ~until:s.sim_time_cap sched
  | Analytic ->
    if s.policies then
      invalid_arg "Runner.run: analytic warm-up is policy-free only";
    Warmup.install net);
  if prof then Profile.record Warmup p0;
  let warmup_converged = Sched.pending sched = 0 in
  let warmup_delay = Network.last_activity net in
  let warmup_messages = Network.messages_sent net in
  let warmup_adverts = Network.adverts_sent net in
  let warmup_withdrawals = Network.withdrawals_sent net in
  (if s.validate && warmup_converged then
     Validate.check_exn net ~failure:(Failure.none topo));
  (* Phase 2: failure and re-convergence. *)
  let p0 = if prof then Profile.now_ns () else 0L in
  let failure = make_failure topo s.failure in
  let t_fail = Sched.now sched +. 1.0 in
  ignore
    (Sched.schedule_at sched ~time:t_fail (fun () ->
         Network.inject_failure net failure;
         (match s.failure with
         | Links links -> Network.inject_link_failures net links
         | Fraction _ | Routers _ | No_failure -> ());
         (match (s.faults, rng_faults) with
         | Some schedule, Some rng ->
           Network.enable_faults net ~rng;
           Fault_injector.install net ~sched schedule
         | _ -> ());
         match tele with
         | Some t ->
           Telemetry.set_fail_time t t_fail;
           (* Baseline tick at the failure instant, then the periodic
              chain through re-convergence. *)
           Network.probe_tick net t;
           Network.start_probes net t
         | None -> ()));
  (* Steady-state churn: arm the workload ops as causal roots relative to
     [t_fail] and observe settle times + windowed throughput.  The hooks
     are pure observation and the sampler only exists under churn, so the
     churn-free path schedules exactly what it always did. *)
  let monitor =
    match s.churn with
    | None -> None
    | Some schedule ->
      let m = Churn.monitor net ~t0:t_fail ~window:s.churn_window in
      Churn.install net ~sched ~t0:t_fail schedule;
      Churn.start_sampler m net ~sched;
      Some (schedule, m)
  in
  if prof then Profile.record Fail p0;
  let p0 = if prof then Profile.now_ns () else 0L in
  Sched.run ~until:(t_fail +. s.sim_time_cap) sched;
  if prof then Profile.record Converge p0;
  let p0 = if prof then Profile.now_ns () else 0L in
  (* End-of-run hook: the chaos harness reads per-router queue/RIB state
     here, before the network goes out of scope.  Pure reads only. *)
  (match inspect with Some f -> f net | None -> ());
  let converged = warmup_converged && Sched.pending sched = 0 in
  let last = Network.last_activity net in
  let convergence_delay = Float.max 0.0 (last -. t_fail) in
  let churn_stats =
    Option.map (fun (schedule, m) -> Churn.stats m net ~schedule ~last_activity:last)
      monitor
  in
  let issues =
    (* Link failures change the graph underneath the survivor-BFS checks;
       only the router-failure invariants are validated. *)
    match s.failure with
    | Links _ -> []
    | Fraction _ | Routers _ | No_failure ->
      if s.validate && converged then Validate.check net ~failure else []
  in
  let metrics = Network.sum_metrics net in
  (* Post-hoc causal analysis of the traced run; pure read of the trace,
     so it cannot perturb anything above. *)
  let attribution =
    Option.map
      (fun trace -> Attribution.of_trace ~t_fail trace)
      net_config.Network.trace
  in
  (* Fold the component totals into the telemetry report (read at
     snapshot time below). *)
  (match (tele, attribution) with
  | Some t, Some attr ->
    let reg name v = Telemetry.register t ~name ~kind:Telemetry.Gauge (fun () -> v) in
    let open Attribution in
    reg "attr.queueing" attr.totals.queueing;
    reg "attr.processing" attr.totals.processing;
    reg "attr.mrai_hold" attr.totals.mrai_hold;
    reg "attr.propagation" attr.totals.propagation;
    reg "attr.critical_hops" (float_of_int (List.length attr.critical_path))
  | _ -> ());
  (* End-of-run memory snapshot: deterministic word-model estimates, so
     it may live inside the structurally-compared telemetry report. *)
  (match tele with
  | Some t -> Telemetry.set_memory t (Network.memory_snapshot net)
  | None -> ());
  if prof then begin
    Profile.counter_max "sched.max_live.shard0" (Sched.max_live sched);
    Profile.counter_max "sched.slab_cap.shard0" (Sched.slab_capacity sched);
    Profile.record Finalize p0
  end;
  {
    converged;
    warmup_delay;
    convergence_delay;
    messages = Network.messages_sent net - warmup_messages;
    adverts = Network.adverts_sent net - warmup_adverts;
    withdrawals = Network.withdrawals_sent net - warmup_withdrawals;
    warmup_messages;
    eliminated = metrics.Bgp_proto.Router.eliminated;
    max_queue = metrics.Bgp_proto.Router.max_queue;
    mrai_transitions = metrics.Bgp_proto.Router.mrai_transitions;
    events = Sched.events_executed sched;
    lost_messages = Network.lost_messages net;
    survivors_connected = Failure.survivors_connected topo failure;
    issues;
    report = Option.map Telemetry.report tele;
    attribution;
    churn = churn_stats;
  }

(* --- Sharded run ---------------------------------------------------------- *)

(* Same experiment, executed across OCaml 5 domains via the conservative
   windowed executor.  The RNG split discipline matches [run_sequential]
   exactly (root -> topo, net, faults-if-scheduled), and everything the
   shards do is keyed on layout-free values, so the result is
   bit-identical for any shard count — the test battery pins shards in
   {1, 2, 4} against each other.  It is NOT bit-identical to the
   sequential path (different delivery machinery); the sequential path
   and its goldens stay untouched. *)
let run_sharded ?inspect s ~shards =
  if shards < 1 then invalid_arg "Runner.run: sharding must be >= 1";
  let prof = Profile.on () in
  let p0 = if prof then Profile.now_ns () else 0L in
  let root = Rng.create s.seed in
  let rng_topo = Rng.split root in
  let rng_net = Rng.split root in
  let rng_faults = Option.map (fun _ -> Rng.split root) s.faults in
  let rng_sample = Option.map (fun _ -> Rng.split root) s.dest_sample in
  let topo = make_topology rng_topo s.topo in
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.run: bad topology: " ^ msg));
  let net_config =
    if s.policies then
      { s.net with Network.relationships = Some (Relationships.infer topo) }
    else s.net
  in
  let net_config = apply_dest_sample s topo rng_sample net_config in
  let tele = Option.map Telemetry.create net_config.Network.telemetry in
  let part = Bgp_topology.Partition.compute ~shards ~seed:s.seed topo in
  let lookahead =
    Fault_injector.lookahead ~link_delay:net_config.Network.link_delay
      (Option.value ~default:[] s.faults)
  in
  let net =
    Network.build_sharded ~shards ~owner:part.Bgp_topology.Partition.owner ~lookahead
      ~rng:rng_net ~config:net_config ?telemetry:tele topo
  in
  if prof then Profile.record Build p0;
  (* Probe ticks ride the barrier windows: [at_barrier] runs
     single-threaded once per window with the window's start time, the
     only point where cross-shard router state is stable.  Tick times are
     therefore window starts (shard-count invariant), not the sequential
     path's exact interval grid. *)
  let next_probe = ref infinity in
  let probe_hook t ~now =
    if now >= !next_probe then begin
      Network.probe_tick ~time:now net t;
      next_probe := now +. (Telemetry.conf t).Telemetry.probe_interval
    end
  in
  let p0 = if prof then Profile.now_ns () else 0L in
  (match s.warmup with
  | Simulated ->
    Network.start_all net;
    let at_barrier =
      match tele with
      | Some t when (Telemetry.conf t).Telemetry.probe_warmup ->
        next_probe := (Telemetry.conf t).Telemetry.probe_interval;
        Some (probe_hook t)
      | Some _ | None -> None
    in
    Network.run_shards ?at_barrier net ~cap:s.sim_time_cap
  | Analytic ->
    if s.policies then invalid_arg "Runner.run: analytic warm-up is policy-free only";
    Warmup.install net);
  if prof then Profile.record Warmup p0;
  let warmup_converged = Network.shard_pending net = 0 in
  let warmup_delay = Network.last_activity net in
  let warmup_messages = Network.messages_sent net in
  let warmup_adverts = Network.adverts_sent net in
  let warmup_withdrawals = Network.withdrawals_sent net in
  (if s.validate && warmup_converged then
     Validate.check_exn net ~failure:(Failure.none topo));
  (* Phase 2: the orchestrator (single-threaded, every domain parked)
     injects the failure at a time strictly above every shard clock, then
     releases the shards. *)
  let p0 = if prof then Profile.now_ns () else 0L in
  let failure = make_failure topo s.failure in
  let t_fail = Network.shard_now net +. 1.0 in
  Network.inject_failure_sharded net ~at:t_fail failure;
  (match s.failure with
  | Links links -> Network.inject_link_failures_sharded net ~at:t_fail links
  | Fraction _ | Routers _ | No_failure -> ());
  (match (s.faults, rng_faults) with
  | Some schedule, Some rng ->
    Network.enable_faults net ~rng;
    Fault_injector.install_sharded net ~t_fail schedule
  | _ -> ());
  (* Churn ops land only on their router's owner shard (never replicated),
     so counters need no [note_replica] normalisation. *)
  let monitor =
    match s.churn with
    | None -> None
    | Some schedule ->
      let m = Churn.monitor net ~t0:t_fail ~window:s.churn_window in
      Churn.install_sharded net ~t_fail schedule;
      Some (schedule, m)
  in
  if prof then Profile.record Fail p0;
  let at_barrier =
    match tele with
    | Some t ->
      Telemetry.set_fail_time t t_fail;
      Network.probe_tick ~time:t_fail net t;
      next_probe := t_fail +. (Telemetry.conf t).Telemetry.probe_interval;
      Some (probe_hook t)
    | None -> None
  in
  (* Throughput samples ride the barrier windows, like probe ticks:
     window starts are shard-count invariant. *)
  let at_barrier =
    match monitor with
    | None -> at_barrier
    | Some (_, m) ->
      let next_window = ref (t_fail +. s.churn_window) in
      let churn_hook ~now =
        if now >= !next_window then begin
          Churn.sample m net ~now;
          next_window := now +. s.churn_window
        end
      in
      (match at_barrier with
      | None -> Some churn_hook
      | Some f ->
        Some
          (fun ~now ->
            f ~now;
            churn_hook ~now))
  in
  let p0 = if prof then Profile.now_ns () else 0L in
  Network.run_shards ?at_barrier net ~cap:(t_fail +. s.sim_time_cap);
  if prof then Profile.record Converge p0;
  let p0 = if prof then Profile.now_ns () else 0L in
  (match inspect with Some f -> f net | None -> ());
  let converged = warmup_converged && Network.shard_pending net = 0 in
  let last = Network.last_activity net in
  let convergence_delay = Float.max 0.0 (last -. t_fail) in
  let churn_stats =
    Option.map (fun (schedule, m) -> Churn.stats m net ~schedule ~last_activity:last)
      monitor
  in
  let issues =
    match s.failure with
    | Links _ -> []
    | Fraction _ | Routers _ | No_failure ->
      if s.validate && converged then Validate.check net ~failure else []
  in
  let metrics = Network.sum_metrics net in
  (* Merge the per-shard trace slices into the user's trace: sort by
     (time, strided id), renumber densely, rewrite causes — the result
     reads exactly like a sequential trace and is shard-count invariant. *)
  let attribution =
    Option.map
      (fun user ->
        let m0 = if prof then Profile.now_ns () else 0L in
        let merged =
          Trace.merge_renumber (List.map Trace.events (Network.shard_traces net))
        in
        if prof then Profile.record Merge m0;
        List.iter (Trace.record user) merged;
        Attribution.analyze ~t_fail merged)
      net_config.Network.trace
  in
  (match (tele, attribution) with
  | Some t, Some attr ->
    let reg name v = Telemetry.register t ~name ~kind:Telemetry.Gauge (fun () -> v) in
    let open Attribution in
    reg "attr.queueing" attr.totals.queueing;
    reg "attr.processing" attr.totals.processing;
    reg "attr.mrai_hold" attr.totals.mrai_hold;
    reg "attr.propagation" attr.totals.propagation;
    reg "attr.critical_hops" (float_of_int (List.length attr.critical_path))
  | _ -> ());
  (match tele with
  | Some t -> Telemetry.set_memory t (Network.memory_snapshot net)
  | None -> ());
  if prof then begin
    for shard = 0 to shards - 1 do
      let ssched = Network.shard_sched net shard in
      Profile.counter_max
        (Printf.sprintf "sched.max_live.shard%d" shard)
        (Sched.max_live ssched);
      Profile.counter_max
        (Printf.sprintf "sched.slab_cap.shard%d" shard)
        (Sched.slab_capacity ssched)
    done;
    Profile.record Finalize p0
  end;
  {
    converged;
    warmup_delay;
    convergence_delay;
    messages = Network.messages_sent net - warmup_messages;
    adverts = Network.adverts_sent net - warmup_adverts;
    withdrawals = Network.withdrawals_sent net - warmup_withdrawals;
    warmup_messages;
    eliminated = metrics.Bgp_proto.Router.eliminated;
    max_queue = metrics.Bgp_proto.Router.max_queue;
    mrai_transitions = metrics.Bgp_proto.Router.mrai_transitions;
    events = Network.shard_events net;
    lost_messages = Network.lost_messages net;
    survivors_connected = Failure.survivors_connected topo failure;
    issues;
    report = Option.map Telemetry.report tele;
    attribution;
    churn = churn_stats;
  }

let run_gen ?inspect s =
  match s.sharding with
  | Some shards -> run_sharded ?inspect s ~shards
  | None -> run_sequential ?inspect s

(* [run] keeps the plain [scenario -> result] arrow: it is passed
   first-class to [Pool.map], which an optional argument would break. *)
let run s = run_gen s
let run_with ~inspect s = run_gen ~inspect s

let topology_of s =
  let root = Rng.create s.seed in
  let rng_topo = Rng.split root in
  make_topology rng_topo s.topo

let failure_of s topo = make_failure topo s.failure

let trace_path ~base ~seed =
  let ext = Filename.extension base in
  Filename.remove_extension base ^ ".seed" ^ string_of_int seed ^ ext

let traced ?capacity ?spill_base s ~trials =
  if trials <= 0 then invalid_arg "Runner.traced: trials must be positive";
  List.init trials (fun i ->
      let seed = s.seed + i in
      let spill = Option.map (fun base -> trace_path ~base ~seed) spill_base in
      let trace = Trace.create ?capacity ?spill () in
      ({ s with seed; net = { s.net with Network.trace = Some trace } }, trace))

(* Archive a traced batch: every spilled trial becomes a finalized,
   self-describing trace file plus (by default) its bgp-attr-sidecar/1
   sidecar — the compact residue `analyze --merge` and `bgpsim serve`
   fold without ever re-reading the event JSONL. *)
let finalize_traced ?(sidecars = true) pairs results =
  let written = ref [] in
  List.iter2
    (fun ((s : scenario), trace) (r : result) ->
      match (Trace.spill_path trace, r.attribution) with
      | Some spill, Some attr ->
        Trace.finalize trace ~meta:{ Trace.seed = s.seed; t_fail = attr.Attribution.t_fail };
        if sidecars then begin
          let path = Attribution.sidecar_path spill in
          Attribution.write_sidecar path (Attribution.sidecar_of ~seed:s.seed attr);
          written := path :: !written
        end
      | _ -> Trace.close trace)
    pairs results;
  List.rev !written

let run_mean s ~trials ~metric =
  let stats = Stats.create () in
  for i = 0 to trials - 1 do
    let result = run { s with seed = s.seed + i } in
    Stats.add stats (metric result)
  done;
  Stats.summarize stats
