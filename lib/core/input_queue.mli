(** Router input-queue disciplines — the data-path half of the paper's
    contribution (Section 4.4).

    [Fifo] is default BGP: update messages are processed strictly in
    arrival order.

    [Batched] keeps one logical queue per destination (the paper suggests
    hashing; we use a hash table keyed by destination).  All queued updates
    for a destination are processed back-to-back, and when a new update
    arrives from a neighbour that already has one queued for the same
    destination, the older message is deleted — it is stale, the new one
    supersedes it.

    [Fifo_dedup] is an ablation: stale-update elimination without the
    per-destination reordering, to separate the two effects.

    [Tcp_batch] models what the paper's Section 4.4 closing paragraph says
    routers already do: updates are read one TCP buffer per peer and
    processed as a batch, so a stale update is only eliminated when its
    replacement lands in the *same* batch (same peer, within [batch_size]
    arrivals).  The paper predicts this helps less and less as failures
    grow — the elimination probability per batch drops; the
    `tcp-batching` ablation reproduces that. *)

type discipline =
  | Fifo
  | Batched
  | Fifo_dedup
  | Tcp_batch of { batch_size : int }

val discipline_name : discipline -> string

type 'a item = {
  src : int;
  dest : int;
  payload : 'a;
  cause : int;  (** trace id of the event that enqueued this item; [-1] if untraced *)
  enqueued : float;  (** simulation time the item entered the queue *)
}

type 'a t

val create : discipline -> 'a t
val discipline : 'a t -> discipline

val push : 'a t -> 'a item -> unit

val pop : 'a t -> 'a item option
(** Next message to process under the queue's discipline. *)

val length : 'a t -> int
(** Messages currently queued. *)

val is_empty : 'a t -> bool

val eliminated : 'a t -> int
(** Stale messages deleted so far ([Batched] and [Fifo_dedup] only). *)

val max_length : 'a t -> int
(** High-water mark of [length] (overload metric). *)

val clear : 'a t -> unit
