type discipline =
  | Fifo
  | Batched
  | Fifo_dedup
  | Tcp_batch of { batch_size : int }

let discipline_name = function
  | Fifo -> "fifo"
  | Batched -> "batched"
  | Fifo_dedup -> "fifo-dedup"
  | Tcp_batch { batch_size } -> Printf.sprintf "tcp-batch(%d)" batch_size

type 'a item = { src : int; dest : int; payload : 'a; cause : int; enqueued : float }

(* All disciplines are built on doubly-linked cells so that stale-update
   elimination is O(1) once the cell is found via the (src, dest) index. *)
type 'a cell = {
  item : 'a item;
  mutable prev : 'a cell option;
  mutable next : 'a cell option;
  mutable dead : bool;
}

type 'a dlist = {
  mutable first : 'a cell option;
  mutable last : 'a cell option;
  mutable count : int;
}

let dlist_create () = { first = None; last = None; count = 0 }

let dlist_append l item =
  let cell = { item; prev = l.last; next = None; dead = false } in
  (match l.last with None -> l.first <- Some cell | Some tail -> tail.next <- Some cell);
  l.last <- Some cell;
  l.count <- l.count + 1;
  cell

let dlist_remove l cell =
  if not cell.dead then begin
    cell.dead <- true;
    (match cell.prev with None -> l.first <- cell.next | Some p -> p.next <- cell.next);
    (match cell.next with None -> l.last <- cell.prev | Some n -> n.prev <- cell.prev);
    l.count <- l.count - 1
  end

let dlist_pop l =
  match l.first with
  | None -> None
  | Some cell ->
    dlist_remove l cell;
    Some cell.item

type 'a t = {
  discipline : discipline;
  (* Fifo / Fifo_dedup / Tcp_batch: single arrival-order list.
     Batched: one list per destination plus the order in which
     destinations became pending. *)
  fifo : 'a dlist;
  per_dest : (int, 'a dlist) Hashtbl.t;
  dest_order : int Queue.t;
  (* (src, dest) -> (live cell, arrival batch id), for stale elimination.
     The batch id is 0 except under Tcp_batch. *)
  index : (int * int, 'a cell * int) Hashtbl.t;
  (* Tcp_batch: current batch id and fill level per source. *)
  batch_of_src : (int, int) Hashtbl.t;
  fill_of_src : (int, int) Hashtbl.t;
  mutable total : int;
  mutable eliminated : int;
  mutable max_length : int;
}

let create discipline =
  {
    discipline;
    fifo = dlist_create ();
    per_dest = Hashtbl.create 64;
    dest_order = Queue.create ();
    index = Hashtbl.create 64;
    batch_of_src = Hashtbl.create 8;
    fill_of_src = Hashtbl.create 8;
    total = 0;
    eliminated = 0;
    max_length = 0;
  }

let discipline t = t.discipline
let length t = t.total
let is_empty t = t.total = 0
let eliminated t = t.eliminated
let max_length t = t.max_length

(* The arrival batch this push belongs to (advancing the per-source fill
   counter under Tcp_batch; always 0 otherwise). *)
let arrival_batch t src =
  match t.discipline with
  | Fifo | Fifo_dedup | Batched -> 0
  | Tcp_batch { batch_size } ->
    let batch = Option.value ~default:0 (Hashtbl.find_opt t.batch_of_src src) in
    let fill = 1 + Option.value ~default:0 (Hashtbl.find_opt t.fill_of_src src) in
    if fill >= batch_size then begin
      Hashtbl.replace t.batch_of_src src (batch + 1);
      Hashtbl.replace t.fill_of_src src 0
    end
    else Hashtbl.replace t.fill_of_src src fill;
    batch

let eliminate_stale t (item : 'a item) ~batch =
  let key = (item.src, item.dest) in
  match Hashtbl.find_opt t.index key with
  | Some (cell, cell_batch) when not cell.dead -> (
    match t.discipline with
    | Fifo -> ()
    | Fifo_dedup ->
      dlist_remove t.fifo cell;
      t.total <- t.total - 1;
      t.eliminated <- t.eliminated + 1
    | Tcp_batch _ ->
      (* Only updates landing in the same TCP read coalesce. *)
      if cell_batch = batch then begin
        dlist_remove t.fifo cell;
        t.total <- t.total - 1;
        t.eliminated <- t.eliminated + 1
      end
    | Batched -> (
      match Hashtbl.find_opt t.per_dest item.dest with
      | Some l ->
        dlist_remove l cell;
        t.total <- t.total - 1;
        t.eliminated <- t.eliminated + 1
      | None -> ()))
  | _ -> ()

let push t item =
  let batch = arrival_batch t item.src in
  if t.discipline <> Fifo then eliminate_stale t item ~batch;
  let cell =
    match t.discipline with
    | Fifo | Fifo_dedup | Tcp_batch _ -> dlist_append t.fifo item
    | Batched ->
      let l =
        match Hashtbl.find_opt t.per_dest item.dest with
        | Some l -> l
        | None ->
          let l = dlist_create () in
          Hashtbl.replace t.per_dest item.dest l;
          l
      in
      if l.count = 0 then Queue.add item.dest t.dest_order;
      dlist_append l item
  in
  if t.discipline <> Fifo then Hashtbl.replace t.index (item.src, item.dest) (cell, batch);
  t.total <- t.total + 1;
  if t.total > t.max_length then t.max_length <- t.total

let rec pop_batched t =
  match Queue.peek_opt t.dest_order with
  | None -> None
  | Some dest -> (
    let l = Hashtbl.find t.per_dest dest in
    match dlist_pop l with
    | Some item ->
      if l.count = 0 then ignore (Queue.pop t.dest_order);
      Some item
    | None ->
      (* The destination's queue was emptied by stale elimination. *)
      ignore (Queue.pop t.dest_order);
      pop_batched t)

let pop t =
  let result =
    match t.discipline with
    | Fifo | Fifo_dedup | Tcp_batch _ -> dlist_pop t.fifo
    | Batched -> pop_batched t
  in
  (match result with
  | Some item ->
    t.total <- t.total - 1;
    if t.discipline <> Fifo then begin
      (* Drop the index entry if it still points at this message. *)
      let key = (item.src, item.dest) in
      match Hashtbl.find_opt t.index key with
      | Some (cell, _) when cell.dead -> Hashtbl.remove t.index key
      | _ -> ()
    end
  | None -> ());
  result

let clear t =
  t.fifo.first <- None;
  t.fifo.last <- None;
  t.fifo.count <- 0;
  Hashtbl.reset t.per_dest;
  Queue.clear t.dest_order;
  Hashtbl.reset t.index;
  Hashtbl.reset t.batch_of_src;
  Hashtbl.reset t.fill_of_src;
  t.total <- 0
