(** MRAI selection policies — the control half of the paper's contribution.

    A controller lives inside one router and answers a single question:
    "what MRAI interval should the next per-peer timer restart use?"
    (Section 4.3: "even if we decide to change the MRAI, we do not modify
    the values of the running timers; the change takes effect only when the
    timers are restarted").

    The router feeds the controller a {!load} snapshot whenever an update
    message is enqueued or finishes processing. *)

type load = {
  now : float;  (** simulated time, seconds *)
  queue_length : int;  (** update messages waiting in the input queue *)
  mean_processing_delay : float;  (** seconds per update, analytic mean *)
  utilization : float;  (** CPU busy fraction over the last window *)
  updates_in_window : int;  (** update messages received in the last window *)
}

(** Which overload signal drives the dynamic scheme (Section 4.3 evaluates
    queue length, processor utilization, and received-message count). *)
type detector =
  | Queue_work
      (** unfinished work = queue length x mean processing delay, in
          seconds; thresholds are seconds of backlog. *)
  | Utilization  (** thresholds are busy fractions in [0, 1]. *)
  | Message_count  (** thresholds are messages per window. *)

type scheme =
  | Static of float  (** one fixed MRAI, e.g. the 30 s Internet default *)
  | Degree_dependent of { threshold : int; low : float; high : float }
      (** nodes with degree > threshold use [high], others [low]
          (Section 4.2). *)
  | Dynamic of {
      levels : float array;  (** increasing MRAI values, e.g. 0.5/1.25/2.25 *)
      up_threshold : float;
      down_threshold : float;
      detector : detector;
    }  (** Section 4.3. *)

val paper_dynamic :
  ?levels:float array -> ?up_threshold:float -> ?down_threshold:float -> unit -> scheme
(** The configuration of Fig 7: levels [|0.5; 1.25; 2.25|], upTh = 0.65 s,
    downTh = 0.05 s, queue-work detector. *)

type t

val make : scheme -> degree:int -> t
(** Instantiate for a router of the given (inter-AS) degree. *)

val observe : t -> load -> unit
(** Feed a load snapshot; may move the dynamic scheme up or down one
    level.  No-op for static schemes. *)

val is_adaptive : t -> bool
(** [false] for a fixed interval: [observe] is a no-op and [level] never
    moves, so callers may skip load measurement entirely. *)

val current_interval : t -> float
(** The interval a timer restarted right now would use (before jitter). *)

val level : t -> int
(** Index of the current level (always 0 for static schemes). *)

val transitions : t -> int
(** How many level changes have occurred (metric for experiments). *)

val scheme_name : scheme -> string
