type load = {
  now : float;
  queue_length : int;
  mean_processing_delay : float;
  utilization : float;
  updates_in_window : int;
}

type detector = Queue_work | Utilization | Message_count

type scheme =
  | Static of float
  | Degree_dependent of { threshold : int; low : float; high : float }
  | Dynamic of {
      levels : float array;
      up_threshold : float;
      down_threshold : float;
      detector : detector;
    }

let paper_dynamic ?(levels = [| 0.5; 1.25; 2.25 |]) ?(up_threshold = 0.65)
    ?(down_threshold = 0.05) () =
  Dynamic { levels; up_threshold; down_threshold; detector = Queue_work }

type t =
  | Fixed of float
  | Adaptive of {
      levels : float array;
      up_threshold : float;
      down_threshold : float;
      detector : detector;
      mutable level : int;
      mutable transitions : int;
    }

let make scheme ~degree =
  match scheme with
  | Static v -> Fixed v
  | Degree_dependent { threshold; low; high } ->
    Fixed (if degree > threshold then high else low)
  | Dynamic { levels; up_threshold; down_threshold; detector } ->
    if Array.length levels = 0 then invalid_arg "Mrai_controller.make: empty levels";
    if down_threshold > up_threshold then
      invalid_arg "Mrai_controller.make: down_threshold above up_threshold";
    Adaptive { levels; up_threshold; down_threshold; detector; level = 0; transitions = 0 }

let measure detector load =
  match detector with
  | Queue_work -> float_of_int load.queue_length *. load.mean_processing_delay
  | Utilization -> load.utilization
  | Message_count -> float_of_int load.updates_in_window

let observe t load =
  match t with
  | Fixed _ -> ()
  | Adaptive a ->
    let value = measure a.detector load in
    if value > a.up_threshold && a.level < Array.length a.levels - 1 then begin
      a.level <- a.level + 1;
      a.transitions <- a.transitions + 1
    end
    else if value < a.down_threshold && a.level > 0 then begin
      a.level <- a.level - 1;
      a.transitions <- a.transitions + 1
    end

let is_adaptive = function Fixed _ -> false | Adaptive _ -> true

let current_interval = function
  | Fixed v -> v
  | Adaptive a -> a.levels.(a.level)

let level = function Fixed _ -> 0 | Adaptive a -> a.level
let transitions = function Fixed _ -> 0 | Adaptive a -> a.transitions

let scheme_name = function
  | Static v -> Printf.sprintf "mrai=%g" v
  | Degree_dependent { threshold; low; high } ->
    Printf.sprintf "degree-dep(>%d: %g, else %g)" threshold high low
  | Dynamic { levels; up_threshold; down_threshold; detector } ->
    let detector_name =
      match detector with
      | Queue_work -> "queue"
      | Utilization -> "util"
      | Message_count -> "msgs"
    in
    Printf.sprintf "dynamic(%s, up=%g, down=%g, levels=%s)" detector_name up_threshold
      down_threshold
      (String.concat "/" (List.map (Printf.sprintf "%g") (Array.to_list levels)))
