module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Config = Bgp_proto.Config
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue
module Degree_dist = Bgp_topology.Degree_dist

let delay r = r.Runner.convergence_delay
let messages r = float_of_int r.Runner.messages

(* Ablations use a trimmed failure-size grid: one small, one large. *)
let ablation_sizes (opts : Scenarios.opts) =
  match opts.sizes with
  | [] -> [ 0.05; 0.15 ]
  | sizes ->
    let small = List.hd sizes and large = List.hd (List.rev sizes) in
    if small = large then [ small ] else [ small; large ]

let series (opts : Scenarios.opts) ~label ~metric make_scenario =
  (* Prefetch the whole series so the trial fan-out parallelises across
     points, not one point at a time. *)
  let scenarios = List.map (fun frac -> (frac, make_scenario frac)) (ablation_sizes opts) in
  Sweep.prefetch (List.map (fun (_, s) -> (s, opts.trials)) scenarios);
  {
    Figure.label;
    points =
      List.map
        (fun (frac, s) -> Sweep.point s ~trials:opts.trials ~x:(frac *. 100.0) ~metric)
        scenarios;
  }

let flat_scenario (opts : Scenarios.opts) config frac =
  Runner.scenario
    ~net:(Network.config_default config)
    ~failure:(Runner.Fraction frac) ~seed:opts.seed
    (Runner.Flat { spec = Degree_dist.skewed_70_30; n = opts.n })

let config_series opts ~label ?(metric = delay) config =
  series opts ~label ~metric (fun frac -> flat_scenario opts config frac)

(* --- Overload detectors (Section 4.3) ----------------------------------- *)

let dynamic_with detector ~up ~down =
  Mrai.Dynamic
    { levels = [| 0.5; 1.25; 2.25 |]; up_threshold = up; down_threshold = down; detector }

let detectors opts =
  {
    Figure.id = "ablation-detectors";
    title = "Dynamic MRAI overload detectors";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"queue work (paper)"
          Config.(with_mrai (dynamic_with Mrai.Queue_work ~up:0.65 ~down:0.05) default);
        config_series opts ~label:"utilization"
          Config.(with_mrai (dynamic_with Mrai.Utilization ~up:0.85 ~down:0.30) default);
        config_series opts ~label:"message count"
          Config.(
            with_mrai (dynamic_with Mrai.Message_count ~up:60.0 ~down:5.0) default);
        config_series opts ~label:"static 0.5" Config.(with_mrai (Static 0.5) default);
      ];
    paper_expectation =
      "Section 4.3: the queue-work detector works best; utilization is \
       'promising'; the message-count detector is hard to tune";
  }

(* --- Batching decomposition ----------------------------------------------- *)

let batching_decomposition opts =
  let base = Config.(with_mrai (Static 0.5) default) in
  {
    Figure.id = "ablation-batching";
    title = "Batching decomposition (MRAI=0.5)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"fifo" base;
        config_series opts ~label:"fifo + stale elimination"
          Config.(with_discipline Iq.Fifo_dedup base);
        config_series opts ~label:"batched (elim + reorder)"
          Config.(with_discipline Iq.Batched base);
      ];
    paper_expectation =
      "Section 4.4 attributes the gain to removing stale updates and to \
       processing each destination together; this separates the two effects";
  }

(* --- TCP-buffer batching (Section 4.4, closing paragraph) ------------------ *)

let tcp_batching opts =
  let base = Config.(with_mrai (Static 0.5) default) in
  {
    Figure.id = "ablation-tcp-batch";
    title = "Today's TCP-buffer batching vs the paper's scheme (MRAI=0.5)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"fifo" base;
        config_series opts ~label:"tcp batch (20/read)"
          Config.(with_discipline (Iq.Tcp_batch { batch_size = 20 }) base);
        config_series opts ~label:"batched (paper)"
          Config.(with_discipline Iq.Batched base);
      ];
    paper_expectation =
      "Section 4.4: per-TCP-read batching 'can provide some of the benefits' \
       but for large failures the probability of two same-destination \
       updates sharing a read drops, so the paper's scheme should win by \
       a growing margin";
  }

(* --- Deshpande-Sikdar bypasses (Section 2) -------------------------------- *)

let ds_configs =
  [
    ("MRAI=2.25", Config.(with_mrai (Static 2.25) default));
    ( "cancel on improvement",
      Config.(
        { (with_mrai (Static 2.25) default) with mrai_bypass = Cancel_on_improvement }) );
    ( "flap threshold 2",
      Config.(
        { (with_mrai (Static 2.25) default) with mrai_bypass = Flap_threshold 2 }) );
    ("dynamic (paper)", Config.(with_mrai (Mrai.paper_dynamic ()) default));
    ( "batching (paper)",
      Config.(default |> with_mrai (Static 0.5) |> with_discipline Iq.Batched) );
  ]

let deshpande_sikdar opts =
  {
    Figure.id = "ablation-ds-delay";
    title = "Deshpande-Sikdar MRAI bypasses vs the paper's schemes (delay)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = List.map (fun (label, c) -> config_series opts ~label c) ds_configs;
    paper_expectation =
      "Section 2: the bypass schemes reduce convergence delay but the \
       number of update messages 'went up considerably'";
  }

let deshpande_sikdar_messages opts =
  {
    Figure.id = "ablation-ds-messages";
    title = "Deshpande-Sikdar MRAI bypasses vs the paper's schemes (messages)";
    xlabel = "failure %";
    ylabel = "update messages";
    series =
      List.map (fun (label, c) -> config_series opts ~label ~metric:messages c) ds_configs;
    paper_expectation = "the bypasses pay for their speed in update messages";
  }

(* --- MRAI timer granularity ------------------------------------------------ *)

let mrai_mode opts =
  let base = Config.(with_mrai (Static 2.25) default) in
  {
    Figure.id = "ablation-mrai-mode";
    title = "Per-peer vs per-destination MRAI (MRAI=2.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"per-peer (Internet practice)" base;
        config_series opts ~label:"per-destination"
          { base with Config.mrai_mode = Config.Per_dest };
      ];
    paper_expectation =
      "Section 2: per-destination timers are the textbook variant that the \
       Internet abandoned for scalability; behaviourally they pace less \
       because unrelated destinations no longer share a gate";
  }

(* --- Withdrawal pacing (WRATE) --------------------------------------------- *)

let withdrawal_pacing opts =
  let base = Config.(with_mrai (Static 2.25) default) in
  {
    Figure.id = "ablation-wrate";
    title = "Withdrawal pacing (MRAI=2.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"unpaced withdrawals (RFC)" base;
        config_series opts ~label:"paced withdrawals (WRATE)"
          { base with Config.mrai_on_withdrawals = true };
      ];
    paper_expectation =
      "RFC 1771 exempts withdrawals from the MRAI; pacing them (WRATE) slows \
       down bad-news propagation after large failures";
  }

(* --- Sender-side loop check -------------------------------------------------- *)

let loop_check opts =
  let base = Config.(with_mrai (Static 1.25) default) in
  {
    Figure.id = "ablation-loop-check";
    title = "Sender-side loop check (MRAI=1.25, message cost)";
    xlabel = "failure %";
    ylabel = "update messages";
    series =
      [
        config_series opts ~label:"check on" ~metric:messages base;
        config_series opts ~label:"check off" ~metric:messages
          { base with Config.sender_side_loop_check = false };
      ];
    paper_expectation =
      "without the sender-side check a router advertises paths the receiver \
       must discard (receiver-side loop detection), inflating message counts";
  }

(* --- Network size scaling ------------------------------------------------------ *)

let size_scaling (opts : Scenarios.opts) =
  let series_for n =
    series opts
      ~label:(Printf.sprintf "%d nodes" n)
      ~metric:delay
      (fun frac ->
        Runner.scenario
          ~net:(Network.config_default Config.(with_mrai (Static 1.25) default))
          ~failure:(Runner.Fraction frac) ~seed:opts.seed
          (Runner.Flat { spec = Degree_dist.skewed_70_30; n }))
  in
  {
    Figure.id = "ablation-size";
    title = "Network size scaling (MRAI=1.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = List.map series_for [ 60; 120; 240 ];
    paper_expectation =
      "Section 4: 60- and 240-node networks show the same trends; delay \
       grows with network size (the authors' earlier ICC'06 result)";
  }

(* --- Destination-count scaling (Section 5) ------------------------------------------ *)

let prefix_scaling (opts : Scenarios.opts) =
  let s ppa =
    let config =
      { (Config.with_mrai (Static 1.25) Config.default) with Config.prefixes_per_as = ppa }
    in
    series opts
      ~label:(Printf.sprintf "%d prefixes/AS" ppa)
      ~metric:delay
      (fun frac ->
        Runner.scenario
          ~net:(Network.config_default config)
          ~failure:(Runner.Fraction frac) ~seed:opts.seed
          (Runner.Flat { spec = Degree_dist.skewed_70_30; n = opts.n / 2 }))
  in
  {
    Figure.id = "ablation-prefixes";
    title = "Destination-count scaling (MRAI=1.25, half-size topology)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = List.map s [ 1; 2; 4 ];
    paper_expectation =
      "Section 5: the real Internet's ~200k destinations multiply the \
       update load, so overload (and with it the paper's schemes' value) \
       persists despite faster routers; delay grows with the prefix count";
  }

(* --- Gao-Rexford policies --------------------------------------------------------- *)

let policies opts =
  let base = Config.(with_mrai (Static 1.25) default) in
  let s label policies =
    series opts ~label ~metric:delay (fun frac ->
        Runner.scenario
          ~net:(Network.config_default base)
          ~failure:(Runner.Fraction frac) ~seed:opts.seed ~policies
          (Runner.Flat { spec = Degree_dist.skewed_70_30; n = opts.n }))
  in
  {
    Figure.id = "ablation-policies";
    title = "Policy-free (paper) vs Gao-Rexford valley-free policies (MRAI=1.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = [ s "policy-free (paper)" false; s "valley-free policies" true ];
    paper_expectation =
      "the paper runs policy-free; valley-free export restricts the set of \
       alternate paths, which shrinks path exploration (fewer messages) \
       and typically shortens convergence";
  }

(* --- Route flap damping (RFC 2439) ---------------------------------------------- *)

let damping opts =
  let base = Config.(with_mrai (Static 1.25) default) in
  {
    Figure.id = "ablation-damping";
    title = "Route flap damping during large failures (MRAI=1.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"no damping (paper)" base;
        config_series opts ~label:"damping (sim-scaled RFC 2439)"
          { base with Config.damping = Some Bgp_core.Damping.sim_config };
      ];
    paper_expectation =
      "damping is the classic anti-churn mechanism; it parks exploratory \
       flaps (fast for small failures) but loses its edge for large \
       failures and leaves suppressed destinations unreachable meanwhile \
       (Mao et al., SIGCOMM'02) — the paper's schemes pace/batch instead";
  }

(* --- Failure detection --------------------------------------------------------- *)

let detection opts =
  let base = Config.(with_mrai (Static 1.25) default) in
  let with_detection detection =
    { (Network.config_default base) with Network.detection }
  in
  let hold hold_time =
    Network.Hold_timer
      { Bgp_proto.Session.default_config with Bgp_proto.Session.hold_time }
  in
  let s label net_config =
    series opts ~label ~metric:delay (fun frac ->
        Runner.scenario ~net:net_config ~failure:(Runner.Fraction frac) ~seed:opts.seed
          (Runner.Flat { spec = Degree_dist.skewed_70_30; n = opts.n }))
  in
  {
    Figure.id = "ablation-detection";
    title = "Failure detection: link signal vs BGP hold timer (MRAI=1.25)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        s "link signal (25 ms, paper)" (with_detection Network.Link_signal);
        s "hold timer 90 s (RFC)" (with_detection (hold 90.0));
        s "hold timer 9 s (tuned)" (with_detection (hold 9.0));
      ];
    paper_expectation =
      "the paper (like most SSFNet studies) assumes link-layer detection; \
       with RFC hold timers the detection latency dominates re-convergence \
       after a silent failure";
  }

(* --- Immediate dynamic level application (Section 5) --------------------------- *)

let dynamic_restart opts =
  let base = Config.(with_mrai (Mrai.paper_dynamic ()) default) in
  {
    Figure.id = "ablation-restart";
    title = "Dynamic MRAI: immediate level application (Section 5 future work)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        config_series opts ~label:"at natural restart (paper)" base;
        config_series opts ~label:"re-arm running timers"
          { base with Config.dynamic_restart_timers = true };
      ];
    paper_expectation =
      "the paper notes the level change only takes effect when a timer \
       restarts and lists faster response as future work; this implements it";
  }

let all =
  [
    ("detectors", detectors);
    ("batching-decomposition", batching_decomposition);
    ("tcp-batching", tcp_batching);
    ("ds-delay", deshpande_sikdar);
    ("ds-messages", deshpande_sikdar_messages);
    ("mrai-mode", mrai_mode);
    ("prefix-scaling", prefix_scaling);
    ("policies", policies);
    ("wrate", withdrawal_pacing);
    ("loop-check", loop_check);
    ("damping", damping);
    ("detection", detection);
    ("size-scaling", size_scaling);
    ("dynamic-restart", dynamic_restart);
  ]
