(** The churn campaign artifact ([bgpsim churn]): per-trial steady-state
    measurements plus the merged cross-trial summary, serialized as one
    JSON document (schema ["bgp-churn/1"]) that CI archives and
    [bgpsim serve] folds into its gauges.

    The dependency budget rules out a JSON library; the emitter is
    hand-rolled and the reader is built on {!Bgp_netsim.Json_lite}. *)

type t

val create :
  workload:string ->
  window:float ->
  prefixes:int ->
  universe:int ->
  sampled_fraction:float ->
  jobs:int ->
  shards:int ->
  t
(** Report skeleton carrying the campaign-wide settings.  [universe] is
    the full prefix-universe size, [sampled_fraction] the active share
    under destination subsampling (1.0 without [--dest-sample]). *)

val add : t -> seed:int -> converged:bool -> Bgp_netsim.Churn.stats -> unit
(** Fold one trial (in seed order; histograms merge bucket-wise). *)

type summary = {
  workload : string;
  trials : int;
  prefixes : int;
  universe : int;
  sampled_fraction : float;
  ops : int;  (** total churn ops across trials *)
  sustained_rate : float;  (** mean of per-trial sustained updates/sec *)
  peak_window_rate : float;  (** max single-window rate of any trial *)
  queue_high_water : int;  (** max across trials *)
  disturbed : int;  (** summed disturbed prefixes *)
  unconverged : int;  (** summed post-quiesce inconsistent prefixes *)
  converged_trials : int;
  p50 : float;  (** pooled per-prefix settle-delay percentiles *)
  p95 : float;
  p99 : float;
}

val summary : t -> summary

val to_json : t -> string
val write : t -> string -> unit
(** Atomic (temp file + rename), like the attribution sidecars. *)

val is_churn_path : string -> bool
(** Name ends in [".churn.json"] — what [bgpsim serve] scans for. *)

val read : string -> (summary, string) result
(** Re-derive the summary from a written report (serve + CI validation).
    Accepts only schema ["bgp-churn/1"]. *)

val pp_summary : Format.formatter -> summary -> unit
