(** Cached scenario execution.

    Several figures share the exact same underlying runs (e.g. Fig 1 and
    Fig 2 are delay and message count over the same sweep); the cache keys
    on the structural content of (scenario, trials) so shared points are
    simulated once per process.

    {b Parallelism and determinism.}  Trials fan out over a
    {!Bgp_engine.Pool} of domains ([?jobs], defaulting to the pool's
    process-wide default).  Every trial owns its seed, RNG and scheduler
    — [Runner.run] shares no mutable state between runs — so the results
    are bit-identical whatever the job count.  The cache itself is
    domain-safe: lookups are mutex-protected and misses are
    single-flight, so two domains asking for the same (scenario, trials)
    key never simulate it twice — the second blocks until the first
    fills the entry and then shares the very same result list. *)

val results :
  ?jobs:int -> Bgp_netsim.Runner.scenario -> trials:int -> Bgp_netsim.Runner.result list
(** Runs seeds [scenario.seed .. scenario.seed + trials - 1] (memoized).
    Independent of [jobs] — parallel and sequential runs return
    structurally identical results. *)

val traced_results :
  ?jobs:int ->
  ?capacity:int ->
  ?spill_base:string ->
  Bgp_netsim.Runner.scenario ->
  trials:int ->
  (Bgp_netsim.Runner.result * Bgp_netsim.Trace.t) list
(** Like {!results} but with every trial traced ({!Bgp_netsim.Runner.traced}):
    each trial gets its own trace, spilling to a seed-suffixed file when
    [spill_base] is given, so traced sweeps parallelize like untraced
    ones.  Never cached — a trial's value is its trace, which a memo hit
    would not reproduce.  Traces are returned open; callers
    {!Bgp_netsim.Trace.finalize} (or [close]) them. *)

val traced_archived :
  ?jobs:int ->
  ?capacity:int ->
  spill_base:string ->
  Bgp_netsim.Runner.scenario ->
  trials:int ->
  Bgp_netsim.Runner.result list * string list
(** {!traced_results}, then {!Bgp_netsim.Runner.finalize_traced}: every
    trial's trace file is finalized and its attribution sidecar written
    next to it, so the directory can be merged in O(trials)
    ([analyze --merge]) or watched live ([bgpsim serve]) immediately.
    Returns the results and the sidecar paths written. *)

val prefetch : ?jobs:int -> (Bgp_netsim.Runner.scenario * int) list -> unit
(** [prefetch specs] fills the cache for every uncached
    [(scenario, trials)] pair in [specs], fanning {e all} their trial
    runs out as one flat batch — so a whole series parallelises across
    points, not just within one point's trials.  Subsequent {!results}
    calls for those pairs are cache hits. *)

val mean_of : (Bgp_netsim.Runner.result -> float) -> Bgp_netsim.Runner.result list -> float

val sd_of : (Bgp_netsim.Runner.result -> float) -> Bgp_netsim.Runner.result list -> float

val point :
  ?jobs:int ->
  Bgp_netsim.Runner.scenario ->
  trials:int ->
  x:float ->
  metric:(Bgp_netsim.Runner.result -> float) ->
  Figure.point

val clear_cache : unit -> unit
val cache_size : unit -> int
