module Churn = Bgp_netsim.Churn
module Delay_hist = Bgp_netsim.Delay_hist
module J = Bgp_netsim.Json_lite

type trial = { seed : int; converged : bool; stats : Churn.stats }

type t = {
  workload : string;
  window : float;
  prefixes : int;
  universe : int;
  sampled_fraction : float;
  jobs : int;
  shards : int;
  mutable trials_rev : trial list;
  pooled : Delay_hist.t;  (* bucket-wise merge of every trial's tails *)
}

let create ~workload ~window ~prefixes ~universe ~sampled_fraction ~jobs ~shards =
  {
    workload;
    window;
    prefixes;
    universe;
    sampled_fraction;
    jobs;
    shards;
    trials_rev = [];
    pooled = Delay_hist.create ();
  }

let add t ~seed ~converged stats =
  t.trials_rev <- { seed; converged; stats } :: t.trials_rev;
  Delay_hist.merge_into ~into:t.pooled stats.Churn.tails

type summary = {
  workload : string;
  trials : int;
  prefixes : int;
  universe : int;
  sampled_fraction : float;
  ops : int;
  sustained_rate : float;
  peak_window_rate : float;
  queue_high_water : int;
  disturbed : int;
  unconverged : int;
  converged_trials : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary t =
  let trials = List.rev t.trials_rev in
  let n = List.length trials in
  let fold f init = List.fold_left (fun acc tr -> f acc tr.stats) init trials in
  let sustained = fold (fun a s -> a +. s.Churn.sustained_rate) 0.0 in
  {
    workload = t.workload;
    trials = n;
    prefixes = t.prefixes;
    universe = t.universe;
    sampled_fraction = t.sampled_fraction;
    ops = fold (fun a s -> a + s.Churn.ops) 0;
    sustained_rate = (if n > 0 then sustained /. float_of_int n else 0.0);
    peak_window_rate = fold (fun a s -> Float.max a s.Churn.peak_window_rate) 0.0;
    queue_high_water = fold (fun a s -> max a s.Churn.queue_high_water) 0;
    disturbed = fold (fun a s -> a + s.Churn.disturbed) 0;
    unconverged = fold (fun a s -> a + s.Churn.unconverged) 0;
    converged_trials =
      List.fold_left (fun a tr -> if tr.converged then a + 1 else a) 0 trials;
    p50 = Delay_hist.percentile t.pooled 0.5;
    p95 = Delay_hist.percentile t.pooled 0.95;
    p99 = Delay_hist.percentile t.pooled 0.99;
  }

let f = J.float_lit

let trial_json tr =
  let s = tr.stats in
  Printf.sprintf
    "{\"seed\":%d,\"converged\":%b,\"ops\":%d,\"span\":%s,\"updates_processed\":%d,\"sustained_rate\":%s,\"peak_window_rate\":%s,\"windows\":%d,\"queue_high_water\":%d,\"disturbed\":%d,\"unconverged\":%d,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s,\"hist\":%s}"
    tr.seed tr.converged s.Churn.ops (f s.Churn.span) s.Churn.updates_processed
    (f s.Churn.sustained_rate) (f s.Churn.peak_window_rate) s.Churn.windows
    s.Churn.queue_high_water s.Churn.disturbed s.Churn.unconverged (f s.Churn.p50)
    (f s.Churn.p95) (f s.Churn.p99)
    (Delay_hist.to_json s.Churn.tails)

let to_json t =
  let s = summary t in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"bgp-churn/1\",\"workload\":%s,\"window\":%s,\"jobs\":%d,\"shards\":%d"
       (J.escape s.workload) (f t.window) t.jobs t.shards);
  Buffer.add_string b
    (Printf.sprintf ",\"trials\":%d,\"prefixes\":%d,\"universe\":%d,\"sampled_fraction\":%s"
       s.trials s.prefixes s.universe (f s.sampled_fraction));
  Buffer.add_string b
    (Printf.sprintf
       ",\"ops\":%d,\"sustained_rate\":%s,\"peak_window_rate\":%s,\"queue_high_water\":%d"
       s.ops (f s.sustained_rate) (f s.peak_window_rate) s.queue_high_water);
  Buffer.add_string b
    (Printf.sprintf
       ",\"disturbed\":%d,\"unconverged\":%d,\"converged_trials\":%d,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s"
       s.disturbed s.unconverged s.converged_trials (f s.p50) (f s.p95) (f s.p99));
  Buffer.add_string b (Printf.sprintf ",\"hist\":%s,\"trial_results\":[" (Delay_hist.to_json t.pooled));
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (trial_json tr))
    (List.rev t.trials_rev);
  Buffer.add_string b "]}";
  Buffer.contents b

let write t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let churn_suffix = ".churn.json"

let is_churn_path name =
  let base = Filename.basename name in
  String.length base > String.length churn_suffix
  && String.sub base (String.length base - String.length churn_suffix)
       (String.length churn_suffix)
     = churn_suffix

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text ->
    J.try_result (fun () ->
        let o = J.obj (J.parse text) in
        (match J.str (J.field o "schema") with
        | "bgp-churn/1" -> ()
        | other -> raise (J.Bad ("unsupported schema " ^ other)));
        {
          workload = J.str (J.field o "workload");
          trials = J.int (J.field o "trials");
          prefixes = J.int (J.field o "prefixes");
          universe = J.int (J.field o "universe");
          sampled_fraction = J.float (J.field o "sampled_fraction");
          ops = J.int (J.field o "ops");
          sustained_rate = J.float (J.field o "sustained_rate");
          peak_window_rate = J.float (J.field o "peak_window_rate");
          queue_high_water = J.int (J.field o "queue_high_water");
          disturbed = J.int (J.field o "disturbed");
          unconverged = J.int (J.field o "unconverged");
          converged_trials = J.int (J.field o "converged_trials");
          p50 = J.float (J.field o "tail_p50");
          p95 = J.float (J.field o "tail_p95");
          p99 = J.float (J.field o "tail_p99");
        })

let pp_summary ppf s =
  Fmt.pf ppf
    "%s: %d trial(s), %d ops over %d prefixes (universe %d, %.0f%% sampled)@.sustained %.1f \
     upd/s (peak window %.1f), queue high-water %d@.settle tails p50 %.3f s, p95 %.3f s, \
     p99 %.3f s; unconverged %d@."
    s.workload s.trials s.ops s.prefixes s.universe (100.0 *. s.sampled_fraction)
    s.sustained_rate s.peak_window_rate s.queue_high_water s.p50 s.p95 s.p99 s.unconverged
