module Rng = Bgp_engine.Rng
module Pool = Bgp_engine.Pool
module Runner = Bgp_netsim.Runner
module Network = Bgp_netsim.Network
module Trace = Bgp_netsim.Trace
module Attribution = Bgp_netsim.Attribution
module Fi = Bgp_netsim.Fault_injector
module Router = Bgp_proto.Router
module Rib = Bgp_proto.Rib

type violation = { invariant : string; detail : string }

type outcome = {
  trial : int;
  trial_seed : int;
  schedule : Fi.schedule;
  kinds : string list;
  converged : bool;
  convergence_delay : float;
  messages : int;
  lost : int;
  digest : string;  (* hex digest of the trial's result + full trace *)
  violations : violation list;
}

type minimized = {
  m_trial_seed : int;
  m_schedule : Fi.schedule;
  m_invariants : string list;
  m_original_events : int;
}

type campaign = {
  outcomes : outcome list;
  kinds_seen : string list;
  fingerprint : string;
  minimized : minimized option;
}

type config = {
  base : Runner.scenario;
  trials : int;
  max_events : int;
  horizon : float;
  replay_every : int;  (* rerun every k-th trial and demand bit-identity; 0 = never *)
  capacity : int;  (* trace ring capacity per trial *)
  seed_violation : bool;  (* minimizer self-test: gray_link counts as a violation *)
  sidecar_dir : string option;
      (* per-trial bgp-attr-sidecar/1 emission: one sidecar (attribution +
         invariant verdicts) per trial, written atomically as the trial
         finishes, so `bgpsim serve` can watch the campaign mid-run *)
}

let config ?(trials = 100) ?(max_events = 5) ?(horizon = 8.0) ?(replay_every = 10)
    ?(capacity = 500_000) ?(seed_violation = false) ?sidecar_dir base =
  if trials <= 0 then invalid_arg "Chaos.config: trials must be positive";
  { base; trials; max_events; horizon; replay_every; capacity; seed_violation; sidecar_dir }

(* --- Per-trial schedule derivation --------------------------------------- *)

(* The generator stream is the trial root's 4th split: the runner takes
   the first three (topology, network, faults), so the schedule draws
   are independent of every stream the simulation consumes while still
   being a pure function of the trial seed. *)
let schedule_for cfg (s : Runner.scenario) =
  let topo = Runner.topology_of s in
  let failure = Runner.failure_of s topo in
  let root = Rng.create s.Runner.seed in
  ignore (Rng.split root);
  ignore (Rng.split root);
  ignore (Rng.split root);
  let rng = Rng.split root in
  Fi.generate ~rng ~topo ~failure ~max_events:cfg.max_events ~horizon:cfg.horizon ()

(* --- One instrumented run ------------------------------------------------ *)

type probe = {
  result : Runner.result;
  events : Trace.event list;
  trace_dropped : int;
  leftover : (int * int * bool) list;  (* surviving routers with queued/busy work *)
  stale : (int * int * int) list;  (* (router, dest, dead peer) Adj-RIB-In entries *)
}

let run_once ~capacity (s : Runner.scenario) schedule =
  let trace = Trace.create ~capacity () in
  let s =
    {
      s with
      Runner.faults = Some schedule;
      net = { s.Runner.net with Network.trace = Some trace };
    }
  in
  let leftover = ref [] in
  let stale = ref [] in
  let inspect net =
    for r = 0 to Network.num_routers net - 1 do
      if not (Network.is_failed net r) then begin
        let router = Network.router net r in
        let q = Router.queue_length router in
        let busy = Router.is_busy router in
        if q > 0 || busy then leftover := (r, q, busy) :: !leftover;
        let rib = Router.rib router in
        Rib.iter_dests rib (fun d ->
            List.iter
              (fun (e : Rib.entry) ->
                if Network.is_failed net e.Rib.peer then
                  stale := (r, d, e.Rib.peer) :: !stale)
              (Rib.entries_in rib d))
      end
    done
  in
  let result = Runner.run_with ~inspect s in
  {
    result;
    events = Trace.events trace;
    trace_dropped = Trace.dropped trace;
    leftover = List.rev !leftover;
    stale = List.rev !stale;
  }

(* A canonical, order-stable rendering of everything a replay must
   reproduce: the scalar result fields plus every trace event.  Two runs
   of the same (seed, schedule) must digest identically. *)
let probe_digest p =
  let r = p.result in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "c=%b wd=%.17g cd=%.17g m=%d a=%d w=%d wm=%d el=%d mq=%d ev=%d lost=%d sc=%b\n"
    r.Runner.converged r.Runner.warmup_delay r.Runner.convergence_delay r.Runner.messages
    r.Runner.adverts r.Runner.withdrawals r.Runner.warmup_messages r.Runner.eliminated
    r.Runner.max_queue r.Runner.events r.Runner.lost_messages r.Runner.survivors_connected;
  List.iter
    (fun e ->
      Buffer.add_string buf (Trace.event_to_json e);
      Buffer.add_char buf '\n')
    p.events;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- The invariant battery ----------------------------------------------- *)

let battery cfg ~probe ~schedule =
  let r = probe.result in
  let attr =
    match r.Runner.attribution with
    | Some a -> a
    | None -> invalid_arg "Chaos.battery: trial was not traced"
  in
  let t_fail = attr.Attribution.t_fail in
  let violations = ref [] in
  let add invariant detail = violations := { invariant; detail } :: !violations in
  (* 0. The harness itself must have seen everything. *)
  if probe.trace_dropped > 0 then
    add "trace_capacity"
      (Printf.sprintf "%d events dropped; raise --capacity" probe.trace_dropped);
  (* 1. Convergence reached, or the trial is explicitly diagnosed. *)
  if not r.Runner.converged then
    add "converged"
      (Printf.sprintf "hit the cap; last activity %.3f, delay so far %.3f"
         (t_fail +. r.Runner.convergence_delay)
         r.Runner.convergence_delay);
  (* 2. Attribution telescopes exactly: network-wide and per-dest. *)
  if attr.Attribution.complete then begin
    let sum = Attribution.total attr.Attribution.totals in
    if Float.abs (sum -. attr.Attribution.convergence_delay) > 1e-6 then
      add "telescoping"
        (Printf.sprintf "components %.9f <> delay %.9f" sum
           attr.Attribution.convergence_delay)
  end
  else if probe.trace_dropped = 0 then
    add "attribution_complete" "critical path did not reach a causal root";
  List.iter
    (fun (d : Attribution.dest_attr) ->
      if d.Attribution.dest_complete then
        let sum = Attribution.total d.Attribution.dest_parts in
        if Float.abs (sum -. d.Attribution.tail) > 1e-6 then
          add "telescoping_dest"
            (Printf.sprintf "dest %d: components %.9f <> tail %.9f"
               d.Attribution.dest sum d.Attribution.tail))
    attr.Attribution.per_dest;
  (* 3. Causal hygiene over the whole trace: ids strictly increase along
     cause pointers, and the only post-failure roots are injections. *)
  if probe.trace_dropped = 0 then
    List.iter
      (fun e ->
        let id = Trace.id_of e in
        let cause = Trace.cause_of e in
        if cause >= 0 && cause >= id then
          add "cause_order" (Printf.sprintf "event #%d caused by later #%d" id cause);
        if Trace.time_of e >= t_fail && cause = Trace.no_cause then
          match e with
          | Trace.Router_failed _ | Trace.Session_down _ | Trace.Fault _ -> ()
          | _ -> add "orphan_root" (Fmt.str "%a" Trace.pp_event e))
      probe.events;
  (* 4. Conservation: every traced send is delivered or accounted lost.
     Only meaningful once the network drained. *)
  if r.Runner.converged && probe.trace_dropped = 0 then begin
    let sent = ref 0 and delivered = ref 0 in
    List.iter
      (function
        | Trace.Update_sent _ -> incr sent
        | Trace.Update_delivered _ -> incr delivered
        | _ -> ())
      probe.events;
    if !sent <> !delivered + r.Runner.lost_messages then
      add "conservation"
        (Printf.sprintf "sent %d <> delivered %d + lost %d" !sent !delivered
           r.Runner.lost_messages)
  end;
  (* 5. Drained queues and no routes from dead routers at the end. *)
  if r.Runner.converged then
    List.iter
      (fun (router, q, busy) ->
        add "queue_drain"
          (Printf.sprintf "router %d: queue %d, busy %b after convergence" router q busy))
      probe.leftover;
  List.iter
    (fun (router, dest, peer) ->
      add "rib_conservation"
        (Printf.sprintf "router %d still holds dest %d from dead router %d" router dest
           peer))
    probe.stale;
  (* 6. Self-test hook: an intentionally-seeded "violation" the minimizer
     must find and reduce (gray links are one of five kinds, so most
     trials stay green and the campaign still exercises the green path). *)
  if
    cfg.seed_violation
    && List.exists (fun (e : Fi.event) -> Fi.kind_of_fault e.Fi.fault = "gray_link") schedule
  then add "seeded_violation" "intentional: schedule contains a gray_link fault";
  List.rev !violations

(* --- Trials -------------------------------------------------------------- *)

let run_trial cfg i =
  let trial_seed = cfg.base.Runner.seed + i in
  let s = { cfg.base with Runner.seed = trial_seed } in
  let schedule = schedule_for cfg s in
  let probe = run_once ~capacity:cfg.capacity s schedule in
  let digest = probe_digest probe in
  let violations = battery cfg ~probe ~schedule in
  let violations =
    if cfg.replay_every > 0 && i mod cfg.replay_every = 0 then begin
      let again = probe_digest (run_once ~capacity:cfg.capacity s schedule) in
      if again <> digest then
        violations
        @ [
            {
              invariant = "replay_identity";
              detail = Printf.sprintf "digest %s, replay %s" digest again;
            };
          ]
      else violations
    end
    else violations
  in
  (* Sidecar emission: the trial's attribution plus its battery verdict,
     written atomically so a live `bgpsim serve` watcher folds it the
     moment it lands.  Chaos trials spill no trace file — the sidecar is
     the only (and sufficient) per-trial artifact for merging. *)
  (match (cfg.sidecar_dir, probe.result.Runner.attribution) with
  | Some dir, Some attr ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let names =
      List.sort_uniq String.compare (List.map (fun v -> v.invariant) violations)
    in
    Attribution.write_sidecar
      (Filename.concat dir (Printf.sprintf "chaos.seed%d.attr.json" trial_seed))
      (Attribution.sidecar_of ~violations:names ~seed:trial_seed attr)
  | _ -> ());
  {
    trial = i;
    trial_seed;
    schedule;
    kinds = Fi.kinds schedule;
    converged = probe.result.Runner.converged;
    convergence_delay = probe.result.Runner.convergence_delay;
    messages = probe.result.Runner.messages;
    lost = probe.result.Runner.lost_messages;
    digest;
    violations;
  }

(* --- Delta-debugging minimization ---------------------------------------- *)

(* Complement-based ddmin over the event list: any sublist of a valid
   schedule is valid, so candidates never need re-validation.  The loop
   ends 1-minimal w.r.t. single-event removal; {!Fi.shrink} then polishes
   magnitudes (durations, sides, probabilities). *)
let ddmin ~fails events =
  let rec go events n =
    let len = List.length events in
    if len <= 1 then events
    else begin
      let chunk = (len + n - 1) / n in
      let complements =
        List.init n (fun i ->
            List.filteri (fun j _ -> j < i * chunk || j >= (i + 1) * chunk) events)
        |> List.filter (fun c -> List.length c < len)
      in
      match List.find_opt fails complements with
      | Some smaller -> go smaller (Stdlib.max (n - 1) 2)
      | None -> if n < len then go events (Stdlib.min len (2 * n)) else events
    end
  in
  go events 2

let minimize cfg (o : outcome) =
  let s = { cfg.base with Runner.seed = o.trial_seed } in
  let check schedule =
    battery cfg ~probe:(run_once ~capacity:cfg.capacity s schedule) ~schedule
  in
  let fails schedule = check schedule <> [] in
  (* Replay-identity violations are a property of the run pair, not the
     schedule; minimize only schedules whose single-run battery fails. *)
  if not (fails o.schedule) then None
  else begin
    let minimal = ddmin ~fails o.schedule in
    let rec polish schedule =
      match List.find_opt fails (Fi.shrink schedule) with
      | Some smaller -> polish smaller
      | None -> schedule
    in
    let m_schedule = polish minimal in
    Some
      {
        m_trial_seed = o.trial_seed;
        m_schedule;
        m_invariants =
          List.sort_uniq String.compare
            (List.map (fun v -> v.invariant) (check m_schedule));
        m_original_events = List.length o.schedule;
      }
  end

(* --- Campaign ------------------------------------------------------------ *)

let run_campaign ?jobs cfg =
  let outcomes = Pool.map ?jobs (run_trial cfg) (List.init cfg.trials Fun.id) in
  let kinds_seen =
    List.sort_uniq String.compare (List.concat_map (fun o -> o.kinds) outcomes)
  in
  let fingerprint =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map (fun o -> Printf.sprintf "%d=%s" o.trial_seed o.digest) outcomes)))
  in
  let minimized =
    match List.find_opt (fun o -> o.violations <> []) outcomes with
    | None -> None
    | Some o -> minimize cfg o
  in
  { outcomes; kinds_seen; fingerprint; minimized }

let violating campaign = List.filter (fun o -> o.violations <> []) campaign.outcomes

(* --- Reporting ----------------------------------------------------------- *)

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let artifact_to_json cfg campaign =
  let bad = violating campaign in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\"schema\":\"bgp-chaos/1\",\"base_seed\":%d,\"trials\":%d,\"horizon\":%s,\"max_events\":%d,\"fingerprint\":%s,\"kinds_seen\":[%s],\"violating_trials\":%d"
    cfg.base.Runner.seed cfg.trials (json_float cfg.horizon) cfg.max_events
    (json_str campaign.fingerprint)
    (String.concat "," (List.map json_str campaign.kinds_seen))
    (List.length bad);
  Buffer.add_string buf ",\"violations\":[";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"trial_seed\":%d,\"invariants\":[%s],\"details\":[%s],\"schedule\":%s}"
        o.trial_seed
        (String.concat ","
           (List.map json_str
              (List.sort_uniq String.compare
                 (List.map (fun v -> v.invariant) o.violations))))
        (String.concat "," (List.map (fun v -> json_str v.detail) o.violations))
        (Fi.to_json o.schedule))
    (List.filteri (fun i _ -> i < 20) bad);
  Buffer.add_string buf "]";
  (match campaign.minimized with
  | None -> Buffer.add_string buf ",\"minimized\":null"
  | Some m ->
    Printf.bprintf buf
      ",\"minimized\":{\"trial_seed\":%d,\"original_events\":%d,\"events\":%d,\"invariants\":[%s],\"schedule\":%s}"
      m.m_trial_seed m.m_original_events
      (List.length m.m_schedule)
      (String.concat "," (List.map json_str m.m_invariants))
      (Fi.to_json m.m_schedule));
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp_campaign ppf campaign =
  let bad = violating campaign in
  let n = List.length campaign.outcomes in
  let converged = List.length (List.filter (fun o -> o.converged) campaign.outcomes) in
  let lost = List.fold_left (fun acc o -> acc + o.lost) 0 campaign.outcomes in
  Fmt.pf ppf "chaos: %d trials, %d converged, %d violating@." n converged
    (List.length bad);
  Fmt.pf ppf "  fault kinds seen: %s@." (String.concat ", " campaign.kinds_seen);
  Fmt.pf ppf "  messages lost in flight: %d@." lost;
  Fmt.pf ppf "  fingerprint: %s@." campaign.fingerprint;
  List.iter
    (fun o ->
      Fmt.pf ppf "  FAIL seed %d: %s@." o.trial_seed
        (String.concat ", "
           (List.sort_uniq String.compare
              (List.map (fun v -> v.invariant) o.violations)));
      List.iter (fun v -> Fmt.pf ppf "    [%s] %s@." v.invariant v.detail) o.violations)
    (List.filteri (fun i _ -> i < 10) bad);
  if List.length bad > 10 then Fmt.pf ppf "  ... and %d more@." (List.length bad - 10);
  match campaign.minimized with
  | None -> ()
  | Some m ->
    Fmt.pf ppf "  minimized (seed %d): %d -> %d events, still violating [%s]@."
      m.m_trial_seed m.m_original_events (List.length m.m_schedule)
      (String.concat ", " m.m_invariants);
    List.iter (fun e -> Fmt.pf ppf "    %a@." Fi.pp_event e) m.m_schedule
