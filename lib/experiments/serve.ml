module A = Bgp_netsim.Attribution
module M = Bgp_netsim.Attr_merge
module J = Bgp_netsim.Json_lite

type t = {
  dir : string;
  acc : M.t;
  seen : (string, unit) Hashtbl.t;  (* sidecar file names already folded *)
  started : float;  (* wall clock at create, for uptime / trials-per-sec *)
  mutable scans : int;
  mutable folded : int;
  mutable requests : int;
  mutable q_status : int;
  mutable q_report : int;
  mutable q_flame : int;
}

let create ?worst_capacity ~dir () =
  {
    dir;
    acc = M.create ?worst_capacity ();
    seen = Hashtbl.create 256;
    started = Unix.gettimeofday ();
    scans = 0;
    folded = 0;
    requests = 0;
    q_status = 0;
    q_report = 0;
    q_flame = 0;
  }

(* One incremental pass: fold every sidecar we have not seen yet.  Only
   [*.attr.json] files count — trace JSONL is deliberately invisible to
   the service, and sidecars are renamed into place atomically, so a
   name either is not there yet or is a complete document.  A file that
   fails to parse is recorded as skipped and marked seen, so a corrupt
   drop is reported once, not once per scan. *)
let scan t =
  t.scans <- t.scans + 1;
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort String.compare names;
  let n = ref 0 in
  Array.iter
    (fun name ->
      if A.is_sidecar_path name && not (Hashtbl.mem t.seen name) then begin
        Hashtbl.add t.seen name ();
        match A.read_sidecar (Filename.concat t.dir name) with
        | Ok sc ->
          M.add_sidecar t.acc sc;
          incr n
        | Error e -> M.skip t.acc e
      end)
    names;
  t.folded <- t.folded + !n;
  !n

let trials t = M.trials t.acc

let status_json t =
  let r = M.report t.acc in
  let uptime = Unix.gettimeofday () -. t.started in
  let rate = if uptime > 0. then float_of_int r.M.r_trials /. uptime else 0. in
  let b = Buffer.create 512 in
  let f = J.float_lit in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"bgp-serve-status/1\",\"dir\":%s,\"uptime\":%s,\"trials\":%d,\"dests\":%d"
       (J.escape t.dir) (f uptime) r.M.r_trials r.M.r_dests);
  Buffer.add_string b
    (Printf.sprintf ",\"skipped\":%d,\"first_error\":%s" r.M.r_skipped
       (match r.M.r_first_error with None -> "null" | Some e -> J.escape e));
  Buffer.add_string b
    (Printf.sprintf ",\"mean_delay\":%s,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s"
       (f r.M.r_mean_delay) (f r.M.r_p50) (f r.M.r_p95) (f r.M.r_p99));
  Buffer.add_string b
    (Printf.sprintf ",\"battery\":{\"pass\":%d,\"fail\":%d,\"violations\":{%s}}" r.M.r_pass
       r.M.r_fail
       (String.concat ","
          (List.map (fun (n, c) -> Printf.sprintf "%s:%d" (J.escape n) c) r.M.r_violations)));
  Buffer.add_string b (Printf.sprintf ",\"trials_per_sec\":%s" (f rate));
  Buffer.add_string b
    (Printf.sprintf
       ",\"counters\":{\"scans\":%d,\"folded\":%d,\"requests\":%d,\"status\":%d,\"report\":%d,\"flame\":%d}}"
       t.scans t.folded t.requests t.q_status t.q_report t.q_flame);
  Buffer.contents b

let handle t line =
  t.requests <- t.requests + 1;
  match String.trim line with
  | "status" ->
    t.q_status <- t.q_status + 1;
    status_json t
  | "report" ->
    t.q_report <- t.q_report + 1;
    M.to_json t.acc
  | "flame" ->
    t.q_flame <- t.q_flame + 1;
    M.to_flamegraph t.acc
  | "shutdown" -> "{\"schema\":\"bgp-serve-status/1\",\"shutdown\":true}"
  | other -> Printf.sprintf "{\"error\":%s}" (J.escape ("unknown request: " ^ other))

(* Read one request line from a connection (client half-closes after
   sending, so EOF also terminates the request). *)
let read_request fd =
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec go () =
    if Buffer.length buf > 4096 then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        if not (String.contains (Buffer.contents buf) '\n') then go ()
  in
  go ();
  match String.index_opt (Buffer.contents buf) '\n' with
  | Some i -> String.sub (Buffer.contents buf) 0 i
  | None -> Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  go 0

let run ?worst_capacity ?max_requests ?(scan_interval = 0.5) ~socket ~dir () =
  let t = create ?worst_capacity ~dir () in
  ignore (scan t);
  if Sys.file_exists socket then Sys.remove socket;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Sys.remove socket with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 16;
  let served = ref 0 in
  let stop = ref false in
  while not !stop do
    (* Wake up at least every scan_interval so the fold keeps pace with
       the campaign even when nobody is asking. *)
    (match Unix.select [ srv ] [] [] scan_interval with
    | [], _, _ -> ignore (scan t)
    | _ :: _, _, _ ->
      let conn, _ = Unix.accept srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
        (fun () ->
          let req = read_request conn in
          (* Fold anything new before answering, so every response
             reflects the directory as of this request. *)
          ignore (scan t);
          write_all conn (handle t req);
          incr served;
          if String.trim req = "shutdown" then stop := true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    match max_requests with
    | Some m when !served >= m -> stop := true
    | _ -> ()
  done

let request ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_all fd (line ^ "\n");
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)
