module A = Bgp_netsim.Attribution
module M = Bgp_netsim.Attr_merge
module J = Bgp_netsim.Json_lite

type t = {
  dir : string;
  acc : M.t;
  seen : (string, unit) Hashtbl.t;  (* sidecar file names already folded *)
  started : float;  (* wall clock at create, for uptime / trials-per-sec *)
  mutable churn : (string * Churn_report.summary) list;
      (* (file name, summary) of folded churn campaigns, newest first *)
  mutable scans : int;
  mutable folded : int;
  mutable requests : int;
  mutable q_status : int;
  mutable q_report : int;
  mutable q_flame : int;
  mutable q_metrics : int;
  mutable fold_s : float;  (* cumulative wall seconds inside [scan] *)
  mutable last_scan : float;  (* wall clock of the last completed scan *)
}

let create ?worst_capacity ~dir () =
  {
    dir;
    acc = M.create ?worst_capacity ();
    seen = Hashtbl.create 256;
    started = Unix.gettimeofday ();
    churn = [];
    scans = 0;
    folded = 0;
    requests = 0;
    q_status = 0;
    q_report = 0;
    q_flame = 0;
    q_metrics = 0;
    fold_s = 0.0;
    last_scan = 0.0;
  }

(* Resident set size from /proc/self/statm (Linux); 0 where that is
   unavailable.  Page size is not exposed by [Unix], so assume 4 KiB —
   right on every platform with /proc. *)
let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ ->
          (match int_of_string_opt resident with Some p -> p * 4096 | None -> 0)
        | _ -> 0
        | exception End_of_file -> 0)

(* One incremental pass: fold every sidecar we have not seen yet.  Only
   [*.attr.json] files count — trace JSONL is deliberately invisible to
   the service, and sidecars are renamed into place atomically, so a
   name either is not there yet or is a complete document.  A file that
   fails to parse is recorded as skipped and marked seen, so a corrupt
   drop is reported once, not once per scan. *)
let scan t =
  let t0 = Unix.gettimeofday () in
  t.scans <- t.scans + 1;
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort String.compare names;
  let n = ref 0 in
  Array.iter
    (fun name ->
      if A.is_sidecar_path name && not (Hashtbl.mem t.seen name) then begin
        Hashtbl.add t.seen name ();
        match A.read_sidecar (Filename.concat t.dir name) with
        | Ok sc ->
          M.add_sidecar t.acc sc;
          incr n
        | Error e -> M.skip t.acc e
      end
      else if Churn_report.is_churn_path name && not (Hashtbl.mem t.seen name) then begin
        (* Churn campaign artifacts (bgp-churn/1) ride the same scan:
           their summaries back the workload gauges, separate from the
           attribution accumulator. *)
        Hashtbl.add t.seen name ();
        match Churn_report.read (Filename.concat t.dir name) with
        | Ok s -> t.churn <- (name, s) :: t.churn
        | Error e -> M.skip t.acc e
      end)
    names;
  t.folded <- t.folded + !n;
  let t1 = Unix.gettimeofday () in
  t.fold_s <- t.fold_s +. (t1 -. t0);
  t.last_scan <- t1;
  !n

let trials t = M.trials t.acc

let status_json t =
  let r = M.report t.acc in
  let uptime = Unix.gettimeofday () -. t.started in
  let rate = if uptime > 0. then float_of_int r.M.r_trials /. uptime else 0. in
  let b = Buffer.create 512 in
  let f = J.float_lit in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"bgp-serve-status/2\",\"dir\":%s,\"uptime\":%s,\"trials\":%d,\"dests\":%d"
       (J.escape t.dir) (f uptime) r.M.r_trials r.M.r_dests);
  Buffer.add_string b
    (Printf.sprintf ",\"skipped\":%d,\"first_error\":%s" r.M.r_skipped
       (match r.M.r_first_error with None -> "null" | Some e -> J.escape e));
  Buffer.add_string b
    (Printf.sprintf ",\"mean_delay\":%s,\"tail_p50\":%s,\"tail_p95\":%s,\"tail_p99\":%s"
       (f r.M.r_mean_delay) (f r.M.r_p50) (f r.M.r_p95) (f r.M.r_p99));
  Buffer.add_string b
    (Printf.sprintf ",\"battery\":{\"pass\":%d,\"fail\":%d,\"violations\":{%s}}" r.M.r_pass
       r.M.r_fail
       (String.concat ","
          (List.map (fun (n, c) -> Printf.sprintf "%s:%d" (J.escape n) c) r.M.r_violations)));
  Buffer.add_string b (Printf.sprintf ",\"trials_per_sec\":%s" (f rate));
  (* Active workload kind: the newest folded churn campaign's, or
     "one-shot" when only attribution sidecars have been folded. *)
  let workload =
    match t.churn with
    | (_, s) :: _ -> Some s.Churn_report.workload
    | [] -> if r.M.r_trials > 0 then Some "one-shot" else None
  in
  Buffer.add_string b
    (Printf.sprintf ",\"workload\":%s,\"churn_campaigns\":%d"
       (match workload with None -> "null" | Some w -> J.escape w)
       (List.length t.churn));
  (* /2 additions: explicit-unit uptime plus process gauges, so a status
     poll answers "is this instance healthy" without the metrics verb. *)
  let gc = Gc.quick_stat () in
  Buffer.add_string b
    (Printf.sprintf ",\"uptime_s\":%s,\"rss_bytes\":%d,\"gc\":{\"heap_words\":%d,\"minor_collections\":%d,\"major_collections\":%d}"
       (f uptime) (rss_bytes ()) gc.Gc.heap_words gc.Gc.minor_collections
       gc.Gc.major_collections);
  Buffer.add_string b
    (Printf.sprintf
       ",\"counters\":{\"scans\":%d,\"folded\":%d,\"requests\":%d,\"status\":%d,\"report\":%d,\"flame\":%d,\"metrics\":%d}}"
       t.scans t.folded t.requests t.q_status t.q_report t.q_flame t.q_metrics);
  Buffer.contents b

(* Prometheus text exposition format, version 0.0.4: HELP/TYPE comment
   pairs then one sample per line.  Scrapers poll this through
   [serve --query metrics] (or anything that can speak the one-line
   socket protocol). *)
let metrics_text t =
  let r = M.report t.acc in
  let now = Unix.gettimeofday () in
  let gc = Gc.quick_stat () in
  let b = Buffer.create 2048 in
  let sample ?labels ~help ~typ name v =
    Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n%s%s %s\n" name help name typ name
      (match labels with None -> "" | Some l -> "{" ^ l ^ "}")
      (J.float_lit v)
  in
  sample "bgp_serve_uptime_seconds" ~help:"Seconds since the server started."
    ~typ:"gauge" (now -. t.started);
  sample "bgp_serve_scans_total" ~help:"Directory scans performed." ~typ:"counter"
    (float_of_int t.scans);
  sample "bgp_serve_folded_trials_total" ~help:"Sidecars folded into the accumulator."
    ~typ:"counter" (float_of_int t.folded);
  sample "bgp_serve_skipped_total" ~help:"Sidecars skipped as unreadable."
    ~typ:"counter" (float_of_int r.M.r_skipped);
  sample "bgp_serve_requests_total" ~help:"Requests answered." ~typ:"counter"
    (float_of_int t.requests);
  sample "bgp_serve_fold_seconds_total"
    ~help:"Wall seconds spent scanning and folding sidecars." ~typ:"counter" t.fold_s;
  sample "bgp_serve_fold_lag_seconds"
    ~help:"Seconds since the last completed scan (staleness of answers)."
    ~typ:"gauge"
    (if t.last_scan > 0.0 then now -. t.last_scan else 0.0);
  sample "bgp_serve_trials" ~help:"Trials folded so far." ~typ:"gauge"
    (float_of_int r.M.r_trials);
  sample "bgp_serve_dests" ~help:"Pooled destination tails." ~typ:"gauge"
    (float_of_int r.M.r_dests);
  sample "bgp_serve_mean_delay_seconds" ~help:"Mean convergence delay." ~typ:"gauge"
    r.M.r_mean_delay;
  Printf.bprintf b
    "# HELP bgp_serve_tail_seconds Pooled per-destination tail percentiles.\n\
     # TYPE bgp_serve_tail_seconds gauge\n";
  Printf.bprintf b "bgp_serve_tail_seconds{quantile=\"0.5\"} %s\n" (J.float_lit r.M.r_p50);
  Printf.bprintf b "bgp_serve_tail_seconds{quantile=\"0.95\"} %s\n" (J.float_lit r.M.r_p95);
  Printf.bprintf b "bgp_serve_tail_seconds{quantile=\"0.99\"} %s\n" (J.float_lit r.M.r_p99);
  sample "bgp_serve_battery_pass_total" ~help:"Trials whose shape battery passed."
    ~typ:"counter" (float_of_int r.M.r_pass);
  sample "bgp_serve_battery_fail_total" ~help:"Trials whose shape battery failed."
    ~typ:"counter" (float_of_int r.M.r_fail);
  sample "bgp_churn_campaigns" ~help:"Churn campaign artifacts folded." ~typ:"gauge"
    (float_of_int (List.length t.churn));
  (* Per-campaign steady-state gauges, labeled by artifact file name. *)
  if t.churn <> [] then begin
    let labeled name help each =
      Printf.bprintf b "# HELP %s %s\n# TYPE %s gauge\n" name help name;
      List.iter
        (fun (file, (s : Churn_report.summary)) ->
          Printf.bprintf b "%s{campaign=%s} %s\n" name (J.escape file)
            (J.float_lit (each s)))
        (List.rev t.churn)
    in
    labeled "bgp_churn_sustained_updates_per_second"
      "Mean sustained update-processing throughput under churn." (fun s ->
        s.Churn_report.sustained_rate);
    labeled "bgp_churn_peak_window_updates_per_second"
      "Best single-window update throughput under churn." (fun s ->
        s.Churn_report.peak_window_rate);
    labeled "bgp_churn_queue_high_water" "Deepest input queue seen under churn."
      (fun s -> float_of_int s.Churn_report.queue_high_water);
    labeled "bgp_churn_unconverged_prefixes"
      "Prefixes inconsistent after the churn schedule quiesced." (fun s ->
        float_of_int s.Churn_report.unconverged);
    labeled "bgp_churn_settle_p99_seconds"
      "Pooled p99 per-prefix settle delay under churn." (fun s -> s.Churn_report.p99)
  end;
  sample "bgp_process_resident_memory_bytes" ~help:"Resident set size."
    ~typ:"gauge"
    (float_of_int (rss_bytes ()));
  sample "bgp_gc_heap_words" ~help:"OCaml major heap size in words." ~typ:"gauge"
    (float_of_int gc.Gc.heap_words);
  sample "bgp_gc_minor_collections_total" ~help:"Minor collections." ~typ:"counter"
    (float_of_int gc.Gc.minor_collections);
  sample "bgp_gc_major_collections_total" ~help:"Major collections." ~typ:"counter"
    (float_of_int gc.Gc.major_collections);
  Buffer.contents b

let handle t line =
  t.requests <- t.requests + 1;
  match String.trim line with
  | "status" ->
    t.q_status <- t.q_status + 1;
    status_json t
  | "report" ->
    t.q_report <- t.q_report + 1;
    M.to_json t.acc
  | "flame" ->
    t.q_flame <- t.q_flame + 1;
    M.to_flamegraph t.acc
  | "metrics" ->
    t.q_metrics <- t.q_metrics + 1;
    metrics_text t
  | "shutdown" -> "{\"schema\":\"bgp-serve-status/2\",\"shutdown\":true}"
  | other -> Printf.sprintf "{\"error\":%s}" (J.escape ("unknown request: " ^ other))

(* Read one request line from a connection (client half-closes after
   sending, so EOF also terminates the request). *)
let read_request fd =
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec go () =
    if Buffer.length buf > 4096 then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        if not (String.contains (Buffer.contents buf) '\n') then go ()
  in
  go ();
  match String.index_opt (Buffer.contents buf) '\n' with
  | Some i -> String.sub (Buffer.contents buf) 0 i
  | None -> Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  go 0

let run ?worst_capacity ?max_requests ?(scan_interval = 0.5) ~socket ~dir () =
  let t = create ?worst_capacity ~dir () in
  ignore (scan t);
  if Sys.file_exists socket then Sys.remove socket;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Sys.remove socket with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 16;
  let served = ref 0 in
  let stop = ref false in
  while not !stop do
    (* Wake up at least every scan_interval so the fold keeps pace with
       the campaign even when nobody is asking. *)
    (match Unix.select [ srv ] [] [] scan_interval with
    | [], _, _ -> ignore (scan t)
    | _ :: _, _, _ ->
      let conn, _ = Unix.accept srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
        (fun () ->
          let req = read_request conn in
          (* Fold anything new before answering, so every response
             reflects the directory as of this request. *)
          ignore (scan t);
          write_all conn (handle t req);
          incr served;
          if String.trim req = "shutdown" then stop := true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    match max_requests with
    | Some m when !served >= m -> stop := true
    | _ -> ()
  done

let request ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_all fd (line ^ "\n");
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)
