module Runner = Bgp_netsim.Runner
module Stats = Bgp_engine.Stats
module Pool = Bgp_engine.Pool

(* The memo cache is shared by every domain running trials, so it is a
   mutex-protected table with single-flight semantics: the first caller
   to miss on a key installs a [Computing] marker and simulates outside
   the lock; concurrent callers for the same key block on the condition
   variable instead of simulating the same (scenario, trials) twice. *)

type entry = Done of Runner.result list | Computing

let lock = Mutex.create ()
let cond = Condition.create ()
let cache : (string, entry) Hashtbl.t = Hashtbl.create 64

let key scenario trials =
  Digest.string (Marshal.to_string (scenario, trials) [])

let trial_scenarios scenario trials =
  List.init trials (fun i -> { scenario with Runner.seed = scenario.Runner.seed + i })

(* With [lock] held: wait out any in-flight computation of [k]; either
   return the cached result or install a Computing claim for the caller. *)
let rec find_or_claim k =
  match Hashtbl.find_opt cache k with
  | Some (Done r) -> `Hit r
  | Some Computing ->
    Condition.wait cond lock;
    find_or_claim k
  | None ->
    Hashtbl.replace cache k Computing;
    `Claimed

(* Resolve claims after computing outside the lock.  On failure the
   claims are simply dropped so a later caller retries.  A concurrent
   [clear_cache] may have removed a claim already; only still-pending
   markers are touched. *)
let fill_done k r =
  Hashtbl.replace cache k (Done r)

let drop_claim k =
  match Hashtbl.find_opt cache k with
  | Some Computing -> Hashtbl.remove cache k
  | Some (Done _) | None -> ()

let results ?jobs scenario ~trials =
  let k = key scenario trials in
  Mutex.lock lock;
  match find_or_claim k with
  | `Hit r ->
    Mutex.unlock lock;
    r
  | `Claimed ->
    Mutex.unlock lock;
    (match Pool.map ?jobs Runner.run (trial_scenarios scenario trials) with
    | r ->
      Mutex.lock lock;
      fill_done k r;
      Condition.broadcast cond;
      Mutex.unlock lock;
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock lock;
      drop_claim k;
      Condition.broadcast cond;
      Mutex.unlock lock;
      Printexc.raise_with_backtrace e bt)

(* Traced runs bypass the memo cache entirely: a trial's result is now
   tied to its trace (and its spill file on disk), which a cache hit
   would not reproduce — and the cache key Marshals the scenario, which
   a Trace.t's out_channel cannot survive anyway. *)
let traced_results ?jobs ?capacity ?spill_base scenario ~trials =
  let pairs = Runner.traced ?capacity ?spill_base scenario ~trials in
  let results = Pool.map ?jobs (fun (s, _) -> Runner.run s) pairs in
  List.map2 (fun r (_, trace) -> (r, trace)) results pairs

(* The campaign-producing variant: run traced, then finalize every trace
   file and drop the bgp-attr-sidecar/1 sidecar next to it, so the sweep
   directory is immediately mergeable (O(trials)) and watchable
   (`bgpsim serve`) — no open traces escape. *)
let traced_archived ?jobs ?capacity ~spill_base scenario ~trials =
  let pairs = Runner.traced ?capacity ~spill_base scenario ~trials in
  let results = Pool.map ?jobs (fun (s, _) -> Runner.run s) pairs in
  let sidecars = Runner.finalize_traced pairs results in
  (results, sidecars)

let prefetch ?jobs specs =
  (* Claim every uncached key in one pass; a key listed twice is only
     claimed once (the second occurrence sees the Computing marker). *)
  let specs = List.map (fun (s, t) -> (key s t, s, t)) specs in
  Mutex.lock lock;
  let claimed =
    List.filter
      (fun (k, _, _) ->
        match Hashtbl.find_opt cache k with
        | Some _ -> false
        | None ->
          Hashtbl.replace cache k Computing;
          true)
      specs
  in
  Mutex.unlock lock;
  match claimed with
  | [] -> ()
  | _ -> (
    (* One flat batch over every (scenario, seed) pair so the pool sees
       the full width of the sweep, not one point's trials at a time. *)
    let runs = List.concat_map (fun (_, s, t) -> trial_scenarios s t) claimed in
    match Pool.map ?jobs Runner.run runs with
    | all ->
      Mutex.lock lock;
      let rest = ref all in
      List.iter
        (fun (k, _, t) ->
          let rec split n acc l =
            if n = 0 then (List.rev acc, l)
            else
              match l with
              | x :: tl -> split (n - 1) (x :: acc) tl
              | [] -> assert false
          in
          let mine, tl = split t [] !rest in
          rest := tl;
          fill_done k mine)
        claimed;
      Condition.broadcast cond;
      Mutex.unlock lock
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock lock;
      List.iter (fun (k, _, _) -> drop_claim k) claimed;
      Condition.broadcast cond;
      Mutex.unlock lock;
      Printexc.raise_with_backtrace e bt)

let summary metric results =
  let stats = Stats.create () in
  List.iter (fun r -> Stats.add stats (metric r)) results;
  Stats.summarize stats

let mean_of metric results = (summary metric results).Stats.mean
let sd_of metric results = (summary metric results).Stats.stddev

let point ?jobs scenario ~trials ~x ~metric =
  let r = results ?jobs scenario ~trials in
  let s = summary metric r in
  { Figure.x; y = s.Stats.mean; sd = s.Stats.stddev }

let clear_cache () =
  Mutex.lock lock;
  Hashtbl.reset cache;
  (* Waiters blocked on a Computing marker must re-check: the marker is
     gone, so they re-claim and recompute rather than wait forever. *)
  Condition.broadcast cond;
  Mutex.unlock lock

let cache_size () =
  Mutex.lock lock;
  let n = Hashtbl.length cache in
  Mutex.unlock lock;
  n
