(** Deterministic chaos campaign: thousands of seeded fault-injection
    trials ({!Bgp_netsim.Fault_injector}) across {!Bgp_engine.Pool}
    domains, an invariant battery on every trial, and delta-debugging
    minimization of the fault schedule when one fails.

    Everything is a pure function of the base seed: trial [i] uses seed
    [base.seed + i], derives its schedule from that seed, and digests its
    full result + trace; the campaign fingerprint digests all trials, so
    two campaigns from the same seed must be bit-identical regardless of
    [--jobs].

    The battery per trial:
    - [converged] — the run drained before the cap (or is diagnosed);
    - [telescoping] / [telescoping_dest] — attribution components sum
      exactly (1e-6) to the measured delay, network-wide and per prefix;
    - [attribution_complete] / [orphan_root] / [cause_order] — every
      post-failure causal root is an injection ([Router_failed],
      [Session_down], [Fault]) and cause ids precede their effects;
    - [conservation] — traced sends = deliveries + in-flight losses;
    - [queue_drain] / [rib_conservation] — after convergence no survivor
      holds queued work or routes learned from a dead router;
    - [replay_identity] — every k-th trial reruns and must digest
      identically;
    - [seeded_violation] — self-test hook ({!config}[ ~seed_violation])
      that declares gray-link schedules violating so the minimization
      path itself is exercised in CI. *)

type violation = { invariant : string; detail : string }

type outcome = {
  trial : int;
  trial_seed : int;
  schedule : Bgp_netsim.Fault_injector.schedule;
  kinds : string list;
  converged : bool;
  convergence_delay : float;
  messages : int;
  lost : int;
  digest : string;
      (** hex digest of the result fields + every trace event — the
          replay-identity witness *)
  violations : violation list;  (** empty = all invariants green *)
}

type minimized = {
  m_trial_seed : int;
  m_schedule : Bgp_netsim.Fault_injector.schedule;
  m_invariants : string list;  (** invariants the minimal schedule still violates *)
  m_original_events : int;
}

type campaign = {
  outcomes : outcome list;  (** in trial order *)
  kinds_seen : string list;  (** distinct fault kinds across all trials *)
  fingerprint : string;  (** digest over all trial digests *)
  minimized : minimized option;
      (** the first violating trial's schedule, ddmin-reduced and
          shrink-polished; [None] when every trial is green (or the
          violation does not reproduce schedule-deterministically,
          e.g. a pure replay mismatch) *)
}

type config = {
  base : Bgp_netsim.Runner.scenario;
  trials : int;
  max_events : int;
  horizon : float;
  replay_every : int;
  capacity : int;
  seed_violation : bool;
  sidecar_dir : string option;
      (** when set, every trial writes its
          {!Bgp_netsim.Attribution.sidecar} (attribution + the battery's
          violated-invariant names) into this directory as
          [chaos.seedN.attr.json], atomically as it finishes — the hook
          that makes a running campaign observable by [bgpsim serve] and
          mergeable by [analyze --merge] without any trace files *)
}

val config :
  ?trials:int ->
  ?max_events:int ->
  ?horizon:float ->
  ?replay_every:int ->
  ?capacity:int ->
  ?seed_violation:bool ->
  ?sidecar_dir:string ->
  Bgp_netsim.Runner.scenario ->
  config
(** Defaults: 100 trials, 5 base events, 8 s horizon, replay every 10th
    trial, 500k-event trace rings, no seeded violation, no sidecars.
    The base scenario's [faults] and [net.trace] are overridden per
    trial.
    @raise Invalid_argument if [trials <= 0]. *)

val schedule_for : config -> Bgp_netsim.Runner.scenario -> Bgp_netsim.Fault_injector.schedule
(** The schedule trial seed [s.seed] derives (pure; exposed for tests). *)

val run_trial : config -> int -> outcome
(** Run trial [i] (seed [base.seed + i]): derive the schedule, run
    traced with the injector armed, check the battery, replay if due. *)

val run_campaign : ?jobs:int -> config -> campaign
(** All trials over the pool (default {!Bgp_engine.Pool.default_jobs}),
    then minimization of the first violating trial, if any.  Outcomes
    are input-ordered, so the result is independent of [jobs]. *)

val violating : campaign -> outcome list

val minimize : config -> outcome -> minimized option
(** ddmin over the outcome's schedule against the full battery rerun,
    then {!Bgp_netsim.Fault_injector.shrink} polish; [None] if the
    violation does not reproduce from the schedule alone. *)

val artifact_to_json : config -> campaign -> string
(** The [bgp-chaos/1] artifact: seed, fingerprint, kinds seen, violating
    trials (capped at 20, with schedules) and the minimized reproducer. *)

val pp_campaign : Format.formatter -> campaign -> unit
