module Pool = Bgp_engine.Pool

type entry = {
  id : string;
  title : string;
  kind : string;
  wall : float;
  cpu : float;
  speedup : float;
  sim_runs : int;
  batches : int;
  queue_wait : float;
  per_domain : Pool.domain_stat list;
  verdicts_pass : int;
  verdicts_total : int;
}

type micro = {
  name : string;
  iters : int;
  micro_wall : float;
  ns_per_op : float;
  ops_per_s : float;
}

type attribution = {
  attr_scenario : string;
  attr_delay : float;
  attr_queueing : float;
  attr_processing : float;
  attr_mrai_hold : float;
  attr_propagation : float;
  attr_hops : int;
  attr_complete : bool;
  attr_dests : int;
  attr_tail_p50 : float;
  attr_tail_p95 : float;
  attr_tail_p99 : float;
  attr_straggler_dest : int;
  attr_straggler_tail : float;
}

(* Where the harness's wall time went: a flat rendering of a
   Bgp_engine.Profile report (see Profile.summarize), kept as plain rows
   so this module stays decoupled from the profiler's span types. *)
type profile = {
  prof_wall : float;  (* profiled wall time, seconds *)
  prof_queue_wait : float;  (* cumulative pool queue wait, seconds *)
  prof_spans : (string * float * int) list;  (* label, seconds, count *)
  prof_counters : (string * int) list;
}

type t = {
  trials : int;
  n : int;
  jobs : int;
  mutable entries_rev : entry list;
  mutable micros_rev : micro list;
  mutable attribution : attribution option;
  mutable profile : profile option;
}

let create ~trials ~n ~jobs =
  {
    trials;
    n;
    jobs;
    entries_rev = [];
    micros_rev = [];
    attribution = None;
    profile = None;
  }

let set_attribution t a = t.attribution <- Some a
let attribution t = t.attribution
let set_profile t p = t.profile <- Some p
let profile t = t.profile

let micro ~name ~iters ~wall =
  let per_op = if iters > 0 then wall /. float_of_int iters else 0.0 in
  {
    name;
    iters;
    micro_wall = wall;
    ns_per_op = per_op *. 1e9;
    ops_per_s = (if per_op > 0.0 then 1.0 /. per_op else 0.0);
  }

let add_micro t m = t.micros_rev <- m :: t.micros_rev
let micros t = List.rev t.micros_rev

let entry ~id ~title ~kind ~wall ~pool ~per_domain ~verdicts_pass ~verdicts_total =
  {
    id;
    title;
    kind;
    wall;
    cpu = pool.Pool.busy;
    speedup = (if pool.Pool.wall > 0.0 then pool.Pool.busy /. pool.Pool.wall else 1.0);
    sim_runs = pool.Pool.jobs_run;
    batches = pool.Pool.batches;
    queue_wait = pool.Pool.queue_wait;
    per_domain;
    verdicts_pass;
    verdicts_total;
  }

let add t e = t.entries_rev <- e :: t.entries_rev
let entries t = List.rev t.entries_rev

(* --- JSON emission -------------------------------------------------------- *)

let buf_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_float buf v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.bprintf buf "%.0f" v
  else Printf.bprintf buf "%.9g" v

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"bgp-bench/1\",\n";
  Printf.bprintf buf "  \"trials\": %d,\n  \"n\": %d,\n  \"jobs\": %d,\n" t.trials t.n
    t.jobs;
  Buffer.add_string buf "  \"figures\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {";
      Buffer.add_string buf "\"id\": ";
      buf_string buf e.id;
      Buffer.add_string buf ", \"title\": ";
      buf_string buf e.title;
      Buffer.add_string buf ", \"kind\": ";
      buf_string buf e.kind;
      Buffer.add_string buf ", \"wall_s\": ";
      buf_float buf e.wall;
      Buffer.add_string buf ", \"cpu_s\": ";
      buf_float buf e.cpu;
      Buffer.add_string buf ", \"speedup\": ";
      buf_float buf e.speedup;
      Printf.bprintf buf ", \"sim_runs\": %d, \"batches\": %d, \"queue_wait_s\": "
        e.sim_runs e.batches;
      buf_float buf e.queue_wait;
      Printf.bprintf buf ", \"verdicts_pass\": %d, \"verdicts_total\": %d"
        e.verdicts_pass e.verdicts_total;
      Buffer.add_string buf ", \"last_batch_domains\": [";
      List.iteri
        (fun j (d : Pool.domain_stat) ->
          if j > 0 then Buffer.add_string buf ", ";
          Printf.bprintf buf "{\"domain\": %d, \"jobs\": %d, \"busy_s\": " d.Pool.domain
            d.Pool.jobs;
          buf_float buf d.Pool.busy;
          Buffer.add_string buf ", \"wait_s\": ";
          buf_float buf d.Pool.wait;
          Buffer.add_char buf '}')
        e.per_domain;
      Buffer.add_string buf "]}")
    (entries t);
  Buffer.add_string buf "\n  ],\n  \"micro\": [";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\"name\": ";
      buf_string buf m.name;
      Printf.bprintf buf ", \"iters\": %d, \"wall_s\": " m.iters;
      buf_float buf m.micro_wall;
      Buffer.add_string buf ", \"ns_per_op\": ";
      buf_float buf m.ns_per_op;
      Buffer.add_string buf ", \"ops_per_s\": ";
      buf_float buf m.ops_per_s;
      Buffer.add_char buf '}')
    (micros t);
  Buffer.add_string buf "\n  ]";
  (match t.attribution with
  | None -> ()
  | Some a ->
    Buffer.add_string buf ",\n  \"attribution\": {\"scenario\": ";
    buf_string buf a.attr_scenario;
    Buffer.add_string buf ", \"convergence_delay_s\": ";
    buf_float buf a.attr_delay;
    Buffer.add_string buf ", \"queueing_s\": ";
    buf_float buf a.attr_queueing;
    Buffer.add_string buf ", \"processing_s\": ";
    buf_float buf a.attr_processing;
    Buffer.add_string buf ", \"mrai_hold_s\": ";
    buf_float buf a.attr_mrai_hold;
    Buffer.add_string buf ", \"propagation_s\": ";
    buf_float buf a.attr_propagation;
    Printf.bprintf buf ", \"critical_hops\": %d, \"complete\": %b" a.attr_hops
      a.attr_complete;
    Printf.bprintf buf ", \"dests\": %d, \"tail_p50_s\": " a.attr_dests;
    buf_float buf a.attr_tail_p50;
    Buffer.add_string buf ", \"tail_p95_s\": ";
    buf_float buf a.attr_tail_p95;
    Buffer.add_string buf ", \"tail_p99_s\": ";
    buf_float buf a.attr_tail_p99;
    Printf.bprintf buf ", \"straggler_dest\": %d, \"straggler_tail_s\": "
      a.attr_straggler_dest;
    buf_float buf a.attr_straggler_tail;
    Buffer.add_char buf '}');
  (match t.profile with
  | None -> ()
  | Some p ->
    Buffer.add_string buf ",\n  \"profile\": {\"wall_s\": ";
    buf_float buf p.prof_wall;
    Buffer.add_string buf ", \"queue_wait_s\": ";
    buf_float buf p.prof_queue_wait;
    Buffer.add_string buf ", \"spans\": [";
    List.iteri
      (fun i (label, seconds, count) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf "\n      {\"span\": ";
        buf_string buf label;
        Buffer.add_string buf ", \"total_s\": ";
        buf_float buf seconds;
        Printf.bprintf buf ", \"count\": %d}" count)
      p.prof_spans;
    Buffer.add_string buf "\n    ], \"counters\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        buf_string buf name;
        Printf.bprintf buf ": %d" v)
      p.prof_counters;
    Buffer.add_string buf "}}");
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

(* --- Minimal JSON reader -------------------------------------------------- *)

(* Just enough of RFC 8259 to validate our own emitters in tests (and to
   let external tooling failures show up as parse errors here first).
   Numbers are floats; no unicode decoding beyond \uXXXX -> '?' for
   non-ASCII. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected %c at %d, got %c" c !pos c'
    | None -> parse_error "expected %c at %d, got end of input" c !pos
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string at %d" !pos
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= n then parse_error "truncated \\u escape at %d" !pos;
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> parse_error "bad \\u escape %S at %d" hex !pos
          in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | Some c -> parse_error "bad escape \\%c at %d" c !pos
        | None -> parse_error "truncated escape at %d" !pos);
        advance ();
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some v -> Num v
    | None -> parse_error "bad number %S at %d" lit start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input at %d" !pos
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> parse_error "expected , or } at %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at %d" !pos
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error "unexpected character %c at %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at %d" !pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_str = function Str v -> Some v | _ -> None
let to_list = function Arr v -> Some v | _ -> None
