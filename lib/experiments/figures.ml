module Runner = Bgp_netsim.Runner
module Mrai = Bgp_core.Mrai_controller
module Iq = Bgp_core.Input_queue
module Degree_dist = Bgp_topology.Degree_dist

let delay r = r.Runner.convergence_delay
let messages r = float_of_int r.Runner.messages

(* The 70-30 topology's class boundary: low-degree nodes have degree 1-3. *)
let degree_threshold = 3

(* Both series builders prefetch the whole sweep before reading any
   point, so the trial fan-out parallelises across the full series
   width (points x trials), not one point at a time. *)

let series_over (opts : Scenarios.opts) ~label ~metric ~xs ~x_of make_scenario =
  let scenarios = List.map (fun x -> (x, make_scenario x)) xs in
  Sweep.prefetch (List.map (fun (_, s) -> (s, opts.trials)) scenarios);
  {
    Figure.label;
    points =
      List.map
        (fun (x, s) -> Sweep.point s ~trials:opts.trials ~x:(x_of x) ~metric)
        scenarios;
  }

let series_over_sizes (opts : Scenarios.opts) ~label ~metric make_scenario =
  series_over opts ~label ~metric ~xs:opts.sizes ~x_of:(fun frac -> frac *. 100.0)
    make_scenario

let series_over_mrais (opts : Scenarios.opts) ~label ~metric make_scenario =
  series_over opts ~label ~metric ~xs:opts.mrais ~x_of:Fun.id make_scenario

let static_size_series opts ~metric mrai =
  series_over_sizes opts
    ~label:(Printf.sprintf "MRAI=%g" mrai)
    ~metric
    (fun frac -> Scenarios.flat opts ~scheme:(Static mrai) ~frac ())

(* --- Figs 1-2: static MRAIs over failure size -------------------------- *)

let fig01 opts =
  {
    Figure.id = "fig1";
    title = "Convergence delay for different sized failures";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = List.map (static_size_series opts ~metric:delay) Scenarios.fig1_mrais;
    paper_expectation =
      "low MRAI is best for small failures but its delay rises sharply with \
       failure size; higher MRAIs start higher but grow much more slowly";
  }

let fig02 opts =
  {
    Figure.id = "fig2";
    title = "Number of generated messages for different MRAI values";
    xlabel = "failure %";
    ylabel = "update messages";
    series = List.map (static_size_series opts ~metric:messages) Scenarios.fig1_mrais;
    paper_expectation =
      "message counts are similar for small failures; the MRAI=0.5 count \
       shoots up with failure size while larger MRAIs grow gradually";
  }

(* --- Fig 3: V-curves ---------------------------------------------------- *)

let fig03 opts =
  let series frac =
    series_over_mrais opts
      ~label:(Printf.sprintf "%g%% failure" (frac *. 100.0))
      ~metric:delay
      (fun mrai -> Scenarios.flat opts ~scheme:(Static mrai) ~frac ())
  in
  {
    Figure.id = "fig3";
    title = "Variation in convergence delay with MRAI";
    xlabel = "MRAI (s)";
    ylabel = "convergence delay (s)";
    series = List.map series [ 0.01; 0.05; 0.10 ];
    paper_expectation =
      "V-shaped curves; the optimal MRAI grows with failure size (~0.5 s for \
       1%, ~1.25 s for 5%)";
  }

(* --- Figs 4-5: degree distributions ------------------------------------ *)

let topo_mrai_series opts ~label ~spec ~frac =
  series_over_mrais opts ~label ~metric:delay (fun mrai ->
      Scenarios.flat ~spec opts ~scheme:(Static mrai) ~frac ())

let fig04 opts =
  {
    Figure.id = "fig4";
    title = "Convergence delay for different topologies (5% failure)";
    xlabel = "MRAI (s)";
    ylabel = "convergence delay (s)";
    series =
      [
        topo_mrai_series opts ~label:"50-50" ~spec:Degree_dist.skewed_50_50 ~frac:0.05;
        topo_mrai_series opts ~label:"70-30" ~spec:Degree_dist.skewed_70_30 ~frac:0.05;
        topo_mrai_series opts ~label:"85-15" ~spec:Degree_dist.skewed_85_15 ~frac:0.05;
      ];
    paper_expectation =
      "optimal MRAI grows with the degree of the high-degree nodes: ~1.0 s \
       (50-50, high degree 5-6), ~1.25 s (70-30, high degree 8), ~2.25 s \
       (85-15, high degree 14)";
  }

let fig05 opts =
  {
    Figure.id = "fig5";
    title = "Effect of average degree on convergence delay (5% failure)";
    xlabel = "MRAI (s)";
    ylabel = "convergence delay (s)";
    series =
      [
        topo_mrai_series opts ~label:"avg degree 3.8" ~spec:Degree_dist.skewed_50_50
          ~frac:0.05;
        topo_mrai_series opts ~label:"avg degree 7.6"
          ~spec:Degree_dist.skewed_50_50_dense ~frac:0.05;
      ];
    paper_expectation =
      "both the optimal MRAI and the minimum delay are larger for the denser \
       topology (optimum ~2 s, like a high-degree-14 topology)";
  }

(* --- Fig 6: degree-dependent MRAI --------------------------------------- *)

let fig06 opts =
  let scheme_series label scheme =
    series_over_sizes opts ~label ~metric:delay (fun frac ->
        Scenarios.flat opts ~scheme ~frac ())
  in
  {
    Figure.id = "fig6";
    title = "Effect of degree dependent MRAI";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        scheme_series "low 0.5, high 2.25"
          (Degree_dependent { threshold = degree_threshold; low = 0.5; high = 2.25 });
        scheme_series "low 2.25, high 0.5"
          (Degree_dependent { threshold = degree_threshold; low = 2.25; high = 0.5 });
        scheme_series "MRAI=0.5" (Static 0.5);
        scheme_series "MRAI=2.25" (Static 2.25);
      ];
    paper_expectation =
      "(low 0.5, high 2.25) tracks MRAI=2.25 for large failures but is much \
       better for small ones; the reversed assignment behaves like MRAI=0.5 \
       and is very bad for large failures";
  }

(* --- Figs 7-9: dynamic MRAI --------------------------------------------- *)

let dynamic_scheme ~up ~down =
  Mrai.Dynamic
    {
      levels = [| 0.5; 1.25; 2.25 |];
      up_threshold = up;
      down_threshold = down;
      detector = Mrai.Queue_work;
    }

let fig07 opts =
  let dynamic =
    series_over_sizes opts ~label:"dynamic" ~metric:delay (fun frac ->
        Scenarios.flat opts ~scheme:Scenarios.paper_dynamic ~frac ())
  in
  {
    Figure.id = "fig7";
    title = "Effect of dynamic MRAI";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series = dynamic :: List.map (static_size_series opts ~metric:delay) Scenarios.fig1_mrais;
    paper_expectation =
      "the dynamic scheme stays close to the lower envelope: ~MRAI=0.5 for \
       1-2.5%, ~MRAI=1.25 for 5%, and between 1.25 and 2.25 for 10-20%";
  }

let threshold_series opts ~label ~up ~down =
  series_over_sizes opts ~label ~metric:delay (fun frac ->
      Scenarios.flat opts ~scheme:(dynamic_scheme ~up ~down) ~frac ())

let fig08 opts =
  {
    Figure.id = "fig8";
    title = "Effect of upTh on convergence delay (downTh = 0)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      List.map
        (fun up -> threshold_series opts ~label:(Printf.sprintf "upTh=%g" up) ~up ~down:0.0)
        [ 0.2; 0.65; 1.25 ];
    paper_expectation =
      "a low upTh behaves like a constant high MRAI (worse for small \
       failures, good for large); raising upTh improves small failures and \
       hurts large ones; 0.65 and 1.25 are both reasonable";
  }

let fig09 opts =
  {
    Figure.id = "fig9";
    title = "Effect of downTh on convergence delay (upTh = 0.65)";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      List.map
        (fun down ->
          threshold_series opts ~label:(Printf.sprintf "downTh=%g" down) ~up:0.65 ~down)
        [ 0.0; 0.05; 0.3 ];
    paper_expectation =
      "increasing downTh makes more nodes fall back to low MRAI, increasing \
       the delay for larger failures; results are stable over a range";
  }

(* --- Figs 10-12: batching ----------------------------------------------- *)

let fig10 opts =
  let s label scheme discipline =
    series_over_sizes opts ~label ~metric:delay (fun frac ->
        Scenarios.flat opts ~scheme ~discipline ~frac ())
  in
  {
    Figure.id = "fig10";
    title = "Performance of batching scheme";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        s "batching (MRAI=0.5)" (Static 0.5) Iq.Batched;
        s "dynamic" Scenarios.paper_dynamic Iq.Fifo;
        s "batching+dynamic" Scenarios.paper_dynamic Iq.Batched;
        s "MRAI=0.5" (Static 0.5) Iq.Fifo;
        s "MRAI=2.25" (Static 2.25) Iq.Fifo;
      ];
    paper_expectation =
      "batching keeps delays low for small failures and cuts large-failure \
       delays by a factor of 3+ vs MRAI=0.5; it beats the dynamic scheme, \
       and combining both helps further";
  }

let fig11 opts =
  let s label scheme discipline =
    series_over_sizes opts ~label ~metric:messages (fun frac ->
        Scenarios.flat opts ~scheme ~discipline ~frac ())
  in
  {
    Figure.id = "fig11";
    title = "Number of messages generated by the batching scheme";
    xlabel = "failure %";
    ylabel = "update messages";
    series =
      [
        s "batching (MRAI=0.5)" (Static 0.5) Iq.Batched;
        s "MRAI=0.5" (Static 0.5) Iq.Fifo;
        s "MRAI=2.25" (Static 2.25) Iq.Fifo;
      ];
    paper_expectation =
      "batching generates far fewer messages than plain MRAI=0.5, in the \
       same range as MRAI=2.25";
  }

let fig12 opts =
  let s label discipline =
    series_over_mrais opts ~label ~metric:delay (fun mrai ->
        Scenarios.flat opts ~scheme:(Static mrai) ~discipline ~frac:0.05 ())
  in
  {
    Figure.id = "fig12";
    title = "Effect of batching with different MRAIs (5% failure)";
    xlabel = "MRAI (s)";
    ylabel = "convergence delay (s)";
    series = [ s "batching" Iq.Batched; s "no batching" Iq.Fifo ];
    paper_expectation =
      "batching helps a lot below the optimal MRAI (where overload exists) \
       and has little effect at or above it";
  }

(* --- Fig 13: realistic topologies ---------------------------------------- *)

let fig13 opts =
  let s label scheme discipline =
    series_over_sizes opts ~label ~metric:delay (fun frac ->
        Scenarios.realistic opts ~scheme ~discipline ~frac ())
  in
  {
    Figure.id = "fig13";
    title = "Convergence delay of realistic topologies";
    xlabel = "failure %";
    ylabel = "convergence delay (s)";
    series =
      [
        s "batching (MRAI=0.5)" (Static 0.5) Iq.Batched;
        s "dynamic" Scenarios.realistic_dynamic Iq.Fifo;
        s "batching+dynamic" Scenarios.realistic_dynamic Iq.Batched;
        s "MRAI=0.5" (Static 0.5) Iq.Fifo;
        s "MRAI=3.5" (Static 3.5) Iq.Fifo;
      ];
    paper_expectation =
      "same qualitative behaviour as Fig 10 on multi-router-per-AS \
       topologies with an Internet-like inter-AS degree distribution \
       (optimal static MRAI 0.5 small / 3.5 large)";
  }

let all =
  [
    ("fig1", fig01);
    ("fig2", fig02);
    ("fig3", fig03);
    ("fig4", fig04);
    ("fig5", fig05);
    ("fig6", fig06);
    ("fig7", fig07);
    ("fig8", fig08);
    ("fig9", fig09);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
  ]

let by_id id =
  let normalize s =
    let s = String.lowercase_ascii (String.trim s) in
    let s = if String.length s > 3 && String.sub s 0 3 = "fig" then String.sub s 3 (String.length s - 3) else s in
    match int_of_string_opt s with Some n -> Printf.sprintf "fig%d" n | None -> s
  in
  List.assoc_opt (normalize id) all
